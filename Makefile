GO ?= go

.PHONY: all build test race vet lint lint-stats chaos fuzz fuzz-server fuzz-wire ci bench bench-smoke bench-check load load-relay relay soak live tools

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Project-specific invariant analyzers (wallclock, lockdiscipline,
# hotpath, replyownership, maporder, pinownership, codecparity,
# hostilecount) over the whole module. Fails on any finding not
# annotated with a //vw:allow directive, on malformed //vw: directives,
# and on classified packages (internal/analysis.PackageClasses) that
# lost their //vw:deterministic or //vw:wire opt-in. Also usable
# through vet:
#   go build -o vwlint ./cmd/vwlint && go vet -vettool=./vwlint ./...
# or as machine-readable output for CI diffing:
#   go run ./cmd/vwlint -json ./...
lint:
	$(GO) run ./cmd/vwlint ./...

# Suppression-debt report: the //vw:allow count per analyzer, every
# analyzer listed even at zero so trends diff cleanly across PRs.
lint-stats:
	$(GO) run ./cmd/vwlint -stats ./...

# Full suite under the race detector, chaos tests included.
race:
	$(GO) test -race ./...

# Just the fault-injection suites: deterministic scripted schedules in
# dlib/client/server plus the netsim fault layer and redial client.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Fault|Redial|Resilien' ./...

# Short fuzz passes over the wire framing and the client read path.
fuzz:
	$(GO) test -fuzz FuzzReadFrame -fuzztime 30s ./internal/dlib/
	$(GO) test -fuzz FuzzClientRead -fuzztime 30s ./internal/dlib/

# Short fuzz passes over the server frame/command surfaces with
# hostile numeric payloads, plus the live-steering command surface
# (NaN Reynolds, negative inlet velocity, absurd tapers) and the
# shared-tool command surface (NaN iso levels, out-of-range plane
# axes, unknown tool kinds).
fuzz-server:
	$(GO) test -fuzz FuzzHandleFrame -fuzztime 30s ./internal/server/
	$(GO) test -fuzz FuzzApplyCommand -fuzztime 30s ./internal/server/
	$(GO) test -fuzz FuzzSteerCommand -fuzztime 30s ./internal/server/
	$(GO) test -fuzz FuzzToolCommand -fuzztime 30s ./internal/server/

# Short fuzz pass over the codec-v2 frame decoder: hostile counts,
# truncations, and ref-to-unknown records against a stateful decoder.
# The 10s budget keeps it ci-sized; run `make fuzz` for the longer
# framing passes.
fuzz-wire:
	$(GO) test -fuzz FuzzDecodeFrameV2 -fuzztime 10s ./internal/wire/

# The cluster-tier battery: relay golden replays (one and two hops,
# both codecs), chaos (upstream loss, partition, cross-hop lock
# release), the relay wire codec, and the relayed load harness.
relay:
	$(GO) test -race -count=1 -run 'Relay' ./internal/server/ ./internal/wire/

# The in-situ battery: the solver-vs-replay differential, the live
# golden corpus entries, steering chaos on both ends of the wire, and
# the ring's pin/eviction unit suite, all under the race detector.
live:
	$(GO) test -race -count=1 -run 'Live|Steer|Ring' ./internal/server/ ./internal/client/ ./internal/store/ ./internal/datasets/ ./internal/env/ ./internal/wire/

# The shared-tool battery: golden corpus (both codecs), cross-server
# determinism under a degrading governor, relay replays and fan-out,
# the multi-user conflict chaos suite, the FuzzToolCommand and
# FuzzDecodeFrameV2 tool seed corpora (seed corpora run as regular
# tests), and the env/wire/field/isosurf unit suites.
tools:
	$(GO) test -race -count=1 -run 'Tool|Iso|Plane|Vortex|Extract|QCriterion' ./internal/server/ ./internal/env/ ./internal/wire/ ./internal/field/ ./internal/isosurf/ ./internal/client/
	$(GO) test -race -count=1 -run xxx -fuzz FuzzToolCommand -fuzztime 5s ./internal/server/

# The gate a change must pass before merging.
ci: vet lint race relay live tools bench-check fuzz-wire load-relay

bench:
	$(GO) test -bench . -benchmem ./...

# One fast pass over the frame-pipeline benchmark, so ci notices an
# allocation or latency regression without the full bench suite.
bench-smoke:
	$(GO) test -run xxx -bench BenchmarkServerMultiRakeFrame -benchmem -benchtime 200x .

# Bench-regression tripwire: run the frame-pipeline and fan-out
# benchmarks and fail on >2x ns/op or allocs/op versus the checked-in
# baseline. After an intentional perf change:  go run ./cmd/benchcheck -update
bench-check:
	$(GO) run ./cmd/benchcheck

# Multi-workstation scale-out run: 64 simulated workstations at the
# paper's 10 frames/second against one server.
load:
	$(GO) run ./cmd/vwload -sessions 64 -frames 100 -fps 10

# Cluster-tier smoke: 256 workstations through 4 relay nodes. The
# origin should encode each round once, with per-tier amplification
# and the relay cache hit rate in the report.
load-relay:
	$(GO) run ./cmd/vwload -sessions 256 -frames 20 -fps 10 -relays 4

# Long soaks: 2000 rounds of the overloaded fleet against the
# frame-budget governor (compute-stage p99 and allocation stability),
# plus the in-situ overload soak — a live producer with a tight ring
# window under the same governed fleet, checking the planned-cost p99
# and the pin barrier. (Short versions of both ride `make test`.)
soak:
	$(GO) test ./internal/server/ -run 'TestSoakGovernedBudget|TestSoakLiveOverload' -soakframes 2000 -v
