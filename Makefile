GO ?= go

.PHONY: all build test race vet chaos fuzz ci bench bench-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full suite under the race detector, chaos tests included.
race:
	$(GO) test -race ./...

# Just the fault-injection suites: deterministic scripted schedules in
# dlib/client/server plus the netsim fault layer and redial client.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Fault|Redial|Resilien' ./...

# Short fuzz passes over the wire framing and the client read path.
fuzz:
	$(GO) test -fuzz FuzzReadFrame -fuzztime 30s ./internal/dlib/
	$(GO) test -fuzz FuzzClientRead -fuzztime 30s ./internal/dlib/

# The gate a change must pass before merging.
ci: vet race bench-smoke

bench:
	$(GO) test -bench . -benchmem ./...

# One fast pass over the frame-pipeline benchmark, so ci notices an
# allocation or latency regression without the full bench suite.
bench-smoke:
	$(GO) test -run xxx -bench BenchmarkServerMultiRakeFrame -benchmem -benchtime 200x .
