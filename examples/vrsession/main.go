// VR session: the full virtual-environment loop of Sec 3 with the
// simulated hardware — BOOM head tracking through six-joint forward
// kinematics, DataGlove finger bends recognized as gestures, Polhemus
// hand tracking with noise — driving rake grabs in the shared
// environment, with the render loop decoupled from the 1/8-second
// command loop (figure 9).
package main

import (
	"fmt"
	"log"
	"net"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/integrate"
	"repro/internal/netsim"
	"repro/internal/store"
	"repro/internal/vmath"
	"repro/internal/vr"
)

func main() {
	log.SetFlags(0)

	dataset, err := bench.BuildDataset(bench.DatasetSpec{
		NI: 24, NJ: 32, NK: 10, NumSteps: 10, DT: 0.6,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Demonstrate the device models first.
	boom := vr.NewBoom()
	var angles [vr.NumBoomJoints]float32
	angles[vr.BaseYaw], angles[vr.ElbowPitch] = 0.5, 0.8
	if err := boom.SetAngles(angles); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BOOM: joint angles %v -> head at %v\n", angles, boom.HeadPosition())

	glove, err := vr.NewGlove(vr.DefaultCalibration(), vr.NewPolhemus(vmath.V3(0, 1, 0), 2.5, 0.002, 7))
	if err != nil {
		log.Fatal(err)
	}
	glove.PoseFist()
	fmt.Printf("glove: fist pose recognized as %q\n", glove.Recognize())
	glove.PosePoint()
	fmt.Printf("glove: point pose recognized as %q\n", glove.Recognize())

	// Distributed session over a simulated 13 MB/s UltraNet VME link.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv, err := core.Serve(ln, store.NewMemory(dataset), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Dlib().Close()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	link := netsim.Link{BandwidthBytesPerSec: netsim.UltraNetVME}.Wrap(raw)
	sess, err := core.Connect("", link, core.Options{FrameW: 320, FrameH: 256})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// A rake near the scripted user's grab target so the fist gesture
	// will actually catch it.
	sess.AddRake(vmath.V3(0.2, 0.9, -0.5), vmath.V3(0.5, 1.1, -0.5), 6, integrate.ToolStreamline)
	sess.Play(1)

	// Run the command loop with the scripted user; watch for the
	// gesture-driven grab.
	fmt.Println("\nrunning 2 grab/drag/release cycles...")
	grabSeen, releaseSeen := false, false
	var budgetHits, frames int
	for i := 0; i < sess.User.CyclePeriod*2; i++ {
		r, err := sess.Frame()
		if err != nil {
			log.Fatal(err)
		}
		frames++
		if r.WithinBudget {
			budgetHits++
		}
		state, _ := sess.WS.Latest()
		if len(state.Rakes) > 0 {
			if state.Rakes[0].Holder != 0 && !grabSeen {
				grabSeen = true
				fmt.Printf("  frame %d: fist gesture grabbed the rake (holder %d, grab %d)\n",
					i, state.Rakes[0].Holder, state.Rakes[0].Grab)
			}
			if grabSeen && state.Rakes[0].Holder == 0 && !releaseSeen {
				releaseSeen = true
				fmt.Printf("  frame %d: open hand released the rake\n", i)
			}
		}
	}
	fmt.Printf("grab seen: %v, release seen: %v\n", grabSeen, releaseSeen)
	fmt.Printf("%d/%d frames within the 1/8s budget\n", budgetHits, frames)

	// Figure 9: decoupled loop rates over the same link.
	netHz, renderHz, err := sess.WS.RunDecoupled(sess.User, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndecoupled loops: command %.1f Hz, head-tracked render %.1f Hz (%.1fx)\n",
		netHz, renderHz, renderHz/netHz)
}
