// Multiblock: the paper's §7 future work — "extension of the
// computational algorithms to handle multiple grid data sets" —
// demonstrated on a two-block dataset. A streamline seeded in the
// upstream block crosses the overlap seam and continues through the
// downstream block, with the integrator hopping between the blocks'
// computational spaces.
package main

import (
	"fmt"
	"log"

	"repro/internal/field"
	"repro/internal/flow"
	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/vmath"
)

func main() {
	log.SetFlags(0)

	// Two abutting Cartesian blocks along X with a half-cell overlap,
	// the way multiblock meshes join: upstream [-20, 0.5], downstream
	// [0, 20], both spanning [-8, 8]^2 in Y/Z.
	up, err := grid.NewCartesian(21, 17, 17, vmath.AABB{
		Min: vmath.V3(-20, -8, -8), Max: vmath.V3(0.5, 8, 8),
	})
	if err != nil {
		log.Fatal(err)
	}
	down, err := grid.NewCartesian(21, 17, 17, vmath.AABB{
		Min: vmath.V3(0, -8, -8), Max: vmath.V3(20, 8, 8),
	})
	if err != nil {
		log.Fatal(err)
	}
	m, err := grid.NewMultiblock(up, down)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multiblock: %d blocks, union bounds %v..%v\n",
		m.NumBlocks(), m.Bounds().Min, m.Bounds().Max)

	// One analytic flow sampled onto both blocks (each block converts
	// to its own grid coordinates): an ABC-perturbed free stream.
	fl := blended{}
	fields := make([]*field.Field, m.NumBlocks())
	for i, g := range m.Blocks {
		phys := flow.Sample(fl, g, 0)
		conv, err := field.ToGridCoords(phys, g)
		if err != nil {
			log.Fatal(err)
		}
		fields[i] = conv
	}
	mf, err := integrate.NewMultiField(m, fields)
	if err != nil {
		log.Fatal(err)
	}

	// Seed a rake of streamlines in the upstream block.
	o := integrate.Options{Method: integrate.RK2, StepSize: 0.5, MaxSteps: 300, MinSpeed: 1e-7}
	fmt.Println("\nstreamlines (seeded upstream, integrated across the seam):")
	for _, y := range []float32{-4, -2, 0, 2, 4} {
		seed := vmath.V3(-18, y, 0)
		path, err := integrate.MultiStreamline(mf, seed, o)
		if err != nil {
			log.Fatal(err)
		}
		last := path.Points[len(path.Points)-1]
		fmt.Printf("  seed y=%+5.1f: %3d points, blocks %v, ends at (%6.2f, %6.2f, %6.2f)\n",
			y, len(path.Points), path.Blocks, last.X, last.Y, last.Z)
		if len(path.Blocks) < 2 {
			log.Fatalf("streamline did not hop blocks — seam transfer broken")
		}
	}
	fmt.Println("\nevery streamline crossed from block 0 into block 1 through the overlap.")
}

// blended is a free stream with a gentle swirl so paths are not
// straight lines.
type blended struct{}

func (blended) Name() string { return "blended" }

func (blended) VelocityAt(p vmath.Vec3, t float32) vmath.Vec3 {
	abc := flow.ABC{A: 0.3, B: 0.2, C: 0.25}
	v := abc.VelocityAt(p.Scale(0.3), t)
	return vmath.V3(1.2, 0, 0).Add(v.Scale(0.4))
}
