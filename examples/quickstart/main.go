// Quickstart: build a small unsteady dataset, launch a stand-alone
// windtunnel session, drop a rake of streamlines into the wake of the
// tapered cylinder, and run a few head-tracked frames — the minimal
// end-to-end tour of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/vmath"
)

func main() {
	log.SetFlags(0)

	// 1. A curvilinear O-grid around the tapered cylinder.
	g, err := grid.NewTaperedCylinder(grid.TaperedCylinderSpec{
		NI: 24, NJ: 32, NK: 10,
		R0: 1, R1: 0.5, Router: 12, Span: 16, Stretch: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Sample the unsteady shedding flow onto it and convert the
	// velocities to grid coordinates (the paper's Sec 2.1 trick that
	// makes interactive integration possible).
	phys, err := flow.SampleUnsteady(flow.DefaultTaperedCylinder(), g, 12, 0, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	dataset, err := phys.ToGridCoords()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d timesteps x %.2f MB\n",
		dataset.NumSteps(), float64(dataset.Steps[0].SizeBytes())/(1<<20))

	// 3. Launch the stand-alone windtunnel (server + workstation in
	// one process) and add a streamline rake spanning the wake.
	sess, err := core.LaunchLocal(dataset, core.Options{FrameW: 320, FrameH: 256})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	sess.AddRake(vmath.V3(-3, 0.6, 1), vmath.V3(-3, 0.6, 14), 8, integrate.ToolStreamline)
	sess.Play(1)

	// 4. Run interaction frames: scripted head/hand input, remote
	// computation, stereo render — each must fit the 1/8 s budget.
	for i := 0; i < 10; i++ {
		r, err := sess.Frame()
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if !r.WithinBudget {
			status = "OVER BUDGET"
		}
		fmt.Printf("frame %2d: %8v  %5d points  [%s]\n",
			i, r.Total.Round(10e3), r.Points, status)
	}

	st := sess.Server().Stats()
	fmt.Printf("\nserver: %d rounds computed, %d path points total\n", st.Frames, st.Points)
}
