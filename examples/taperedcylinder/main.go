// Tapered cylinder exploration: the workload from the paper's
// introduction. Builds the shedding dataset, explores it with all
// three visualization tools (streaklines rendered as smoke, particle
// paths, streamlines), exercises time control — speed up, reverse,
// stop — and writes anaglyph stereo snapshots of each tool as PPM
// images under ./out/.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/integrate"
	"repro/internal/vmath"
)

func main() {
	log.SetFlags(0)

	dataset, err := bench.BuildDataset(bench.DatasetSpec{
		NI: 32, NJ: 48, NK: 12, NumSteps: 16, DT: 0.6,
	})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := core.LaunchLocal(dataset, core.Options{FrameW: 640, FrameH: 512})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// Three rakes, one per tool — "It has been found useful to use
	// rakes of several different types in combination" (Sec 2.1).
	sess.AddRake(vmath.V3(-3, 0.6, 1), vmath.V3(-3, 0.6, 14), 8, integrate.ToolStreakline)
	sess.AddRake(vmath.V3(-3, -0.8, 2), vmath.V3(-3, -0.8, 12), 5, integrate.ToolParticlePath)
	sess.AddRake(vmath.V3(-4, 0, 1), vmath.V3(-4, 0, 15), 10, integrate.ToolStreamline)

	if err := os.MkdirAll("out", 0o755); err != nil {
		log.Fatal(err)
	}

	// Phase 1: forward playback — smoke develops in the wake.
	fmt.Println("phase 1: forward playback, smoke developing")
	sess.Play(1)
	runAndReport(sess, 20)
	snapshot(sess, "out/forward.ppm")

	// Phase 2: fast playback — "sped up".
	fmt.Println("phase 2: playback at 3x")
	sess.Play(3)
	runAndReport(sess, 10)

	// Phase 3: reverse — "run backwards".
	fmt.Println("phase 3: time reversed")
	sess.Play(-1)
	runAndReport(sess, 10)
	snapshot(sess, "out/reverse.ppm")

	// Phase 4: stopped "for detailed examination": streamlines of the
	// frozen instantaneous field keep updating as the user moves.
	fmt.Println("phase 4: time stopped, examining the frozen field")
	sess.Stop()
	runAndReport(sess, 10)
	snapshot(sess, "out/stopped.ppm")

	state, _ := sess.WS.Latest()
	fmt.Printf("\nfinal state: time %.2f/%d, %d rakes, %d points on screen\n",
		state.Time.Current, state.Time.NumSteps, len(state.Rakes), state.TotalPoints())
	for _, g := range state.Geometry {
		fmt.Printf("  rake %d (%s): %d lines, %d points\n",
			g.Rake, integrate.ToolKind(g.Tool), len(g.Lines), g.NumPoints())
	}
}

func runAndReport(sess *core.Session, frames int) {
	var worst, sum int64
	var points int
	for i := 0; i < frames; i++ {
		r, err := sess.Frame()
		if err != nil {
			log.Fatal(err)
		}
		sum += r.Total.Nanoseconds()
		if r.Total.Nanoseconds() > worst {
			worst = r.Total.Nanoseconds()
		}
		points = r.Points
	}
	fmt.Printf("  %d frames: mean %.2fms, worst %.2fms, %d points (budget %.0fms)\n",
		frames, float64(sum)/float64(frames)/1e6, float64(worst)/1e6,
		points, float64(core.FrameBudget.Milliseconds()))
}

func snapshot(sess *core.Session, path string) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := sess.WS.Framebuffer().WritePPM(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  wrote %s\n", filepath.Clean(path))
}
