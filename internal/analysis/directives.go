package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// vwlint's directive comments. All share the //vw: prefix (no space
// after //, matching Go's //go: convention so godoc hides them):
//
//	//vw:deterministic
//	    Package-level opt-in (anywhere in the package, conventionally
//	    at the end of the package doc comment): the wallclock analyzer
//	    checks every non-test file of the package.
//
//	//vw:hotpath
//	    On a function's doc comment: the hotpath analyzer flags
//	    allocation sources inside the function body.
//
//	//vw:wire
//	    Package-level opt-in: the package encodes, decodes, or routes
//	    protocol bytes, so the maporder, codecparity, and hostilecount
//	    analyzers apply.
//
//	//vw:allow <name>[,<name>...] [-- reason]
//	    Suppresses the named analyzers' findings on the same line and
//	    the line below. On a function's doc comment it suppresses the
//	    whole function body (used sparingly; prefer line-level allows).
//	    Names must be known analyzers (or "directive"); a typo'd name
//	    is itself reported rather than silently suppressing nothing.
const (
	dirPrefix        = "//vw:"
	dirAllow         = "allow"
	dirHotpath       = "hotpath"
	dirDeterministic = "deterministic"
	dirWire          = "wire"
)

// Directives is the parsed //vw: state for one package.
type Directives struct {
	// Deterministic reports whether the package opted in to the
	// determinism analyzers (wallclock, maporder) via
	// //vw:deterministic.
	Deterministic bool
	// Wire reports whether the package opted in to the wire-facing
	// analyzers (maporder, codecparity, hostilecount) via //vw:wire.
	Wire bool

	hotpath []*ast.FuncDecl
	allows  map[string][]allowSite

	// Bad holds malformed //vw: comments (unknown verb, empty allow
	// list); the driver reports them so typos cannot silently disable
	// a check.
	Bad []Diagnostic
}

// An allowSite is one //vw:allow occurrence. A plain comment covers
// its own line and the next; a function-doc comment covers the whole
// body line range [line, endLine].
type allowSite struct {
	file    string
	line    int
	endLine int // 0 for a plain line-site
}

// ParseDirectives scans every comment in files and returns the
// package's directive state.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{allows: make(map[string][]allowSite)}
	for _, f := range files {
		// Function-doc directives get body-wide scope.
		fnDoc := make(map[*ast.Comment]*ast.FuncDecl)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				fnDoc[c] = fn
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, dirPrefix)
				if !ok {
					continue
				}
				verb, rest, _ := strings.Cut(text, " ")
				pos := fset.Position(c.Pos())
				switch verb {
				case dirDeterministic:
					d.Deterministic = true
				case dirWire:
					d.Wire = true
				case dirHotpath:
					if fn := fnDoc[c]; fn != nil {
						d.hotpath = append(d.hotpath, fn)
					} else {
						d.bad(c, pos, "//vw:hotpath must be part of a function's doc comment")
					}
				case dirAllow:
					names := allowNames(rest)
					if len(names) == 0 {
						d.bad(c, pos, "//vw:allow needs at least one analyzer name")
						continue
					}
					site := allowSite{file: pos.Filename, line: pos.Line}
					if fn := fnDoc[c]; fn != nil && fn.Body != nil {
						site.endLine = fset.Position(fn.Body.End()).Line
					}
					for _, n := range names {
						if !knownAllowNames[n] {
							d.bad(c, pos, "//vw:allow names unknown analyzer %q (known: %s)", n, knownAllowList)
							continue
						}
						d.allows[n] = append(d.allows[n], site)
					}
				default:
					d.bad(c, pos, "unknown directive //vw:%s", verb)
				}
			}
		}
	}
	return d
}

func (d *Directives) bad(c *ast.Comment, pos token.Position, format string, args ...any) {
	d.Bad = append(d.Bad, Diagnostic{
		Pos:      c.Pos(),
		Position: pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: "directive",
	})
}

// allowNames splits the argument of //vw:allow: comma- or
// space-separated analyzer names, with everything after a bare "--"
// treated as free-form rationale.
func allowNames(rest string) []string {
	rest, _, _ = strings.Cut(rest, "--")
	return strings.FieldsFunc(rest, func(r rune) bool {
		return r == ' ' || r == ',' || r == '\t'
	})
}

// knownAllowNames is the set of analyzer names //vw:allow may refer
// to, plus "directive" for the malformed-directive diagnostics
// themselves. A misspelled name would otherwise suppress nothing and
// say nothing — the worst kind of lint rot.
var knownAllowNames, knownAllowList = func() (map[string]bool, string) {
	m := map[string]bool{"directive": true}
	var names []string
	for _, a := range All() {
		m[a.Name] = true
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return m, strings.Join(names, ", ")
}()

// AllowCounts returns the number of //vw:allow sites per analyzer
// name in this package, for the driver's -stats mode. A single
// comment naming two analyzers counts once for each.
func (d *Directives) AllowCounts() map[string]int {
	out := make(map[string]int, len(d.allows))
	for name, sites := range d.allows {
		out[name] = len(sites)
	}
	return out
}

// HotpathFuncs returns the functions marked //vw:hotpath.
func (d *Directives) HotpathFuncs() []*ast.FuncDecl { return d.hotpath }

// Allowed reports whether an //vw:allow for analyzer name covers the
// diagnostic position: same line, directly above it, or anywhere in a
// function whose doc carries the allow.
func (d *Directives) Allowed(name string, pos token.Position) bool {
	for _, s := range d.allows[name] {
		if s.file != pos.Filename {
			continue
		}
		if s.endLine > 0 {
			if pos.Line >= s.line && pos.Line <= s.endLine {
				return true
			}
			continue
		}
		if pos.Line == s.line || pos.Line == s.line+1 {
			return true
		}
	}
	return false
}
