// Package analysistest validates vwlint analyzers against fixture
// packages, in the style of golang.org/x/tools/go/analysis/analysistest
// but using only the standard library: fixture sources live under
// testdata/src/<pkg>/, and expected findings are written as trailing
// comments of the form
//
//	s.count = 3 // want `guarded by s\.mu`
//
// Each `// want` comment carries one quoted regular expression per
// expected diagnostic on that line; a fixture line with no want
// comment must produce no diagnostics (so fixtures also prove that
// directives suppress and that clean idioms stay clean).
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads testdata/src/<pkg>, applies the analyzer, and compares
// surviving diagnostics against the fixture's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	loader := analysis.NewLoader()
	p, err := loader.LoadDir(dir, pkg)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkg, err)
	}
	if p == nil {
		t.Fatalf("fixture %s has no Go files", dir)
	}
	for _, bad := range p.Directives.Bad {
		t.Errorf("fixture %s: %s", pkg, bad)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rxs, err := parseWants(rest)
				if err != nil {
					t.Fatalf("%s: bad want comment: %v", pos, err)
				}
				k := key{pos.Filename, pos.Line}
				wants[k] = append(wants[k], rxs...)
			}
		}
	}

	for _, d := range analysis.Run(a, p) {
		k := key{d.Position.Filename, d.Position.Line}
		matched := false
		for i, rx := range wants[k] {
			if rx != nil && rx.MatchString(d.Message) {
				wants[k][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, rxs := range wants {
		for _, rx := range rxs {
			if rx != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, rx)
			}
		}
	}
}

// parseWants pulls the sequence of quoted regexps off a want comment.
func parseWants(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, err
		}
		raw, err := strconv.Unquote(q)
		if err != nil {
			return nil, err
		}
		rx, err := regexp.Compile(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, rx)
		s = s[len(q):]
	}
}
