package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder forbids map iteration whose body feeds byte-deterministic
// output in //vw:deterministic or //vw:wire packages. Go randomizes
// map iteration order per run, so a `for k := range m` that appends
// to a slice bound for an encoder, concatenates into a string, or
// writes through a Buffer/Builder/Writer produces different bytes on
// every process — the exact failure mode that would desync the v2
// shadow, the relay round cache, and the golden corpus.
//
// Order-insensitive bodies stay legal: delete-only sweeps, numeric
// accumulation (+= on non-strings), min/max reductions, and per-key
// map updates have commutative effects. A slice that is sorted after
// the loop in the same function is also legal — collect-then-sort is
// the idiomatic fix.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "forbid map-iteration order leaking into slices, strings, or writers in deterministic/wire-facing packages",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	if !pass.Class.Deterministic && !pass.Class.WireFacing {
		return
	}
	for _, file := range pass.Files {
		for _, sc := range funcScopes(file) {
			runMapOrderScope(pass, sc)
		}
	}
}

// A mapOrderSink is one order-sensitive effect inside a map-range
// body: where it happened, what it wrote to, and the object it
// accumulated into (nil for writer calls, which a later sort cannot
// repair).
type mapOrderSink struct {
	pos  token.Pos
	what string
	obj  types.Object
}

func runMapOrderScope(pass *Pass, sc funcScope) {
	// Range statements over maps directly in this scope; nested
	// function literals are their own scopes.
	inspectScope(sc.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, sink := range mapOrderSinks(pass, rng) {
			if sink.obj != nil && sortedAfter(pass, sc, rng, sink.obj) {
				continue
			}
			pass.Reportf(sink.pos,
				"map iteration order leaks into %s; iterate sorted keys or sort the result before it reaches any byte-deterministic path", sink.what)
		}
		return true
	})
}

// mapOrderSinks collects the order-sensitive effects in a map-range
// body. Function literals inside the body are included: they
// typically run per iteration (passed to helpers) and inherit the
// iteration order either way.
func mapOrderSinks(pass *Pass, rng *ast.RangeStmt) []mapOrderSink {
	var sinks []mapOrderSink
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// s += ... on a string accumulates in iteration order.
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if t, ok := pass.Info.Types[n.Lhs[0]]; ok {
					if b, ok := t.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if obj := declaredOutside(pass, n.Lhs[0], rng); obj != nil {
							sinks = append(sinks, mapOrderSink{n.Pos(), "string " + obj.Name(), obj})
						}
					}
				}
			}
		case *ast.CallExpr:
			obj := calleeObj(pass.Info, n)
			switch fn := obj.(type) {
			case *types.Builtin:
				// append to a slice declared outside the loop: the
				// element order is the iteration order.
				if fn.Name() == "append" && len(n.Args) > 0 {
					if obj := declaredOutside(pass, n.Args[0], rng); obj != nil {
						sinks = append(sinks, mapOrderSink{n.Pos(), "slice " + obj.Name(), obj})
					}
				}
			case *types.Func:
				name := fn.Name()
				sig, _ := fn.Type().(*types.Signature)
				isMethod := sig != nil && sig.Recv() != nil
				switch {
				case isMethod && (name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune"):
					// Writer accumulation (bytes.Buffer,
					// strings.Builder, io.Writer): bytes land in
					// iteration order and no later sort can fix them.
					sinks = append(sinks, mapOrderSink{n.Pos(), "a writer via " + name, nil})
				case !isMethod && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
					(name == "Fprint" || name == "Fprintf" || name == "Fprintln"):
					sinks = append(sinks, mapOrderSink{n.Pos(), "a writer via fmt." + name, nil})
				}
			}
		}
		return true
	})
	return sinks
}

// declaredOutside returns the object at the root of e when it is a
// variable declared outside the range statement — an accumulator that
// outlives the loop. Loop-local accumulators (including the range key
// and value variables themselves) are per-iteration state whose order
// cannot escape.
func declaredOutside(pass *Pass, e ast.Expr, rng *ast.RangeStmt) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return nil
	}
	if v, ok := obj.(*types.Var); ok && !v.IsField() {
		if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
			return nil
		}
	}
	return obj
}

// sortedAfter reports whether obj (or a reslice alias of it) is
// passed to a sort.*/slices.Sort* call after the range statement
// within the same function scope — the collect-then-sort idiom that
// restores determinism. Aliases cover the recycled-buffer form the
// frame pipeline uses everywhere:
//
//	for k, v := range m { dst = append(dst, ...) }
//	out := dst[base:]
//	slices.SortFunc(out, ...)
func sortedAfter(pass *Pass, sc funcScope, rng *ast.RangeStmt, obj types.Object) bool {
	// Objects whose sorting counts as sorting the sink: the sink
	// itself plus anything assigned from a slice of it after the loop.
	sorted := map[types.Object]bool{obj: true}
	inspectScope(sc.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Pos() < rng.End() {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			src := rootIdent(as.Rhs[i])
			if src == nil || !sorted[pass.Info.Uses[src]] {
				continue
			}
			if def := pass.Info.Defs[id]; def != nil {
				sorted[def] = true
			} else if use := pass.Info.Uses[id]; use != nil {
				sorted[use] = true
			}
		}
		return true
	})

	found := false
	inspectScope(sc.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn, ok := calleeObj(pass.Info, call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			// Direct argument, or wrapped in one conversion layer
			// (sort.Sort(byName(x))).
			if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
				arg = conv.Args[0]
			}
			if id := rootIdent(arg); id != nil && sorted[pass.Info.Uses[id]] {
				found = true
			}
		}
		return true
	})
	return found
}
