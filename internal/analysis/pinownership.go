package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PinOwnership enforces the live ring's pin-barrier protocol
// (store.Ring). The ring recycles timestep buffers as the producer
// advances; a step a consumer is still reading must be pinned, and
// every Pin must be balanced or the barrier leaks and eviction stalls
// forever. Mirroring replyownership's escape analysis, a scope that
// calls Ring.Pin must, on some later path, either
//
//   - call Ring.Unpin on the same receiver (directly or deferred), or
//   - store the pinned step into a struct field — the ownership
//     handoff idiom (s.livePinned = step), where another method
//     unpins on the next round or at shutdown.
//
// Conversely, Ring.LoadStep hands back a buffer the ring may recycle
// mid-use, so a scope calling it must hold a pin: a Ring.Pin on the
// same receiver earlier in the scope. The ring's own methods are
// exempt — they are the implementation under the lock.
var PinOwnership = &Analyzer{
	Name: "pinownership",
	Doc:  "Ring.Pin must pair with Unpin or a field handoff; Ring.LoadStep requires a pin in scope",
	Run:  runPinOwnership,
}

func runPinOwnership(pass *Pass) {
	for _, file := range pass.Files {
		for _, sc := range funcScopes(file) {
			runPinScope(pass, sc)
		}
	}
}

// A ringCall is one Pin/Unpin/LoadStep call site in a scope.
type ringCall struct {
	pos      token.Pos
	recv     string // receiver path, e.g. "s.liveRing"
	deferred bool
	arg      types.Object // Pin's step argument root, if an identifier
}

func runPinScope(pass *Pass, sc funcScope) {
	// Methods on the Ring itself are the protocol implementation.
	if sc.Decl != nil && sc.Decl.Recv != nil && len(sc.Decl.Recv.List) > 0 {
		if named := namedType(pass.Info.Types[sc.Decl.Recv.List[0].Type].Type); named != nil && named.Obj().Name() == "Ring" {
			return
		}
	}

	var pins, unpins, loads []ringCall
	var fieldStores []types.Object // objects whose value escaped into a struct field

	record := func(call *ast.CallExpr, deferred bool) {
		method, recv, ok := ringMethod(pass, call)
		if !ok {
			return
		}
		rc := ringCall{pos: call.Pos(), recv: recv, deferred: deferred}
		switch method {
		case "Pin":
			if len(call.Args) == 1 {
				if id := rootIdent(call.Args[0]); id != nil {
					rc.arg = pass.Info.Uses[id]
				}
			}
			pins = append(pins, rc)
		case "Unpin":
			unpins = append(unpins, rc)
		case "LoadStep":
			loads = append(loads, rc)
		}
	}

	inspectScope(sc.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			record(n.Call, true)
			// A deferred closure body runs at scope exit: Unpins
			// inside it balance the scope's pins.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok {
						record(c, true)
					}
					return true
				})
			}
		case *ast.CallExpr:
			record(n, false)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if _, ok := lhs.(*ast.SelectorExpr); !ok {
					continue
				}
				if i < len(n.Rhs) {
					if id := rootIdent(n.Rhs[i]); id != nil {
						if obj := pass.Info.Uses[id]; obj != nil {
							fieldStores = append(fieldStores, obj)
						}
					}
				}
			}
		}
		return true
	})

	for _, pin := range pins {
		ok := false
		for _, un := range unpins {
			if un.recv == pin.recv && (un.deferred || un.pos > pin.pos) {
				ok = true
			}
		}
		if !ok && pin.arg != nil {
			for _, st := range fieldStores {
				if st == pin.arg {
					ok = true // ownership handed to a struct field
				}
			}
		}
		if !ok {
			pass.Reportf(pin.pos,
				"Ring.Pin on %s has no matching Unpin or field handoff in this scope; a leaked pin blocks ring recycling forever", pin.recv)
		}
	}
	for _, ld := range loads {
		ok := false
		for _, pin := range pins {
			if pin.recv == ld.recv && pin.pos < ld.pos {
				ok = true
			}
		}
		if !ok {
			pass.Reportf(ld.pos,
				"Ring.LoadStep on %s without a Ring.Pin earlier in this scope; the ring may recycle the step mid-use", ld.recv)
		}
	}
}

// ringMethod matches a call to a method named Pin/Unpin/LoadStep on a
// receiver whose named type is Ring (matching by type name keeps the
// analyzer usable from fixtures and the vet driver without importing
// the store package). It returns the method name and the receiver's
// textual path.
func ringMethod(pass *Pass, call *ast.CallExpr) (method, recv string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	name := fn.Name()
	if name != "Pin" && name != "Unpin" && name != "LoadStep" {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	named := namedType(sig.Recv().Type())
	if named == nil || named.Obj().Name() != "Ring" {
		return "", "", false
	}
	path, okPath := pathString(sel.X)
	if !okPath {
		return "", "", false
	}
	return name, path, true
}

// namedType peels pointers off t and returns the named type, or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
