package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockDiscipline mechanically checks the repo's two locking
// conventions:
//
//  1. Methods named fooLocked are called only while the receiver's mu
//     is held (by an enclosing Lock/Unlock pair in the caller, or
//     because the caller is itself a *Locked method of the same
//     receiver).
//
//  2. Struct fields declared below a mutex commented
//     "guards everything below" are only accessed while that mutex is
//     held.
//
// The lock tracker is positional, not control-flow-sensitive: a mutex
// counts as held at P when the last textual X.mu.Lock() before P is
// later than the last effective X.mu.Unlock() before P. Deferred
// unlocks never end the held region, and an inline unlock inside a
// branch that exits (return/break/continue) does not end the region
// for code after that branch — the early-unlock-and-return idiom.
// Construction is exempt: accesses through a variable created inside
// the same function (s := &Server{...}; s.free = ...) are not
// flagged, since the value is not shared yet.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "check *Locked call sites and \"guards everything below\" field access against mutex state",
	Run:  runLockDiscipline,
}

// guardPhrase is the magic comment that turns a sync.Mutex field into
// a guard for every field declared after it in the same struct.
const guardPhrase = "guards everything below"

// A guardedField says which mutex field protects a struct field.
type guardedField struct {
	mutex      string // mutex field name, e.g. "mu"
	structName string // for diagnostics
}

func runLockDiscipline(pass *Pass) {
	guarded := collectGuarded(pass)
	for _, file := range pass.Files {
		for _, sc := range funcScopes(file) {
			checkLockScope(pass, sc, guarded)
		}
	}
}

// collectGuarded finds every "guards everything below" mutex and maps
// the field objects declared below it to their guard.
func collectGuarded(pass *Pass) map[types.Object]guardedField {
	guarded := make(map[types.Object]guardedField)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			mutex := ""
			for _, field := range st.Fields.List {
				if mutex != "" {
					for _, name := range field.Names {
						if obj := pass.Info.Defs[name]; obj != nil {
							guarded[obj] = guardedField{mutex: mutex, structName: ts.Name.Name}
						}
					}
				}
				if !fieldHasGuardComment(field) {
					continue
				}
				if len(field.Names) == 1 && isSyncMutex(pass.Info.Defs[field.Names[0]]) {
					mutex = field.Names[0].Name
				}
			}
			return true
		})
	}
	return guarded
}

func fieldHasGuardComment(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg != nil && strings.Contains(cg.Text(), guardPhrase) {
			return true
		}
	}
	return false
}

func isSyncMutex(obj types.Object) bool {
	if obj == nil {
		return false
	}
	s := obj.Type().String()
	return s == "sync.Mutex" || s == "sync.RWMutex"
}

// A lockEvent is one textual X.mu.Lock/Unlock call inside a scope.
type lockEvent struct {
	path     string // rendered mutex path, e.g. "s.mu"
	pos      token.Pos
	unlock   bool
	deferred bool
	// For inline unlocks: the innermost enclosing block's extent and
	// whether that block exits (return/break/continue/goto) after the
	// unlock — the early-unlock-and-return idiom.
	blockEnd  token.Pos
	blockExit bool
}

// checkLockScope verifies one function scope against the lock rules.
func checkLockScope(pass *Pass, sc funcScope, guarded map[types.Object]guardedField) {
	events := collectLockEvents(pass, sc)

	// held reports whether mutexPath is held at p under the
	// positional model.
	held := func(mutexPath string, p token.Pos) bool {
		var lastLock, lastUnlock token.Pos
		for _, e := range events {
			if e.path != mutexPath || e.pos >= p {
				continue
			}
			if !e.unlock {
				if e.pos > lastLock {
					lastLock = e.pos
				}
				continue
			}
			if e.deferred {
				continue // runs at return; never ends the region
			}
			if e.blockExit && p > e.blockEnd {
				continue // unlock on an exiting branch we are past
			}
			if e.pos > lastUnlock {
				lastUnlock = e.pos
			}
		}
		return lastLock != token.NoPos && lastLock > lastUnlock
	}

	// byContract: a *Locked method's own body runs with the
	// receiver's mu held by its caller.
	contractOwner := ""
	if sc.Decl != nil && strings.HasSuffix(sc.Decl.Name.Name, "Locked") {
		contractOwner = recvName(sc.Decl)
	}

	// localRoot reports whether the access path is rooted at a
	// variable created inside this scope — freshly constructed, not
	// yet shared, so lock-free access is fine.
	localRoot := func(e ast.Expr) bool {
		id := rootIdent(e)
		if id == nil {
			return true // computed base: stay quiet
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			if obj = pass.Info.Defs[id]; obj == nil {
				return true
			}
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return true // package selector etc.
		}
		return v.Pos() >= sc.Body.Pos() && v.Pos() < sc.Body.End()
	}

	ok := func(owner string, p token.Pos, mutex string) bool {
		if owner == contractOwner && contractOwner != "" {
			return true
		}
		return held(owner+"."+mutex, p)
	}

	inspectScope(sc.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, okSel := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !okSel || !strings.HasSuffix(sel.Sel.Name, "Locked") {
				return true
			}
			if _, isFunc := pass.Info.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			owner, okPath := pathString(sel.X)
			if !okPath || localRoot(sel.X) {
				return true
			}
			if !ok(owner, n.Pos(), "mu") {
				pass.Reportf(n.Pos(), "%s.%s called without holding %s.mu", owner, sel.Sel.Name, owner)
			}
		case *ast.SelectorExpr:
			obj := pass.Info.Uses[n.Sel]
			g, isGuarded := guarded[obj]
			if !isGuarded {
				return true
			}
			owner, okPath := pathString(n.X)
			if !okPath || localRoot(n.X) {
				return true
			}
			if !ok(owner, n.Pos(), g.mutex) {
				pass.Reportf(n.Pos(), "%s.%s is guarded by %s.%s (\"%s\") but accessed without the lock",
					owner, n.Sel.Name, owner, g.mutex, guardPhrase)
			}
		}
		return true
	})
}

// collectLockEvents gathers sync Lock/Unlock calls in the scope along
// with the block/exit context the positional model needs.
func collectLockEvents(pass *Pass, sc funcScope) []lockEvent {
	// Deferred calls never end a held region.
	deferred := make(map[*ast.CallExpr]bool)
	inspectScope(sc.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	// blocks: every statement-list extent in the scope, for innermost
	// lookup. CaseClause/CommClause bodies are statement lists too.
	type blockInfo struct {
		pos, end token.Pos
		exits    []token.Pos // direct or nested return/branch starts
	}
	var blocks []blockInfo
	inspectScope(sc.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			blocks = append(blocks, blockInfo{pos: n.Pos(), end: n.End()})
		}
		return true
	})
	var exits []token.Pos
	inspectScope(sc.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			exits = append(exits, n.Pos())
		}
		return true
	})
	for i := range blocks {
		for _, e := range exits {
			if e >= blocks[i].pos && e < blocks[i].end {
				blocks[i].exits = append(blocks[i].exits, e)
			}
		}
	}
	innermost := func(p token.Pos) *blockInfo {
		var best *blockInfo
		for i := range blocks {
			b := &blocks[i]
			if p < b.pos || p >= b.end {
				continue
			}
			if best == nil || b.pos > best.pos {
				best = b
			}
		}
		return best
	}

	var events []lockEvent
	inspectScope(sc.Body, func(n ast.Node) bool {
		call, okCall := n.(*ast.CallExpr)
		if !okCall {
			return true
		}
		sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !okSel {
			return true
		}
		name := sel.Sel.Name
		if name != "Lock" && name != "Unlock" && name != "RLock" && name != "RUnlock" && name != "TryLock" {
			return true
		}
		fn, okFn := pass.Info.Uses[sel.Sel].(*types.Func)
		if !okFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		path, okPath := pathString(sel.X)
		if !okPath {
			return true
		}
		ev := lockEvent{
			path:     path,
			pos:      call.Pos(),
			unlock:   name == "Unlock" || name == "RUnlock",
			deferred: deferred[call],
		}
		if ev.unlock && !ev.deferred {
			if b := innermost(call.Pos()); b != nil {
				ev.blockEnd = b.end
				for _, e := range b.exits {
					if e > call.Pos() {
						ev.blockExit = true
						break
					}
				}
			}
		}
		events = append(events, ev)
		return true
	})
	return events
}
