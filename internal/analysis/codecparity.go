package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CodecParity keeps the wire protocol symmetric in //vw:wire
// packages, so the next CmdSteer-style addition cannot ship
// half-wired. Four sub-checks:
//
//  1. Switch exhaustiveness: a switch whose tag has a named
//     constant-backed type declared in a wire-facing package (e.g.
//     wire.CmdKind) must name every constant of that type. A default
//     clause does not excuse — an unknown command silently ignored is
//     exactly the bug this catches.
//  2. Encoder/decoder pairing: every package-level Encode<X>/Append<X>
//     taking or returning []byte needs a Decode<X>/decode<X> in the
//     same package, and vice versa.
//  3. Procedure registration coverage: a file registering any Proc*
//     constant from a package must register all of them — a tier that
//     forwards five of six procedures strands the sixth.
//  4. Message field coverage: an encoder/decoder for a message struct
//     declared in this package must reference every exported field of
//     it (composite-literal keys count); a field skipped on one side
//     of one codec version is a v1/v2 parity break.
var CodecParity = &Analyzer{
	Name: "codecparity",
	Doc:  "wire enums fully switched, encoders paired with decoders, all procedures registered, all message fields on the wire",
	Run:  runCodecParity,
}

func runCodecParity(pass *Pass) {
	if !pass.Class.WireFacing {
		return
	}
	checkSwitchExhaustive(pass)
	checkEncoderPairing(pass)
	for _, file := range pass.Files {
		checkProcRegistration(pass, file)
	}
	checkFieldCoverage(pass)
}

// --- sub-check 1: switch exhaustiveness over wire enums ---

func checkSwitchExhaustive(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.Info.Types[sw.Tag]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok {
				return true
			}
			tpkg := named.Obj().Pkg()
			if tpkg == nil || !wireFacingTypePkg(pass, tpkg) {
				return true
			}
			consts := enumConsts(tpkg, named)
			if len(consts) == 0 {
				return true
			}
			covered := make(map[string]bool)
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if c := constObj(pass.Info, e); c != nil {
						covered[c.Name()] = true
					}
				}
			}
			if len(covered) == 0 {
				return true // not an enum dispatch
			}
			var missing []string
			for _, c := range consts {
				if !covered[c] {
					missing = append(missing, c)
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(),
					"switch on %s.%s covers %d of %d constants; missing %s (a default clause does not excuse: unknown commands must be wired, not swallowed)",
					tpkg.Name(), named.Obj().Name(), len(covered), len(consts), strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// wireFacingTypePkg reports whether the declaring package of a type
// is wire-facing: this package's own //vw:wire directive, or the
// central registry for foreign packages.
func wireFacingTypePkg(pass *Pass, tpkg *types.Package) bool {
	if tpkg == pass.Pkg {
		return pass.Class.WireFacing
	}
	return WireFacingPath(tpkg.Path())
}

// enumConsts returns the sorted names of the package-scope constants
// of exactly the named type.
func enumConsts(tpkg *types.Package, named *types.Named) []string {
	var out []string
	scope := tpkg.Scope()
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// constObj resolves a case expression to the constant it names.
func constObj(info *types.Info, e ast.Expr) *types.Const {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		c, _ := info.Uses[e].(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := info.Uses[e.Sel].(*types.Const)
		return c
	}
	return nil
}

// --- sub-check 2: encoder/decoder name pairing ---

func checkEncoderPairing(pass *Pass) {
	// Package-level codec functions, by role. Only functions with
	// []byte in their signature count: Append/Encode helpers that
	// never touch bytes (env.AppendUsers-style snapshot builders in a
	// wire-facing package) are not codecs.
	type fn struct {
		decl *ast.FuncDecl
		x    string // lowercased message suffix
	}
	var encoders, decoders []fn
	decodeSuffix := make(map[string]bool)
	encodeSuffix := make(map[string]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Name == nil {
				continue
			}
			name := fd.Name.Name
			if !funcTouchesBytes(pass, fd) {
				continue
			}
			if x, ok := codecSuffix(name, "Encode", "Append"); ok {
				encoders = append(encoders, fn{fd, x})
				encodeSuffix[x] = true
			} else if x, ok := codecSuffix(name, "encode", "append"); ok {
				encodeSuffix[x] = true // unexported helpers satisfy pairing but aren't themselves checked
			}
			if x, ok := codecSuffix(name, "Decode"); ok {
				decoders = append(decoders, fn{fd, x})
				decodeSuffix[x] = true
			} else if x, ok := codecSuffix(name, "decode"); ok {
				decodeSuffix[x] = true
			}
		}
	}
	for _, e := range encoders {
		if !decodeSuffix[e.x] {
			pass.Reportf(e.decl.Pos(),
				"encoder %s has no matching decoder (Decode/decode + same suffix) in this package; every wire record must decode as well as encode", e.decl.Name.Name)
		}
	}
	for _, d := range decoders {
		if !encodeSuffix[d.x] {
			pass.Reportf(d.decl.Pos(),
				"decoder %s has no matching encoder (Encode/Append + same suffix) in this package; every wire record must encode as well as decode", d.decl.Name.Name)
		}
	}
}

// codecSuffix strips the first matching prefix and returns the
// lowercased remainder, requiring it to be non-empty.
func codecSuffix(name string, prefixes ...string) (string, bool) {
	for _, p := range prefixes {
		if rest, ok := strings.CutPrefix(name, p); ok && rest != "" {
			return strings.ToLower(rest), true
		}
	}
	return "", false
}

// funcTouchesBytes reports whether []byte appears among the
// function's parameter or result types.
func funcTouchesBytes(pass *Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	isBytes := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isBytes(sig.Params().At(i).Type()) {
			return true
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isBytes(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// --- sub-check 3: Proc* registration coverage ---

func checkProcRegistration(pass *Pass, file *ast.File) {
	type regSet struct {
		first token.Pos
		names map[string]bool
	}
	regs := make(map[*types.Package]*regSet)
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, ok := calleeObj(pass.Info, call).(*types.Func)
		if !ok || callee.Name() != "Register" {
			return true
		}
		for _, arg := range call.Args {
			c := constObj(pass.Info, arg)
			if c == nil || c.Pkg() == nil || !strings.HasPrefix(c.Name(), "Proc") {
				continue
			}
			if b, ok := c.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
				continue
			}
			rs := regs[c.Pkg()]
			if rs == nil {
				rs = &regSet{first: call.Pos(), names: make(map[string]bool)}
				regs[c.Pkg()] = rs
			}
			rs.names[c.Name()] = true
		}
		return true
	})
	for cpkg, rs := range regs {
		all := procConsts(cpkg)
		var missing []string
		for _, name := range all {
			if !rs.names[name] {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			pass.Reportf(rs.first,
				"this file registers %d of %d %s.Proc* procedures; missing %s — an unregistered procedure fails at runtime for every client behind this tier",
				len(rs.names), len(all), cpkg.Name(), strings.Join(missing, ", "))
		}
	}
}

// procConsts returns the sorted package-scope string constants whose
// names start with Proc.
func procConsts(tpkg *types.Package) []string {
	var out []string
	scope := tpkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Proc") {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if b, ok := c.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// --- sub-check 4: message field coverage ---

func checkFieldCoverage(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name == nil {
				continue
			}
			if !funcTouchesBytes(pass, fd) {
				continue // snapshot builders etc.; only byte codecs carry messages
			}
			name := fd.Name.Name
			var msg *types.Named
			if _, ok := codecSuffix(name, "Encode", "Append", "encode", "append"); ok {
				msg = firstMessageParam(pass, fd)
			} else if _, ok := codecSuffix(name, "Decode", "decode"); ok {
				msg = firstMessageResult(pass, fd)
			} else {
				continue
			}
			if msg == nil || delegatesMessage(pass, fd, msg) {
				continue
			}
			st, ok := msg.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			seen := referencedFields(pass, fd, msg, st)
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if !f.Exported() || seen[f.Name()] {
					continue
				}
				pass.Reportf(fd.Pos(),
					"%s never references %s.%s; every exported field of a wire message must cross the wire in both codec versions", name, msg.Obj().Name(), f.Name())
			}
		}
	}
}

// firstMessageParam returns the first parameter whose type is a named
// struct declared in the package under analysis — the message an
// encoder serializes. []byte destinations and foreign types are
// passed over.
func firstMessageParam(pass *Pass, fd *ast.FuncDecl) *types.Named {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if n := localStruct(pass, sig.Params().At(i).Type()); n != nil {
			return n
		}
	}
	return nil
}

// firstMessageResult is the decoder-direction counterpart.
func firstMessageResult(pass *Pass, fd *ast.FuncDecl) *types.Named {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		if n := localStruct(pass, sig.Results().At(i).Type()); n != nil {
			return n
		}
	}
	return nil
}

// localStruct returns t (pointers peeled) as a named struct declared
// in the package under analysis, or nil.
func localStruct(pass *Pass, t types.Type) *types.Named {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() != pass.Pkg {
		return nil
	}
	if _, ok := n.Underlying().(*types.Struct); !ok {
		return nil
	}
	return n
}

// delegatesMessage reports whether fd hands the whole message to
// another codec function (EncodeFrameReply → AppendFrameReply,
// DecodeHelloReply → DecodeDatasetInfo): the callee owns field
// coverage then.
func delegatesMessage(pass *Pass, fd *ast.FuncDecl, msg *types.Named) bool {
	self, _ := pass.Info.Defs[fd.Name].(*types.Func)
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, ok := calleeObj(pass.Info, call).(*types.Func)
		if !ok || callee == self {
			return true
		}
		name := callee.Name()
		if _, ok := codecSuffix(name, "Encode", "Append", "encode", "append", "Decode", "decode"); !ok {
			return true
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok {
			return true
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if namedType(sig.Params().At(i).Type()) == msg {
				found = true
			}
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if namedType(sig.Results().At(i).Type()) == msg {
				found = true
			}
		}
		return true
	})
	return found
}

// referencedFields collects the field names of msg referenced in the
// body: selector expressions resolving to its fields, plus keys of
// composite literals of the type.
func referencedFields(pass *Pass, fd *ast.FuncDecl, msg *types.Named, st *types.Struct) map[string]bool {
	fieldObjs := make(map[types.Object]string, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fieldObjs[st.Field(i)] = st.Field(i).Name()
	}
	seen := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				if name, ok := fieldObjs[sel.Obj()]; ok {
					seen[name] = true
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pass.Info.Types[n]; ok && namedType(tv.Type) == msg {
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							seen[id.Name] = true
						}
					}
				}
			}
		}
		return true
	})
	return seen
}
