// Package analysis is vwlint's in-tree static-analysis framework: a
// zero-dependency go/parser + go/types driver in the style of
// golang.org/x/tools/go/analysis, carrying the eight project-specific
// analyzers (wallclock, lockdiscipline, hotpath, replyownership,
// maporder, pinownership, codecparity, hostilecount) that turn the
// frame pipeline's conventions — injected clocks, *Locked mutex
// discipline, allocation-free hot paths, reply-buffer ownership,
// byte-deterministic iteration, ring pin barriers, v1/v2 codec
// parity, hostile-count bounds — into compile-time checks.
//
// The framework is deliberately small: an Analyzer is a named Run
// function over a typechecked package (Pass), diagnostics are
// filtered through the //vw: directive comments before they reach the
// driver, and fixtures are validated by the analysistest subpackage's
// "// want" markers. Everything here builds with the standard library
// only, keeping the repo zero-dep.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one named invariant check. Run inspects the package
// held by the Pass and reports findings via Pass.Reportf; directive
// suppression (//vw:allow) is applied by the framework afterwards, so
// analyzers report every violation they see.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //vw:allow <name> annotations.
	Name string
	// Doc is a one-line description shown by vwlint's usage text.
	Doc string
	// Run performs the analysis.
	Run func(*Pass)
}

// A Pass holds one typechecked package plus the parsed //vw:
// directives, and collects the diagnostics an analyzer reports.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the package's import path (or the fixture directory name
	// under analysistest).
	Path string
	// Directives holds the parsed //vw: comments for the package.
	Directives *Directives
	// Class is the package's classification, derived once from the
	// directives (see Classify). Analyzers gate on it instead of
	// keeping private package lists.
	Class Class

	diags []Diagnostic
}

// A Diagnostic is one reported violation, positioned for editors.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position
	Message  string
	Analyzer string
}

// String renders the diagnostic in the conventional
// file:line:col: message [analyzer] form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos. Suppression by //vw:allow and
// the test-file filter happen later, in Run.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// All returns the eight vwlint analyzers in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Wallclock, LockDiscipline, HotPath, ReplyOwnership,
		MapOrder, PinOwnership, CodecParity, HostileCount,
	}
}

// A Package is one loaded, typechecked package ready to be analyzed.
type Package struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	Path       string
	Directives *Directives
}

// A Finding is one diagnostic plus whether an //vw:allow directive
// suppressed it. The -json driver mode reports both kinds so CI
// tooling can diff the full lint surface across PRs.
type Finding struct {
	Diagnostic
	Allowed bool
}

// RunFindings applies one analyzer to a loaded package and returns
// every finding, suppressed or not, sorted by position. Findings in
// _test.go files are dropped entirely: tests legitimately use wall
// clocks, raw allocation, and direct handler calls.
func RunFindings(a *Analyzer, pkg *Package) []Finding {
	pass := &Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Pkg,
		Info:       pkg.Info,
		Path:       pkg.Path,
		Directives: pkg.Directives,
		Class:      Classify(pkg.Directives),
	}
	a.Run(pass)
	var out []Finding
	for _, d := range pass.diags {
		if isTestFile(d.Position.Filename) {
			continue
		}
		out = append(out, Finding{
			Diagnostic: d,
			Allowed:    pkg.Directives.Allowed(a.Name, d.Position),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

// Run applies one analyzer to a loaded package and returns the
// diagnostics that survive directive suppression, sorted by position.
func Run(a *Analyzer, pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range RunFindings(a, pkg) {
		if !f.Allowed {
			out = append(out, f.Diagnostic)
		}
	}
	return out
}

// RunAll applies every analyzer in as to pkg and returns the merged
// surviving diagnostics.
func RunAll(as []*Analyzer, pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, a := range as {
		out = append(out, Run(a, pkg)...)
	}
	return out
}

// RunAllFindings applies every analyzer in as to pkg and returns the
// merged findings, suppressed ones included.
func RunAllFindings(as []*Analyzer, pkg *Package) []Finding {
	var out []Finding
	for _, a := range as {
		out = append(out, RunFindings(a, pkg)...)
	}
	return out
}

func isTestFile(name string) bool {
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}
