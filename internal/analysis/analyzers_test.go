package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Wallclock, "wallclock")
}

// TestWallclockOptIn proves the analyzer is gated on the
// //vw:deterministic directive: the _off fixture uses time.Now freely
// and must draw no findings.
func TestWallclockOptIn(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Wallclock, "wallclock_off")
}

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.LockDiscipline, "lockdiscipline")
}

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.HotPath, "hotpath")
}

func TestReplyOwnership(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ReplyOwnership, "replyownership")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapOrder, "maporder")
}

func TestPinOwnership(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.PinOwnership, "pinownership")
}

func TestCodecParity(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.CodecParity, "codecparity")
}

func TestHostileCount(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.HostileCount, "hostilecount")
}

// TestAnalyzerFixtures is the tripwire for untested analyzers: every
// analyzer in All() must ship a fixture package under testdata/src/
// with at least one flagged case (a "// want" marker) and at least
// one suppressed case (an "//vw:allow <name>" annotation), so a
// future analyzer cannot land without exercising both paths.
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range analysis.All() {
		dir := filepath.Join("testdata", "src", a.Name)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("analyzer %s has no fixture directory %s: %v", a.Name, dir, err)
			continue
		}
		var wants, allows int
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			wants += strings.Count(string(src), "// want ")
			allows += strings.Count(string(src), "//vw:allow "+a.Name)
		}
		if wants == 0 {
			t.Errorf("analyzer %s: fixture %s has no \"// want\" markers (no flagged case)", a.Name, dir)
		}
		if allows == 0 {
			t.Errorf("analyzer %s: fixture %s has no //vw:allow %s annotation (no suppressed case)", a.Name, dir, a.Name)
		}
	}
}
