package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Wallclock, "wallclock")
}

// TestWallclockOptIn proves the analyzer is gated on the
// //vw:deterministic directive: the _off fixture uses time.Now freely
// and must draw no findings.
func TestWallclockOptIn(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Wallclock, "wallclock_off")
}

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.LockDiscipline, "lockdiscipline")
}

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.HotPath, "hotpath")
}

func TestReplyOwnership(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ReplyOwnership, "replyownership")
}
