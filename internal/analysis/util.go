package analysis

import (
	"go/ast"
	"go/types"
)

// pathString renders a pure identifier/selector chain ("s", "c.mu",
// "w.rig.glove") for textual owner matching. It reports false for
// anything with calls, indexing, or other computation in the chain —
// those are handled conservatively by the callers.
func pathString(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.ParenExpr:
		return pathString(e.X)
	case *ast.SelectorExpr:
		base, ok := pathString(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	}
	return "", false
}

// calleeObj resolves the object a call expression invokes: a
// *types.Func for ordinary calls and methods, a *types.Builtin for
// builtins, nil for indirect calls through function values.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// rootIdent peels selectors, indexing, slicing, dereferences, and
// parens off an lvalue-ish expression and returns the base
// identifier, or nil when the base is not a plain identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// A funcScope is one analysis scope: a function declaration's body or
// a function literal's body. Scope-local analyses (lock tracking,
// reply ownership) treat nested literals as separate scopes because
// they may run at another time, on another goroutine.
type funcScope struct {
	Decl *ast.FuncDecl // nil for a FuncLit scope
	Lit  *ast.FuncLit  // nil for a FuncDecl scope
	Body *ast.BlockStmt
}

// funcScopes lists every function scope in the file, outermost first.
func funcScopes(file *ast.File) []funcScope {
	var out []funcScope
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, funcScope{Decl: n, Body: n.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcScope{Lit: n, Body: n.Body})
		}
		return true
	})
	return out
}

// inspectScope walks body without descending into nested function
// literals, so scope-local state is not confused by deferred or
// concurrent code.
func inspectScope(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// recvName returns the name of a method's receiver variable, or ""
// for functions, unnamed receivers, and blank receivers.
func recvName(fn *ast.FuncDecl) string {
	if fn == nil || fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	names := fn.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return ""
	}
	return names[0].Name
}
