package analysis

import (
	"go/ast"
	"go/types"
)

// Wallclock forbids direct wall-clock and global-RNG use in packages
// marked //vw:deterministic. The frame pipeline's byte-identity
// guarantee (same inputs → same frame bytes) and the netsim-based
// chaos suites both depend on time flowing only through the injected
// netsim.Clock and randomness only through seeded *rand.Rand values;
// one stray time.Now or rand.Float64 breaks replayability in ways no
// unit test reliably catches.
//
// Sites that genuinely need wall time — observability stage timers,
// net.Conn deadlines, the real Clock implementation itself — carry
// //vw:allow wallclock annotations.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/Sleep/After and global math/rand in //vw:deterministic packages",
	Run:  runWallclock,
}

// wallclockTimeFuncs are the package-level time functions that read
// or wait on the wall clock. Methods (t.Sub, t.Add) and pure
// constructors (time.Duration, time.Unix) stay legal.
var wallclockTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Since":     true,
	"Until":     true,
}

// wallclockRandExempt lists the math/rand package-level functions
// that do not touch the global source; everything else at package
// level does.
var wallclockRandExempt = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runWallclock(pass *Pass) {
	if !pass.Class.Deterministic {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := calleeObj(pass.Info, call).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				// One escape hatch must be caught before the method
				// exemption: calling any wall-clock method (Now, After,
				// Sleep, NewTicker, ...) directly on the package-level
				// RealClock var (netsim's real implementation) is a
				// method call syntactically, but it reads the wall
				// clock while dodging injection.
				if wallclockTimeFuncs[fn.Name()] && isRealClockVar(pass.Info, call) {
					pass.Reportf(call.Pos(),
						"%s on RealClock bypasses clock injection in a deterministic package; accept a netsim.Clock instead", fn.Name())
				}
				return true // methods on time.Time etc. are pure
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallclockTimeFuncs[fn.Name()] {
					pass.Reportf(call.Pos(),
						"time.%s reads the wall clock in a deterministic package; use the injected netsim.Clock", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !wallclockRandExempt[fn.Name()] {
					pass.Reportf(call.Pos(),
						"global %s.%s is nondeterministic; use a seeded *rand.Rand", pathBase(fn.Pkg().Path()), fn.Name())
				}
			}
			return true
		})
	}
}

// isRealClockVar reports whether the method call's receiver expression
// resolves to a package-level variable named "RealClock" — either
// qualified (netsim.RealClock.Now()) or in scope directly
// (RealClock.Now()). Locals and struct fields that happen to share the
// name are injection points, not the global, and stay legal.
func isRealClockVar(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	var id *ast.Ident
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.IsField() || v.Name() != "RealClock" || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

func pathBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}
