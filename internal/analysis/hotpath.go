package analysis

import (
	"go/ast"
	"go/types"
)

// HotPath flags allocation sources inside functions marked
// //vw:hotpath — the per-frame code (recompute, rake integration,
// wire encode) whose allocs/frame budget the bench tripwire guards.
// The analyzer catches the cause before benchcheck catches the
// symptom. Five things are flagged:
//
//   - make and new
//   - append that grows a function-local slice (appending into a
//     recycled struct-field buffer or a caller-provided slice
//     parameter is the idiom and stays legal, as does the x[:0] reset)
//   - any fmt call (Sprintf and friends allocate; errors belong on
//     cold paths, annotated //vw:allow hotpath)
//   - interface boxing: a concrete value passed where an interface is
//     expected, or converted to an interface type
//   - closure captures: a func literal that references enclosing
//     variables allocates both closure and captured variables
//
// Amortized growth sites (the one make that reallocs a recycled
// buffer when capacity is finally exceeded) carry //vw:allow hotpath
// line annotations.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "flag make/append-growth/fmt/interface-boxing/closure-captures in //vw:hotpath functions",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) {
	for _, fn := range pass.Directives.HotpathFuncs() {
		checkHotFunc(pass, fn)
	}
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Info
	body := fn.Body

	// localObj reports whether an identifier's object is declared
	// inside fn's body (as opposed to a parameter, receiver, field
	// base, or package-level variable).
	localObj := func(id *ast.Ident) bool {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		return v.Pos() >= body.Pos() && v.Pos() < body.End()
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capturesEnclosing(info, n) {
				pass.Reportf(n.Pos(), "closure captures enclosing variables in hot path (allocates); hoist it or pass state explicitly")
			} else {
				// Non-capturing literals (e.g. sort comparators) are
				// hoisted by the compiler; still scan their bodies.
				return true
			}
			return true
		case *ast.CallExpr:
			checkHotCall(pass, n, localObj)
		}
		return true
	})
}

func checkHotCall(pass *Pass, call *ast.CallExpr, localObj func(*ast.Ident) bool) {
	info := pass.Info

	// Interface conversions spelled as T(x) with T an interface type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at, ok := info.Types[call.Args[0]]; ok && boxes(at.Type, tv.Type) {
				pass.Reportf(call.Pos(), "conversion to interface %s boxes a %s in hot path", tv.Type, at.Type)
			}
		}
		return
	}

	switch obj := calleeObj(info, call).(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "make":
			pass.Reportf(call.Pos(), "make allocates in hot path; use a recycled buffer")
		case "new":
			pass.Reportf(call.Pos(), "new allocates in hot path; use a recycled buffer")
		case "append":
			if len(call.Args) == 0 {
				return
			}
			dst := ast.Unparen(call.Args[0])
			// x[:0] and x[a:b] resets reuse backing storage.
			if sl, ok := dst.(*ast.SliceExpr); ok {
				dst = sl.X
			}
			if id, ok := dst.(*ast.Ident); ok && localObj(id) {
				pass.Reportf(call.Pos(), "append grows function-local slice %s in hot path; append into a recycled buffer or caller-provided slice", id.Name)
			}
		}
		return
	case *types.Func:
		if pkg := obj.Pkg(); pkg != nil && pkg.Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s allocates in hot path; move formatting to a cold path", obj.Name())
			return
		}
		sig, ok := obj.Type().(*types.Signature)
		if !ok {
			return
		}
		checkBoxing(pass, call, sig)
	}
}

// checkBoxing flags concrete values passed to interface parameters.
func checkBoxing(pass *Pass, call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		} else {
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := pass.Info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if at.Value != nil {
			continue // constants are materialized at compile time
		}
		if boxes(at.Type, pt) {
			pass.Reportf(arg.Pos(), "passing %s to interface parameter boxes it in hot path", at.Type)
		}
	}
}

// boxes reports whether passing a value of concrete type at where
// iface is expected heap-allocates. Pointer-shaped values (pointers,
// maps, channels, funcs, unsafe pointers) fit in the interface word;
// nil and existing interfaces do not box.
func boxes(at, iface types.Type) bool {
	if at == nil || types.IsInterface(at) {
		return false
	}
	switch u := at.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	case *types.Basic:
		switch u.Kind() {
		case types.UntypedNil, types.UntypedBool, types.UntypedRune, types.UntypedInt:
			// Untyped constants are materialized at compile time into
			// read-only data; small ones do not allocate per call.
			return false
		}
		if u.Info()&types.IsString != 0 || u.Info()&types.IsFloat != 0 || u.Info()&types.IsComplex != 0 {
			return true
		}
		return true
	}
	_ = iface
	return true
}

// capturesEnclosing reports whether lit references any variable
// declared outside the literal but inside some enclosing function —
// i.e. whether the closure has captures that force an allocation.
func capturesEnclosing(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captures.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			captured = true
		}
		return true
	})
	return captured
}
