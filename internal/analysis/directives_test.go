package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *Directives) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dir.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, ParseDirectives(fset, []*ast.File{f})
}

func TestDirectiveParsing(t *testing.T) {
	src := `// Package p is deterministic.
//
//vw:deterministic
package p

//vw:hotpath
func hot() {
	_ = 1 //vw:allow wallclock,hotpath -- both names, one comment
}
`
	_, d := parseOne(t, src)
	if !d.Deterministic {
		t.Error("//vw:deterministic in package doc not detected")
	}
	if len(d.HotpathFuncs()) != 1 || d.HotpathFuncs()[0].Name.Name != "hot" {
		t.Errorf("hotpath funcs = %v, want [hot]", d.HotpathFuncs())
	}
	if len(d.Bad) != 0 {
		t.Errorf("unexpected bad directives: %v", d.Bad)
	}
	pos := token.Position{Filename: "dir.go", Line: 8}
	for _, name := range []string{"wallclock", "hotpath"} {
		if !d.Allowed(name, pos) {
			t.Errorf("line 8 should be allowed for %s", name)
		}
	}
	if d.Allowed("lockdiscipline", pos) {
		t.Error("unlisted analyzer must not be allowed")
	}
	// The line-above form covers the next line only.
	if d.Allowed("wallclock", token.Position{Filename: "dir.go", Line: 10}) {
		t.Error("allow must not leak past the next line")
	}
}

func TestDirectiveWire(t *testing.T) {
	src := `// Package p speaks the wire format.
//
//vw:wire
//vw:deterministic
package p
`
	_, d := parseOne(t, src)
	if !d.Wire {
		t.Error("//vw:wire in package doc not detected")
	}
	if !d.Deterministic {
		t.Error("//vw:deterministic stacked under //vw:wire not detected")
	}
	c := Classify(d)
	if !c.WireFacing || !c.Deterministic || c.HotPath {
		t.Errorf("Classify = %+v, want WireFacing+Deterministic only", c)
	}
}

// TestDirectiveUnknownAllowName proves a typo in an allow list is
// itself a finding: //vw:allow for an analyzer that does not exist
// must surface as a bad directive, not silently suppress nothing.
func TestDirectiveUnknownAllowName(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //vw:allow maporderr -- typo'd analyzer name
}
`
	_, d := parseOne(t, src)
	if len(d.Bad) != 1 {
		t.Fatalf("bad directives = %d, want 1: %v", len(d.Bad), d.Bad)
	}
	if !strings.Contains(d.Bad[0].Message, `unknown analyzer "maporderr"`) {
		t.Errorf("bad[0] = %q, want unknown-analyzer message", d.Bad[0].Message)
	}
	// The typo'd name must not register as an active allow site.
	if d.Allowed("maporderr", token.Position{Filename: "dir.go", Line: 4}) {
		t.Error("unknown analyzer name must not create an allow site")
	}
	// A mixed list keeps the valid names and reports only the bogus one.
	src2 := `package p

func g() {
	_ = 1 //vw:allow wallclock,bogus,maporder -- one bad apple
}
`
	_, d2 := parseOne(t, src2)
	if len(d2.Bad) != 1 || !strings.Contains(d2.Bad[0].Message, `"bogus"`) {
		t.Fatalf("bad = %v, want exactly one complaint about %q", d2.Bad, "bogus")
	}
	pos := token.Position{Filename: "dir.go", Line: 4}
	if !d2.Allowed("wallclock", pos) || !d2.Allowed("maporder", pos) {
		t.Error("valid names in a mixed list must still suppress")
	}
}

func TestAllowCounts(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //vw:allow wallclock,maporder -- two names, one site
	_ = 2 //vw:allow maporder -- second maporder site
}
`
	_, d := parseOne(t, src)
	counts := d.AllowCounts()
	if counts["wallclock"] != 1 || counts["maporder"] != 2 {
		t.Errorf("AllowCounts = %v, want wallclock:1 maporder:2", counts)
	}
}

func TestDirectiveBadVerbs(t *testing.T) {
	src := `package p

//vw:alow wallclock
func a() {}

func b() {
	_ = 1 //vw:allow
}

//vw:hotpath
var notAFunc = 1
`
	_, d := parseOne(t, src)
	if len(d.Bad) != 3 {
		t.Fatalf("bad directives = %d, want 3: %v", len(d.Bad), d.Bad)
	}
	for i, want := range []string{"unknown directive", "needs at least one analyzer", "doc comment"} {
		if !strings.Contains(d.Bad[i].Message, want) {
			t.Errorf("bad[%d] = %q, want substring %q", i, d.Bad[i].Message, want)
		}
	}
}
