package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *Directives) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dir.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, ParseDirectives(fset, []*ast.File{f})
}

func TestDirectiveParsing(t *testing.T) {
	src := `// Package p is deterministic.
//
//vw:deterministic
package p

//vw:hotpath
func hot() {
	_ = 1 //vw:allow wallclock,hotpath -- both names, one comment
}
`
	_, d := parseOne(t, src)
	if !d.Deterministic {
		t.Error("//vw:deterministic in package doc not detected")
	}
	if len(d.HotpathFuncs()) != 1 || d.HotpathFuncs()[0].Name.Name != "hot" {
		t.Errorf("hotpath funcs = %v, want [hot]", d.HotpathFuncs())
	}
	if len(d.Bad) != 0 {
		t.Errorf("unexpected bad directives: %v", d.Bad)
	}
	pos := token.Position{Filename: "dir.go", Line: 8}
	for _, name := range []string{"wallclock", "hotpath"} {
		if !d.Allowed(name, pos) {
			t.Errorf("line 8 should be allowed for %s", name)
		}
	}
	if d.Allowed("lockdiscipline", pos) {
		t.Error("unlisted analyzer must not be allowed")
	}
	// The line-above form covers the next line only.
	if d.Allowed("wallclock", token.Position{Filename: "dir.go", Line: 10}) {
		t.Error("allow must not leak past the next line")
	}
}

func TestDirectiveBadVerbs(t *testing.T) {
	src := `package p

//vw:alow wallclock
func a() {}

func b() {
	_ = 1 //vw:allow
}

//vw:hotpath
var notAFunc = 1
`
	_, d := parseOne(t, src)
	if len(d.Bad) != 3 {
		t.Fatalf("bad directives = %d, want 3: %v", len(d.Bad), d.Bad)
	}
	for i, want := range []string{"unknown directive", "needs at least one analyzer", "doc comment"} {
		if !strings.Contains(d.Bad[i].Message, want) {
			t.Errorf("bad[%d] = %q, want substring %q", i, d.Bad[i].Message, want)
		}
	}
}
