package analysis

// A Class records which invariant families a package has opted into.
// It is the shared package-classification layer: computed once per
// package from the //vw: directives and handed to every analyzer
// through Pass.Class, replacing the per-analyzer private package
// lists of the first-generation suite.
//
//   - Deterministic packages promise byte-identical replay: the
//     wallclock analyzer bans wall-clock/global-RNG reads and the
//     maporder analyzer bans map-iteration order leaking into output.
//   - WireFacing packages encode, decode, or route protocol bytes:
//     maporder, codecparity, and hostilecount all apply.
//   - HotPath marks packages containing //vw:hotpath functions; the
//     hotpath analyzer scopes itself to those functions.
type Class struct {
	// Deterministic is set by the //vw:deterministic package directive.
	Deterministic bool
	// WireFacing is set by the //vw:wire package directive.
	WireFacing bool
	// HotPath reports whether any function carries //vw:hotpath.
	HotPath bool
}

// Classify derives a package's class from its parsed directives. The
// directives in the source are the single source of truth — the
// PackageClasses registry below only pins which packages must carry
// them — so the vet -vettool driver and the analysistest fixtures see
// exactly the same classification as the standalone driver.
func Classify(d *Directives) Class {
	return Class{
		Deterministic: d.Deterministic,
		WireFacing:    d.Wire,
		HotPath:       len(d.hotpath) > 0,
	}
}

// PackageClasses pins the classification of the module's own
// packages. The vwlint driver fails if a listed package drops the
// matching //vw: directive, so neither the determinism net nor the
// wire-facing net can rot silently. (The inverse — a directive on an
// unlisted package — is fine: fixtures and new packages opt in
// locally first.)
var PackageClasses = map[string]Class{
	"repro/internal/client":   {WireFacing: true},
	"repro/internal/datasets": {Deterministic: true},
	"repro/internal/dlib":     {Deterministic: true, WireFacing: true},
	"repro/internal/env":      {Deterministic: true},
	"repro/internal/netsim":   {Deterministic: true},
	"repro/internal/relay":    {Deterministic: true, WireFacing: true},
	"repro/internal/server":   {Deterministic: true, WireFacing: true},
	"repro/internal/store":    {Deterministic: true},
	"repro/internal/vr":       {Deterministic: true},
	"repro/internal/wire":     {Deterministic: true, WireFacing: true},
}

// WireFacingPath reports whether the import path names a wire-facing
// package per the registry. Analyzers use it to classify foreign
// packages (for example the declaring package of a switch tag's type)
// where only this package's directives are in scope.
func WireFacingPath(path string) bool { return PackageClasses[path].WireFacing }
