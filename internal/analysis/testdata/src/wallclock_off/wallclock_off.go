// Package wallclock_off proves the wallclock analyzer is opt-in:
// without a //vw:deterministic directive nothing is flagged.
package wallclock_off

import "time"

func fine() time.Time { return time.Now() }
