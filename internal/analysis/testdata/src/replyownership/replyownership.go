// Package replyownership is the fixture for the replyownership
// analyzer: once a handler hands its reply buffer to the transport
// via ReplyDone/FinishReply, later writes through the handed-off
// variables are flagged; reads (including returning the buffer) are
// not.
package replyownership

type Ctx struct{ done func() }

func (c *Ctx) ReplyDone(fn func()) { c.done = fn }
func (c *Ctx) FinishReply()        {}

type frameBuf struct {
	buf  []byte
	refs int
}

func (f *frameBuf) release() {}

func good(c *Ctx, f *frameBuf) []byte {
	f.buf = append(f.buf[:0], 1, 2) // before the handoff: legal
	f.refs++
	c.ReplyDone(f.release)
	n := len(f.buf) // reads stay legal
	_ = n
	return f.buf // the zero-copy return itself
}

func bad(c *Ctx, f *frameBuf) []byte {
	c.ReplyDone(f.release)
	f.buf[0] = 9             // want `write to f after the reply was handed`
	f.buf = append(f.buf, 3) // want `write to f after the reply was handed` `write to f after the reply was handed`
	f.refs++                 // want `write to f after the reply was handed`
	return f.buf
}

func badFinish(c *Ctx) {
	c.FinishReply()
	c.done = nil // want `write to c after the reply was handed`
}

func badGoroutine(c *Ctx, f *frameBuf) {
	c.ReplyDone(f.release)
	go func() {
		f.buf[0] = 1 // want `write to f after the reply was handed`
	}()
}

func rebind(c *Ctx, f *frameBuf) {
	c.ReplyDone(f.release)
	f = nil // rebinding the variable is not a write through the buffer
	_ = f
}

func allowed(c *Ctx, f *frameBuf) {
	c.ReplyDone(f.release)
	f.refs = 0 //vw:allow replyownership -- fixture: single-threaded teardown
}

func other(c *Ctx, f *frameBuf, stats *frameBuf) {
	c.ReplyDone(f.release)
	stats.refs++ // a different buffer: legal
}
