// Package lockdiscipline is the fixture for the lockdiscipline
// analyzer: *Locked call sites and "guards everything below" field
// access checked against the positional mutex model.
package lockdiscipline

import "sync"

type S struct {
	name string // above the guard: unguarded

	mu sync.Mutex // guards everything below

	count int
	items []int
}

// bumpLocked runs with s.mu held by contract; its own field access is
// legal without a visible Lock.
func (s *S) bumpLocked() {
	s.count++
	s.helperLocked() // same receiver, still under the contract
}

func (s *S) helperLocked() { s.items = s.items[:0] }

func (s *S) Good() {
	s.mu.Lock()
	s.count = 1
	s.bumpLocked()
	s.mu.Unlock()
}

func (s *S) GoodDefer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = append(s.items, 1)
}

func (s *S) GoodUnguarded() string {
	return s.name // declared above the mutex: not guarded
}

func (s *S) BadCall() {
	s.bumpLocked() // want `s\.bumpLocked called without holding s\.mu`
}

func (s *S) BadAccess() int {
	return s.count // want `s\.count is guarded by s\.mu`
}

func (s *S) BadAfterUnlock() {
	s.mu.Lock()
	s.count = 2
	s.mu.Unlock()
	s.count = 3 // want `s\.count is guarded by s\.mu`
}

// EarlyReturn is the lock-check-unlock-return idiom: the unlock on
// the exiting branch must not end the held region for the fallthrough
// path.
func (s *S) EarlyReturn() int {
	s.mu.Lock()
	if s.count > 0 {
		v := s.count
		s.mu.Unlock()
		return v
	}
	v := s.count
	s.mu.Unlock()
	return v
}

// Reacquire drops the lock around a slow operation and takes it back.
func (s *S) Reacquire() {
	s.mu.Lock()
	n := s.count
	s.mu.Unlock()
	slow(n)
	s.mu.Lock()
	s.count = n + 1
	s.mu.Unlock()
}

func slow(int) {}

// New is construction: the value is not shared yet, so lock-free
// writes through the local are fine.
func New() *S {
	s := &S{name: "fresh"}
	s.count = 1
	s.items = append(s.items, 1)
	return s
}

// Goroutine shows the worker-closure hazard: the literal is its own
// scope, so the parent's Lock does not cover it.
func (s *S) Goroutine() {
	s.mu.Lock()
	go func() {
		s.count++ // want `s\.count is guarded by s\.mu`
	}()
	s.mu.Unlock()
}

func (s *S) Allowed() {
	s.count = 9 //vw:allow lockdiscipline -- fixture: single-owner setup phase
}
