// Package codecparity is the fixture for the codecparity analyzer:
// the package opts in via //vw:wire, so enum switches must be
// exhaustive, encoders must pair with decoders, Proc* registrations
// must be complete (see register_*.go), and every exported field of a
// message struct must cross the wire.
//
//vw:wire
package codecparity

// Kind models wire.CmdKind: a named constant-backed enum.
type Kind uint8

const (
	KindA Kind = iota
	KindB
	KindC
)

func badSwitch(k Kind) {
	switch k { // want `switch on codecparity\.Kind covers 2 of 3 constants; missing KindC`
	case KindA:
	case KindB:
	}
}

func badSwitchDefault(k Kind) {
	switch k { // want `covers 2 of 3 constants; missing KindC`
	case KindA, KindB:
	default: // a default clause does not excuse
	}
}

func goodSwitch(k Kind) {
	switch k {
	case KindA, KindB:
	case KindC:
	}
}

func goodNonEnumSwitch(k Kind) {
	// Naming no constants of the type is not an enum dispatch.
	switch k {
	}
}

func goodPlainSwitch(n uint8) {
	switch n { // unnamed basic type: not an enum
	case 1:
	case 2:
	}
}

// Ping is a fully-wired message: encoder and decoder exist and both
// reference every exported field.
type Ping struct{ Seq uint32 }

func EncodePing(p Ping) []byte              { return []byte{byte(p.Seq)} }
func DecodePing(buf []byte) (Ping, error)   { return Ping{Seq: uint32(buf[0])}, nil }

func EncodeOrphan(v uint32) []byte { // want `encoder EncodeOrphan has no matching decoder`
	return []byte{byte(v)}
}

func DecodeWidow(buf []byte) (uint32, error) { // want `decoder DecodeWidow has no matching encoder`
	return uint32(buf[0]), nil
}

// Pose is a message whose codecs each skip a field.
type Pose struct {
	X uint32
	Y uint32
}

func EncodePose(p Pose) []byte { // want `EncodePose never references Pose\.Y`
	return []byte{byte(p.X)}
}

func DecodePose(buf []byte) (Pose, error) { // want `DecodePose never references Pose\.Y`
	var p Pose
	p.X = uint32(buf[0])
	return p, nil
}

// EncodePoseWrapped delegates the message to EncodePose, which owns
// field coverage; the wrapper is exempt.
func EncodePoseWrapped(p Pose) []byte {
	buf := []byte{0xFF}
	return append(buf, EncodePose(p)...)
}

func DecodePoseWrapped(buf []byte) (Pose, error) { return DecodePose(buf[1:]) }

// helperNotACodec has no codec prefix and []byte in its signature:
// ignored by every sub-check.
func helperNotACodec(p Pose) []byte { return nil }

// AppendSnapshots has a codec name but no []byte anywhere: a
// snapshot builder, not a codec, so pairing does not apply.
func AppendSnapshots(dst []Pose, p Pose) []Pose { return append(dst, p) }

//vw:allow codecparity -- fixture: write-only probe record, never decoded
func EncodeProbe(v uint64) []byte { return []byte{byte(v)} }
