package codecparity

// Procedure names, modelling wire.Proc*.
const (
	ProcPing = "fx.ping"
	ProcPose = "fx.pose"
)

// mux models dlib.Server's procedure table.
type mux struct{}

func (mux) Register(name string, fn func([]byte) []byte) {}

// badRegister wires up one of the two procedures: a tier built from
// this file strands ProcPose. Registration coverage is per file, so
// the complete set in register_good.go does not excuse it.
func badRegister(m mux) {
	m.Register(ProcPing, nil) // want `registers 1 of 2 codecparity\.Proc\* procedures; missing ProcPose`
}
