package codecparity

// goodRegister wires every procedure: complete coverage in this file.
func goodRegister(m mux) {
	m.Register(ProcPing, nil)
	m.Register(ProcPose, nil)
}

// allowedRegister demonstrates the escape hatch for a deliberately
// partial tier (e.g. a read-only monitor that never steers).
func allowedRegister(m mux) {
	m.Register(ProcPing, nil) //vw:allow codecparity -- fixture: read-only tier, poses unsupported
}
