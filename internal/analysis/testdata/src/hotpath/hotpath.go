// Package hotpath is the fixture for the hotpath analyzer: functions
// marked //vw:hotpath must not allocate, so make/new, growth of
// function-local slices, fmt, interface boxing, and capturing
// closures are flagged — while the recycled-buffer idioms the frame
// pipeline actually uses stay legal.
package hotpath

import (
	"fmt"
	"sort"
)

type ring struct {
	scratch []int
	buf     []byte
}

func eat(v any)     {}
func take(s string) {}
func point(p *ring) {}

//vw:hotpath
func (r *ring) Hot(dst []byte, n int) []byte {
	tmp := make([]byte, n) // want `make allocates in hot path`
	_ = tmp
	p := new(ring) // want `new allocates in hot path`
	_ = p

	var local []int
	local = append(local, n) // want `append grows function-local slice local`
	_ = local

	r.scratch = append(r.scratch, n)     // recycled field buffer: legal
	r.scratch = append(r.scratch[:0], n) // reset reuse: legal
	dst = append(dst, 1)                 // caller-provided: legal

	s := fmt.Sprintf("%d", n) // want `fmt\.Sprintf allocates in hot path`
	_ = s

	eat(n)     // want `passing int to interface parameter boxes it`
	eat(&r)    // pointer fits the interface word: legal
	eat(nil)   // legal
	take("ok") // concrete parameter: legal
	point(r)   // legal

	_ = any(n) // want `conversion to interface .* boxes a int`

	total := 0
	inc := func() { total++ } // want `closure captures enclosing variables in hot path`
	inc()

	sort.Slice(r.scratch, func(i, j int) bool { return r.scratch[i] < r.scratch[j] }) // want `closure captures enclosing variables in hot path` `passing \[\]int to interface parameter boxes it`

	grown := make([]byte, 2*cap(r.buf)) //vw:allow hotpath -- amortized growth when capacity is exceeded
	r.buf = grown
	return dst
}

// Cold is unmarked: the same code draws no findings.
func (r *ring) Cold(n int) string {
	tmp := make([]byte, n)
	_ = tmp
	return fmt.Sprintf("%d", n)
}
