// Package maporder is the fixture for the maporder analyzer: the
// package opts in via the directive below (//vw:wire would gate
// identically), so map iteration feeding slices, strings, or writers
// is flagged while commutative bodies and the collect-then-sort idiom
// stay legal.
//
//vw:deterministic
package maporder

import (
	"bytes"
	"fmt"
	"sort"
)

func badAppend(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want `map iteration order leaks into slice out`
	}
	return out
}

func badString(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `map iteration order leaks into string s`
	}
	return s
}

func badWriter(m map[string]int, buf *bytes.Buffer) {
	for k := range m {
		buf.WriteString(k) // want `map iteration order leaks into a writer via WriteString`
	}
}

func badFprintf(m map[string]int, buf *bytes.Buffer) {
	for k, v := range m {
		fmt.Fprintf(buf, "%s=%d\n", k, v) // want `map iteration order leaks into a writer via fmt\.Fprintf`
	}
}

func badFieldAppend(m map[int32]uint64) {
	var st struct{ shadow []uint64 }
	for _, seq := range m {
		st.shadow = append(st.shadow, seq) // want `map iteration order leaks into slice st`
	}
	_ = st
}

func goodSorted(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// goodResliceSorted is the frame pipeline's recycled-buffer idiom:
// append to the caller's dst, then sort the appended tail through a
// reslice alias.
func goodResliceSorted(m map[int]string, dst []string) []string {
	base := len(dst)
	for _, v := range m {
		dst = append(dst, v)
	}
	out := dst[base:]
	sort.Strings(out)
	return dst
}

func goodDeleteOnly(m map[int]string) {
	for k, v := range m {
		if v == "" {
			delete(m, k)
		}
	}
}

func goodCounter(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v // numeric accumulation is commutative
	}
	return total
}

func goodMin(m map[int]int) int {
	best := 1 << 30
	for _, v := range m {
		if v < best {
			best = v // min reduction is commutative
		}
	}
	return best
}

func goodLoopLocal(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...) // loop-local accumulator dies each iteration
		n += len(local)
	}
	return n
}

func allowed(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) //vw:allow maporder -- fixture: the caller sorts before encoding
	}
	return out
}
