// Package hostilecount is the fixture for the hostilecount analyzer:
// the package opts in via //vw:wire, so allocations sized by raw
// decoder reads are flagged until a bounds guard (comparison or a
// guarded count reader) dominates them.
//
//vw:wire
package hostilecount

import "encoding/binary"

// decoder models wire's cursor decoder: uN methods return raw wire
// integers; count validates against a maximum first.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) u32() uint32 {
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) uvarint() uint64 {
	v, n := binary.Uvarint(d.buf[d.off:])
	d.off += n
	return v
}

// count is the sanctioned guarded reader: its result is born clean.
func (d *decoder) count(max int) int {
	n := int(d.u32())
	if n < 0 || n > max {
		return -1
	}
	return n
}

func badMake(d *decoder) []uint32 {
	n := int(d.u32())
	return make([]uint32, n) // want `make sized by an unguarded wire-decoded count`
}

func badArith(d *decoder) []byte {
	n := d.uvarint()
	return make([]byte, n*4) // want `make sized by an unguarded wire-decoded count`
}

func badBinary(buf []byte) []byte {
	n := binary.LittleEndian.Uint32(buf)
	return make([]byte, n) // want `make sized by an unguarded wire-decoded count`
}

func badPropagated(d *decoder) []byte {
	n := int(d.u32())
	m := n + 8
	return make([]byte, m) // want `make sized by an unguarded wire-decoded count`
}

func badLoop(d *decoder) []uint32 {
	n := int(d.u32())
	var out []uint32
	for i := 0; i < n; i++ { // want `loop bounded by an unguarded wire-decoded count grows a slice`
		out = append(out, d.u32())
	}
	return out
}

func badRangeInt(d *decoder) []uint32 {
	n := int(d.u32())
	var out []uint32
	for range n { // want `loop bounded by an unguarded wire-decoded count grows a slice`
		out = append(out, d.u32())
	}
	return out
}

func goodGuarded(d *decoder, max int) []uint32 {
	n := int(d.u32())
	if n > max {
		return nil
	}
	return make([]uint32, n)
}

func goodInitGuard(d *decoder) []byte {
	if n := int(d.u32()); n <= 1024 {
		return make([]byte, n)
	}
	return nil
}

func goodCounted(d *decoder, max int) []uint32 {
	n := d.count(max)
	return make([]uint32, n)
}

func goodMinBound(d *decoder) []byte {
	n := min(int(d.u32()), 4096) // min is itself the bound
	return make([]byte, n)
}

func goodReassigned(d *decoder) []byte {
	n := int(d.u32())
	n = 16 // overwritten by a constant before use
	return make([]byte, n)
}

func goodLen(buf []byte) []byte {
	return make([]byte, len(buf))
}

func goodLoopCounted(d *decoder, max int) []uint32 {
	n := d.count(max)
	var out []uint32
	for i := 0; i < n; i++ {
		out = append(out, d.u32())
	}
	return out
}

func allowedRaw(d *decoder) []byte {
	n := int(d.u32())
	return make([]byte, n) //vw:allow hostilecount -- fixture: trusted in-process peer
}
