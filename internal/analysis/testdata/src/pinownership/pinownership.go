// Package pinownership is the fixture for the pinownership analyzer:
// the ring type is matched by name (any type named Ring with
// Pin/Unpin/LoadStep methods models store.Ring), so no directive is
// needed. Pins must pair with Unpins or hand ownership to a field;
// loads need a pin in scope.
package pinownership

// Ring models store.Ring: a bounded live-timestep buffer whose
// entries are recycled unless pinned.
type Ring struct{ pinned map[int]int }

func (r *Ring) Pin(t int) bool { r.pinned[t]++; return true }
func (r *Ring) Unpin(t int)    { r.pinned[t]-- }
func (r *Ring) LoadStep(t int) (*Step, error) {
	return nil, nil // the ring's own methods are exempt from the protocol
}

// Step models one live timestep buffer.
type Step struct{}

type server struct {
	ring   *Ring
	pinned int
}

func badLeak(r *Ring, t int) {
	r.Pin(t) // want `Ring\.Pin on r has no matching Unpin or field handoff`
}

func badWrongRing(a, b *Ring, t int) {
	a.Pin(t) // want `Ring\.Pin on a has no matching Unpin or field handoff`
	b.Unpin(t)
}

func badLoadNoPin(r *Ring, t int) *Step {
	s, _ := r.LoadStep(t) // want `Ring\.LoadStep on r without a Ring\.Pin earlier in this scope`
	return s
}

func badUnpinBeforePin(r *Ring, t int) *Step {
	s, _ := r.LoadStep(t) // want `Ring\.LoadStep on r without a Ring\.Pin earlier in this scope`
	r.Pin(t)
	r.Unpin(t)
	return s
}

func goodPaired(r *Ring, t int) *Step {
	r.Pin(t)
	s, _ := r.LoadStep(t)
	r.Unpin(t)
	return s
}

func goodDeferred(r *Ring, t int) *Step {
	r.Pin(t)
	defer r.Unpin(t)
	s, _ := r.LoadStep(t)
	return s
}

func goodDeferredClosure(r *Ring, t int) {
	r.Pin(t)
	defer func() { r.Unpin(t) }()
}

// goodHandoff is the server's livePinned idiom: the pinned step is
// recorded in a struct field and unpinned on the next round.
func (s *server) goodHandoff(t int) {
	s.ring.Pin(t)
	s.pinned = t
}

// goodRotate pins the new step and unpins the previous one.
func (s *server) goodRotate(t int) {
	s.ring.Pin(t)
	if s.pinned >= 0 {
		s.ring.Unpin(s.pinned)
	}
	s.pinned = t
}

func allowedLeak(r *Ring, t int) {
	r.Pin(t) //vw:allow pinownership -- fixture: unpinned by the producer callback
}

func allowedLoad(r *Ring, t int) {
	//vw:allow pinownership -- fixture: caller holds the pin
	_, _ = r.LoadStep(t)
}
