// Package wallclock is the fixture for the wallclock analyzer: the
// package opts in via the directive below, so package-level time and
// global math/rand calls are flagged while injected clocks, seeded
// RNGs, and pure time.Time arithmetic stay legal.
//
//vw:deterministic
package wallclock

import (
	"math/rand"
	"time"
)

type clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
	Sleep(d time.Duration)
}

// RealClock models netsim.RealClock: a package-level var whose methods
// read the wall clock. Calling through it dodges injection, so the
// analyzer flags it even though Now/After are method calls here.
var RealClock clock

func bad() {
	_ = time.Now()                     // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)       // want `time\.Sleep reads the wall clock`
	_ = time.After(time.Second)        // want `time\.After reads the wall clock`
	_ = time.NewTicker(time.Second)    // want `time\.NewTicker reads the wall clock`
	_ = time.Tick(time.Second)         // want `time\.Tick reads the wall clock`
	_ = time.NewTimer(time.Second)     // want `time\.NewTimer reads the wall clock`
	_ = time.AfterFunc(time.Second, func() {}) // want `time\.AfterFunc reads the wall clock`
	_ = time.Since(time.Time{})        // want `time\.Since reads the wall clock`
	_ = time.Until(time.Time{})        // want `time\.Until reads the wall clock`
	_ = rand.Intn(10)                  // want `global rand\.Intn is nondeterministic`
	_ = rand.Float64()                 // want `global rand\.Float64 is nondeterministic`
	rand.Shuffle(3, func(i, j int) {}) // want `global rand\.Shuffle is nondeterministic`
	_ = RealClock.Now()                // want `Now on RealClock bypasses clock injection`
	_ = RealClock.After(time.Second)   // want `After on RealClock bypasses clock injection`
	RealClock.Sleep(time.Millisecond)  // want `Sleep on RealClock bypasses clock injection`
}

func good(c clock, r *rand.Rand) {
	_ = c.Now()                      // injected clock
	_ = c.After(time.Second)         // injected clock
	c.Sleep(time.Millisecond)        // injected clock
	_ = r.Intn(10)                   // seeded source
	_ = rand.New(rand.NewSource(42)) // constructing a seeded source is fine
	t0 := time.Unix(0, 0)            // pure constructor
	_ = t0.Add(time.Second).Sub(t0)  // pure arithmetic
	_ = time.Duration(3) * time.Hour // conversion

	// A local or field that happens to be named RealClock is an
	// injection point (the caller chose what to pass), not the global.
	var RealClock clock = c
	_ = RealClock.Now()
	s := struct{ RealClock clock }{RealClock: c}
	_ = s.RealClock.Now()
}

func allowed() {
	_ = time.Now() //vw:allow wallclock -- fixture: obs-only timing
	//vw:allow wallclock -- fixture: the line-above form
	time.Sleep(time.Millisecond)
}
