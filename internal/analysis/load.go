package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Loader parses and typechecks packages for analysis using only the
// standard library: go/build for file selection, go/parser for
// syntax, and go/types with the source importer for type information.
// One Loader shares a FileSet and importer across packages, so
// dependencies (including the standard library) are typechecked once.
type Loader struct {
	Fset *token.FileSet
	ctxt build.Context
	imp  types.Importer
}

// NewLoader returns a Loader rooted in the current build context. Cgo
// is disabled: the source importer cannot run cgo, and this repo (and
// its analysis targets) are pure Go.
func NewLoader() *Loader {
	ctxt := build.Default
	ctxt.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		ctxt: ctxt,
		imp:  importer.ForCompiler(fset, "source", nil),
	}
}

// LoadDir parses and typechecks the single package in dir. The
// returned Package carries importPath as its path (used in
// diagnostics and for the deterministic-set check). Directories with
// no non-test Go files return (nil, nil).
//
// Only non-test files are loaded: _test.go files may not typecheck
// against the bare package, and the analyzers' invariants are about
// production code.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	return l.check(importPath, files)
}

// check typechecks already-parsed files into a Package.
func (l *Loader) check(importPath string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", importPath, err)
	}
	return &Package{
		Fset:       l.Fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		Path:       importPath,
		Directives: ParseDirectives(l.Fset, files),
	}, nil
}

// ModuleRoot walks upward from dir to the directory containing
// go.mod, and returns it plus the module path declared there.
func ModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// PackageDirs returns every directory under root (inclusive) holding
// at least one non-test .go file, skipping VCS metadata, testdata
// trees, and hidden directories. Paths come back sorted and relative
// to root.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				dirs = append(dirs, rel)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}
