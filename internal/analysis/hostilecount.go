package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HostileCount forbids sizing an allocation from a wire-decoded count
// in //vw:wire packages unless a bounds guard dominates the use. A
// count read straight off the network (decoder u16/u32/u64/uvarint
// reads, binary.LittleEndian.UintNN, binary.Uvarint) is
// attacker-controlled; `make([]T, n)` with such an n is a one-packet
// memory bomb — the bug class all three server fuzzers keep hunting.
//
// Values become clean when they are born from the guarded helpers
// (count, countSized, uvarintCount — which validate against a maximum
// and the remaining buffer) or when an if-statement compares them
// before the allocation (the explicit-bound idiom:
// `if n > max { return err }`).
var HostileCount = &Analyzer{
	Name: "hostilecount",
	Doc:  "make/append sized by a wire-decoded count must be dominated by a bounds guard",
	Run:  runHostileCount,
}

// hostileTaintMethods are decoder-style method names whose integer
// result is raw wire data. The guarded readers (count, countSized,
// uvarintCount) are deliberately absent: they are the sanctioned way
// to read a count.
var hostileTaintMethods = map[string]bool{
	"u8": true, "u16": true, "u32": true, "u64": true,
	"i8": true, "i16": true, "i32": true, "i64": true,
	"uvarint": true, "varint": true,
}

// hostileBinaryFuncs are encoding/binary reads that yield raw wire
// integers.
var hostileBinaryFuncs = map[string]bool{
	"Uint16": true, "Uint32": true, "Uint64": true,
	"Uvarint": true, "Varint": true,
	"ReadUvarint": true, "ReadVarint": true,
}

func runHostileCount(pass *Pass) {
	if !pass.Class.WireFacing {
		return
	}
	for _, file := range pass.Files {
		for _, sc := range funcScopes(file) {
			runHostileScope(pass, sc)
		}
	}
}

func runHostileScope(pass *Pass, sc funcScope) {
	tainted := make(map[types.Object]bool)
	// Assignments in an if's init clause (`if n := d.u32(); n > max`)
	// are processed by the IfStmt handler before the condition; the
	// main walk must not re-taint them afterwards.
	processed := make(map[ast.Node]bool)

	var exprTainted func(e ast.Expr) bool
	exprTainted = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			obj := pass.Info.Uses[e]
			return obj != nil && tainted[obj]
		case *ast.ParenExpr:
			return exprTainted(e.X)
		case *ast.UnaryExpr:
			return exprTainted(e.X)
		case *ast.BinaryExpr:
			return exprTainted(e.X) || exprTainted(e.Y)
		case *ast.CallExpr:
			if fn, ok := calleeObj(pass.Info, e).(*types.Func); ok {
				sig, _ := fn.Type().(*types.Signature)
				if sig != nil && sig.Recv() != nil && hostileTaintMethods[fn.Name()] {
					return true
				}
				if fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" && hostileBinaryFuncs[fn.Name()] {
					return true
				}
			}
			// A conversion like int(x) carries taint through.
			if tv, ok := pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
				return exprTainted(e.Args[0])
			}
			return false
		}
		return false
	}

	clearMentioned := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					delete(tainted, obj)
				}
			}
			return true
		})
	}

	handleAssign := func(n *ast.AssignStmt) {
		for i, lhs := range n.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			var rhs ast.Expr
			switch {
			case len(n.Rhs) == len(n.Lhs):
				rhs = n.Rhs[i]
			case len(n.Rhs) == 1:
				rhs = n.Rhs[0] // tuple assignment: taint flows to every target
			}
			if rhs == nil {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if exprTainted(rhs) {
				tainted[obj] = true
			} else {
				delete(tainted, obj) // reassigned from a clean source
			}
		}
	}

	inspectScope(sc.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if !processed[n] {
				handleAssign(n)
			}
		case *ast.IfStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok {
				handleAssign(init)
				processed[init] = true
			}
			// Any comparison mentioning a tainted value is the bounds
			// guard; everything it mentions is clean afterwards. (The
			// walk is positional: the body and later statements see
			// the cleaned state.)
			ast.Inspect(n.Cond, func(m ast.Node) bool {
				if b, ok := m.(*ast.BinaryExpr); ok {
					switch b.Op {
					case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
						if exprTainted(b.X) || exprTainted(b.Y) {
							clearMentioned(b.X)
							clearMentioned(b.Y)
						}
					}
				}
				return true
			})
		case *ast.CallExpr:
			if fn, ok := calleeObj(pass.Info, n).(*types.Builtin); ok && fn.Name() == "make" {
				for _, sz := range n.Args[1:] {
					if exprTainted(sz) {
						pass.Reportf(n.Pos(),
							"make sized by an unguarded wire-decoded count; validate it first (count/countSized/uvarintCount or an explicit bound)")
						break
					}
				}
			}
		case *ast.ForStmt:
			// for i := 0; i < n; i++ { s = append(s, ...) } with a
			// tainted n grows a slice to an attacker-chosen length
			// without ever calling make.
			if cond, ok := n.Cond.(*ast.BinaryExpr); ok {
				if (cond.Op == token.LSS || cond.Op == token.LEQ) && exprTainted(cond.Y) && forBodyAppends(pass, n.Body) {
					pass.Reportf(n.Pos(),
						"loop bounded by an unguarded wire-decoded count grows a slice; validate the count first (count/countSized/uvarintCount or an explicit bound)")
				}
			}
		case *ast.RangeStmt:
			// Go 1.22 range-over-int: for i := range n { append... }.
			if n.X != nil {
				if tv, ok := pass.Info.Types[n.X]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
						if exprTainted(n.X) && forBodyAppends(pass, n.Body) {
							pass.Reportf(n.Pos(),
								"loop bounded by an unguarded wire-decoded count grows a slice; validate the count first (count/countSized/uvarintCount or an explicit bound)")
						}
					}
				}
			}
		}
		return true
	})
}

// forBodyAppends reports whether the loop body grows a slice.
func forBodyAppends(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn, ok := calleeObj(pass.Info, call).(*types.Builtin); ok && fn.Name() == "append" {
				found = true
			}
		}
		return true
	})
	return found
}
