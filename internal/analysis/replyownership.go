package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ReplyOwnership guards the zero-copy reply contract: once a handler
// hands its reply buffer to dlib via Ctx.ReplyDone (registering the
// release hook) or Ctx.FinishReply, the transport — and under the
// encode-once fan-out, other sessions — may still be reading the
// bytes. Writing to the buffer after the handoff is a data race that
// only manifests as corrupted frames on a loaded wire.
//
// The check is scope-local and positional: inside a function that
// calls a method named ReplyDone or FinishReply, every identifier
// appearing in that call (the ctx, the frame buffer whose release
// hook is registered) is poisoned from the call onward — any
// subsequent write through a poisoned root (assignment, ++/--,
// append/copy/clear/delete) is reported. Reads, including the final
// `return fb.buf`, stay legal.
var ReplyOwnership = &Analyzer{
	Name: "replyownership",
	Doc:  "flag writes to a reply buffer after it is handed to Ctx.FinishReply/ReplyDone",
	Run:  runReplyOwnership,
}

func runReplyOwnership(pass *Pass) {
	for _, file := range pass.Files {
		for _, sc := range funcScopes(file) {
			checkReplyScope(pass, sc)
		}
	}
}

func checkReplyScope(pass *Pass, sc funcScope) {
	// Find handoff calls and the variable roots they poison.
	type handoff struct {
		pos   token.Pos
		roots map[types.Object]string
	}
	var handoffs []handoff
	inspectScope(sc.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if name := sel.Sel.Name; name != "ReplyDone" && name != "FinishReply" {
			return true
		}
		if _, ok := pass.Info.Uses[sel.Sel].(*types.Func); !ok {
			return true
		}
		h := handoff{pos: call.End(), roots: make(map[types.Object]string)}
		ast.Inspect(call, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := pass.Info.Uses[id].(*types.Var); ok && !v.IsField() {
				h.roots[v] = id.Name
			}
			return true
		})
		handoffs = append(handoffs, h)
		return true
	})
	if len(handoffs) == 0 {
		return
	}

	poisoned := func(e ast.Expr, at token.Pos) (string, bool) {
		id := rootIdent(e)
		if id == nil {
			return "", false
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			obj = pass.Info.Defs[id]
		}
		for _, h := range handoffs {
			if at <= h.pos {
				continue
			}
			if name, ok := h.roots[obj]; ok {
				return name, true
			}
		}
		return "", false
	}
	report := func(pos token.Pos, root string) {
		pass.Reportf(pos, "write to %s after the reply was handed to dlib (ReplyDone/FinishReply); the transport may still be reading it", root)
	}

	// Unlike the lock tracker, this check does descend into nested
	// function literals: a deferred or spawned closure that writes the
	// buffer is exactly the straggler hazard.
	ast.Inspect(sc.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				// Rebinding the variable itself (fb = other) is not a
				// write through the buffer; only element/field stores
				// mutate shared bytes.
				if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
					continue
				}
				if root, bad := poisoned(lhs, lhs.Pos()); bad {
					report(lhs.Pos(), root)
				}
			}
		case *ast.IncDecStmt:
			if root, bad := poisoned(n.X, n.Pos()); bad {
				report(n.Pos(), root)
			}
		case *ast.CallExpr:
			b, ok := calleeObj(pass.Info, n).(*types.Builtin)
			if !ok || len(n.Args) == 0 {
				return true
			}
			switch b.Name() {
			case "append", "copy", "clear", "delete":
				if root, bad := poisoned(n.Args[0], n.Pos()); bad {
					report(n.Pos(), root)
				}
			}
		}
		return true
	})
}
