// Package relay implements the windtunnel's cluster tier: a node that
// sits between workstations and a set of upstream compute servers (or
// further relays — the protocol chains), routing sessions and caching
// frames so the origin ships each round once per relay instead of once
// per workstation.
//
// Session routing. Each downstream session is pinned at hello to one
// upstream by static round-robin partition and gets its own upstream
// dlib connection. That one-to-one mapping is what keeps the
// distributed semantics untouched by the hop: the origin sees one
// session per workstation, so per-user identity (WhoAmI proxies the
// origin's id), FCFS rake-lock ownership, and the per-session
// round-advance rule all work exactly as if the workstation were
// directly connected. When a downstream session disconnects, its
// upstream connection closes with it, releasing the user's rake locks
// at the origin.
//
// Frame caching. Frame content, unlike session state, is shared: all
// sessions on an upstream consume the same round payloads. Every
// downstream frame call is forwarded upstream as one ProcFrameRelay
// exchange carrying the workstation's update verbatim plus the relay's
// cache state; the origin answers a few-byte marker when the relay
// already holds the current round, or a full payload otherwise. This
// generalizes the server's encode-once ref-counted frameBuf across the
// network: the expensive leg (origin to relay) carries each round's
// bytes once, and the relay re-fans them to its local workstations.
//
// Byte identity. Relay-delivered frames are byte-identical per
// (client, round) to direct connection. Codec v1 is the origin's round
// buffer re-shipped verbatim. Codec v2 never re-quantizes: the relay
// caches the origin's encoded per-rake segments (shipped in the full
// reply's geometry directory, delta'd against the relay's shadow) and
// runs the same per-session FrameEncoder the origin would run, feeding
// it the origin's sequence numbers and segment bytes — so the delta
// decisions and the bytes match a direct connection exactly.
//
// Upstream failure. When the upstream connection dies, the origin-side
// session identity is gone, so the relay hangs up the affected
// downstream connections (dlib.Ctx.Hangup) instead of silently
// redialing: the workstation's own resilience layer redials, replays
// its handshake, and resyncs from a keyframe — the same recovery path
// as losing a direct connection.
//
//vw:deterministic
//vw:wire
package relay

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sync"

	"repro/internal/dlib"
	"repro/internal/wire"
)

// Config assembles a relay node.
type Config struct {
	// Upstreams dials the compute servers (or parent relays) this node
	// fans in to. Sessions are pinned round-robin: session k uses
	// Upstreams[k mod len(Upstreams)] — a static partition, so a
	// workstation keeps one environment for its whole session.
	Upstreams []dlib.DialFunc
}

// Stats is a snapshot of relay counters.
type Stats struct {
	// Sessions is the current downstream session count.
	Sessions int
	// UpFulls counts full round payloads fetched from upstreams;
	// UpMarkers counts round-unchanged marker replies (the cache hit:
	// the round's bytes did not cross the upstream link again).
	// UpBytes sums the upstream reply bytes for both.
	UpFulls   int64
	UpMarkers int64
	UpBytes   int64
	// DownFrames / DownBytes count frames and bytes served to
	// downstream workstations (and chained relays); V2Frames is the
	// codec-v2 subset of DownFrames.
	DownFrames int64
	DownBytes  int64
	V2Frames   int64
	// Hangups counts downstream connections closed because their
	// upstream connection died.
	Hangups int64
}

// HitRate is the fraction of upstream frame exchanges answered by a
// marker — the share of downstream frames that cost the origin link
// nothing but the exchange itself.
func (s Stats) HitRate() float64 {
	total := s.UpFulls + s.UpMarkers
	if total == 0 {
		return 0
	}
	return float64(s.UpMarkers) / float64(total)
}

// cachedSeg is one origin-encoded codec-v2 segment in the round cache.
type cachedSeg struct {
	seq uint64
	seg []byte
}

// upCache is the shared round cache for one upstream: the last full
// payload fetched by any session pinned there. dlib dispatch is
// serial, so handlers access it without extra locking.
type upCache struct {
	round uint64
	// frame is the origin's codec-v1 round buffer, verbatim; meta is
	// its decoded form (haveMeta guards the zero value).
	frame    []byte
	meta     wire.FrameReply
	haveMeta bool
	// wantSegs turns sticky once any v2 consumer exists on this
	// upstream, so every later full fetch refreshes the segment cache.
	// segsRound is the round the segment cache is complete for; when it
	// trails round (a full was fetched before wantSegs, or a marker
	// round outlived the directory) a v2 consumer forces a full fetch.
	wantSegs  bool
	segs      map[int32]cachedSeg
	segsRound uint64
}

// session is one downstream session and its pinned upstream leg.
type session struct {
	id  int64
	idx int // upstream index
	up  *dlib.Client

	// codec is the downstream-negotiated codec (the origin's hello2
	// answer, proxied); enc is the per-downstream delta encoder for v2
	// sessions — the same encoder the origin would run for a direct
	// connection, so its shadow decisions reproduce origin bytes.
	codec uint8
	enc   *wire.FrameEncoder

	// Recycled per-session scratch: request/reply assembly, the
	// aligned (seq, segment) rows fed to enc — rakes and shared tools
	// separately — the request shadow, and the chained-reply directory.
	buf      []byte
	seqs     []uint64
	segs     [][]byte
	toolSeqs []uint64
	toolSegs [][]byte
	shadow   []wire.RelayShadowEntry
	dir      []wire.RelaySegment
}

// Relay is a session router + frame cache node on a dlib server.
type Relay struct {
	d   *dlib.Server
	cfg Config

	// mu guards sessions, nextUp, and stats against OnDisconnect (conn
	// goroutines) and Stats() readers; handler-only state (caches,
	// per-session scratch) is serialized by dlib dispatch.
	mu       sync.Mutex
	sessions map[int64]*session
	nextUp   int
	stats    Stats

	caches []*upCache
}

// New builds a relay and registers its procedures on a fresh dlib
// server. The downstream surface is identical to a compute server's
// (hello, hello2, whoami, frame, framerelay), which is what lets
// workstations connect to either interchangeably and relays chain.
func New(cfg Config) (*Relay, error) {
	if len(cfg.Upstreams) == 0 {
		return nil, fmt.Errorf("relay: no upstreams")
	}
	r := &Relay{
		d:        dlib.NewServer(),
		cfg:      cfg,
		sessions: make(map[int64]*session),
		caches:   make([]*upCache, len(cfg.Upstreams)),
	}
	for i := range r.caches {
		r.caches[i] = &upCache{segs: make(map[int32]cachedSeg)}
	}
	// Replies are assembled in recycled per-session scratch and cache
	// buffers that later rounds overwrite; copy-under-dispatch gives
	// them to the writer safely without per-reply hooks.
	r.d.CopyReplies = true
	r.d.Register(wire.ProcHello, r.handleHello)
	r.d.Register(wire.ProcHello2, r.handleHello2)
	r.d.Register(wire.ProcWhoAmI, r.handleWhoAmI)
	r.d.Register(wire.ProcFrame, r.handleFrame)
	r.d.Register(wire.ProcFrameRelay, r.handleFrameRelay)
	r.d.Register(wire.ProcSteer, r.handleSteer)
	r.d.OnDisconnect = func(id int64) {
		r.mu.Lock()
		st := r.sessions[id]
		delete(r.sessions, id)
		r.mu.Unlock()
		if st != nil {
			// Closing the upstream leg is what releases this user's
			// FCFS rake locks at the origin.
			st.up.Close()
		}
	}
	return r, nil
}

// Dlib returns the underlying dlib server for Serve/Close.
func (r *Relay) Dlib() *dlib.Server { return r.d }

// Stats returns a snapshot of the relay counters.
func (r *Relay) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Sessions = len(r.sessions)
	return s
}

// Close tears down every upstream connection. Downstream connections
// are owned by the dlib server's listener/ServeConn callers.
func (r *Relay) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, st := range r.sessions {
		st.up.Close()
		delete(r.sessions, id)
	}
}

// ensureSession returns the downstream session's state, dialing and
// pinning its upstream leg on first contact.
func (r *Relay) ensureSession(ctx *dlib.Ctx) (*session, error) {
	r.mu.Lock()
	st := r.sessions[ctx.Session.ID]
	if st == nil {
		idx := r.nextUp % len(r.cfg.Upstreams)
		r.nextUp++
		r.mu.Unlock()
		conn, err := r.cfg.Upstreams[idx]()
		if err != nil {
			return nil, fmt.Errorf("relay: dial upstream %d: %w", idx, err)
		}
		st = &session{id: ctx.Session.ID, idx: idx, up: dlib.NewClient(conn), codec: wire.CodecV1}
		r.mu.Lock()
		r.sessions[ctx.Session.ID] = st
	}
	r.mu.Unlock()
	return st, nil
}

// upcall forwards one call on the session's upstream leg. A remote
// error passes through (the origin rejected the call; the session is
// healthy). A transport error means the origin-side identity is gone:
// the upstream client is closed and the downstream connection is hung
// up after the error reply, so the workstation redials and rebuilds a
// coherent session across both hops.
func (r *Relay) upcall(ctx *dlib.Ctx, st *session, proc string, payload []byte) ([]byte, error) {
	rep, err := st.up.Call(proc, payload)
	if err != nil {
		var re *dlib.RemoteError
		if errors.As(err, &re) {
			return nil, err
		}
		st.up.Close()
		ctx.Hangup()
		r.mu.Lock()
		r.stats.Hangups++
		r.mu.Unlock()
		return nil, fmt.Errorf("relay: upstream %d lost: %w", st.idx, err)
	}
	return rep, nil
}

func (r *Relay) handleHello(ctx *dlib.Ctx, payload []byte) ([]byte, error) {
	st, err := r.ensureSession(ctx)
	if err != nil {
		return nil, err
	}
	return r.upcall(ctx, st, wire.ProcHello, payload)
}

// handleHello2 proxies codec negotiation to the origin — the origin's
// MaxCodec cap must bind across the hop — and records the answer so
// the relay knows how to serve this session's frames. Re-negotiation
// resets the delta encoder, exactly as it resets the origin's for a
// direct connection.
func (r *Relay) handleHello2(ctx *dlib.Ctx, payload []byte) ([]byte, error) {
	st, err := r.ensureSession(ctx)
	if err != nil {
		return nil, err
	}
	rep, err := r.upcall(ctx, st, wire.ProcHello2, payload)
	if err != nil {
		return nil, err
	}
	codec, info, err := wire.DecodeHelloReply(rep)
	if err != nil {
		return nil, fmt.Errorf("relay: upstream hello2 reply: %w", err)
	}
	st.codec = codec
	if codec >= wire.CodecV2 {
		if st.enc == nil {
			st.enc = wire.NewFrameEncoder(wire.Quantizer{Min: info.BoundsMin, Max: info.BoundsMax})
		} else {
			st.enc.Reset()
		}
		r.caches[st.idx].wantSegs = true
	}
	return rep, nil
}

func (r *Relay) handleWhoAmI(ctx *dlib.Ctx, payload []byte) ([]byte, error) {
	st, err := r.ensureSession(ctx)
	if err != nil {
		return nil, err
	}
	// The origin's session id, not the relay's: rake Holder fields in
	// frames carry origin ids, and the workstation matches itself by
	// this answer.
	return r.upcall(ctx, st, wire.ProcWhoAmI, payload)
}

// handleSteer proxies the live-steering status poll to the origin on
// this session's pinned upstream leg, so the FCFS steering lock (held
// by origin session id) and the SteerStatus answer survive the hop
// exactly like rake locks do.
func (r *Relay) handleSteer(ctx *dlib.Ctx, payload []byte) ([]byte, error) {
	st, err := r.ensureSession(ctx)
	if err != nil {
		return nil, err
	}
	return r.upcall(ctx, st, wire.ProcSteer, payload)
}

// fetchRound runs one upstream frame exchange for st — the update is
// applied at the origin and the session's round advances per the
// origin's rules — and brings this upstream's cache to the resulting
// round. needSegs forces a full fetch when the segment cache does not
// cover the cached round.
func (r *Relay) fetchRound(ctx *dlib.Ctx, st *session, update []byte, needSegs bool) (*upCache, error) {
	c := r.caches[st.idx]
	if needSegs {
		c.wantSegs = true
	}
	req := wire.RelayFrameRequest{
		WantSegs:  c.wantSegs,
		LastRound: c.round,
		Update:    update,
	}
	if needSegs && c.segsRound != c.round {
		// The cached round predates this upstream's first v2 consumer:
		// its directory was never fetched. Round 0 never matches a live
		// round, so the origin must answer full.
		req.LastRound = 0
	}
	if req.WantSegs {
		st.shadow = st.shadow[:0]
		for rake, cs := range c.segs {
			st.shadow = append(st.shadow, wire.RelayShadowEntry{Rake: rake, Seq: cs.seq})
		}
		// The shadow is wire-visible request bytes: map order would
		// make two identically-cached relays send different requests.
		slices.SortFunc(st.shadow, func(a, b wire.RelayShadowEntry) int {
			return cmp.Compare(a.Rake, b.Rake)
		})
		req.Shadow = st.shadow
	}
	st.buf = wire.AppendRelayFrameRequest(st.buf[:0], req)
	raw, err := r.upcall(ctx, st, wire.ProcFrameRelay, st.buf)
	if err != nil {
		return nil, err
	}
	rep, err := wire.DecodeRelayFrameReply(raw)
	if err != nil {
		return nil, fmt.Errorf("relay: upstream %d reply: %w", st.idx, err)
	}
	r.mu.Lock()
	r.stats.UpBytes += int64(len(raw))
	if rep.Full {
		r.stats.UpFulls++
	} else {
		r.stats.UpMarkers++
	}
	r.mu.Unlock()
	if !rep.Full {
		if rep.Round != c.round || c.frame == nil {
			return nil, fmt.Errorf("relay: upstream %d marked round %d but cache holds %d", st.idx, rep.Round, c.round)
		}
		return c, nil
	}
	// Install the round. The frame adopts the reply allocation (dlib
	// replies are freshly read per call); segment bytes are copied so
	// carried-over refs never pin old reply buffers.
	meta, err := wire.DecodeFrameReply(rep.Frame)
	if err != nil {
		return nil, fmt.Errorf("relay: upstream %d frame: %w", st.idx, err)
	}
	c.round = rep.Round
	c.frame = rep.Frame
	c.meta = meta
	c.haveMeta = true
	if rep.HasDir {
		// Rebuild the segment cache from the directory: entries not in
		// it belong to removed rakes and are dropped.
		segs := make(map[int32]cachedSeg, len(rep.Dir))
		for _, e := range rep.Dir {
			if e.Inline {
				segs[e.Rake] = cachedSeg{seq: e.Seq, seg: append([]byte(nil), e.Seg...)}
				continue
			}
			cs, ok := c.segs[e.Rake]
			if !ok || cs.seq != e.Seq {
				return nil, fmt.Errorf("relay: upstream %d referenced segment (%d, %d) not in cache", st.idx, e.Rake, e.Seq)
			}
			segs[e.Rake] = cs
		}
		c.segs = segs
		c.segsRound = rep.Round
	}
	return c, nil
}

// handleFrame serves a workstation's frame from the (refreshed) round
// cache: codec v1 gets the origin's round buffer verbatim, codec v2
// gets a per-session delta assembly from the origin's cached segments.
//
//vw:hotpath
func (r *Relay) handleFrame(ctx *dlib.Ctx, payload []byte) ([]byte, error) {
	st, err := r.ensureSession(ctx)
	if err != nil {
		return nil, err
	}
	v2 := st.codec >= wire.CodecV2
	c, err := r.fetchRound(ctx, st, payload, v2)
	if err != nil {
		return nil, err
	}
	var reply []byte
	if !v2 {
		reply = c.frame
	} else {
		if st.enc == nil || !c.haveMeta || c.segsRound != c.round {
			return nil, fmt.Errorf("relay: v2 session %d has no segment directory for round %d", st.id, c.round) //vw:allow hotpath -- error path, frame already lost
		}
		st.seqs = st.seqs[:0]
		st.segs = st.segs[:0]
		for _, g := range c.meta.Geometry {
			cs, ok := c.segs[g.Rake]
			if !ok {
				return nil, fmt.Errorf("relay: no cached segment for rake %d", g.Rake) //vw:allow hotpath -- error path, frame already lost
			}
			st.seqs = append(st.seqs, cs.seq)
			st.segs = append(st.segs, cs.seg)
		}
		// Shared-tool segments live in the same cache under negative
		// keys (-kind); rake ids are always >= 1, so no collision.
		st.toolSeqs = st.toolSeqs[:0]
		st.toolSegs = st.toolSegs[:0]
		if c.meta.Tools != nil {
			for _, g := range c.meta.Tools.Geoms {
				cs, ok := c.segs[-int32(g.Tool)]
				if !ok {
					return nil, fmt.Errorf("relay: no cached segment for tool %d", g.Tool) //vw:allow hotpath -- error path, frame already lost
				}
				st.toolSeqs = append(st.toolSeqs, cs.seq)
				st.toolSegs = append(st.toolSegs, cs.seg)
			}
		}
		st.buf = st.enc.AppendFrame(st.buf[:0], c.meta, st.seqs, st.segs, st.toolSeqs, st.toolSegs)
		reply = st.buf
	}
	r.mu.Lock()
	r.stats.DownFrames++
	r.stats.DownBytes += int64(len(reply))
	if v2 {
		r.stats.V2Frames++
	}
	r.mu.Unlock()
	return reply, nil
}

// handleFrameRelay serves a chained (child) relay: refresh our cache
// through our own upstream, then answer from it with the same
// marker/full logic the origin uses — delta'd against the child's
// shadow, not ours.
func (r *Relay) handleFrameRelay(ctx *dlib.Ctx, payload []byte) ([]byte, error) {
	req, err := wire.DecodeRelayFrameRequest(payload)
	if err != nil {
		return nil, err
	}
	st, err := r.ensureSession(ctx)
	if err != nil {
		return nil, err
	}
	c, err := r.fetchRound(ctx, st, req.Update, req.WantSegs)
	if err != nil {
		return nil, err
	}
	var reply []byte
	if req.LastRound == c.round {
		reply = wire.AppendRelayMarker(st.buf[:0], c.round)
	} else {
		rep := wire.RelayFrameReply{Full: true, Round: c.round, Frame: c.frame}
		if req.WantSegs {
			if !c.haveMeta || c.segsRound != c.round {
				return nil, fmt.Errorf("relay: no segment directory for chained round %d", c.round)
			}
			st.dir = st.dir[:0]
			for _, g := range c.meta.Geometry {
				cs := c.segs[g.Rake]
				e := wire.RelaySegment{Rake: g.Rake, Seq: cs.seq}
				if !req.ShadowHas(g.Rake, cs.seq) {
					e.Inline = true
					e.Seg = cs.seg
				}
				st.dir = append(st.dir, e)
			}
			if c.meta.Tools != nil {
				for _, g := range c.meta.Tools.Geoms {
					key := -int32(g.Tool)
					cs := c.segs[key]
					e := wire.RelaySegment{Rake: key, Seq: cs.seq}
					if !req.ShadowHas(key, cs.seq) {
						e.Inline = true
						e.Seg = cs.seg
					}
					st.dir = append(st.dir, e)
				}
			}
			rep.HasDir = true
			rep.Dir = st.dir
		}
		// The frame and the request alias distinct buffers (c.frame vs
		// payload), so encoding into st.buf is safe: fetchRound's use of
		// st.buf for the upstream request is already complete.
		reply = wire.AppendRelayFrameReply(st.buf[:0], rep)
	}
	st.buf = reply
	r.mu.Lock()
	r.stats.DownFrames++
	r.stats.DownBytes += int64(len(reply))
	r.mu.Unlock()
	return reply, nil
}
