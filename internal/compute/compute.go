// Package compute implements the visualization computation engines of
// §5.3: the scalar code path parallelized across streamlines (the
// Convex ran it on 4 processors, the SGI workstation on 8), and the
// "vectorized" path that processes batches of streamlines in
// structure-of-arrays form, the way the Convex's 128-entry vector
// registers consumed them.
//
// Engines do the real integration work and also count the field
// accesses the paper counts (§5.3: RK2 is "two accesses of the vector
// field data ... per component per point", plus one conversion access
// per component to return to physical coordinates). A CostModel maps
// those counts onto 1992 processors, reproducing the paper's absolute
// benchmark times; Go wall-clock numbers for the same engines are the
// modern ablation.
package compute

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/integrate"
	"repro/internal/vmath"
)

// Stats counts the work units of one computation.
type Stats struct {
	// Points is the number of path points produced (excluding seeds).
	Points int64
	// SampleUnits is the number of component-trilinear-interpolations
	// performed against velocity data (one "8 floating point loads
	// plus a trilinear interpolation").
	SampleUnits int64
	// ConvertUnits is the number of component-trilerps performed to
	// convert grid coordinates back to physical coordinates.
	ConvertUnits int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Points += other.Points
	s.SampleUnits += other.SampleUnits
	s.ConvertUnits += other.ConvertUnits
}

// Units returns total work units.
func (s Stats) Units() int64 { return s.SampleUnits + s.ConvertUnits }

// samplesPerStep returns field accesses per integration step for a
// method (per point, per component).
func samplesPerStep(m integrate.Method) int64 {
	switch m {
	case integrate.Euler:
		return 1
	case integrate.RK2:
		return 2
	case integrate.RK4:
		return 4
	default:
		return 2
	}
}

// UnitsPerPoint returns the work units one path point costs under
// method m — the §5.3 accounting the CostModel prices: samplesPerStep
// field accesses per component plus one conversion access per
// component, three components each. This is the constant the server's
// frame-budget governor multiplies into seeds x steps to predict a
// rake's integration cost before running it.
func UnitsPerPoint(m integrate.Method) int64 {
	return samplesPerStep(m)*3 + 3
}

// statsFor computes the §5.3 work accounting for paths with the given
// total point count (seeds excluded).
func statsFor(points int64, m integrate.Method) Stats {
	return Stats{
		Points: points,
		// per point: samplesPerStep accesses x 3 components
		SampleUnits: points * samplesPerStep(m) * 3,
		// per point: one conversion x 3 components
		ConvertUnits: points * 3,
	}
}

// Engine computes visualization geometry for many seeds at once.
type Engine interface {
	// Name identifies the engine in benchmark tables.
	Name() string
	// Workers returns the logical processor count the engine models.
	Workers() int
	// Streamlines integrates one streamline per seed at fixed time t,
	// returning grid-coordinate paths (parallel to seeds; a seed
	// outside the domain yields an empty path).
	Streamlines(s integrate.Sampler, seeds []vmath.Vec3, t float32, o integrate.Options) ([][]vmath.Vec3, Stats)
	// ParticlePaths integrates one particle path per seed from t0.
	ParticlePaths(s integrate.Sampler, seeds []vmath.Vec3, t0, maxTime float32, o integrate.Options) ([][]vmath.Vec3, Stats)
}

// Scalar is the sequential baseline: optimized scalar code, one
// processor.
type Scalar struct{}

// Name implements Engine.
func (Scalar) Name() string { return "scalar-1" }

// Workers implements Engine.
func (Scalar) Workers() int { return 1 }

// Streamlines implements Engine.
func (Scalar) Streamlines(s integrate.Sampler, seeds []vmath.Vec3, t float32, o integrate.Options) ([][]vmath.Vec3, Stats) {
	paths := make([][]vmath.Vec3, len(seeds))
	var points int64
	for i, seed := range seeds {
		paths[i] = integrate.Streamline(s, seed, t, o)
		if n := len(paths[i]); n > 0 {
			points += int64(n - 1)
		}
	}
	return paths, statsFor(points, o.Method)
}

// ParticlePaths implements Engine.
func (Scalar) ParticlePaths(s integrate.Sampler, seeds []vmath.Vec3, t0, maxTime float32, o integrate.Options) ([][]vmath.Vec3, Stats) {
	paths := make([][]vmath.Vec3, len(seeds))
	var points int64
	for i, seed := range seeds {
		paths[i] = integrate.ParticlePath(s, seed, t0, maxTime, o)
		if n := len(paths[i]); n > 0 {
			points += int64(n - 1)
		}
	}
	return paths, statsFor(points, o.Method)
}

// Parallel distributes whole streamlines across a pool of workers —
// "This code successfully parallelizes across the four processors of
// the Convex by distributing the streamlines among the processors."
type Parallel struct {
	// NumWorkers is the logical processor count; 0 uses GOMAXPROCS.
	NumWorkers int
}

// Name implements Engine.
func (p Parallel) Name() string { return fmt.Sprintf("parallel-%d", p.workers()) }

// Workers implements Engine.
func (p Parallel) Workers() int { return p.workers() }

func (p Parallel) workers() int {
	if p.NumWorkers > 0 {
		return p.NumWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// Streamlines implements Engine.
func (p Parallel) Streamlines(s integrate.Sampler, seeds []vmath.Vec3, t float32, o integrate.Options) ([][]vmath.Vec3, Stats) {
	return p.fanOut(seeds, func(seed vmath.Vec3) []vmath.Vec3 {
		return integrate.Streamline(s, seed, t, o)
	}, o)
}

// ParticlePaths implements Engine.
func (p Parallel) ParticlePaths(s integrate.Sampler, seeds []vmath.Vec3, t0, maxTime float32, o integrate.Options) ([][]vmath.Vec3, Stats) {
	return p.fanOut(seeds, func(seed vmath.Vec3) []vmath.Vec3 {
		return integrate.ParticlePath(s, seed, t0, maxTime, o)
	}, o)
}

func (p Parallel) fanOut(seeds []vmath.Vec3, one func(vmath.Vec3) []vmath.Vec3, o integrate.Options) ([][]vmath.Vec3, Stats) {
	paths := make([][]vmath.Vec3, len(seeds))
	workers := p.workers()
	if workers > len(seeds) {
		workers = len(seeds)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int, len(seeds))
	for i := range seeds {
		next <- i
	}
	close(next)
	counts := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				paths[i] = one(seeds[i])
				if n := len(paths[i]); n > 0 {
					counts[w] += int64(n - 1)
				}
			}
		}(w)
	}
	wg.Wait()
	var points int64
	for _, c := range counts {
		points += c
	}
	return paths, statsFor(points, o.Method)
}
