package compute

import (
	"fmt"
	"sync"

	"repro/internal/integrate"
	"repro/internal/vmath"
)

// Hybrid implements the optimization §5.3 leaves as future work: "One
// optimization is to parallelize across groups of streamlines and
// vectorize across streamlines in a group." Seeds are partitioned into
// contiguous groups, one worker per group, and each worker runs the
// SoA batch (Vector) engine over its group.
type Hybrid struct {
	// NumWorkers is the group/processor count; 0 uses 4 (the Convex).
	NumWorkers int
	// VectorLength is each group's batch width; 0 uses 128.
	VectorLength int
}

// Name implements Engine.
func (h Hybrid) Name() string { return fmt.Sprintf("hybrid-%d", h.workers()) }

// Workers implements Engine.
func (h Hybrid) Workers() int { return h.workers() }

func (h Hybrid) workers() int {
	if h.NumWorkers > 0 {
		return h.NumWorkers
	}
	return 4
}

// Streamlines implements Engine.
func (h Hybrid) Streamlines(s integrate.Sampler, seeds []vmath.Vec3, t float32, o integrate.Options) ([][]vmath.Vec3, Stats) {
	if _, ok := s.(BatchSampler); !ok {
		return Parallel{NumWorkers: h.workers()}.Streamlines(s, seeds, t, o)
	}
	workers := h.workers()
	if workers > len(seeds) {
		workers = len(seeds)
	}
	if workers < 1 {
		workers = 1
	}
	paths := make([][]vmath.Vec3, len(seeds))
	statsPer := make([]Stats, workers)
	per := (len(seeds) + workers - 1) / workers
	var wg sync.WaitGroup
	inner := Vector{VectorLength: h.VectorLength}
	for w := 0; w < workers; w++ {
		lo := w * per
		if lo >= len(seeds) {
			break
		}
		hi := lo + per
		if hi > len(seeds) {
			hi = len(seeds)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			group, st := inner.Streamlines(s, seeds[lo:hi], t, o)
			copy(paths[lo:hi], group)
			statsPer[w] = st
		}(w, lo, hi)
	}
	wg.Wait()
	var total Stats
	for _, st := range statsPer {
		total.Add(st)
	}
	return paths, total
}

// ParticlePaths implements Engine via the parallel engine, as Vector
// does.
func (h Hybrid) ParticlePaths(s integrate.Sampler, seeds []vmath.Vec3, t0, maxTime float32, o integrate.Options) ([][]vmath.Vec3, Stats) {
	return Parallel{NumWorkers: h.workers()}.ParticlePaths(s, seeds, t0, maxTime, o)
}
