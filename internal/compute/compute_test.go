package compute

import (
	"testing"
	"time"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/vmath"
)

// swirlField builds a grid+field pair whose streamlines are long
// orbits, for comparing engines.
func swirlField(t testing.TB) SteadyBatch {
	t.Helper()
	g, err := grid.NewCartesian(32, 32, 16, vmath.AABB{
		Min: vmath.V3(0, 0, 0), Max: vmath.V3(31, 31, 15),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := field.NewField(32, 32, 16, field.GridCoords)
	for k := 0; k < 16; k++ {
		for j := 0; j < 32; j++ {
			for i := 0; i < 32; i++ {
				dx := (float32(i) - 15.5) / 15.5
				dy := (float32(j) - 15.5) / 15.5
				f.SetAt(i, j, k, vmath.Vec3{X: -dy * 0.1, Y: dx * 0.1, Z: 0.01})
			}
		}
	}
	return SteadyBatch{F: f, G: g}
}

func benchSeeds(n int) []vmath.Vec3 {
	seeds := make([]vmath.Vec3, n)
	for i := range seeds {
		frac := float32(i) / float32(n)
		seeds[i] = vmath.V3(8+frac*16, 12+frac*8, 2+frac*10)
	}
	return seeds
}

func engines() []Engine {
	return []Engine{
		Scalar{},
		Parallel{NumWorkers: 4},
		Vector{},
		Vector{VectorLength: 7}, // odd chunk exercises remainder handling
	}
}

func TestEnginesAgreeOnPaths(t *testing.T) {
	s := swirlField(t)
	seeds := benchSeeds(37)
	o := integrate.Options{Method: integrate.RK2, StepSize: 0.5, MaxSteps: 100, MinSpeed: 1e-9}
	ref, refStats := Scalar{}.Streamlines(s, seeds, 0, o)
	for _, e := range engines()[1:] {
		paths, stats := e.Streamlines(s, seeds, 0, o)
		if len(paths) != len(ref) {
			t.Fatalf("%s: %d paths, want %d", e.Name(), len(paths), len(ref))
		}
		for i := range ref {
			if len(paths[i]) != len(ref[i]) {
				t.Fatalf("%s: path %d has %d points, scalar %d",
					e.Name(), i, len(paths[i]), len(ref[i]))
			}
			for p := range ref[i] {
				if !paths[i][p].ApproxEqual(ref[i][p], 1e-4) {
					t.Fatalf("%s: path %d point %d = %v, scalar %v",
						e.Name(), i, p, paths[i][p], ref[i][p])
				}
			}
		}
		if stats.Points != refStats.Points {
			t.Errorf("%s: stats.Points = %d, scalar %d", e.Name(), stats.Points, refStats.Points)
		}
	}
}

func TestEnginesAgreeOnEuler(t *testing.T) {
	s := swirlField(t)
	seeds := benchSeeds(10)
	o := integrate.Options{Method: integrate.Euler, StepSize: 0.5, MaxSteps: 50, MinSpeed: 1e-9}
	ref, _ := Scalar{}.Streamlines(s, seeds, 0, o)
	paths, _ := Vector{}.Streamlines(s, seeds, 0, o)
	for i := range ref {
		if len(paths[i]) != len(ref[i]) {
			t.Fatalf("path %d: %d vs %d points", i, len(paths[i]), len(ref[i]))
		}
		for p := range ref[i] {
			if !paths[i][p].ApproxEqual(ref[i][p], 1e-4) {
				t.Fatalf("path %d point %d differs", i, p)
			}
		}
	}
}

func TestVectorHandlesOutOfBoundsSeeds(t *testing.T) {
	s := swirlField(t)
	seeds := []vmath.Vec3{
		vmath.V3(-5, 0, 0),  // outside
		vmath.V3(16, 16, 8), // inside
		vmath.V3(99, 0, 0),  // outside
	}
	o := integrate.Options{Method: integrate.RK2, StepSize: 0.5, MaxSteps: 20, MinSpeed: 1e-9}
	paths, _ := Vector{}.Streamlines(s, seeds, 0, o)
	if len(paths[0]) != 0 || len(paths[2]) != 0 {
		t.Error("out-of-bounds seeds produced points")
	}
	if len(paths[1]) < 2 {
		t.Error("in-bounds seed produced no path")
	}
}

func TestVectorLaneCompaction(t *testing.T) {
	// A uniform field marches all particles out the +X face; seeds at
	// staggered x die at different steps, exercising compaction.
	g, _ := grid.NewCartesian(16, 8, 8, vmath.AABB{
		Min: vmath.V3(0, 0, 0), Max: vmath.V3(15, 7, 7),
	})
	f := field.NewField(16, 8, 8, field.GridCoords)
	for i := range f.U {
		f.U[i] = 1
	}
	s := SteadyBatch{F: f, G: g}
	seeds := []vmath.Vec3{
		vmath.V3(14, 4, 4), vmath.V3(10, 4, 4), vmath.V3(2, 4, 4),
	}
	o := integrate.Options{Method: integrate.Euler, StepSize: 1, MaxSteps: 100, MinSpeed: 1e-9}
	paths, _ := Vector{}.Streamlines(s, seeds, 0, o)
	wantLens := []int{2, 6, 14} // 1 seed point + steps until x > 15
	for i, want := range wantLens {
		if len(paths[i]) != want {
			t.Errorf("path %d length = %d, want %d", i, len(paths[i]), want)
		}
	}
	// Scalar must agree exactly.
	ref, _ := Scalar{}.Streamlines(s, seeds, 0, o)
	for i := range ref {
		if len(ref[i]) != len(paths[i]) {
			t.Errorf("scalar path %d length %d differs from vector %d",
				i, len(ref[i]), len(paths[i]))
		}
	}
}

func TestParticlePathsEnginesAgree(t *testing.T) {
	s := swirlField(t)
	seeds := benchSeeds(10)
	o := integrate.Options{Method: integrate.RK2, StepSize: 1, MaxSteps: 30, MinSpeed: 1e-9}
	ref, _ := Scalar{}.ParticlePaths(s, seeds, 0, 100, o)
	for _, e := range []Engine{Parallel{NumWorkers: 3}, Vector{}} {
		paths, _ := e.ParticlePaths(s, seeds, 0, 100, o)
		for i := range ref {
			if len(paths[i]) != len(ref[i]) {
				t.Fatalf("%s: path %d length %d vs %d", e.Name(), i, len(paths[i]), len(ref[i]))
			}
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	s := swirlField(t)
	seeds := benchSeeds(5)
	o := integrate.Options{Method: integrate.RK2, StepSize: 0.5, MaxSteps: 10, MinSpeed: 1e-9}
	paths, stats := Scalar{}.Streamlines(s, seeds, 0, o)
	var points int64
	for _, p := range paths {
		if len(p) > 0 {
			points += int64(len(p) - 1)
		}
	}
	if stats.Points != points {
		t.Errorf("stats.Points = %d, want %d", stats.Points, points)
	}
	if stats.SampleUnits != points*6 {
		t.Errorf("SampleUnits = %d, want %d (RK2: 2x3 per point)", stats.SampleUnits, points*6)
	}
	if stats.ConvertUnits != points*3 {
		t.Errorf("ConvertUnits = %d, want %d", stats.ConvertUnits, points*3)
	}
	if stats.Units() != points*9 {
		t.Errorf("Units = %d, want %d", stats.Units(), points*9)
	}
}

func TestBenchmarkWorkloadShape(t *testing.T) {
	w, err := BenchmarkWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Seeds) != BenchStreamlines {
		t.Fatalf("seeds = %d", len(w.Seeds))
	}
	r := RunBenchmark(Scalar{}, w, CostModel{})
	if !r.Complete {
		t.Error("benchmark streamlines terminated early; workload must yield full 200-point lines")
	}
	if r.Points != BenchTotalPoints {
		t.Errorf("points = %d, want %d", r.Points, BenchTotalPoints)
	}
	if r.Stats.Units() != int64(BenchTotalWorkUnits)-int64(BenchStreamlines)*9 {
		// 199 integration steps per line: seeds are free.
		t.Errorf("units = %d, want %d", r.Stats.Units(), BenchTotalWorkUnits-BenchStreamlines*9)
	}
}

func TestCostModelReproducesPaperTimes(t *testing.T) {
	// With the full 20,000-point accounting (the paper counts every
	// point, including seeds), the three calibrated models must land
	// on the paper's §5.3 benchmark times.
	stats := statsFor(BenchTotalPoints, integrate.RK2)
	cases := []struct {
		model CostModel
		want  time.Duration
		tol   time.Duration
	}{
		{ConvexScalar4, 240 * time.Millisecond, 2 * time.Millisecond},
		{ConvexVector3, 190 * time.Millisecond, 2 * time.Millisecond},
		{SGI380GT8, 135 * time.Millisecond, 2 * time.Millisecond},
	}
	for _, c := range cases {
		got := c.model.ModeledTime(stats)
		diff := got - c.want
		if diff < 0 {
			diff = -diff
		}
		if diff > c.tol {
			t.Errorf("%s modeled %v, want %v +- %v", c.model.Name, got, c.want, c.tol)
		}
	}
	// And the ordering the paper found: workstation-8 < vector-3 <
	// scalar-4.
	if !(SGI380GT8.ModeledTime(stats) < ConvexVector3.ModeledTime(stats) &&
		ConvexVector3.ModeledTime(stats) < ConvexScalar4.ModeledTime(stats)) {
		t.Error("modeled engine ordering does not match the paper")
	}
}

func TestMaxParticlesTable3(t *testing.T) {
	// Table 3 rows: benchmark seconds -> max particles at 10 fps.
	frame := 100 * time.Millisecond
	cases := []struct {
		bench time.Duration
		want  int
	}{
		{250 * time.Millisecond, 8000},
		{190 * time.Millisecond, 10526},
		{130 * time.Millisecond, 15384},
		{100 * time.Millisecond, 20000},
		{50 * time.Millisecond, 40000},
	}
	for _, c := range cases {
		got := MaxParticlesAt(c.bench, BenchTotalPoints, frame)
		if got != c.want {
			t.Errorf("MaxParticlesAt(%v) = %d, want %d", c.bench, got, c.want)
		}
	}
	if MaxParticlesAt(0, BenchTotalPoints, frame) != 0 {
		t.Error("zero bench time should yield 0")
	}
}

func TestBenchTransferBytesMatchesPaper(t *testing.T) {
	if BenchTransferBytes != 240000 {
		t.Errorf("BenchTransferBytes = %d, want 240000", BenchTransferBytes)
	}
}

func BenchmarkEngineScalar(b *testing.B)    { benchEngine(b, Scalar{}) }
func BenchmarkEngineParallel4(b *testing.B) { benchEngine(b, Parallel{NumWorkers: 4}) }
func BenchmarkEngineVector(b *testing.B)    { benchEngine(b, Vector{}) }

func benchEngine(b *testing.B, e Engine) {
	w, err := BenchmarkWorkload()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paths, _ := e.Streamlines(w.Sampler, w.Seeds, w.Time, w.Options)
		if len(paths) != BenchStreamlines {
			b.Fatal("wrong path count")
		}
	}
}

func TestHybridAgreesWithScalar(t *testing.T) {
	s := swirlField(t)
	seeds := benchSeeds(41)
	o := integrate.Options{Method: integrate.RK2, StepSize: 0.5, MaxSteps: 80, MinSpeed: 1e-9}
	ref, refStats := Scalar{}.Streamlines(s, seeds, 0, o)
	for _, h := range []Hybrid{{}, {NumWorkers: 2, VectorLength: 5}, {NumWorkers: 16}} {
		paths, stats := h.Streamlines(s, seeds, 0, o)
		if len(paths) != len(ref) {
			t.Fatalf("%s: path count %d", h.Name(), len(paths))
		}
		for i := range ref {
			if len(paths[i]) != len(ref[i]) {
				t.Fatalf("%s: path %d length %d vs %d", h.Name(), i, len(paths[i]), len(ref[i]))
			}
			for p := range ref[i] {
				if !paths[i][p].ApproxEqual(ref[i][p], 1e-4) {
					t.Fatalf("%s: path %d point %d differs", h.Name(), i, p)
				}
			}
		}
		if stats.Points != refStats.Points {
			t.Errorf("%s: stats.Points = %d, want %d", h.Name(), stats.Points, refStats.Points)
		}
	}
}

func TestHybridFallsBackWithoutBatchSampler(t *testing.T) {
	// A plain sampler (not batchable) must still work via fallback.
	s := swirlField(t)
	plain := integrate.SteadySampler{F: s.F, G: s.G}
	seeds := benchSeeds(7)
	o := integrate.Options{Method: integrate.RK2, StepSize: 0.5, MaxSteps: 20, MinSpeed: 1e-9}
	paths, _ := Hybrid{}.Streamlines(plain, seeds, 0, o)
	ref, _ := Scalar{}.Streamlines(plain, seeds, 0, o)
	for i := range ref {
		if len(paths[i]) != len(ref[i]) {
			t.Fatalf("fallback path %d length %d vs %d", i, len(paths[i]), len(ref[i]))
		}
	}
}
