package compute

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/vmath"
)

// The differential battery: the governor switches engines per batch
// shape at runtime, so Parallel, the SoA Vector engine, and Hybrid
// must be interchangeable — identical Stats counts, identical path
// lengths, and coordinates within 1e-6 of the Scalar reference — on
// randomized (but seeded, hence reproducible) rake/grid configurations,
// not just the handful of hand-built fields above.

// randomBatch builds a random smooth field on a random grid. Velocity
// components stay in ~[0.2, 1.0] so speeds sit far above MinSpeed:
// the one expression-order divergence between the scalar and vector
// paths is the speed-floor comparison (Len() vs squared), and keeping
// every sample away from the floor makes the 1e-6 contract exact
// rather than luck.
func randomBatch(t *testing.T, rng *rand.Rand) SteadyBatch {
	t.Helper()
	ni := 8 + rng.Intn(17)
	nj := 8 + rng.Intn(17)
	nk := 8 + rng.Intn(9)
	g, err := grid.NewCartesian(ni, nj, nk, vmath.AABB{
		Min: vmath.V3(0, 0, 0),
		Max: vmath.V3(float32(ni-1), float32(nj-1), float32(nk-1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := field.NewField(ni, nj, nk, field.GridCoords)
	comp := func() float32 { return 0.2 + 0.8*rng.Float32() }
	// Random per-axis base flow plus low-amplitude per-cell jitter:
	// smooth enough for long paths, random enough to differ per case.
	bu, bv, bw := comp(), comp(), comp()
	for k := 0; k < nk; k++ {
		for j := 0; j < nj; j++ {
			for i := 0; i < ni; i++ {
				f.SetAt(i, j, k, vmath.Vec3{
					X: bu + 0.1*rng.Float32(),
					Y: bv + 0.1*rng.Float32(),
					Z: bw + 0.1*rng.Float32(),
				})
			}
		}
	}
	return SteadyBatch{F: f, G: g}
}

// randomSeeds places n seeds strictly inside the grid interior.
func randomSeeds(rng *rand.Rand, g *grid.Grid, n int) []vmath.Vec3 {
	b := g.Bounds()
	span := b.Max.Sub(b.Min)
	seeds := make([]vmath.Vec3, n)
	for i := range seeds {
		seeds[i] = vmath.Vec3{
			X: b.Min.X + span.X*(0.1+0.8*rng.Float32()),
			Y: b.Min.Y + span.Y*(0.1+0.8*rng.Float32()),
			Z: b.Min.Z + span.Z*(0.1+0.8*rng.Float32()),
		}
	}
	return seeds
}

func TestDifferentialEnginesRandomized(t *testing.T) {
	const cases = 20
	rng := rand.New(rand.NewSource(0x5ca1ab1e))
	methods := []integrate.Method{integrate.RK2, integrate.Euler}
	for c := 0; c < cases; c++ {
		batch := randomBatch(t, rng)
		seeds := randomSeeds(rng, batch.G, 1+rng.Intn(64))
		o := integrate.Options{
			Method:   methods[c%len(methods)],
			StepSize: 0.1 + 0.4*rng.Float32(),
			MaxSteps: 10 + rng.Intn(190),
			MinSpeed: 1e-6,
		}
		t.Run(fmt.Sprintf("case%02d", c), func(t *testing.T) {
			ref, refStats := Scalar{}.Streamlines(batch, seeds, 0, o)
			others := []Engine{
				Parallel{NumWorkers: 1 + rng.Intn(8)},
				Vector{VectorLength: 16},
				Vector{VectorLength: 3 + rng.Intn(29)},
				Hybrid{NumWorkers: 3, VectorLength: 8},
			}
			for _, e := range others {
				paths, stats := e.Streamlines(batch, seeds, 0, o)
				if stats.Points != refStats.Points {
					t.Errorf("%s: Points=%d, scalar %d", e.Name(), stats.Points, refStats.Points)
				}
				if stats.SampleUnits != refStats.SampleUnits || stats.ConvertUnits != refStats.ConvertUnits {
					t.Errorf("%s: units (%d,%d), scalar (%d,%d)", e.Name(),
						stats.SampleUnits, stats.ConvertUnits,
						refStats.SampleUnits, refStats.ConvertUnits)
				}
				if len(paths) != len(ref) {
					t.Fatalf("%s: %d paths, scalar %d", e.Name(), len(paths), len(ref))
				}
				for i := range ref {
					if len(paths[i]) != len(ref[i]) {
						t.Fatalf("%s: path %d has %d points, scalar %d",
							e.Name(), i, len(paths[i]), len(ref[i]))
					}
					for p := range ref[i] {
						if !paths[i][p].ApproxEqual(ref[i][p], 1e-6) {
							t.Fatalf("%s: path %d point %d = %v, scalar %v (beyond 1e-6)",
								e.Name(), i, p, paths[i][p], ref[i][p])
						}
					}
				}
			}
		})
	}
}

// TestDifferentialParticlePathsRandomized runs the same contract over
// the time-dependent entry point (steady field, so the engines' time
// plumbing is exercised without changing the expected answer).
func TestDifferentialParticlePathsRandomized(t *testing.T) {
	const cases = 8
	rng := rand.New(rand.NewSource(0xdeadbeef))
	for c := 0; c < cases; c++ {
		batch := randomBatch(t, rng)
		seeds := randomSeeds(rng, batch.G, 1+rng.Intn(32))
		o := integrate.Options{
			Method:   integrate.RK2,
			StepSize: 0.1 + 0.3*rng.Float32(),
			MaxSteps: 10 + rng.Intn(90),
			MinSpeed: 1e-6,
		}
		t.Run(fmt.Sprintf("case%02d", c), func(t *testing.T) {
			ref, refStats := Scalar{}.ParticlePaths(batch, seeds, 0, 1000, o)
			for _, e := range []Engine{
				Parallel{NumWorkers: 1 + rng.Intn(8)},
				Vector{VectorLength: 16},
				Hybrid{NumWorkers: 3, VectorLength: 8},
			} {
				paths, stats := e.ParticlePaths(batch, seeds, 0, 1000, o)
				if stats.Points != refStats.Points {
					t.Errorf("%s: Points=%d, scalar %d", e.Name(), stats.Points, refStats.Points)
				}
				if len(paths) != len(ref) {
					t.Fatalf("%s: %d paths, scalar %d", e.Name(), len(paths), len(ref))
				}
				for i := range ref {
					if len(paths[i]) != len(ref[i]) {
						t.Fatalf("%s: path %d has %d points, scalar %d",
							e.Name(), i, len(paths[i]), len(ref[i]))
					}
					for p := range ref[i] {
						if !paths[i][p].ApproxEqual(ref[i][p], 1e-6) {
							t.Fatalf("%s: path %d point %d = %v, scalar %v (beyond 1e-6)",
								e.Name(), i, p, paths[i][p], ref[i][p])
						}
					}
				}
			}
		})
	}
}
