package compute

import "time"

// CostModel maps work-unit counts onto a 1992 machine. A "unit" is one
// component trilinear interpolation with its eight floating point
// loads, the quantity §5.3 counts. Unit costs are calibrated from the
// paper's own benchmark (100 streamlines x 200 points = 20,000 points;
// RK2 gives 9 units/point, so 180,000 units total):
//
//	Convex scalar, 4 procs:  0.24 s  => 0.24*4/180000  = 5333 ns/unit
//	Convex vector, 3 procs:  0.19 s  => 0.19*3/180000  = 3167 ns/unit
//	SGI 380GT,     8 procs:  0.135 s => 0.135*8/180000 = 6000 ns/unit
//
// With these three constants the model reproduces every derived number
// in Table 3 and the §5.3 discussion, including the awkward finding
// that vectorization barely paid off: the per-unit win (5333 -> 3167)
// is mostly eaten by dropping from 4 processors to 3.
type CostModel struct {
	// Name labels benchmark rows.
	Name string
	// UnitNanos is the cost of one work unit on one processor.
	UnitNanos float64
	// Workers is the processor count work spreads across.
	Workers int
}

// The paper's three machines/configurations.
var (
	// ConvexScalar4 is the Convex C3240 running the optimized scalar
	// code parallelized across its four processors.
	ConvexScalar4 = CostModel{Name: "convex-scalar-4", UnitNanos: 5333.3, Workers: 4}
	// ConvexVector3 is the Convex running the vectorized code, one
	// processor per velocity component.
	ConvexVector3 = CostModel{Name: "convex-vector-3", UnitNanos: 3166.7, Workers: 3}
	// SGI380GT8 is the stand-alone windtunnel's 8-processor SGI Iris
	// 380GT VGX.
	SGI380GT8 = CostModel{Name: "sgi-380gt-8", UnitNanos: 6000, Workers: 8}
	// ConvexHybrid4 models the optimization §5.3 proposes but never
	// built: vector-pipeline unit cost on all four processors
	// (parallel across streamline groups, vectorized within each).
	ConvexHybrid4 = CostModel{Name: "convex-hybrid-4", UnitNanos: 3166.7, Workers: 4}
)

// ModeledTime returns how long the work in stats would take on the
// modeled machine, assuming perfect distribution across its workers
// (the paper's streamline distribution is embarrassingly parallel and
// balanced).
func (m CostModel) ModeledTime(s Stats) time.Duration {
	if m.Workers < 1 {
		return 0
	}
	ns := float64(s.Units()) / float64(m.Workers) * m.UnitNanos
	return time.Duration(ns)
}

// MaxParticlesAt returns the largest particle count sustainable at the
// given frame period, assuming performance scales linearly with
// particle count from a measured benchmark — Table 3's arithmetic:
// "assuming that the performance scales with the number of particles".
func MaxParticlesAt(benchTime time.Duration, benchParticles int, framePeriod time.Duration) int {
	if benchTime <= 0 {
		return 0
	}
	return int(float64(benchParticles) * float64(framePeriod) / float64(benchTime))
}
