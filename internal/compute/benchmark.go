package compute

import (
	"fmt"
	"time"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/vmath"
)

// The §5.3 evaluation workload: "a benchmark computation of 100
// streamlines each containing 200 points was performed. This scenario
// contains 20,000 points with a transfer over the networks of 240,000
// bytes of data."
const (
	BenchStreamlines    = 100
	BenchPointsPerLine  = 200
	BenchTotalPoints    = BenchStreamlines * BenchPointsPerLine
	BenchTransferBytes  = BenchTotalPoints * 12
	BenchUnitsPerPoint  = 9 // RK2: 2 samples x 3 components + 1 conversion x 3
	BenchTotalWorkUnits = BenchTotalPoints * BenchUnitsPerPoint
)

// Workload is a ready-to-run benchmark scenario.
type Workload struct {
	Sampler integrate.Sampler
	Seeds   []vmath.Vec3
	Options integrate.Options
	Time    float32
}

// BenchmarkWorkload builds the standard 100x200 scenario on the
// tapered cylinder: a velocity field with no interior stagnation or
// early domain exits, so every streamline really runs its full 200
// points (the accounting the paper's numbers assume).
func BenchmarkWorkload() (*Workload, error) {
	// A gentle swirling field on a Cartesian grid guarantees full-
	// length paths; the geometric content does not matter for the
	// performance benchmark, the memory-access pattern does, so grid
	// dimensions match the tapered cylinder dataset (64x64x32).
	g, err := grid.NewCartesian(64, 64, 32, vmath.AABB{
		Min: vmath.V3(0, 0, 0), Max: vmath.V3(63, 63, 31),
	})
	if err != nil {
		return nil, err
	}
	f := field.NewField(64, 64, 32, field.GridCoords)
	for k := 0; k < 32; k++ {
		for j := 0; j < 64; j++ {
			for i := 0; i < 64; i++ {
				// A bounded circulation around the domain center with
				// small spanwise drift: speed never vanishes and
				// trajectories orbit inside the box.
				dx := (float32(i) - 31.5) / 31.5
				dy := (float32(j) - 31.5) / 31.5
				f.SetAt(i, j, k, vmath.Vec3{
					X: -dy*0.08 + 0.01,
					Y: dx * 0.08,
					Z: 0.002,
				})
			}
		}
	}
	seeds := make([]vmath.Vec3, BenchStreamlines)
	for i := range seeds {
		frac := float32(i) / float32(BenchStreamlines)
		seeds[i] = vmath.V3(20+frac*24, 24+frac*16, 4+frac*20)
	}
	return &Workload{
		Sampler: SteadyBatch{F: f, G: g},
		Seeds:   seeds,
		Options: integrate.Options{
			Method:   integrate.RK2,
			StepSize: 1,
			MaxSteps: BenchPointsPerLine - 1, // seed + 199 = 200 points
			MinSpeed: 1e-9,
		},
	}, nil
}

// Result is one engine's benchmark outcome.
type Result struct {
	Engine   string
	Workers  int
	Wall     time.Duration // measured on this host
	Stats    Stats
	Modeled  time.Duration // on the given CostModel, 0 if none applied
	Model    string
	Points   int64
	Complete bool // every streamline reached full length
}

// RunBenchmark executes the workload on the engine, timing it, and
// maps the work onto model (model.Workers of 0 skips modeling).
func RunBenchmark(e Engine, w *Workload, model CostModel) Result {
	start := time.Now()
	paths, stats := e.Streamlines(w.Sampler, w.Seeds, w.Time, w.Options)
	wall := time.Since(start)
	complete := true
	for _, p := range paths {
		if len(p) != w.Options.MaxSteps+1 {
			complete = false
			break
		}
	}
	r := Result{
		Engine:   e.Name(),
		Workers:  e.Workers(),
		Wall:     wall,
		Stats:    stats,
		Points:   stats.Points + int64(len(paths)), // include seeds
		Complete: complete,
	}
	if model.Workers > 0 {
		r.Modeled = model.ModeledTime(stats)
		r.Model = model.Name
	}
	return r
}

// String formats a result row.
func (r Result) String() string {
	s := fmt.Sprintf("%-16s workers=%d wall=%-12v points=%d units=%d",
		r.Engine, r.Workers, r.Wall, r.Points, r.Stats.Units())
	if r.Model != "" {
		s += fmt.Sprintf(" modeled(%s)=%v", r.Model, r.Modeled)
	}
	return s
}
