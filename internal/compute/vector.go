package compute

import (
	"math"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/vmath"
)

// Vector is the "vectorized" engine of §5.3: instead of integrating
// one streamline at a time, it advances a whole batch of streamlines
// one step per pass, with the inner loops running over the batch in
// structure-of-arrays form — the shape the Convex's 128-entry vector
// registers required. "Each component of each point in the streamline
// is handled in parallel by different processors. Thus three
// processors are used."
//
// The Go build gains from this shape too (cache-friendly streaming,
// bounds-check-friendly loops), which is the modern ablation of the
// paper's scalar-vs-vector conflict.
type Vector struct {
	// VectorLength is the batch chunk size; 0 means the Convex's 128.
	VectorLength int
}

// Name implements Engine.
func (Vector) Name() string { return "vector-3" }

// Workers implements Engine: the component-parallel decomposition uses
// three processors, one per velocity component.
func (Vector) Workers() int { return 3 }

func (v Vector) vlen() int {
	if v.VectorLength > 0 {
		return v.VectorLength
	}
	return 128
}

// BatchSampler exposes the raw component arrays of the sampled
// timestep so batch loops can stream them. Only steady (single
// timestep) sampling is batchable; that is exactly the streamline
// case the paper vectorized.
type BatchSampler interface {
	integrate.Sampler
	// Batch returns the grid and velocity component arrays.
	Batch() (g *grid.Grid, u, vv, w []float32)
}

// SteadyBatch adapts a single timestep for both scalar and batch
// engines.
type SteadyBatch struct {
	F *field.Field
	G *grid.Grid
}

// SampleVelocity implements integrate.Sampler.
func (s SteadyBatch) SampleVelocity(gc vmath.Vec3, _ float32) vmath.Vec3 {
	return s.F.Sample(s.G, gc)
}

// Grid implements integrate.Sampler.
func (s SteadyBatch) Grid() *grid.Grid { return s.G }

// Batch implements BatchSampler.
func (s SteadyBatch) Batch() (*grid.Grid, []float32, []float32, []float32) {
	return s.G, s.F.U, s.F.V, s.F.W
}

// Streamlines implements Engine. If the sampler is not batchable it
// falls back to the parallel scalar engine with the same worker count.
func (v Vector) Streamlines(s integrate.Sampler, seeds []vmath.Vec3, t float32, o integrate.Options) ([][]vmath.Vec3, Stats) {
	bs, ok := s.(BatchSampler)
	if !ok || (o.Method != integrate.Euler && o.Method != integrate.RK2) {
		return Parallel{NumWorkers: v.Workers()}.Streamlines(s, seeds, t, o)
	}
	g, fu, fv, fw := bs.Batch()

	paths := make([][]vmath.Vec3, len(seeds))
	var points int64

	chunk := v.vlen()
	for lo := 0; lo < len(seeds); lo += chunk {
		hi := lo + chunk
		if hi > len(seeds) {
			hi = len(seeds)
		}
		points += v.batch(g, fu, fv, fw, seeds[lo:hi], paths[lo:hi], o)
	}
	return paths, statsFor(points, o.Method)
}

// batch advances up to VectorLength streamlines in lock step.
func (v Vector) batch(g *grid.Grid, fu, fv, fw []float32, seeds []vmath.Vec3, paths [][]vmath.Vec3, o integrate.Options) int64 {
	n := len(seeds)
	// SoA state of the particle batch.
	px := make([]float32, 0, n)
	py := make([]float32, 0, n)
	pz := make([]float32, 0, n)
	lane2seed := make([]int, 0, n) // lane -> seed index (lanes compact as particles die)
	for i, seed := range seeds {
		paths[i] = nil
		if g.InBounds(seed) {
			paths[i] = append(make([]vmath.Vec3, 0, o.MaxSteps+1), seed)
			px = append(px, seed.X)
			py = append(py, seed.Y)
			pz = append(pz, seed.Z)
			lane2seed = append(lane2seed, i)
		}
	}

	minSpeed := o.EffectiveMinSpeed()
	// Scratch arrays sized to the live lane count.
	k1x := make([]float32, len(px))
	k1y := make([]float32, len(px))
	k1z := make([]float32, len(px))
	k2x := make([]float32, len(px))
	k2y := make([]float32, len(px))
	k2z := make([]float32, len(px))
	mx := make([]float32, len(px))
	my := make([]float32, len(px))
	mz := make([]float32, len(px))
	cells := make([]cellRef, len(px))

	var points int64
	for step := 0; step < o.MaxSteps && len(px) > 0; step++ {
		live := len(px)
		// Stage 1: locate cells for all lanes (one pass), then
		// interpolate each component over all lanes (three passes) —
		// the vectorizable loops.
		locateCells(g, px[:live], py[:live], pz[:live], cells[:live])
		interpComponent(g, fu, cells[:live], k1x[:live])
		interpComponent(g, fv, cells[:live], k1y[:live])
		interpComponent(g, fw, cells[:live], k1z[:live])

		h := o.StepSize
		if o.Method == integrate.RK2 {
			// Midpoint positions.
			for l := 0; l < live; l++ {
				mx[l] = px[l] + k1x[l]*h/2
				my[l] = py[l] + k1y[l]*h/2
				mz[l] = pz[l] + k1z[l]*h/2
			}
			locateCells(g, mx[:live], my[:live], mz[:live], cells[:live])
			interpComponent(g, fu, cells[:live], k2x[:live])
			interpComponent(g, fv, cells[:live], k2y[:live])
			interpComponent(g, fw, cells[:live], k2z[:live])
		} else {
			copy(k2x[:live], k1x[:live])
			copy(k2y[:live], k1y[:live])
			copy(k2z[:live], k1z[:live])
		}

		// Advance and compact dead lanes.
		out := 0
		for l := 0; l < live; l++ {
			speedSq := k1x[l]*k1x[l] + k1y[l]*k1y[l] + k1z[l]*k1z[l]
			if speedSq < minSpeed*minSpeed {
				continue
			}
			nx := px[l] + k2x[l]*h
			ny := py[l] + k2y[l]*h
			nz := pz[l] + k2z[l]*h
			np := vmath.Vec3{X: nx, Y: ny, Z: nz}
			if !g.InBounds(np) || !np.IsFinite() {
				continue
			}
			seedIdx := lane2seed[l]
			paths[seedIdx] = append(paths[seedIdx], np)
			points++
			px[out], py[out], pz[out] = nx, ny, nz
			lane2seed[out] = seedIdx
			out++
		}
		px, py, pz = px[:out], py[:out], pz[:out]
		lane2seed = lane2seed[:out]
	}
	return points
}

// ParticlePaths implements Engine by falling back to the parallel
// engine: the paper only vectorized the streamline computation ("the
// computation of an individual streamline is an iterative process").
func (v Vector) ParticlePaths(s integrate.Sampler, seeds []vmath.Vec3, t0, maxTime float32, o integrate.Options) ([][]vmath.Vec3, Stats) {
	return Parallel{NumWorkers: v.Workers()}.ParticlePaths(s, seeds, t0, maxTime, o)
}

// cellRef is a located interpolation stencil: base linear index plus
// fractional offsets.
type cellRef struct {
	base       int32
	fx, fy, fz float32
}

// locateCells computes the interpolation stencil for each lane.
func locateCells(g *grid.Grid, px, py, pz []float32, cells []cellRef) {
	ni, nj, nk := g.NI, g.NJ, g.NK
	for l := range px {
		i0, fx := splitClamp(px[l], ni)
		j0, fy := splitClamp(py[l], nj)
		k0, fz := splitClamp(pz[l], nk)
		cells[l] = cellRef{
			base: int32((k0*nj+j0)*ni + i0),
			fx:   fx, fy: fy, fz: fz,
		}
	}
}

func splitClamp(c float32, n int) (int, float32) {
	i := int(math.Floor(float64(c)))
	if i < 0 {
		i = 0
	}
	if i > n-2 {
		i = n - 2
	}
	f := c - float32(i)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return i, f
}

// interpComponent performs the per-component trilinear interpolation
// over all lanes — the paper's "8 floating point loads ... per
// component per point" as one streaming loop.
func interpComponent(g *grid.Grid, a []float32, cells []cellRef, out []float32) {
	ni := g.NI
	slab := g.NI * g.NJ
	for l, c := range cells {
		base := int(c.base)
		c000 := a[base]
		c100 := a[base+1]
		c010 := a[base+ni]
		c110 := a[base+ni+1]
		c001 := a[base+slab]
		c101 := a[base+slab+1]
		c011 := a[base+slab+ni]
		c111 := a[base+slab+ni+1]
		c00 := c000 + c.fx*(c100-c000)
		c10 := c010 + c.fx*(c110-c010)
		c01 := c001 + c.fx*(c101-c001)
		c11 := c011 + c.fx*(c111-c011)
		c0 := c00 + c.fy*(c10-c00)
		c1 := c01 + c.fy*(c11-c01)
		out[l] = c0 + c.fz*(c1-c0)
	}
}
