package server

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/integrate"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// The codec-v2 golden corpus: committed wire bytes for canonical v2
// sessions, pinned alongside the v1 corpus. The same determinism rules
// apply (ManualClock zeroes the nanos fields); additionally the delta
// machinery makes the bytes a function of the session's whole history,
// so each scenario drives one decoder across the full frame sequence
// to prove the stream decodes as well as matching.
//
// Regenerate with:
//
//	go test ./internal/server/ -run TestGoldenFramesV2 -update

var goldenV2Scenarios = []goldenScenario{
	{
		// Steady deltas: keyframe on rake creation, two whole-frame-memo
		// rounds that must encode as pure reference frames, then a hand
		// move (re-encode, still all references — geometry unchanged).
		name: "v2-steady-delta",
		run: func(t *testing.T, s *Server) [][]byte {
			d := newV2Session(t, s, 1)
			updates := []wire.ClientUpdate{
				{Commands: []wire.Command{
					addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 8, 4), 5, integrate.ToolStreamline),
					addRakeCmd(vmath.V3(2, 9, 3), vmath.V3(2, 13, 3), 4, integrate.ToolStreamline),
				}},
				{},
				{},
				{Hand: vmath.V3(3, 2, 1)},
			}
			frames := make([][]byte, len(updates))
			for i, u := range updates {
				frames[i] = d.rawFrame(u)
			}
			return frames
		},
	},
	{
		// Rake-grab keyframe burst: a second session grabs and drags the
		// first session's rake. Every drag bumps the rake's version, so
		// both sessions' frames re-send it inline while the untouched
		// rake stays a reference — the v2 shape of multiuser-grab.
		name: "v2-grab-keyframe",
		run: func(t *testing.T, s *Server) [][]byte {
			d1 := newV2Session(t, s, 1)
			d2 := newV2Session(t, s, 2)
			var frames [][]byte
			f1 := func(u wire.ClientUpdate) { frames = append(frames, d1.rawFrame(u)) }
			f2 := func(u wire.ClientUpdate) { frames = append(frames, d2.rawFrame(u)) }
			f1(wire.ClientUpdate{Commands: []wire.Command{
				addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 9, 4), 4, integrate.ToolStreamline),
				addRakeCmd(vmath.V3(2, 10, 3), vmath.V3(2, 13, 3), 3, integrate.ToolStreamline),
			}})
			f2(wire.ClientUpdate{Hand: vmath.V3(1, 6, 4)})
			f2(wire.ClientUpdate{Commands: []wire.Command{
				{Kind: wire.CmdGrab, Rake: 1, Grab: uint8(integrate.GrabCenter)},
			}})
			f1(wire.ClientUpdate{})
			f2(wire.ClientUpdate{Commands: []wire.Command{
				{Kind: wire.CmdMove, Rake: 1, Pos: vmath.V3(4, 7, 4)},
			}})
			f1(wire.ClientUpdate{})
			f2(wire.ClientUpdate{Commands: []wire.Command{
				{Kind: wire.CmdRelease, Rake: 1},
			}})
			f1(wire.ClientUpdate{})
			return frames
		},
	},
	{
		// Streakline varint: smoke under looping playback grows a
		// particle history of many short lines — the varint-heavy
		// encoding path — then a seek resets it.
		name: "v2-streak-varint",
		run: func(t *testing.T, s *Server) [][]byte {
			d := newV2Session(t, s, 1)
			updates := []wire.ClientUpdate{
				{Commands: []wire.Command{
					addRakeCmd(vmath.V3(1, 6, 4), vmath.V3(1, 10, 4), 3, integrate.ToolStreakline),
					{Kind: wire.CmdSetLoop, Flag: 1},
					{Kind: wire.CmdSetSpeed, Value: 1},
					{Kind: wire.CmdSetPlaying, Flag: 1},
				}},
				{},
				{},
				{Commands: []wire.Command{{Kind: wire.CmdSeek, Value: 0.5}}},
				{},
				{},
			}
			frames := make([][]byte, len(updates))
			for i, u := range updates {
				frames[i] = d.rawFrame(u)
			}
			return frames
		},
	},
}

func TestGoldenFramesV2(t *testing.T) {
	for _, sc := range goldenV2Scenarios {
		t.Run(sc.name, func(t *testing.T) {
			frames := sc.run(t, goldenServer(t, 0, 0))
			// Byte determinism across runs: a fresh server replaying the
			// same script must reproduce the stream exactly — the delta
			// state machine leaves no room for incidental divergence.
			again := sc.run(t, goldenServer(t, 0, 0))
			compareFrames(t, "rerun", again, frames)
			// The whole stream must decode through one stateful decoder
			// (references resolve in order) with no error.
			dec := wire.NewFrameDecoder(quantizerOf(t))
			for i, f := range frames {
				if _, err := dec.Decode(f); err != nil {
					t.Fatalf("frame %d does not decode: %v", i, err)
				}
			}
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(goldenPath(sc.name)), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(sc.name), encodeFrames(frames), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s: %d frames", goldenPath(sc.name), len(frames))
				return
			}
			data, err := os.ReadFile(goldenPath(sc.name))
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			golden, err := decodeFrames(data)
			if err != nil {
				t.Fatal(err)
			}
			compareFrames(t, "ungoverned", frames, golden)

			// Governed at a budget no frame can exceed: shedding must be
			// a strict no-op for v2 exactly as for v1.
			governed := sc.run(t, goldenServer(t, time.Hour, 100))
			compareFrames(t, "governed-at-infinite-budget", governed, golden)
		})
	}
}
