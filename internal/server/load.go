package server

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/dlib"
	"repro/internal/netsim"
	"repro/internal/relay"
	"repro/internal/store"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// LoadOptions configures a multi-workstation load run against an
// in-process server: K simulated workstations attached over netsim
// pipes, each running the hello/whoami handshake and then the
// once-per-frame exchange at a target rate. This is the scale-out
// experiment the paper could not run — it had one Convex and a handful
// of real workstations; we synthesize the fleet.
type LoadOptions struct {
	// Sessions is the number of simulated workstations; 0 means 8.
	Sessions int
	// Frames is the number of frame exchanges per session; 0 means 50.
	Frames int
	// FrameRate is the per-session target frame rate in frames/second;
	// 0 runs unpaced (as fast as the server answers).
	FrameRate float64
	// Link shapes each workstation's connection; the zero value is an
	// unconstrained in-memory pipe.
	Link netsim.Link
	// Rakes seeds the scene with this many streamline rakes before the
	// fleet attaches; 0 means 2.
	Rakes int
	// SeedsPerRake is each rake's seed count; 0 means 8.
	SeedsPerRake int
	// ActiveUsers is how many sessions move their hand every frame
	// (head-tracked users, forcing a fresh encode each round); the
	// rest hold still and ride the fan-out. 0 means 1.
	ActiveUsers int
	// Play starts looping playback at speed 1 before the run, driving
	// timestep traffic through the store (and cache, if configured).
	Play bool
	// Codec is the frame codec each workstation requests at hello; 0 or
	// wire.CodecV1 runs the legacy exchange, wire.CodecV2 negotiates
	// delta/quantized frames (each session decoding through its own
	// stateful decoder, as a real workstation would).
	Codec uint8
	// Relays inserts a cluster tier between the fleet and the origin:
	// this many leaf relay/cache nodes, workstations assigned
	// round-robin across them over opts.Link pipes while the relays'
	// upstream legs run unconstrained. 0 connects the fleet directly
	// (the legacy topology).
	Relays int
	// RelayHops is the tier depth when Relays > 0: 1 puts the leaves
	// directly on the origin; 2 funnels every leaf through one mid
	// aggregation relay, so the origin sees a single frame consumer
	// per round. 0 means 1.
	RelayHops int
	// MaxDroppedFrac, when > 0, tolerates failed frame calls as long
	// as the fraction of dropped latency samples stays at or below
	// this threshold: the run returns a nil error with the drops
	// counted in LoadReport.DroppedSamples. At 0 any failure fails the
	// run (the legacy behavior) — but the drops are still counted, not
	// silently truncated from the latency ranking.
	MaxDroppedFrac float64
	// SessionFault, when non-nil, wraps workstation i's connection in
	// the returned fault plan (nil plans inject nothing) — the
	// deterministic failure seam for testing how the run accounts for
	// sessions that die partway.
	SessionFault func(i int) *netsim.FaultPlan
	// SteerEvery, when > 0, makes workstation 0 grab the steering lock
	// and push a parameter change every SteerEvery frames — live-mode
	// steering churn for in-situ load runs (no-op against a replay
	// server: the commands apply but nothing consumes them).
	SteerEvery int
	// ToolsEvery, when > 0, enables all three shared tools (isosurface,
	// cutting plane, vortex cores) during scene setup and has
	// workstation 0 grab the iso and plane locks and nudge the iso
	// level and plane position every ToolsEvery frames — shared-tool
	// churn that forces tool geometry recomputes alongside the rakes.
	ToolsEvery int
}

// TierStats aggregates one relay tier's traffic: what its nodes served
// downstream (to workstations, or to the tier below) versus what they
// fetched upstream. The gap between the two is the tier's fan-out win.
type TierStats struct {
	Name  string // "leaf" (closest to workstations) or "mid"
	Nodes int

	// Downstream deliveries by this tier's nodes.
	DownFrames int64
	DownBytes  int64
	// Upstream fetches: full round payloads vs round-unchanged
	// markers, and the bytes both cost.
	UpFulls   int64
	UpMarkers int64
	UpBytes   int64
	// Hangups counts downstream connections dropped because the
	// node's upstream leg died.
	Hangups int64
}

// HitRate is the fraction of this tier's upstream exchanges answered
// by a marker instead of a full round payload.
func (t TierStats) HitRate() float64 {
	total := t.UpFulls + t.UpMarkers
	if total == 0 {
		return 0
	}
	return float64(t.UpMarkers) / float64(total)
}

// Amplification is frames delivered downstream per full round payload
// fetched upstream — how many deliveries each copy of the round's
// bytes crossing the upstream link paid for.
func (t TierStats) Amplification() float64 {
	if t.UpFulls == 0 {
		return 0
	}
	return float64(t.DownFrames) / float64(t.UpFulls)
}

// LatencyStats summarizes per-call frame latencies.
type LatencyStats struct {
	P50, P90, P99, Max time.Duration
	Mean               time.Duration
}

// LoadReport is the outcome of one load run.
type LoadReport struct {
	Sessions int
	Frames   int // per session
	Codec    uint8
	Elapsed  time.Duration

	// Server-side deltas over the run.
	Rounds        int64 // computation rounds (incl. whole-frame memo)
	FramesReused  int64 // rounds served whole from the memo
	FramesEncoded int64 // rounds actually wire-encoded
	FramesShipped int64 // per-session sends
	BytesShipped  int64
	Points        int64

	// FramesShed counts encoded rounds shipped degraded and
	// PredictedTime the governor's summed cost predictions over the
	// run (both zero with the governor disabled).
	FramesShed    int64
	PredictedTime time.Duration

	// Shared-tool accounting: geometry recomputes vs memo hits and the
	// tool points shipped (all zero when no tool is active).
	ToolsComputed int64
	ToolsReused   int64
	ToolPoints    int64

	// Latency is the distribution of per-session frame call times.
	Latency LatencyStats
	// Errors counts failed frame calls (the run continues past them).
	Errors int64
	// DroppedSamples counts latency samples lost to failed frame calls
	// — samples the percentiles above do NOT cover. Always populated;
	// LoadOptions.MaxDroppedFrac decides whether drops fail the run.
	DroppedSamples int

	// Cluster tier accounting, populated when LoadOptions.Relays > 0.
	// Tiers[0] is the leaf tier next to the workstations; a second
	// entry is the mid aggregation tier when RelayHops == 2. The
	// Origin* fields are the origin's relay-procedure deltas: full
	// round payloads vs markers it answered over upstream links.
	Relays             int
	RelayHops          int
	Tiers              []TierStats
	OriginRelayFulls   int64
	OriginRelayMarkers int64
	OriginRelayBytes   int64

	// Cache holds the shared timestep cache's counters when the server
	// has one.
	Cache    store.CacheStats
	HasCache bool
}

// Delivered returns the frames and bytes actually handed to
// workstations: the origin's per-session sends on a direct run, the
// leaf tier's downstream deliveries on a relayed one (where the origin
// ships each round once per relay, not once per workstation).
func (r LoadReport) Delivered() (frames, bytes int64) {
	if len(r.Tiers) > 0 {
		return r.Tiers[0].DownFrames, r.Tiers[0].DownBytes
	}
	return r.FramesShipped, r.BytesShipped
}

// FanOut returns delivered frames per encoded-or-reused round — the
// scale-out win: with K workstations it approaches K while
// FramesEncoded stays one per round.
func (r LoadReport) FanOut() float64 {
	if r.Rounds == 0 {
		return 0
	}
	frames, _ := r.Delivered()
	return float64(frames) / float64(r.Rounds)
}

// BytesPerFrame returns the mean wire bytes per delivered frame — the
// paper's Table 1 bandwidth column, and the number codec v2's deltas
// and quantization exist to shrink.
func (r LoadReport) BytesPerFrame() float64 {
	frames, bytes := r.Delivered()
	if frames == 0 {
		return 0
	}
	return float64(bytes) / float64(frames)
}

// String formats the report as a one-run summary table. The shed
// column only appears when the governor degraded at least one round.
func (r LoadReport) String() string {
	codec := r.Codec
	if codec == 0 {
		codec = wire.CodecV1
	}
	// In a relayed run the origin ships only relay payloads; the fleet's
	// frames come off the leaf tier, so the headline counts deliveries.
	delivered, deliveredBytes := r.Delivered()
	out := fmt.Sprintf(
		"sessions=%d frames=%d codec=v%d elapsed=%v rounds=%d encoded=%d reused=%d delivered=%d (fan-out %.1fx) bytes=%d bytes/frame=%.0f errors=%d lat p50=%v p90=%v p99=%v max=%v",
		r.Sessions, r.Frames, codec, r.Elapsed.Round(time.Millisecond),
		r.Rounds, r.FramesEncoded, r.FramesReused, delivered,
		r.FanOut(), deliveredBytes, r.BytesPerFrame(), r.Errors,
		r.Latency.P50.Round(time.Microsecond), r.Latency.P90.Round(time.Microsecond),
		r.Latency.P99.Round(time.Microsecond), r.Latency.Max.Round(time.Microsecond))
	if r.FramesShed > 0 {
		out += fmt.Sprintf(" shed=%d/%d", r.FramesShed, r.FramesEncoded)
	}
	if r.ToolsComputed > 0 || r.ToolsReused > 0 {
		out += fmt.Sprintf(" tools computed=%d reused=%d points=%d",
			r.ToolsComputed, r.ToolsReused, r.ToolPoints)
	}
	if r.DroppedSamples > 0 {
		out += fmt.Sprintf(" dropped=%d/%d samples",
			r.DroppedSamples, r.Sessions*r.Frames)
	}
	if r.Relays > 0 {
		var b strings.Builder
		fmt.Fprintf(&b, "%s\ncluster: %d relays x %d hop(s); origin answered fulls=%d markers=%d (%d bytes up)",
			out, r.Relays, r.RelayHops,
			r.OriginRelayFulls, r.OriginRelayMarkers, r.OriginRelayBytes)
		for _, t := range r.Tiers {
			fmt.Fprintf(&b, "\ntier %s: nodes=%d delivered=%d frames (%d bytes) up fulls=%d markers=%d (%d bytes) hit=%.1f%% amp=%.1fx hangups=%d",
				t.Name, t.Nodes, t.DownFrames, t.DownBytes,
				t.UpFulls, t.UpMarkers, t.UpBytes,
				100*t.HitRate(), t.Amplification(), t.Hangups)
		}
		return b.String()
	}
	return out
}

// RunLoad drives the server with opts.Sessions simulated workstations
// and reports server-side round accounting plus client-side latency
// percentiles. The server keeps running afterwards; only the simulated
// connections are torn down.
func RunLoad(s *Server, opts LoadOptions) (LoadReport, error) {
	if opts.Sessions <= 0 {
		opts.Sessions = 8
	}
	if opts.Frames <= 0 {
		opts.Frames = 50
	}
	if opts.Rakes <= 0 {
		opts.Rakes = 2
	}
	if opts.SeedsPerRake <= 0 {
		opts.SeedsPerRake = 8
	}
	if opts.ActiveUsers <= 0 {
		opts.ActiveUsers = 1
	}
	if opts.ActiveUsers > opts.Sessions {
		opts.ActiveUsers = opts.Sessions
	}
	if opts.Relays > 0 {
		if opts.RelayHops <= 0 {
			opts.RelayHops = 1
		}
		if opts.RelayHops > 2 {
			opts.RelayHops = 2
		}
	} else {
		opts.RelayHops = 0
	}

	// Cluster tier: stand up the relay topology the fleet will attach
	// through. The relays' upstream legs are unconstrained in-memory
	// pipes; only the workstation edge runs over opts.Link.
	dialOrigin := func() (net.Conn, error) {
		serverEnd, clientEnd := netsim.Pipe(netsim.Link{})
		go s.d.ServeConn(serverEnd)
		return clientEnd, nil
	}
	dialRelay := func(rn *relay.Relay) dlib.DialFunc {
		return func() (net.Conn, error) {
			serverEnd, clientEnd := netsim.Pipe(netsim.Link{})
			go rn.Dlib().ServeConn(serverEnd)
			return clientEnd, nil
		}
	}
	var (
		leaves []*relay.Relay
		mid    *relay.Relay
	)
	shutdown := func() {
		for _, rn := range leaves {
			rn.Dlib().Close()
			rn.Close()
		}
		if mid != nil {
			mid.Dlib().Close()
			mid.Close()
		}
	}
	if opts.Relays > 0 {
		upstream := dlib.DialFunc(dialOrigin)
		if opts.RelayHops == 2 {
			var err error
			if mid, err = relay.New(relay.Config{Upstreams: []dlib.DialFunc{dialOrigin}}); err != nil {
				return LoadReport{}, fmt.Errorf("server: load mid relay: %w", err)
			}
			upstream = dialRelay(mid)
		}
		for k := 0; k < opts.Relays; k++ {
			rn, err := relay.New(relay.Config{Upstreams: []dlib.DialFunc{upstream}})
			if err != nil {
				shutdown()
				return LoadReport{}, fmt.Errorf("server: load leaf relay %d: %w", k, err)
			}
			leaves = append(leaves, rn)
		}
	}
	defer shutdown()

	// Scene setup runs over its own connection so per-session frame
	// counts stay uniform.
	setupServer, setupClient := netsim.Pipe(netsim.Link{})
	go s.d.ServeConn(setupServer)
	setup := dlib.NewClient(setupClient)
	var cmds []wire.Command
	b := s.st.Grid().Bounds()
	span := b.Max.Sub(b.Min)
	for i := 0; i < opts.Rakes; i++ {
		frac := (float32(i) + 0.5) / float32(opts.Rakes)
		x := b.Min.X + 0.15*span.X
		z := b.Min.Z + 0.5*span.Z
		cmds = append(cmds, wire.Command{
			Kind:     wire.CmdAddRake,
			P0:       vmath.V3(x, b.Min.Y+frac*span.Y*0.8, z),
			P1:       vmath.V3(x, b.Min.Y+frac*span.Y*0.8+0.15*span.Y, z),
			NumSeeds: uint32(opts.SeedsPerRake),
			Tool:     uint8(0), // streamline
		})
	}
	if opts.ToolsEvery > 0 {
		cmds = append(cmds,
			wire.Command{Kind: wire.CmdIsoSet, Flag: 1, Value: 1},
			wire.Command{Kind: wire.CmdPlaneMove, Flag: 1, Grab: 0, Value: 0.5},
			wire.Command{Kind: wire.CmdVortexToggle, Flag: 1, Value: 0.01},
		)
	}
	if opts.Play {
		cmds = append(cmds,
			wire.Command{Kind: wire.CmdSetLoop, Flag: 1},
			wire.Command{Kind: wire.CmdSetSpeed, Value: 1},
			wire.Command{Kind: wire.CmdSetPlaying, Flag: 1},
		)
	}
	if _, err := setup.Call(wire.ProcFrame, wire.EncodeClientUpdate(wire.ClientUpdate{Commands: cmds})); err != nil {
		setup.Close()
		return LoadReport{}, fmt.Errorf("server: load setup frame: %w", err)
	}
	setup.Close()

	// Snapshot after setup so the report's deltas cover exactly the
	// fleet's frames, not the scene-building round.
	before := s.Stats()

	var period time.Duration
	if opts.FrameRate > 0 {
		period = time.Duration(float64(time.Second) / opts.FrameRate)
	}

	latencies := make([]time.Duration, opts.Sessions*opts.Frames)
	var errCount int64
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		errCount++
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	start := time.Now() //vw:allow wallclock -- load harness measures real latency by design
	var wg sync.WaitGroup
	for i := 0; i < opts.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			serverEnd, clientEnd := netsim.Pipe(opts.Link)
			if len(leaves) > 0 {
				go leaves[i%len(leaves)].Dlib().ServeConn(serverEnd)
			} else {
				go s.d.ServeConn(serverEnd)
			}
			var conn net.Conn = clientEnd
			if opts.SessionFault != nil {
				if p := opts.SessionFault(i); p != nil {
					conn = p.Wrap(clientEnd)
				}
			}
			c := dlib.NewClient(conn)
			defer c.Close()
			var dec *wire.FrameDecoder
			if opts.Codec >= wire.CodecV2 {
				out, err := c.Call(wire.ProcHello2, wire.EncodeHelloRequest(opts.Codec))
				if err != nil {
					fail(fmt.Errorf("session %d: hello2: %w", i, err))
					return
				}
				codec, info, err := wire.DecodeHelloReply(out)
				if err != nil {
					fail(fmt.Errorf("session %d: hello2 reply: %w", i, err))
					return
				}
				if codec >= wire.CodecV2 {
					dec = wire.NewFrameDecoder(info.Quantizer())
				}
			} else if _, err := c.Call(wire.ProcHello, nil); err != nil {
				fail(fmt.Errorf("session %d: hello: %w", i, err))
				return
			}
			active := i < opts.ActiveUsers
			hand := vmath.V3(float32(i), 0, 0)
			// Stagger session starts across one period so the fleet
			// doesn't phase-lock into a single burst.
			var next time.Time
			if period > 0 {
				next = start.Add(period * time.Duration(i) / time.Duration(opts.Sessions))
			}
			for f := 0; f < opts.Frames; f++ {
				if period > 0 {
					if d := time.Until(next); d > 0 { //vw:allow wallclock -- load harness paces real time by design
						time.Sleep(d) //vw:allow wallclock -- load harness paces real time by design
					}
					next = next.Add(period)
				}
				if active {
					hand = vmath.V3(float32(i), float32(f)*0.01, 0)
				}
				var steerCmds []wire.Command
				if opts.SteerEvery > 0 && i == 0 && f%opts.SteerEvery == 0 {
					// Workstation 0 steers: grab (idempotent for the
					// holder), then a full parameter triple that wobbles
					// with the frame number.
					steerCmds = []wire.Command{
						{Kind: wire.CmdSteerGrab},
						{Kind: wire.CmdSteer, P0: vmath.V3(
							1+0.1*float32(f%5), 400, 0.5+0.05*float32(f%3))},
					}
				}
				if opts.ToolsEvery > 0 && i == 0 && f%opts.ToolsEvery == 0 {
					// Workstation 0 works the shared tools: grab both
					// locks (idempotent for the holder) and wobble the iso
					// level and plane position so the server recomputes
					// tool geometry under the fleet's fan-out.
					steerCmds = append(steerCmds,
						wire.Command{Kind: wire.CmdIsoGrab},
						wire.Command{Kind: wire.CmdIsoSet, Flag: 1, Value: 1 + 0.1*float32(f%4)},
						wire.Command{Kind: wire.CmdPlaneGrab},
						wire.Command{Kind: wire.CmdPlaneMove, Flag: 1, Grab: uint8(f % 3), Value: 0.25 + 0.1*float32(f%5)},
					)
				}
				payload := wire.EncodeClientUpdate(wire.ClientUpdate{
					Head:     vmath.Identity(),
					Hand:     hand,
					Commands: steerCmds,
				})
				callStart := time.Now() //vw:allow wallclock -- load harness measures real latency by design
				out, err := c.Call(wire.ProcFrame, payload)
				if err != nil {
					fail(fmt.Errorf("session %d frame %d: %w", i, f, err))
					return
				}
				latencies[i*opts.Frames+f] = time.Since(callStart) //vw:allow wallclock -- load harness measures real latency by design
				if dec != nil {
					_, err = dec.Decode(out)
				} else {
					_, err = wire.DecodeFrameReply(out)
				}
				if err != nil {
					fail(fmt.Errorf("session %d frame %d: decode: %w", i, f, err))
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start) //vw:allow wallclock -- load harness measures real latency by design

	after := s.Stats()
	report := LoadReport{
		Sessions:      opts.Sessions,
		Frames:        opts.Frames,
		Codec:         opts.Codec,
		Elapsed:       elapsed,
		Rounds:        after.Frames - before.Frames,
		FramesReused:  after.FramesReused - before.FramesReused,
		FramesEncoded: after.FramesEncoded - before.FramesEncoded,
		FramesShipped: after.FramesShipped - before.FramesShipped,
		BytesShipped:  after.BytesShipped - before.BytesShipped,
		Points:        after.Points - before.Points,
		FramesShed:    after.FramesShed - before.FramesShed,
		PredictedTime: after.PredictedTime - before.PredictedTime,
		ToolsComputed: after.ToolsComputed - before.ToolsComputed,
		ToolsReused:   after.ToolsReused - before.ToolsReused,
		ToolPoints:    after.ToolPoints - before.ToolPoints,
		Errors:        errCount,
	}
	if opts.Relays > 0 {
		report.Relays = opts.Relays
		report.RelayHops = opts.RelayHops
		report.OriginRelayFulls = after.RelayFulls - before.RelayFulls
		report.OriginRelayMarkers = after.RelayMarkers - before.RelayMarkers
		report.OriginRelayBytes = after.RelayBytes - before.RelayBytes
		leafT := TierStats{Name: "leaf", Nodes: len(leaves)}
		for _, rn := range leaves {
			st := rn.Stats()
			leafT.DownFrames += st.DownFrames
			leafT.DownBytes += st.DownBytes
			leafT.UpFulls += st.UpFulls
			leafT.UpMarkers += st.UpMarkers
			leafT.UpBytes += st.UpBytes
			leafT.Hangups += st.Hangups
		}
		report.Tiers = append(report.Tiers, leafT)
		if mid != nil {
			st := mid.Stats()
			report.Tiers = append(report.Tiers, TierStats{
				Name: "mid", Nodes: 1,
				DownFrames: st.DownFrames, DownBytes: st.DownBytes,
				UpFulls: st.UpFulls, UpMarkers: st.UpMarkers,
				UpBytes: st.UpBytes, Hangups: st.Hangups,
			})
		}
	}
	if cs, ok := s.CacheStats(); ok {
		report.Cache = cs
		report.HasCache = true
	}

	// Failed calls leave zero latencies; drop them before ranking —
	// but count them, so a partially failed run can't masquerade as a
	// clean one with quietly rosier percentiles.
	total := opts.Sessions * opts.Frames
	valid := latencies[:0]
	for _, l := range latencies {
		if l > 0 {
			valid = append(valid, l)
		}
	}
	report.DroppedSamples = total - len(valid)
	if len(valid) > 0 {
		sort.Slice(valid, func(a, b int) bool { return valid[a] < valid[b] })
		var sum time.Duration
		for _, l := range valid {
			sum += l
		}
		report.Latency = LatencyStats{
			P50:  quantile(valid, 0.50),
			P90:  quantile(valid, 0.90),
			P99:  quantile(valid, 0.99),
			Max:  valid[len(valid)-1],
			Mean: sum / time.Duration(len(valid)),
		}
	}
	if firstErr != nil && opts.MaxDroppedFrac > 0 {
		if frac := float64(report.DroppedSamples) / float64(total); frac > opts.MaxDroppedFrac {
			return report, fmt.Errorf("server: load run dropped %d/%d latency samples (%.1f%% > %.1f%% tolerated): %w",
				report.DroppedSamples, total, 100*frac, 100*opts.MaxDroppedFrac, firstErr)
		}
		return report, nil
	}
	return report, firstErr
}

// quantile returns the q-quantile of an ascending-sorted slice by
// nearest-rank.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
