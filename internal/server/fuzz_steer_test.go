package server

import (
	"math"
	"testing"

	"repro/internal/vmath"
	"repro/internal/wire"
)

// FuzzSteerCommand attacks the live-steering surface: arbitrary
// grab/steer/release sequences with hostile parameter triples — NaN
// Reynolds, negative inlet velocity, absurd tapers — arriving as
// well-formed frames. The invariant is the solver-safety contract:
// whatever the sequence, the environment's steering parameters are
// either untouched or a triple validSteerParams accepts, the steering
// version never goes backwards, and the status procedure still
// round-trips. A violation means a hostile value slipped past the
// bounds check on its way to the diffusion step, where a NaN would
// poison the whole velocity field.
func FuzzSteerCommand(f *testing.F) {
	nan := math.Float32frombits(0x7fc00000)
	inf := math.Float32frombits(0x7f800000)
	f.Add(float32(2), float32(300), float32(0.8), uint8(1), uint8(0))
	f.Add(float32(-5), float32(300), float32(0.8), uint8(1), uint8(0)) // negative velocity
	f.Add(float32(2), nan, float32(0.8), uint8(1), uint8(0))           // NaN Reynolds
	f.Add(float32(2), float32(300), float32(1e30), uint8(1), uint8(0)) // huge taper
	f.Add(float32(2), inf, float32(0.8), uint8(0), uint8(1))
	f.Add(float32(0), float32(0), float32(0), uint8(3), uint8(3))

	f.Fuzz(func(t *testing.T, inflow, reynolds, taper float32, grab, release uint8) {
		s, ctx := fuzzServer(t)
		before := s.Env().Steer()

		// Build the steer exchange the bits describe: an optional grab,
		// the parameter change, an optional release — all in one frame,
		// the way vwload's steer phase sends them.
		var cmds []wire.Command
		if grab&1 != 0 {
			cmds = append(cmds, wire.Command{Kind: wire.CmdSteerGrab})
		}
		cmds = append(cmds, wire.Command{Kind: wire.CmdSteer, P0: vmath.V3(inflow, reynolds, taper)})
		if release&1 != 0 {
			cmds = append(cmds, wire.Command{Kind: wire.CmdSteerRelease})
		}
		frameNoPanic(t, s, ctx, wire.EncodeClientUpdate(wire.ClientUpdate{Commands: cmds}))

		st := s.Env().Steer()
		if st.Params != before.Params && !validSteerParams(st.Params.InflowU, st.Params.Reynolds, st.Params.Taper) {
			t.Fatalf("hostile steer landed out-of-envelope params: %+v", st.Params)
		}
		if st.Version < before.Version {
			t.Fatalf("steering version went backwards: %d -> %d", before.Version, st.Version)
		}

		// The status procedure still serves and round-trips the state.
		out, err := s.handleSteer(ctx, nil)
		if err != nil {
			t.Fatalf("steer status errored: %v", err)
		}
		dec, err := wire.DecodeSteerStatus(out)
		if err != nil {
			t.Fatalf("steer status does not round-trip: %v", err)
		}
		if dec.Version != st.Version {
			t.Fatalf("status version %d, env version %d", dec.Version, st.Version)
		}
		// And the frame path is still healthy afterwards.
		frameNoPanic(t, s, ctx, wire.EncodeClientUpdate(wire.ClientUpdate{
			Head: vmath.Identity(), Hand: vmath.V3(2, 0, 0),
		}))
		checkEnvInvariants(t, s)
	})
}
