package server

import (
	"net"
	"testing"

	"repro/internal/dlib"
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/store"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// testDataset builds a small resident dataset: uniform +X drift in
// grid coordinates so paths are predictable.
func testDataset(t testing.TB, numSteps int) *store.Memory {
	t.Helper()
	g, err := grid.NewCartesian(16, 16, 8, vmath.AABB{
		Min: vmath.V3(0, 0, 0), Max: vmath.V3(15, 15, 7),
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := make([]*field.Field, numSteps)
	for s := range steps {
		f := field.NewField(16, 16, 8, field.GridCoords)
		for i := range f.U {
			f.U[i] = 0.5
		}
		steps[s] = f
	}
	u, err := field.NewUnsteady(g, steps, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return store.NewMemory(u)
}

// startTestServer wires a Server to loopback TCP and returns a
// connected dlib client.
func startTestServer(t *testing.T, cfg Config) (*Server, *dlib.Client, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Dlib().Serve(ln)
	addr := ln.Addr().String()
	c, err := dlib.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		s.Dlib().Close()
	})
	return s, c, addr
}

func frame(t *testing.T, c *dlib.Client, u wire.ClientUpdate) wire.FrameReply {
	t.Helper()
	out, err := c.Call(wire.ProcFrame, wire.EncodeClientUpdate(u))
	if err != nil {
		t.Fatal(err)
	}
	r, err := wire.DecodeFrameReply(out)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := New(Config{
		Store:   testDataset(t, 2),
		Options: integrate.Options{StepSize: 0, MaxSteps: 5},
	}); err == nil {
		t.Error("invalid options accepted")
	}
}

func TestHello(t *testing.T) {
	_, c, _ := startTestServer(t, Config{Store: testDataset(t, 4)})
	out, err := c.Call(wire.ProcHello, nil)
	if err != nil {
		t.Fatal(err)
	}
	info, err := wire.DecodeDatasetInfo(out)
	if err != nil {
		t.Fatal(err)
	}
	if info.NI != 16 || info.NK != 8 || info.NumSteps != 4 {
		t.Errorf("info = %+v", info)
	}
	if info.BoundsMax.X != 15 {
		t.Errorf("bounds = %v", info.BoundsMax)
	}
}

func TestAddRakeAndStreamlines(t *testing.T) {
	s, c, _ := startTestServer(t, Config{Store: testDataset(t, 4)})
	r := frame(t, c, wire.ClientUpdate{Commands: []wire.Command{{
		Kind: wire.CmdAddRake,
		P0:   vmath.V3(1, 4, 4), P1: vmath.V3(1, 12, 4),
		NumSeeds: 5, Tool: uint8(integrate.ToolStreamline),
	}}})
	// Commands apply before compute in the same call.
	if len(r.Rakes) != 1 {
		t.Fatalf("rakes = %d", len(r.Rakes))
	}
	if len(r.Geometry) != 1 {
		t.Fatalf("geometry = %d", len(r.Geometry))
	}
	lines := r.Geometry[0].Lines
	if len(lines) != 5 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, l := range lines {
		if len(l) < 10 {
			t.Fatalf("short streamline: %d points", len(l))
		}
		// Uniform +X drift: physical x increases monotonically.
		for p := 1; p < len(l); p++ {
			if l[p].X <= l[p-1].X {
				t.Fatalf("streamline not advancing in +X at %d", p)
			}
		}
	}
	if st := s.Stats(); st.Frames == 0 || st.Points == 0 {
		t.Errorf("stats not accumulating: %+v", st)
	}
}

func TestFrameCachingSharedRounds(t *testing.T) {
	// Two clients in the same round get identical geometry and the
	// server computes once.
	s, c1, addr := startTestServer(t, Config{Store: testDataset(t, 4)})
	c2, err := dlib.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	frame(t, c1, wire.ClientUpdate{Commands: []wire.Command{{
		Kind: wire.CmdAddRake,
		P0:   vmath.V3(1, 8, 4), P1: vmath.V3(1, 10, 4),
		NumSeeds: 2, Tool: uint8(integrate.ToolStreamline),
	}}})
	framesAfterFirst := s.Stats().Frames
	// c2's first call joins the existing round: no recompute.
	frame(t, c2, wire.ClientUpdate{})
	if got := s.Stats().Frames; got != framesAfterFirst {
		t.Errorf("second client forced recompute: %d -> %d", framesAfterFirst, got)
	}
	// c1 calling again starts a new round.
	frame(t, c1, wire.ClientUpdate{})
	if got := s.Stats().Frames; got != framesAfterFirst+1 {
		t.Errorf("new round did not recompute: %d", got)
	}
}

func TestRakeConflictAcrossClients(t *testing.T) {
	_, c1, addr := startTestServer(t, Config{Store: testDataset(t, 4)})
	c2, err := dlib.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	r := frame(t, c1, wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdAddRake, P0: vmath.V3(1, 8, 4), P1: vmath.V3(3, 8, 4),
			NumSeeds: 2, Tool: uint8(integrate.ToolStreamline)},
	}})
	rakeID := r.Rakes[0].ID

	// c1 grabs.
	r = frame(t, c1, wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdGrab, Rake: rakeID, Grab: uint8(integrate.GrabCenter)},
	}})
	holder := r.Rakes[0].Holder
	if holder == 0 {
		t.Fatal("grab did not take")
	}
	// c2 tries to grab and move: ignored, c1 still holds.
	r = frame(t, c2, wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdGrab, Rake: rakeID, Grab: uint8(integrate.GrabCenter)},
		{Kind: wire.CmdMove, Rake: rakeID, Pos: vmath.V3(99, 99, 99)},
	}})
	if r.Rakes[0].Holder != holder {
		t.Errorf("holder changed to %d", r.Rakes[0].Holder)
	}
	if r.Rakes[0].P0.X > 50 {
		t.Error("locked rake moved by second user")
	}
	// c1 moves it, then releases; c2 can now grab.
	frame(t, c1, wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdMove, Rake: rakeID, Pos: vmath.V3(5, 8, 4)},
		{Kind: wire.CmdRelease, Rake: rakeID},
	}})
	r = frame(t, c2, wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdGrab, Rake: rakeID, Grab: uint8(integrate.GrabEnd0)},
	}})
	if r.Rakes[0].Holder == holder || r.Rakes[0].Holder == 0 {
		t.Errorf("second user could not grab after release: holder=%d", r.Rakes[0].Holder)
	}
}

func TestDisconnectReleasesLocks(t *testing.T) {
	s, c1, addr := startTestServer(t, Config{Store: testDataset(t, 4)})
	c2, err := dlib.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	r := frame(t, c2, wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdAddRake, P0: vmath.V3(1, 8, 4), P1: vmath.V3(3, 8, 4),
			NumSeeds: 2, Tool: uint8(integrate.ToolStreamline)},
	}})
	rakeID := r.Rakes[0].ID
	frame(t, c2, wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdGrab, Rake: rakeID, Grab: uint8(integrate.GrabCenter)},
	}})
	c2.Close()
	// Poll until the disconnect hook runs.
	ok := false
	for i := 0; i < 200; i++ {
		snap, found := s.Env().Rake(rakeID)
		if found && snap.Holder == 0 {
			ok = true
			break
		}
		frame(t, c1, wire.ClientUpdate{})
	}
	if !ok {
		t.Error("rake lock survived disconnect")
	}
}

func TestTimeControlCommands(t *testing.T) {
	_, c, _ := startTestServer(t, Config{Store: testDataset(t, 10)})
	r := frame(t, c, wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdSetPlaying, Flag: 1},
		{Kind: wire.CmdSetSpeed, Value: 2},
	}})
	if !r.Time.Playing || r.Time.Speed != 2 {
		t.Fatalf("time state %+v", r.Time)
	}
	cur := r.Time.Current
	r = frame(t, c, wire.ClientUpdate{})
	if r.Time.Current <= cur {
		t.Errorf("time did not advance: %v -> %v", cur, r.Time.Current)
	}
	r = frame(t, c, wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdSetPlaying, Flag: 0},
		{Kind: wire.CmdSeek, Value: 7},
	}})
	if r.Time.Current != 7 || r.Time.Playing {
		t.Errorf("after stop+seek: %+v", r.Time)
	}
}

func TestStreaklineAccumulates(t *testing.T) {
	_, c, _ := startTestServer(t, Config{Store: testDataset(t, 6)})
	add := wire.ClientUpdate{Commands: []wire.Command{{
		Kind: wire.CmdAddRake,
		P0:   vmath.V3(1, 6, 4), P1: vmath.V3(1, 10, 4),
		NumSeeds: 3, Tool: uint8(integrate.ToolStreakline),
	}}}
	r := frame(t, c, add)
	first := r.TotalPoints()
	for i := 0; i < 4; i++ {
		r = frame(t, c, wire.ClientUpdate{})
	}
	if r.TotalPoints() <= first {
		t.Errorf("streak did not accumulate: %d -> %d", first, r.TotalPoints())
	}
	if len(r.Geometry) != 1 || len(r.Geometry[0].Lines) != 3 {
		t.Fatalf("streak geometry shape: %d lines", len(r.Geometry[0].Lines))
	}
}

func TestParticlePathTool(t *testing.T) {
	_, c, _ := startTestServer(t, Config{Store: testDataset(t, 20)})
	r := frame(t, c, wire.ClientUpdate{Commands: []wire.Command{{
		Kind: wire.CmdAddRake,
		P0:   vmath.V3(1, 8, 4), P1: vmath.V3(1, 9, 4),
		NumSeeds: 2, Tool: uint8(integrate.ToolParticlePath),
	}}})
	if len(r.Geometry) != 1 {
		t.Fatalf("geometry = %d", len(r.Geometry))
	}
	for _, l := range r.Geometry[0].Lines {
		if len(l) < 5 {
			t.Errorf("particle path too short: %d", len(l))
		}
	}
}

func TestDiskBackedServerWithPrefetch(t *testing.T) {
	dir := t.TempDir()
	mem := testDataset(t, 6)
	if err := store.WriteDataset(dir, mem.Unsteady()); err != nil {
		t.Fatal(err)
	}
	disk, err := store.OpenDisk(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, c, _ := startTestServer(t, Config{Store: disk, Prefetch: true})
	r := frame(t, c, wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdAddRake, P0: vmath.V3(1, 8, 4), P1: vmath.V3(1, 10, 4),
			NumSeeds: 2, Tool: uint8(integrate.ToolStreamline)},
		{Kind: wire.CmdSetPlaying, Flag: 1},
	}})
	for i := 0; i < 8; i++ {
		r = frame(t, c, wire.ClientUpdate{})
	}
	if r.TotalPoints() == 0 {
		t.Error("no geometry from disk-backed server")
	}
}

func TestBadPayloadRejected(t *testing.T) {
	_, c, _ := startTestServer(t, Config{Store: testDataset(t, 2)})
	if _, err := c.Call(wire.ProcFrame, []byte{1, 2, 3}); err == nil {
		t.Error("garbage payload accepted")
	}
}

func TestDiskBackedParticlePathsUseWindow(t *testing.T) {
	dir := t.TempDir()
	mem := testDataset(t, 12)
	if err := store.WriteDataset(dir, mem.Unsteady()); err != nil {
		t.Fatal(err)
	}
	disk, err := store.OpenDisk(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, c, _ := startTestServer(t, Config{Store: disk})
	r := frame(t, c, wire.ClientUpdate{Commands: []wire.Command{{
		Kind: wire.CmdAddRake,
		P0:   vmath.V3(1, 8, 4), P1: vmath.V3(1, 9, 4),
		NumSeeds: 2, Tool: uint8(integrate.ToolParticlePath),
	}}})
	if len(r.Geometry) != 1 {
		t.Fatalf("geometry = %d", len(r.Geometry))
	}
	for _, l := range r.Geometry[0].Lines {
		if len(l) < 5 {
			t.Errorf("disk-backed particle path too short: %d", len(l))
		}
	}
	// The disk was hit, but future frames at the same step hit the
	// resident window, not the disk, for the repeated path computation.
	loadsBefore, _, _ := disk.Stats()
	frame(t, c, wire.ClientUpdate{})
	frame(t, c, wire.ClientUpdate{})
	loadsAfter, _, _ := disk.Stats()
	if loadsAfter != loadsBefore {
		t.Errorf("paused playback still loading from disk: %d -> %d loads", loadsBefore, loadsAfter)
	}
}

func TestSetToolCommand(t *testing.T) {
	_, c, _ := startTestServer(t, Config{Store: testDataset(t, 4)})
	r := frame(t, c, wire.ClientUpdate{Commands: []wire.Command{{
		Kind: wire.CmdAddRake,
		P0:   vmath.V3(1, 8, 4), P1: vmath.V3(1, 10, 4),
		NumSeeds: 2, Tool: uint8(integrate.ToolStreamline),
	}}})
	id := r.Rakes[0].ID
	r = frame(t, c, wire.ClientUpdate{Commands: []wire.Command{{
		Kind: wire.CmdSetTool, Rake: id, Tool: uint8(integrate.ToolStreakline),
	}}})
	if r.Rakes[0].Tool != uint8(integrate.ToolStreakline) {
		t.Errorf("tool = %d after CmdSetTool", r.Rakes[0].Tool)
	}
	if r.Geometry[0].Tool != uint8(integrate.ToolStreakline) {
		t.Errorf("geometry tool = %d", r.Geometry[0].Tool)
	}
}
