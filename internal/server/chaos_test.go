// Chaos suite for the windtunnel server: scripted faults between a
// workstation and the remote host must end with the shared environment
// consistent — above all, §5.1's first-come-first-served rake locks
// must be released when their holder's connection dies, however it
// dies.
package server

import (
	"net"
	"testing"
	"time"

	"repro/internal/dlib"
	"repro/internal/integrate"
	"repro/internal/netsim"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// grabUpdate is a frame payload that creates rake 1 and grabs it.
func addAndGrab() wire.ClientUpdate {
	return wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdAddRake, P0: vmath.V3(2, 2, 2), P1: vmath.V3(12, 2, 2),
			NumSeeds: 5, Tool: uint8(integrate.ToolStreamline)},
		{Kind: wire.CmdGrab, Rake: 1, Grab: uint8(integrate.GrabCenter)},
	}}
}

// waitRakeFree polls until rake id has no holder.
func waitRakeFree(t *testing.T, s *Server, id int32) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if snap, ok := s.Env().Rake(id); ok && snap.Holder == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	snap, _ := s.Env().Rake(id)
	t.Fatalf("rake %d still held by %d", id, snap.Holder)
}

// TestChaosKilledClientReleasesRakeLocks is the acceptance scenario: a
// client killed mid-session (socket torn down, no goodbye) releases
// its rake locks, and a second client can grab them first-come-first-
// served.
func TestChaosKilledClientReleasesRakeLocks(t *testing.T) {
	s, c1, addr := startTestServer(t, Config{Store: testDataset(t, 4)})

	r1 := frame(t, c1, addAndGrab())
	if len(r1.Rakes) != 1 || r1.Rakes[0].Holder == 0 {
		t.Fatalf("grab did not take: %+v", r1.Rakes)
	}
	holder1 := r1.Rakes[0].Holder

	// Kill the holder abruptly.
	c1.Close()
	waitRakeFree(t, s, 1)

	// A second user walks up and grabs the same rake.
	c2, err := dlib.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	r2 := frame(t, c2, wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdGrab, Rake: 1, Grab: uint8(integrate.GrabEnd0)},
	}})
	if len(r2.Rakes) != 1 || r2.Rakes[0].Holder == 0 || r2.Rakes[0].Holder == holder1 {
		t.Fatalf("second client could not take over: %+v (first holder %d)",
			r2.Rakes, holder1)
	}
}

// TestChaosResetDuringRakeGrab scripts the reset deterministically: the
// server-side connection executes 5 ops serving the grab frame (three
// reads for the pipelined call frame, two writes for the reply), then
// resets on op 6 — the instant it waits for the next call. The lock
// must come free and a fresh session must win it.
func TestChaosResetDuringRakeGrab(t *testing.T) {
	s, err := New(Config{Store: testDataset(t, 4)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Dlib().Close()

	a, b := net.Pipe()
	plan := &netsim.FaultPlan{Faults: []netsim.Fault{
		{Kind: netsim.FaultReset, AtOp: 6},
	}}
	go s.Dlib().ServeConn(plan.Wrap(b))
	c1 := dlib.NewClient(a)
	c1.Timeout = 2 * time.Second
	defer c1.Close()

	r1 := frame(t, c1, addAndGrab())
	if len(r1.Rakes) != 1 || r1.Rakes[0].Holder == 0 {
		t.Fatalf("grab did not take: %+v", r1.Rakes)
	}

	// The scripted reset fires as the server reads for the next frame;
	// its disconnect hook must free the lock.
	waitRakeFree(t, s, 1)

	a2, b2 := net.Pipe()
	go s.Dlib().ServeConn(b2)
	c2 := dlib.NewClient(a2)
	c2.Timeout = 2 * time.Second
	defer c2.Close()
	r2 := frame(t, c2, wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdGrab, Rake: 1, Grab: uint8(integrate.GrabCenter)},
	}})
	if len(r2.Rakes) != 1 || r2.Rakes[0].Holder == 0 {
		t.Fatalf("takeover after reset failed: %+v", r2.Rakes)
	}
	if r2.Rakes[0].Holder == r1.Rakes[0].Holder {
		t.Fatalf("holder did not change across sessions: %d", r2.Rakes[0].Holder)
	}
}

// TestChaosPartitionedHolderIsReaped: the holder does not die — it
// partitions. Only the server's idle reaper can free its locks then.
func TestChaosPartitionedHolderIsReaped(t *testing.T) {
	s, err := New(Config{Store: testDataset(t, 4)})
	if err != nil {
		t.Fatal(err)
	}
	s.Dlib().IdleTimeout = 50 * time.Millisecond
	defer s.Dlib().Close()

	a, b := net.Pipe()
	go s.Dlib().ServeConn(b)
	c1 := dlib.NewClient(a)
	c1.Timeout = 2 * time.Second
	defer c1.Close()

	r1 := frame(t, c1, addAndGrab())
	if r1.Rakes[0].Holder == 0 {
		t.Fatal("grab did not take")
	}
	// Go silent: the workstation is partitioned, the socket is alive.
	// The reaper must notice and release the lock.
	waitRakeFree(t, s, 1)
	if s.Dlib().ReapedSessions() == 0 {
		t.Error("lock freed but session not recorded as reaped")
	}

	// FCFS: a live second user now wins the rake.
	a2, b2 := net.Pipe()
	go s.Dlib().ServeConn(b2)
	c2 := dlib.NewClient(a2)
	c2.Timeout = 2 * time.Second
	defer c2.Close()
	r2 := frame(t, c2, wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdGrab, Rake: 1, Grab: uint8(integrate.GrabCenter)},
	}})
	if r2.Rakes[0].Holder == 0 {
		t.Fatal("second client could not grab after reap")
	}
}

// TestChaosFCFSHeldRakeStaysHeld: faults on OTHER sessions must not
// loosen a live holder's lock — first come, first served means the
// second client keeps failing while the first is alive.
func TestChaosFCFSHeldRakeStaysHeld(t *testing.T) {
	s, c1, addr := startTestServer(t, Config{Store: testDataset(t, 4)})
	r1 := frame(t, c1, addAndGrab())
	holder := r1.Rakes[0].Holder
	if holder == 0 {
		t.Fatal("grab did not take")
	}

	// A rival session grabs, fails (FCFS), then dies by reset.
	c2, err := dlib.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	r2 := frame(t, c2, wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdGrab, Rake: 1, Grab: uint8(integrate.GrabCenter)},
	}})
	if r2.Rakes[0].Holder != holder {
		t.Fatalf("rival stole a held rake: %+v", r2.Rakes)
	}
	c2.Close()

	// The holder's lock survives the rival's death.
	time.Sleep(20 * time.Millisecond)
	snap, ok := s.Env().Rake(1)
	if !ok || snap.Holder != holder {
		t.Fatalf("holder lost lock after rival disconnect: %+v", snap)
	}
}
