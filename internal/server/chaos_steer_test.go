// Chaos suite for live steering: the FCFS steering lock must obey the
// same rules as rake locks under connection death — however the holder
// dies, the lock comes free for the next workstation — and a parameter
// change must land in the solver as one atomic triple or not at all,
// whatever the network does around it.
package server

import (
	"net"
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/dlib"
	"repro/internal/env"
	"repro/internal/netsim"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// envSteer builds the env-side triple.
func envSteer(inflowU, reynolds, taper float32) env.SteerParams {
	return env.SteerParams{InflowU: inflowU, Reynolds: reynolds, Taper: taper}
}

// envSteerDefault is the construction-time triple.
func envSteerDefault() env.SteerParams {
	def := datasets.DefaultSteer()
	return envSteer(def.InflowU, def.Reynolds, def.Taper)
}

// steerUpdate is a frame payload that grabs the steering lock and sets
// the given parameters in one round.
func steerUpdate(inflowU, reynolds, taper float32) wire.ClientUpdate {
	return wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdSteerGrab},
		{Kind: wire.CmdSteer, P0: vmath.V3(inflowU, reynolds, taper)},
	}}
}

// waitSteerFree polls until the steering lock has no holder.
func waitSteerFree(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Env().Steer().Holder == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("steering still held by %d", s.Env().Steer().Holder)
}

// TestChaosKilledSteererReleasesLock: a workstation killed mid-steer
// (socket torn down, no goodbye) releases the steering lock, and a
// second workstation takes over first-come-first-served.
func TestChaosKilledSteererReleasesLock(t *testing.T) {
	def := datasets.DefaultSteer()
	s, c1, addr := startTestServer(t, Config{
		Store: testDataset(t, 4),
		Steer: envSteer(def.InflowU, def.Reynolds, def.Taper),
	})

	frame(t, c1, steerUpdate(2, 300, 0.8))
	st := s.Env().Steer()
	if st.Holder == 0 || st.Params.InflowU != 2 {
		t.Fatalf("steer did not take: %+v", st)
	}
	holder1 := st.Holder

	// Kill the holder abruptly.
	c1.Close()
	waitSteerFree(t, s)

	// FCFS: a second workstation walks up and steers.
	c2, err := dlib.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	frame(t, c2, steerUpdate(3, 250, 1.2))
	st = s.Env().Steer()
	if st.Holder == 0 || st.Holder == holder1 {
		t.Fatalf("second workstation could not take over steering: %+v (first holder %d)", st, holder1)
	}
	if st.Params != envSteer(3, 250, 1.2) {
		t.Fatalf("takeover params: %+v", st.Params)
	}
}

// TestChaosHeldSteerStaysHeld: faults on other sessions must not loosen
// a live holder's steering lock — the rival's grab bounces and its
// death changes nothing.
func TestChaosHeldSteerStaysHeld(t *testing.T) {
	s, c1, addr := startTestServer(t, Config{Store: testDataset(t, 4)})
	frame(t, c1, steerUpdate(2, 300, 0.8))
	holder := s.Env().Steer().Holder
	if holder == 0 {
		t.Fatal("steer grab did not take")
	}

	// A rival grabs, fails (FCFS), then dies by close.
	c2, err := dlib.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	frame(t, c2, steerUpdate(9, 100, 0.1))
	if st := s.Env().Steer(); st.Holder != holder || st.Params.InflowU != 2 {
		t.Fatalf("rival stole held steering: %+v", st)
	}
	c2.Close()

	time.Sleep(20 * time.Millisecond)
	if st := s.Env().Steer(); st.Holder != holder {
		t.Fatalf("holder lost steering after rival disconnect: %+v", st)
	}
}

// TestChaosResetDuringSteerNeverTears sweeps a scripted connection
// reset across every op of the steer exchange against a real live
// producer. Whatever instant the connection dies, the invariant holds:
// the environment's parameters are either the defaults or exactly the
// sent triple (never a mix), the lock comes free, a fresh session
// takes over FCFS, and every change the solver actually applied is a
// complete triple some client sent.
func TestChaosResetDuringSteerNeverTears(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the solver once per fault op")
	}
	spec, sopts := liveSpec()
	def := envSteerDefault()
	sent := envSteer(2.5, 350, 0.9)
	takeover := envSteer(1.5, 500, 0.6)

	for atOp := 1; atOp <= 8; atOp++ {
		s, lv := liveServer(t, spec, sopts, spec.NumSteps, Config{})
		a, b := net.Pipe()
		plan := &netsim.FaultPlan{Faults: []netsim.Fault{
			{Kind: netsim.FaultReset, AtOp: atOp},
		}}
		go s.Dlib().ServeConn(plan.Wrap(b))
		c1 := dlib.NewClient(a)
		c1.Timeout = 2 * time.Second

		// The steer frame may or may not survive the scripted reset;
		// either way is a legal outcome.
		func() {
			defer func() { recover() }()
			u := steerUpdate(2.5, 350, 0.9)
			u.Commands = append(u.Commands, wire.Command{Kind: wire.CmdSetSpeed, Value: 1})
			u.Commands = append(u.Commands, wire.Command{Kind: wire.CmdSetPlaying, Flag: 1})
			c1.Call(wire.ProcFrame, wire.EncodeClientUpdate(u))
		}()
		c1.Close()

		// Atomicity at the environment: defaults or the full triple.
		if p := s.Env().Steer().Params; p != def && p != sent {
			t.Fatalf("atOp %d: torn steering params %+v", atOp, p)
		}
		// However the exchange died, the lock must come free.
		waitSteerFree(t, s)

		// FCFS recovery: a fresh session steers and drives production so
		// pending changes reach the solver.
		d := newDirectSession(t, s, 99)
		u := steerUpdate(1.5, 500, 0.6)
		u.Commands = append(u.Commands,
			wire.Command{Kind: wire.CmdSetSpeed, Value: 1},
			wire.Command{Kind: wire.CmdSetPlaying, Flag: 1})
		d.frame(u)
		for i := 0; i < 3; i++ {
			d.frame(wire.ClientUpdate{})
		}
		if p := s.Env().Steer().Params; p != takeover {
			t.Fatalf("atOp %d: takeover steer did not land: %+v", atOp, p)
		}

		// The solver never saw a half-applied change: every applied set
		// is a complete triple some client sent.
		for _, ap := range lv.AppliedSteer() {
			got := envSteer(ap.InflowU, ap.Reynolds, ap.Taper)
			if got != sent && got != takeover {
				t.Fatalf("atOp %d: solver applied a torn triple %+v", atOp, ap)
			}
		}
		s.Dlib().Close()
	}
}
