package server

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/integrate"
	"repro/internal/netsim"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// The golden-frame corpus: committed wire bytes for three canonical
// sessions, pinned so that (a) the protocol encoding never drifts
// silently and (b) the governor at a generous budget reproduces the
// ungoverned output byte for byte — load shedding must be invisible
// until it actually triggers.
//
// Frames are generated under a ManualClock, so ComputeNanos and
// LoadNanos encode as zero and the bytes are reproducible across runs.
// Caveat: coordinates are float32 results of the integrators, so the
// corpus is pinned to platforms whose Go compiler does not fuse
// multiply-adds differently (amd64/arm64 agree today); regenerate with
// -update if a toolchain change moves the math.
//
// Regenerate with:
//
//	go test ./internal/server/ -run TestGoldenFrames -update

var updateGolden = flag.Bool("update", false, "rewrite the golden frame corpus")

// goldenScenario scripts one deterministic session: a named sequence
// of (session, update) frame exchanges.
type goldenScenario struct {
	name string
	run  func(t *testing.T, s *Server) [][]byte
}

// runSession drives updates through one direct session in order and
// returns the raw reply bytes.
func runSession(t *testing.T, s *Server, id int64, updates []wire.ClientUpdate) [][]byte {
	t.Helper()
	d := newDirectSession(t, s, id)
	frames := make([][]byte, len(updates))
	for i, u := range updates {
		frames[i] = d.rawFrame(u)
	}
	return frames
}

var goldenScenarios = []goldenScenario{
	{
		// Steady streamlines: build a two-rake scene, hold still for two
		// frames (whole-frame memo path), then move the hand (re-encode,
		// no recompute).
		name: "steady-streamlines",
		run: func(t *testing.T, s *Server) [][]byte {
			return runSession(t, s, 1, []wire.ClientUpdate{
				{Commands: []wire.Command{
					addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 8, 4), 5, integrate.ToolStreamline),
					addRakeCmd(vmath.V3(2, 9, 3), vmath.V3(2, 13, 3), 4, integrate.ToolStreamline),
				}},
				{},
				{},
				{Hand: vmath.V3(3, 2, 1)},
			})
		},
	},
	{
		// Streakline seek: smoke source under looping playback, then a
		// seek (which resets the particle history), then more playback.
		name: "streakline-seek",
		run: func(t *testing.T, s *Server) [][]byte {
			return runSession(t, s, 1, []wire.ClientUpdate{
				{Commands: []wire.Command{
					addRakeCmd(vmath.V3(1, 6, 4), vmath.V3(1, 10, 4), 3, integrate.ToolStreakline),
					{Kind: wire.CmdSetLoop, Flag: 1},
					{Kind: wire.CmdSetSpeed, Value: 1},
					{Kind: wire.CmdSetPlaying, Flag: 1},
				}},
				{},
				{},
				{Commands: []wire.Command{{Kind: wire.CmdSeek, Value: 0.5}}},
				{},
				{},
			})
		},
	},
	{
		// Multi-user grab: a second workstation joins, grabs the first
		// user's rake, drags it, and releases — exercising user-list
		// encoding, FCFS lock state on the wire, and rake-move
		// recomputes. Frames alternate session 1, session 2 in a fixed
		// order so the byte stream is reproducible.
		name: "multiuser-grab",
		run: func(t *testing.T, s *Server) [][]byte {
			d1 := newDirectSession(t, s, 1)
			d2 := newDirectSession(t, s, 2)
			var frames [][]byte
			f1 := func(u wire.ClientUpdate) { frames = append(frames, d1.rawFrame(u)) }
			f2 := func(u wire.ClientUpdate) { frames = append(frames, d2.rawFrame(u)) }
			f1(wire.ClientUpdate{Commands: []wire.Command{
				addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 9, 4), 4, integrate.ToolStreamline),
			}})
			f2(wire.ClientUpdate{Hand: vmath.V3(1, 6, 4)})
			f2(wire.ClientUpdate{Commands: []wire.Command{
				{Kind: wire.CmdGrab, Rake: 1, Grab: uint8(integrate.GrabCenter)},
			}})
			f1(wire.ClientUpdate{})
			f2(wire.ClientUpdate{Commands: []wire.Command{
				{Kind: wire.CmdMove, Rake: 1, Pos: vmath.V3(4, 7, 4)},
			}})
			f1(wire.ClientUpdate{})
			f2(wire.ClientUpdate{Commands: []wire.Command{
				{Kind: wire.CmdRelease, Rake: 1},
			}})
			f1(wire.ClientUpdate{})
			return frames
		},
	},
}

// goldenPath returns the scenario's corpus file.
func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".bin")
}

// encodeFrames packs frames as u32 length-prefixed records.
func encodeFrames(frames [][]byte) []byte {
	var buf bytes.Buffer
	for _, f := range frames {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(f)))
		buf.Write(n[:])
		buf.Write(f)
	}
	return buf.Bytes()
}

// decodeFrames splits a corpus file back into frames.
func decodeFrames(data []byte) ([][]byte, error) {
	var frames [][]byte
	for len(data) > 0 {
		if len(data) < 4 {
			return nil, fmt.Errorf("truncated length prefix")
		}
		n := binary.LittleEndian.Uint32(data[:4])
		data = data[4:]
		if uint32(len(data)) < n {
			return nil, fmt.Errorf("truncated frame: want %d bytes, have %d", n, len(data))
		}
		frames = append(frames, data[:n])
		data = data[n:]
	}
	return frames, nil
}

// goldenServer builds the scenario server: fixed dataset, ManualClock
// (zero nanos on the wire), and the given governor configuration.
func goldenServer(t *testing.T, budget time.Duration, unitNanos float64) *Server {
	t.Helper()
	s, err := New(Config{
		Store:  testDataset(t, 4),
		Budget: budget,
		Clock:  netsim.NewManualClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.gov.unitNanos = unitNanos
	return s
}

func TestGoldenFrames(t *testing.T) {
	for _, sc := range goldenScenarios {
		t.Run(sc.name, func(t *testing.T) {
			// The reference run: governor disabled, exactly the
			// pre-governor pipeline.
			frames := sc.run(t, goldenServer(t, 0, 0))
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(goldenPath(sc.name)), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(sc.name), encodeFrames(frames), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s: %d frames", goldenPath(sc.name), len(frames))
				return
			}
			data, err := os.ReadFile(goldenPath(sc.name))
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			golden, err := decodeFrames(data)
			if err != nil {
				t.Fatal(err)
			}
			compareFrames(t, "ungoverned", frames, golden)

			// The governed run at a budget no frame can exceed, with a
			// calibrated rate so the planner actually prices every frame:
			// shedding must be a strict no-op, byte for byte.
			governed := sc.run(t, goldenServer(t, time.Hour, 100))
			compareFrames(t, "governed-at-infinite-budget", governed, golden)
		})
	}
}

// compareFrames asserts byte identity frame by frame, reporting the
// first diverging frame and offset rather than a blob dump.
func compareFrames(t *testing.T, label string, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d frames, golden has %d", label, len(got), len(want))
	}
	for i := range want {
		if bytes.Equal(got[i], want[i]) {
			continue
		}
		off := 0
		for off < len(got[i]) && off < len(want[i]) && got[i][off] == want[i][off] {
			off++
		}
		t.Fatalf("%s: frame %d differs at byte %d (lengths %d vs golden %d)",
			label, i, off, len(got[i]), len(want[i]))
	}
}
