package server

// Shared field-diagnostic tools on the compute path. Isosurfaces,
// cutting planes, and vortex cores are whole-field products — their
// cost scales with the grid, not with a rake's seed row — so they get
// their own governor axis: a cell stride. Under pressure the governor
// coarsens the march (stride 2, then 4) before any held rake sheds a
// seed; a tool is coarsened, never dropped. Geometry is memoized per
// (tool version, timestep, stride) exactly like per-rake geometry, and
// numbered by the same sequence counter so codec-v2 sessions and
// relays can delta it.

import (
	"math"
	"runtime"
	"time"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/isosurf"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// toolUnitsPerCell prices one marched hexahedral cell (six
// tetrahedra) in §5.3 work units; planeUnitsPerNode prices one
// hedgehog sample on a cutting plane.
const (
	toolUnitsPerCell  = 8
	planeUnitsPerNode = 2
)

// toolStrides is the fidelity ladder the governor sheds shared tools
// along: full resolution, half, quarter. The last entry is the floor —
// a tool at stride 4 still renders, just coarser.
var toolStrides = [...]int{1, 2, 4}

// toolGeom memoizes one shared tool's geometry and the inputs it was
// computed from, mirroring rakeGeom: matching (version, step, stride)
// means the cached wire.ToolGeom is the answer. seq/seg/segSeq play
// the same codec-v2 encode-once roles as on rakeGeom.
type toolGeom struct {
	have    bool
	version uint64
	step    int
	stride  int

	geo    wire.ToolGeom
	points int64

	seq    uint64
	seg    []byte
	segSeq uint64
}

// toolScalars caches the per-timestep derived fields the tools share:
// the physical-velocity conversion of the loaded step, its speed
// magnitude (isosurface scalar), and its Q-criterion (vortex scalar).
// Keyed by the loaded field's identity and step so a step change — or
// a live ring regenerating in place under a new pointer — invalidates
// everything at once.
type toolScalars struct {
	src   *field.Field
	step  int
	phys  *field.Field
	speed []float32
	q     []float32
}

// invalidate drops the cache if the loaded step changed.
func (tc *toolScalars) invalidate(cur *field.Field, step int) {
	if tc.src != cur || tc.step != step {
		tc.src, tc.step = cur, step
		tc.phys, tc.speed, tc.q = nil, nil, nil
	}
}

// physical returns the physical-velocity field for the loaded step,
// converting once per step. A degenerate conversion yields nil and
// the tools emit empty geometry rather than failing the frame.
func (tc *toolScalars) physical(g *grid.Grid, cur *field.Field) *field.Field {
	if tc.phys == nil && cur != nil {
		if p, err := field.ToPhysicalVelocity(cur, g); err == nil {
			tc.phys = p
		}
	}
	return tc.phys
}

// speedField returns the cached node speed scalar, building it on
// first use per step.
func (tc *toolScalars) speedField(g *grid.Grid, cur *field.Field) []float32 {
	if tc.speed == nil {
		if p := tc.physical(g, cur); p != nil {
			tc.speed = isosurf.SpeedField(p)
		}
	}
	return tc.speed
}

// qField returns the cached node Q-criterion scalar, building it on
// first use per step.
func (tc *toolScalars) qField(g *grid.Grid, cur *field.Field) []float32 {
	if tc.q == nil {
		if p := tc.physical(g, cur); p != nil {
			if q, err := field.QCriterion(g, p); err == nil {
				tc.q = q
			}
		}
	}
	return tc.q
}

// marchCells counts the strided cells a surface extraction visits.
func marchCells(g *grid.Grid, stride int) int64 {
	span := func(n int) int64 {
		if n <= 1 {
			return 0
		}
		return int64((n-2)/stride + 1)
	}
	return span(g.NI) * span(g.NJ) * span(g.NK)
}

// sliceNodes counts the strided nodes on a cutting plane across axis.
func sliceNodes(g *grid.Grid, axis uint8, stride int) int64 {
	span := func(n int) int64 {
		if n <= 0 {
			return 0
		}
		return int64((n-1)/stride + 1)
	}
	switch axis {
	case 0:
		return span(g.NJ) * span(g.NK)
	case 1:
		return span(g.NI) * span(g.NK)
	default:
		return span(g.NI) * span(g.NJ)
	}
}

// toolUnitsAtLocked prices one frame's enabled tools at the given stride, in
// the governor's §5.3 work units.
func (s *Server) toolUnitsAtLocked(g *grid.Grid, stride int) int64 {
	var u int64
	if s.toolSnap.Iso.Params.Enabled {
		u += marchCells(g, stride) * toolUnitsPerCell
	}
	if s.toolSnap.Vortex.Params.Enabled {
		u += marchCells(g, stride) * toolUnitsPerCell
	}
	if s.toolSnap.Plane.Params.Enabled {
		u += sliceNodes(g, s.toolSnap.Plane.Params.Axis, stride) * planeUnitsPerNode
	}
	return u
}

// planToolsLocked picks this round's tool stride and the slice of the
// frame budget the tools reserve. Tools shed before any rake: the
// first stride whose cost fits the budget alongside the rakes'
// full-fidelity demand wins, and if none fits the floor stride is
// taken anyway (tools coarsen, never disappear) — the rake planner
// then sheds under the reduced budget. Ungoverned and uncalibrated
// servers always march at stride 1, keeping their frames byte-
// identical to a toolless build's behavior. Caller holds s.mu.
func (s *Server) planToolsLocked(g *grid.Grid, rakeUnits int64) (stride int, reserve time.Duration) {
	if !s.toolSnap.Active() {
		return 1, 0
	}
	if !s.gov.enabled() || !s.gov.calibrated() {
		return 1, 0
	}
	full := s.toolUnitsAtLocked(g, 1)
	if full == 0 {
		return 1, 0
	}
	budget := s.gov.effectiveBudget()
	stride = toolStrides[len(toolStrides)-1]
	for _, cand := range toolStrides {
		if s.gov.predict(rakeUnits+s.toolUnitsAtLocked(g, cand)) <= budget {
			stride = cand
			break
		}
	}
	return stride, s.gov.predict(s.toolUnitsAtLocked(g, stride))
}

// computeToolsLocked recomputes every enabled tool whose inputs
// changed, reusing memoized geometry for the rest, and assembles the
// round's tool section. It returns the work actually done (for the
// governor's EWMA), the full/actual unit totals (for the degradation
// byte), and the points shipped. Caller holds s.mu.
func (s *Server) computeToolsLocked(g *grid.Grid, step int) (unitsDone, fullU, actualU, points int64) {
	s.haveTools = s.toolSnap.Active()
	s.toolGeomWire = s.toolGeomWire[:0]
	s.toolGC = s.toolGC[:0]
	if !s.haveTools {
		return 0, 0, 0, 0
	}
	snap := s.toolSnap
	s.toolsMeta = wire.ToolsReply{
		Iso: wire.ToolState{
			Enabled: snap.Iso.Params.Enabled, Value: snap.Iso.Params.Level,
			Holder: snap.Iso.Holder,
		},
		Plane: wire.ToolState{
			Enabled: snap.Plane.Params.Enabled, Axis: snap.Plane.Params.Axis,
			Value: snap.Plane.Params.Frac, Holder: snap.Plane.Holder,
		},
		Vortex: wire.ToolState{
			Enabled: snap.Vortex.Params.Enabled, Value: snap.Vortex.Params.Threshold,
			Holder: snap.Vortex.Holder,
		},
	}
	s.toolScal.invalidate(s.cur, step)
	stride := s.toolStride
	if stride < 1 {
		stride = 1
	}

	// Fixed iso -> plane -> vortex order: tool sections, sequence
	// numbers, and relay directories all depend on it.
	if snap.Iso.Params.Enabled {
		cost := marchCells(g, stride) * toolUnitsPerCell
		fullU += marchCells(g, 1) * toolUnitsPerCell
		actualU += cost
		tg := &s.toolGeos[0]
		if !(tg.have && tg.version == snap.Iso.Version && tg.step == step && tg.stride == stride) {
			pts := tg.geo.Points[:0]
			if scal := s.toolScal.speedField(g, s.cur); scal != nil {
				pts = appendExtract(pts, g, scal, snap.Iso.Params.Level, stride, s.toolWorkers())
			}
			s.finishToolLocked(tg, wire.ToolKindIso, pts, snap.Iso.Version, step, stride)
			unitsDone += cost
		} else {
			s.stats.ToolsReused++
		}
		s.toolGeomWire = append(s.toolGeomWire, tg.geo)
		s.toolGC = append(s.toolGC, tg)
		points += tg.points
	}
	if snap.Plane.Params.Enabled {
		cost := sliceNodes(g, snap.Plane.Params.Axis, stride) * planeUnitsPerNode
		fullU += sliceNodes(g, snap.Plane.Params.Axis, 1) * planeUnitsPerNode
		actualU += cost
		tg := &s.toolGeos[1]
		if !(tg.have && tg.version == snap.Plane.Version && tg.step == step && tg.stride == stride) {
			pts := tg.geo.Points[:0]
			if phys := s.toolScal.physical(g, s.cur); phys != nil {
				pts = appendPlaneHedgehog(pts, g, phys, snap.Plane.Params.Axis, snap.Plane.Params.Frac, stride)
			}
			s.finishToolLocked(tg, wire.ToolKindPlane, pts, snap.Plane.Version, step, stride)
			unitsDone += cost
		} else {
			s.stats.ToolsReused++
		}
		s.toolGeomWire = append(s.toolGeomWire, tg.geo)
		s.toolGC = append(s.toolGC, tg)
		points += tg.points
	}
	if snap.Vortex.Params.Enabled {
		cost := marchCells(g, stride) * toolUnitsPerCell
		fullU += marchCells(g, 1) * toolUnitsPerCell
		actualU += cost
		tg := &s.toolGeos[2]
		if !(tg.have && tg.version == snap.Vortex.Version && tg.step == step && tg.stride == stride) {
			pts := tg.geo.Points[:0]
			if scal := s.toolScal.qField(g, s.cur); scal != nil {
				pts = appendExtract(pts, g, scal, snap.Vortex.Params.Threshold, stride, s.toolWorkers())
			}
			s.finishToolLocked(tg, wire.ToolKindVortex, pts, snap.Vortex.Version, step, stride)
			unitsDone += cost
		} else {
			s.stats.ToolsReused++
		}
		s.toolGeomWire = append(s.toolGeomWire, tg.geo)
		s.toolGC = append(s.toolGC, tg)
		points += tg.points
	}
	s.toolsMeta.Geoms = s.toolGeomWire
	return unitsDone, fullU, actualU, points
}

// finishToolLocked commits one recomputed tool geometry to its memo
// entry and assigns it the next geometry sequence number. Caller holds
// s.mu.
func (s *Server) finishToolLocked(tg *toolGeom, kind uint8, pts []vmath.Vec3, version uint64, step, stride int) {
	tg.geo = wire.ToolGeom{Tool: kind, Points: pts}
	tg.points = int64(len(pts))
	tg.have = true
	tg.version = version
	tg.step = step
	tg.stride = stride
	s.geoSeq++
	tg.seq = s.geoSeq
	s.stats.ToolsComputed++
}

// encodeToolSegLocked ensures tg.seg holds the codec-v2 segment for
// the tool's current geometry sequence — encode-once, tool edition.
// Caller holds s.mu.
func (s *Server) encodeToolSegLocked(tg *toolGeom) {
	if tg.segSeq != tg.seq {
		tg.seg = wire.AppendToolGeomV2(tg.seg[:0], tg.geo, s.quant)
		tg.segSeq = tg.seq
	}
}

// toolWorkers returns the worker count surface extraction parallelizes
// over, matching the rake pool's bound.
func (s *Server) toolWorkers() int {
	if s.cfg.RakeWorkers > 0 {
		return s.cfg.RakeWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// appendExtract marches the iso-valued surface of scalar and appends
// the triangle soup to dst as flat points. The extraction order is
// pinned (see isosurf.ExtractParallel), so two servers at the same
// (scalar, level, stride) append identical point streams.
func appendExtract(dst []vmath.Vec3, g *grid.Grid, scalar []float32, level float32, stride, workers int) []vmath.Vec3 {
	tris, err := isosurf.ExtractParallel(g, scalar, level, stride, workers)
	if err != nil {
		return dst
	}
	for _, t := range tris {
		dst = append(dst, t[0], t[1], t[2])
	}
	return dst
}

// hedgehogScale scales a node's physical velocity into its hedgehog
// segment on the cutting plane.
const hedgehogScale = 1.0

// appendPlaneHedgehog appends the cutting plane's hedgehog segments —
// one (root, root + v·scale) pair per strided node of the slice at
// frac along axis — in pinned node order.
func appendPlaneHedgehog(dst []vmath.Vec3, g *grid.Grid, phys *field.Field, axis uint8, frac float32, stride int) []vmath.Vec3 {
	if stride < 1 {
		stride = 1
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	pick := func(n int) int {
		p := int(math.Round(float64(frac) * float64(n-1)))
		if p < 0 {
			p = 0
		}
		if p > n-1 {
			p = n - 1
		}
		return p
	}
	emit := func(i, j, k int) {
		idx := g.Index(i, j, k)
		root := vmath.Vec3{X: g.X[idx], Y: g.Y[idx], Z: g.Z[idx]}
		v := phys.At(i, j, k)
		dst = append(dst, root, root.Add(v.Scale(hedgehogScale)))
	}
	switch axis {
	case 0:
		i := pick(g.NI)
		for k := 0; k < g.NK; k += stride {
			for j := 0; j < g.NJ; j += stride {
				emit(i, j, k)
			}
		}
	case 1:
		j := pick(g.NJ)
		for k := 0; k < g.NK; k += stride {
			for i := 0; i < g.NI; i += stride {
				emit(i, j, k)
			}
		}
	default:
		k := pick(g.NK)
		for j := 0; j < g.NJ; j += stride {
			for i := 0; i < g.NI; i += stride {
				emit(i, j, k)
			}
		}
	}
	return dst
}

// validIsoLevel bounds a client-supplied iso level: speed magnitudes
// are non-negative and a sane dataset stays far below the cap.
func validIsoLevel(v float32) bool {
	return finite32(v) && v >= 0 && v <= 1e6
}

// validVortexThreshold bounds a client-supplied Q threshold.
// Q-criterion values are signed; the cap only screens absurdity.
func validVortexThreshold(v float32) bool {
	return finite32(v) && v >= -1e6 && v <= 1e6
}
