package server

import (
	"math"
	"testing"

	"repro/internal/vmath"
	"repro/internal/wire"
)

// FuzzToolCommand attacks the shared-tool command surface: arbitrary
// grab/set/release sequences against all three tools with hostile
// parameters — NaN iso levels, out-of-range plane axes and fractions,
// absurd Q thresholds, unknown command kinds. The invariant is the
// extraction-safety contract: whatever arrives, the environment's
// tool parameters are either untouched or values the validators
// accept (a NaN level would poison the marching pass; an out-of-range
// axis would index past the grid), tool versions never go backwards,
// and the frame path stays healthy afterwards.
func FuzzToolCommand(f *testing.F) {
	nan := math.Float32frombits(0x7fc00000)
	inf := math.Float32frombits(0x7f800000)
	f.Add(float32(0.8), uint8(0), float32(0.5), float32(0.01), uint8(7), uint8(0))
	f.Add(nan, uint8(1), float32(0.25), float32(0.01), uint8(7), uint8(0)) // NaN iso level
	f.Add(inf, uint8(2), float32(0.75), float32(0.02), uint8(1), uint8(1)) // Inf iso level
	f.Add(float32(1e30), uint8(0), float32(0.5), float32(-1e30), uint8(7), uint8(0))
	f.Add(float32(0.8), uint8(3), float32(0.5), float32(0.01), uint8(2), uint8(0))   // axis out of range
	f.Add(float32(0.8), uint8(255), float32(-2), float32(0.01), uint8(2), uint8(0))  // hostile axis + frac
	f.Add(float32(0.8), uint8(1), nan, inf, uint8(6), uint8(2))                      // NaN frac, Inf threshold
	f.Add(float32(0.5), uint8(0), float32(2), float32(0.01), uint8(255), uint8(255)) // unknown kinds

	f.Fuzz(func(t *testing.T, level float32, axis uint8, frac, threshold float32, tools, extra uint8) {
		s, ctx := fuzzServer(t)
		before := s.Env().Tools()

		// Build the tool exchange the bits describe: grab+set for each
		// tool selected by the low bits of tools, optional releases, and
		// — when extra has high bits — a command with an unknown kind,
		// the forward-compatibility path.
		var cmds []wire.Command
		if tools&1 != 0 {
			cmds = append(cmds,
				wire.Command{Kind: wire.CmdIsoGrab},
				wire.Command{Kind: wire.CmdIsoSet, Flag: tools & 1, Value: level})
		}
		if tools&2 != 0 {
			cmds = append(cmds,
				wire.Command{Kind: wire.CmdPlaneGrab},
				wire.Command{Kind: wire.CmdPlaneMove, Flag: 1, Grab: axis, Value: frac})
		}
		if tools&4 != 0 {
			cmds = append(cmds, wire.Command{Kind: wire.CmdVortexToggle, Flag: 1, Value: threshold})
		}
		if extra&1 != 0 {
			cmds = append(cmds, wire.Command{Kind: wire.CmdIsoRelease})
		}
		if extra&2 != 0 {
			cmds = append(cmds, wire.Command{Kind: wire.CmdPlaneRelease})
		}
		if extra&0xf0 != 0 {
			cmds = append(cmds, wire.Command{Kind: wire.CmdKind(extra), Value: level, Grab: axis})
		}
		frameNoPanic(t, s, ctx, wire.EncodeClientUpdate(wire.ClientUpdate{Commands: cmds}))

		ts := s.Env().Tools()
		if ts.Iso.Params != before.Iso.Params && !validIsoLevel(ts.Iso.Params.Level) {
			t.Fatalf("hostile iso level landed: %+v", ts.Iso.Params)
		}
		if p := ts.Plane.Params; p != before.Plane.Params &&
			(p.Axis > 2 || !finite32(p.Frac) || p.Frac < 0 || p.Frac > 1) {
			t.Fatalf("hostile plane params landed: %+v", p)
		}
		if ts.Vortex.Params != before.Vortex.Params && !validVortexThreshold(ts.Vortex.Params.Threshold) {
			t.Fatalf("hostile vortex threshold landed: %+v", ts.Vortex.Params)
		}
		for _, pair := range [][2]uint64{
			{before.Iso.Version, ts.Iso.Version},
			{before.Plane.Version, ts.Plane.Version},
			{before.Vortex.Version, ts.Vortex.Version},
		} {
			if pair[1] < pair[0] {
				t.Fatalf("tool version went backwards: %d -> %d", pair[0], pair[1])
			}
		}

		// The frame path is still healthy afterwards — including a
		// recompute that marches whatever parameters were accepted.
		frameNoPanic(t, s, ctx, wire.EncodeClientUpdate(wire.ClientUpdate{
			Head: vmath.Identity(), Hand: vmath.V3(2, 0, 0),
		}))
		checkEnvInvariants(t, s)
	})
}
