package server

// Cluster-tier coverage for the shared tools: the tool golden corpus
// (golden_tools_test.go) replayed through one and two relay hops must
// be byte-identical to the committed direct-connect files — the relay
// tool-segment cache (negative directory keys) must be invisible.

import (
	"bytes"
	"testing"

	"repro/internal/dlib"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// toolRelayScript converts a tool scenario script into the relay
// harness's exchange form (user ids become session numbers; the relay
// harness opens connections in first-use order, which matches).
func toolRelayScript(script []toolExchange) []relayExchange {
	out := make([]relayExchange, len(script))
	for i, ex := range script {
		out[i] = relayExchange{sess: int(ex.user), u: ex.u}
	}
	return out
}

func TestRelayToolGoldenFrames(t *testing.T) {
	for _, sc := range toolScripts {
		for _, v2 := range []bool{false, true} {
			name := sc.name
			if v2 {
				name = "v2-" + name
			}
			t.Run(name, func(t *testing.T) {
				origin := goldenToolServer(t, 0, 0)
				_, dial := startRelayNode(t, serveDial(origin.Dlib(), netsim.Link{}))
				frames := runRelayScript(t, dial, v2, toolRelayScript(sc.script))
				compareFrames(t, "relayed", frames, loadGolden(t, name))
			})
		}
	}
}

func TestRelayToolChainedGoldenFrames(t *testing.T) {
	for _, sc := range toolScripts {
		for _, v2 := range []bool{false, true} {
			name := sc.name
			if v2 {
				name = "v2-" + name
			}
			t.Run(name, func(t *testing.T) {
				origin := goldenToolServer(t, 0, 0)
				_, midDial := startRelayNode(t, serveDial(origin.Dlib(), netsim.Link{}))
				_, leafDial := startRelayNode(t, midDial)
				frames := runRelayScript(t, leafDial, v2, toolRelayScript(sc.script))
				compareFrames(t, "chained", frames, loadGolden(t, name))
			})
		}
	}
}

// TestRelayToolFanOut pins the encode-once property for tool-bearing
// rounds: with several workstations holding still behind one relay and
// all three tools enabled, steady-phase frames must be served from the
// relay cache byte-identically.
func TestRelayToolFanOut(t *testing.T) {
	const sessions = 4
	origin := goldenToolServer(t, 0, 0)
	_, dial := startRelayNode(t, serveDial(origin.Dlib(), netsim.Link{}))

	clients := make([]*dlib.Client, sessions)
	for i := range clients {
		conn, err := dial()
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = dlib.NewClient(conn)
		c := clients[i]
		t.Cleanup(func() { c.Close() })
	}
	exchange := func(c *dlib.Client, u wire.ClientUpdate) []byte {
		t.Helper()
		out, err := c.Call(wire.ProcFrame, wire.EncodeClientUpdate(u))
		if err != nil {
			t.Fatal(err)
		}
		return bytes.Clone(out)
	}
	exchange(clients[0], wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdIsoSet, Flag: 1, Value: 0.8},
		{Kind: wire.CmdPlaneMove, Flag: 1, Grab: 0, Value: 0.5},
		{Kind: wire.CmdVortexToggle, Flag: 1, Value: 0.01},
	}})
	// Settle the join churn (each connect bumps the user list), then
	// require byte-stable fan-out of the tool-bearing round.
	for range [2]int{} {
		for _, c := range clients {
			exchange(c, wire.ClientUpdate{})
		}
	}
	ref := exchange(clients[0], wire.ClientUpdate{})
	r, err := wire.DecodeFrameReply(ref)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tools == nil || r.Tools.TotalPoints() == 0 {
		t.Fatal("steady round carries no tool geometry")
	}
	for round := 0; round < 3; round++ {
		for i, c := range clients {
			got := exchange(c, wire.ClientUpdate{})
			if !bytes.Equal(got, ref) {
				t.Fatalf("round %d session %d: tool-bearing frame differs from the shared round", round, i)
			}
		}
	}
}
