package server

// Live steering must survive the cluster tier: the steering lock is
// held by origin-side session id and the status poll is its own dlib
// procedure, so a relay that forwards frames but not ProcSteer would
// silently strand every steering HUD behind it.

import (
	"testing"

	"repro/internal/dlib"
	"repro/internal/netsim"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// TestRelaySteerStatus drives a steering grab + parameter change from
// one workstation and polls SteerStatus from another, both behind two
// relay hops: the poll must reach the origin on the session's pinned
// upstream leg and report the accepted parameters and a live holder.
func TestRelaySteerStatus(t *testing.T) {
	origin := goldenServer(t, 0, 0)
	_, midDial := startRelayNode(t, serveDial(origin.Dlib(), netsim.Link{}))
	_, leafDial := startRelayNode(t, midDial)

	connect := func() *dlib.Client {
		t.Helper()
		conn, err := leafDial()
		if err != nil {
			t.Fatal(err)
		}
		c := dlib.NewClient(conn)
		t.Cleanup(func() { c.Close() })
		return c
	}
	holder, watcher := connect(), connect()

	if _, err := holder.Call(wire.ProcFrame, wire.EncodeClientUpdate(wire.ClientUpdate{
		Commands: []wire.Command{
			{Kind: wire.CmdSteerGrab},
			{Kind: wire.CmdSteer, P0: vmath.V3(2.5, 150, 0.5)},
		},
	})); err != nil {
		t.Fatal(err)
	}

	rep, err := watcher.Call(wire.ProcSteer, nil)
	if err != nil {
		t.Fatalf("ProcSteer through two relay hops: %v", err)
	}
	st, err := wire.DecodeSteerStatus(rep)
	if err != nil {
		t.Fatal(err)
	}
	if st.InflowU != 2.5 || st.Reynolds != 150 || st.Taper != 0.5 {
		t.Errorf("steer params = (%g, %g, %g), want (2.5, 150, 0.5)", st.InflowU, st.Reynolds, st.Taper)
	}
	if st.Holder == 0 {
		t.Error("steering lock holder not visible through the relay")
	}
	if st.Version == 0 {
		t.Error("steering version did not advance — the CmdSteer was dropped")
	}

	// The holder's own poll sees the same state: both sessions route to
	// the same pinned upstream.
	rep2, err := holder.Call(wire.ProcSteer, nil)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := wire.DecodeSteerStatus(rep2)
	if err != nil {
		t.Fatal(err)
	}
	if st2 != st {
		t.Errorf("holder sees %+v, watcher sees %+v — sessions diverged", st2, st)
	}
}
