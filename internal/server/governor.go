// The frame-budget governor. The paper's real-time constraint (§5.3,
// Table 3) is that integration throughput bounds how many path points
// fit in a 0.1 s frame: the Convex served however many particles fit
// the budget, no more. The governor reproduces that behavior
// adaptively: it prices every dirty rake in the §5.3 work units the
// CostModel counts (compute.UnitsPerPoint x seeds x steps), converts
// units to predicted time with a live EWMA of measured ns/unit, and —
// when the prediction exceeds the configured budget — sheds load
// deterministically before the frame runs, instead of blowing the
// deadline and discovering it afterwards.
//
// Shedding is ordered by the paper's conflict-resolution priority:
// free rakes degrade first, FCFS-grabbed rakes (someone is actively
// holding them) degrade last. Within a rake, steps shed before seeds —
// shorter paths first, fewer paths only under heavy pressure — and no
// rake is ever starved below one seed and a small step floor.
// Streaklines carry cross-frame particle state, so they are priced but
// never clamped (clamping would corrupt the §2.1 smoke history).
//
// All time flows through the injected netsim.Clock: the EWMA is
// calibrated from clock-measured integrate stages, so a ManualClock
// yields zero-duration measurements, a frozen EWMA, and fully
// replayable shed plans.
package server

import (
	"time"

	"repro/internal/compute"
	"repro/internal/netsim"
)

// minShedSteps is the per-path step floor: shedding never truncates a
// path below this many steps (or the configured MaxSteps, if smaller),
// so even a fully shed frame still shows flow direction at every rake.
const minShedSteps = 8

// ewmaAlpha is the calibration smoothing factor: each measured frame
// moves the ns/unit estimate 20% of the way to the new sample.
const ewmaAlpha = 0.2

// shedRequest prices one dirty rake for the planner.
type shedRequest struct {
	// Units is the full-fidelity predicted work in §5.3 units.
	Units int64
	// Seeds and Steps are the full-fidelity clamp inputs.
	Seeds, Steps int
	// Held marks FCFS-grabbed rakes, which degrade last.
	Held bool
	// Fixed marks stateful rakes (streaklines) that are priced but
	// never clamped.
	Fixed bool
}

// shedLevel is the planner's per-rake decision: the seed and step
// counts the rake may compute this frame.
type shedLevel struct {
	Seeds, Steps int
}

// governor holds the frame-budget state. It is owned by the Server and
// mutated only under the server mutex; a zero budget disables it.
type governor struct {
	budget time.Duration
	clock  netsim.Clock

	// unitNanos is the EWMA of measured integrate nanoseconds per work
	// unit; 0 means uncalibrated, and an uncalibrated governor never
	// sheds (the first frames establish the rate).
	unitNanos float64

	// pressure is an EWMA of measured timestep-load nanoseconds — the
	// in-situ backpressure signal. When the live solver contends with
	// integrate/encode, frame loads stall on on-demand production;
	// folding that stall into the effective budget makes the planner
	// shed integration work to leave room for solver compute. Zero
	// samples (cache hits, ManualClock) decay the pressure instead of
	// being ignored, so a recovered producer releases the squeeze.
	pressure float64

	// Pre-built engines for shed batches, chosen per batch shape so
	// interface boxing never happens on the frame path.
	parallel compute.Engine
	vector   compute.Engine
	hybrid   compute.Engine
}

// newGovernor builds a governor for the given budget (0 = disabled)
// and worker count.
func newGovernor(budget time.Duration, clock netsim.Clock, workers int) *governor {
	return &governor{
		budget:   budget,
		clock:    clock,
		parallel: compute.Parallel{NumWorkers: workers},
		vector:   compute.Vector{},
		hybrid:   compute.Hybrid{NumWorkers: workers},
	}
}

// enabled reports whether a budget is configured.
func (g *governor) enabled() bool { return g.budget > 0 }

// calibrated reports whether at least one frame has established a
// ns/unit rate.
func (g *governor) calibrated() bool { return g.unitNanos > 0 }

// predict converts work units to modeled time at the current EWMA
// rate.
func (g *governor) predict(units int64) time.Duration {
	return time.Duration(g.unitNanos * float64(units))
}

// observe folds one measured integrate stage into the EWMA. Zero or
// negative measurements are ignored — under a ManualClock every stage
// measures zero, which must freeze the estimate (keeping shed plans
// replayable), not poison it.
func (g *governor) observe(measured time.Duration, units int64) {
	if measured <= 0 || units <= 0 {
		return
	}
	sample := float64(measured.Nanoseconds()) / float64(units)
	if g.unitNanos == 0 {
		g.unitNanos = sample
		return
	}
	g.unitNanos = (1-ewmaAlpha)*g.unitNanos + ewmaAlpha*sample
}

// notePressure folds one measured timestep-load wait into the
// backpressure EWMA. Unlike observe, zero samples are data: they mean
// the load was served from resident steps, so the pressure decays.
// Under a ManualClock every sample is zero and the pressure stays at
// zero — shed plans remain replayable.
func (g *governor) notePressure(loadWait time.Duration) {
	if loadWait <= 0 {
		g.pressure *= 1 - ewmaAlpha
		if g.pressure < 1 { // below a nanosecond: call it gone
			g.pressure = 0
		}
		return
	}
	sample := float64(loadWait.Nanoseconds())
	if g.pressure == 0 {
		g.pressure = sample
		return
	}
	g.pressure = (1-ewmaAlpha)*g.pressure + ewmaAlpha*sample
}

// effectiveBudget is the integration budget after backpressure: the
// configured budget minus the expected solver/load stall, floored at a
// quarter of the budget so visualization is squeezed, never starved.
func (g *governor) effectiveBudget() time.Duration {
	if g.budget <= 0 || g.pressure <= 0 {
		return g.budget
	}
	eff := g.budget - time.Duration(g.pressure)
	if floor := g.budget / 4; eff < floor {
		eff = floor
	}
	return eff
}

// plan decides this frame's shed levels. It writes one shedLevel per
// request into dst (which must be len(reqs)) and returns the predicted
// full-fidelity cost and whether any shedding is active. The plan is a
// pure function of (reqs, effective budget, unitNanos): deterministic across
// runs, monotone in the budget (a tighter budget never allows more
// seeds or steps), and floor-bounded (never below one seed, never
// below minShedSteps steps).
func (g *governor) plan(reqs []shedRequest, dst []shedLevel) (predicted time.Duration, shed bool) {
	return g.planWith(reqs, dst, 0)
}

// planWith is plan with part of the effective budget reserved for
// work the rake planner does not control — the shared tools' slice of
// the frame. plan(reqs, dst) is planWith(reqs, dst, 0), so every
// property above holds per reserve value; monotonicity extends to the
// reserve (a larger reserve never allows more seeds or steps).
func (g *governor) planWith(reqs []shedRequest, dst []shedLevel, reserve time.Duration) (predicted time.Duration, shed bool) {
	var total int64
	for _, r := range reqs {
		total += r.Units
	}
	predicted = g.predict(total)
	full := func() {
		for i, r := range reqs {
			dst[i] = shedLevel{Seeds: r.Seeds, Steps: r.Steps}
		}
	}
	budget := g.effectiveBudget() - reserve
	if budget < 0 {
		budget = 0
	}
	if !g.enabled() || !g.calibrated() || predicted <= budget {
		full()
		return predicted, false
	}

	// Units the budget affords at the current rate, minus the work we
	// cannot shed (streakline state advances and per-rake floors).
	allowed := float64(budget.Nanoseconds()) / g.unitNanos
	var fixed float64
	var heldFull, freeFull float64
	for _, r := range reqs {
		if r.Fixed {
			fixed += float64(r.Units)
			continue
		}
		if r.Held {
			heldFull += float64(r.Units)
		} else {
			freeFull += float64(r.Units)
		}
	}
	remaining := allowed - fixed
	if remaining < 0 {
		remaining = 0
	}

	// Free rakes absorb the deficit first; held rakes only degrade
	// once the free class is already at its floor.
	fracFor := func(classFull, classAllowed float64) float64 {
		if classFull <= 0 {
			return 1
		}
		f := classAllowed / classFull
		if f > 1 {
			f = 1
		}
		if f < 0 {
			f = 0
		}
		return f
	}
	var fHeld, fFree float64
	if remaining >= heldFull {
		fHeld = 1
		fFree = fracFor(freeFull, remaining-heldFull)
	} else {
		fFree = 0
		fHeld = fracFor(heldFull, remaining)
	}

	for i, r := range reqs {
		if r.Fixed {
			dst[i] = shedLevel{Seeds: r.Seeds, Steps: r.Steps}
			continue
		}
		f := fFree
		if r.Held {
			f = fHeld
		}
		dst[i] = shedOne(r.Seeds, r.Steps, f)
		if dst[i] != (shedLevel{Seeds: r.Seeds, Steps: r.Steps}) {
			shed = true
		}
	}
	return predicted, shed
}

// shedOne clamps one rake to fraction f of its full work: steps shed
// first down to the step floor, then seeds down to one.
func shedOne(seeds, steps int, f float64) shedLevel {
	floor := minShedSteps
	if steps < floor {
		floor = steps
	}
	target := f * float64(steps)
	if int(target) >= floor {
		s := int(target)
		if s > steps {
			s = steps
		}
		return shedLevel{Seeds: seeds, Steps: s}
	}
	// Steps are at the floor; shed seeds to hold the same unit target.
	lv := shedLevel{Steps: floor}
	lv.Seeds = int(float64(seeds) * target / float64(floor))
	if lv.Seeds < 1 {
		lv.Seeds = 1
	}
	if lv.Seeds > seeds {
		lv.Seeds = seeds
	}
	return lv
}

// engineFor picks the integration engine for a shed batch by shape,
// mirroring §5.3's scalar-vs-vector trade: small batches stay on the
// per-seed parallel engine, mid-size batches fill the SoA vector unit,
// and large batches run the hybrid (groups x vector) decomposition.
func (g *governor) engineFor(seeds int) compute.Engine {
	switch {
	case seeds < 32:
		return g.parallel
	case seeds < 128:
		return g.vector
	default:
		return g.hybrid
	}
}

// degradedByte encodes the frame's fidelity for the wire: 0 at full
// fidelity, else 1..255 scaling with the fraction of resident work
// shed. actual and full are unit sums over every rake served this
// frame (memoized shed geometry counts — a frame serving clamped
// geometry is degraded even if it recomputed nothing).
func degradedByte(actual, full int64) uint8 {
	if full <= 0 || actual >= full {
		return 0
	}
	frac := 1 - float64(actual)/float64(full)
	b := 1 + int(frac*254)
	if b > 255 {
		b = 255
	}
	return uint8(b)
}
