package server

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dlib"
	"repro/internal/integrate"
	"repro/internal/netsim"
	"repro/internal/store"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// testDiskStore writes the standard test dataset to a temp directory
// and opens it as an I/O-backed store.
func testDiskStore(t testing.TB, numSteps int, opts store.DiskOptions) *store.Disk {
	t.Helper()
	dir := t.TempDir()
	mem := testDataset(t, numSteps)
	if err := store.WriteDataset(dir, mem.Unsteady()); err != nil {
		t.Fatal(err)
	}
	d, err := store.OpenDisk(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestLoadEncodeOnceFanOut is the scale-out acceptance: a fleet of
// simulated workstations at the paper's 10 frames/second must show
// frames-encoded per round independent of the session count — adding
// workstations adds ships, not encodes.
func TestLoadEncodeOnceFanOut(t *testing.T) {
	if testing.Short() {
		t.Skip("paced load run")
	}
	const frames = 5
	run := func(sessions int) LoadReport {
		s, err := New(Config{Store: testDataset(t, 4)})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Dlib().Close()
		rep, err := RunLoad(s, LoadOptions{
			Sessions:  sessions,
			Frames:    frames,
			FrameRate: 10,
		})
		if err != nil {
			t.Fatalf("%d sessions: %v", sessions, err)
		}
		t.Logf("%v", rep)
		return rep
	}
	small := run(8)
	big := run(64)
	for _, rep := range []LoadReport{small, big} {
		if rep.Errors != 0 {
			t.Fatalf("load errors: %+v", rep)
		}
		if want := int64(rep.Sessions * frames); rep.FramesShipped != want {
			t.Errorf("%d sessions shipped %d frames, want %d",
				rep.Sessions, rep.FramesShipped, want)
		}
		// Encodes track rounds (waves of the paced fleet), not calls:
		// with every session calling each period, at most ~one encode
		// per period plus scheduling slack — far below sessions*frames.
		if rep.FramesEncoded > 2*frames+2 {
			t.Errorf("%d sessions encoded %d rounds for %d paced periods",
				rep.Sessions, rep.FramesEncoded, frames)
		}
	}
	// The independence claim itself: 8x the fleet must not mean more
	// encodes per round. Ships scale, encodes do not.
	if big.FramesEncoded > 2*small.FramesEncoded+4 {
		t.Errorf("encodes scaled with sessions: %d sessions -> %d encodes, %d sessions -> %d encodes",
			small.Sessions, small.FramesEncoded, big.Sessions, big.FramesEncoded)
	}
	if big.FanOut() < float64(big.Sessions)/2 {
		t.Errorf("fan-out %.1fx for %d sessions", big.FanOut(), big.Sessions)
	}
	if big.Latency.P50 <= 0 || big.Latency.Max < big.Latency.P99 ||
		big.Latency.P99 < big.Latency.P50 {
		t.Errorf("latency percentiles inconsistent: %+v", big.Latency)
	}
}

// TestLoadCodecV2BytesPerFrame is the Wire 2.0 acceptance: on the
// steady scenario (scene holds still; the active user's hand motion
// forces a re-encode every round) a 64-session fleet speaking codec v2
// must report bytes/frame at least 4x below the same fleet on v1 —
// unchanged rakes ship as references, not re-sent geometry.
func TestLoadCodecV2BytesPerFrame(t *testing.T) {
	const sessions, frames = 64, 5
	run := func(codec uint8) LoadReport {
		s, err := New(Config{Store: testDataset(t, 4)})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Dlib().Close()
		rep, err := RunLoad(s, LoadOptions{
			Sessions: sessions,
			Frames:   frames,
			Codec:    codec,
		})
		if err != nil {
			t.Fatalf("codec %d: %v", codec, err)
		}
		t.Logf("%v", rep)
		if rep.Errors != 0 {
			t.Fatalf("codec %d: load errors: %+v", codec, rep)
		}
		if want := int64(sessions * frames); rep.FramesShipped != want {
			t.Fatalf("codec %d: shipped %d frames, want %d", codec, rep.FramesShipped, want)
		}
		return rep
	}
	v1 := run(wire.CodecV1)
	v2 := run(wire.CodecV2)
	if v2.BytesPerFrame() <= 0 {
		t.Fatalf("v2 bytes/frame not reported: %+v", v2)
	}
	if ratio := v1.BytesPerFrame() / v2.BytesPerFrame(); ratio < 4 {
		t.Errorf("codec v2 bytes/frame %.0f vs v1 %.0f: %.1fx reduction, want >= 4x",
			v2.BytesPerFrame(), v1.BytesPerFrame(), ratio)
	}
}

// TestLoadCacheHitRate is the store acceptance: a figure-8 unsteady
// replay (looping playback over an I/O-backed dataset) against a cache
// with capacity >= the loop must serve >= 90% of timestep loads from
// memory.
func TestLoadCacheHitRate(t *testing.T) {
	const steps = 6
	s, err := New(Config{
		Store:      testDiskStore(t, steps, store.DiskOptions{}),
		Prefetch:   true,
		CacheSteps: steps,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Dlib().Close()
	rep, err := RunLoad(s, LoadOptions{
		Sessions: 2,
		Frames:   100,
		Play:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HasCache {
		t.Fatal("no cache stats in report")
	}
	t.Logf("cache: %+v hit rate %.2f", rep.Cache, rep.Cache.HitRate())
	if rep.Cache.Evictions != 0 {
		t.Errorf("evictions with capacity == loop length: %+v", rep.Cache)
	}
	if got := rep.Cache.HitRate(); got < 0.9 {
		t.Errorf("hit rate %.2f, want >= 0.90", got)
	}
}

// TestLoadCacheEvictionRegime pins the tight-budget regime: capacity 2
// over a longer loop still serves every frame correctly, evicting and
// re-reading as playback cycles.
func TestLoadCacheEvictionRegime(t *testing.T) {
	const steps = 5
	s, err := New(Config{
		Store:      testDiskStore(t, steps, store.DiskOptions{}),
		CacheSteps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Dlib().Close()
	rep, err := RunLoad(s, LoadOptions{
		Sessions: 2,
		Frames:   3 * steps,
		Play:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors under eviction churn: %+v", rep)
	}
	if rep.Cache.Evictions == 0 {
		t.Errorf("no evictions with capacity 2 over a %d-step loop: %+v", steps, rep.Cache)
	}
	if rep.Cache.ResidentSteps > 2 {
		t.Errorf("resident %d exceeds budget 2", rep.Cache.ResidentSteps)
	}
}

// TestLoadDefaultsAndLink smoke-tests the defaulted configuration and
// a bandwidth-shaped link end to end.
func TestLoadDefaultsAndLink(t *testing.T) {
	s, err := New(Config{Store: testDataset(t, 3)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Dlib().Close()
	rep, err := RunLoad(s, LoadOptions{
		Sessions: 3,
		Frames:   4,
		Link:     netsim.Link{BandwidthBytesPerSec: 20 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 3 || rep.Frames != 4 {
		t.Fatalf("report dims: %+v", rep)
	}
	if rep.FramesShipped != 12 || rep.Errors != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.HasCache {
		t.Error("memory store grew a cache")
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

// TestConcurrentSessionsRakeLocksAndEviction is the -race regression
// for the fan-out + cache combination: >= 8 concurrent sessions
// grabbing, moving, and releasing FCFS rake locks every frame while
// looping playback churns a capacity-2 cache underneath.
func TestConcurrentSessionsRakeLocksAndEviction(t *testing.T) {
	s, err := New(Config{
		Store:       testDiskStore(t, 4, store.DiskOptions{}),
		CacheSteps:  2,
		RakeWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Dlib().Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Dlib().Serve(ln)
	addr := ln.Addr().String()

	// One session builds the scene: a rake per pair of contenders plus
	// looping playback so cache eviction runs under the contention.
	c0, err := dlib.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	setup := wire.ClientUpdate{Commands: []wire.Command{
		addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 6, 4), 2, integrate.ToolStreamline),
		addRakeCmd(vmath.V3(1, 7, 4), vmath.V3(1, 9, 4), 2, integrate.ToolStreamline),
		addRakeCmd(vmath.V3(1, 10, 4), vmath.V3(1, 12, 4), 2, integrate.ToolStreamline),
		addRakeCmd(vmath.V3(1, 12, 4), vmath.V3(1, 14, 4), 2, integrate.ToolStreamline),
		{Kind: wire.CmdSetLoop, Flag: 1},
		{Kind: wire.CmdSetSpeed, Value: 1},
		{Kind: wire.CmdSetPlaying, Flag: 1},
	}}
	r := frame(t, c0, setup)
	if len(r.Rakes) != 4 {
		t.Fatalf("setup rakes = %d", len(r.Rakes))
	}
	rakeIDs := make([]int32, len(r.Rakes))
	for i, rk := range r.Rakes {
		rakeIDs[i] = rk.ID
	}

	const sessions = 8
	const frames = 12
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := dlib.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			rake := rakeIDs[g%len(rakeIDs)]
			for f := 0; f < frames; f++ {
				var cmds []wire.Command
				switch f % 3 {
				case 0:
					cmds = []wire.Command{{Kind: wire.CmdGrab, Rake: rake,
						Grab: uint8(integrate.GrabCenter)}}
				case 1:
					cmds = []wire.Command{{Kind: wire.CmdMove, Rake: rake,
						Pos: vmath.V3(2+float32(g)*0.1, 8+float32(f)*0.1, 4)}}
				default:
					cmds = []wire.Command{{Kind: wire.CmdRelease, Rake: rake}}
				}
				u := wire.ClientUpdate{
					Hand:     vmath.V3(float32(g), float32(f), 0),
					Commands: cmds,
				}
				out, err := c.Call(wire.ProcFrame, wire.EncodeClientUpdate(u))
				if err != nil {
					t.Errorf("session %d frame %d: %v", g, f, err)
					return
				}
				if _, err := wire.DecodeFrameReply(out); err != nil {
					t.Errorf("session %d frame %d decode: %v", g, f, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// The environment survived the contention: every rake is still
	// present and grabbable, and the cache stayed within budget.
	r = frame(t, c0, wire.ClientUpdate{})
	if len(r.Rakes) != 4 {
		t.Errorf("rakes after churn = %d, want 4", len(r.Rakes))
	}
	if cs, ok := s.CacheStats(); !ok || cs.ResidentSteps > 2 {
		t.Errorf("cache state after churn: %+v ok=%v", cs, ok)
	}
	if st := s.Stats(); st.FramesShipped < sessions*frames {
		t.Errorf("shipped %d < %d calls", st.FramesShipped, sessions*frames)
	}
}

// TestLoadRelayFanOut is the cluster-tier acceptance: a 256-workstation
// fleet attached through 4 leaf relay/cache nodes must still show
// origin encodes per round independent of the fleet size — the origin
// ships each round once per relay (a handful of full payloads), the
// leaves re-fan it to their 64 local workstations each.
func TestLoadRelayFanOut(t *testing.T) {
	if testing.Short() {
		t.Skip("paced load run")
	}
	const sessions, frames, relays = 256, 5, 4
	s, err := New(Config{Store: testDataset(t, 4)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Dlib().Close()
	rep, err := RunLoad(s, LoadOptions{
		Sessions:  sessions,
		Frames:    frames,
		FrameRate: 10,
		Relays:    relays,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%v", rep)
	if rep.Errors != 0 || rep.DroppedSamples != 0 {
		t.Fatalf("relay run not clean: errors=%d dropped=%d", rep.Errors, rep.DroppedSamples)
	}
	if len(rep.Tiers) != 1 || rep.Tiers[0].Name != "leaf" || rep.Tiers[0].Nodes != relays {
		t.Fatalf("tier accounting: %+v", rep.Tiers)
	}
	leaf := rep.Tiers[0]
	if want := int64(sessions * frames); leaf.DownFrames != want {
		t.Errorf("leaf tier delivered %d frames, want %d", leaf.DownFrames, want)
	}
	// Every delivery came off the leaf caches: the origin served no
	// per-session frames at all, only relay rounds.
	if rep.FramesShipped != 0 {
		t.Errorf("origin shipped %d per-session frames through the relay tier", rep.FramesShipped)
	}
	// The encode-once claim at 256 sessions: encodes track paced
	// rounds, not workstations (same bound as the direct-connect test).
	if rep.FramesEncoded > 2*frames+2 {
		t.Errorf("origin encoded %d rounds for %d paced periods at %d sessions",
			rep.FramesEncoded, frames, sessions)
	}
	// Each round crosses each leaf's upstream link at most once (the
	// +1 is the scene round computed before the stats window opened;
	// every leaf's first fetch pulls it as a full).
	if rep.OriginRelayFulls > int64(relays)*(rep.Rounds+1) {
		t.Errorf("origin fulls %d exceed relays(%d) x rounds(%d)+1",
			rep.OriginRelayFulls, relays, rep.Rounds)
	}
	if amp := leaf.Amplification(); amp < float64(sessions)/16 {
		t.Errorf("leaf amplification %.1fx for %d sessions over %d relays", amp, sessions, relays)
	}
	if rep.FanOut() < float64(sessions)/2 {
		t.Errorf("fan-out %.1fx for %d sessions", rep.FanOut(), sessions)
	}
	if leaf.HitRate() <= 0 {
		t.Errorf("leaf cache hit rate %.2f", leaf.HitRate())
	}
}

// TestLoadRelayTwoHops runs the deep topology on codec v2: leaves
// funnel through one mid aggregation relay, so full round payloads
// cross the origin's link about once per round no matter how many
// leaves fan in below.
func TestLoadRelayTwoHops(t *testing.T) {
	const sessions, frames, relays = 48, 4, 3
	s, err := New(Config{Store: testDataset(t, 4)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Dlib().Close()
	rep, err := RunLoad(s, LoadOptions{
		Sessions:  sessions,
		Frames:    frames,
		Relays:    relays,
		RelayHops: 2,
		Codec:     wire.CodecV2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%v", rep)
	if rep.Errors != 0 {
		t.Fatalf("two-hop v2 run errors: %d", rep.Errors)
	}
	if len(rep.Tiers) != 2 || rep.Tiers[1].Name != "mid" || rep.Tiers[1].Nodes != 1 {
		t.Fatalf("tier accounting: %+v", rep.Tiers)
	}
	if want := int64(sessions * frames); rep.Tiers[0].DownFrames != want {
		t.Errorf("leaf tier delivered %d frames, want %d", rep.Tiers[0].DownFrames, want)
	}
	// Only the mid relay talks to the origin: origin-side fulls are
	// bounded by rounds, not by the leaf count. The +1 is the scene
	// round computed before the report's stats window opened — the
	// fleet's first fetch pulls it as a full.
	if rep.OriginRelayFulls > rep.Rounds+1 {
		t.Errorf("origin fulls %d exceed rounds %d through the mid relay",
			rep.OriginRelayFulls, rep.Rounds)
	}
	// The mid tier absorbs the leaf fan-in: leaves fetched from it,
	// not the origin.
	if rep.Tiers[1].DownFrames != rep.Tiers[0].UpFulls+rep.Tiers[0].UpMarkers {
		t.Errorf("mid served %d frames, leaves fetched %d",
			rep.Tiers[1].DownFrames, rep.Tiers[0].UpFulls+rep.Tiers[0].UpMarkers)
	}
}

// TestLoadDroppedSampleAccounting is the regression for the silent
// latency-sample truncation: sessions that die partway used to vanish
// from the report's percentile ranking with no trace. Two of eight
// workstations are reset deterministically after their first frame;
// the report must count every lost sample, and MaxDroppedFrac decides
// whether the run fails.
func TestLoadDroppedSampleAccounting(t *testing.T) {
	const sessions, frames = 8, 10
	// The reset fires on the session's very first op, so each faulted
	// session drops exactly its full quota of samples — independent of
	// how many reads/writes one RPC costs.
	faulty := func(i int) *netsim.FaultPlan {
		if i >= 2 {
			return nil
		}
		return &netsim.FaultPlan{Faults: []netsim.Fault{{Kind: netsim.FaultReset, AtOp: 1}}}
	}
	run := func(maxFrac float64) (LoadReport, error) {
		s, err := New(Config{Store: testDataset(t, 3)})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Dlib().Close()
		return RunLoad(s, LoadOptions{
			Sessions:       sessions,
			Frames:         frames,
			Codec:          wire.CodecV1,
			SessionFault:   faulty,
			MaxDroppedFrac: maxFrac,
		})
	}

	// Each faulted session loses its whole quota.
	const wantDropped = 2 * frames

	// Legacy threshold (0): the failure propagates — but the drops are
	// now counted instead of silently truncated.
	rep, err := run(0)
	if err == nil {
		t.Fatal("run with dead sessions and MaxDroppedFrac=0 returned nil error")
	}
	if rep.DroppedSamples != wantDropped {
		t.Errorf("dropped %d samples, want %d", rep.DroppedSamples, wantDropped)
	}
	if rep.Errors != 2 {
		t.Errorf("errors = %d, want 2", rep.Errors)
	}
	if rep.Latency.P50 <= 0 {
		t.Errorf("surviving sessions' percentiles missing: %+v", rep.Latency)
	}

	// A tolerant threshold turns the same run into a clean report.
	rep, err = run(0.5)
	if err != nil {
		t.Fatalf("run with 25%% drops and 50%% tolerance failed: %v", err)
	}
	if rep.DroppedSamples != wantDropped {
		t.Errorf("tolerated run dropped %d samples, want %d", rep.DroppedSamples, wantDropped)
	}

	// A threshold below the observed fraction still fails, loudly.
	if _, err = run(0.1); err == nil {
		t.Fatal("run with 25%% drops and 10%% tolerance returned nil error")
	} else if !strings.Contains(err.Error(), "tolerated") {
		t.Errorf("threshold error does not name the tolerance: %v", err)
	}
}

// quantile edge cases.
func TestQuantile(t *testing.T) {
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	one := []time.Duration{7}
	if got := quantile(one, 0.99); got != 7 {
		t.Errorf("singleton p99 = %v", got)
	}
	four := []time.Duration{1, 2, 3, 4}
	if got := quantile(four, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := quantile(four, 1); got != 4 {
		t.Errorf("p100 = %v", got)
	}
}

// TestLoadToolMix drives the shared-tool load mix: all three tools
// enabled at setup, workstation 0 churning the iso level and plane
// position while the fleet fans out. The report must show tool
// computes, memo reuse across the fleet's frames, and real geometry
// points; the run must stay clean.
func TestLoadToolMix(t *testing.T) {
	const sessions, frames = 8, 6
	s, err := New(Config{Store: toolDataset(t, 4)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Dlib().Close()
	// No playback: the step stays put, so workstation 0's iso/plane
	// churn forces recomputes in which the untouched vortex tool must
	// memo-hit — the reuse half of the tool cost model.
	rep, err := RunLoad(s, LoadOptions{
		Sessions:   sessions,
		Frames:     frames,
		ToolsEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%v", rep)
	if rep.Errors != 0 || rep.DroppedSamples != 0 {
		t.Fatalf("tool-mix run not clean: errors=%d dropped=%d", rep.Errors, rep.DroppedSamples)
	}
	if rep.ToolsComputed == 0 {
		t.Error("no tool geometry computed under the tool mix")
	}
	if rep.ToolPoints == 0 {
		t.Error("tool computes produced no geometry points")
	}
	// The memo must carry tool geometry across the fleet: a fleet of 8
	// holding rounds stable reuses far more often than it computes.
	if rep.ToolsReused == 0 {
		t.Error("no tool memo reuse across the fleet")
	}
	if !strings.Contains(rep.String(), "tools computed=") {
		t.Errorf("report does not surface tool stats: %s", rep)
	}
}

// TestLoadToolMixRelay runs the tool mix through a relay tier on
// codec v2: tool segments must survive the relay cache (negative
// directory keys) with a clean run and geometry still flowing.
func TestLoadToolMixRelay(t *testing.T) {
	const sessions, frames = 12, 5
	s, err := New(Config{Store: toolDataset(t, 4)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Dlib().Close()
	rep, err := RunLoad(s, LoadOptions{
		Sessions:   sessions,
		Frames:     frames,
		Play:       true,
		ToolsEvery: 2,
		Relays:     2,
		Codec:      wire.CodecV2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%v", rep)
	if rep.Errors != 0 {
		t.Fatalf("relayed tool-mix run errors: %d", rep.Errors)
	}
	if rep.ToolsComputed == 0 || rep.ToolPoints == 0 {
		t.Errorf("relayed tool mix computed=%d points=%d, want both > 0",
			rep.ToolsComputed, rep.ToolPoints)
	}
}
