package server

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/integrate"
	"repro/internal/netsim"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// v2Session is a directSession that negotiated codec v2 at hello and
// decodes frames through a stateful delta decoder, exactly as a v2
// workstation would.
type v2Session struct {
	*directSession
	codec uint8
	info  wire.DatasetInfo
	dec   *wire.FrameDecoder
}

func newV2Session(t *testing.T, s *Server, id int64) *v2Session {
	t.Helper()
	d := newDirectSession(t, s, id)
	out, err := s.handleHello2(d.ctx, wire.EncodeHelloRequest(wire.CodecV2))
	if err != nil {
		t.Fatal(err)
	}
	codec, info, err := wire.DecodeHelloReply(out)
	if err != nil {
		t.Fatal(err)
	}
	return &v2Session{
		directSession: d,
		codec:         codec,
		info:          info,
		dec:           wire.NewFrameDecoder(info.Quantizer()),
	}
}

// frame exchanges one round and decodes the reply with the session's
// delta decoder (shadowing directSession's v1 decode).
func (v *v2Session) frame(u wire.ClientUpdate) wire.FrameReply {
	v.t.Helper()
	r, err := v.dec.Decode(v.rawFrame(u))
	if err != nil {
		v.t.Fatal(err)
	}
	return r
}

func steadyCommands() []wire.Command {
	return []wire.Command{
		addRakeCmd(vmath.V3(1, 3, 4), vmath.V3(1, 5, 4), 16, integrate.ToolStreamline),
		addRakeCmd(vmath.V3(1, 8, 4), vmath.V3(1, 10, 4), 16, integrate.ToolStreamline),
	}
}

// TestHello2Negotiation pins the negotiation rules: the server grants
// min(request, MaxCodec), never more, and the reply carries the same
// dataset info as the legacy hello.
func TestHello2Negotiation(t *testing.T) {
	s, err := New(Config{Store: testDataset(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	v2 := newV2Session(t, s, 1)
	if v2.codec != wire.CodecV2 {
		t.Fatalf("default server negotiated codec %d, want %d", v2.codec, wire.CodecV2)
	}
	if v2.info != s.datasetInfo() {
		t.Fatalf("hello2 info %+v != hello info %+v", v2.info, s.datasetInfo())
	}

	capped, err := New(Config{Store: testDataset(t, 2), MaxCodec: wire.CodecV1})
	if err != nil {
		t.Fatal(err)
	}
	d := newDirectSession(t, capped, 1)
	out, err := capped.handleHello2(d.ctx, wire.EncodeHelloRequest(wire.CodecV2))
	if err != nil {
		t.Fatal(err)
	}
	codec, _, err := wire.DecodeHelloReply(out)
	if err != nil {
		t.Fatal(err)
	}
	if codec != wire.CodecV1 {
		t.Fatalf("MaxCodec=1 server negotiated codec %d, want %d", codec, wire.CodecV1)
	}
	// A v1-capped session must be served by the v1 encoder.
	raw := d.rawFrame(wire.ClientUpdate{Commands: steadyCommands()})
	if _, err := wire.DecodeFrameReply(raw); err != nil {
		t.Fatalf("capped session frame is not v1: %v", err)
	}
}

// TestV2FrameMatchesV1Quantized runs a v1 and a v2 session against the
// same server and checks the v2 decode is exactly the v1 state with
// every geometry point pushed through the quantizer — same meta, same
// rakes and users, error bounded by half a quantization step.
func TestV2FrameMatchesV1Quantized(t *testing.T) {
	s, err := New(Config{Store: testDataset(t, 2), Clock: netsim.NewManualClock()})
	if err != nil {
		t.Fatal(err)
	}
	d1 := newDirectSession(t, s, 1)
	d2 := newV2Session(t, s, 2)
	q := d2.info.Quantizer()

	r1 := d1.frame(wire.ClientUpdate{Head: vmath.Identity(), Commands: steadyCommands()})
	r2 := d2.frame(wire.ClientUpdate{Head: vmath.Identity()})

	if r1.Round != r2.Round {
		t.Fatalf("rounds diverge: v1 %d, v2 %d", r1.Round, r2.Round)
	}
	if r1.Time != r2.Time || r1.Degraded != r2.Degraded {
		t.Fatalf("meta diverges: v1 %+v/%d, v2 %+v/%d", r1.Time, r1.Degraded, r2.Time, r2.Degraded)
	}
	if len(r1.Rakes) != len(r2.Rakes) || len(r1.Users) != len(r2.Users) {
		t.Fatalf("entity counts diverge")
	}
	if len(r2.Geometry) != len(r1.Geometry) || len(r1.Geometry) == 0 {
		t.Fatalf("geometry counts diverge: v1 %d, v2 %d", len(r1.Geometry), len(r2.Geometry))
	}
	maxErr := q.MaxError()
	for i, g1 := range r1.Geometry {
		g2 := r2.Geometry[i]
		if g1.Rake != g2.Rake || g1.Tool != g2.Tool || len(g1.Lines) != len(g2.Lines) {
			t.Fatalf("geometry %d shape diverges", i)
		}
		for li, line := range g1.Lines {
			for pi, p := range line {
				got := g2.Lines[li][pi]
				want := q.RoundTrip(p)
				if got != want {
					t.Fatalf("geom %d line %d pt %d: got %v, want round-trip %v", i, li, pi, got, want)
				}
				d := got.Sub(p)
				if abs32(d.X) > maxErr.X+1e-6 || abs32(d.Y) > maxErr.Y+1e-6 || abs32(d.Z) > maxErr.Z+1e-6 {
					t.Fatalf("geom %d line %d pt %d: error %v exceeds bound %v", i, li, pi, d, maxErr)
				}
			}
		}
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// TestV1BytesUnaffectedByV2Sessions is the cross-version guarantee: a
// v1 session's frames are byte-identical whether its neighbour speaks
// v1 or v2. Two servers run the same script; only the neighbour's
// codec differs.
func TestV1BytesUnaffectedByV2Sessions(t *testing.T) {
	script := []wire.ClientUpdate{
		{Head: vmath.Identity(), Commands: steadyCommands()},
		{Head: vmath.Identity()},
		{Head: vmath.Identity(), Commands: []wire.Command{{Kind: wire.CmdGrab, Rake: 1, Grab: 1}}},
		{Head: vmath.Identity(), Commands: []wire.Command{{Kind: wire.CmdMove, Rake: 1, Pos: vmath.V3(2, 4, 4)}}},
		{Head: vmath.Identity()},
	}
	run := func(v2Neighbour bool) [][]byte {
		s, err := New(Config{Store: testDataset(t, 2), Clock: netsim.NewManualClock()})
		if err != nil {
			t.Fatal(err)
		}
		d1 := newDirectSession(t, s, 1)
		var neighbour *directSession
		if v2Neighbour {
			neighbour = newV2Session(t, s, 2).directSession
		} else {
			neighbour = newDirectSession(t, s, 2)
		}
		var frames [][]byte
		for _, u := range script {
			frames = append(frames, d1.rawFrame(u))
			neighbour.rawFrame(wire.ClientUpdate{Head: vmath.Identity()})
		}
		return frames
	}
	plain := run(false)
	mixed := run(true)
	for i := range plain {
		if !bytes.Equal(plain[i], mixed[i]) {
			t.Fatalf("frame %d: v1 bytes change when a v2 session joins (%d vs %d bytes)",
				i, len(plain[i]), len(mixed[i]))
		}
	}
}

// TestV2SteadyFramesAreRefFrames: once the scene holds still, a v2
// session's frames reference every rake instead of re-sending it and
// collapse to a small fraction of the v1 encoding.
func TestV2SteadyFramesAreRefFrames(t *testing.T) {
	s, err := New(Config{Store: testDataset(t, 2), Clock: netsim.NewManualClock()})
	if err != nil {
		t.Fatal(err)
	}
	d1 := newDirectSession(t, s, 1)
	d2 := newV2Session(t, s, 2)

	d1.frame(wire.ClientUpdate{Head: vmath.Identity(), Commands: steadyCommands()})
	key := d2.rawFrame(wire.ClientUpdate{Head: vmath.Identity()})
	keyFrame, err := d2.dec.Decode(key)
	if err != nil {
		t.Fatal(err)
	}
	if keyFrame.TotalPoints() == 0 {
		t.Fatal("keyframe carries no geometry")
	}
	v1Size := len(d1.rawFrame(wire.ClientUpdate{Head: vmath.Identity()}))

	for i := 0; i < 3; i++ {
		ref := d2.rawFrame(wire.ClientUpdate{Head: vmath.Identity()})
		refFrame, err := d2.dec.Decode(ref)
		if err != nil {
			t.Fatal(err)
		}
		if refFrame.TotalPoints() != keyFrame.TotalPoints() {
			t.Fatalf("ref frame %d: %d points, want %d", i, refFrame.TotalPoints(), keyFrame.TotalPoints())
		}
		if len(ref)*4 > v1Size {
			t.Fatalf("steady v2 frame is %dB, not <1/4 of the %dB v1 frame", len(ref), v1Size)
		}
	}
	st := s.Stats()
	if st.V2RakesRef == 0 || st.V2Frames == 0 {
		t.Fatalf("stats did not count v2 traffic: %+v", st)
	}
}

// TestV2GrabMoveForcesInlineResend: grabbing a rake and dragging it
// bumps its version, so the next v2 frame re-sends that rake inline —
// the keyframe burst the golden corpus pins. The untouched neighbour
// rake stays a reference.
func TestV2GrabMoveForcesInlineResend(t *testing.T) {
	s, err := New(Config{Store: testDataset(t, 2), Clock: netsim.NewManualClock()})
	if err != nil {
		t.Fatal(err)
	}
	d2 := newV2Session(t, s, 2)
	d2.frame(wire.ClientUpdate{Head: vmath.Identity(), Commands: steadyCommands()})
	d2.frame(wire.ClientUpdate{Head: vmath.Identity()}) // all-ref steady frame
	before := s.Stats()
	d2.frame(wire.ClientUpdate{Head: vmath.Identity(), Commands: []wire.Command{
		{Kind: wire.CmdGrab, Rake: 1, Grab: 1},
		{Kind: wire.CmdMove, Rake: 1, Pos: vmath.V3(2, 4, 4)},
	}})
	after := s.Stats()
	if after.V2RakesInline != before.V2RakesInline+1 {
		t.Fatalf("grab+move inline resends %d -> %d, want exactly one more",
			before.V2RakesInline, after.V2RakesInline)
	}
	if after.V2RakesRef != before.V2RakesRef+1 {
		t.Fatalf("untouched rake not referenced: refs %d -> %d",
			before.V2RakesRef, after.V2RakesRef)
	}
}

// TestV2BytesDeterministicAcrossServers replays one script — including
// governor-shed degraded rounds — against two freshly built servers
// and demands byte-identical v2 frames per (client, round).
func TestV2BytesDeterministicAcrossServers(t *testing.T) {
	run := func() [][]byte {
		s, err := New(Config{
			Store:  testDataset(t, 4),
			Budget: 5 * time.Millisecond,
			Clock:  netsim.NewManualClock(),
		})
		if err != nil {
			t.Fatal(err)
		}
		// Price integration expensively so the governor sheds and the
		// degraded byte exercises the v2 meta path. The ManualClock
		// freezes the EWMA, so this rate holds for the whole run.
		s.gov.unitNanos = 50000
		d := newV2Session(t, s, 1)
		var frames [][]byte
		frames = append(frames, d.rawFrame(wire.ClientUpdate{Head: vmath.Identity(), Commands: []wire.Command{
			addRakeCmd(vmath.V3(1, 3, 4), vmath.V3(1, 5, 4), 32, integrate.ToolStreamline),
			addRakeCmd(vmath.V3(1, 6, 4), vmath.V3(1, 8, 4), 32, integrate.ToolStreamline),
			{Kind: wire.CmdSetLoop, Flag: 1},
			{Kind: wire.CmdSetSpeed, Value: 1},
			{Kind: wire.CmdSetPlaying, Flag: 1},
		}}))
		for i := 0; i < 6; i++ {
			frames = append(frames, d.rawFrame(wire.ClientUpdate{Head: vmath.Identity()}))
		}
		return frames
	}
	a, b := run(), run()
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("round %d: v2 bytes diverge across identical servers (%d vs %d bytes)",
				i, len(a[i]), len(b[i]))
		}
	}
	// Confirm the script actually produced at least one degraded round,
	// so determinism-under-shed was really exercised.
	d := wire.NewFrameDecoder(quantizerOf(t))
	degraded := false
	for _, raw := range a {
		r, err := d.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		if r.Degraded > 0 {
			degraded = true
		}
	}
	if !degraded {
		t.Fatal("script produced no degraded rounds; determinism-under-shed untested")
	}
}

// quantizerOf rebuilds the quantizer the test servers negotiate (the
// testDataset grid bounds).
func quantizerOf(t *testing.T) wire.Quantizer {
	t.Helper()
	s, err := New(Config{Store: testDataset(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	return s.datasetInfo().Quantizer()
}
