package server

// The compute layer: timestep loading, dirty-rake planning under the
// frame-budget governor, streamline/path/streak integration on the
// bounded worker pool, and the encode of the shared round buffer. It
// is driven only through recomputeLocked and knows nothing about
// sessions, codecs, or relays — the session layer (session.go) decides
// when a round advances and how its bytes reach each consumer.

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/compute"
	"repro/internal/env"
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// rakeGeom memoizes one rake's geometry and the inputs it was computed
// from. Streamlines and particle paths are pure functions of (rake
// version, timestep, time), so matching inputs mean the cached
// wire.Geometry is the answer; streaklines always advance and are
// never memoized. The line buffers are recycled on recompute.
type rakeGeom struct {
	haveGeo bool
	version uint64  // rake mutation counter at compute time
	step    int     // timestep the field came from
	timeKey float32 // continuous time the integrators saw

	seeds        []vmath.Vec3 // cached SeedsGrid, keyed by seedsVersion
	seedsVersion uint64
	haveSeeds    bool

	geo    wire.Geometry
	points int64  // cached geo.NumPoints()
	touch  uint64 // last round this rake was seen, for sweeping

	// shedSeeds/shedSteps record the fidelity the cached geometry was
	// computed at. A memo hit requires full fidelity; a valid-but-shed
	// entry is an upgrade candidate the governor re-admits when load
	// drops, and its gap feeds the frame's degradation byte.
	shedSeeds int
	shedSteps int

	// seq numbers this rake's geometry content for codec v2: it
	// changes exactly when computeRake rewrites geo, so a session
	// whose shadow holds (rake, seq) can be sent a reference instead
	// of the points. seg caches the encoded v2 segment for the current
	// seq (segSeq tracks which); it is built lazily on the first v2
	// consumer and shared by every session that needs the full rake.
	seq    uint64
	seg    []byte
	segSeq uint64
}

// rakeJob is one dirty rake queued for recomputation, carrying the
// governor's per-rake decision for the round.
type rakeJob struct {
	idx    int // index into geomWire
	snap   env.RakeSnapshot
	gc     *rakeGeom
	streak *integrate.Streak // non-nil for streakline rakes

	// upgrade marks a rake whose memo is valid but was computed at
	// shed fidelity; the planner either re-admits it to full fidelity
	// or sets skip to keep serving the clamped memo.
	upgrade bool
	skip    bool
	// level is the planned fidelity; engine overrides cfg.Engine for
	// shed batches (nil = configured engine).
	level  shedLevel
	engine compute.Engine
	// units is the measured §5.3 work the job actually did, written by
	// computeRake and folded into the governor's EWMA.
	units int64
}

// recomputeLocked advances time, loads the needed timestep, computes
// geometry for every rake whose inputs changed (reusing memoized
// geometry for the rest), and encodes the shared reply into the
// recycled round buffer. Caller holds s.mu.
//
//vw:hotpath
func (s *Server) recomputeLocked() error {
	ts := s.env.AdvanceTime()
	version := s.env.Version()
	step := ts.Step()

	// Whole-frame memo: if nothing observable changed and no
	// streakline needs advancing, the previous round's bytes are this
	// round's bytes — the round buffer is served again (same Round on
	// the wire, so clients can tell the scene held still). This is
	// also what makes identical frames encode byte-identically. A
	// degraded frame is never frozen this way: the round must rerun so
	// the governor can admit upgrades and restore full fidelity.
	if s.fb != nil && version == s.lastVersion &&
		step == s.curStep && len(s.streaks) == 0 && s.lastDegraded == 0 {
		clear(s.consumedBy)
		s.stats.Frames++
		s.stats.FramesReused++
		s.stats.Points += s.lastPoints
		s.stats.ToolPoints += s.lastToolPoints
		s.rec.Observe(obs.FrameSample{
			FrameReused: true,
			RakesReused: len(s.geoCache),
			ToolPoints:  s.lastToolPoints,
			Points:      s.lastPoints,
			Bytes:       int64(len(s.fb.buf)),
		})
		return nil
	}

	// In-situ mode: the requested step must fall in the ring's resident
	// window (behind it the solver's output is recycled; ahead of it
	// the load below drives on-demand production).
	if s.liveRing != nil {
		if c := s.liveRing.Clamp(step); c != step {
			step = c
			s.stats.LiveClamps++
		}
	}

	loadStart := s.clock.Now()
	if s.cur == nil || step != s.curStep {
		f, err := s.loadStep(step)
		if err != nil {
			return fmt.Errorf("server: load step %d: %w", step, err) //vw:allow hotpath -- error path, frame already lost
		}
		if s.liveRing != nil {
			// Pin before unpinning the previous step so the window never
			// momentarily collapses: the pin holds this step AND all later
			// steps resident while particle paths integrate forward from
			// it — the eviction-while-integrating guard.
			s.liveRing.Pin(step)
			if s.livePinned >= 0 {
				s.liveRing.Unpin(s.livePinned)
			}
			s.livePinned = step
		}
		s.cur = f
		s.curStep = step
	}
	loadTime := s.clock.Now().Sub(loadStart)
	if s.liveRing != nil {
		// Backpressure: load waits in live mode are solver compute the
		// frame pipeline stalled on; fold them into the governor's
		// effective budget so integration sheds to make room.
		s.gov.notePressure(loadTime)
	}

	// Overlap: kick off the prefetch of the next step along the
	// playback direction while this frame computes (figure 8's
	// right-hand process). At a non-looping dataset boundary there is
	// no next step — skip rather than asking the prefetcher for an
	// out-of-range load.
	if s.prefetcher != nil {
		next := step + 1
		if ts.Speed < 0 {
			next = step - 1
		}
		if ts.Loop && next >= s.st.NumSteps() {
			next = 0
		}
		if ts.Loop && next < 0 {
			next = s.st.NumSteps() - 1
		}
		if next >= 0 && next < s.st.NumSteps() {
			s.prefetcher.Prefetch(next)
		}
	}

	computeStart := s.clock.Now()
	g := s.st.Grid()
	batch := compute.SteadyBatch{F: s.cur, G: g}
	s.round++

	// Snapshot the shared tools once per round; the planner and the
	// tool pass both read this copy so they cannot disagree.
	s.toolSnap = s.env.Tools()

	s.userScratch = s.env.AppendUsers(s.userScratch[:0])
	s.usersWire = s.usersWire[:0]
	for _, u := range s.userScratch {
		s.usersWire = append(s.usersWire, wire.UserState{
			ID: u.ID, Head: u.Pose.Head, Hand: u.Pose.Hand, Gesture: u.Pose.Gesture,
		})
	}

	// Pass 1 (serial): snapshot rakes, refresh seed caches, and split
	// rakes into memo hits and recompute jobs.
	s.rakeScratch = s.env.AppendRakes(s.rakeScratch[:0])
	s.rakesWire = s.rakesWire[:0]
	s.geomWire = s.geomWire[:0]
	s.geomGC = s.geomGC[:0]
	s.jobs = s.jobs[:0]
	reused := 0
	for _, snap := range s.rakeScratch {
		rake := snap.Rake
		s.rakesWire = append(s.rakesWire, wire.RakeState{
			ID: rake.ID, P0: rake.P0, P1: rake.P1,
			NumSeeds: uint32(rake.NumSeeds),
			Tool:     uint8(rake.Tool),
			Holder:   snap.Holder,
			Grab:     uint8(snap.Grab),
		})
		gc := s.geoCache[rake.ID]
		if gc == nil {
			gc = &rakeGeom{}
			s.geoCache[rake.ID] = gc
		}
		gc.touch = s.round
		if !gc.haveSeeds || gc.seedsVersion != snap.Version {
			gc.seeds = rake.SeedsGrid(g)
			gc.seedsVersion = snap.Version
			gc.haveSeeds = true
		}
		if len(gc.seeds) == 0 {
			continue
		}
		idx := len(s.geomWire)
		s.geomWire = append(s.geomWire, wire.Geometry{})
		s.geomGC = append(s.geomGC, gc)
		memoValid := rake.Tool != integrate.ToolStreakline && gc.haveGeo &&
			gc.version == snap.Version && gc.step == step && gc.timeKey == ts.Current
		if memoValid && gc.shedSeeds == len(gc.seeds) && gc.shedSteps == s.cfg.Options.MaxSteps {
			s.geomWire[idx] = gc.geo
			reused++
			continue
		}
		var streak *integrate.Streak
		if rake.Tool == integrate.ToolStreakline {
			streak = s.streaks[rake.ID]
			if streak == nil {
				streak = integrate.NewStreak(s.cfg.MaxStreakParticles)
				s.streaks[rake.ID] = streak
			}
		}
		// A valid-but-shed memo is an upgrade candidate: the planner
		// either re-admits it to full fidelity or keeps serving the
		// clamped geometry.
		s.jobs = append(s.jobs, rakeJob{idx: idx, snap: snap, gc: gc, streak: streak, upgrade: memoValid})
	}
	if len(s.geoCache) > len(s.rakeScratch) {
		// Rakes removed outside CmdRemoveRake (direct env use): sweep
		// cache entries not seen this round.
		for id, gc := range s.geoCache {
			if gc.touch != s.round {
				delete(s.geoCache, id)
			}
		}
	}

	// Plan: price every job in §5.3 units and decide this round's shed
	// levels before any integration runs.
	predicted := s.planJobsLocked()
	computed := 0
	for i := range s.jobs {
		if s.jobs[i].skip {
			reused++
		} else {
			computed++
		}
	}

	// Pass 2: recompute dirty rakes, concurrently when there are
	// several — independent rakes are the paper's natural parallel
	// unit above the per-seed fan-out inside the engines.
	s.runJobsLocked(batch, g, ts, step)

	// Pass 3 (serial): the shared tools, at the stride the planner
	// chose. Runs inside the measured compute stage so the EWMA learns
	// their cost too.
	toolsCBefore, toolsRBefore := s.stats.ToolsComputed, s.stats.ToolsReused
	toolUnits, toolFullU, toolActualU, toolPoints := s.computeToolsLocked(g, step)
	computeTime := s.clock.Now().Sub(computeStart)

	// Assign codec-v2 geometry sequence numbers in job order: serial,
	// deterministic, and bumped exactly when a rake's geometry was
	// recomputed this round. Delta encoders key their shadows on these.
	// (Tool geometry took its numbers inside computeToolsLocked, in
	// fixed tool order — equally deterministic.)
	for i := range s.jobs {
		if !s.jobs[i].skip {
			s.geoSeq++
			s.jobs[i].gc.seq = s.geoSeq
		}
	}

	// Calibrate the EWMA from what the integrate stage actually cost
	// per unit of work it actually did.
	var jobUnits int64
	for i := range s.jobs {
		if !s.jobs[i].skip {
			jobUnits += s.jobs[i].units
		}
	}
	s.gov.observe(computeTime, jobUnits+toolUnits)

	var totalPoints int64
	var fullU, actualU int64
	fullSteps := int64(s.cfg.Options.MaxSteps)
	for i, gc := range s.geomGC {
		s.geomWire[i] = gc.geo
		totalPoints += gc.points
		fullU += int64(len(gc.seeds)) * fullSteps
		actualU += int64(gc.shedSeeds) * int64(gc.shedSteps)
	}
	fullU += toolFullU
	actualU += toolActualU
	degraded := degradedByte(actualU, fullU)

	encodeStart := s.clock.Now()
	reply := wire.FrameReply{
		Time: wire.TimeStatus{
			Current:  ts.Current,
			Speed:    ts.Speed,
			Playing:  ts.Playing,
			Loop:     ts.Loop,
			NumSteps: uint32(ts.NumSteps),
		},
		Users:        s.usersWire,
		Rakes:        s.rakesWire,
		Geometry:     s.geomWire,
		ComputeNanos: computeTime.Nanoseconds(),
		LoadNanos:    loadTime.Nanoseconds(),
		Round:        s.round,
		Degraded:     degraded,
	}
	if s.haveTools {
		reply.Tools = &s.toolsMeta
	}
	// Encode once into a buffer no in-flight send still references:
	// the current buffer in place when its references have drained
	// (steady state), a recycled drained buffer otherwise.
	fb := s.acquireEncodeBufLocked()
	fb.buf = wire.AppendFrameReply(fb.buf[:0], reply)
	s.fb = fb
	// Shared round payload for codec-v2 sessions: the header fields
	// without geometry. Each v2 session marries it to the cached
	// per-rake segments through its own delta shadow.
	s.lastMeta = reply
	s.lastMeta.Geometry = nil
	encodeTime := s.clock.Now().Sub(encodeStart)

	clear(s.consumedBy)
	s.lastVersion = version
	s.lastPoints = totalPoints
	s.lastToolPoints = toolPoints
	s.lastDegraded = degraded

	s.stats.Frames++
	s.stats.FramesEncoded++
	s.stats.Points += totalPoints
	s.stats.ToolPoints += toolPoints
	s.stats.ComputeTime += computeTime
	s.stats.LoadTime += loadTime
	s.stats.EncodeTime += encodeTime
	s.stats.RakesComputed += int64(computed)
	s.stats.RakesReused += int64(reused)
	s.stats.PredictedTime += predicted
	if degraded > 0 {
		s.stats.FramesShed++
	}
	var shedFrac float64
	if fullU > 0 {
		shedFrac = 1 - float64(actualU)/float64(fullU)
	}
	s.rec.Observe(obs.FrameSample{
		Load:          loadTime,
		Integrate:     computeTime,
		Encode:        encodeTime,
		RakesComputed: computed,
		RakesReused:   reused,
		ToolsComputed: int(s.stats.ToolsComputed - toolsCBefore),
		ToolsReused:   int(s.stats.ToolsReused - toolsRBefore),
		ToolPoints:    toolPoints,
		Points:        totalPoints,
		Bytes:         int64(len(fb.buf)),
		Predicted:     predicted,
		Budget:        s.gov.budget,
		Shed:          shedFrac,
	})
	return nil
}

// planJobsLocked runs the governor over this round's jobs: it prices
// each mandatory (dirty) job, reserves the shared tools' slice of the
// budget (tools coarsen before any rake sheds), asks the planner for
// shed levels, then greedily re-admits upgrade candidates — valid
// memos computed at shed fidelity — back to full fidelity in rake
// order while the predicted frame stays under budget. Caller holds
// s.mu.
func (s *Server) planJobsLocked() time.Duration {
	upp := compute.UnitsPerPoint(s.cfg.Options.Method)
	fullSteps := s.cfg.Options.MaxSteps
	s.reqScratch = s.reqScratch[:0]
	s.reqJobs = s.reqJobs[:0]
	for i := range s.jobs {
		j := &s.jobs[i]
		j.level = shedLevel{Seeds: len(j.gc.seeds), Steps: fullSteps}
		j.engine = nil
		j.skip = false
		j.units = 0
		if j.upgrade {
			continue
		}
		req := shedRequest{Seeds: len(j.gc.seeds), Steps: fullSteps}
		if j.streak != nil {
			// Streaklines advance existing particles plus one emission
			// per seed; they are priced but never clamped.
			req.Fixed = true
			req.Units = (int64(len(j.streak.Particles)) + int64(req.Seeds)) * upp
		} else {
			req.Units = int64(req.Seeds) * int64(req.Steps) * upp
			req.Held = j.snap.Holder != 0
		}
		s.reqScratch = append(s.reqScratch, req)
		s.reqJobs = append(s.reqJobs, i)
	}
	// Shared tools plan first: pick the stride whose cost fits beside
	// the rakes' full demand, and reserve that slice of the budget so
	// the rake planner sheds around it.
	var rakeUnits int64
	for _, r := range s.reqScratch {
		rakeUnits += r.Units
	}
	s.toolStride, s.toolReserve = s.planToolsLocked(s.st.Grid(), rakeUnits)
	if cap(s.lvlScratch) < len(s.reqScratch) {
		s.lvlScratch = make([]shedLevel, len(s.reqScratch))
	}
	lvls := s.lvlScratch[:len(s.reqScratch)]
	predicted, shed := s.gov.planWith(s.reqScratch, lvls, s.toolReserve)
	var plannedUnits int64
	for k, i := range s.reqJobs {
		j := &s.jobs[i]
		j.level = lvls[k]
		if s.reqScratch[k].Fixed {
			plannedUnits += s.reqScratch[k].Units
		} else {
			plannedUnits += int64(lvls[k].Seeds) * int64(lvls[k].Steps) * upp
		}
		if shed && j.streak == nil {
			// Only shed rounds switch engines, so an ungoverned (or
			// under-budget) server stays byte-identical to the
			// configured engine's output.
			j.engine = s.gov.engineFor(j.level.Seeds)
		}
	}
	for i := range s.jobs {
		j := &s.jobs[i]
		if !j.upgrade {
			continue
		}
		units := int64(len(j.gc.seeds)) * int64(fullSteps) * upp
		cost := s.gov.predict(units)
		if shed || (s.gov.enabled() && s.gov.calibrated() &&
			predicted+cost > s.gov.effectiveBudget()-s.toolReserve) {
			j.skip = true
			continue
		}
		predicted += cost
		plannedUnits += units
	}
	// Guarantee progress on idle rounds: when no rake is dirty and the
	// budget admitted nothing (a single rake's full cost can exceed
	// the budget), restore the first candidate anyway — otherwise a
	// paused, degraded scene would stay degraded forever.
	if len(s.reqScratch) == 0 {
		admitted := false
		for i := range s.jobs {
			if s.jobs[i].upgrade && !s.jobs[i].skip {
				admitted = true
				break
			}
		}
		if !admitted {
			for i := range s.jobs {
				if s.jobs[i].upgrade {
					s.jobs[i].skip = false
					units := int64(len(s.jobs[i].gc.seeds)) * int64(fullSteps) * upp
					predicted += s.gov.predict(units)
					plannedUnits += units
					break
				}
			}
		}
	}
	s.stats.PlannedTime += s.gov.predict(plannedUnits)
	return predicted
}

// runJobsLocked executes the round's recompute jobs on a bounded
// worker pool. Each job touches only its own rakeGeom (and streak), so
// jobs are independent; shared inputs (field, grid, options) are
// read-only. Caller holds s.mu; the job slice is frozen for the whole
// round and the parent blocks on the WaitGroup, so worker reads of
// s.jobs race with nothing.
func (s *Server) runJobsLocked(batch compute.SteadyBatch, g *grid.Grid, ts env.TimeState, step int) {
	workers := s.cfg.RakeWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(s.jobs) {
		workers = len(s.jobs)
	}
	if workers <= 1 {
		for i := range s.jobs {
			s.computeRake(&s.jobs[i], batch, g, ts, step)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, len(s.jobs))
	for i := range s.jobs {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				s.computeRake(&s.jobs[i], batch, g, ts, step) //vw:allow lockdiscipline -- jobs are frozen for the round; parent holds mu and blocks on wg
			}
		}()
	}
	wg.Wait()
}

// computeRake recomputes one rake's geometry into its memo entry at
// the planned fidelity, recycling the previous round's physical-line
// buffers. Runs on pool workers; must not touch server state beyond
// the job's own entries.
//
//vw:hotpath
func (s *Server) computeRake(j *rakeJob, batch compute.SteadyBatch, g *grid.Grid, ts env.TimeState, step int) {
	if j.skip {
		// The planner kept this rake's shed-fidelity memo; the round
		// serves gc.geo verbatim.
		return
	}
	rake := j.snap.Rake
	gc := j.gc
	seeds := gc.seeds
	opts := s.cfg.Options
	if j.streak == nil {
		// Shed levels: a prefix of the seed row and a truncated step
		// bound, so a tighter budget strictly shrinks the output.
		if j.level.Seeds > 0 && j.level.Seeds < len(seeds) {
			seeds = seeds[:j.level.Seeds]
		}
		if j.level.Steps > 0 && j.level.Steps < opts.MaxSteps {
			opts.MaxSteps = j.level.Steps
		}
	}
	eng := s.cfg.Engine
	if j.engine != nil {
		eng = j.engine
	}
	var lines [][]vmath.Vec3
	var st compute.Stats
	switch rake.Tool {
	case integrate.ToolStreamline:
		lines, st = eng.Streamlines(batch, seeds, ts.Current, opts) //vw:allow hotpath -- one box per dirty rake, not per point
	case integrate.ToolParticlePath:
		sampler := s.timeSampler(step)
		lines, st = eng.ParticlePaths(sampler, seeds, ts.Current,
			float32(ts.NumSteps-1), opts)
	case integrate.ToolStreakline:
		j.streak.Advance(batch, seeds, ts.Current, opts.StepSize, opts.Method) //vw:allow hotpath -- one box per dirty rake, not per point
		lines = j.streak.PolylineBySeed(rake.NumSeeds)
		st = compute.Stats{Points: int64(len(j.streak.Particles))}
		st.SampleUnits = st.Points * (compute.UnitsPerPoint(opts.Method) - 3)
		st.ConvertUnits = st.Points * 3
	}
	j.units = st.Units()
	gc.geo = wire.Geometry{
		Rake:  rake.ID,
		Tool:  uint8(rake.Tool),
		Lines: toPhysicalLinesInto(g, lines, gc.geo.Lines),
	}
	gc.points = int64(gc.geo.NumPoints())
	gc.haveGeo = true
	gc.version = j.snap.Version
	gc.step = step
	gc.timeKey = ts.Current
	gc.shedSeeds = len(seeds)
	gc.shedSteps = opts.MaxSteps
}

// loadStep fetches a timestep through the prefetcher when present.
func (s *Server) loadStep(step int) (*field.Field, error) {
	if s.prefetcher != nil {
		return s.prefetcher.LoadStep(step)
	}
	return s.st.LoadStep(step)
}

// timeSampler returns an unsteady sampler for particle paths starting
// at timestep. With a resident dataset it samples with time
// interpolation; for I/O-backed stores it slides the resident window
// over [step, step+MaxSteps] first (§5.1's strategy), then samples
// through it.
func (s *Server) timeSampler(step int) integrate.Sampler {
	if s.unsteady != nil {
		return integrate.UnsteadySampler{U: s.unsteady}
	}
	src := s.st
	if s.window != nil {
		// A failed slide degrades to on-demand loads; the sampler
		// still works.
		_ = s.window.SetBase(step)
		src = s.window
	}
	return &storeSampler{st: src, cache: make(map[int]*field.Field)}
}

// storeSampler samples an I/O-backed store with linear time
// interpolation, caching loaded steps for the duration of one
// computation (particle paths revisit the same bracketing steps for
// every seed).
type storeSampler struct {
	st    store.Store
	cache map[int]*field.Field
	mu    sync.Mutex
}

// Grid implements integrate.Sampler.
func (ss *storeSampler) Grid() *grid.Grid { return ss.st.Grid() }

// SampleVelocity implements integrate.Sampler.
func (ss *storeSampler) SampleVelocity(gc vmath.Vec3, t float32) vmath.Vec3 {
	last := ss.st.NumSteps() - 1
	if t <= 0 {
		return ss.step(0).Sample(ss.st.Grid(), gc)
	}
	if t >= float32(last) {
		return ss.step(last).Sample(ss.st.Grid(), gc)
	}
	t0 := int(t)
	frac := t - float32(t0)
	a := ss.step(t0).Sample(ss.st.Grid(), gc)
	b := ss.step(t0+1).Sample(ss.st.Grid(), gc)
	return a.Lerp(b, frac)
}

// step loads (and caches) timestep t; on load failure it returns an
// empty field, terminating paths at stagnation rather than crashing
// the frame. The cache is locked because the parallel engines sample
// from several goroutines.
func (ss *storeSampler) step(t int) *field.Field {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if f, ok := ss.cache[t]; ok {
		return f
	}
	f, err := ss.st.LoadStep(t)
	if err != nil {
		g := ss.st.Grid()
		f = field.NewField(g.NI, g.NJ, g.NK, field.GridCoords)
	}
	ss.cache[t] = f
	return f
}

// toPhysicalLinesInto converts grid-coordinate lines to physical
// coordinates, recycling prev's buffers (typically the same rake's
// previous round) where capacity allows.
//
//vw:hotpath
func toPhysicalLinesInto(g *grid.Grid, lines, prev [][]vmath.Vec3) [][]vmath.Vec3 {
	var out [][]vmath.Vec3
	if cap(prev) >= len(lines) {
		out = prev[:len(lines)]
	} else {
		out = make([][]vmath.Vec3, len(lines)) //vw:allow hotpath -- grow-once: only when a rake gains lines, then recycled every round
		copy(out, prev)
	}
	for i, l := range lines {
		out[i] = integrate.ToPhysicalInto(g, out[i], l)
	}
	return out
}

func toPhysicalLines(g *grid.Grid, lines [][]vmath.Vec3) [][]vmath.Vec3 {
	return toPhysicalLinesInto(g, lines, nil)
}
