package server

import (
	"math"
	"testing"
	"time"

	"repro/internal/dlib"
	"repro/internal/netsim"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// checkEnvInvariants asserts the shared environment is still sane after
// hostile input: every surviving rake has finite endpoints, a seed count
// inside the server's clamp, and a known tool. A violation here means a
// rejected-on-paper payload leaked into shared state, where it would
// poison every connected workstation's next frame.
func checkEnvInvariants(t *testing.T, s *Server) {
	t.Helper()
	for _, snap := range s.Env().Rakes() {
		r := snap.Rake
		if !finiteVec3(r.P0) || !finiteVec3(r.P1) {
			t.Fatalf("rake %d has non-finite endpoints: %v %v", r.ID, r.P0, r.P1)
		}
		if r.NumSeeds < 1 || r.NumSeeds > s.cfg.MaxSeedsPerRake {
			t.Fatalf("rake %d seeds %d outside [1,%d]", r.ID, r.NumSeeds, s.cfg.MaxSeedsPerRake)
		}
		if !validTool(uint8(r.Tool)) {
			t.Fatalf("rake %d has unknown tool %d", r.ID, r.Tool)
		}
	}
}

// fuzzServer builds a small steady server plus a direct-call context.
// The frame-budget governor runs hot (tiny budget, pre-calibrated on a
// ManualClock so plans are deterministic): hostile payloads reach the
// shed planner and the degraded-byte encoding, not just the
// full-fidelity path.
func fuzzServer(t *testing.T) (*Server, *dlib.Ctx) {
	t.Helper()
	s, err := New(Config{
		Store:           testDataset(t, 2),
		MaxSeedsPerRake: 64,
		Budget:          time.Millisecond,
		Clock:           netsim.NewManualClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.gov.unitNanos = 500
	t.Cleanup(func() { s.Dlib().Close() })
	return s, &dlib.Ctx{Session: &dlib.Session{ID: 1}}
}

// frameNoPanic runs one direct handleFrame call; a returned error is a
// legitimate outcome (malformed payload), a panic is the bug.
func frameNoPanic(t *testing.T, s *Server, ctx *dlib.Ctx, payload []byte) {
	t.Helper()
	out, err := s.handleFrame(ctx, payload)
	ctx.FinishReply()
	if err != nil {
		return
	}
	if _, err := wire.DecodeFrameReply(out); err != nil {
		t.Fatalf("accepted frame produced undecodable reply: %v", err)
	}
}

// FuzzHandleFrame throws raw bytes at the frame procedure — the full
// decode/apply/recompute/encode path. Whatever arrives, the server must
// not panic, must keep the environment version monotonic, and must keep
// every accepted rake within validated bounds.
func FuzzHandleFrame(f *testing.F) {
	nan := math.Float32frombits(0x7fc00000)
	inf := math.Float32frombits(0x7f800000)
	f.Add(wire.EncodeClientUpdate(wire.ClientUpdate{Head: vmath.Identity(), Hand: vmath.V3(1, 2, 3)}))
	f.Add(wire.EncodeClientUpdate(wire.ClientUpdate{Commands: []wire.Command{{
		Kind: wire.CmdAddRake, P0: vmath.V3(1, 4, 4), P1: vmath.V3(1, 8, 4), NumSeeds: 8,
	}}}))
	f.Add(wire.EncodeClientUpdate(wire.ClientUpdate{Hand: vmath.V3(nan, 0, 0)}))
	f.Add(wire.EncodeClientUpdate(wire.ClientUpdate{Commands: []wire.Command{{
		Kind: wire.CmdAddRake, P0: vmath.V3(inf, 4, 4), P1: vmath.V3(1, 8, 4), NumSeeds: 8,
	}}}))
	// "Negative" seeds: NumSeeds is unsigned on the wire, so hostility
	// arrives as a huge count that must clamp, not allocate.
	f.Add(wire.EncodeClientUpdate(wire.ClientUpdate{Commands: []wire.Command{{
		Kind: wire.CmdAddRake, P0: vmath.V3(1, 4, 4), P1: vmath.V3(1, 8, 4),
		NumSeeds: 0xFFFFFFFF,
	}}}))
	f.Add(wire.EncodeClientUpdate(wire.ClientUpdate{Commands: []wire.Command{{
		Kind: wire.CmdAddRake, P0: vmath.V3(1, 4, 4), P1: vmath.V3(1, 8, 4),
		NumSeeds: 8, Tool: 200,
	}}}))
	f.Add(wire.EncodeClientUpdate(wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdSetSpeed, Value: nan},
		{Kind: wire.CmdSeek, Value: inf},
		{Kind: 99, Rake: -1},
	}}))
	// Overload seed: a wide rake under playback pushes the governor
	// over its budget, so the fuzzer explores the shed planner and the
	// non-zero Degraded byte from the first generation on.
	f.Add(wire.EncodeClientUpdate(wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdAddRake, P0: vmath.V3(1, 2, 2), P1: vmath.V3(1, 13, 6), NumSeeds: 64},
		{Kind: wire.CmdSetLoop, Flag: 1},
		{Kind: wire.CmdSetSpeed, Value: 1},
		{Kind: wire.CmdSetPlaying, Flag: 1},
	}}))
	f.Add([]byte{})
	f.Add([]byte{0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, ctx := fuzzServer(t)
		// A benign frame first, so the fuzz payload attacks a live round.
		frameNoPanic(t, s, ctx, wire.EncodeClientUpdate(wire.ClientUpdate{
			Head: vmath.Identity(), Hand: vmath.V3(1, 0, 0),
		}))
		v0 := s.Env().Version()
		frameNoPanic(t, s, ctx, data)
		if v := s.Env().Version(); v < v0 {
			t.Fatalf("environment version went backwards: %d -> %d", v0, v)
		}
		checkEnvInvariants(t, s)
		// The server must still serve clean frames afterwards.
		frameNoPanic(t, s, ctx, wire.EncodeClientUpdate(wire.ClientUpdate{
			Head: vmath.Identity(), Hand: vmath.V3(2, 0, 0),
		}))
	})
}

// FuzzApplyCommand drives the command switch with arbitrary decoded
// values — the post-decoder surface, where NaN floats and unknown
// enums arrive as perfectly well-formed wire frames.
func FuzzApplyCommand(f *testing.F) {
	nan := math.Float32frombits(0x7fc00000)
	f.Add(uint8(wire.CmdAddRake), int32(0), uint32(8), uint8(0), uint8(0),
		float32(1), float32(4), float32(4), float32(1), float32(8), float32(4), float32(0))
	f.Add(uint8(wire.CmdAddRake), int32(0), uint32(0xFFFFFFFF), uint8(200), uint8(0),
		nan, float32(4), float32(4), float32(1), float32(8), float32(4), float32(0))
	f.Add(uint8(wire.CmdMove), int32(1), uint32(0), uint8(0), uint8(1),
		nan, nan, nan, float32(0), float32(0), float32(0), float32(0))
	f.Add(uint8(wire.CmdSetSeeds), int32(1), uint32(1<<31), uint8(0), uint8(0),
		float32(0), float32(0), float32(0), float32(0), float32(0), float32(0), float32(0))
	f.Add(uint8(wire.CmdSeek), int32(0), uint32(0), uint8(0), uint8(0),
		float32(0), float32(0), float32(0), float32(0), float32(0), float32(0), nan)

	f.Fuzz(func(t *testing.T, kind uint8, rake int32, numSeeds uint32, tool, grab uint8,
		x0, y0, z0, x1, y1, z1, value float32) {
		s, ctx := fuzzServer(t)
		// Seed one legitimate rake so mutation commands have a target.
		frameNoPanic(t, s, ctx, wire.EncodeClientUpdate(wire.ClientUpdate{
			Commands: []wire.Command{{
				Kind: wire.CmdAddRake, P0: vmath.V3(1, 4, 4), P1: vmath.V3(1, 8, 4), NumSeeds: 4,
			}},
		}))
		v0 := s.Env().Version()
		s.applyCommand(1, wire.Command{
			Kind: wire.CmdKind(kind), Rake: rake,
			P0: vmath.V3(x0, y0, z0), P1: vmath.V3(x1, y1, z1),
			Pos:      vmath.V3(x0, y0, z0),
			NumSeeds: numSeeds, Tool: tool, Grab: grab, Value: value,
			Flag: uint8(numSeeds & 1),
		})
		if v := s.Env().Version(); v < v0 {
			t.Fatalf("environment version went backwards: %d -> %d", v0, v)
		}
		checkEnvInvariants(t, s)
		// And a full frame still computes over whatever state resulted.
		frameNoPanic(t, s, ctx, wire.EncodeClientUpdate(wire.ClientUpdate{
			Head: vmath.Identity(), Hand: vmath.V3(2, 0, 0),
		}))
	})
}
