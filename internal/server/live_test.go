package server

import (
	"bytes"
	"testing"

	"repro/internal/datasets"
	"repro/internal/env"
	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/netsim"
	"repro/internal/store"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// liveSpec is the shared small solver configuration for the live
// battery: big enough to develop real flow, small enough to run the
// solver twice per test.
func liveSpec() (datasets.Spec, datasets.SolverOptions) {
	return datasets.Spec{NI: 12, NJ: 12, NK: 6, NumSteps: 6, DT: 0.2},
		datasets.SolverOptions{Resolution: 16, SpinupSteps: 6, Workers: 2}
}

// replayServer runs the offline pipeline: solve the full dataset, spill
// it to disk, and serve it back through the streaming path — the
// pre-live workflow the differential pins the live mode against.
func replayServer(t *testing.T, spec datasets.Spec, sopts datasets.SolverOptions, cfg Config) *Server {
	t.Helper()
	u, err := datasets.Solver(spec, sopts)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := store.WriteDataset(dir, u); err != nil {
		t.Fatal(err)
	}
	disk, err := store.OpenDisk(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = disk
	cfg.Clock = netsim.NewManualClock()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// liveServer runs the in-situ pipeline: the same solver coupled as a
// ring producer behind the server, with the steering source wired the
// way core.ServeLive wires it.
func liveServer(t *testing.T, spec datasets.Spec, sopts datasets.SolverOptions, window int, cfg Config) (*Server, *datasets.Live) {
	t.Helper()
	lv, err := datasets.NewLive(spec, datasets.LiveOptions{Solver: sopts, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	def := datasets.DefaultSteer()
	cfg.Store = lv.Ring()
	cfg.Clock = netsim.NewManualClock()
	cfg.Steer = env.SteerParams{InflowU: def.InflowU, Reynolds: def.Reynolds, Taper: def.Taper}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := s.Env()
	lv.SetSteerSource(func() (datasets.Steering, uint64) {
		st := e.Steer()
		return datasets.Steering{
			InflowU:  st.Params.InflowU,
			Reynolds: st.Params.Reynolds,
			Taper:    st.Params.Taper,
		}, st.Version
	})
	return s, lv
}

// liveScenario is the frozen-steering flight plan both servers fly: one
// rake per tool (streamlines, particle paths, streaklines — the last
// two reach across the history window), looping playback, then empty
// rounds that walk the clock through every timestep and around the
// loop.
func liveScenario(g *grid.Grid, frames int) []wire.ClientUpdate {
	b := g.Bounds()
	at := func(fx, fy, fz float32) vmath.Vec3 {
		return b.Min.Lerp(b.Max, 0).Add(b.Max.Sub(b.Min).Mul(vmath.V3(fx, fy, fz)))
	}
	updates := []wire.ClientUpdate{{Commands: []wire.Command{
		addRakeCmd(at(0.6, 0.35, 0.5), at(0.6, 0.55, 0.5), 3, integrate.ToolStreamline),
		addRakeCmd(at(0.55, 0.4, 0.4), at(0.55, 0.6, 0.4), 3, integrate.ToolParticlePath),
		addRakeCmd(at(0.5, 0.45, 0.6), at(0.5, 0.65, 0.6), 3, integrate.ToolStreakline),
		{Kind: wire.CmdSetLoop, Flag: 1},
		{Kind: wire.CmdSetSpeed, Value: 1},
		{Kind: wire.CmdSetPlaying, Flag: 1},
	}}}
	for len(updates) < frames {
		updates = append(updates, wire.ClientUpdate{})
	}
	return updates
}

// TestLiveDifferentialReplay is the coupling differential: a live
// in-situ server with frozen steering must be byte-identical, frame by
// frame, to the offline solve-then-replay server — for the classic v1
// codec and for the stateful delta v2 codec. Any drift in solver
// sequencing, ring recycling, clamping, or steering initialization
// shows up here as a byte mismatch.
func TestLiveDifferentialReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the solver four times")
	}
	spec, sopts := liveSpec()

	t.Run("v1", func(t *testing.T) {
		replay := replayServer(t, spec, sopts, Config{})
		live, lv := liveServer(t, spec, sopts, spec.NumSteps, Config{})
		dr := newDirectSession(t, replay, 1)
		dl := newDirectSession(t, live, 1)
		for i, u := range liveScenario(replay.st.Grid(), 9) {
			want := dr.rawFrame(u)
			got := dl.rawFrame(u)
			if !bytes.Equal(want, got) {
				t.Fatalf("frame %d: live bytes diverge from replay (%d vs %d bytes)",
					i, len(got), len(want))
			}
		}
		// Frozen steering must never have touched the solver.
		if n := len(lv.AppliedSteer()); n != 0 {
			t.Fatalf("frozen steering applied %d parameter changes", n)
		}
	})

	t.Run("v2", func(t *testing.T) {
		replay := replayServer(t, spec, sopts, Config{})
		live, _ := liveServer(t, spec, sopts, spec.NumSteps, Config{})
		vr := newV2Session(t, replay, 1)
		vl := newV2Session(t, live, 1)
		if vr.info != vl.info {
			t.Fatalf("dataset info diverges: %+v vs %+v", vl.info, vr.info)
		}
		for i, u := range liveScenario(replay.st.Grid(), 9) {
			want := vr.rawFrame(u)
			got := vl.rawFrame(u)
			if !bytes.Equal(want, got) {
				t.Fatalf("v2 frame %d: live bytes diverge from replay (%d vs %d bytes)",
					i, len(got), len(want))
			}
			// Both streams must also decode through the stateful
			// decoder (delta bases line up frame over frame).
			if _, err := vr.dec.Decode(want); err != nil {
				t.Fatalf("v2 frame %d: replay decode: %v", i, err)
			}
			if _, err := vl.dec.Decode(got); err != nil {
				t.Fatalf("v2 frame %d: live decode: %v", i, err)
			}
		}
	})
}

// TestLiveServerBypassesCache pins the wiring audit from the store
// refactor: a ring-backed server must not wrap the ring in the shared
// timestep cache, the sliding window, or the prefetcher — all three
// hold bare field pointers that the ring's buffer recycling would
// corrupt. The observable contract: cache stats report absent even
// when a cache was requested, and live stats report present.
func TestLiveServerBypassesCache(t *testing.T) {
	g, err := grid.NewCartesian(8, 8, 4, vmath.AABB{
		Min: vmath.V3(0, 0, 0), Max: vmath.V3(7, 7, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	ring, err := store.NewRing(g, 0.1, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: ring, CacheSteps: 4, CacheBytes: 1 << 20, Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.CacheStats(); ok {
		t.Error("ring-backed server built a timestep cache over recycled buffers")
	}
	if _, ok := s.LiveStats(); !ok {
		t.Error("ring-backed server reports no live stats")
	}
	if _, ok := s.LiveStats(); ok {
		rs, _ := s.LiveStats()
		if rs.Produced != 0 {
			t.Errorf("fresh ring reports %d produced steps", rs.Produced)
		}
	}
}

// TestLiveSteeringChangesFlow drives the full steering loop end to
// end: grab the lock through the wire, push a parameter change, and
// watch the produced flow diverge from the frozen baseline — while
// every change lands in the solver as one atomic triple.
func TestLiveSteeringChangesFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the solver twice")
	}
	spec, sopts := liveSpec()
	run := func(steer bool) ([][]byte, *datasets.Live) {
		s, lv := liveServer(t, spec, sopts, spec.NumSteps, Config{})
		d := newDirectSession(t, s, 1)
		b := s.st.Grid().Bounds()
		p0 := b.Min.Lerp(b.Max, 0.4)
		p1 := b.Min.Lerp(b.Max, 0.6)
		var frames [][]byte
		frames = append(frames, d.rawFrame(wire.ClientUpdate{Commands: []wire.Command{
			addRakeCmd(p0, p1, 4, integrate.ToolStreamline),
			{Kind: wire.CmdSetSpeed, Value: 1},
			{Kind: wire.CmdSetPlaying, Flag: 1},
		}}))
		for i := 0; i < 2; i++ {
			frames = append(frames, d.rawFrame(wire.ClientUpdate{}))
		}
		if steer {
			frames = append(frames, d.rawFrame(wire.ClientUpdate{Commands: []wire.Command{
				{Kind: wire.CmdSteerGrab},
				{Kind: wire.CmdSteer, P0: vmath.V3(3, 250, 1.2)},
			}}))
		} else {
			frames = append(frames, d.rawFrame(wire.ClientUpdate{}))
		}
		for i := 0; i < 2; i++ {
			frames = append(frames, d.rawFrame(wire.ClientUpdate{}))
		}
		return frames, lv
	}

	base, baseLv := run(false)
	steered, lv := run(true)
	if len(lv.AppliedSteer()) == 0 {
		t.Fatal("steering change never reached the solver")
	}
	for _, ap := range lv.AppliedSteer() {
		if ap != (datasets.Steering{InflowU: 3, Reynolds: 250, Taper: 1.2}) {
			t.Fatalf("torn steering application: %+v", ap)
		}
	}
	if n := len(baseLv.AppliedSteer()); n != 0 {
		t.Fatalf("unsteered run applied %d changes", n)
	}
	// Pre-steer frames are identical; from the steer frame on, the flow
	// diverges. (Looping playback may revisit pre-steer steps — those
	// are sealed in the ring and stay identical by design, so the
	// assertion is "any post-steer frame differs", not "all".)
	for i := 0; i < 3; i++ {
		if !bytes.Equal(base[i], steered[i]) {
			t.Fatalf("pre-steer frame %d differs between runs", i)
		}
	}
	diverged := false
	for i := 3; i < len(base); i++ {
		if !bytes.Equal(base[i], steered[i]) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("steering InflowU 1 -> 3 left every produced frame unchanged")
	}
}
