package server

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// The in-situ golden corpus: committed wire bytes for canonical live
// sessions, pinned alongside the offline corpus. The solver itself is
// part of the byte surface here — any change to the coupling (spinup,
// CFL sub-stepping, snapshot sampling, steering application order)
// moves these bytes. The offline corpus files are untouched by design:
// live mode must not perturb the existing protocol surface.
//
// Regenerate with:
//
//	go test ./internal/server/ -run TestGoldenFramesLive -update

// boundsAt maps box fractions to a point in the grid's physical bounds
// — rake endpoints for grids whose extent depends on the Spec.
func boundsAt(g *grid.Grid, fx, fy, fz float32) vmath.Vec3 {
	b := g.Bounds()
	return b.Min.Add(b.Max.Sub(b.Min).Mul(vmath.V3(fx, fy, fz)))
}

// goldenLiveServer builds the in-situ scenario server: the shared small
// solver spec, ManualClock, and the given governor configuration.
func goldenLiveServer(t *testing.T, budget time.Duration, unitNanos float64) *Server {
	t.Helper()
	spec, sopts := liveSpec()
	s, _ := liveServer(t, spec, sopts, spec.NumSteps, Config{Budget: budget})
	s.gov.unitNanos = unitNanos
	return s
}

var goldenLiveScenarios = []struct {
	goldenScenario
	v2 bool
}{
	{
		// Frozen-steering live playback over the v1 codec: a streamline
		// and a streakline rake under looping playback, driving the
		// producer through the whole horizon and back around the sealed
		// history window.
		goldenScenario: goldenScenario{
			name: "live-steady",
			run: func(t *testing.T, s *Server) [][]byte {
				g := s.st.Grid()
				return runSession(t, s, 1, []wire.ClientUpdate{
					{Commands: []wire.Command{
						addRakeCmd(boundsAt(g, 0.6, 0.35, 0.5), boundsAt(g, 0.6, 0.55, 0.5), 3, integrate.ToolStreamline),
						addRakeCmd(boundsAt(g, 0.5, 0.45, 0.6), boundsAt(g, 0.5, 0.65, 0.6), 3, integrate.ToolStreakline),
						{Kind: wire.CmdSetLoop, Flag: 1},
						{Kind: wire.CmdSetSpeed, Value: 1},
						{Kind: wire.CmdSetPlaying, Flag: 1},
					}},
					{}, {}, {}, {}, {},
				})
			},
		},
	},
	{
		// A mid-run steering change over the v2 codec: playback reaches
		// the steer frame, the parameter change lands between timesteps,
		// and every step produced afterwards carries the new flow — the
		// delta encoder keyframes the changed geometry while untouched
		// state stays referenced.
		goldenScenario: goldenScenario{
			name: "steer-keyframe",
			run: func(t *testing.T, s *Server) [][]byte {
				g := s.st.Grid()
				d := newV2Session(t, s, 1)
				updates := []wire.ClientUpdate{
					{Commands: []wire.Command{
						addRakeCmd(boundsAt(g, 0.6, 0.35, 0.5), boundsAt(g, 0.6, 0.55, 0.5), 3, integrate.ToolStreamline),
						addRakeCmd(boundsAt(g, 0.5, 0.45, 0.6), boundsAt(g, 0.5, 0.65, 0.6), 3, integrate.ToolStreakline),
						{Kind: wire.CmdSetSpeed, Value: 1},
						{Kind: wire.CmdSetPlaying, Flag: 1},
					}},
					{}, {},
					{Commands: []wire.Command{
						{Kind: wire.CmdSteerGrab},
						{Kind: wire.CmdSteer, P0: vmath.V3(2, 300, 0.8)},
					}},
					{}, {},
				}
				frames := make([][]byte, len(updates))
				for i, u := range updates {
					frames[i] = d.rawFrame(u)
				}
				return frames
			},
		},
		v2: true,
	},
}

func TestGoldenFramesLive(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the solver several times")
	}
	for _, sc := range goldenLiveScenarios {
		t.Run(sc.name, func(t *testing.T) {
			frames := sc.run(t, goldenLiveServer(t, 0, 0))
			// Rerun determinism: a fresh solver replaying the same script
			// must reproduce the stream exactly — the live coupling leaves
			// no room for incidental divergence.
			again := sc.run(t, goldenLiveServer(t, 0, 0))
			compareFrames(t, "rerun", again, frames)
			if sc.v2 {
				// The whole v2 stream must decode through one stateful
				// decoder built from the live dataset's quantizer.
				dec := wire.NewFrameDecoder(goldenLiveServer(t, 0, 0).datasetInfo().Quantizer())
				for i, f := range frames {
					if _, err := dec.Decode(f); err != nil {
						t.Fatalf("frame %d does not decode: %v", i, err)
					}
				}
			}
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(goldenPath(sc.name)), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(sc.name), encodeFrames(frames), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s: %d frames", goldenPath(sc.name), len(frames))
				return
			}
			data, err := os.ReadFile(goldenPath(sc.name))
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			golden, err := decodeFrames(data)
			if err != nil {
				t.Fatal(err)
			}
			compareFrames(t, "ungoverned", frames, golden)

			// Governed at a budget no frame can exceed: live-mode shedding
			// must be a strict no-op exactly as for the offline corpus.
			governed := sc.run(t, goldenLiveServer(t, time.Hour, 100))
			compareFrames(t, "governed-at-infinite-budget", governed, golden)
		})
	}
}
