package server

// Cluster-tier chaos: what the relay promises when connections die.
// An upstream (relay to origin) loss hangs up the affected downstream
// sessions — the workstation keeps its last-good geometry, redials,
// and resyncs from a keyframe. A downstream loss closes that session's
// upstream leg, releasing the user's FCFS rake locks at the origin
// across the router hop. Sessions pinned to other upstreams ride
// through a partition untouched.

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/dlib"
	"repro/internal/integrate"
	"repro/internal/netsim"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// killableDial is an upstream dial that records the origin-side conn of
// every leg it creates, so a test can sever them mid-run.
type killableDial struct {
	mu    sync.Mutex
	conns []net.Conn
}

func (k *killableDial) dial(d *dlib.Server, link netsim.Link) dlib.DialFunc {
	return func() (net.Conn, error) {
		client, server := netsim.Pipe(link)
		k.mu.Lock()
		k.conns = append(k.conns, server)
		k.mu.Unlock()
		go d.ServeConn(server)
		return client, nil
	}
}

// kill severs every recorded leg: the origin sees the disconnects, the
// relay's next upstream call fails.
func (k *killableDial) kill() {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, c := range k.conns {
		c.Close()
	}
	k.conns = k.conns[:0]
}

// TestRelayUpstreamLossResync crashes the relay-to-origin leg mid-run
// under a codec-v2 session: the downstream call fails (the relay hangs
// the connection up rather than silently redialing into a fresh origin
// identity), the workstation's last-good geometry is intact, and a
// redial through the same relay resyncs from a keyframe that matches
// the pre-crash scene — the origin outlived the partition, so the rake
// and its streamlines are unchanged.
func TestRelayUpstreamLossResync(t *testing.T) {
	origin := goldenServer(t, 0, 0)
	up := &killableDial{}
	r, dial := startRelayNode(t, up.dial(origin.Dlib(), netsim.Link{}))

	connect := func() (*dlib.Client, *wire.FrameDecoder) {
		t.Helper()
		conn, err := dial()
		if err != nil {
			t.Fatal(err)
		}
		c := dlib.NewClient(conn)
		t.Cleanup(func() { c.Close() })
		if _, err := c.Call(wire.ProcHello2, wire.EncodeHelloRequest(wire.CodecV2)); err != nil {
			t.Fatal(err)
		}
		return c, wire.NewFrameDecoder(quantizerOf(t))
	}
	exchange := func(c *dlib.Client, dec *wire.FrameDecoder, u wire.ClientUpdate) wire.FrameReply {
		t.Helper()
		out, err := c.Call(wire.ProcFrame, wire.EncodeClientUpdate(u))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := dec.Decode(out)
		if err != nil {
			t.Fatalf("v2 frame does not decode: %v", err)
		}
		return rep
	}

	c, dec := connect()
	exchange(c, dec, wire.ClientUpdate{Commands: []wire.Command{
		addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 9, 4), 4, integrate.ToolStreamline),
	}})
	lastGood := exchange(c, dec, wire.ClientUpdate{}) // steady delta frame

	up.kill()
	if _, err := c.Call(wire.ProcFrame, wire.EncodeClientUpdate(wire.ClientUpdate{})); err == nil {
		t.Fatal("frame exchange succeeded across a dead upstream")
	}
	if h := r.Stats().Hangups; h != 1 {
		t.Errorf("relay hangups = %d, want 1", h)
	}
	// The failed exchange must not have disturbed what the workstation
	// already holds — it renders last-good geometry until resynced.
	if lastGood.TotalPoints() == 0 || len(lastGood.Geometry) != 1 {
		t.Fatalf("last-good frame lost: %d points in %d geometries",
			lastGood.TotalPoints(), len(lastGood.Geometry))
	}

	// Redial through the same relay. The first frame of the new session
	// decodes on a brand-new decoder — which only a keyframe can (a
	// delta's segment references against an empty shadow are an error) —
	// and reproduces the pre-crash scene exactly.
	c2, dec2 := connect()
	resynced := exchange(c2, dec2, wire.ClientUpdate{})
	if len(resynced.Geometry) != len(lastGood.Geometry) {
		t.Fatalf("resync sees %d geometries, last-good had %d",
			len(resynced.Geometry), len(lastGood.Geometry))
	}
	for i, g := range resynced.Geometry {
		want := lastGood.Geometry[i]
		if len(g.Lines) != len(want.Lines) {
			t.Fatalf("geometry %d: %d lines after resync, want %d", i, len(g.Lines), len(want.Lines))
		}
		for j, line := range g.Lines {
			if len(line) != len(want.Lines[j]) {
				t.Fatalf("geometry %d line %d: %d points after resync, want %d",
					i, j, len(line), len(want.Lines[j]))
			}
			for k, p := range line {
				if p != want.Lines[j][k] {
					t.Fatalf("geometry %d line %d point %d moved across resync: %v != %v",
						i, j, k, p, want.Lines[j][k])
				}
			}
		}
	}
}

// TestRelayPartitionIsolation partitions one of two upstreams mid-run:
// only the sessions pinned to the dead upstream hang up; a session on
// the surviving upstream keeps exchanging frames through the same relay
// uninterrupted, and a fresh session re-pins to the partitioned
// upstream once it is reachable again.
func TestRelayPartitionIsolation(t *testing.T) {
	a := goldenServer(t, 0, 0)
	b := goldenServer(t, 0, 0)
	upA := &killableDial{}
	r, dial := startRelayNode(t,
		upA.dial(a.Dlib(), netsim.Link{}), serveDial(b.Dlib(), netsim.Link{}))

	connect := func() *dlib.Client {
		t.Helper()
		conn, err := dial()
		if err != nil {
			t.Fatal(err)
		}
		c := dlib.NewClient(conn)
		t.Cleanup(func() { c.Close() })
		return c
	}
	frame := func(c *dlib.Client, u wire.ClientUpdate) (wire.FrameReply, error) {
		t.Helper()
		out, err := c.Call(wire.ProcFrame, wire.EncodeClientUpdate(u))
		if err != nil {
			return wire.FrameReply{}, err
		}
		rep, err := wire.DecodeFrameReply(out)
		if err != nil {
			t.Fatal(err)
		}
		return rep, nil
	}

	cA, cB := connect(), connect() // pinned round-robin: cA → a, cB → b
	if _, err := frame(cA, wire.ClientUpdate{Commands: []wire.Command{
		addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 8, 4), 3, integrate.ToolStreamline),
	}}); err != nil {
		t.Fatal(err)
	}
	repB, err := frame(cB, wire.ClientUpdate{Commands: []wire.Command{
		addRakeCmd(vmath.V3(2, 9, 3), vmath.V3(2, 12, 3), 3, integrate.ToolStreamline),
	}})
	if err != nil {
		t.Fatal(err)
	}

	upA.kill()
	if _, err := frame(cA, wire.ClientUpdate{}); err == nil {
		t.Fatal("frame exchange succeeded across the partition")
	}
	if h := r.Stats().Hangups; h != 1 {
		t.Errorf("relay hangups = %d, want 1 (only the partitioned session)", h)
	}
	// The survivor rides through: same relay, same environment.
	got, err := frame(cB, wire.ClientUpdate{})
	if err != nil {
		t.Fatalf("survivor session failed during the partition: %v", err)
	}
	if len(got.Rakes) != 1 || got.Rakes[0].P0 != repB.Rakes[0].P0 {
		t.Fatalf("survivor lost its environment: %+v", got.Rakes)
	}

	// Upstream a is reachable again (it never died — the link did). The
	// next session round-robins back onto it and finds the scene intact.
	cA2 := connect()
	got, err = frame(cA2, wire.ClientUpdate{})
	if err != nil {
		t.Fatalf("re-pinned session failed: %v", err)
	}
	if len(got.Rakes) != 1 {
		t.Fatalf("re-pinned session sees %d rakes, want the surviving scene", len(got.Rakes))
	}
}

// TestRelayLockReleaseAcrossHop pins FCFS lock release across the
// router hop: a workstation grabs a rake through the relay, its
// connection dies, and the lock must free at the origin — the relay's
// per-session upstream leg closing is what carries the disconnect
// across — so a contending workstation's grab eventually wins.
func TestRelayLockReleaseAcrossHop(t *testing.T) {
	origin := goldenServer(t, 0, 0)
	_, dial := startRelayNode(t, serveDial(origin.Dlib(), netsim.Link{}))

	connect := func() *dlib.Client {
		t.Helper()
		conn, err := dial()
		if err != nil {
			t.Fatal(err)
		}
		c := dlib.NewClient(conn)
		t.Cleanup(func() { c.Close() })
		return c
	}
	whoami := func(c *dlib.Client) int64 {
		t.Helper()
		out, err := c.Call(wire.ProcWhoAmI, nil)
		if err != nil || len(out) != 8 {
			t.Fatalf("whoami: %v (%d bytes)", err, len(out))
		}
		return int64(binary.LittleEndian.Uint64(out))
	}
	frame := func(c *dlib.Client, u wire.ClientUpdate) wire.FrameReply {
		t.Helper()
		out, err := c.Call(wire.ProcFrame, wire.EncodeClientUpdate(u))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := wire.DecodeFrameReply(out)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	cA, cB := connect(), connect()
	idA, idB := whoami(cA), whoami(cB)
	if idA == idB {
		t.Fatalf("both sessions share origin id %d", idA)
	}
	grab := wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdGrab, Rake: 1, Grab: uint8(integrate.GrabCenter)},
	}}

	frame(cA, wire.ClientUpdate{Commands: []wire.Command{
		addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 8, 4), 3, integrate.ToolStreamline),
	}})
	if rep := frame(cA, grab); rep.Rakes[0].Holder != idA {
		t.Fatalf("grab through relay: holder %d, want %d", rep.Rakes[0].Holder, idA)
	}
	// First come, first served: B's contending grab is refused while A
	// holds — origin ids, not relay ids, arbitrate.
	if rep := frame(cB, grab); rep.Rakes[0].Holder != idA {
		t.Fatalf("contending grab stole the lock: holder %d", rep.Rakes[0].Holder)
	}

	// A's workstation dies. The relay's OnDisconnect closes A's upstream
	// leg; the origin's OnDisconnect releases A's locks. The chain is
	// asynchronous (two conn teardowns), so B polls its grab.
	cA.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if rep := frame(cB, grab); rep.Rakes[0].Holder == idB {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rake lock never released across the router hop")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
