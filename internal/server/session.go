package server

// The session layer: everything between a dlib connection and the
// compute core. It owns codec negotiation, per-session delta-shadow
// state, the ref-counted encode-once round buffers, command
// validation, and the relay exchange that lets cluster-tier nodes
// (internal/relay) fan one round out to many workstations. The
// compute layer (compute.go) never sees a session; this file never
// integrates a streamline. The split is the seam the cluster tier
// routes across.

import (
	"encoding/binary"
	"math"

	"repro/internal/dlib"
	"repro/internal/env"
	"repro/internal/integrate"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// sessionState is the per-session wire state: the codec accepted at
// hello and, for v2 sessions, the delta-shadow encoder tracking which
// geometry sequence numbers the workstation already holds. Guarded by
// Server.mu; it dies with the session (disconnect), which is what
// forces a full keyframe on reconnect.
type sessionState struct {
	codec uint8
	enc   *wire.FrameEncoder
}

// frameBuf is one round's encoded reply, shared zero-copy by every
// session served within the round. refs counts in-flight sends (dlib
// writes that have not yet completed); it is guarded by Server.mu. The
// release closure is allocated once per buffer so handing a reference
// back per send costs nothing.
type frameBuf struct {
	buf     []byte
	refs    int
	release func()
}

// maxFreeFrameBufs caps the drained-buffer free list. Buffers beyond
// the cap are dropped to the GC; in steady state one or two buffers
// circulate (one being written to slow clients, one being encoded).
const maxFreeFrameBufs = 8

// newFrameBuf allocates a buffer whose release returns it to the
// server's free list once its last in-flight send completes — unless
// it is still the current round buffer, which stays put for in-place
// reuse.
func (s *Server) newFrameBuf() *frameBuf {
	fb := &frameBuf{}
	fb.release = func() {
		s.mu.Lock()
		fb.refs--
		if fb.refs == 0 && s.fb != fb && len(s.free) < maxFreeFrameBufs {
			s.free = append(s.free, fb)
		}
		s.mu.Unlock()
	}
	return fb
}

// acquireEncodeBufLocked returns the buffer the next encode may write
// into: the current round buffer when no sends still reference it
// (in-place reuse, the steady-state path), otherwise a drained buffer
// from the free list or a fresh one. Caller holds s.mu.
func (s *Server) acquireEncodeBufLocked() *frameBuf {
	if fb := s.fb; fb != nil && fb.refs == 0 {
		return fb
	}
	if n := len(s.free); n > 0 {
		fb := s.free[n-1]
		s.free = s.free[:n-1]
		return fb
	}
	return s.newFrameBuf()
}

// acquireSessionBufLocked returns a buffer for a per-session assembly
// (codec-v2 frames, relay replies). Unlike the round buffer it is
// never reused in place — it is referenced exactly once, by the send
// it was built for, and its release hook returns it to the same free
// list. Caller holds s.mu.
func (s *Server) acquireSessionBufLocked() *frameBuf {
	if n := len(s.free); n > 0 {
		fb := s.free[n-1]
		s.free = s.free[:n-1]
		return fb
	}
	return s.newFrameBuf()
}

// datasetInfo describes the dataset for both hello variants. The
// bounds double as the codec-v2 quantization box, so they must match
// s.quant exactly.
func (s *Server) datasetInfo() wire.DatasetInfo {
	g := s.st.Grid()
	b := g.Bounds()
	return wire.DatasetInfo{
		NI: uint32(g.NI), NJ: uint32(g.NJ), NK: uint32(g.NK),
		NumSteps:  uint32(s.st.NumSteps()),
		DT:        s.st.DT(),
		BoundsMin: b.Min,
		BoundsMax: b.Max,
	}
}

func (s *Server) handleHello(_ *dlib.Ctx, _ []byte) ([]byte, error) {
	return wire.EncodeDatasetInfo(s.datasetInfo()), nil
}

// handleHello2 is the codec-negotiating hello: the client states the
// highest codec it speaks, the server answers with the codec this
// session will use (bounded by Config.MaxCodec) plus the dataset info.
// Sessions that never call it stay on codec v1. Re-negotiating
// mid-session resets the delta shadow, so the next frame is a
// keyframe.
func (s *Server) handleHello2(ctx *dlib.Ctx, payload []byte) ([]byte, error) {
	req, err := wire.DecodeHelloRequest(payload)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	codec := wire.NegotiateCodec(req, s.maxCodec)
	st := s.codecs[ctx.Session.ID]
	if st == nil {
		st = &sessionState{}
		s.codecs[ctx.Session.ID] = st
	}
	st.codec = codec
	if st.enc != nil {
		st.enc.Reset()
	}
	s.mu.Unlock()
	return wire.EncodeHelloReply(codec, s.datasetInfo()), nil
}

func (s *Server) handleWhoAmI(ctx *dlib.Ctx, _ []byte) ([]byte, error) {
	var out [8]byte
	binary.LittleEndian.PutUint64(out[:], uint64(ctx.Session.ID))
	return out[:], nil
}

// applyUpdate applies one decoded ClientUpdate — pose, then commands —
// for user. Shared by the direct and relay frame paths so both enforce
// the same validation.
func (s *Server) applyUpdate(user int64, u wire.ClientUpdate) {
	if finiteMat4(u.Head) && finiteVec3(u.Hand) {
		// A NaN/Inf pose would poison every participant's user list;
		// keep the previous pose instead.
		s.env.SetUserPose(user, env.UserPose{Head: u.Head, Hand: u.Hand, Gesture: u.Gesture})
	}
	// Command failures (e.g. grabbing a held rake) must not kill the
	// frame; the client learns the outcome from the returned state.
	for _, cmd := range u.Commands {
		s.applyCommand(user, cmd)
	}
}

// handleFrame is the once-per-frame exchange. dlib guarantees serial
// execution, so handler-side state needs no extra locking against
// other calls — the mutex protects against Stats() readers and frame
// buffer releases, which fire from connection goroutines after their
// writes complete.
//
//vw:hotpath
func (s *Server) handleFrame(ctx *dlib.Ctx, payload []byte) ([]byte, error) {
	u, err := wire.DecodeClientUpdate(payload)
	if err != nil {
		return nil, err
	}
	user := ctx.Session.ID
	s.applyUpdate(user, u)

	s.mu.Lock()
	defer s.mu.Unlock()
	// A new round is computed when this session has already seen the
	// current one, or when it just issued commands — the user must see
	// the effect of their own interaction within this frame (§1.2's
	// 1/8-second command-to-display loop).
	if s.fb == nil || s.consumedBy[user] || len(u.Commands) > 0 {
		if err := s.recomputeLocked(); err != nil {
			return nil, err
		}
	}
	s.consumedBy[user] = true
	// Codec v2 sessions get a per-session assembly: the shared round
	// payload (header meta + cached per-rake segments) filtered through
	// this session's delta shadow.
	if st := s.codecs[user]; st != nil && st.codec >= wire.CodecV2 {
		return s.serveFrameV2Locked(ctx, st)
	}
	// Encode-once fan-out: hand this session a reference to the shared
	// round buffer; dlib writes it zero-copy and the release hook
	// drops the reference when the send is done.
	fb := s.fb
	fb.refs++
	ctx.ReplyDone(fb.release)
	s.stats.FramesShipped++
	s.stats.BytesShipped += int64(len(fb.buf))
	s.rec.ObserveShip(int64(len(fb.buf)))
	return fb.buf, nil
}

// serveFrameV2Locked assembles this session's codec-v2 reply from the
// shared round payload: the round's header fields (lastMeta) plus, per
// rake, either the shared cached segment (encoded once per geometry
// version, for every session) or — when the session's shadow already
// holds the rake's current sequence — a few-byte reference record.
// The reply lands in a pooled per-session buffer released by the same
// ReplyDone mechanism as round buffers. Caller holds s.mu.
func (s *Server) serveFrameV2Locked(ctx *dlib.Ctx, st *sessionState) ([]byte, error) {
	if st.enc == nil {
		st.enc = wire.NewFrameEncoder(s.quant)
	}
	s.seqScratch = s.seqScratch[:0]
	s.segScratch = s.segScratch[:0]
	for _, gc := range s.geomGC {
		s.encodeSegLocked(gc)
		s.seqScratch = append(s.seqScratch, gc.seq)
		s.segScratch = append(s.segScratch, gc.seg)
	}
	// Tool geometry rides the same encode-once segment cache, keyed by
	// the shared geometry sequence space, so every v2 session (and every
	// relay) ships identical quantized bytes for a given tool version.
	s.toolSeqScratch = s.toolSeqScratch[:0]
	s.toolSegScratch = s.toolSegScratch[:0]
	for _, tg := range s.toolGC {
		s.encodeToolSegLocked(tg)
		s.toolSeqScratch = append(s.toolSeqScratch, tg.seq)
		s.toolSegScratch = append(s.toolSegScratch, tg.seg)
	}
	reply := s.lastMeta
	reply.Geometry = s.geomWire
	fb := s.acquireSessionBufLocked()
	fb.buf = st.enc.AppendFrame(fb.buf[:0], reply, s.seqScratch, s.segScratch, s.toolSeqScratch, s.toolSegScratch)
	fb.refs++
	ctx.ReplyDone(fb.release)
	s.stats.FramesShipped++
	s.stats.V2Frames++
	s.stats.V2RakesInline += int64(st.enc.LastInline)
	s.stats.V2RakesRef += int64(st.enc.LastRef)
	s.stats.BytesShipped += int64(len(fb.buf))
	s.rec.ObserveShip(int64(len(fb.buf)))
	return fb.buf, nil
}

// encodeSegLocked ensures gc.seg holds the codec-v2 segment for the
// rake's current geometry sequence — encode-once, v2 edition: the
// segment is built the first time any v2 session (or relay) needs this
// geometry version and reused until the rake recomputes. Caller holds
// s.mu.
func (s *Server) encodeSegLocked(gc *rakeGeom) {
	if gc.segSeq != gc.seq {
		gc.seg = wire.AppendGeomV2(gc.seg[:0], gc.geo, s.quant)
		gc.segSeq = gc.seq
	}
}

// handleFrameRelay is the cluster tier's upstream frame exchange: one
// downstream workstation's frame call, forwarded by a relay node with
// its cache state attached. The pose/command application and the
// round-advance rule are identical to handleFrame — the relay holds
// one upstream session per downstream workstation, so identity, FCFS
// lock ownership, and round accounting are untouched by the hop. Only
// the reply differs: a marker when the relay's cached round is still
// current, otherwise the encoded v1 round buffer verbatim plus (when
// asked) the geometry directory delta-encoded against the relay's
// segment shadow. The relay re-fans the payload to its local
// workstations byte-identically.
//
//vw:hotpath
func (s *Server) handleFrameRelay(ctx *dlib.Ctx, payload []byte) ([]byte, error) {
	req, err := wire.DecodeRelayFrameRequest(payload)
	if err != nil {
		return nil, err
	}
	u, err := wire.DecodeClientUpdate(req.Update)
	if err != nil {
		return nil, err
	}
	user := ctx.Session.ID
	s.applyUpdate(user, u)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fb == nil || s.consumedBy[user] || len(u.Commands) > 0 {
		if err := s.recomputeLocked(); err != nil {
			return nil, err
		}
	}
	s.consumedBy[user] = true

	round := s.lastMeta.Round
	fb := s.acquireSessionBufLocked()
	if req.LastRound == round {
		// The relay already holds this round's payload; ship 9 bytes.
		fb.buf = wire.AppendRelayMarker(fb.buf[:0], round)
		s.stats.RelayMarkers++
	} else {
		rep := wire.RelayFrameReply{Full: true, Round: round, Frame: s.fb.buf}
		if req.WantSegs {
			s.dirScratch = s.dirScratch[:0]
			for _, gc := range s.geomGC {
				seg := wire.RelaySegment{Rake: gc.geo.Rake, Seq: gc.seq}
				if !req.ShadowHas(gc.geo.Rake, gc.seq) {
					s.encodeSegLocked(gc)
					seg.Inline = true
					seg.Seg = gc.seg
				}
				s.dirScratch = append(s.dirScratch, seg)
			}
			// Tool segments share the directory under negative keys
			// (rake ids are always >= 1, so -kind can never collide).
			for _, tg := range s.toolGC {
				key := -int32(tg.geo.Tool)
				seg := wire.RelaySegment{Rake: key, Seq: tg.seq}
				if !req.ShadowHas(key, tg.seq) {
					s.encodeToolSegLocked(tg)
					seg.Inline = true
					seg.Seg = tg.seg
				}
				s.dirScratch = append(s.dirScratch, seg)
			}
			rep.HasDir = true
			rep.Dir = s.dirScratch
		}
		fb.buf = wire.AppendRelayFrameReply(fb.buf[:0], rep)
		s.stats.RelayFulls++
	}
	fb.refs++
	ctx.ReplyDone(fb.release)
	s.stats.RelayBytes += int64(len(fb.buf))
	return fb.buf, nil
}

// finiteVec3 reports whether every component is a finite number.
func finiteVec3(v vmath.Vec3) bool {
	return finite32(v.X) && finite32(v.Y) && finite32(v.Z)
}

// finiteMat4 reports whether every element is a finite number.
func finiteMat4(m vmath.Mat4) bool {
	for _, v := range m {
		if !finite32(v) {
			return false
		}
	}
	return true
}

func finite32(f float32) bool {
	// NaN != NaN; the bound excludes ±Inf.
	return f == f && f <= math.MaxFloat32 && f >= -math.MaxFloat32
}

// validTool reports whether a client-supplied tool id is a known
// visualization tool.
func validTool(t uint8) bool {
	return integrate.ToolKind(t) <= integrate.ToolStreakline
}

// clampSeeds bounds a client-requested seed count. Values above the
// cap are clamped rather than rejected, matching the command model's
// swallow-and-show-state philosophy; non-positive values pass through
// to the environment's own validation.
func (s *Server) clampSeeds(n int) int {
	if n > s.cfg.MaxSeedsPerRake {
		return s.cfg.MaxSeedsPerRake
	}
	return n
}

// applyCommand executes one user command against the environment.
// Errors are deliberately swallowed after the conflict rules run:
// "possible conflicting commands from different workstations are
// easily handled ... by a 'first come first served' rule." Hostile
// numeric payloads (NaN/Inf endpoints, unknown tool ids) are dropped
// here, before they can reach the environment: a rejected command must
// not bump any version counter or corrupt shared state.
func (s *Server) applyCommand(user int64, c wire.Command) {
	switch c.Kind {
	case wire.CmdAddRake:
		if !finiteVec3(c.P0) || !finiteVec3(c.P1) || !validTool(c.Tool) {
			return
		}
		s.env.AddRake(c.P0, c.P1, s.clampSeeds(int(c.NumSeeds)), integrate.ToolKind(c.Tool))
	case wire.CmdRemoveRake:
		if s.env.RemoveRake(user, c.Rake) == nil {
			s.mu.Lock()
			delete(s.streaks, c.Rake)
			delete(s.geoCache, c.Rake)
			s.mu.Unlock()
		}
	case wire.CmdGrab:
		s.env.GrabRake(user, c.Rake, integrate.GrabPoint(c.Grab))
	case wire.CmdRelease:
		s.env.ReleaseRake(user, c.Rake)
	case wire.CmdMove:
		if !finiteVec3(c.Pos) {
			return
		}
		s.env.MoveRake(user, c.Rake, c.Pos)
	case wire.CmdSetSeeds:
		s.env.SetRakeSeeds(user, c.Rake, s.clampSeeds(int(c.NumSeeds)))
	case wire.CmdSetPlaying:
		s.env.SetPlaying(c.Flag != 0)
	case wire.CmdSetSpeed:
		if !finite32(c.Value) {
			return
		}
		s.env.SetSpeed(c.Value)
	case wire.CmdSeek:
		if !finite32(c.Value) {
			return
		}
		s.env.SeekTime(c.Value)
	case wire.CmdSetLoop:
		s.env.SetLoop(c.Flag != 0)
	case wire.CmdSetTool:
		if !validTool(c.Tool) {
			return
		}
		if s.env.SetRakeTool(user, c.Rake, integrate.ToolKind(c.Tool)) == nil {
			// Tool changes orphan any streak state.
			s.mu.Lock()
			delete(s.streaks, c.Rake)
			s.mu.Unlock()
		}
	case wire.CmdSteerGrab:
		s.env.GrabSteer(user)
	case wire.CmdSteerRelease:
		s.env.ReleaseSteer(user)
	case wire.CmdSteer:
		// P0 carries (inlet velocity, Reynolds, taper) as one atomic
		// triple. Hostile values — NaN Reynolds, negative velocity,
		// absurd taper — are dropped before they can reach the solver.
		if !validSteerParams(c.P0.X, c.P0.Y, c.P0.Z) {
			return
		}
		s.env.SetSteer(user, env.SteerParams{
			InflowU:  c.P0.X,
			Reynolds: c.P0.Y,
			Taper:    c.P0.Z,
		})
	case wire.CmdIsoGrab:
		s.env.GrabIso(user)
	case wire.CmdIsoRelease:
		s.env.ReleaseIso(user)
	case wire.CmdIsoSet:
		// Flag toggles the surface, Value is the iso level in speed
		// units. A NaN/Inf or out-of-envelope level is dropped before it
		// can poison the marching pass or bump the tool version.
		if !validIsoLevel(c.Value) {
			return
		}
		s.env.SetIso(user, env.IsoParams{Enabled: c.Flag != 0, Level: c.Value})
	case wire.CmdPlaneGrab:
		s.env.GrabPlane(user)
	case wire.CmdPlaneRelease:
		s.env.ReleasePlane(user)
	case wire.CmdPlaneMove:
		// Grab carries the slicing axis (0/1/2), Value the fractional
		// position along it. Out-of-range axes and non-finite or
		// out-of-[0,1] fractions are hostile input: drop the command.
		if c.Grab > 2 || !finite32(c.Value) || c.Value < 0 || c.Value > 1 {
			return
		}
		s.env.SetPlane(user, env.PlaneParams{Enabled: c.Flag != 0, Axis: c.Grab, Frac: c.Value})
	case wire.CmdVortexToggle:
		if !validVortexThreshold(c.Value) {
			return
		}
		s.env.SetVortex(user, env.VortexParams{Enabled: c.Flag != 0, Threshold: c.Value})
	}
}

// validSteerParams bounds the live flow parameters to a physically
// sane envelope: positive bounded inlet speed, a Reynolds number the
// explicit diffusion step can survive, a taper that neither vanishes
// the cylinder tip nor doubles the base. finite32 screens NaN/Inf
// before the comparisons (NaN fails every bound anyway, but be
// explicit).
func validSteerParams(inflow, reynolds, taper float32) bool {
	if !finite32(inflow) || !finite32(reynolds) || !finite32(taper) {
		return false
	}
	return inflow > 0 && inflow <= 100 &&
		reynolds >= 1 && reynolds <= 1e6 &&
		taper >= 0.05 && taper <= 2
}

// handleSteer returns the current steering status: the live flow
// parameters, the FCFS lock holder, and the change counter. Steering
// state deliberately rides its own procedure instead of FrameReply so
// frame byte streams (and the golden corpus) are untouched by the
// in-situ subsystem.
func (s *Server) handleSteer(_ *dlib.Ctx, _ []byte) ([]byte, error) {
	st := s.env.Steer()
	return wire.EncodeSteerStatus(wire.SteerStatus{
		InflowU:  st.Params.InflowU,
		Reynolds: st.Params.Reynolds,
		Taper:    st.Params.Taper,
		Holder:   st.Holder,
		Version:  st.Version,
	}), nil
}
