package server

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/netsim"
	"repro/internal/store"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// The shared-tool golden corpus: committed wire bytes for sessions
// that exercise the isosurface, cutting plane, and vortex-core tools
// in both codecs. The uniform testDataset gives the tools nothing to
// extract (constant speed, zero Q), so these scenarios run on
// toolDataset — same grid dimensions and bounds (the quantizer is
// unchanged) but a sheared, swirling field with real iso crossings and
// vortex tubes.
//
// Regenerate with:
//
//	go test ./internal/server/ -run 'TestGoldenToolFrames' -update

// toolDataset builds a resident dataset with spatial structure: a
// vertical shear plus a Gaussian swirl around the grid center whose
// amplitude grows per timestep, so iso/vortex extraction is non-empty
// and playback changes the geometry.
func toolDataset(t testing.TB, numSteps int) *store.Memory {
	t.Helper()
	g, err := grid.NewCartesian(16, 16, 8, vmath.AABB{
		Min: vmath.V3(0, 0, 0), Max: vmath.V3(15, 15, 7),
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := make([]*field.Field, numSteps)
	for s := range steps {
		f := field.NewField(16, 16, 8, field.GridCoords)
		amp := 1 + 0.1*float64(s)
		for k := 0; k < 8; k++ {
			for j := 0; j < 16; j++ {
				for i := 0; i < 16; i++ {
					dx := float64(i) - 7.5
					dy := float64(j) - 7.5
					swirl := amp * 0.4 * math.Exp(-(dx*dx+dy*dy)/18)
					n := f.Index(i, j, k)
					f.U[n] = float32(0.1*float64(j) - dy*swirl)
					f.V[n] = float32(dx * swirl)
					f.W[n] = 0.05
				}
			}
		}
		steps[s] = f
	}
	u, err := field.NewUnsteady(g, steps, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return store.NewMemory(u)
}

// goldenToolServer is goldenServer on the structured tool dataset.
func goldenToolServer(t *testing.T, budget time.Duration, unitNanos float64) *Server {
	t.Helper()
	s, err := New(Config{
		Store:  toolDataset(t, 4),
		Budget: budget,
		Clock:  netsim.NewManualClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.gov.unitNanos = unitNanos
	return s
}

// toolQuantizerOf rebuilds the quantizer a tool-scenario server
// negotiates (identical bounds to testDataset, but derived from the
// actual store to keep the tests honest).
func toolQuantizerOf(t *testing.T) wire.Quantizer {
	t.Helper()
	s, err := New(Config{Store: toolDataset(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	return s.datasetInfo().Quantizer()
}

// runToolScenarioV1 drives the scripted exchanges through direct v1
// sessions keyed by user id, creating each session at first use.
func runToolScenarioV1(t *testing.T, s *Server, script []toolExchange) [][]byte {
	t.Helper()
	sessions := map[int64]*directSession{}
	frames := make([][]byte, 0, len(script))
	for _, ex := range script {
		d := sessions[ex.user]
		if d == nil {
			d = newDirectSession(t, s, ex.user)
			sessions[ex.user] = d
		}
		frames = append(frames, d.rawFrame(ex.u))
	}
	return frames
}

// runToolScenarioV2 is runToolScenarioV1 over hello2-negotiated v2
// sessions.
func runToolScenarioV2(t *testing.T, s *Server, script []toolExchange) [][]byte {
	t.Helper()
	sessions := map[int64]*v2Session{}
	frames := make([][]byte, 0, len(script))
	for _, ex := range script {
		d := sessions[ex.user]
		if d == nil {
			d = newV2Session(t, s, ex.user)
			sessions[ex.user] = d
		}
		frames = append(frames, d.rawFrame(ex.u))
	}
	return frames
}

// toolExchange is one scripted frame: which user sends which update.
type toolExchange struct {
	user int64
	u    wire.ClientUpdate
}

// Tool scenario scripts, shared verbatim between the v1 and v2 corpus
// entries so the codecs are pinned against the same history.
var toolScripts = []struct {
	name   string
	script []toolExchange
}{
	{
		// Isosurface alongside a streamline rake: enable at one level,
		// hold two frames (whole-frame memo + tool memo), change the
		// level (recompute), disable (geometry drops out of the frame).
		name: "iso-steady",
		script: []toolExchange{
			{1, wire.ClientUpdate{Commands: []wire.Command{
				addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 8, 4), 4, integrate.ToolStreamline),
				{Kind: wire.CmdIsoSet, Flag: 1, Value: 0.8},
			}}},
			{1, wire.ClientUpdate{}},
			{1, wire.ClientUpdate{}},
			{1, wire.ClientUpdate{Commands: []wire.Command{{Kind: wire.CmdIsoSet, Flag: 1, Value: 0.6}}}},
			{1, wire.ClientUpdate{Commands: []wire.Command{{Kind: wire.CmdIsoSet, Flag: 0, Value: 0.6}}}},
		},
	},
	{
		// Cutting-plane FCFS: user 1 enables the plane, user 2 grabs and
		// drags it across two axes, user 1's rival move is silently
		// dropped while the lock is held, then user 2 releases and user
		// 1's move lands.
		name: "plane-grab",
		script: []toolExchange{
			{1, wire.ClientUpdate{Commands: []wire.Command{
				{Kind: wire.CmdPlaneMove, Flag: 1, Grab: 0, Value: 0.5},
			}}},
			{2, wire.ClientUpdate{Commands: []wire.Command{{Kind: wire.CmdPlaneGrab}}}},
			{2, wire.ClientUpdate{Commands: []wire.Command{
				{Kind: wire.CmdPlaneMove, Flag: 1, Grab: 1, Value: 0.25},
			}}},
			{1, wire.ClientUpdate{Commands: []wire.Command{
				{Kind: wire.CmdPlaneMove, Flag: 1, Grab: 2, Value: 0.75}, // rival: dropped
			}}},
			{2, wire.ClientUpdate{Commands: []wire.Command{{Kind: wire.CmdPlaneRelease}}}},
			{1, wire.ClientUpdate{Commands: []wire.Command{
				{Kind: wire.CmdPlaneMove, Flag: 1, Grab: 2, Value: 0.75},
			}}},
		},
	},
	{
		// Vortex cores under playback: enable the Q-criterion extractor,
		// let looping playback advance the step (per-step recompute of
		// the same tool version), then toggle it off.
		name: "vortex-cores",
		script: []toolExchange{
			{1, wire.ClientUpdate{Commands: []wire.Command{
				{Kind: wire.CmdVortexToggle, Flag: 1, Value: 0.01},
				{Kind: wire.CmdSetLoop, Flag: 1},
				{Kind: wire.CmdSetSpeed, Value: 1},
				{Kind: wire.CmdSetPlaying, Flag: 1},
			}}},
			{1, wire.ClientUpdate{}},
			{1, wire.ClientUpdate{}},
			{1, wire.ClientUpdate{Commands: []wire.Command{{Kind: wire.CmdVortexToggle, Flag: 0, Value: 0.01}}}},
		},
	},
}

func TestGoldenToolFrames(t *testing.T) {
	for _, sc := range toolScripts {
		t.Run(sc.name, func(t *testing.T) {
			frames := runToolScenarioV1(t, goldenToolServer(t, 0, 0), sc.script)
			assertToolPoints(t, frames)
			if *updateGolden {
				writeGolden(t, sc.name, frames)
				return
			}
			golden := readGolden(t, sc.name)
			compareFrames(t, "ungoverned", frames, golden)

			// Governed at a budget no frame can exceed: tool pricing and
			// the stride ladder must be a strict no-op, byte for byte.
			governed := runToolScenarioV1(t, goldenToolServer(t, time.Hour, 100), sc.script)
			compareFrames(t, "governed-at-infinite-budget", governed, golden)
		})
	}
}

func TestGoldenToolFramesV2(t *testing.T) {
	for _, sc := range toolScripts {
		name := "v2-" + sc.name
		t.Run(name, func(t *testing.T) {
			frames := runToolScenarioV2(t, goldenToolServer(t, 0, 0), sc.script)
			// Rerun determinism: the tool delta shadows leave no room for
			// incidental divergence.
			again := runToolScenarioV2(t, goldenToolServer(t, 0, 0), sc.script)
			compareFrames(t, "rerun", again, frames)
			// Every per-user stream must decode through one stateful
			// decoder; the multi-user scripts interleave users, so split
			// the frames back out by sender.
			decodeToolStreams(t, sc.script, frames)
			if *updateGolden {
				writeGolden(t, name, frames)
				return
			}
			golden := readGolden(t, name)
			compareFrames(t, "ungoverned", frames, golden)

			governed := runToolScenarioV2(t, goldenToolServer(t, time.Hour, 100), sc.script)
			compareFrames(t, "governed-at-infinite-budget", governed, golden)
		})
	}
}

// decodeToolStreams re-decodes each user's frame subsequence with its
// own stateful decoder and requires at least one frame with non-empty
// tool geometry — the corpus must pin real extraction, not empty
// sections.
func decodeToolStreams(t *testing.T, script []toolExchange, frames [][]byte) {
	t.Helper()
	decs := map[int64]*wire.FrameDecoder{}
	points := 0
	for i, ex := range script {
		dec := decs[ex.user]
		if dec == nil {
			dec = wire.NewFrameDecoder(toolQuantizerOf(t))
			decs[ex.user] = dec
		}
		r, err := dec.Decode(frames[i])
		if err != nil {
			t.Fatalf("frame %d (user %d) does not decode: %v", i, ex.user, err)
		}
		if r.Tools != nil {
			points += r.Tools.TotalPoints()
		}
	}
	if points == 0 {
		t.Fatal("no tool geometry decoded across the scenario")
	}
}

// assertToolPoints decodes v1 frames and requires non-empty tool
// geometry somewhere in the run.
func assertToolPoints(t *testing.T, frames [][]byte) {
	t.Helper()
	points := 0
	for i, f := range frames {
		r, err := wire.DecodeFrameReply(f)
		if err != nil {
			t.Fatalf("frame %d does not decode: %v", i, err)
		}
		if r.Tools != nil {
			points += r.Tools.TotalPoints()
		}
	}
	if points == 0 {
		t.Fatal("no tool geometry decoded across the scenario")
	}
}

// writeGolden / readGolden are the corpus I/O halves of the golden
// tests, shared by the tool scenarios.
func writeGolden(t *testing.T, name string, frames [][]byte) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(goldenPath(name)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath(name), encodeFrames(frames), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d frames", goldenPath(name), len(frames))
}

func readGolden(t *testing.T, name string) [][]byte {
	t.Helper()
	data, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	golden, err := decodeFrames(data)
	if err != nil {
		t.Fatal(err)
	}
	return golden
}
