package server

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/dlib"
	"repro/internal/integrate"
	"repro/internal/netsim"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// calibratedGovernor returns a governor with a hand-set ns/unit rate,
// so plan behavior is a pure function of the inputs (no wall clock).
func calibratedGovernor(budget time.Duration, unitNanos float64) *governor {
	g := newGovernor(budget, netsim.NewManualClock(), 4)
	g.unitNanos = unitNanos
	return g
}

// planReqs builds n streamline requests of the given shape; the first
// nHeld are marked held.
func planReqs(n, nHeld, seeds, steps int) []shedRequest {
	reqs := make([]shedRequest, n)
	for i := range reqs {
		reqs[i] = shedRequest{
			Units: int64(seeds) * int64(steps) * 9, // RK2 units/point
			Seeds: seeds,
			Steps: steps,
			Held:  i < nHeld,
		}
	}
	return reqs
}

// plannedUnits sums seeds x steps over the planned levels.
func plannedUnits(lvls []shedLevel) int64 {
	var u int64
	for _, l := range lvls {
		u += int64(l.Seeds) * int64(l.Steps)
	}
	return u
}

func TestPlanUncalibratedOrDisabledNeverSheds(t *testing.T) {
	reqs := planReqs(4, 0, 64, 200)
	for name, g := range map[string]*governor{
		"disabled":     calibratedGovernor(0, 100),
		"uncalibrated": newGovernor(time.Millisecond, netsim.NewManualClock(), 4),
	} {
		lvls := make([]shedLevel, len(reqs))
		_, shed := g.plan(reqs, lvls)
		if shed {
			t.Errorf("%s governor shed", name)
		}
		for i, l := range lvls {
			if l.Seeds != reqs[i].Seeds || l.Steps != reqs[i].Steps {
				t.Errorf("%s governor clamped req %d to %+v", name, i, l)
			}
		}
	}
}

func TestPlanUnderBudgetIsFullFidelity(t *testing.T) {
	// 4 rakes x 64 seeds x 200 steps x 9 units at 1ns/unit = ~0.46ms
	// predicted; a 100ms budget must pass everything through.
	g := calibratedGovernor(100*time.Millisecond, 1)
	reqs := planReqs(4, 2, 64, 200)
	lvls := make([]shedLevel, len(reqs))
	predicted, shed := g.plan(reqs, lvls)
	if shed {
		t.Error("under-budget plan shed")
	}
	if predicted <= 0 {
		t.Errorf("predicted = %v, want > 0", predicted)
	}
	for i, l := range lvls {
		if l.Seeds != 64 || l.Steps != 200 {
			t.Errorf("level %d = %+v, want full", i, l)
		}
	}
}

// TestPlanMonotoneInBudget is the core shedding property: over a
// budget x rake-count table, a tighter budget never yields more
// planned work, per rake or in total.
func TestPlanMonotoneInBudget(t *testing.T) {
	budgets := []time.Duration{
		10 * time.Microsecond, 50 * time.Microsecond, 200 * time.Microsecond,
		time.Millisecond, 5 * time.Millisecond, 50 * time.Millisecond,
	}
	for _, nRakes := range []int{1, 2, 4, 8, 16} {
		for _, nHeld := range []int{0, 1, nRakes / 2} {
			t.Run(fmt.Sprintf("rakes=%d held=%d", nRakes, nHeld), func(t *testing.T) {
				reqs := planReqs(nRakes, nHeld, 64, 200)
				var prevTotal int64 = -1
				prev := make([]shedLevel, nRakes)
				for bi, b := range budgets {
					g := calibratedGovernor(b, 50)
					lvls := make([]shedLevel, nRakes)
					g.plan(reqs, lvls)
					total := plannedUnits(lvls)
					if total < prevTotal {
						t.Errorf("budget %v planned %d units, tighter budget %v planned %d",
							b, total, budgets[bi-1], prevTotal)
					}
					for i := range lvls {
						if bi > 0 && int64(lvls[i].Seeds)*int64(lvls[i].Steps) <
							int64(prev[i].Seeds)*int64(prev[i].Steps) {
							t.Errorf("budget %v rake %d = %+v, below tighter budget's %+v",
								b, i, lvls[i], prev[i])
						}
					}
					prevTotal = total
					copy(prev, lvls)
				}
			})
		}
	}
}

// TestPlanNeverStarves pins the floors: even a hopeless budget leaves
// every rake at least one seed and the step floor.
func TestPlanNeverStarves(t *testing.T) {
	for _, steps := range []int{200, 8, 5} {
		g := calibratedGovernor(1, 1000) // 1ns budget, expensive units
		reqs := planReqs(16, 3, 64, steps)
		lvls := make([]shedLevel, len(reqs))
		_, shed := g.plan(reqs, lvls)
		if !shed {
			t.Fatalf("steps=%d: hopeless budget did not shed", steps)
		}
		wantSteps := minShedSteps
		if steps < wantSteps {
			wantSteps = steps
		}
		for i, l := range lvls {
			if l.Seeds < 1 {
				t.Errorf("steps=%d rake %d starved to %d seeds", steps, i, l.Seeds)
			}
			if l.Steps < wantSteps {
				t.Errorf("steps=%d rake %d below step floor: %d", steps, i, l.Steps)
			}
		}
	}
}

// TestPlanDeterministic: identical inputs, identical plan — across
// repeated calls and across separately constructed governors.
func TestPlanDeterministic(t *testing.T) {
	reqs := planReqs(8, 2, 48, 150)
	a := make([]shedLevel, len(reqs))
	b := make([]shedLevel, len(reqs))
	g1 := calibratedGovernor(500*time.Microsecond, 37.5)
	g2 := calibratedGovernor(500*time.Microsecond, 37.5)
	p1, s1 := g1.plan(reqs, a)
	p2, s2 := g2.plan(reqs, b)
	if p1 != p2 || s1 != s2 {
		t.Fatalf("plan outcomes differ: (%v,%v) vs (%v,%v)", p1, s1, p2, s2)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("level %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestPlanHeldRakesDegradeLast pins the FCFS priority: if any held
// rake lost fidelity, every free rake must already be at its floor.
func TestPlanHeldRakesDegradeLast(t *testing.T) {
	reqs := planReqs(6, 2, 64, 200)
	floor := shedOne(64, 200, 0)
	full := shedLevel{Seeds: 64, Steps: 200}
	// Sweep budgets from hopeless to roomy and check the invariant at
	// every point. (Full cost here is ~6.9ms at 10ns/unit; the held
	// class alone is ~2.3ms, so the sweep crosses every regime.)
	for b := time.Duration(1); b < 20*time.Millisecond; b *= 3 {
		g := calibratedGovernor(b, 10)
		lvls := make([]shedLevel, len(reqs))
		g.plan(reqs, lvls)
		heldShed := false
		for i, r := range reqs {
			if r.Held && lvls[i] != full {
				heldShed = true
			}
		}
		if heldShed {
			for i, r := range reqs {
				if !r.Held && lvls[i] != floor {
					t.Errorf("budget %v: held rake shed while free rake %d sits at %+v (floor %+v)",
						b, i, lvls[i], floor)
				}
			}
		}
	}
	// And a mid-range budget exists where free rakes shed but held
	// rakes keep full fidelity.
	seen := false
	for b := time.Duration(1); b < 20*time.Millisecond; b *= 2 {
		g := calibratedGovernor(b, 10)
		lvls := make([]shedLevel, len(reqs))
		_, shed := g.plan(reqs, lvls)
		heldFull := lvls[0] == full && lvls[1] == full
		freeShed := false
		for i := 2; i < len(lvls); i++ {
			if lvls[i] != full {
				freeShed = true
			}
		}
		if shed && heldFull && freeShed {
			seen = true
		}
	}
	if !seen {
		t.Error("no budget point shed free rakes while holding held rakes at full fidelity")
	}
}

// TestPlanFixedNeverClamped pins the streakline contract: stateful
// requests are priced but never shed, at any budget.
func TestPlanFixedNeverClamped(t *testing.T) {
	g := calibratedGovernor(1, 1000)
	reqs := planReqs(3, 0, 64, 200)
	reqs[1].Fixed = true
	lvls := make([]shedLevel, len(reqs))
	g.plan(reqs, lvls)
	if lvls[1].Seeds != 64 || lvls[1].Steps != 200 {
		t.Errorf("fixed request clamped to %+v", lvls[1])
	}
}

func TestDegradedByte(t *testing.T) {
	cases := []struct {
		actual, full int64
		want         uint8
		name         string
	}{
		{100, 100, 0, "full fidelity"},
		{0, 0, 0, "empty frame"},
		{120, 100, 0, "over-delivery clamps to 0"},
		{99, 100, 3, "tiny shed is visible"},
		{0, 100, 255, "everything shed"},
		{50, 100, 128, "half shed"},
	}
	for _, c := range cases {
		if got := degradedByte(c.actual, c.full); got != c.want {
			t.Errorf("%s: degradedByte(%d,%d) = %d, want %d",
				c.name, c.actual, c.full, got, c.want)
		}
	}
	// Monotone: less actual work never yields a smaller byte.
	var prev uint8
	for a := int64(100); a >= 0; a-- {
		got := degradedByte(a, 100)
		if got < prev {
			t.Fatalf("degradedByte(%d,100)=%d < degradedByte(%d,100)=%d", a, got, a+1, prev)
		}
		prev = got
	}
}

// directSession wraps the no-transport handleFrame pattern: call the
// handler with a fixed session ctx and settle the reply hook.
type directSession struct {
	t   *testing.T
	s   *Server
	ctx *dlib.Ctx
}

func newDirectSession(t *testing.T, s *Server, id int64) *directSession {
	return &directSession{t: t, s: s, ctx: &dlib.Ctx{Session: &dlib.Session{ID: id}}}
}

func (d *directSession) frame(u wire.ClientUpdate) wire.FrameReply {
	d.t.Helper()
	out, err := d.s.handleFrame(d.ctx, wire.EncodeClientUpdate(u))
	d.ctx.FinishReply()
	if err != nil {
		d.t.Fatal(err)
	}
	r, err := wire.DecodeFrameReply(out)
	if err != nil {
		d.t.Fatal(err)
	}
	return r
}

func (d *directSession) rawFrame(u wire.ClientUpdate) []byte {
	d.t.Helper()
	out, err := d.s.handleFrame(d.ctx, wire.EncodeClientUpdate(u))
	d.ctx.FinishReply()
	if err != nil {
		d.t.Fatal(err)
	}
	return bytes.Clone(out)
}

// govScenario builds a playing 4-rake scene on a ManualClock server
// and hand-calibrates the governor (the ManualClock freezes the EWMA,
// so the injected rate is the rate for the whole run).
func govScenario(t *testing.T, budget time.Duration, unitNanos float64) (*Server, *directSession) {
	t.Helper()
	s, err := New(Config{
		Store:  testDataset(t, 4),
		Budget: budget,
		Clock:  netsim.NewManualClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.gov.unitNanos = unitNanos
	d := newDirectSession(t, s, 1)
	d.frame(wire.ClientUpdate{Commands: []wire.Command{
		addRakeCmd(vmath.V3(1, 3, 4), vmath.V3(1, 5, 4), 32, integrate.ToolStreamline),
		addRakeCmd(vmath.V3(1, 6, 4), vmath.V3(1, 8, 4), 32, integrate.ToolStreamline),
		addRakeCmd(vmath.V3(1, 9, 4), vmath.V3(1, 11, 4), 32, integrate.ToolStreamline),
		addRakeCmd(vmath.V3(1, 12, 4), vmath.V3(1, 14, 4), 32, integrate.ToolStreamline),
		{Kind: wire.CmdSetLoop, Flag: 1},
		{Kind: wire.CmdSetSpeed, Value: 1},
		{Kind: wire.CmdSetPlaying, Flag: 1},
	}})
	return s, d
}

// TestGovernorShedsUnderOverloadAndRecovers drives the whole loop:
// playback keeps every rake dirty, an expensive calibration overloads
// the budget, frames go out degraded with fewer points — then playback
// stops, the governor admits upgrades, and the scene recovers to full
// fidelity, byte-for-byte equal to an ungoverned server's steady frame.
func TestGovernorShedsUnderOverloadAndRecovers(t *testing.T) {
	// Ungoverned reference for the full-fidelity point count.
	_, refSess := govScenario(t, 0, 0)
	refReply := refSess.frame(wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdSetPlaying, Flag: 0},
	}})
	fullPoints := refReply.TotalPoints()
	if fullPoints == 0 {
		t.Fatal("reference scene has no geometry")
	}

	// Governed server: 4 rakes x 32 seeds x 200 steps x 9 units x
	// 100ns/unit predicts ~23ms per frame; a 2ms budget overloads it.
	s, d := govScenario(t, 2*time.Millisecond, 100)
	shedReply := d.frame(wire.ClientUpdate{})
	if shedReply.Degraded == 0 {
		t.Fatal("overloaded frame not marked degraded")
	}
	if got := shedReply.TotalPoints(); got >= fullPoints {
		t.Errorf("degraded frame ships %d points, ungoverned ships %d", got, fullPoints)
	}
	if st := s.Stats(); st.FramesShed == 0 {
		t.Errorf("FramesShed not counted: %+v", st)
	}

	// Load drops: playback stops, rakes go clean. The governor must
	// walk the scene back to full fidelity within a bounded number of
	// rounds (one forced upgrade per idle round at worst).
	r := d.frame(wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdSetPlaying, Flag: 0},
	}})
	for i := 0; i < 16 && r.Degraded != 0; i++ {
		r = d.frame(wire.ClientUpdate{})
	}
	if r.Degraded != 0 {
		t.Fatalf("scene still degraded (byte %d) after recovery rounds", r.Degraded)
	}
	if got := r.TotalPoints(); got != fullPoints {
		t.Errorf("recovered frame ships %d points, want full %d", got, fullPoints)
	}
}

// TestGovernorShedMonotoneAcrossBudgets checks the server-level
// monotonicity: the same overloaded scene under a tighter budget never
// ships more points.
func TestGovernorShedMonotoneAcrossBudgets(t *testing.T) {
	budgets := []time.Duration{
		500 * time.Microsecond, time.Millisecond, 2 * time.Millisecond,
		5 * time.Millisecond, 30 * time.Millisecond,
	}
	var prev int
	for i, b := range budgets {
		_, d := govScenario(t, b, 100)
		r := d.frame(wire.ClientUpdate{})
		got := r.TotalPoints()
		if i > 0 && got < prev {
			t.Errorf("budget %v ships %d points, tighter %v shipped %d",
				b, got, budgets[i-1], prev)
		}
		prev = got
	}
}

// TestGovernorDeterministicAcrossRuns: two identical governed runs on
// ManualClocks produce byte-identical frame sequences — shed decisions
// included (nanos are zero under a ManualClock, and Round sequences
// match, so full byte equality holds).
func TestGovernorDeterministicAcrossRuns(t *testing.T) {
	run := func() [][]byte {
		_, d := govScenario(t, 2*time.Millisecond, 100)
		var frames [][]byte
		for i := 0; i < 10; i++ {
			frames = append(frames, d.rawFrame(wire.ClientUpdate{}))
		}
		frames = append(frames, d.rawFrame(wire.ClientUpdate{Commands: []wire.Command{
			{Kind: wire.CmdSetPlaying, Flag: 0},
		}}))
		for i := 0; i < 6; i++ {
			frames = append(frames, d.rawFrame(wire.ClientUpdate{}))
		}
		return frames
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("frame counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("governed frame %d differs between identical runs", i)
		}
	}
}

// TestGovernorNeverStarvesServer: even a 1ns budget ships geometry for
// every rake, every frame.
func TestGovernorNeverStarvesServer(t *testing.T) {
	_, d := govScenario(t, 1, 1000)
	for i := 0; i < 5; i++ {
		r := d.frame(wire.ClientUpdate{})
		if len(r.Geometry) != 4 {
			t.Fatalf("frame %d ships %d geometries, want 4", i, len(r.Geometry))
		}
		for _, g := range r.Geometry {
			if g.NumPoints() == 0 {
				t.Fatalf("frame %d rake %d starved to zero points", i, g.Rake)
			}
		}
		if r.Degraded == 0 {
			t.Errorf("frame %d under a 1ns budget not marked degraded", i)
		}
	}
}

// TestGovernorHeldRakeKeepsFidelity: under partial overload the
// FCFS-grabbed rake keeps more of its work than free rakes.
func TestGovernorHeldRakeKeepsFidelity(t *testing.T) {
	// Budget sized so the held class fits whole but the free class
	// must shed: full cost ~23ms, one rake ~5.76ms at 100ns/unit.
	_, d := govScenario(t, 7*time.Millisecond, 100)
	r := d.frame(wire.ClientUpdate{})
	grab := wire.Command{Kind: wire.CmdGrab, Rake: r.Rakes[0].ID, Grab: uint8(integrate.GrabCenter)}
	r = d.frame(wire.ClientUpdate{Commands: []wire.Command{grab}})
	if r.Degraded == 0 {
		t.Fatal("partially overloaded frame not degraded")
	}
	var heldPts, freeMax int
	for _, g := range r.Geometry {
		if g.Rake == r.Rakes[0].ID {
			heldPts = g.NumPoints()
		} else if n := g.NumPoints(); n > freeMax {
			freeMax = n
		}
	}
	if heldPts <= freeMax {
		t.Errorf("held rake ships %d points, free rakes up to %d — held must degrade last",
			heldPts, freeMax)
	}
}
