// Chaos suite for the shared tools: the per-tool FCFS locks must obey
// the same rules as rake and steering locks under connection death —
// however a holder dies, its locks come free for the next workstation;
// a live holder's lock never loosens because someone else's connection
// failed — and a tool parameter change must land in the environment as
// one atomic record or not at all, whatever the network does around
// it, including through a relay hop.
package server

import (
	"net"
	"testing"
	"time"

	"repro/internal/dlib"
	"repro/internal/env"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// isoUpdate grabs the isosurface lock and sets its parameters in one
// round.
func isoUpdate(level float32) wire.ClientUpdate {
	return wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdIsoGrab},
		{Kind: wire.CmdIsoSet, Flag: 1, Value: level},
	}}
}

// planeUpdate grabs the cutting-plane lock and moves it in one round.
func planeUpdate(axis uint8, frac float32) wire.ClientUpdate {
	return wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdPlaneGrab},
		{Kind: wire.CmdPlaneMove, Flag: 1, Grab: axis, Value: frac},
	}}
}

// waitToolsFree polls until no shared tool has a holder.
func waitToolsFree(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ts := s.Env().Tools()
		if ts.Iso.Holder == 0 && ts.Plane.Holder == 0 && ts.Vortex.Holder == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	ts := s.Env().Tools()
	t.Fatalf("tools still held: iso=%d plane=%d vortex=%d",
		ts.Iso.Holder, ts.Plane.Holder, ts.Vortex.Holder)
}

// TestChaosKilledIsoHolderReleasesLock: a workstation killed while
// holding the isosurface lock (socket torn down, no goodbye) releases
// it, and a second workstation takes the tool over FCFS.
func TestChaosKilledIsoHolderReleasesLock(t *testing.T) {
	s, c1, addr := startTestServer(t, Config{Store: toolDataset(t, 4)})

	frame(t, c1, isoUpdate(0.8))
	ts := s.Env().Tools()
	if ts.Iso.Holder == 0 || !ts.Iso.Params.Enabled || ts.Iso.Params.Level != 0.8 {
		t.Fatalf("iso grab did not take: %+v", ts.Iso)
	}
	holder1 := ts.Iso.Holder

	// Kill the holder abruptly.
	c1.Close()
	waitToolsFree(t, s)

	// FCFS: a second workstation walks up and re-levels the surface.
	c2, err := dlib.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	frame(t, c2, isoUpdate(0.6))
	ts = s.Env().Tools()
	if ts.Iso.Holder == 0 || ts.Iso.Holder == holder1 {
		t.Fatalf("second workstation could not take over the isosurface: %+v (first holder %d)",
			ts.Iso, holder1)
	}
	if ts.Iso.Params.Level != 0.6 {
		t.Fatalf("takeover level: %+v", ts.Iso.Params)
	}
}

// TestChaosHeldPlaneStaysHeld: faults on other sessions must not
// loosen a live holder's plane lock — the rival's grab bounces, its
// move is dropped, and its death changes nothing.
func TestChaosHeldPlaneStaysHeld(t *testing.T) {
	s, c1, addr := startTestServer(t, Config{Store: toolDataset(t, 4)})
	frame(t, c1, planeUpdate(0, 0.5))
	holder := s.Env().Tools().Plane.Holder
	if holder == 0 {
		t.Fatal("plane grab did not take")
	}

	// A rival grabs, fails (FCFS), then dies by close.
	c2, err := dlib.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	frame(t, c2, planeUpdate(2, 0.9))
	if ts := s.Env().Tools(); ts.Plane.Holder != holder || ts.Plane.Params.Axis != 0 || ts.Plane.Params.Frac != 0.5 {
		t.Fatalf("rival stole the held plane: %+v", ts.Plane)
	}
	c2.Close()

	time.Sleep(20 * time.Millisecond)
	if ts := s.Env().Tools(); ts.Plane.Holder != holder {
		t.Fatalf("holder lost the plane after rival disconnect: %+v", ts.Plane)
	}
	// The holder is still live and still in control.
	frame(t, c1, planeUpdate(1, 0.25))
	if p := s.Env().Tools().Plane.Params; p.Axis != 1 || p.Frac != 0.25 {
		t.Fatalf("holder's move after rival death did not land: %+v", p)
	}
}

// TestChaosResetDuringToolsNeverTears sweeps a scripted connection
// reset across every op of a frame exchange that enables all three
// tools at once. Whatever instant the connection dies, each tool's
// parameters are either the construction defaults or exactly the sent
// record (never a mix of fields), every lock comes free, and a fresh
// session takes the tools over FCFS.
func TestChaosResetDuringToolsNeverTears(t *testing.T) {
	sentIso := env.IsoParams{Enabled: true, Level: 0.8}
	sentPlane := env.PlaneParams{Enabled: true, Axis: 1, Frac: 0.25}
	sentVortex := env.VortexParams{Enabled: true, Threshold: 0.01}

	for atOp := 1; atOp <= 8; atOp++ {
		s, err := New(Config{Store: toolDataset(t, 4)})
		if err != nil {
			t.Fatal(err)
		}
		a, b := net.Pipe()
		plan := &netsim.FaultPlan{Faults: []netsim.Fault{
			{Kind: netsim.FaultReset, AtOp: atOp},
		}}
		go s.Dlib().ServeConn(plan.Wrap(b))
		c1 := dlib.NewClient(a)
		c1.Timeout = 2 * time.Second

		// The tool frame may or may not survive the scripted reset;
		// either way is a legal outcome.
		func() {
			defer func() { recover() }()
			c1.Call(wire.ProcFrame, wire.EncodeClientUpdate(wire.ClientUpdate{
				Commands: []wire.Command{
					{Kind: wire.CmdIsoGrab},
					{Kind: wire.CmdIsoSet, Flag: 1, Value: 0.8},
					{Kind: wire.CmdPlaneGrab},
					{Kind: wire.CmdPlaneMove, Flag: 1, Grab: 1, Value: 0.25},
					{Kind: wire.CmdVortexToggle, Flag: 1, Value: 0.01},
				},
			}))
		}()
		c1.Close()

		// Atomicity at the environment: defaults or the full record,
		// per tool.
		ts := s.Env().Tools()
		if p := ts.Iso.Params; p != (env.IsoParams{}) && p != sentIso {
			t.Fatalf("atOp %d: torn iso params %+v", atOp, p)
		}
		if p := ts.Plane.Params; p != (env.PlaneParams{}) && p != sentPlane {
			t.Fatalf("atOp %d: torn plane params %+v", atOp, p)
		}
		if p := ts.Vortex.Params; p != (env.VortexParams{}) && p != sentVortex {
			t.Fatalf("atOp %d: torn vortex params %+v", atOp, p)
		}
		// However the exchange died, every lock must come free.
		waitToolsFree(t, s)

		// FCFS recovery: a fresh session re-takes all three tools.
		d := newDirectSession(t, s, 99)
		d.frame(wire.ClientUpdate{Commands: []wire.Command{
			{Kind: wire.CmdIsoGrab},
			{Kind: wire.CmdIsoSet, Flag: 1, Value: 0.5},
			{Kind: wire.CmdPlaneGrab},
			{Kind: wire.CmdPlaneMove, Flag: 1, Grab: 2, Value: 0.75},
			{Kind: wire.CmdVortexToggle, Flag: 1, Value: 0.02},
		}})
		ts = s.Env().Tools()
		if ts.Iso.Holder != 99 || ts.Plane.Holder != 99 {
			t.Fatalf("atOp %d: takeover did not hold the locks: iso=%d plane=%d",
				atOp, ts.Iso.Holder, ts.Plane.Holder)
		}
		if ts.Iso.Params.Level != 0.5 || ts.Plane.Params.Frac != 0.75 || ts.Vortex.Params.Threshold != 0.02 {
			t.Fatalf("atOp %d: takeover params did not land: %+v", atOp, ts)
		}
		s.Dlib().Close()
	}
}

// TestChaosToolLockReleasesAcrossRelay: a workstation holding tool
// locks through a relay hop dies; the relay tears down the upstream
// session and the origin frees the locks — disconnect semantics must
// survive the cluster tier.
func TestChaosToolLockReleasesAcrossRelay(t *testing.T) {
	origin := goldenToolServer(t, 0, 0)
	_, dial := startRelayNode(t, serveDial(origin.Dlib(), netsim.Link{}))

	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	c1 := dlib.NewClient(conn)
	if _, err := c1.Call(wire.ProcFrame, wire.EncodeClientUpdate(isoUpdate(0.8))); err != nil {
		t.Fatal(err)
	}
	if h := origin.Env().Tools().Iso.Holder; h == 0 {
		t.Fatal("iso grab through the relay did not take at the origin")
	}

	// Kill the downstream connection; the release must propagate
	// through the relay to the origin's environment.
	c1.Close()
	waitToolsFree(t, origin)

	// A fresh workstation through the same relay takes over FCFS.
	conn2, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	c2 := dlib.NewClient(conn2)
	defer c2.Close()
	if _, err := c2.Call(wire.ProcFrame, wire.EncodeClientUpdate(isoUpdate(0.6))); err != nil {
		t.Fatal(err)
	}
	ts := origin.Env().Tools()
	if ts.Iso.Holder == 0 || ts.Iso.Params.Level != 0.6 {
		t.Fatalf("takeover through the relay did not land: %+v", ts.Iso)
	}
}
