package server

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/compute"
	"repro/internal/dlib"
	"repro/internal/integrate"
	"repro/internal/vmath"
	"repro/internal/vr"
	"repro/internal/wire"
)

// countingEngine counts geometry computations per tool, to observe the
// dirty-rake memoization from outside.
type countingEngine struct {
	inner       compute.Engine
	streamlines atomic.Int64
	paths       atomic.Int64
}

func (e *countingEngine) Name() string { return "counting" }
func (e *countingEngine) Workers() int { return e.inner.Workers() }

func (e *countingEngine) Streamlines(s integrate.Sampler, seeds []vmath.Vec3, t float32, o integrate.Options) ([][]vmath.Vec3, compute.Stats) {
	e.streamlines.Add(1)
	return e.inner.Streamlines(s, seeds, t, o)
}

func (e *countingEngine) ParticlePaths(s integrate.Sampler, seeds []vmath.Vec3, t0, maxTime float32, o integrate.Options) ([][]vmath.Vec3, compute.Stats) {
	e.paths.Add(1)
	return e.inner.ParticlePaths(s, seeds, t0, maxTime, o)
}

func addRakeCmd(p0, p1 vmath.Vec3, seeds uint32, tool integrate.ToolKind) wire.Command {
	return wire.Command{Kind: wire.CmdAddRake, P0: p0, P1: p1, NumSeeds: seeds, Tool: uint8(tool)}
}

// TestMemoizationSkipsCleanRakes pins the tentpole invariant: a
// steady-state frame with N unchanged streamline rakes recomputes no
// rake at all, and moving one rake recomputes exactly that rake.
func TestMemoizationSkipsCleanRakes(t *testing.T) {
	eng := &countingEngine{inner: compute.Scalar{}}
	s, c, _ := startTestServer(t, Config{Store: testDataset(t, 4), Engine: eng})
	r := frame(t, c, wire.ClientUpdate{Commands: []wire.Command{
		addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 6, 4), 3, integrate.ToolStreamline),
		addRakeCmd(vmath.V3(1, 8, 4), vmath.V3(1, 10, 4), 3, integrate.ToolStreamline),
		addRakeCmd(vmath.V3(1, 11, 4), vmath.V3(1, 13, 4), 3, integrate.ToolStreamline),
	}})
	if len(r.Rakes) != 3 {
		t.Fatalf("rakes = %d", len(r.Rakes))
	}
	if got := eng.streamlines.Load(); got != 3 {
		t.Fatalf("first frame computed %d rakes, want 3", got)
	}

	// Steady frames (paused playback, no commands, same pose): every
	// rake input is unchanged, so the engine must not be called.
	for i := 0; i < 5; i++ {
		frame(t, c, wire.ClientUpdate{})
	}
	if got := eng.streamlines.Load(); got != 3 {
		t.Errorf("steady frames recomputed: %d engine calls, want 3", got)
	}
	st := s.Stats()
	if st.FramesReused == 0 {
		t.Errorf("no whole-frame reuse recorded: %+v", st)
	}

	// Moving one rake dirties only that rake.
	id := r.Rakes[1].ID
	frame(t, c, wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdGrab, Rake: id, Grab: uint8(integrate.GrabCenter)},
	}})
	grabCalls := eng.streamlines.Load() // grab changes holder, not geometry inputs
	frame(t, c, wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdMove, Rake: id, Pos: vmath.V3(2, 9, 4)},
	}})
	if got := eng.streamlines.Load(); got != grabCalls+1 {
		t.Errorf("move-one recomputed %d rakes, want 1", got-grabCalls)
	}
	st = s.Stats()
	if st.RakesReused == 0 {
		t.Errorf("no per-rake reuse recorded: %+v", st)
	}
}

// rawFrame runs ProcFrame and returns the encoded reply bytes.
func rawFrame(t *testing.T, c *dlib.Client, u wire.ClientUpdate) []byte {
	t.Helper()
	out, err := c.Call(wire.ProcFrame, wire.EncodeClientUpdate(u))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// stripNanos zeroes the ComputeNanos/LoadNanos/Round span (bytes
// [14,38) of the reply: after the 14-byte time status) — the only
// per-round volatile content in a FrameReply. Nanos are wall-clock;
// Round is the recompute counter, which by design differs between two
// separate recomputes of identical inputs.
func stripNanos(t *testing.T, b []byte) []byte {
	t.Helper()
	if len(b) < 38 {
		t.Fatalf("reply too short: %d bytes", len(b))
	}
	out := bytes.Clone(b)
	for i := 14; i < 38; i++ {
		out[i] = 0
	}
	return out
}

// TestFrameBytesDeterministic pins byte-level determinism: identical
// frames encode byte-identically, both on the whole-frame memo path
// (exact equality) and across full recomputes with identical inputs
// (equality outside the wall-clock nanos span). This depends on
// reply.Users being sorted — map-ordered users made encodes flap.
func TestFrameBytesDeterministic(t *testing.T) {
	s, c, addr := startTestServer(t, Config{Store: testDataset(t, 4)})
	c2, err := dlib.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	pose := wire.ClientUpdate{Hand: vmath.V3(1, 2, 3)}
	rawFrame(t, c, wire.ClientUpdate{Commands: []wire.Command{
		addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 12, 4), 4, integrate.ToolStreamline),
	}})
	// Second user joins so the Users list has two entries to order.
	rawFrame(t, c2, wire.ClientUpdate{})

	// Steady frames: served from the whole-frame memo, byte-identical
	// including the nanos.
	a := rawFrame(t, c, pose)
	b := rawFrame(t, c, pose)
	if !bytes.Equal(a, b) {
		t.Error("steady frames differ")
	}

	// Alternating poses force full recomputes; the two frames with
	// pose P have identical inputs and must encode identically outside
	// the nanos span.
	other := wire.ClientUpdate{Hand: vmath.V3(9, 9, 9)}
	p1 := rawFrame(t, c, pose)
	rawFrame(t, c, other)
	p2 := rawFrame(t, c, pose)
	if bytes.Equal(p1, p2) {
		// Same bytes means the recompute was skipped; the point is to
		// compare recomputed encodes, so flag a broken premise.
		t.Log("note: recomputed frames were identical including nanos")
	}
	if !bytes.Equal(stripNanos(t, p1), stripNanos(t, p2)) {
		t.Error("recomputed frames with identical inputs differ beyond nanos")
	}

	// Encode-once fan-out: a second session served within the same
	// round receives exactly the bytes the first session got — nanos
	// and round counter included — and no second encode happens.
	encodedBefore := s.Stats().FramesEncoded
	// A fresh pose forces a true recompute (same pose would serve the
	// whole-frame memo without encoding).
	f1 := rawFrame(t, c, wire.ClientUpdate{Hand: vmath.V3(7, 7, 7)})
	f2 := rawFrame(t, c2, wire.ClientUpdate{Hand: vmath.V3(5, 5, 5)}) // joins that round
	if !bytes.Equal(f1, f2) {
		t.Error("two sessions in one round got different payloads")
	}
	if got := s.Stats().FramesEncoded - encodedBefore; got != 1 {
		t.Errorf("round fan-out encoded %d times, want 1", got)
	}
	r1, err := wire.DecodeFrameReply(f1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := wire.DecodeFrameReply(f2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Round != r2.Round {
		t.Errorf("rounds differ: %d vs %d", r1.Round, r2.Round)
	}
	// And once c2 consumes its own next frame, the round advances for
	// it — the Round counter is strictly increasing across recomputes.
	f3 := rawFrame(t, c2, wire.ClientUpdate{Hand: vmath.V3(6, 6, 6)})
	r3, err := wire.DecodeFrameReply(f3)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Round <= r2.Round {
		t.Errorf("round did not advance: %d then %d", r2.Round, r3.Round)
	}
}

// TestFrameBytesDeterministicGloveInput extends the byte-identity
// invariant to the full input path: two servers driven by same-seed
// scripted users (noisy glove fibers, noisy Polhemus tracker, boom
// head sweep) see identical sensed poses — all device noise comes from
// injected seeded streams, never the global math/rand — and therefore
// encode every frame byte-identically outside the nanos span.
func TestFrameBytesDeterministicGloveInput(t *testing.T) {
	run := func() [][]byte {
		_, c, _ := startTestServer(t, Config{Store: testDataset(t, 4)})
		u, err := vr.NewScriptedUser(42)
		if err != nil {
			t.Fatal(err)
		}
		var frames [][]byte
		for i := 0; i < 30; i++ {
			p := u.Step()
			upd := wire.ClientUpdate{Head: p.Head, Hand: p.Hand, Gesture: uint8(p.Gesture)}
			if i == 0 {
				upd.Commands = []wire.Command{
					addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 12, 4), 4, integrate.ToolStreamline),
				}
			}
			frames = append(frames, stripNanos(t, rawFrame(t, c, upd)))
		}
		return frames
	}
	a, b := run(), run()
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("glove-driven frame %d differs between same-seed runs", i)
		}
	}
}

// TestSeedCountClamped pins the server-side clamp: a hostile seed
// count cannot make the server integrate an unbounded workload.
func TestSeedCountClamped(t *testing.T) {
	_, c, _ := startTestServer(t, Config{Store: testDataset(t, 2), MaxSeedsPerRake: 8})
	r := frame(t, c, wire.ClientUpdate{Commands: []wire.Command{
		addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 12, 4), 4_000_000_000, integrate.ToolStreamline),
	}})
	if len(r.Rakes) != 1 || r.Rakes[0].NumSeeds != 8 {
		t.Fatalf("rake seeds = %+v, want clamp to 8", r.Rakes)
	}
	if got := len(r.Geometry[0].Lines); got != 8 {
		t.Errorf("geometry lines = %d, want 8", got)
	}
	// CmdSetSeeds goes through the same clamp.
	r = frame(t, c, wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdSetSeeds, Rake: r.Rakes[0].ID, NumSeeds: 100},
	}})
	if r.Rakes[0].NumSeeds != 8 {
		t.Errorf("SetSeeds escaped the clamp: %d", r.Rakes[0].NumSeeds)
	}
}

// TestPrefetchSkipsAtBoundary pins the boundary fix: non-loop playback
// sitting at the last timestep must not issue out-of-range prefetches.
func TestPrefetchSkipsAtBoundary(t *testing.T) {
	s, c, _ := startTestServer(t, Config{Store: testDataset(t, 3), Prefetch: true})
	frame(t, c, wire.ClientUpdate{Commands: []wire.Command{
		addRakeCmd(vmath.V3(1, 8, 4), vmath.V3(1, 10, 4), 2, integrate.ToolStreamline),
		{Kind: wire.CmdSetPlaying, Flag: 1},
		{Kind: wire.CmdSetSpeed, Value: 1},
		{Kind: wire.CmdSetLoop, Flag: 0},
	}})
	// Play past the end: time clamps at the last step.
	for i := 0; i < 6; i++ {
		frame(t, c, wire.ClientUpdate{})
	}
	r := frame(t, c, wire.ClientUpdate{})
	if want := float32(2); r.Time.Current != want {
		t.Fatalf("time = %v, want clamped at %v", r.Time.Current, want)
	}
	issued := s.prefetcher.Stats().Issued
	// More boundary frames, forced to recompute (pose changes) so the
	// prefetch branch actually runs with next == NumSteps.
	for i := 0; i < 4; i++ {
		frame(t, c, wire.ClientUpdate{Hand: vmath.V3(float32(i), 0, 0)})
	}
	if got := s.prefetcher.Stats().Issued; got != issued {
		t.Errorf("boundary frames issued %d prefetches", got-issued)
	}
	// All issued prefetches were in range.
	if issued > 3 {
		t.Errorf("issued %d prefetches for a 3-step dataset", issued)
	}
}

// TestPointsShippedDefinition pins Stats.Points to the §5.3 quantity:
// exactly the points that go on the wire, for every tool identically.
func TestPointsShippedDefinition(t *testing.T) {
	for _, tool := range []integrate.ToolKind{
		integrate.ToolStreamline, integrate.ToolParticlePath, integrate.ToolStreakline,
	} {
		t.Run(tool.String(), func(t *testing.T) {
			s, c, _ := startTestServer(t, Config{Store: testDataset(t, 8)})
			r := frame(t, c, wire.ClientUpdate{Commands: []wire.Command{
				addRakeCmd(vmath.V3(1, 6, 4), vmath.V3(1, 10, 4), 3, tool),
			}})
			if got, want := s.Stats().Points, int64(r.TotalPoints()); got != want {
				t.Errorf("Stats.Points = %d, reply ships %d", got, want)
			}
			before := s.Stats().Points
			r = frame(t, c, wire.ClientUpdate{})
			if got, want := s.Stats().Points-before, int64(r.TotalPoints()); got != want {
				t.Errorf("second round Points delta = %d, reply ships %d", got, want)
			}
		})
	}
}

// TestSteadyFrameAllocs pins the allocation budget: once rakes exist
// and playback is paused, a frame must run in near-zero steady-state
// allocation (the whole-frame memo path), and the head-tracked regime
// (pose changes every frame, rakes clean) must stay within a small
// fixed budget.
func TestSteadyFrameAllocs(t *testing.T) {
	s, err := New(Config{Store: testDataset(t, 4)})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &dlib.Ctx{Session: &dlib.Session{ID: 1}}
	// Calling handleFrame directly (no dlib dispatch) takes on the
	// transport's obligation: settle the reply-release hook after
	// "sending", or round buffers pile up references and never recycle.
	call := func(payload []byte) error {
		_, err := s.handleFrame(ctx, payload)
		ctx.FinishReply()
		return err
	}
	add := wire.EncodeClientUpdate(wire.ClientUpdate{Commands: []wire.Command{
		addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 12, 4), 8, integrate.ToolStreamline),
		addRakeCmd(vmath.V3(2, 4, 4), vmath.V3(2, 12, 4), 8, integrate.ToolStreamline),
	}})
	if err := call(add); err != nil {
		t.Fatal(err)
	}
	steady := wire.EncodeClientUpdate(wire.ClientUpdate{})
	// Warm the scratch buffers.
	for i := 0; i < 3; i++ {
		if err := call(steady); err != nil {
			t.Fatal(err)
		}
	}
	if got := testing.AllocsPerRun(100, func() {
		if err := call(steady); err != nil {
			t.Fatal(err)
		}
	}); got > 4 {
		t.Errorf("steady frame allocates %.0f times, budget 4", got)
	}

	// Head-tracked: pose differs every frame, forcing re-encode but no
	// rake recompute. Alternate two poses so every run recomputes.
	poseA := wire.EncodeClientUpdate(wire.ClientUpdate{Hand: vmath.V3(1, 0, 0)})
	poseB := wire.EncodeClientUpdate(wire.ClientUpdate{Hand: vmath.V3(2, 0, 0)})
	flip := false
	for i := 0; i < 4; i++ {
		p := poseA
		if flip {
			p = poseB
		}
		flip = !flip
		if err := call(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := testing.AllocsPerRun(100, func() {
		p := poseA
		if flip {
			p = poseB
		}
		flip = !flip
		if err := call(p); err != nil {
			t.Fatal(err)
		}
	}); got > 16 {
		t.Errorf("head-tracked frame allocates %.0f times, budget 16", got)
	}
}

// TestConcurrentFramesAndStats is the -race regression for the
// parallel rake pipeline: several clients hammer multi-rake frames
// (forcing concurrent recomputes) while other goroutines read Stats
// and the recorder.
func TestConcurrentFramesAndStats(t *testing.T) {
	s, c0, addr := startTestServer(t, Config{Store: testDataset(t, 6), RakeWorkers: 4})
	frame(t, c0, wire.ClientUpdate{Commands: []wire.Command{
		addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 6, 4), 4, integrate.ToolStreamline),
		addRakeCmd(vmath.V3(1, 7, 4), vmath.V3(1, 9, 4), 4, integrate.ToolStreamline),
		addRakeCmd(vmath.V3(1, 10, 4), vmath.V3(1, 12, 4), 4, integrate.ToolParticlePath),
		addRakeCmd(vmath.V3(1, 12, 4), vmath.V3(1, 14, 4), 4, integrate.ToolStreakline),
		{Kind: wire.CmdSetPlaying, Flag: 1},
		{Kind: wire.CmdSetLoop, Flag: 1},
	}})

	var readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = s.Stats()
					_ = s.Recorder().Snapshot()
				}
			}
		}()
	}
	const clients, frames = 3, 15
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := dlib.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < frames; i++ {
				u := wire.ClientUpdate{Hand: vmath.V3(float32(g), float32(i), 0)}
				out, err := c.Call(wire.ProcFrame, wire.EncodeClientUpdate(u))
				if err != nil {
					t.Errorf("client %d frame %d: %v", g, i, err)
					return
				}
				if _, err := wire.DecodeFrameReply(out); err != nil {
					t.Errorf("client %d frame %d decode: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if st := s.Stats(); st.Frames == 0 || st.RakesComputed == 0 {
		t.Errorf("stats did not accumulate: %+v", st)
	}
}

// TestRemoveRakeDropsCaches pins cache hygiene: removing a rake drops
// its geometry from subsequent frames and its memo entry.
func TestRemoveRakeDropsCaches(t *testing.T) {
	s, c, _ := startTestServer(t, Config{Store: testDataset(t, 4)})
	r := frame(t, c, wire.ClientUpdate{Commands: []wire.Command{
		addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 6, 4), 2, integrate.ToolStreakline),
	}})
	id := r.Rakes[0].ID
	r = frame(t, c, wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdRemoveRake, Rake: id},
	}})
	if len(r.Rakes) != 0 || len(r.Geometry) != 0 {
		t.Fatalf("rake survived removal: %d rakes, %d geometry", len(r.Rakes), len(r.Geometry))
	}
	s.mu.Lock()
	_, haveGeo := s.geoCache[id]
	_, haveStreak := s.streaks[id]
	s.mu.Unlock()
	if haveGeo || haveStreak {
		t.Errorf("stale caches after removal: geo=%v streak=%v", haveGeo, haveStreak)
	}
}
