package server

// Cluster-tier correctness: frames delivered through internal/relay
// must be byte-identical per (client, round) to a direct connection.
// The golden corpus is the reference — the same scripts that pinned
// direct-connect bytes are replayed through one and two relay hops
// against the committed files (corpus extended to the relay path, not
// regenerated).

import (
	"bytes"
	"net"
	"os"
	"testing"

	"repro/internal/dlib"
	"repro/internal/integrate"
	"repro/internal/netsim"
	"repro/internal/relay"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// serveDial returns a DialFunc producing in-process netsim connections
// served by d.
func serveDial(d *dlib.Server, link netsim.Link) dlib.DialFunc {
	return func() (net.Conn, error) {
		client, server := netsim.Pipe(link)
		go d.ServeConn(server)
		return client, nil
	}
}

// startRelayNode builds a relay over the given upstream dials and
// returns it with a downstream dial.
func startRelayNode(t *testing.T, upstreams ...dlib.DialFunc) (*relay.Relay, dlib.DialFunc) {
	t.Helper()
	r, err := relay.New(relay.Config{Upstreams: upstreams})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, serveDial(r.Dlib(), netsim.Link{})
}

// relayExchange is one scripted frame exchange: sessions are numbered
// in order of first use, and a session's connection (plus its hello2,
// for v2 scripts) is created exactly at its first exchange — which is
// what aligns origin-side session ids with the direct-session golden
// scripts.
type relayExchange struct {
	sess int
	u    wire.ClientUpdate
}

// relayGoldenScripts re-scripts the golden corpus scenarios
// (golden_test.go / golden_v2_test.go) as data so they can be driven
// through real connections. The exchange sequences must match the
// originals exactly — the committed corpus is the expected output.
var relayGoldenScripts = []struct {
	name   string
	v2     bool
	script []relayExchange
}{
	{
		name: "steady-streamlines",
		script: []relayExchange{
			{1, wire.ClientUpdate{Commands: []wire.Command{
				addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 8, 4), 5, integrate.ToolStreamline),
				addRakeCmd(vmath.V3(2, 9, 3), vmath.V3(2, 13, 3), 4, integrate.ToolStreamline),
			}}},
			{1, wire.ClientUpdate{}},
			{1, wire.ClientUpdate{}},
			{1, wire.ClientUpdate{Hand: vmath.V3(3, 2, 1)}},
		},
	},
	{
		name: "streakline-seek",
		script: []relayExchange{
			{1, wire.ClientUpdate{Commands: []wire.Command{
				addRakeCmd(vmath.V3(1, 6, 4), vmath.V3(1, 10, 4), 3, integrate.ToolStreakline),
				{Kind: wire.CmdSetLoop, Flag: 1},
				{Kind: wire.CmdSetSpeed, Value: 1},
				{Kind: wire.CmdSetPlaying, Flag: 1},
			}}},
			{1, wire.ClientUpdate{}},
			{1, wire.ClientUpdate{}},
			{1, wire.ClientUpdate{Commands: []wire.Command{{Kind: wire.CmdSeek, Value: 0.5}}}},
			{1, wire.ClientUpdate{}},
			{1, wire.ClientUpdate{}},
		},
	},
	{
		name: "multiuser-grab",
		script: []relayExchange{
			{1, wire.ClientUpdate{Commands: []wire.Command{
				addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 9, 4), 4, integrate.ToolStreamline),
			}}},
			{2, wire.ClientUpdate{Hand: vmath.V3(1, 6, 4)}},
			{2, wire.ClientUpdate{Commands: []wire.Command{
				{Kind: wire.CmdGrab, Rake: 1, Grab: uint8(integrate.GrabCenter)},
			}}},
			{1, wire.ClientUpdate{}},
			{2, wire.ClientUpdate{Commands: []wire.Command{
				{Kind: wire.CmdMove, Rake: 1, Pos: vmath.V3(4, 7, 4)},
			}}},
			{1, wire.ClientUpdate{}},
			{2, wire.ClientUpdate{Commands: []wire.Command{
				{Kind: wire.CmdRelease, Rake: 1},
			}}},
			{1, wire.ClientUpdate{}},
		},
	},
	{
		name: "v2-steady-delta",
		v2:   true,
		script: []relayExchange{
			{1, wire.ClientUpdate{Commands: []wire.Command{
				addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 8, 4), 5, integrate.ToolStreamline),
				addRakeCmd(vmath.V3(2, 9, 3), vmath.V3(2, 13, 3), 4, integrate.ToolStreamline),
			}}},
			{1, wire.ClientUpdate{}},
			{1, wire.ClientUpdate{}},
			{1, wire.ClientUpdate{Hand: vmath.V3(3, 2, 1)}},
		},
	},
	{
		name: "v2-grab-keyframe",
		v2:   true,
		script: []relayExchange{
			{1, wire.ClientUpdate{Commands: []wire.Command{
				addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 9, 4), 4, integrate.ToolStreamline),
				addRakeCmd(vmath.V3(2, 10, 3), vmath.V3(2, 13, 3), 3, integrate.ToolStreamline),
			}}},
			{2, wire.ClientUpdate{Hand: vmath.V3(1, 6, 4)}},
			{2, wire.ClientUpdate{Commands: []wire.Command{
				{Kind: wire.CmdGrab, Rake: 1, Grab: uint8(integrate.GrabCenter)},
			}}},
			{1, wire.ClientUpdate{}},
			{2, wire.ClientUpdate{Commands: []wire.Command{
				{Kind: wire.CmdMove, Rake: 1, Pos: vmath.V3(4, 7, 4)},
			}}},
			{1, wire.ClientUpdate{}},
			{2, wire.ClientUpdate{Commands: []wire.Command{
				{Kind: wire.CmdRelease, Rake: 1},
			}}},
			{1, wire.ClientUpdate{}},
		},
	},
	{
		name: "v2-streak-varint",
		v2:   true,
		script: []relayExchange{
			{1, wire.ClientUpdate{Commands: []wire.Command{
				addRakeCmd(vmath.V3(1, 6, 4), vmath.V3(1, 10, 4), 3, integrate.ToolStreakline),
				{Kind: wire.CmdSetLoop, Flag: 1},
				{Kind: wire.CmdSetSpeed, Value: 1},
				{Kind: wire.CmdSetPlaying, Flag: 1},
			}}},
			{1, wire.ClientUpdate{}},
			{1, wire.ClientUpdate{}},
			{1, wire.ClientUpdate{Commands: []wire.Command{{Kind: wire.CmdSeek, Value: 0.5}}}},
			{1, wire.ClientUpdate{}},
			{1, wire.ClientUpdate{}},
		},
	},
}

// runRelayScript drives a golden script through dial, creating each
// session's connection (and hello2 handshake for v2 scripts) at its
// first exchange, and returns the raw reply bytes in exchange order.
func runRelayScript(t *testing.T, dial dlib.DialFunc, v2 bool, script []relayExchange) [][]byte {
	t.Helper()
	clients := make(map[int]*dlib.Client)
	var frames [][]byte
	for _, ex := range script {
		c := clients[ex.sess]
		if c == nil {
			conn, err := dial()
			if err != nil {
				t.Fatal(err)
			}
			c = dlib.NewClient(conn)
			clients[ex.sess] = c
			t.Cleanup(func() { c.Close() })
			if v2 {
				rep, err := c.Call(wire.ProcHello2, wire.EncodeHelloRequest(wire.CodecV2))
				if err != nil {
					t.Fatal(err)
				}
				codec, _, err := wire.DecodeHelloReply(rep)
				if err != nil {
					t.Fatal(err)
				}
				if codec != wire.CodecV2 {
					t.Fatalf("negotiated codec %d, want %d", codec, wire.CodecV2)
				}
			}
		}
		out, err := c.Call(wire.ProcFrame, wire.EncodeClientUpdate(ex.u))
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, bytes.Clone(out))
	}
	return frames
}

// loadGolden reads a committed corpus file.
func loadGolden(t *testing.T, name string) [][]byte {
	t.Helper()
	data, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("%v (generate with the golden tests' -update first)", err)
	}
	golden, err := decodeFrames(data)
	if err != nil {
		t.Fatal(err)
	}
	return golden
}

// TestRelayGoldenFrames replays every golden scenario through one
// relay hop: the bytes each workstation receives must equal the
// committed direct-connect corpus frame for frame — both codecs,
// including the v2 delta streams.
func TestRelayGoldenFrames(t *testing.T) {
	for _, sc := range relayGoldenScripts {
		t.Run(sc.name, func(t *testing.T) {
			origin := goldenServer(t, 0, 0)
			_, dial := startRelayNode(t, serveDial(origin.Dlib(), netsim.Link{}))
			frames := runRelayScript(t, dial, sc.v2, sc.script)
			compareFrames(t, "relayed", frames, loadGolden(t, sc.name))
		})
	}
}

// TestRelayChainedGoldenFrames stacks two relay tiers — workstation →
// leaf relay → mid relay → origin — and requires the same byte
// identity: the relay protocol must compose.
func TestRelayChainedGoldenFrames(t *testing.T) {
	for _, sc := range relayGoldenScripts {
		t.Run(sc.name, func(t *testing.T) {
			origin := goldenServer(t, 0, 0)
			_, midDial := startRelayNode(t, serveDial(origin.Dlib(), netsim.Link{}))
			_, leafDial := startRelayNode(t, midDial)
			frames := runRelayScript(t, leafDial, sc.v2, sc.script)
			compareFrames(t, "chained", frames, loadGolden(t, sc.name))
		})
	}
}

// TestRelayEncodeOnceFanOut pins the cluster-tier scaling claim: with
// many workstations behind one relay, the origin encodes each round
// once and ships its bytes across the relay link once — every further
// downstream frame is served from the relay cache after a marker
// exchange.
func TestRelayEncodeOnceFanOut(t *testing.T) {
	const sessions = 8
	origin := goldenServer(t, 0, 0)
	r, dial := startRelayNode(t, serveDial(origin.Dlib(), netsim.Link{}))

	clients := make([]*dlib.Client, sessions)
	for i := range clients {
		conn, err := dial()
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = dlib.NewClient(conn)
		c := clients[i]
		t.Cleanup(func() { c.Close() })
	}
	exchange := func(c *dlib.Client, u wire.ClientUpdate) []byte {
		t.Helper()
		out, err := c.Call(wire.ProcFrame, wire.EncodeClientUpdate(u))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	// Session 0 builds the scene; then every session frames once. Each
	// join adds a user to the environment (a version bump, so a fresh
	// round) — that churn is the warmup, not the claim.
	exchange(clients[0], wire.ClientUpdate{Commands: []wire.Command{
		addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 10, 4), 6, integrate.ToolStreamline),
	}})
	for _, c := range clients[1:] {
		exchange(c, wire.ClientUpdate{})
	}
	// The last joins' user adds are pending until the next recompute
	// (a join itself serves the current round); one more sweep settles
	// every session on the final round before measuring.
	for _, c := range clients {
		exchange(c, wire.ClientUpdate{})
	}
	warm := origin.Stats()
	warmRelay := r.Stats()

	// Steady phase: everyone holds still. The whole-frame memo keeps
	// the round stable, so every exchange must be a marker serving the
	// identical cached bytes.
	ref := exchange(clients[0], wire.ClientUpdate{})
	const rounds = 5
	for round := 0; round < rounds; round++ {
		for i, c := range clients {
			got := exchange(c, wire.ClientUpdate{})
			if !bytes.Equal(got, ref) {
				t.Fatalf("round %d session %d: frame differs from the shared round", round, i)
			}
		}
	}
	steady := int64(sessions*rounds + 1)

	st := origin.Stats()
	if encodes := st.FramesEncoded - warm.FramesEncoded; encodes != 0 {
		t.Errorf("origin encoded %d rounds during the steady phase, want 0", encodes)
	}
	if fulls := st.RelayFulls - warm.RelayFulls; fulls != 0 {
		t.Errorf("origin shipped %d full relay payloads during the steady phase, want 0", fulls)
	}
	if markers := st.RelayMarkers - warm.RelayMarkers; markers != steady {
		t.Errorf("origin answered %d markers, want %d", markers, steady)
	}
	// Across the whole run the origin encoded once per round, not once
	// per downstream frame: joins plus the scene build bound encodes by
	// sessions+1 while downstream frames number sessions*(rounds+1)+1.
	if st.FramesEncoded > sessions+1 {
		t.Errorf("origin encoded %d rounds for %d sessions, want <= %d", st.FramesEncoded, sessions, sessions+1)
	}
	rs := r.Stats()
	if down := rs.DownFrames - warmRelay.DownFrames; down != steady {
		t.Errorf("relay served %d steady frames, want %d", down, steady)
	}
	if hr := rs.HitRate(); hr < 0.7 {
		t.Errorf("relay hit rate %.2f, want > 0.7 incl. warmup", hr)
	}
	// Fan-out amplification during the steady phase: cached bytes fan
	// downstream while only markers cross the upstream link.
	upSteady := rs.UpBytes - warmRelay.UpBytes
	downSteady := rs.DownBytes - warmRelay.DownBytes
	if downSteady < 8*upSteady {
		t.Errorf("steady down bytes %d not amplified over up bytes %d", downSteady, upSteady)
	}
}

// TestRelayMixedCodecFleet runs v1 and v2 workstations behind one
// relay at once: the v1 stream must stay byte-stable (shared round
// buffer verbatim) while each v2 stream decodes through its own
// stateful decoder with geometry matching the v1 frames.
func TestRelayMixedCodecFleet(t *testing.T) {
	origin := goldenServer(t, 0, 0)
	_, dial := startRelayNode(t, serveDial(origin.Dlib(), netsim.Link{}))

	connect := func(v2 bool) *dlib.Client {
		t.Helper()
		conn, err := dial()
		if err != nil {
			t.Fatal(err)
		}
		c := dlib.NewClient(conn)
		t.Cleanup(func() { c.Close() })
		if v2 {
			if _, err := c.Call(wire.ProcHello2, wire.EncodeHelloRequest(wire.CodecV2)); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	v1a, v2a, v2b := connect(false), connect(true), connect(true)
	dec := map[*dlib.Client]*wire.FrameDecoder{
		v2a: wire.NewFrameDecoder(quantizerOf(t)),
		v2b: wire.NewFrameDecoder(quantizerOf(t)),
	}

	call := func(c *dlib.Client, u wire.ClientUpdate) wire.FrameReply {
		t.Helper()
		out, err := c.Call(wire.ProcFrame, wire.EncodeClientUpdate(u))
		if err != nil {
			t.Fatal(err)
		}
		if d := dec[c]; d != nil {
			r, err := d.Decode(out)
			if err != nil {
				t.Fatalf("v2 frame does not decode: %v", err)
			}
			return r
		}
		r, err := wire.DecodeFrameReply(out)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	call(v1a, wire.ClientUpdate{Commands: []wire.Command{
		addRakeCmd(vmath.V3(1, 4, 4), vmath.V3(1, 9, 4), 4, integrate.ToolStreamline),
	}})
	// Interleave the fleet across several rounds, including a rake
	// move (geometry resend) mid-run.
	scripts := []struct {
		c *dlib.Client
		u wire.ClientUpdate
	}{
		{v2a, wire.ClientUpdate{}},
		{v2b, wire.ClientUpdate{}},
		{v1a, wire.ClientUpdate{}},
		{v2a, wire.ClientUpdate{Commands: []wire.Command{
			{Kind: wire.CmdGrab, Rake: 1, Grab: uint8(integrate.GrabCenter)},
			{Kind: wire.CmdMove, Rake: 1, Pos: vmath.V3(4, 7, 4)},
		}}},
		{v2b, wire.ClientUpdate{}},
		{v1a, wire.ClientUpdate{}},
		{v2a, wire.ClientUpdate{}},
		{v2b, wire.ClientUpdate{}},
	}
	var last [3]wire.FrameReply
	for _, s := range scripts {
		r := call(s.c, s.u)
		switch s.c {
		case v1a:
			last[0] = r
		case v2a:
			last[1] = r
		case v2b:
			last[2] = r
		}
	}
	// All three fleets converged on the same final scene.
	for i := 1; i < 3; i++ {
		if len(last[i].Geometry) != len(last[0].Geometry) {
			t.Fatalf("fleet %d sees %d geometries, v1 sees %d", i, len(last[i].Geometry), len(last[0].Geometry))
		}
	}
	if got, want := last[1].Rakes[0].P0, last[0].Rakes[0].P0; got != want {
		t.Errorf("v2 rake position %v, v1 %v", got, want)
	}
}

// TestRelayPartition pins routing semantics with multiple upstreams:
// sessions are statically partitioned round-robin, each stays on its
// upstream for its whole life, and the upstreams' environments stay
// independent.
func TestRelayPartition(t *testing.T) {
	a := goldenServer(t, 0, 0)
	b := goldenServer(t, 0, 0)
	_, dial := startRelayNode(t,
		serveDial(a.Dlib(), netsim.Link{}), serveDial(b.Dlib(), netsim.Link{}))

	var clients [4]*dlib.Client
	for i := range clients {
		conn, err := dial()
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = dlib.NewClient(conn)
		c := clients[i]
		t.Cleanup(func() { c.Close() })
		// First contact pins the session: 0,2 → a; 1,3 → b.
		if _, err := clients[i].Call(wire.ProcHello, nil); err != nil {
			t.Fatal(err)
		}
	}
	rake := func(c *dlib.Client, y float32) wire.FrameReply {
		t.Helper()
		out, err := c.Call(wire.ProcFrame, wire.EncodeClientUpdate(wire.ClientUpdate{
			Commands: []wire.Command{addRakeCmd(vmath.V3(1, y, 4), vmath.V3(1, y+2, 4), 3, integrate.ToolStreamline)},
		}))
		if err != nil {
			t.Fatal(err)
		}
		r, err := wire.DecodeFrameReply(out)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ra := rake(clients[0], 4)
	rb := rake(clients[1], 8)
	if len(ra.Rakes) != 1 || len(rb.Rakes) != 1 {
		t.Fatalf("rakes = %d / %d, want 1 each (partitioned environments)", len(ra.Rakes), len(rb.Rakes))
	}
	if ra.Rakes[0].P0 == rb.Rakes[0].P0 {
		t.Fatalf("both partitions see the same rake")
	}
	// Peers on the same partition share its environment.
	out, err := clients[2].Call(wire.ProcFrame, wire.EncodeClientUpdate(wire.ClientUpdate{}))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := wire.DecodeFrameReply(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Rakes) != 1 || r2.Rakes[0].P0 != ra.Rakes[0].P0 {
		t.Fatalf("partition peer does not share the environment")
	}
}
