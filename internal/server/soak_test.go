package server

import (
	"flag"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/integrate"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// The governed soak: a fleet of direct sessions drives a deliberately
// overloaded playing scene for many rounds and checks the governor's
// contract on real measured time — the per-round integration stage
// stays at the budget (p99, with a small grace for EWMA prediction
// error), the same scene ungoverned costs at least twice that, and the
// steady-state loop does not grow its allocation rate.
//
// The round count rides -soakframes; `make soak` runs the long
// version:
//
//	go test ./internal/server/ -run TestSoakGovernedBudget -soakframes 2000

var soakFrames = flag.Int("soakframes", 0, "governed soak rounds (0 = auto: small in -short, modest otherwise)")

// soakSessions is the simulated fleet size; session 0 paces the
// rounds, the rest ride the encode-once fan-out.
const soakSessions = 8

// soakScene builds the overload scene: six wide streamline rakes under
// looping playback, so every round recomputes every rake.
func soakScene(t *testing.T, s *Server) []*directSession {
	t.Helper()
	fleet := make([]*directSession, soakSessions)
	for i := range fleet {
		fleet[i] = newDirectSession(t, s, int64(i+1))
	}
	cmds := []wire.Command{
		{Kind: wire.CmdSetLoop, Flag: 1},
		{Kind: wire.CmdSetSpeed, Value: 1},
		{Kind: wire.CmdSetPlaying, Flag: 1},
	}
	for i := 0; i < 6; i++ {
		y := float32(2 + 2*i)
		cmds = append(cmds, addRakeCmd(vmath.V3(1, y, 2), vmath.V3(1, y+1, 6), 256, integrate.ToolStreamline))
	}
	fleet[0].frame(wire.ClientUpdate{Commands: cmds})
	return fleet
}

// soakRounds runs n fan-out cycles and returns the computing session's
// per-round integration-stage durations (the quantity the governor
// budgets), measured from the server's cumulative compute counter.
func soakRounds(t *testing.T, s *Server, fleet []*directSession, n int) []time.Duration {
	t.Helper()
	computeTimes := make([]time.Duration, 0, n)
	prev := s.Stats().ComputeTime
	for i := 0; i < n; i++ {
		for _, d := range fleet {
			d.frame(wire.ClientUpdate{})
		}
		now := s.Stats().ComputeTime
		computeTimes = append(computeTimes, now-prev)
		prev = now
	}
	return computeTimes
}

func durQuantile(samples []time.Duration, q float64) time.Duration {
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	return quantile(sorted, q)
}

func TestSoakGovernedBudget(t *testing.T) {
	rounds := *soakFrames
	if rounds == 0 {
		rounds = 60
		if testing.Short() {
			rounds = 30
		}
	}

	// Calibration phase: the same scene ungoverned, on the real clock,
	// to learn what a full-fidelity round costs on this machine.
	ungov, err := New(Config{Store: testDataset(t, 4)})
	if err != nil {
		t.Fatal(err)
	}
	ungovTimes := soakRounds(t, ungov, soakScene(t, ungov), 15)
	ungovMed := durQuantile(ungovTimes, 0.50)
	if ungovMed <= 0 {
		t.Fatal("calibration measured zero-cost rounds")
	}

	// The overload condition the issue's acceptance asks for: pick the
	// budget so the ungoverned scene costs >= 2.5x of it.
	budget := ungovMed * 2 / 5
	gov, err := New(Config{Store: testDataset(t, 4), Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	fleet := soakScene(t, gov)
	// Warm the EWMA: the first frames run full fidelity while the
	// governor learns the ns/unit rate.
	soakRounds(t, gov, fleet, 5)

	half := rounds / 2
	var m0, m1, m2 runtime.MemStats
	runtime.ReadMemStats(&m0)
	firstHalf := soakRounds(t, gov, fleet, half)
	runtime.ReadMemStats(&m1)
	secondHalf := soakRounds(t, gov, fleet, rounds-half)
	runtime.ReadMemStats(&m2)
	all := append(firstHalf, secondHalf...)

	// The tail quantile needs samples behind it: the short in-test run
	// checks p90 (p99 over 60 rounds is just the max, and `go test
	// ./...` runs this concurrently with other packages' tests), the
	// long `make soak` run checks the real p99.
	q, qName := 0.90, "p90"
	if rounds >= 500 {
		q, qName = 0.99, "p99"
	}
	tail := durQuantile(all, q)
	govMed := durQuantile(all, 0.50)
	t.Logf("rounds=%d budget=%v governed p50=%v %s=%v; ungoverned p50=%v",
		rounds, budget, govMed, qName, tail, ungovMed)

	// The governor plans the compute stage to fill (not undershoot) the
	// budget, so its contract is: median at the budget, tail bounded.
	// The tail grace depends on the quantile: p90 carries 50% for EWMA
	// prediction error; the long-run p99 also absorbs GC pauses and
	// scheduler preemption the planner cannot see in advance, so it
	// carries 100% — still far under the ungoverned cost it replaced.
	grace, ungovLimit := budget/2, ungovMed*3/4
	if q == 0.99 {
		grace, ungovLimit = budget, ungovMed
	}
	if limit := budget + budget/10; govMed > limit {
		t.Errorf("governed compute p50 = %v, budget %v (limit %v)", govMed, budget, limit)
	}
	if limit := budget + grace; tail > limit {
		t.Errorf("governed compute %s = %v, budget %v (limit with grace %v)", qName, tail, budget, limit)
	}
	if tail > ungovLimit {
		t.Errorf("governed compute %s = %v, not clearly under the ungoverned median %v", qName, tail, ungovMed)
	}
	// And the overload is real: ungoverned median at least 2x budget.
	if ungovMed < 2*budget {
		t.Errorf("ungoverned median %v is under 2x budget %v — scene not overloaded", ungovMed, budget)
	}
	st := gov.Stats()
	if st.FramesShed == 0 {
		t.Error("soak ran without a single shed frame")
	}
	if st.PredictedTime == 0 {
		t.Error("governor recorded no predictions")
	}

	// Allocation-rate stability: the second half must not allocate
	// meaningfully more per round than the first (steady-state scratch
	// reuse; 1.5x plus a small constant absorbs GC timing noise).
	perRound1 := (m1.Mallocs - m0.Mallocs) / uint64(half)
	perRound2 := (m2.Mallocs - m1.Mallocs) / uint64(rounds-half)
	t.Logf("mallocs/round: first half %d, second half %d", perRound1, perRound2)
	if perRound2 > perRound1+perRound1/2+64 {
		t.Errorf("allocation growth: %d mallocs/round in second half vs %d in first",
			perRound2, perRound1)
	}
}
