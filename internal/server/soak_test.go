package server

import (
	"flag"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/integrate"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// The governed soak: a fleet of direct sessions drives a deliberately
// overloaded playing scene for many rounds and checks the governor's
// contract on real measured time — the per-round integration stage
// stays at the budget (p99, with a small grace for EWMA prediction
// error), the same scene ungoverned costs at least twice that, and the
// steady-state loop does not grow its allocation rate.
//
// The round count rides -soakframes; `make soak` runs the long
// version:
//
//	go test ./internal/server/ -run TestSoakGovernedBudget -soakframes 2000

var soakFrames = flag.Int("soakframes", 0, "governed soak rounds (0 = auto: small in -short, modest otherwise)")

// soakSessions is the simulated fleet size; session 0 paces the
// rounds, the rest ride the encode-once fan-out.
const soakSessions = 8

// soakScene builds the overload scene: six wide streamline rakes under
// looping playback, so every round recomputes every rake.
func soakScene(t *testing.T, s *Server) []*directSession {
	t.Helper()
	fleet := make([]*directSession, soakSessions)
	for i := range fleet {
		fleet[i] = newDirectSession(t, s, int64(i+1))
	}
	cmds := []wire.Command{
		{Kind: wire.CmdSetLoop, Flag: 1},
		{Kind: wire.CmdSetSpeed, Value: 1},
		{Kind: wire.CmdSetPlaying, Flag: 1},
	}
	for i := 0; i < 6; i++ {
		y := float32(2 + 2*i)
		cmds = append(cmds, addRakeCmd(vmath.V3(1, y, 2), vmath.V3(1, y+1, 6), 256, integrate.ToolStreamline))
	}
	fleet[0].frame(wire.ClientUpdate{Commands: cmds})
	return fleet
}

// soakRounds runs n fan-out cycles and returns the computing session's
// per-round integration-stage durations (the quantity the governor
// budgets), measured from the server's cumulative compute counter.
func soakRounds(t *testing.T, s *Server, fleet []*directSession, n int) []time.Duration {
	t.Helper()
	computeTimes := make([]time.Duration, 0, n)
	prev := s.Stats().ComputeTime
	for i := 0; i < n; i++ {
		for _, d := range fleet {
			d.frame(wire.ClientUpdate{})
		}
		now := s.Stats().ComputeTime
		computeTimes = append(computeTimes, now-prev)
		prev = now
	}
	return computeTimes
}

func durQuantile(samples []time.Duration, q float64) time.Duration {
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	return quantile(sorted, q)
}

func TestSoakGovernedBudget(t *testing.T) {
	rounds := *soakFrames
	if rounds == 0 {
		rounds = 60
		if testing.Short() {
			rounds = 30
		}
	}

	// Calibration phase: the same scene ungoverned, on the real clock,
	// to learn what a full-fidelity round costs on this machine.
	ungov, err := New(Config{Store: testDataset(t, 4)})
	if err != nil {
		t.Fatal(err)
	}
	ungovTimes := soakRounds(t, ungov, soakScene(t, ungov), 15)
	ungovMed := durQuantile(ungovTimes, 0.50)
	if ungovMed <= 0 {
		t.Fatal("calibration measured zero-cost rounds")
	}

	// The overload condition the issue's acceptance asks for: pick the
	// budget so the ungoverned scene costs >= 2.5x of it.
	budget := ungovMed * 2 / 5
	gov, err := New(Config{Store: testDataset(t, 4), Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	fleet := soakScene(t, gov)
	// Warm the EWMA: the first frames run full fidelity while the
	// governor learns the ns/unit rate.
	soakRounds(t, gov, fleet, 5)

	half := rounds / 2
	var m0, m1, m2 runtime.MemStats
	runtime.ReadMemStats(&m0)
	firstHalf := soakRounds(t, gov, fleet, half)
	runtime.ReadMemStats(&m1)
	secondHalf := soakRounds(t, gov, fleet, rounds-half)
	runtime.ReadMemStats(&m2)
	all := append(firstHalf, secondHalf...)

	// The tail quantile needs samples behind it: the short in-test run
	// checks p90 (p99 over 60 rounds is just the max, and `go test
	// ./...` runs this concurrently with other packages' tests), the
	// long `make soak` run checks the real p99.
	q, qName := 0.90, "p90"
	if rounds >= 500 {
		q, qName = 0.99, "p99"
	}
	tail := durQuantile(all, q)
	govMed := durQuantile(all, 0.50)
	t.Logf("rounds=%d budget=%v governed p50=%v %s=%v; ungoverned p50=%v",
		rounds, budget, govMed, qName, tail, ungovMed)

	// The governor plans the compute stage to fill (not undershoot) the
	// budget, so its contract is: median at the budget, tail bounded.
	// The tail grace depends on the quantile: p90 carries 50% for EWMA
	// prediction error; the long-run p99 also absorbs GC pauses and
	// scheduler preemption the planner cannot see in advance, so it
	// carries 100% — still far under the ungoverned cost it replaced.
	grace, ungovLimit := budget/2, ungovMed*3/4
	if q == 0.99 {
		grace, ungovLimit = budget, ungovMed
	}
	if limit := budget + budget/10; govMed > limit {
		t.Errorf("governed compute p50 = %v, budget %v (limit %v)", govMed, budget, limit)
	}
	if limit := budget + grace; tail > limit {
		t.Errorf("governed compute %s = %v, budget %v (limit with grace %v)", qName, tail, budget, limit)
	}
	if tail > ungovLimit {
		t.Errorf("governed compute %s = %v, not clearly under the ungoverned median %v", qName, tail, ungovMed)
	}
	// And the overload is real: ungoverned median at least 2x budget.
	if ungovMed < 2*budget {
		t.Errorf("ungoverned median %v is under 2x budget %v — scene not overloaded", ungovMed, budget)
	}
	st := gov.Stats()
	if st.FramesShed == 0 {
		t.Error("soak ran without a single shed frame")
	}
	if st.PredictedTime == 0 {
		t.Error("governor recorded no predictions")
	}

	// Allocation-rate stability: the second half must not allocate
	// meaningfully more per round than the first (steady-state scratch
	// reuse; 1.5x plus a small constant absorbs GC timing noise).
	perRound1 := (m1.Mallocs - m0.Mallocs) / uint64(half)
	perRound2 := (m2.Mallocs - m1.Mallocs) / uint64(rounds-half)
	t.Logf("mallocs/round: first half %d, second half %d", perRound1, perRound2)
	if perRound2 > perRound1+perRound1/2+64 {
		t.Errorf("allocation growth: %d mallocs/round in second half vs %d in first",
			perRound2, perRound1)
	}
}

// TestSoakLiveOverload is the in-situ soak: a live producer with a
// deliberately small history window feeds an overloaded governed fleet
// of soakSessions direct sessions under a ManualClock. The contract:
// the governor sheds (in plan space — the ManualClock makes the plans
// replayable) before the ring ever starves a session, the planned
// per-round cost holds the budget at the tail quantile, the window
// recycles buffers under steady playback, and the pin barrier defers
// eviction rather than dropping a step an in-flight tracer references
// — every frame in the run must succeed.
//
// The round count rides the same -soakframes flag as the governed
// soak; `make soak` runs the long version of both.
func TestSoakLiveOverload(t *testing.T) {
	rounds := *soakFrames
	if rounds == 0 {
		rounds = 40
		if testing.Short() {
			rounds = 20
		}
	}
	spec, sopts := liveSpec()
	spec.NumSteps = rounds + 8
	budget := 2 * time.Millisecond
	// Window 2 is the tightest history the scene survives: the eviction
	// limit then sits one step past the tracer's pin, so every publish
	// during the path's forward drive exercises the pin barrier.
	s, _ := liveServer(t, spec, sopts, 2, Config{Budget: budget})
	s.gov.unitNanos = 100 // hand-calibrated: the ManualClock freezes the EWMA

	fleet := make([]*directSession, soakSessions)
	for i := range fleet {
		fleet[i] = newDirectSession(t, s, int64(i+1))
	}
	g := s.st.Grid()
	cmds := []wire.Command{
		{Kind: wire.CmdSetSpeed, Value: 1},
		{Kind: wire.CmdSetPlaying, Flag: 1},
		// The history consumer: smoke that must never lose a step it
		// references.
		addRakeCmd(boundsAt(g, 0.5, 0.45, 0.6), boundsAt(g, 0.5, 0.65, 0.6), 3, integrate.ToolStreakline),
	}
	// The overload: wide streamline rakes whose full-fidelity plan far
	// exceeds the budget (6 * 256 seeds * default steps at 100 ns/unit).
	for i := 0; i < 6; i++ {
		fy := 0.2 + 0.1*float32(i)
		cmds = append(cmds, addRakeCmd(boundsAt(g, 0.6, fy, 0.4), boundsAt(g, 0.6, fy+0.05, 0.6), 256, integrate.ToolStreamline))
	}
	fleet[0].frame(wire.ClientUpdate{Commands: cmds})

	// Run the fleet. Halfway in, a particle-path rake joins: its tracer
	// pins the serving step while it drives the producer far past the
	// window — the eviction-while-integrating case the pin barrier
	// exists for.
	half := rounds / 2
	preds := make([]time.Duration, 0, rounds)
	prev := s.Stats().PlannedTime
	var last wire.FrameReply
	for i := 0; i < rounds; i++ {
		if i == half {
			fleet[0].frame(wire.ClientUpdate{Commands: []wire.Command{
				addRakeCmd(boundsAt(g, 0.55, 0.4, 0.4), boundsAt(g, 0.55, 0.6, 0.4), 2, integrate.ToolParticlePath),
			}})
		}
		for _, d := range fleet {
			last = d.frame(wire.ClientUpdate{})
		}
		now := s.Stats().PlannedTime
		preds = append(preds, now-prev)
		prev = now
	}
	if last.TotalPoints() == 0 {
		t.Error("fleet finished with an empty frame")
	}

	// Governor: it shed, and the planned per-round cost holds the
	// budget at the tail (p90 for the in-test run, real p99 for the
	// long `make soak` run; the grace absorbs the unshed-able floors —
	// streakline state and per-rake minimums the planner cannot cut).
	st := s.Stats()
	if st.FramesShed == 0 {
		t.Error("live soak ran without a single shed frame")
	}
	q, qName := 0.90, "p90"
	if rounds >= 500 {
		q, qName = 0.99, "p99"
	}
	tail := durQuantile(preds, q)
	t.Logf("rounds=%d budget=%v planned p50=%v %s=%v shed=%d clamps=%d",
		rounds, budget, durQuantile(preds, 0.50), qName, tail, st.FramesShed, st.LiveClamps)
	if limit := budget + budget/2; tail > limit {
		t.Errorf("planned per-round cost %s = %v over budget %v (limit %v)", qName, tail, budget, limit)
	}

	// Ring: the producer ran the whole horizon, the small window
	// recycled buffers under steady playback before the path rake
	// arrived, and the pin barrier deferred evictions afterwards —
	// and despite all that churn, no session ever saw a failed load
	// (every d.frame above fatals on error: shed, never starved).
	rs, ok := s.LiveStats()
	if !ok {
		t.Fatal("no live stats from a ring-backed server")
	}
	t.Logf("ring: produced=%d recycled=%d deferred=%d clamped=%d", rs.Produced, rs.Recycled, rs.Deferred, rs.Clamped)
	if rs.Produced < int64(rounds) {
		t.Errorf("producer sealed %d steps over %d rounds", rs.Produced, rounds)
	}
	if rs.Recycled == 0 {
		t.Error("history window never recycled a buffer — the soak exerted no memory pressure")
	}
	if rs.Deferred == 0 {
		t.Error("pin barrier never deferred an eviction — the integrating tracer was unprotected")
	}
}
