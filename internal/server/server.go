// Package server implements the distributed windtunnel's remote host —
// the role the Convex C3240 plays in the paper. It owns the dataset
// (in memory or streamed from disk with prefetch), the authoritative
// shared virtual environment, and the visualization computation; it
// accepts user commands over dlib and returns environment state plus
// computed geometry (figure 8).
//
// The package is split along the cluster-tier seam. This file holds
// configuration, counters, and assembly; session.go is the session
// layer (hellos, codec state, encode-once fan-out, command validation,
// and the relay exchange internal/relay speaks upstream); compute.go
// is the compute layer (timestep loads, governor planning, rake
// integration, round encode).
//
// The frame hot path is memoized at two levels. Whole-frame: when the
// environment version is unchanged since the last round (paused
// playback, idle users) the previous encoded reply is served verbatim,
// so identical frames are byte-identical by construction. Per-rake:
// streamlines and particle paths are pure functions of the rake's
// geometry inputs (endpoints, seed count, tool — tracked by a version
// counter in env) and the timestep, so only rakes whose inputs changed
// are recomputed; independent dirty rakes recompute concurrently on a
// bounded worker pool.
//
// Frames fan out encode-once: each round is wire-encoded exactly one
// time into a ref-counted buffer shared by every session served within
// that round — a session's reply holds a reference until dlib finishes
// writing it (Ctx.ReplyDone), and buffers whose references drain
// recycle into a small free list. Adding workstations therefore adds
// sends, not encodes: frames-encoded per round is independent of the
// session count, and steady-state frames do near-zero allocation. An
// optional shared timestep cache (store.Cache) sits under the
// prefetcher so the sessions' overlapping playback positions hit
// memory instead of re-reading mass storage.
//
//vw:deterministic
//vw:wire
package server

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/compute"
	"repro/internal/dlib"
	"repro/internal/env"
	"repro/internal/field"
	"repro/internal/integrate"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/wire"
)

// Config assembles a windtunnel server.
type Config struct {
	// Store supplies the dataset. Wrap a Disk store in a Prefetcher to
	// get the paper's overlapped-load pipeline.
	Store store.Store
	// Engine computes visualization geometry; nil uses the parallel
	// engine with GOMAXPROCS workers.
	Engine compute.Engine
	// Options sets integration parameters; zero value uses
	// integrate.DefaultOptions (RK2, 200-point paths).
	Options integrate.Options
	// MaxStreakParticles bounds each streakline rake's particle count;
	// 0 means 20,000.
	MaxStreakParticles int
	// MaxSeedsPerRake clamps client-requested seed counts: one hostile
	// ClientUpdate must not be able to request an unbounded integration
	// workload. 0 means 4096.
	MaxSeedsPerRake int
	// RakeWorkers bounds how many dirty rakes recompute concurrently;
	// 0 means GOMAXPROCS.
	RakeWorkers int
	// Prefetch enables next-timestep prefetching when Store is (or
	// wraps) I/O-bound storage.
	Prefetch bool
	// CacheSteps / CacheBytes enable the shared timestep LRU between
	// the server and an I/O-backed Store: CacheSteps bounds resident
	// timesteps, CacheBytes bounds their total size (either may be
	// zero for "no bound on that axis"; both zero disables the cache).
	// Fully resident stores (store.Memory) are never wrapped — they
	// are already the cache.
	CacheSteps int
	CacheBytes int64
	// Budget is the per-frame integration budget the governor holds
	// the server under by predictive load-shedding (§5.3: only as many
	// path points fit a frame as the machine can integrate in 0.1 s).
	// 0 disables the governor entirely — every frame runs at full
	// fidelity, byte-identical to pre-governor behavior.
	Budget time.Duration
	// Clock supplies stage timing and the governor's calibration
	// measurements; nil uses the real wall clock. Tests inject a
	// netsim.ManualClock, under which every stage measures zero, the
	// EWMA freezes, and frames replay byte-identically.
	Clock netsim.Clock
	// MaxCodec caps the wire codec negotiated at hello: 0 or
	// wire.MaxCodec offers codec v2 (delta frames + quantized points),
	// 1 pins every session to the original v1 encoding. Sessions that
	// never call ProcHello2 always speak v1, byte for byte.
	MaxCodec int
	// Steer seeds the environment's live-steering parameters (in-situ
	// mode). The zero value leaves steering unseeded; either way the
	// vw.steer procedure is served and steering commands are accepted —
	// they only have a producer to act on when Store is a live ring.
	Steer env.SteerParams
	// Iso / Plane / Vortex seed the shared field-diagnostic tools. All
	// three zero leaves the tools untouched — frames carry no tool
	// section and stay byte-identical to pre-tool builds until a tool
	// command arrives.
	Iso    env.IsoParams
	Plane  env.PlaneParams
	Vortex env.VortexParams
}

// Stats is a snapshot of server-side performance counters.
type Stats struct {
	// Frames counts geometry rounds, including rounds served whole
	// from the frame memo.
	Frames int64
	// Points counts path points shipped in FrameReply geometry,
	// summed per round — the §5.3 quantity Table 1 prices. Every tool
	// counts identically: exactly the points that go on the wire.
	Points int64
	// ComputeTime is cumulative visualization compute (integrate
	// stage, all rakes); LoadTime is cumulative timestep load wait;
	// EncodeTime is cumulative wire-encoding time.
	ComputeTime time.Duration
	LoadTime    time.Duration
	EncodeTime  time.Duration
	// BytesShipped counts encoded FrameReply bytes summed over every
	// per-session send (a round consumed by three workstations counts
	// three times).
	BytesShipped int64
	// RakesComputed / RakesReused count per-rake geometry
	// recomputations vs dirty-rake memo hits; FramesReused counts
	// rounds served whole from the previous encode.
	RakesComputed int64
	RakesReused   int64
	FramesReused  int64
	// FramesEncoded counts wire encodes of a round buffer;
	// FramesShipped counts per-session reply sends. Encode-once means
	// FramesEncoded tracks rounds (not sessions) while FramesShipped
	// grows with the number of attached workstations.
	FramesEncoded int64
	FramesShipped int64
	// FramesShed counts encoded rounds that went out with a non-zero
	// degradation byte — rounds where the governor clamped work, or
	// was still serving clamped geometry from an earlier clamp.
	FramesShed int64
	// PredictedTime is the cumulative governor cost prediction over
	// encoded rounds (zero until the EWMA calibrates).
	PredictedTime time.Duration
	// PlannedTime is the cumulative predicted cost of the work the
	// governor actually admitted after shedding — where PredictedTime
	// is the demand, PlannedTime is the promise the budget holds.
	PlannedTime time.Duration
	// V2Frames counts replies shipped with codec v2; V2RakesInline and
	// V2RakesRef split their geometry directory entries into full
	// (quantized) segments vs delta references to geometry the session
	// already holds. A high ref share is the Wire 2.0 bandwidth win.
	V2Frames      int64
	V2RakesInline int64
	V2RakesRef    int64
	// RelayFulls / RelayMarkers split ProcFrameRelay replies into full
	// round payloads vs round-unchanged markers; RelayBytes sums both.
	// With relays attached, FramesEncoded still tracks rounds while the
	// per-workstation fan-out happens downstream — the marker share is
	// the cluster tier's bandwidth win at the origin.
	RelayFulls   int64
	RelayMarkers int64
	RelayBytes   int64
	// LiveClamps counts frames whose requested timestep fell outside
	// the live ring's resident window and had to be clamped — in-situ
	// mode's ring-starvation pressure gauge.
	LiveClamps int64
	// ToolsComputed / ToolsReused count shared-tool geometry
	// recomputations vs memo hits; ToolPoints counts tool-section
	// points shipped per round (kept apart from Points, which remains
	// the paper's rake-path quantity).
	ToolsComputed int64
	ToolsReused   int64
	ToolPoints    int64
}

// Server is the remote-host application layered on a dlib server.
type Server struct {
	d     *dlib.Server
	cfg   Config
	env   *env.Environment
	rec   obs.Recorder
	clock netsim.Clock

	// st is the effective store: cfg.Store, optionally wrapped by the
	// shared timestep cache. All dataset access goes through it.
	st    store.Store
	cache *store.Cache

	prefetcher *store.Prefetcher
	// window keeps the particle-path timestep range resident for
	// I/O-backed stores (§5.1: "the current timestep plus the maximum
	// particle path length").
	window *store.Window
	// unsteady is non-nil when the store is fully resident. Immutable
	// after New, so pool workers may read it without the lock.
	unsteady *field.Unsteady
	// liveRing is non-nil when the store is an in-situ solver ring; the
	// compute layer clamps to its resident window and pins the step it
	// integrates from. livePinned is the currently pinned step (-1 =
	// none), guarded by mu with the rest of the round state.
	liveRing   *store.Ring
	livePinned int

	mu sync.Mutex // guards everything below
	// cur is the loaded timestep backing streamline/streak
	// computation.
	cur      *field.Field
	curStep  int
	streaks  map[int32]*integrate.Streak
	geoCache map[int32]*rakeGeom
	round    uint64 // recompute round counter, for cache sweeping

	// Current round: the ref-counted encode-once buffer (nil = no
	// round yet), the env version and point count it was computed at,
	// and which sessions have consumed it. free holds drained buffers
	// for reuse. All buffers below recycle across rounds.
	fb           *frameBuf
	free         []*frameBuf
	consumedBy   map[int64]bool
	lastVersion  uint64
	lastPoints   int64
	lastDegraded uint8

	// Wire 2.0 state. The round layer splits into a shared payload —
	// lastMeta (the round's header fields) plus the per-rake encoded
	// segments cached on each rakeGeom — and a per-session part: the
	// codec negotiated at hello and the delta-shadow FrameEncoder that
	// decides, per rake, whether this session gets the shared segment
	// or a reference record. geoSeq numbers geometry content: it is
	// bumped once per rake recompute, in job order, so segments (and
	// therefore frames) stay deterministic per (client, round).
	maxCodec uint8
	quant    wire.Quantizer
	codecs   map[int64]*sessionState
	lastMeta wire.FrameReply // Geometry nil; slices alias the wire scratch
	geoSeq   uint64

	seqScratch []uint64
	segScratch [][]byte
	// dirScratch is the relay exchange's geometry-directory scratch;
	// its entries are valid only until the reply encode that follows.
	dirScratch []wire.RelaySegment

	userScratch []env.UserSnapshot
	rakeScratch []env.RakeSnapshot
	usersWire   []wire.UserState
	rakesWire   []wire.RakeState
	geomWire    []wire.Geometry
	geomGC      []*rakeGeom // aligned with geomWire, for point totals
	jobs        []rakeJob

	// Shared-tool round state (tools.go): the snapshot the round was
	// planned from, the per-tool geometry memos (iso, plane, vortex),
	// the derived-scalar cache, the planned stride and its budget
	// reserve, and the assembled tool section (toolsMeta.Geoms aliases
	// toolGeomWire; toolGC is aligned with it). haveTools gates the
	// section: a never-touched environment ships no tool bytes.
	toolSnap       env.ToolsState
	toolGeos       [3]toolGeom
	toolScal       toolScalars
	toolStride     int
	toolReserve    time.Duration
	haveTools      bool
	toolsMeta      wire.ToolsReply
	toolGeomWire   []wire.ToolGeom
	toolGC         []*toolGeom
	toolSeqScratch []uint64
	toolSegScratch [][]byte
	lastToolPoints int64

	// Governor state: the planner itself plus recycled scratch for its
	// per-frame request/level/job-index triples.
	gov        *governor
	reqScratch []shedRequest
	reqJobs    []int
	lvlScratch []shedLevel

	stats Stats
}

// New builds the application and registers its procedures on a fresh
// dlib server.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: nil store")
	}
	if cfg.Engine == nil {
		cfg.Engine = compute.Parallel{}
	}
	if cfg.Options.MaxSteps == 0 {
		cfg.Options = integrate.DefaultOptions()
	}
	if err := cfg.Options.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxStreakParticles == 0 {
		cfg.MaxStreakParticles = 20000
	}
	if cfg.MaxSeedsPerRake == 0 {
		cfg.MaxSeedsPerRake = 4096
	}
	if cfg.Clock == nil {
		cfg.Clock = netsim.RealClock
	}
	if cfg.MaxCodec == 0 {
		cfg.MaxCodec = wire.MaxCodec
	}
	if cfg.MaxCodec < wire.CodecV1 || cfg.MaxCodec > wire.MaxCodec {
		return nil, fmt.Errorf("server: MaxCodec %d outside [%d, %d]",
			cfg.MaxCodec, wire.CodecV1, wire.MaxCodec)
	}
	govWorkers := cfg.RakeWorkers
	if govWorkers <= 0 {
		govWorkers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		d:          dlib.NewServer(),
		cfg:        cfg,
		st:         cfg.Store,
		env:        env.New(cfg.Store.NumSteps()),
		clock:      cfg.Clock,
		gov:        newGovernor(cfg.Budget, cfg.Clock, govWorkers),
		streaks:    make(map[int32]*integrate.Streak),
		geoCache:   make(map[int32]*rakeGeom),
		consumedBy: make(map[int64]bool),
		maxCodec:   uint8(cfg.MaxCodec),
		quant:      wire.Quantizer{Min: cfg.Store.Grid().Bounds().Min, Max: cfg.Store.Grid().Bounds().Max},
		codecs:     make(map[int64]*sessionState),
	}
	// Frame replies opt out of copy-under-dispatch via the per-send
	// reference on the round buffer (Ctx.ReplyDone); the flag still
	// covers any handler that recycles buffers without registering a
	// release hook.
	s.d.CopyReplies = true
	if mem, ok := cfg.Store.(*store.Memory); ok {
		s.unsteady = mem.Unsteady()
	}
	s.livePinned = -1
	if ring, ok := cfg.Store.(*store.Ring); ok {
		// In-situ mode: the live ring recycles step buffers, so the
		// Cache/Window/Prefetcher wrappers — which all hold bare field
		// pointers across rounds — must never sit on top of it (the
		// eviction-while-integrating hazard; the ring's pin protocol is
		// the only safe residency contract). The ring is memory-backed
		// anyway, so the wrappers would buy nothing.
		s.liveRing = ring
	}
	if (cfg.CacheSteps > 0 || cfg.CacheBytes > 0) && s.unsteady == nil && s.liveRing == nil {
		// Shared timestep LRU between the pipeline and mass storage.
		// Layering: prefetcher / window -> cache -> disk, so prefetched
		// and windowed loads fill the cache every session benefits from.
		c, err := store.NewCache(cfg.Store, store.CacheOptions{
			MaxSteps: cfg.CacheSteps,
			MaxBytes: cfg.CacheBytes,
		})
		if err != nil {
			return nil, err
		}
		s.cache = c
		s.st = c
	}
	if cfg.Prefetch && s.liveRing == nil {
		s.prefetcher = store.NewPrefetcher(s.st)
	}
	if s.unsteady == nil && s.liveRing == nil {
		// I/O-backed store: keep a particle-path window resident.
		w, err := store.NewWindow(s.st, cfg.Options.MaxSteps+1)
		if err != nil {
			return nil, err
		}
		s.window = w
	}
	if cfg.Steer != (env.SteerParams{}) {
		s.env.InitSteer(cfg.Steer)
	}
	if cfg.Iso != (env.IsoParams{}) || cfg.Plane != (env.PlaneParams{}) ||
		cfg.Vortex != (env.VortexParams{}) {
		s.env.InitTools(cfg.Iso, cfg.Plane, cfg.Vortex)
	}
	s.d.Register(wire.ProcHello, s.handleHello)
	s.d.Register(wire.ProcHello2, s.handleHello2)
	s.d.Register(wire.ProcFrame, s.handleFrame)
	s.d.Register(wire.ProcFrameRelay, s.handleFrameRelay)
	s.d.Register(wire.ProcWhoAmI, s.handleWhoAmI)
	s.d.Register(wire.ProcSteer, s.handleSteer)
	s.d.OnDisconnect = func(id int64) {
		s.env.ReleaseAll(id)
		// Round accounting must not leak: a departed session's
		// consumed-mark would otherwise sit in the map forever (and a
		// reconnecting session gets a fresh id anyway). The codec state
		// dies with the session too — that is what guarantees a
		// reconnecting v2 workstation restarts from a keyframe.
		s.mu.Lock()
		delete(s.consumedBy, id)
		delete(s.codecs, id)
		s.mu.Unlock()
	}
	return s, nil
}

// Dlib returns the underlying dlib server for Serve/Close.
func (s *Server) Dlib() *dlib.Server { return s.d }

// Env returns the shared environment (for local/in-process use, e.g.
// the stand-alone windtunnel mode and tests).
func (s *Server) Env() *env.Environment { return s.env }

// Stats returns a snapshot of the performance counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Recorder returns the per-stage frame recorder, for expvar export and
// benchmark reporting.
func (s *Server) Recorder() *obs.Recorder { return &s.rec }

// CacheStats reports the shared timestep cache's counters; ok is false
// when no cache is configured (memory-resident store or zero budgets).
func (s *Server) CacheStats() (stats store.CacheStats, ok bool) {
	if s.cache == nil {
		return store.CacheStats{}, false
	}
	return s.cache.Stats(), true
}

// LiveStats reports the live ring's producer/recycling counters; ok is
// false when the server is not in in-situ mode.
func (s *Server) LiveStats() (stats store.RingStats, ok bool) {
	if s.liveRing == nil {
		return store.RingStats{}, false
	}
	return s.liveRing.Stats(), true
}
