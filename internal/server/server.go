// Package server implements the distributed windtunnel's remote host —
// the role the Convex C3240 plays in the paper. It owns the dataset
// (in memory or streamed from disk with prefetch), the authoritative
// shared virtual environment, and the visualization computation; it
// accepts user commands over dlib and returns environment state plus
// computed geometry (figure 8).
package server

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/compute"
	"repro/internal/dlib"
	"repro/internal/env"
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/store"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// Config assembles a windtunnel server.
type Config struct {
	// Store supplies the dataset. Wrap a Disk store in a Prefetcher to
	// get the paper's overlapped-load pipeline.
	Store store.Store
	// Engine computes visualization geometry; nil uses the parallel
	// engine with GOMAXPROCS workers.
	Engine compute.Engine
	// Options sets integration parameters; zero value uses
	// integrate.DefaultOptions (RK2, 200-point paths).
	Options integrate.Options
	// MaxStreakParticles bounds each streakline rake's particle count;
	// 0 means 20,000.
	MaxStreakParticles int
	// Prefetch enables next-timestep prefetching when Store is (or
	// wraps) I/O-bound storage.
	Prefetch bool
}

// Stats is a snapshot of server-side performance counters.
type Stats struct {
	Frames       int64         // geometry recomputation rounds
	Points       int64         // total path points produced
	ComputeTime  time.Duration // cumulative visualization compute time
	LoadTime     time.Duration // cumulative timestep load wait
	BytesShipped int64         // encoded FrameReply bytes
}

// Server is the remote-host application layered on a dlib server.
type Server struct {
	d   *dlib.Server
	cfg Config
	env *env.Environment

	prefetcher *store.Prefetcher
	// window keeps the particle-path timestep range resident for
	// I/O-backed stores (§5.1: "the current timestep plus the maximum
	// particle path length").
	window *store.Window

	mu sync.Mutex // guards everything below
	// cur is the loaded timestep backing streamline/streak
	// computation.
	cur      *field.Field
	curStep  int
	streaks  map[int32]*integrate.Streak
	cache    *frameCache
	stats    Stats
	unsteady *field.Unsteady // non-nil when the store is fully resident
}

// frameCache holds one computed round of shared state: every session
// fetches the same reply until someone needs a fresh round.
type frameCache struct {
	reply      wire.FrameReply
	encoded    []byte
	consumedBy map[int64]bool
}

// New builds the application and registers its procedures on a fresh
// dlib server.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: nil store")
	}
	if cfg.Engine == nil {
		cfg.Engine = compute.Parallel{}
	}
	if cfg.Options.MaxSteps == 0 {
		cfg.Options = integrate.DefaultOptions()
	}
	if err := cfg.Options.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxStreakParticles == 0 {
		cfg.MaxStreakParticles = 20000
	}
	s := &Server{
		d:       dlib.NewServer(),
		cfg:     cfg,
		env:     env.New(cfg.Store.NumSteps()),
		streaks: make(map[int32]*integrate.Streak),
	}
	if mem, ok := cfg.Store.(*store.Memory); ok {
		s.unsteady = mem.Unsteady()
	}
	if cfg.Prefetch {
		s.prefetcher = store.NewPrefetcher(cfg.Store)
	}
	if s.unsteady == nil {
		// I/O-backed store: keep a particle-path window resident.
		w, err := store.NewWindow(cfg.Store, cfg.Options.MaxSteps+1)
		if err != nil {
			return nil, err
		}
		s.window = w
	}
	s.d.Register(wire.ProcHello, s.handleHello)
	s.d.Register(wire.ProcFrame, s.handleFrame)
	s.d.Register(wire.ProcWhoAmI, func(ctx *dlib.Ctx, _ []byte) ([]byte, error) {
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], uint64(ctx.Session.ID))
		return out[:], nil
	})
	s.d.OnDisconnect = func(id int64) { s.env.ReleaseAll(id) }
	return s, nil
}

// Dlib returns the underlying dlib server for Serve/Close.
func (s *Server) Dlib() *dlib.Server { return s.d }

// Env returns the shared environment (for local/in-process use, e.g.
// the stand-alone windtunnel mode and tests).
func (s *Server) Env() *env.Environment { return s.env }

// Stats returns a snapshot of the performance counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Server) handleHello(_ *dlib.Ctx, _ []byte) ([]byte, error) {
	g := s.cfg.Store.Grid()
	b := g.Bounds()
	return wire.EncodeDatasetInfo(wire.DatasetInfo{
		NI: uint32(g.NI), NJ: uint32(g.NJ), NK: uint32(g.NK),
		NumSteps:  uint32(s.cfg.Store.NumSteps()),
		DT:        s.cfg.Store.DT(),
		BoundsMin: b.Min,
		BoundsMax: b.Max,
	}), nil
}

// handleFrame is the once-per-frame exchange. dlib guarantees serial
// execution, so handler-side state needs no extra locking against
// other calls — the mutex protects against Stats() readers only.
func (s *Server) handleFrame(ctx *dlib.Ctx, payload []byte) ([]byte, error) {
	u, err := wire.DecodeClientUpdate(payload)
	if err != nil {
		return nil, err
	}
	user := ctx.Session.ID
	s.env.SetUserPose(user, env.UserPose{Head: u.Head, Hand: u.Hand, Gesture: u.Gesture})
	// Command failures (e.g. grabbing a held rake) must not kill the
	// frame; the client learns the outcome from the returned state.
	for _, cmd := range u.Commands {
		s.applyCommand(user, cmd)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// A new round is computed when this session has already seen the
	// current one, or when it just issued commands — the user must see
	// the effect of their own interaction within this frame (§1.2's
	// 1/8-second command-to-display loop).
	if s.cache == nil || s.cache.consumedBy[user] || len(u.Commands) > 0 {
		if err := s.recomputeLocked(); err != nil {
			return nil, err
		}
	}
	s.cache.consumedBy[user] = true
	s.stats.BytesShipped += int64(len(s.cache.encoded))
	return s.cache.encoded, nil
}

// applyCommand executes one user command against the environment.
// Errors are deliberately swallowed after the conflict rules run:
// "possible conflicting commands from different workstations are
// easily handled ... by a 'first come first served' rule."
func (s *Server) applyCommand(user int64, c wire.Command) {
	switch c.Kind {
	case wire.CmdAddRake:
		s.env.AddRake(c.P0, c.P1, int(c.NumSeeds), integrate.ToolKind(c.Tool))
	case wire.CmdRemoveRake:
		if s.env.RemoveRake(user, c.Rake) == nil {
			s.mu.Lock()
			delete(s.streaks, c.Rake)
			s.mu.Unlock()
		}
	case wire.CmdGrab:
		s.env.GrabRake(user, c.Rake, integrate.GrabPoint(c.Grab))
	case wire.CmdRelease:
		s.env.ReleaseRake(user, c.Rake)
	case wire.CmdMove:
		s.env.MoveRake(user, c.Rake, c.Pos)
	case wire.CmdSetSeeds:
		s.env.SetRakeSeeds(user, c.Rake, int(c.NumSeeds))
	case wire.CmdSetPlaying:
		s.env.SetPlaying(c.Flag != 0)
	case wire.CmdSetSpeed:
		s.env.SetSpeed(c.Value)
	case wire.CmdSeek:
		s.env.SeekTime(c.Value)
	case wire.CmdSetLoop:
		s.env.SetLoop(c.Flag != 0)
	case wire.CmdSetTool:
		if s.env.SetRakeTool(user, c.Rake, integrate.ToolKind(c.Tool)) == nil {
			// Tool changes orphan any streak state.
			s.mu.Lock()
			delete(s.streaks, c.Rake)
			s.mu.Unlock()
		}
	}
}

// recomputeLocked advances time, loads the needed timestep, computes
// all visualization geometry, and encodes the shared reply. Caller
// holds s.mu.
func (s *Server) recomputeLocked() error {
	ts := s.env.AdvanceTime()
	step := ts.Step()

	loadStart := time.Now()
	if s.cur == nil || step != s.curStep {
		f, err := s.loadStep(step)
		if err != nil {
			return fmt.Errorf("server: load step %d: %w", step, err)
		}
		s.cur = f
		s.curStep = step
	}
	loadTime := time.Since(loadStart)

	// Overlap: kick off the prefetch of the next step along the
	// playback direction while this frame computes (figure 8's
	// right-hand process).
	if s.prefetcher != nil {
		next := step + 1
		if ts.Speed < 0 {
			next = step - 1
		}
		if ts.Loop && next >= s.cfg.Store.NumSteps() {
			next = 0
		}
		if ts.Loop && next < 0 {
			next = s.cfg.Store.NumSteps() - 1
		}
		s.prefetcher.Prefetch(next)
	}

	computeStart := time.Now()
	g := s.cfg.Store.Grid()
	batch := compute.SteadyBatch{F: s.cur, G: g}
	reply := wire.FrameReply{
		Time: wire.TimeStatus{
			Current:  ts.Current,
			Speed:    ts.Speed,
			Playing:  ts.Playing,
			Loop:     ts.Loop,
			NumSteps: uint32(ts.NumSteps),
		},
	}
	for id, pose := range s.env.Users() {
		reply.Users = append(reply.Users, wire.UserState{
			ID: id, Head: pose.Head, Hand: pose.Hand, Gesture: pose.Gesture,
		})
	}

	var totalPoints int64
	for _, snap := range s.env.Rakes() {
		rake := snap.Rake
		reply.Rakes = append(reply.Rakes, wire.RakeState{
			ID: rake.ID, P0: rake.P0, P1: rake.P1,
			NumSeeds: uint32(rake.NumSeeds),
			Tool:     uint8(rake.Tool),
			Holder:   snap.Holder,
			Grab:     uint8(snap.Grab),
		})
		seeds := rake.SeedsGrid(g)
		if len(seeds) == 0 {
			continue
		}
		geo := wire.Geometry{Rake: rake.ID, Tool: uint8(rake.Tool)}
		switch rake.Tool {
		case integrate.ToolStreamline:
			paths, st := s.cfg.Engine.Streamlines(batch, seeds, ts.Current, s.cfg.Options)
			geo.Lines = toPhysicalLines(g, paths)
			totalPoints += st.Points + int64(len(paths))
		case integrate.ToolParticlePath:
			sampler := s.timeSampler(step)
			paths, st := s.cfg.Engine.ParticlePaths(sampler, seeds, ts.Current,
				float32(ts.NumSteps-1), s.cfg.Options)
			geo.Lines = toPhysicalLines(g, paths)
			totalPoints += st.Points + int64(len(paths))
		case integrate.ToolStreakline:
			streak := s.streaks[rake.ID]
			if streak == nil {
				streak = integrate.NewStreak(s.cfg.MaxStreakParticles)
				s.streaks[rake.ID] = streak
			}
			streak.Advance(batch, seeds, ts.Current, s.cfg.Options.StepSize, s.cfg.Options.Method)
			lines := streak.PolylineBySeed(rake.NumSeeds)
			geo.Lines = toPhysicalLines(g, lines)
			totalPoints += int64(len(streak.Particles))
		}
		reply.Geometry = append(reply.Geometry, geo)
	}
	computeTime := time.Since(computeStart)

	s.stats.Frames++
	s.stats.Points += totalPoints
	s.stats.ComputeTime += computeTime
	s.stats.LoadTime += loadTime
	reply.ComputeNanos = computeTime.Nanoseconds()
	reply.LoadNanos = loadTime.Nanoseconds()

	s.cache = &frameCache{
		reply:      reply,
		encoded:    wire.EncodeFrameReply(reply),
		consumedBy: make(map[int64]bool),
	}
	return nil
}

// loadStep fetches a timestep through the prefetcher when present.
func (s *Server) loadStep(step int) (*field.Field, error) {
	if s.prefetcher != nil {
		return s.prefetcher.LoadStep(step)
	}
	return s.cfg.Store.LoadStep(step)
}

// timeSampler returns an unsteady sampler for particle paths starting
// at timestep. With a resident dataset it samples with time
// interpolation; for I/O-backed stores it slides the resident window
// over [step, step+MaxSteps] first (§5.1's strategy), then samples
// through it.
func (s *Server) timeSampler(step int) integrate.Sampler {
	if s.unsteady != nil {
		return integrate.UnsteadySampler{U: s.unsteady}
	}
	src := s.cfg.Store
	if s.window != nil {
		// A failed slide degrades to on-demand loads; the sampler
		// still works.
		_ = s.window.SetBase(step)
		src = s.window
	}
	return &storeSampler{st: src, cache: make(map[int]*field.Field)}
}

// storeSampler samples an I/O-backed store with linear time
// interpolation, caching loaded steps for the duration of one
// computation (particle paths revisit the same bracketing steps for
// every seed).
type storeSampler struct {
	st    store.Store
	cache map[int]*field.Field
}

// Grid implements integrate.Sampler.
func (ss *storeSampler) Grid() *grid.Grid { return ss.st.Grid() }

// SampleVelocity implements integrate.Sampler.
func (ss *storeSampler) SampleVelocity(gc vmath.Vec3, t float32) vmath.Vec3 {
	last := ss.st.NumSteps() - 1
	if t <= 0 {
		return ss.step(0).Sample(ss.st.Grid(), gc)
	}
	if t >= float32(last) {
		return ss.step(last).Sample(ss.st.Grid(), gc)
	}
	t0 := int(t)
	frac := t - float32(t0)
	a := ss.step(t0).Sample(ss.st.Grid(), gc)
	b := ss.step(t0+1).Sample(ss.st.Grid(), gc)
	return a.Lerp(b, frac)
}

// step loads (and caches) timestep t; on load failure it returns an
// empty field, terminating paths at stagnation rather than crashing
// the frame.
func (ss *storeSampler) step(t int) *field.Field {
	if f, ok := ss.cache[t]; ok {
		return f
	}
	f, err := ss.st.LoadStep(t)
	if err != nil {
		g := ss.st.Grid()
		f = field.NewField(g.NI, g.NJ, g.NK, field.GridCoords)
	}
	ss.cache[t] = f
	return f
}

func toPhysicalLines(g *grid.Grid, lines [][]vmath.Vec3) [][]vmath.Vec3 {
	out := make([][]vmath.Vec3, len(lines))
	for i, l := range lines {
		out[i] = integrate.ToPhysical(g, l)
	}
	return out
}
