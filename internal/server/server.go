// Package server implements the distributed windtunnel's remote host —
// the role the Convex C3240 plays in the paper. It owns the dataset
// (in memory or streamed from disk with prefetch), the authoritative
// shared virtual environment, and the visualization computation; it
// accepts user commands over dlib and returns environment state plus
// computed geometry (figure 8).
//
// The frame hot path is memoized at two levels. Whole-frame: when the
// environment version is unchanged since the last round (paused
// playback, idle users) the previous encoded reply is served verbatim,
// so identical frames are byte-identical by construction. Per-rake:
// streamlines and particle paths are pure functions of the rake's
// geometry inputs (endpoints, seed count, tool — tracked by a version
// counter in env) and the timestep, so only rakes whose inputs changed
// are recomputed; independent dirty rakes recompute concurrently on a
// bounded worker pool.
//
// Frames fan out encode-once: each round is wire-encoded exactly one
// time into a ref-counted buffer shared by every session served within
// that round — a session's reply holds a reference until dlib finishes
// writing it (Ctx.ReplyDone), and buffers whose references drain
// recycle into a small free list. Adding workstations therefore adds
// sends, not encodes: frames-encoded per round is independent of the
// session count, and steady-state frames do near-zero allocation. An
// optional shared timestep cache (store.Cache) sits under the
// prefetcher so the sessions' overlapping playback positions hit
// memory instead of re-reading mass storage.
//
//vw:deterministic
package server

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/compute"
	"repro/internal/dlib"
	"repro/internal/env"
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// Config assembles a windtunnel server.
type Config struct {
	// Store supplies the dataset. Wrap a Disk store in a Prefetcher to
	// get the paper's overlapped-load pipeline.
	Store store.Store
	// Engine computes visualization geometry; nil uses the parallel
	// engine with GOMAXPROCS workers.
	Engine compute.Engine
	// Options sets integration parameters; zero value uses
	// integrate.DefaultOptions (RK2, 200-point paths).
	Options integrate.Options
	// MaxStreakParticles bounds each streakline rake's particle count;
	// 0 means 20,000.
	MaxStreakParticles int
	// MaxSeedsPerRake clamps client-requested seed counts: one hostile
	// ClientUpdate must not be able to request an unbounded integration
	// workload. 0 means 4096.
	MaxSeedsPerRake int
	// RakeWorkers bounds how many dirty rakes recompute concurrently;
	// 0 means GOMAXPROCS.
	RakeWorkers int
	// Prefetch enables next-timestep prefetching when Store is (or
	// wraps) I/O-bound storage.
	Prefetch bool
	// CacheSteps / CacheBytes enable the shared timestep LRU between
	// the server and an I/O-backed Store: CacheSteps bounds resident
	// timesteps, CacheBytes bounds their total size (either may be
	// zero for "no bound on that axis"; both zero disables the cache).
	// Fully resident stores (store.Memory) are never wrapped — they
	// are already the cache.
	CacheSteps int
	CacheBytes int64
	// Budget is the per-frame integration budget the governor holds
	// the server under by predictive load-shedding (§5.3: only as many
	// path points fit a frame as the machine can integrate in 0.1 s).
	// 0 disables the governor entirely — every frame runs at full
	// fidelity, byte-identical to pre-governor behavior.
	Budget time.Duration
	// Clock supplies stage timing and the governor's calibration
	// measurements; nil uses the real wall clock. Tests inject a
	// netsim.ManualClock, under which every stage measures zero, the
	// EWMA freezes, and frames replay byte-identically.
	Clock netsim.Clock
	// MaxCodec caps the wire codec negotiated at hello: 0 or
	// wire.MaxCodec offers codec v2 (delta frames + quantized points),
	// 1 pins every session to the original v1 encoding. Sessions that
	// never call ProcHello2 always speak v1, byte for byte.
	MaxCodec int
}

// Stats is a snapshot of server-side performance counters.
type Stats struct {
	// Frames counts geometry rounds, including rounds served whole
	// from the frame memo.
	Frames int64
	// Points counts path points shipped in FrameReply geometry,
	// summed per round — the §5.3 quantity Table 1 prices. Every tool
	// counts identically: exactly the points that go on the wire.
	Points int64
	// ComputeTime is cumulative visualization compute (integrate
	// stage, all rakes); LoadTime is cumulative timestep load wait;
	// EncodeTime is cumulative wire-encoding time.
	ComputeTime time.Duration
	LoadTime    time.Duration
	EncodeTime  time.Duration
	// BytesShipped counts encoded FrameReply bytes summed over every
	// per-session send (a round consumed by three workstations counts
	// three times).
	BytesShipped int64
	// RakesComputed / RakesReused count per-rake geometry
	// recomputations vs dirty-rake memo hits; FramesReused counts
	// rounds served whole from the previous encode.
	RakesComputed int64
	RakesReused   int64
	FramesReused  int64
	// FramesEncoded counts wire encodes of a round buffer;
	// FramesShipped counts per-session reply sends. Encode-once means
	// FramesEncoded tracks rounds (not sessions) while FramesShipped
	// grows with the number of attached workstations.
	FramesEncoded int64
	FramesShipped int64
	// FramesShed counts encoded rounds that went out with a non-zero
	// degradation byte — rounds where the governor clamped work, or
	// was still serving clamped geometry from an earlier clamp.
	FramesShed int64
	// PredictedTime is the cumulative governor cost prediction over
	// encoded rounds (zero until the EWMA calibrates).
	PredictedTime time.Duration
	// V2Frames counts replies shipped with codec v2; V2RakesInline and
	// V2RakesRef split their geometry directory entries into full
	// (quantized) segments vs delta references to geometry the session
	// already holds. A high ref share is the Wire 2.0 bandwidth win.
	V2Frames      int64
	V2RakesInline int64
	V2RakesRef    int64
}

// Server is the remote-host application layered on a dlib server.
type Server struct {
	d     *dlib.Server
	cfg   Config
	env   *env.Environment
	rec   obs.Recorder
	clock netsim.Clock

	// st is the effective store: cfg.Store, optionally wrapped by the
	// shared timestep cache. All dataset access goes through it.
	st    store.Store
	cache *store.Cache

	prefetcher *store.Prefetcher
	// window keeps the particle-path timestep range resident for
	// I/O-backed stores (§5.1: "the current timestep plus the maximum
	// particle path length").
	window *store.Window
	// unsteady is non-nil when the store is fully resident. Immutable
	// after New, so pool workers may read it without the lock.
	unsteady *field.Unsteady

	mu sync.Mutex // guards everything below
	// cur is the loaded timestep backing streamline/streak
	// computation.
	cur      *field.Field
	curStep  int
	streaks  map[int32]*integrate.Streak
	geoCache map[int32]*rakeGeom
	round    uint64 // recompute round counter, for cache sweeping

	// Current round: the ref-counted encode-once buffer (nil = no
	// round yet), the env version and point count it was computed at,
	// and which sessions have consumed it. free holds drained buffers
	// for reuse. All buffers below recycle across rounds.
	fb           *frameBuf
	free         []*frameBuf
	consumedBy   map[int64]bool
	lastVersion  uint64
	lastPoints   int64
	lastDegraded uint8

	// Wire 2.0 state. The round layer splits into a shared payload —
	// lastMeta (the round's header fields) plus the per-rake encoded
	// segments cached on each rakeGeom — and a per-session part: the
	// codec negotiated at hello and the delta-shadow FrameEncoder that
	// decides, per rake, whether this session gets the shared segment
	// or a reference record. geoSeq numbers geometry content: it is
	// bumped once per rake recompute, in job order, so segments (and
	// therefore frames) stay deterministic per (client, round).
	maxCodec uint8
	quant    wire.Quantizer
	codecs   map[int64]*sessionState
	lastMeta wire.FrameReply // Geometry nil; slices alias the wire scratch
	geoSeq   uint64

	seqScratch []uint64
	segScratch [][]byte

	userScratch []env.UserSnapshot
	rakeScratch []env.RakeSnapshot
	usersWire   []wire.UserState
	rakesWire   []wire.RakeState
	geomWire    []wire.Geometry
	geomGC      []*rakeGeom // aligned with geomWire, for point totals
	jobs        []rakeJob

	// Governor state: the planner itself plus recycled scratch for its
	// per-frame request/level/job-index triples.
	gov        *governor
	reqScratch []shedRequest
	reqJobs    []int
	lvlScratch []shedLevel

	stats Stats
}

// rakeGeom memoizes one rake's geometry and the inputs it was computed
// from. Streamlines and particle paths are pure functions of (rake
// version, timestep, time), so matching inputs mean the cached
// wire.Geometry is the answer; streaklines always advance and are
// never memoized. The line buffers are recycled on recompute.
type rakeGeom struct {
	haveGeo bool
	version uint64  // rake mutation counter at compute time
	step    int     // timestep the field came from
	timeKey float32 // continuous time the integrators saw

	seeds        []vmath.Vec3 // cached SeedsGrid, keyed by seedsVersion
	seedsVersion uint64
	haveSeeds    bool

	geo    wire.Geometry
	points int64  // cached geo.NumPoints()
	touch  uint64 // last round this rake was seen, for sweeping

	// shedSeeds/shedSteps record the fidelity the cached geometry was
	// computed at. A memo hit requires full fidelity; a valid-but-shed
	// entry is an upgrade candidate the governor re-admits when load
	// drops, and its gap feeds the frame's degradation byte.
	shedSeeds int
	shedSteps int

	// seq numbers this rake's geometry content for codec v2: it
	// changes exactly when computeRake rewrites geo, so a session
	// whose shadow holds (rake, seq) can be sent a reference instead
	// of the points. seg caches the encoded v2 segment for the current
	// seq (segSeq tracks which); it is built lazily on the first v2
	// consumer and shared by every session that needs the full rake.
	seq    uint64
	seg    []byte
	segSeq uint64
}

// sessionState is the per-session wire state: the codec accepted at
// hello and, for v2 sessions, the delta-shadow encoder tracking which
// geometry sequence numbers the workstation already holds. Guarded by
// Server.mu; it dies with the session (disconnect), which is what
// forces a full keyframe on reconnect.
type sessionState struct {
	codec uint8
	enc   *wire.FrameEncoder
}

// rakeJob is one dirty rake queued for recomputation, carrying the
// governor's per-rake decision for the round.
type rakeJob struct {
	idx    int // index into geomWire
	snap   env.RakeSnapshot
	gc     *rakeGeom
	streak *integrate.Streak // non-nil for streakline rakes

	// upgrade marks a rake whose memo is valid but was computed at
	// shed fidelity; the planner either re-admits it to full fidelity
	// or sets skip to keep serving the clamped memo.
	upgrade bool
	skip    bool
	// level is the planned fidelity; engine overrides cfg.Engine for
	// shed batches (nil = configured engine).
	level  shedLevel
	engine compute.Engine
	// units is the measured §5.3 work the job actually did, written by
	// computeRake and folded into the governor's EWMA.
	units int64
}

// frameBuf is one round's encoded reply, shared zero-copy by every
// session served within the round. refs counts in-flight sends (dlib
// writes that have not yet completed); it is guarded by Server.mu. The
// release closure is allocated once per buffer so handing a reference
// back per send costs nothing.
type frameBuf struct {
	buf     []byte
	refs    int
	release func()
}

// maxFreeFrameBufs caps the drained-buffer free list. Buffers beyond
// the cap are dropped to the GC; in steady state one or two buffers
// circulate (one being written to slow clients, one being encoded).
const maxFreeFrameBufs = 8

// newFrameBuf allocates a buffer whose release returns it to the
// server's free list once its last in-flight send completes — unless
// it is still the current round buffer, which stays put for in-place
// reuse.
func (s *Server) newFrameBuf() *frameBuf {
	fb := &frameBuf{}
	fb.release = func() {
		s.mu.Lock()
		fb.refs--
		if fb.refs == 0 && s.fb != fb && len(s.free) < maxFreeFrameBufs {
			s.free = append(s.free, fb)
		}
		s.mu.Unlock()
	}
	return fb
}

// acquireEncodeBufLocked returns the buffer the next encode may write
// into: the current round buffer when no sends still reference it
// (in-place reuse, the steady-state path), otherwise a drained buffer
// from the free list or a fresh one. Caller holds s.mu.
func (s *Server) acquireEncodeBufLocked() *frameBuf {
	if fb := s.fb; fb != nil && fb.refs == 0 {
		return fb
	}
	if n := len(s.free); n > 0 {
		fb := s.free[n-1]
		s.free = s.free[:n-1]
		return fb
	}
	return s.newFrameBuf()
}

// acquireSessionBufLocked returns a buffer for a per-session codec-v2
// assembly. Unlike the round buffer it is never reused in place — it
// is referenced exactly once, by the send it was built for, and its
// release hook returns it to the same free list. Caller holds s.mu.
func (s *Server) acquireSessionBufLocked() *frameBuf {
	if n := len(s.free); n > 0 {
		fb := s.free[n-1]
		s.free = s.free[:n-1]
		return fb
	}
	return s.newFrameBuf()
}

// New builds the application and registers its procedures on a fresh
// dlib server.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: nil store")
	}
	if cfg.Engine == nil {
		cfg.Engine = compute.Parallel{}
	}
	if cfg.Options.MaxSteps == 0 {
		cfg.Options = integrate.DefaultOptions()
	}
	if err := cfg.Options.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxStreakParticles == 0 {
		cfg.MaxStreakParticles = 20000
	}
	if cfg.MaxSeedsPerRake == 0 {
		cfg.MaxSeedsPerRake = 4096
	}
	if cfg.Clock == nil {
		cfg.Clock = netsim.RealClock
	}
	if cfg.MaxCodec == 0 {
		cfg.MaxCodec = wire.MaxCodec
	}
	if cfg.MaxCodec < wire.CodecV1 || cfg.MaxCodec > wire.MaxCodec {
		return nil, fmt.Errorf("server: MaxCodec %d outside [%d, %d]",
			cfg.MaxCodec, wire.CodecV1, wire.MaxCodec)
	}
	govWorkers := cfg.RakeWorkers
	if govWorkers <= 0 {
		govWorkers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		d:          dlib.NewServer(),
		cfg:        cfg,
		st:         cfg.Store,
		env:        env.New(cfg.Store.NumSteps()),
		clock:      cfg.Clock,
		gov:        newGovernor(cfg.Budget, cfg.Clock, govWorkers),
		streaks:    make(map[int32]*integrate.Streak),
		geoCache:   make(map[int32]*rakeGeom),
		consumedBy: make(map[int64]bool),
		maxCodec:   uint8(cfg.MaxCodec),
		quant:      wire.Quantizer{Min: cfg.Store.Grid().Bounds().Min, Max: cfg.Store.Grid().Bounds().Max},
		codecs:     make(map[int64]*sessionState),
	}
	// Frame replies opt out of copy-under-dispatch via the per-send
	// reference on the round buffer (Ctx.ReplyDone); the flag still
	// covers any handler that recycles buffers without registering a
	// release hook.
	s.d.CopyReplies = true
	if mem, ok := cfg.Store.(*store.Memory); ok {
		s.unsteady = mem.Unsteady()
	}
	if (cfg.CacheSteps > 0 || cfg.CacheBytes > 0) && s.unsteady == nil {
		// Shared timestep LRU between the pipeline and mass storage.
		// Layering: prefetcher / window -> cache -> disk, so prefetched
		// and windowed loads fill the cache every session benefits from.
		c, err := store.NewCache(cfg.Store, store.CacheOptions{
			MaxSteps: cfg.CacheSteps,
			MaxBytes: cfg.CacheBytes,
		})
		if err != nil {
			return nil, err
		}
		s.cache = c
		s.st = c
	}
	if cfg.Prefetch {
		s.prefetcher = store.NewPrefetcher(s.st)
	}
	if s.unsteady == nil {
		// I/O-backed store: keep a particle-path window resident.
		w, err := store.NewWindow(s.st, cfg.Options.MaxSteps+1)
		if err != nil {
			return nil, err
		}
		s.window = w
	}
	s.d.Register(wire.ProcHello, s.handleHello)
	s.d.Register(wire.ProcHello2, s.handleHello2)
	s.d.Register(wire.ProcFrame, s.handleFrame)
	s.d.Register(wire.ProcWhoAmI, func(ctx *dlib.Ctx, _ []byte) ([]byte, error) {
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], uint64(ctx.Session.ID))
		return out[:], nil
	})
	s.d.OnDisconnect = func(id int64) {
		s.env.ReleaseAll(id)
		// Round accounting must not leak: a departed session's
		// consumed-mark would otherwise sit in the map forever (and a
		// reconnecting session gets a fresh id anyway). The codec state
		// dies with the session too — that is what guarantees a
		// reconnecting v2 workstation restarts from a keyframe.
		s.mu.Lock()
		delete(s.consumedBy, id)
		delete(s.codecs, id)
		s.mu.Unlock()
	}
	return s, nil
}

// Dlib returns the underlying dlib server for Serve/Close.
func (s *Server) Dlib() *dlib.Server { return s.d }

// Env returns the shared environment (for local/in-process use, e.g.
// the stand-alone windtunnel mode and tests).
func (s *Server) Env() *env.Environment { return s.env }

// Stats returns a snapshot of the performance counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Recorder returns the per-stage frame recorder, for expvar export and
// benchmark reporting.
func (s *Server) Recorder() *obs.Recorder { return &s.rec }

// CacheStats reports the shared timestep cache's counters; ok is false
// when no cache is configured (memory-resident store or zero budgets).
func (s *Server) CacheStats() (stats store.CacheStats, ok bool) {
	if s.cache == nil {
		return store.CacheStats{}, false
	}
	return s.cache.Stats(), true
}

// datasetInfo describes the dataset for both hello variants. The
// bounds double as the codec-v2 quantization box, so they must match
// s.quant exactly.
func (s *Server) datasetInfo() wire.DatasetInfo {
	g := s.st.Grid()
	b := g.Bounds()
	return wire.DatasetInfo{
		NI: uint32(g.NI), NJ: uint32(g.NJ), NK: uint32(g.NK),
		NumSteps:  uint32(s.st.NumSteps()),
		DT:        s.st.DT(),
		BoundsMin: b.Min,
		BoundsMax: b.Max,
	}
}

func (s *Server) handleHello(_ *dlib.Ctx, _ []byte) ([]byte, error) {
	return wire.EncodeDatasetInfo(s.datasetInfo()), nil
}

// handleHello2 is the codec-negotiating hello: the client states the
// highest codec it speaks, the server answers with the codec this
// session will use (bounded by Config.MaxCodec) plus the dataset info.
// Sessions that never call it stay on codec v1. Re-negotiating
// mid-session resets the delta shadow, so the next frame is a
// keyframe.
func (s *Server) handleHello2(ctx *dlib.Ctx, payload []byte) ([]byte, error) {
	req, err := wire.DecodeHelloRequest(payload)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	codec := wire.NegotiateCodec(req, s.maxCodec)
	st := s.codecs[ctx.Session.ID]
	if st == nil {
		st = &sessionState{}
		s.codecs[ctx.Session.ID] = st
	}
	st.codec = codec
	if st.enc != nil {
		st.enc.Reset()
	}
	s.mu.Unlock()
	return wire.EncodeHelloReply(codec, s.datasetInfo()), nil
}

// handleFrame is the once-per-frame exchange. dlib guarantees serial
// execution, so handler-side state needs no extra locking against
// other calls — the mutex protects against Stats() readers and frame
// buffer releases, which fire from connection goroutines after their
// writes complete.
//
//vw:hotpath
func (s *Server) handleFrame(ctx *dlib.Ctx, payload []byte) ([]byte, error) {
	u, err := wire.DecodeClientUpdate(payload)
	if err != nil {
		return nil, err
	}
	user := ctx.Session.ID
	if finiteMat4(u.Head) && finiteVec3(u.Hand) {
		// A NaN/Inf pose would poison every participant's user list;
		// keep the previous pose instead.
		s.env.SetUserPose(user, env.UserPose{Head: u.Head, Hand: u.Hand, Gesture: u.Gesture})
	}
	// Command failures (e.g. grabbing a held rake) must not kill the
	// frame; the client learns the outcome from the returned state.
	for _, cmd := range u.Commands {
		s.applyCommand(user, cmd)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// A new round is computed when this session has already seen the
	// current one, or when it just issued commands — the user must see
	// the effect of their own interaction within this frame (§1.2's
	// 1/8-second command-to-display loop).
	if s.fb == nil || s.consumedBy[user] || len(u.Commands) > 0 {
		if err := s.recomputeLocked(); err != nil {
			return nil, err
		}
	}
	s.consumedBy[user] = true
	// Codec v2 sessions get a per-session assembly: the shared round
	// payload (header meta + cached per-rake segments) filtered through
	// this session's delta shadow.
	if st := s.codecs[user]; st != nil && st.codec >= wire.CodecV2 {
		return s.serveFrameV2Locked(ctx, st)
	}
	// Encode-once fan-out: hand this session a reference to the shared
	// round buffer; dlib writes it zero-copy and the release hook
	// drops the reference when the send is done.
	fb := s.fb
	fb.refs++
	ctx.ReplyDone(fb.release)
	s.stats.FramesShipped++
	s.stats.BytesShipped += int64(len(fb.buf))
	s.rec.ObserveShip(int64(len(fb.buf)))
	return fb.buf, nil
}

// serveFrameV2Locked assembles this session's codec-v2 reply from the
// shared round payload: the round's header fields (lastMeta) plus, per
// rake, either the shared cached segment (encoded once per geometry
// version, for every session) or — when the session's shadow already
// holds the rake's current sequence — a few-byte reference record.
// The reply lands in a pooled per-session buffer released by the same
// ReplyDone mechanism as round buffers. Caller holds s.mu.
func (s *Server) serveFrameV2Locked(ctx *dlib.Ctx, st *sessionState) ([]byte, error) {
	if st.enc == nil {
		st.enc = wire.NewFrameEncoder(s.quant)
	}
	s.seqScratch = s.seqScratch[:0]
	s.segScratch = s.segScratch[:0]
	for _, gc := range s.geomGC {
		if gc.segSeq != gc.seq {
			// Encode-once, v2 edition: the segment is built the first
			// time any v2 session needs this geometry version and
			// reused until the rake recomputes.
			gc.seg = wire.AppendGeomV2(gc.seg[:0], gc.geo, s.quant)
			gc.segSeq = gc.seq
		}
		s.seqScratch = append(s.seqScratch, gc.seq)
		s.segScratch = append(s.segScratch, gc.seg)
	}
	reply := s.lastMeta
	reply.Geometry = s.geomWire
	fb := s.acquireSessionBufLocked()
	fb.buf = st.enc.AppendFrame(fb.buf[:0], reply, s.seqScratch, s.segScratch)
	fb.refs++
	ctx.ReplyDone(fb.release)
	s.stats.FramesShipped++
	s.stats.V2Frames++
	s.stats.V2RakesInline += int64(st.enc.LastInline)
	s.stats.V2RakesRef += int64(st.enc.LastRef)
	s.stats.BytesShipped += int64(len(fb.buf))
	s.rec.ObserveShip(int64(len(fb.buf)))
	return fb.buf, nil
}

// finiteVec3 reports whether every component is a finite number.
func finiteVec3(v vmath.Vec3) bool {
	return finite32(v.X) && finite32(v.Y) && finite32(v.Z)
}

// finiteMat4 reports whether every element is a finite number.
func finiteMat4(m vmath.Mat4) bool {
	for _, v := range m {
		if !finite32(v) {
			return false
		}
	}
	return true
}

func finite32(f float32) bool {
	// NaN != NaN; the bound excludes ±Inf.
	return f == f && f <= math.MaxFloat32 && f >= -math.MaxFloat32
}

// validTool reports whether a client-supplied tool id is a known
// visualization tool.
func validTool(t uint8) bool {
	return integrate.ToolKind(t) <= integrate.ToolStreakline
}

// clampSeeds bounds a client-requested seed count. Values above the
// cap are clamped rather than rejected, matching the command model's
// swallow-and-show-state philosophy; non-positive values pass through
// to the environment's own validation.
func (s *Server) clampSeeds(n int) int {
	if n > s.cfg.MaxSeedsPerRake {
		return s.cfg.MaxSeedsPerRake
	}
	return n
}

// applyCommand executes one user command against the environment.
// Errors are deliberately swallowed after the conflict rules run:
// "possible conflicting commands from different workstations are
// easily handled ... by a 'first come first served' rule." Hostile
// numeric payloads (NaN/Inf endpoints, unknown tool ids) are dropped
// here, before they can reach the environment: a rejected command must
// not bump any version counter or corrupt shared state.
func (s *Server) applyCommand(user int64, c wire.Command) {
	switch c.Kind {
	case wire.CmdAddRake:
		if !finiteVec3(c.P0) || !finiteVec3(c.P1) || !validTool(c.Tool) {
			return
		}
		s.env.AddRake(c.P0, c.P1, s.clampSeeds(int(c.NumSeeds)), integrate.ToolKind(c.Tool))
	case wire.CmdRemoveRake:
		if s.env.RemoveRake(user, c.Rake) == nil {
			s.mu.Lock()
			delete(s.streaks, c.Rake)
			delete(s.geoCache, c.Rake)
			s.mu.Unlock()
		}
	case wire.CmdGrab:
		s.env.GrabRake(user, c.Rake, integrate.GrabPoint(c.Grab))
	case wire.CmdRelease:
		s.env.ReleaseRake(user, c.Rake)
	case wire.CmdMove:
		if !finiteVec3(c.Pos) {
			return
		}
		s.env.MoveRake(user, c.Rake, c.Pos)
	case wire.CmdSetSeeds:
		s.env.SetRakeSeeds(user, c.Rake, s.clampSeeds(int(c.NumSeeds)))
	case wire.CmdSetPlaying:
		s.env.SetPlaying(c.Flag != 0)
	case wire.CmdSetSpeed:
		if !finite32(c.Value) {
			return
		}
		s.env.SetSpeed(c.Value)
	case wire.CmdSeek:
		if !finite32(c.Value) {
			return
		}
		s.env.SeekTime(c.Value)
	case wire.CmdSetLoop:
		s.env.SetLoop(c.Flag != 0)
	case wire.CmdSetTool:
		if !validTool(c.Tool) {
			return
		}
		if s.env.SetRakeTool(user, c.Rake, integrate.ToolKind(c.Tool)) == nil {
			// Tool changes orphan any streak state.
			s.mu.Lock()
			delete(s.streaks, c.Rake)
			s.mu.Unlock()
		}
	}
}

// recomputeLocked advances time, loads the needed timestep, computes
// geometry for every rake whose inputs changed (reusing memoized
// geometry for the rest), and encodes the shared reply into the
// recycled round buffer. Caller holds s.mu.
//
//vw:hotpath
func (s *Server) recomputeLocked() error {
	ts := s.env.AdvanceTime()
	version := s.env.Version()
	step := ts.Step()

	// Whole-frame memo: if nothing observable changed and no
	// streakline needs advancing, the previous round's bytes are this
	// round's bytes — the round buffer is served again (same Round on
	// the wire, so clients can tell the scene held still). This is
	// also what makes identical frames encode byte-identically. A
	// degraded frame is never frozen this way: the round must rerun so
	// the governor can admit upgrades and restore full fidelity.
	if s.fb != nil && version == s.lastVersion &&
		step == s.curStep && len(s.streaks) == 0 && s.lastDegraded == 0 {
		clear(s.consumedBy)
		s.stats.Frames++
		s.stats.FramesReused++
		s.stats.Points += s.lastPoints
		s.rec.Observe(obs.FrameSample{
			FrameReused: true,
			RakesReused: len(s.geoCache),
			Points:      s.lastPoints,
			Bytes:       int64(len(s.fb.buf)),
		})
		return nil
	}

	loadStart := s.clock.Now()
	if s.cur == nil || step != s.curStep {
		f, err := s.loadStep(step)
		if err != nil {
			return fmt.Errorf("server: load step %d: %w", step, err) //vw:allow hotpath -- error path, frame already lost
		}
		s.cur = f
		s.curStep = step
	}
	loadTime := s.clock.Now().Sub(loadStart)

	// Overlap: kick off the prefetch of the next step along the
	// playback direction while this frame computes (figure 8's
	// right-hand process). At a non-looping dataset boundary there is
	// no next step — skip rather than asking the prefetcher for an
	// out-of-range load.
	if s.prefetcher != nil {
		next := step + 1
		if ts.Speed < 0 {
			next = step - 1
		}
		if ts.Loop && next >= s.st.NumSteps() {
			next = 0
		}
		if ts.Loop && next < 0 {
			next = s.st.NumSteps() - 1
		}
		if next >= 0 && next < s.st.NumSteps() {
			s.prefetcher.Prefetch(next)
		}
	}

	computeStart := s.clock.Now()
	g := s.st.Grid()
	batch := compute.SteadyBatch{F: s.cur, G: g}
	s.round++

	s.userScratch = s.env.AppendUsers(s.userScratch[:0])
	s.usersWire = s.usersWire[:0]
	for _, u := range s.userScratch {
		s.usersWire = append(s.usersWire, wire.UserState{
			ID: u.ID, Head: u.Pose.Head, Hand: u.Pose.Hand, Gesture: u.Pose.Gesture,
		})
	}

	// Pass 1 (serial): snapshot rakes, refresh seed caches, and split
	// rakes into memo hits and recompute jobs.
	s.rakeScratch = s.env.AppendRakes(s.rakeScratch[:0])
	s.rakesWire = s.rakesWire[:0]
	s.geomWire = s.geomWire[:0]
	s.geomGC = s.geomGC[:0]
	s.jobs = s.jobs[:0]
	reused := 0
	for _, snap := range s.rakeScratch {
		rake := snap.Rake
		s.rakesWire = append(s.rakesWire, wire.RakeState{
			ID: rake.ID, P0: rake.P0, P1: rake.P1,
			NumSeeds: uint32(rake.NumSeeds),
			Tool:     uint8(rake.Tool),
			Holder:   snap.Holder,
			Grab:     uint8(snap.Grab),
		})
		gc := s.geoCache[rake.ID]
		if gc == nil {
			gc = &rakeGeom{}
			s.geoCache[rake.ID] = gc
		}
		gc.touch = s.round
		if !gc.haveSeeds || gc.seedsVersion != snap.Version {
			gc.seeds = rake.SeedsGrid(g)
			gc.seedsVersion = snap.Version
			gc.haveSeeds = true
		}
		if len(gc.seeds) == 0 {
			continue
		}
		idx := len(s.geomWire)
		s.geomWire = append(s.geomWire, wire.Geometry{})
		s.geomGC = append(s.geomGC, gc)
		memoValid := rake.Tool != integrate.ToolStreakline && gc.haveGeo &&
			gc.version == snap.Version && gc.step == step && gc.timeKey == ts.Current
		if memoValid && gc.shedSeeds == len(gc.seeds) && gc.shedSteps == s.cfg.Options.MaxSteps {
			s.geomWire[idx] = gc.geo
			reused++
			continue
		}
		var streak *integrate.Streak
		if rake.Tool == integrate.ToolStreakline {
			streak = s.streaks[rake.ID]
			if streak == nil {
				streak = integrate.NewStreak(s.cfg.MaxStreakParticles)
				s.streaks[rake.ID] = streak
			}
		}
		// A valid-but-shed memo is an upgrade candidate: the planner
		// either re-admits it to full fidelity or keeps serving the
		// clamped geometry.
		s.jobs = append(s.jobs, rakeJob{idx: idx, snap: snap, gc: gc, streak: streak, upgrade: memoValid})
	}
	if len(s.geoCache) > len(s.rakeScratch) {
		// Rakes removed outside CmdRemoveRake (direct env use): sweep
		// cache entries not seen this round.
		for id, gc := range s.geoCache {
			if gc.touch != s.round {
				delete(s.geoCache, id)
			}
		}
	}

	// Plan: price every job in §5.3 units and decide this round's shed
	// levels before any integration runs.
	predicted := s.planJobsLocked()
	computed := 0
	for i := range s.jobs {
		if s.jobs[i].skip {
			reused++
		} else {
			computed++
		}
	}

	// Pass 2: recompute dirty rakes, concurrently when there are
	// several — independent rakes are the paper's natural parallel
	// unit above the per-seed fan-out inside the engines.
	s.runJobsLocked(batch, g, ts, step)
	computeTime := s.clock.Now().Sub(computeStart)

	// Assign codec-v2 geometry sequence numbers in job order: serial,
	// deterministic, and bumped exactly when a rake's geometry was
	// recomputed this round. Delta encoders key their shadows on these.
	for i := range s.jobs {
		if !s.jobs[i].skip {
			s.geoSeq++
			s.jobs[i].gc.seq = s.geoSeq
		}
	}

	// Calibrate the EWMA from what the integrate stage actually cost
	// per unit of work it actually did.
	var jobUnits int64
	for i := range s.jobs {
		if !s.jobs[i].skip {
			jobUnits += s.jobs[i].units
		}
	}
	s.gov.observe(computeTime, jobUnits)

	var totalPoints int64
	var fullU, actualU int64
	fullSteps := int64(s.cfg.Options.MaxSteps)
	for i, gc := range s.geomGC {
		s.geomWire[i] = gc.geo
		totalPoints += gc.points
		fullU += int64(len(gc.seeds)) * fullSteps
		actualU += int64(gc.shedSeeds) * int64(gc.shedSteps)
	}
	degraded := degradedByte(actualU, fullU)

	encodeStart := s.clock.Now()
	reply := wire.FrameReply{
		Time: wire.TimeStatus{
			Current:  ts.Current,
			Speed:    ts.Speed,
			Playing:  ts.Playing,
			Loop:     ts.Loop,
			NumSteps: uint32(ts.NumSteps),
		},
		Users:        s.usersWire,
		Rakes:        s.rakesWire,
		Geometry:     s.geomWire,
		ComputeNanos: computeTime.Nanoseconds(),
		LoadNanos:    loadTime.Nanoseconds(),
		Round:        s.round,
		Degraded:     degraded,
	}
	// Encode once into a buffer no in-flight send still references:
	// the current buffer in place when its references have drained
	// (steady state), a recycled drained buffer otherwise.
	fb := s.acquireEncodeBufLocked()
	fb.buf = wire.AppendFrameReply(fb.buf[:0], reply)
	s.fb = fb
	// Shared round payload for codec-v2 sessions: the header fields
	// without geometry. Each v2 session marries it to the cached
	// per-rake segments through its own delta shadow.
	s.lastMeta = reply
	s.lastMeta.Geometry = nil
	encodeTime := s.clock.Now().Sub(encodeStart)

	clear(s.consumedBy)
	s.lastVersion = version
	s.lastPoints = totalPoints
	s.lastDegraded = degraded

	s.stats.Frames++
	s.stats.FramesEncoded++
	s.stats.Points += totalPoints
	s.stats.ComputeTime += computeTime
	s.stats.LoadTime += loadTime
	s.stats.EncodeTime += encodeTime
	s.stats.RakesComputed += int64(computed)
	s.stats.RakesReused += int64(reused)
	s.stats.PredictedTime += predicted
	if degraded > 0 {
		s.stats.FramesShed++
	}
	var shedFrac float64
	if fullU > 0 {
		shedFrac = 1 - float64(actualU)/float64(fullU)
	}
	s.rec.Observe(obs.FrameSample{
		Load:          loadTime,
		Integrate:     computeTime,
		Encode:        encodeTime,
		RakesComputed: computed,
		RakesReused:   reused,
		Points:        totalPoints,
		Bytes:         int64(len(fb.buf)),
		Predicted:     predicted,
		Budget:        s.gov.budget,
		Shed:          shedFrac,
	})
	return nil
}

// planJobsLocked runs the governor over this round's jobs: it prices
// each mandatory (dirty) job, asks the planner for shed levels, then
// greedily re-admits upgrade candidates — valid memos computed at shed
// fidelity — back to full fidelity in rake order while the predicted
// frame stays under budget. Caller holds s.mu.
func (s *Server) planJobsLocked() time.Duration {
	upp := compute.UnitsPerPoint(s.cfg.Options.Method)
	fullSteps := s.cfg.Options.MaxSteps
	s.reqScratch = s.reqScratch[:0]
	s.reqJobs = s.reqJobs[:0]
	for i := range s.jobs {
		j := &s.jobs[i]
		j.level = shedLevel{Seeds: len(j.gc.seeds), Steps: fullSteps}
		j.engine = nil
		j.skip = false
		j.units = 0
		if j.upgrade {
			continue
		}
		req := shedRequest{Seeds: len(j.gc.seeds), Steps: fullSteps}
		if j.streak != nil {
			// Streaklines advance existing particles plus one emission
			// per seed; they are priced but never clamped.
			req.Fixed = true
			req.Units = (int64(len(j.streak.Particles)) + int64(req.Seeds)) * upp
		} else {
			req.Units = int64(req.Seeds) * int64(req.Steps) * upp
			req.Held = j.snap.Holder != 0
		}
		s.reqScratch = append(s.reqScratch, req)
		s.reqJobs = append(s.reqJobs, i)
	}
	if cap(s.lvlScratch) < len(s.reqScratch) {
		s.lvlScratch = make([]shedLevel, len(s.reqScratch))
	}
	lvls := s.lvlScratch[:len(s.reqScratch)]
	predicted, shed := s.gov.plan(s.reqScratch, lvls)
	for k, i := range s.reqJobs {
		j := &s.jobs[i]
		j.level = lvls[k]
		if shed && j.streak == nil {
			// Only shed rounds switch engines, so an ungoverned (or
			// under-budget) server stays byte-identical to the
			// configured engine's output.
			j.engine = s.gov.engineFor(j.level.Seeds)
		}
	}
	for i := range s.jobs {
		j := &s.jobs[i]
		if !j.upgrade {
			continue
		}
		units := int64(len(j.gc.seeds)) * int64(fullSteps) * upp
		cost := s.gov.predict(units)
		if shed || (s.gov.enabled() && s.gov.calibrated() && predicted+cost > s.gov.budget) {
			j.skip = true
			continue
		}
		predicted += cost
	}
	// Guarantee progress on idle rounds: when no rake is dirty and the
	// budget admitted nothing (a single rake's full cost can exceed
	// the budget), restore the first candidate anyway — otherwise a
	// paused, degraded scene would stay degraded forever.
	if len(s.reqScratch) == 0 {
		admitted := false
		for i := range s.jobs {
			if s.jobs[i].upgrade && !s.jobs[i].skip {
				admitted = true
				break
			}
		}
		if !admitted {
			for i := range s.jobs {
				if s.jobs[i].upgrade {
					s.jobs[i].skip = false
					predicted += s.gov.predict(int64(len(s.jobs[i].gc.seeds)) * int64(fullSteps) * upp)
					break
				}
			}
		}
	}
	return predicted
}

// runJobsLocked executes the round's recompute jobs on a bounded
// worker pool. Each job touches only its own rakeGeom (and streak), so
// jobs are independent; shared inputs (field, grid, options) are
// read-only. Caller holds s.mu; the job slice is frozen for the whole
// round and the parent blocks on the WaitGroup, so worker reads of
// s.jobs race with nothing.
func (s *Server) runJobsLocked(batch compute.SteadyBatch, g *grid.Grid, ts env.TimeState, step int) {
	workers := s.cfg.RakeWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(s.jobs) {
		workers = len(s.jobs)
	}
	if workers <= 1 {
		for i := range s.jobs {
			s.computeRake(&s.jobs[i], batch, g, ts, step)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, len(s.jobs))
	for i := range s.jobs {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				s.computeRake(&s.jobs[i], batch, g, ts, step) //vw:allow lockdiscipline -- jobs are frozen for the round; parent holds mu and blocks on wg
			}
		}()
	}
	wg.Wait()
}

// computeRake recomputes one rake's geometry into its memo entry at
// the planned fidelity, recycling the previous round's physical-line
// buffers. Runs on pool workers; must not touch server state beyond
// the job's own entries.
//
//vw:hotpath
func (s *Server) computeRake(j *rakeJob, batch compute.SteadyBatch, g *grid.Grid, ts env.TimeState, step int) {
	if j.skip {
		// The planner kept this rake's shed-fidelity memo; the round
		// serves gc.geo verbatim.
		return
	}
	rake := j.snap.Rake
	gc := j.gc
	seeds := gc.seeds
	opts := s.cfg.Options
	if j.streak == nil {
		// Shed levels: a prefix of the seed row and a truncated step
		// bound, so a tighter budget strictly shrinks the output.
		if j.level.Seeds > 0 && j.level.Seeds < len(seeds) {
			seeds = seeds[:j.level.Seeds]
		}
		if j.level.Steps > 0 && j.level.Steps < opts.MaxSteps {
			opts.MaxSteps = j.level.Steps
		}
	}
	eng := s.cfg.Engine
	if j.engine != nil {
		eng = j.engine
	}
	var lines [][]vmath.Vec3
	var st compute.Stats
	switch rake.Tool {
	case integrate.ToolStreamline:
		lines, st = eng.Streamlines(batch, seeds, ts.Current, opts) //vw:allow hotpath -- one box per dirty rake, not per point
	case integrate.ToolParticlePath:
		sampler := s.timeSampler(step)
		lines, st = eng.ParticlePaths(sampler, seeds, ts.Current,
			float32(ts.NumSteps-1), opts)
	case integrate.ToolStreakline:
		j.streak.Advance(batch, seeds, ts.Current, opts.StepSize, opts.Method) //vw:allow hotpath -- one box per dirty rake, not per point
		lines = j.streak.PolylineBySeed(rake.NumSeeds)
		st = compute.Stats{Points: int64(len(j.streak.Particles))}
		st.SampleUnits = st.Points * (compute.UnitsPerPoint(opts.Method) - 3)
		st.ConvertUnits = st.Points * 3
	}
	j.units = st.Units()
	gc.geo = wire.Geometry{
		Rake:  rake.ID,
		Tool:  uint8(rake.Tool),
		Lines: toPhysicalLinesInto(g, lines, gc.geo.Lines),
	}
	gc.points = int64(gc.geo.NumPoints())
	gc.haveGeo = true
	gc.version = j.snap.Version
	gc.step = step
	gc.timeKey = ts.Current
	gc.shedSeeds = len(seeds)
	gc.shedSteps = opts.MaxSteps
}

// loadStep fetches a timestep through the prefetcher when present.
func (s *Server) loadStep(step int) (*field.Field, error) {
	if s.prefetcher != nil {
		return s.prefetcher.LoadStep(step)
	}
	return s.st.LoadStep(step)
}

// timeSampler returns an unsteady sampler for particle paths starting
// at timestep. With a resident dataset it samples with time
// interpolation; for I/O-backed stores it slides the resident window
// over [step, step+MaxSteps] first (§5.1's strategy), then samples
// through it.
func (s *Server) timeSampler(step int) integrate.Sampler {
	if s.unsteady != nil {
		return integrate.UnsteadySampler{U: s.unsteady}
	}
	src := s.st
	if s.window != nil {
		// A failed slide degrades to on-demand loads; the sampler
		// still works.
		_ = s.window.SetBase(step)
		src = s.window
	}
	return &storeSampler{st: src, cache: make(map[int]*field.Field)}
}

// storeSampler samples an I/O-backed store with linear time
// interpolation, caching loaded steps for the duration of one
// computation (particle paths revisit the same bracketing steps for
// every seed).
type storeSampler struct {
	st    store.Store
	cache map[int]*field.Field
	mu    sync.Mutex
}

// Grid implements integrate.Sampler.
func (ss *storeSampler) Grid() *grid.Grid { return ss.st.Grid() }

// SampleVelocity implements integrate.Sampler.
func (ss *storeSampler) SampleVelocity(gc vmath.Vec3, t float32) vmath.Vec3 {
	last := ss.st.NumSteps() - 1
	if t <= 0 {
		return ss.step(0).Sample(ss.st.Grid(), gc)
	}
	if t >= float32(last) {
		return ss.step(last).Sample(ss.st.Grid(), gc)
	}
	t0 := int(t)
	frac := t - float32(t0)
	a := ss.step(t0).Sample(ss.st.Grid(), gc)
	b := ss.step(t0+1).Sample(ss.st.Grid(), gc)
	return a.Lerp(b, frac)
}

// step loads (and caches) timestep t; on load failure it returns an
// empty field, terminating paths at stagnation rather than crashing
// the frame. The cache is locked because the parallel engines sample
// from several goroutines.
func (ss *storeSampler) step(t int) *field.Field {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if f, ok := ss.cache[t]; ok {
		return f
	}
	f, err := ss.st.LoadStep(t)
	if err != nil {
		g := ss.st.Grid()
		f = field.NewField(g.NI, g.NJ, g.NK, field.GridCoords)
	}
	ss.cache[t] = f
	return f
}

// toPhysicalLinesInto converts grid-coordinate lines to physical
// coordinates, recycling prev's buffers (typically the same rake's
// previous round) where capacity allows.
//
//vw:hotpath
func toPhysicalLinesInto(g *grid.Grid, lines, prev [][]vmath.Vec3) [][]vmath.Vec3 {
	var out [][]vmath.Vec3
	if cap(prev) >= len(lines) {
		out = prev[:len(lines)]
	} else {
		out = make([][]vmath.Vec3, len(lines)) //vw:allow hotpath -- grow-once: only when a rake gains lines, then recycled every round
		copy(out, prev)
	}
	for i, l := range lines {
		out[i] = integrate.ToPhysicalInto(g, out[i], l)
	}
	return out
}

func toPhysicalLines(g *grid.Grid, lines [][]vmath.Vec3) [][]vmath.Vec3 {
	return toPhysicalLinesInto(g, lines, nil)
}
