package server

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/integrate"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// Unit coverage for the shared-tool planning half of the server: the
// governor's reserve-aware planner, the tool stride ladder, and the
// (version, step, stride) geometry memo. The wire-visible behavior is
// pinned by the golden corpus; these tests pin the internal contracts
// the corpus rests on.

// TestPlanWithReserveDelegatesAtZero: plan(reqs, dst) and
// planWith(reqs, dst, 0) are the same function.
func TestPlanWithReserveDelegatesAtZero(t *testing.T) {
	g := calibratedGovernor(time.Millisecond, 50)
	reqs := planReqs(4, 1, 64, 200)
	a := make([]shedLevel, len(reqs))
	b := make([]shedLevel, len(reqs))
	pa, sa := g.plan(reqs, a)
	pb, sb := g.planWith(reqs, b, 0)
	if pa != pb || sa != sb {
		t.Fatalf("plan (%v, %v) != planWith reserve 0 (%v, %v)", pa, sa, pb, sb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("level %d: plan %+v != planWith %+v", i, a[i], b[i])
		}
	}
}

// TestPlanWithReserveMonotone: a larger reserve never allows more
// planned work — the tools' slice of the budget really comes out of
// the rakes' allowance.
func TestPlanWithReserveMonotone(t *testing.T) {
	g := calibratedGovernor(time.Millisecond, 50)
	reqs := planReqs(4, 1, 64, 200)
	reserves := []time.Duration{
		0, 50 * time.Microsecond, 200 * time.Microsecond,
		500 * time.Microsecond, 900 * time.Microsecond,
		time.Millisecond, 10 * time.Millisecond, // >= the whole budget
	}
	prev := int64(-1)
	for i := len(reserves) - 1; i >= 0; i-- {
		lvls := make([]shedLevel, len(reqs))
		g.planWith(reqs, lvls, reserves[i])
		total := plannedUnits(lvls)
		if prev >= 0 && total < prev {
			t.Fatalf("reserve %v planned %d units, larger reserve %v planned %d",
				reserves[i], total, reserves[i+1], prev)
		}
		prev = total
	}
}

// TestPlanWithReserveExceedingBudgetFloors: when the reserve swallows
// the whole effective budget the rake budget clamps to zero, not
// negative — every rake lands on the floor (one seed, minShedSteps)
// instead of underflowing.
func TestPlanWithReserveExceedingBudgetFloors(t *testing.T) {
	g := calibratedGovernor(time.Millisecond, 50)
	reqs := planReqs(3, 0, 64, 200)
	lvls := make([]shedLevel, len(reqs))
	_, shed := g.planWith(reqs, lvls, time.Hour)
	if !shed {
		t.Fatal("reserve beyond the budget did not shed")
	}
	for i, l := range lvls {
		if l.Seeds != 1 || l.Steps != minShedSteps {
			t.Fatalf("level %d = %+v, want the floor {1 %d}", i, l, minShedSteps)
		}
	}
}

// toolPlanServer builds a governed server on the structured dataset
// with all three tools enabled and the snapshot the planner reads
// refreshed, without running a frame.
func toolPlanServer(t *testing.T, budget time.Duration, unitNanos float64) *Server {
	t.Helper()
	s := goldenToolServer(t, budget, unitNanos)
	if err := s.Env().SetIso(1, env.IsoParams{Enabled: true, Level: 0.8}); err != nil {
		t.Fatal(err)
	}
	if err := s.Env().SetPlane(1, env.PlaneParams{Enabled: true, Axis: 2, Frac: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Env().SetVortex(1, env.VortexParams{Enabled: true, Threshold: 0.01}); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.toolSnap = s.env.Tools()
	s.mu.Unlock()
	return s
}

// TestPlanToolsStrideLadder: the tool planner walks the {1, 2, 4}
// ladder — full fidelity when the budget fits everything, coarser as
// it tightens, and the stride-4 floor (with a nonzero reserve) when
// nothing fits. Ungoverned and uncalibrated servers always plan
// stride 1 with no reserve, which is what keeps their frames
// byte-identical to the ungoverned corpus.
func TestPlanToolsStrideLadder(t *testing.T) {
	const rakeUnits = 1000

	// Ungoverned and uncalibrated: stride 1, nothing reserved.
	for name, s := range map[string]*Server{
		"ungoverned":   toolPlanServer(t, 0, 0),
		"uncalibrated": toolPlanServer(t, time.Millisecond, 0),
	} {
		s.mu.Lock()
		stride, reserve := s.planToolsLocked(s.st.Grid(), rakeUnits)
		s.mu.Unlock()
		if stride != 1 || reserve != 0 {
			t.Fatalf("%s: stride=%d reserve=%v, want 1, 0", name, stride, reserve)
		}
	}

	// Inactive tools cost nothing even under a governor.
	idle := goldenToolServer(t, time.Millisecond, 100)
	idle.mu.Lock()
	stride, reserve := idle.planToolsLocked(idle.st.Grid(), rakeUnits)
	idle.mu.Unlock()
	if stride != 1 || reserve != 0 {
		t.Fatalf("inactive tools: stride=%d reserve=%v, want 1, 0", stride, reserve)
	}

	// Generous budget: full fidelity, and the reserve is exactly the
	// priced cost of the stride-1 march.
	rich := toolPlanServer(t, time.Hour, 100)
	rich.mu.Lock()
	stride, reserve = rich.planToolsLocked(rich.st.Grid(), rakeUnits)
	wantReserve := rich.gov.predict(rich.toolUnitsAtLocked(rich.st.Grid(), 1))
	rich.mu.Unlock()
	if stride != 1 {
		t.Fatalf("generous budget coarsened to stride %d", stride)
	}
	if reserve != wantReserve || reserve <= 0 {
		t.Fatalf("reserve = %v, want %v", reserve, wantReserve)
	}

	// Sweep budgets from generous to hopeless: the stride must be
	// monotone (tighter budget never marches finer) and must reach the
	// stride-4 floor — never zero, never off the ladder — with the
	// reserve tracking the chosen stride's cost.
	prevStride := 0
	sawFloor := false
	for _, budget := range []time.Duration{
		time.Hour, 10 * time.Millisecond, time.Millisecond,
		100 * time.Microsecond, time.Microsecond,
	} {
		s := toolPlanServer(t, budget, 100)
		s.mu.Lock()
		stride, reserve := s.planToolsLocked(s.st.Grid(), rakeUnits)
		wantReserve := s.gov.predict(s.toolUnitsAtLocked(s.st.Grid(), stride))
		s.mu.Unlock()
		ok := false
		for _, cand := range toolStrides {
			ok = ok || stride == cand
		}
		if !ok {
			t.Fatalf("budget %v planned stride %d, off the ladder", budget, stride)
		}
		if stride < prevStride {
			t.Fatalf("budget %v planned stride %d, finer than a looser budget's %d",
				budget, stride, prevStride)
		}
		if reserve != wantReserve {
			t.Fatalf("budget %v: reserve %v does not price stride %d (%v)",
				budget, reserve, stride, wantReserve)
		}
		prevStride = stride
		sawFloor = sawFloor || stride == toolStrides[len(toolStrides)-1]
	}
	if !sawFloor {
		t.Fatal("no budget in the sweep reached the stride floor")
	}
}

// TestToolMemoStats: the geometry memo is keyed by (tool version,
// step, stride). At a fixed step, re-leveling the isosurface
// recomputes only the isosurface — the untouched vortex tool is a
// memo hit — and the stats ledger counts both sides.
func TestToolMemoStats(t *testing.T) {
	s := goldenToolServer(t, 0, 0)
	d := newDirectSession(t, s, 1)

	d.rawFrame(wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdIsoSet, Flag: 1, Value: 0.8},
		{Kind: wire.CmdVortexToggle, Flag: 1, Value: 0.01},
	}})
	st := s.Stats()
	if st.ToolsComputed != 2 || st.ToolsReused != 0 {
		t.Fatalf("first frame: computed=%d reused=%d, want 2, 0", st.ToolsComputed, st.ToolsReused)
	}
	if st.ToolPoints <= 0 {
		t.Fatal("structured dataset extracted no tool geometry")
	}

	// Re-level the iso at the same step: one recompute, one memo hit.
	d.rawFrame(wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdIsoSet, Flag: 1, Value: 0.6},
	}})
	st = s.Stats()
	if st.ToolsComputed != 3 || st.ToolsReused != 1 {
		t.Fatalf("after re-level: computed=%d reused=%d, want 3, 1", st.ToolsComputed, st.ToolsReused)
	}

	// Stepping playback invalidates every tool memo at once: both
	// tools recompute, nothing is reused.
	d.rawFrame(wire.ClientUpdate{Commands: []wire.Command{
		{Kind: wire.CmdSeek, Value: 2},
	}})
	st = s.Stats()
	if st.ToolsComputed != 5 || st.ToolsReused != 1 {
		t.Fatalf("after step change: computed=%d reused=%d, want 5, 1", st.ToolsComputed, st.ToolsReused)
	}
}

// toolShedScript enables all three tools beside two held rakes and
// plays the clip, so a tight budget must degrade rounds while the
// tool section stays populated.
func toolShedScript() []wire.ClientUpdate {
	script := []wire.ClientUpdate{{Head: vmath.Identity(), Commands: []wire.Command{
		addRakeCmd(vmath.V3(1, 3, 4), vmath.V3(1, 5, 4), 32, integrate.ToolStreamline),
		addRakeCmd(vmath.V3(1, 6, 4), vmath.V3(1, 8, 4), 32, integrate.ToolStreamline),
		{Kind: wire.CmdIsoSet, Flag: 1, Value: 0.8},
		{Kind: wire.CmdPlaneMove, Flag: 1, Grab: 1, Value: 0.5},
		{Kind: wire.CmdVortexToggle, Flag: 1, Value: 0.01},
		{Kind: wire.CmdSetLoop, Flag: 1},
		{Kind: wire.CmdSetSpeed, Value: 1},
		{Kind: wire.CmdSetPlaying, Flag: 1},
	}}}
	for i := 0; i < 6; i++ {
		script = append(script, wire.ClientUpdate{Head: vmath.Identity()})
	}
	return script
}

// TestToolFramesDeterministicUnderShed: two identical servers under a
// degrading governor produce byte-identical frames with all three
// tools enabled, in both codecs. This is the cross-server contract
// relay fan-out depends on; the script must actually degrade at least
// one round or the property goes untested.
func TestToolFramesDeterministicUnderShed(t *testing.T) {
	for _, v2 := range []bool{false, true} {
		name := "v1"
		if v2 {
			name = "v2"
		}
		t.Run(name, func(t *testing.T) {
			run := func() [][]byte {
				// Price integration expensively so the governor sheds;
				// the ManualClock freezes the EWMA for the whole run.
				s := goldenToolServer(t, 5*time.Millisecond, 50000)
				var frames [][]byte
				if v2 {
					d := newV2Session(t, s, 1)
					for _, u := range toolShedScript() {
						frames = append(frames, d.rawFrame(u))
					}
				} else {
					d := newDirectSession(t, s, 1)
					for _, u := range toolShedScript() {
						frames = append(frames, d.rawFrame(u))
					}
				}
				return frames
			}
			a, b := run(), run()
			for i := range a {
				if !bytes.Equal(a[i], b[i]) {
					t.Fatalf("round %d: %s bytes diverge across identical servers (%d vs %d bytes)",
						i, name, len(a[i]), len(b[i]))
				}
			}
			// The script must have produced at least one degraded round
			// and shipped tool geometry in at least one frame.
			degraded, toolPoints := false, false
			dec := wire.NewFrameDecoder(toolQuantizerOf(t))
			for _, raw := range a {
				var r wire.FrameReply
				var err error
				if v2 {
					r, err = dec.Decode(raw)
				} else {
					r, err = wire.DecodeFrameReply(raw)
				}
				if err != nil {
					t.Fatal(err)
				}
				degraded = degraded || r.Degraded > 0
				toolPoints = toolPoints || (r.Tools != nil && r.Tools.TotalPoints() > 0)
			}
			if !degraded {
				t.Fatal("script produced no degraded rounds; determinism-under-shed untested")
			}
			if !toolPoints {
				t.Fatal("no frame carried tool geometry; the shed path never marched a tool")
			}
		})
	}
}
