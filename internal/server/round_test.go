package server

import (
	"testing"
	"time"

	"repro/internal/dlib"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// roundStep is one scripted handleFrame call in a round-accounting
// scenario: which session calls, with what update, and what the
// server-side accounting must show afterwards.
type roundStep struct {
	name    string
	session int64
	update  wire.ClientUpdate

	// wantComputed: this call entered recomputeLocked (Stats().Frames
	// advanced) — either a true recompute or a whole-frame memo serve.
	wantComputed bool
	// wantReused: the recompute was a whole-frame memo serve.
	wantReused bool
	// wantEncoded: the round was freshly wire-encoded.
	wantEncoded bool
	// wantNewRound: the reply's Round is strictly greater than every
	// Round seen so far; otherwise it must equal the latest one.
	wantNewRound bool
	// wantRakes, when positive, is the rake count the reply must carry.
	wantRakes int
}

// pose returns an update with a distinctive (finite) hand position;
// changing it bumps the environment version, holding it still does not.
func pose(x float32) wire.ClientUpdate {
	return wire.ClientUpdate{Head: vmath.Identity(), Hand: vmath.V3(x, 0, 0)}
}

// TestRoundAccounting drives handleFrame directly (per-session Ctx
// values standing in for connections) through the interleavings the
// fan-out design has to get right. The invariant under test: every
// session receives each round's coherent frame exactly once — a repeat
// request is a new round, a first request joins the round in flight —
// and rounds are encoded at most once no matter how many sessions
// consume them.
func TestRoundAccounting(t *testing.T) {
	scenarios := []struct {
		name  string
		steps []roundStep
	}{
		{
			// A second workstation attaching mid-round rides the round
			// already computed for the first: no recompute, same Round.
			name: "join mid-round",
			steps: []roundStep{
				{name: "s1 opens round", session: 1, update: pose(1),
					wantComputed: true, wantEncoded: true, wantNewRound: true},
				{name: "s2 joins without recompute", session: 2, update: pose(2)},
				{name: "s3 joins too", session: 3, update: pose(3)},
				// s1 already consumed the round, so its next call starts
				// a new one; the joins registered new user poses, so the
				// environment version moved and the round truly recomputes.
				{name: "s1 repeat starts new round", session: 1, update: pose(1),
					wantComputed: true, wantEncoded: true, wantNewRound: true},
				// Nothing changed since: the repeat is a new round served
				// whole from the memo — same Round on the wire.
				{name: "s1 repeat memo-reuses", session: 1, update: pose(1),
					wantComputed: true, wantReused: true},
				{name: "s2 still just joins", session: 2, update: pose(2)},
			},
		},
		{
			// A slow workstation skips rounds: it receives the latest
			// round, not a replay of the ones it missed.
			name: "skip rounds",
			steps: []roundStep{
				{name: "round 1", session: 1, update: pose(1),
					wantComputed: true, wantEncoded: true, wantNewRound: true},
				{name: "round 2", session: 1, update: pose(1.5),
					wantComputed: true, wantEncoded: true, wantNewRound: true},
				{name: "round 3", session: 1, update: pose(2),
					wantComputed: true, wantEncoded: true, wantNewRound: true},
				// s2's first frame lands on round 3; rounds 1-2 are gone.
				{name: "s2 lands on latest", session: 2, update: pose(9)},
			},
		},
		{
			// Commands force a recompute even for a session that has not
			// consumed the current round: the user must see their own
			// interaction's effect within this frame (§1.2).
			name: "interleaved commands",
			steps: []roundStep{
				{name: "s1 opens round", session: 1, update: pose(1),
					wantComputed: true, wantEncoded: true, wantNewRound: true},
				{name: "s2 command forces recompute", session: 2,
					update: wire.ClientUpdate{
						Head: vmath.Identity(), Hand: vmath.V3(2, 0, 0),
						Commands: []wire.Command{{
							Kind: wire.CmdAddRake,
							P0:   vmath.V3(1, 4, 4), P1: vmath.V3(1, 8, 4),
							NumSeeds: 4,
						}},
					},
					wantComputed: true, wantEncoded: true, wantNewRound: true,
					wantRakes: 1},
				// s2's recompute reset everyone's consumed marks, so s1
				// joins the command's round — and the joined frame already
				// carries s2's rake: command effects reach every session
				// without a second recompute.
				{name: "s1 joins and sees s2's rake", session: 1, update: pose(1),
					wantRakes: 1},
				// Both consumed the command round; s1's repeat is a fresh
				// round, truly recomputed because the rake's geometry is
				// new since the last encode... or memo-served if nothing
				// else moved; pin it by moving s1's hand.
				{name: "s1 moves on", session: 1, update: pose(1.25),
					wantComputed: true, wantEncoded: true, wantNewRound: true,
					wantRakes: 1},
			},
		},
		{
			// Exactly-once: alternating sessions each consume each round
			// once; a round is never double-served to one session.
			name: "coherent frame once per round",
			steps: []roundStep{
				{name: "s1 round 1", session: 1, update: pose(1),
					wantComputed: true, wantEncoded: true, wantNewRound: true},
				{name: "s2 joins round 1", session: 2, update: pose(2)},
				{name: "s1 round 2", session: 1, update: pose(1),
					wantComputed: true, wantEncoded: true, wantNewRound: true},
				{name: "s2 joins round 2", session: 2, update: pose(2)},
				// Both consumed round 2; s2 asking again is a fresh round,
				// memo-served since the scene held still.
				{name: "s2 repeat is round 3 (memo)", session: 2, update: pose(2),
					wantComputed: true, wantReused: true},
				{name: "s1 joins round 3", session: 1, update: pose(1)},
			},
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			s, err := New(Config{Store: testDataset(t, 2)})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Dlib().Close()

			ctxs := map[int64]*dlib.Ctx{}
			var maxRound uint64
			var lastRound uint64
			for i, step := range sc.steps {
				ctx := ctxs[step.session]
				if ctx == nil {
					ctx = &dlib.Ctx{Session: &dlib.Session{ID: step.session}}
					ctxs[step.session] = ctx
				}
				before := s.Stats()
				out, err := s.handleFrame(ctx, wire.EncodeClientUpdate(step.update))
				if err != nil {
					t.Fatalf("step %d (%s): %v", i, step.name, err)
				}
				// Direct handler calls stand in for the transport, so they
				// take on its release obligation.
				ctx.FinishReply()
				r, err := wire.DecodeFrameReply(out)
				if err != nil {
					t.Fatalf("step %d (%s): decode: %v", i, step.name, err)
				}
				after := s.Stats()

				if got := after.Frames - before.Frames; got != b2i(step.wantComputed) {
					t.Errorf("step %d (%s): computed %d rounds, want %d",
						i, step.name, got, b2i(step.wantComputed))
				}
				if got := after.FramesReused - before.FramesReused; got != b2i(step.wantReused) {
					t.Errorf("step %d (%s): reused %d, want %d",
						i, step.name, got, b2i(step.wantReused))
				}
				if got := after.FramesEncoded - before.FramesEncoded; got != b2i(step.wantEncoded) {
					t.Errorf("step %d (%s): encoded %d, want %d",
						i, step.name, got, b2i(step.wantEncoded))
				}
				// Every call ships exactly one frame to its session.
				if got := after.FramesShipped - before.FramesShipped; got != 1 {
					t.Errorf("step %d (%s): shipped %d frames in one call", i, step.name, got)
				}
				if step.wantNewRound {
					if r.Round <= maxRound {
						t.Errorf("step %d (%s): round %d did not advance past %d",
							i, step.name, r.Round, maxRound)
					}
				} else if r.Round != lastRound {
					t.Errorf("step %d (%s): round %d, want current round %d",
						i, step.name, r.Round, lastRound)
				}
				if step.wantRakes > 0 && len(r.Rakes) != step.wantRakes {
					t.Errorf("step %d (%s): reply has %d rakes, want %d",
						i, step.name, len(r.Rakes), step.wantRakes)
				}
				if r.Round > maxRound {
					maxRound = r.Round
				}
				lastRound = r.Round
			}
		})
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// TestRoundConsumedByDisconnect pins the bookkeeping leak: a session's
// consumed-round mark must be dropped when its connection goes away,
// and a reconnecting workstation (new session ID) must join cleanly.
func TestRoundConsumedByDisconnect(t *testing.T) {
	s, c, addr := startTestServer(t, Config{Store: testDataset(t, 1)})
	frame(t, c, pose(1))

	c2, err := dlib.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	frame(t, c2, pose(2))

	entries := func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.consumedBy)
	}
	if got := entries(); got == 0 {
		t.Fatal("no consumed-round marks after two sessions framed")
	}
	before := entries()
	c2.Close()
	deadline := time.Now().Add(2 * time.Second)
	for entries() >= before {
		if time.Now().After(deadline) {
			t.Fatalf("consumedBy still has %d entries after disconnect", entries())
		}
		time.Sleep(time.Millisecond)
	}
}
