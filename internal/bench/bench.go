// Package bench regenerates every table and figure in the paper's
// evaluation: the network constraints of Table 1, the disk bandwidth
// constraints of Table 2, the computational constraints of Table 3 and
// the §5.3 engine benchmark, the visualization figures 1-3, the
// figure-8 server pipeline and figure-9 workstation loop measurements,
// and the ablations DESIGN.md calls out. cmd/vwbench and the
// repository-root benchmarks both drive this package.
package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "\n== %s ==\n", t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Note); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	return tw.Flush()
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}
