package bench

import (
	"fmt"
	"time"

	"repro/internal/compute"
	"repro/internal/integrate"
	"repro/internal/isosurf"
	"repro/internal/vmath"
)

// AblationIsosurface quantifies §1.2's tool-selection rule: "The flow
// visualization techniques that can be used in a virtual environment
// are limited to those that can be computed in the time allowed. For
// example, interactive streamlines ... can be used, but interactive
// isosurfaces ... can not." It times one frame of each tool at the
// paper's own dataset scale — the 64x64x32 tapered cylinder grid —
// on this host and on the modeled 1992 Convex. (At laptop demo scales
// everything fits the budget; the exclusion only bites at production
// grid sizes, which is exactly the paper's point.)
func AblationIsosurface() (*Table, error) {
	u, err := BuildDataset(DatasetSpec{NI: 64, NJ: 64, NK: 32, NumSteps: 1, DT: 0.6})
	if err != nil {
		return nil, err
	}
	g := u.Grid
	f := u.Steps[0]

	// Streamline frame: a typical 10-seed rake.
	rake, err := integrate.NewRake(1, vmath.V3(-3, 0.6, 1), vmath.V3(-3, 0.6, 14), 10,
		integrate.ToolStreamline)
	if err != nil {
		return nil, err
	}
	seeds := rake.SeedsGrid(g)
	o := integrate.Options{Method: integrate.RK2, StepSize: 0.4, MaxSteps: 200, MinSpeed: 1e-7}
	start := time.Now()
	_, stats := compute.Vector{}.Streamlines(compute.SteadyBatch{F: f, G: g}, seeds, 0, o)
	streamWall := time.Since(start)
	streamModeled := compute.ConvexVector3.ModeledTime(stats)

	// Isosurface frame: |u| surface bounding the wake deficit.
	speed := isosurf.SpeedField(f)
	// Pick an iso value inside the field's range: 60% of max speed.
	var maxSpeed float32
	for _, s := range speed {
		if s > maxSpeed {
			maxSpeed = s
		}
	}
	iso := 0.6 * maxSpeed
	start = time.Now()
	tris, err := isosurf.Extract(g, speed, iso)
	if err != nil {
		return nil, err
	}
	isoWall := time.Since(start)
	// Model the 1992 cost with the same unit framework: marching
	// tetrahedra touches every cell corner (8 loads/cell ~ one unit
	// per cell-corner-component read) plus interpolation per emitted
	// vertex; count cells x 8/3 units (8 corner reads per cell, one
	// unit = 3-component access) + 3 units per triangle vertex.
	cells := int64(g.NI-1) * int64(g.NJ-1) * int64(g.NK-1)
	isoUnits := cells*8/3 + int64(len(tris))*9
	isoModeled := compute.ConvexVector3.ModeledTime(compute.Stats{SampleUnits: isoUnits})

	t := &Table{
		Title: "Ablation: streamlines vs isosurface against the 1/8 s budget (Sec 1.2)",
		Note: fmt.Sprintf("one frame on the %dx%dx%d timestep; isosurface |u| = %.2f -> %d triangles",
			g.NI, g.NJ, g.NK, iso, len(tris)),
		Header: []string{"tool", "wall (this host)", "modeled 1992", "fits 1/8 s (1992)?"},
	}
	budget := time.Second / 8
	t.AddRow("streamline rake (10 x 200)",
		streamWall.Round(10*time.Microsecond).String(),
		streamModeled.Round(time.Millisecond).String(),
		yesNo(streamModeled <= budget))
	t.AddRow("isosurface (marching tetrahedra)",
		isoWall.Round(10*time.Microsecond).String(),
		isoModeled.Round(time.Millisecond).String(),
		yesNo(isoModeled <= budget))
	return t, nil
}
