package bench

import (
	"fmt"
	"math"
	"net"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dlib"
	"repro/internal/field"
	"repro/internal/integrate"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vmath"
)

// Fig8Pipeline measures the remote-system architecture of figure 8:
// dataset streamed from throttled disk, frames computed with and
// without the prefetching that overlaps the next timestep's load with
// the current computation.
func Fig8Pipeline(u *field.Unsteady, diskBW int64, frames int) (*Table, error) {
	dir, err := os.MkdirTemp("", "vwt-fig8-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := store.WriteDataset(dir, u); err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Figure 8: remote pipeline — synchronous load vs prefetch overlap",
		Note: fmt.Sprintf("disk throttled to %d MB/s, %d frames of playback, timestep %d bytes; per-stage means from the server's frame recorder",
			diskBW/(1<<20), frames, u.Steps[0].SizeBytes()),
		Header: []string{"configuration", "mean frame time", "achieved fps", "load", "integrate", "encode"},
	}
	for _, prefetch := range []bool{false, true} {
		mean, stages, err := runPipeline(dir, diskBW, frames, prefetch)
		if err != nil {
			return nil, err
		}
		name := "synchronous load"
		if prefetch {
			name = "prefetch overlap"
		}
		t.AddRow(name, mean.Round(100*time.Microsecond).String(),
			fmt.Sprintf("%.1f", 1/mean.Seconds()),
			stages.AvgLoad().Round(10*time.Microsecond).String(),
			stages.AvgIntegrate().Round(10*time.Microsecond).String(),
			stages.AvgEncode().Round(10*time.Microsecond).String())
	}
	return t, nil
}

func runPipeline(dir string, diskBW int64, frames int, prefetch bool) (time.Duration, obs.Snapshot, error) {
	disk, err := store.OpenDisk(dir, store.DiskOptions{BandwidthBytesPerSec: diskBW})
	if err != nil {
		return 0, obs.Snapshot{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, obs.Snapshot{}, err
	}
	srv, err := core.Serve(ln, disk, core.Options{Prefetch: prefetch})
	if err != nil {
		return 0, obs.Snapshot{}, err
	}
	defer srv.Dlib().Close()
	sess, err := core.Connect(ln.Addr().String(), nil, core.Options{FrameW: 64, FrameH: 64})
	if err != nil {
		return 0, obs.Snapshot{}, err
	}
	defer sess.Close()
	// A heavy rake makes the visualization computation comparable to
	// the disk load, so the figure-8 overlap has something to hide the
	// load behind; with a trivial compute the two configurations tie.
	sess.AddRake(vmath.V3(-3, 0.6, 1), vmath.V3(-3, 0.6, 14), 150, integrate.ToolStreamline)
	sess.Play(1)
	// Warmup frame creates the rake and primes the pipeline.
	if _, err := sess.Frame(); err != nil {
		return 0, obs.Snapshot{}, err
	}
	before := srv.Recorder().Snapshot()
	start := time.Now()
	for i := 0; i < frames; i++ {
		if _, err := sess.Frame(); err != nil {
			return 0, obs.Snapshot{}, err
		}
	}
	mean := time.Since(start) / time.Duration(frames)
	after := srv.Recorder().Snapshot()
	stages := obs.Snapshot{
		Frames:        after.Frames - before.Frames,
		FramesReused:  after.FramesReused - before.FramesReused,
		LoadTime:      after.LoadTime - before.LoadTime,
		IntegrateTime: after.IntegrateTime - before.IntegrateTime,
		EncodeTime:    after.EncodeTime - before.EncodeTime,
		RakesComputed: after.RakesComputed - before.RakesComputed,
		RakesReused:   after.RakesReused - before.RakesReused,
		Points:        after.Points - before.Points,
		Bytes:         after.Bytes - before.Bytes,
	}
	return mean, stages, nil
}

// Fig9Client measures the workstation architecture of figure 9: with
// the network loop slowed by link latency, the decoupled render loop
// keeps running at a much higher rate.
func Fig9Client(u *field.Unsteady, latency time.Duration, netFrames int) (*Table, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv, err := core.Serve(ln, store.NewMemory(u), core.Options{})
	if err != nil {
		return nil, err
	}
	defer srv.Dlib().Close()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, err
	}
	slow := netsim.Link{Latency: latency}.Wrap(raw)
	sess, err := core.Connect("", slow, core.Options{FrameW: 64, FrameH: 64})
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	sess.AddRake(vmath.V3(-3, 0.6, 1), vmath.V3(-3, 0.6, 14), 5, integrate.ToolStreamline)
	if _, err := sess.Frame(); err != nil {
		return nil, err
	}
	netHz, renderHz, err := sess.WS.RunDecoupled(sess.User, netFrames)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Figure 9: workstation loops — render decoupled from network",
		Note: fmt.Sprintf("link latency %v; the render loop must outrun the command loop",
			latency),
		Header: []string{"loop", "rate (Hz)"},
	}
	t.AddRow("network/command", fmt.Sprintf("%.1f", netHz))
	t.AddRow("head-tracked render", fmt.Sprintf("%.1f", renderHz))
	t.AddRow("render/network ratio", fmt.Sprintf("%.1fx", renderHz/netHz))
	return t, nil
}

// Fig67DlibIO demonstrates figures 6/7: a client reaching a remote
// disk through dlib's remote I/O path, compared with reading the same
// timestep from local disk.
func Fig67DlibIO(u *field.Unsteady) (*Table, error) {
	dir, err := os.MkdirTemp("", "vwt-fig67-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := store.WriteDataset(dir, u); err != nil {
		return nil, err
	}

	// Remote: a dlib server whose "remote I/O library" loads timesteps
	// from its disk; the client fetches step payloads over the wire.
	disk, err := store.OpenDisk(dir, store.DiskOptions{})
	if err != nil {
		return nil, err
	}
	srv := dlib.NewServer()
	srv.Register("io.loadstep", func(_ *dlib.Ctx, req []byte) ([]byte, error) {
		if len(req) != 4 {
			return nil, fmt.Errorf("want step index")
		}
		step := int(uint32(req[0]) | uint32(req[1])<<8 | uint32(req[2])<<16 | uint32(req[3])<<24)
		f, err := disk.LoadStep(step)
		if err != nil {
			return nil, err
		}
		// Ship the raw component arrays.
		out := make([]byte, 0, f.SizeBytes())
		for _, comp := range [][]float32{f.U, f.V, f.W} {
			for _, v := range comp {
				bits := float32bits(v)
				out = append(out, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24))
			}
		}
		return out, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	defer srv.Close()
	c, err := dlib.Dial(ln.Addr().String())
	if err != nil {
		return nil, err
	}
	defer c.Close()

	const reps = 3
	req := []byte{0, 0, 0, 0}
	remoteStart := time.Now()
	var remoteBytes int
	for i := 0; i < reps; i++ {
		out, err := c.Call("io.loadstep", req)
		if err != nil {
			return nil, err
		}
		remoteBytes = len(out)
	}
	remote := time.Since(remoteStart) / reps

	localDisk, err := store.OpenDisk(dir, store.DiskOptions{})
	if err != nil {
		return nil, err
	}
	localStart := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := localDisk.LoadStep(0); err != nil {
			return nil, err
		}
	}
	local := time.Since(localStart) / reps

	t := &Table{
		Title: "Figures 6/7: local I/O library vs remote I/O through dlib",
		Note: fmt.Sprintf("one %d-byte timestep load, mean of %d; the stippled 'effective data path'",
			remoteBytes, reps),
		Header: []string{"path", "mean load time"},
	}
	t.AddRow("local I/O library", local.Round(10*time.Microsecond).String())
	t.AddRow("dlib -> remote server -> remote disk", remote.Round(10*time.Microsecond).String())
	return t, nil
}

func float32bits(f float32) uint32 { return math.Float32bits(f) }
