package bench

import (
	"fmt"
	"math"
	"time"

	"repro/internal/compute"
	"repro/internal/field"
	"repro/internal/flow"
	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// AblationIntegrators compares Euler/RK2/RK4 on a Rankine vortex where
// the exact answer is a closed circle: cost per step vs radius drift
// after one revolution. The paper chose RK2; this shows why (Euler
// drifts badly, RK4 doubles the field accesses for little gain at
// interactive step sizes).
func AblationIntegrators() (*Table, error) {
	// Identity Cartesian grid so grid coords == physical coords.
	n := 65
	g, err := grid.NewCartesian(n, n, 5, vmath.AABB{
		Min: vmath.V3(0, 0, 0), Max: vmath.V3(float32(n-1), float32(n-1), 4),
	})
	if err != nil {
		return nil, err
	}
	// Rankine vortex centered mid-grid.
	center := vmath.V3(32, 32, 0)
	f := field.NewField(n, n, 5, field.GridCoords)
	rank := flow.Rankine{Gamma: 2 * math.Pi * 4, Core: 2}
	for k := 0; k < 5; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				p := vmath.V3(float32(i), float32(j), 0).Sub(center)
				f.SetAt(i, j, k, rank.VelocityAt(p, 0))
			}
		}
	}
	sampler := integrate.SteadySampler{F: f, G: g}

	const radius = 12.0
	seed := center.Add(vmath.V3(radius, 0, 2))
	// Angular speed at r=12: v = Gamma/(2 pi r) = 4/12; period = 2 pi r / v.
	v := 4.0 / radius
	period := 2 * math.Pi * radius / v
	h := float32(0.5)
	steps := int(period / float64(h))

	t := &Table{
		Title:  "Ablation: integration scheme (one revolution around a Rankine vortex)",
		Note:   fmt.Sprintf("radius %g, %d steps of h=%g; drift = |r_final - r_0|", radius, steps, h),
		Header: []string{"scheme", "field accesses/step", "radius drift", "wall time"},
	}
	for _, m := range []integrate.Method{integrate.Euler, integrate.RK2, integrate.RK4} {
		gc := seed
		start := time.Now()
		for s := 0; s < steps; s++ {
			gc = integrate.Step(m, sampler, gc, 0, h)
		}
		wall := time.Since(start)
		drift := float64(gc.Sub(center).Len()) - radius
		// Z drift is zero; report planar drift magnitude.
		accesses := map[integrate.Method]int{
			integrate.Euler: 1, integrate.RK2: 2, integrate.RK4: 4,
		}[m]
		t.AddRow(m.String(), fmt.Sprintf("%d", accesses),
			fmt.Sprintf("%+.4f", drift), wall.Round(time.Microsecond).String())
	}
	return t, nil
}

// AblationGridCoords measures the paper's §2.1 optimization: with
// velocities pre-converted to grid coordinates, a step is pure array
// math; integrating in physical space requires a curvilinear point
// location (PhysToGrid) every step.
func AblationGridCoords(u *field.Unsteady, steps int) (*Table, error) {
	g := u.Grid
	fld := u.Steps[0]
	sampler := integrate.SteadySampler{F: fld, G: g}
	o := integrate.Options{Method: integrate.RK2, StepSize: 0.3, MaxSteps: steps, MinSpeed: 1e-9}
	seed := vmath.V3(float32(g.NI)/2, float32(g.NJ)/4, float32(g.NK)/2)

	// Grid-coordinate path: the windtunnel's way.
	start := time.Now()
	path := integrate.Streamline(sampler, seed, 0, o)
	gridTime := time.Since(start)

	// Physical-space path: each step locates the point in the
	// curvilinear grid before sampling — the "unacceptable performance
	// overhead" the paper avoids.
	start = time.Now()
	physPos := g.PhysAt(seed)
	guess := seed
	located := 0
	for s := 0; s < steps; s++ {
		// Coherent search: the guess is the PREVIOUS step's grid
		// coordinate, so the point location must do real Newton work
		// to cover the step — exactly what a physical-space
		// integrator pays on every step.
		gc, err := g.PhysToGrid(physPos, guess)
		if err != nil {
			break
		}
		located++
		guess = gc
		k1 := fld.Sample(g, gc)
		// RK2's midpoint is a second field access at a new physical
		// position, which costs a second point location per step.
		midPhys := g.PhysAt(gc.Add(k1.Scale(o.StepSize / 2)))
		midGC, err := g.PhysToGrid(midPhys, gc)
		if err != nil {
			break
		}
		k2 := fld.Sample(g, midGC)
		next := gc.Add(k2.Scale(o.StepSize))
		if !g.InBounds(next) {
			break
		}
		physPos = g.PhysAt(next)
	}
	physTime := time.Since(start)

	t := &Table{
		Title:  "Ablation: grid-coordinate integration vs per-step point location (Sec 2.1)",
		Note:   fmt.Sprintf("%d RK2 steps on the tapered cylinder grid", steps),
		Header: []string{"strategy", "wall time", "time/step"},
	}
	perStep := func(d time.Duration, n int) string {
		if n == 0 {
			return "-"
		}
		return (d / time.Duration(n)).Round(10 * time.Nanosecond).String()
	}
	t.AddRow("grid coordinates (paper)", gridTime.Round(time.Microsecond).String(),
		perStep(gridTime, len(path)))
	t.AddRow("physical + point location", physTime.Round(time.Microsecond).String(),
		perStep(physTime, located))
	return t, nil
}

// AblationEncoding weighs the paper's §5.1 argument: ship 3-D points
// at 12 bytes each rather than pre-projected screen coordinates, which
// cost 8 bytes/point mono but 16 bytes/point in stereo (two
// projections).
func AblationEncoding(points int) *Table {
	t := &Table{
		Title:  "Ablation: point encoding (Sec 5.1)",
		Note:   fmt.Sprintf("%d points per frame, 10 fps", points),
		Header: []string{"encoding", "bytes/point", "bytes/frame", "bandwidth @10fps (MB/s)"},
	}
	rows := []struct {
		name string
		bpp  int
	}{
		{"3-D positions (chosen)", wire.PointBytes},
		{"projected, mono display", 8},
		{"projected, stereo (2 eyes)", 16},
	}
	for _, r := range rows {
		frame := points * r.bpp
		t.AddRow(r.name, fmt.Sprintf("%d", r.bpp), fmt.Sprintf("%d", frame),
			mbps(float64(frame)*10))
	}
	return t
}

// AblationVectorLength sweeps the batch width of the vectorized
// engine. The Convex's vector registers held 128 entries — the reason
// the paper's vectorization processed streamlines in groups of up to
// 128; on modern hardware the same parameter trades loop overhead
// against cache residency.
func AblationVectorLength() (*Table, error) {
	w, err := compute.BenchmarkWorkload()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: vector batch width (the Convex register length was 128)",
		Note:   "Sec 5.3 workload, wall time on this host, best of 3",
		Header: []string{"batch width", "wall time", "points"},
	}
	for _, vl := range []int{1, 8, 32, 128, 512} {
		e := compute.Vector{VectorLength: vl}
		var best compute.Result
		for i := 0; i < 3; i++ {
			r := compute.RunBenchmark(e, w, compute.CostModel{})
			if i == 0 || r.Wall < best.Wall {
				best = r
			}
		}
		if !best.Complete {
			return nil, fmt.Errorf("bench: batch width %d truncated paths", vl)
		}
		t.AddRow(fmt.Sprintf("%d", vl),
			best.Wall.Round(10*time.Microsecond).String(),
			fmt.Sprintf("%d", best.Points))
	}
	return t, nil
}

// MultiblockBench measures the Sec 7 block-hopping integrator against
// the equivalent single-block path: the hop cost is one point location
// per seam crossing.
func MultiblockBench() (*Table, error) {
	up, err := grid.NewCartesian(21, 17, 17, vmath.AABB{
		Min: vmath.V3(-20, -8, -8), Max: vmath.V3(0.5, 8, 8),
	})
	if err != nil {
		return nil, err
	}
	down, err := grid.NewCartesian(21, 17, 17, vmath.AABB{
		Min: vmath.V3(0, -8, -8), Max: vmath.V3(20, 8, 8),
	})
	if err != nil {
		return nil, err
	}
	whole, err := grid.NewCartesian(41, 17, 17, vmath.AABB{
		Min: vmath.V3(-20, -8, -8), Max: vmath.V3(20, 8, 8),
	})
	if err != nil {
		return nil, err
	}
	m, err := grid.NewMultiblock(up, down)
	if err != nil {
		return nil, err
	}
	mkField := func(g *grid.Grid) *field.Field {
		f := field.NewField(g.NI, g.NJ, g.NK, field.GridCoords)
		for i := range f.U {
			f.U[i] = 0.5
			f.V[i] = 0.05
		}
		return f
	}
	mf, err := integrate.NewMultiField(m, []*field.Field{mkField(up), mkField(down)})
	if err != nil {
		return nil, err
	}
	o := integrate.Options{Method: integrate.RK2, StepSize: 0.5, MaxSteps: 200, MinSpeed: 1e-9}
	const reps = 200

	start := time.Now()
	var hopPoints int
	for i := 0; i < reps; i++ {
		path, err := integrate.MultiStreamline(mf, vmath.V3(-18, 0, 0), o)
		if err != nil {
			return nil, err
		}
		hopPoints = len(path.Points)
	}
	multi := time.Since(start) / reps

	single := integrate.SteadySampler{F: mkField(whole), G: whole}
	start = time.Now()
	var singlePoints int
	for i := 0; i < reps; i++ {
		p := integrate.Streamline(single, vmath.V3(2, 8, 8), 0, o)
		singlePoints = len(p)
	}
	mono := time.Since(start) / reps

	t := &Table{
		Title:  "Sec 7: multiblock integration vs single-block equivalent",
		Note:   "same physical domain, same flow; the multiblock path pays one point location per seam hop",
		Header: []string{"configuration", "time/streamline", "points"},
	}
	t.AddRow("single block (41x17x17)", mono.Round(time.Microsecond).String(),
		fmt.Sprintf("%d", singlePoints))
	t.AddRow("two blocks + hop", multi.Round(time.Microsecond).String(),
		fmt.Sprintf("%d", hopPoints))
	return t, nil
}
