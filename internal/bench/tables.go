package bench

import (
	"fmt"
	"net"
	"time"

	"repro/internal/compute"
	"repro/internal/dlib"
	"repro/internal/netsim"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// Table1Particles are the paper's Table 1 rows.
var Table1Particles = []int{10000, 50000, 100000}

// mbytes formats bytes as the paper's MB/s (decimal-free binary MB as
// the paper used: 1 MB = 2^20 bytes, giving its 1.144/5.722/9.537).
func mbps(bytesPerSec float64) string {
	return fmt.Sprintf("%.3f", bytesPerSec/(1<<20))
}

// Table1 reproduces "Table 1: Network constraints": bytes per frame at
// 12 bytes/point and the bandwidth required for 10 frames/second.
// The paper's first two rows follow bytes*10/2^20 exactly (1.144,
// 5.722); its third row prints 9.537 where that formula gives 11.444 —
// an arithmetic slip in the original (9.537 corresponds to 1,000,000
// bytes/frame, not the row's own 1,200,000). We print the consistent
// value and flag the discrepancy in EXPERIMENTS.md.
func Table1() *Table {
	t := &Table{
		Title:  "Table 1: Network constraints",
		Note:   "12 bytes/point, 10 frames/second",
		Header: []string{"# of particles", "# of bytes transferred", "required bandwidth (MB/s)"},
	}
	for _, n := range Table1Particles {
		bytes := n * wire.PointBytes
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", bytes),
			mbps(float64(bytes)*10),
		)
	}
	return t
}

// Table1Measured runs the Table 1 transfers through real dlib calls
// over simulated UltraNet links and reports the achieved frame rate —
// who can actually sustain 10 fps.
func Table1Measured(frames int) (*Table, error) {
	t := &Table{
		Title: "Table 1 (measured): achieved frame rate over simulated links",
		Note: "dlib frame exchange over loopback TCP paced to the paper's link budgets;\n" +
			"UltraNet-actual = 1 MB/s, UltraNet-VME = 13 MB/s",
		Header: []string{"# of particles", "link", "achieved fps", "sustains 10 fps?"},
	}
	links := []struct {
		name string
		bw   int64
	}{
		{"ultranet-actual (1 MB/s)", netsim.UltraNetActual},
		{"ultranet-vme (13 MB/s)", netsim.UltraNetVME},
	}
	for _, n := range Table1Particles {
		payload := wire.EncodePoints(make([]byte, 0, n*wire.PointBytes), make([]vmath.Vec3, n))
		for _, link := range links {
			fps, err := measureTransferFPS(payload, netsim.Link{BandwidthBytesPerSec: link.bw}, frames)
			if err != nil {
				return nil, err
			}
			t.AddRow(
				fmt.Sprintf("%d", n),
				link.name,
				fmt.Sprintf("%.2f", fps),
				yesNo(fps >= 10),
			)
		}
	}
	return t, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// measureTransferFPS serves `payload` per call over a paced link and
// measures the achieved call rate.
func measureTransferFPS(payload []byte, link netsim.Link, frames int) (float64, error) {
	srv := dlib.NewServer()
	srv.Register("points", func(*dlib.Ctx, []byte) ([]byte, error) { return payload, nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Pace the server's writes: the visualization data flows
		// server -> workstation.
		srv.ServeConn(link.Wrap(conn))
	}()
	c, err := dlib.Dial(ln.Addr().String())
	if err != nil {
		return 0, err
	}
	defer c.Close()
	// One warmup, then timed frames.
	if _, err := c.Call("points", nil); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < frames; i++ {
		if _, err := c.Call("points", nil); err != nil {
			return 0, err
		}
	}
	return float64(frames) / time.Since(start).Seconds(), nil
}

// Table2Grids are the paper's Table 2 rows: grid point counts.
var Table2Grids = []struct {
	Points int
	Label  string
}{
	{131072, "131,072 (tapered cyl.)"},
	{436906, "436,906 (current max)"},
	{1000000, "1,000,000"},
	{3000000, "3,000,000"},
	{10000000, "10,000,000"},
}

// Table2 reproduces "Table 2: Disk bandwidth constraints".
func Table2() *Table {
	t := &Table{
		Title:  "Table 2: Disk bandwidth constraints",
		Note:   "12 bytes/point/timestep, 10 frames/second",
		Header: []string{"# of points in grid", "# of bytes in a timestep", "# timesteps per GB", "required disk bandwidth (MB/s)"},
	}
	const gb = 1 << 30
	for _, g := range Table2Grids {
		bytes := int64(g.Points) * 12
		t.AddRow(
			g.Label,
			fmt.Sprintf("%d", bytes),
			fmt.Sprintf("%d", int64(gb)/bytes),
			mbps(float64(bytes)*10),
		)
	}
	return t
}

// Table3Rows are the paper's Table 3 benchmark times.
var Table3Rows = []struct {
	Bench time.Duration
	Label string
}{
	{250 * time.Millisecond, "0.25 seconds"},
	{190 * time.Millisecond, "0.19 seconds (current)"},
	{130 * time.Millisecond, "0.13 seconds (workstation)"},
	{100 * time.Millisecond, "0.10 seconds"},
	{50 * time.Millisecond, "0.05 seconds"},
}

// Table3 reproduces "Table 3: Computational performance constraints":
// benchmark time to maximum particles at 10 fps, "assuming that the
// performance scales with the number of particles".
func Table3() *Table {
	t := &Table{
		Title:  "Table 3: Computational performance constraints",
		Note:   "benchmark = 100 streamlines x 200 points (20,000 points)",
		Header: []string{"Benchmark performance", "maximum # of particles", "# of streamlines w/ 200 particles"},
	}
	frame := time.Second / 10
	for _, row := range Table3Rows {
		maxP := compute.MaxParticlesAt(row.Bench, compute.BenchTotalPoints, frame)
		t.AddRow(row.Label, fmt.Sprintf("%d", maxP), fmt.Sprintf("%d", maxP/200))
	}
	return t
}

// EngineBench runs the §5.3 benchmark on all three engines, reporting
// Go wall time, the calibrated 1992 model time, and the derived max
// particle count both ways. The shape requirement: modeled sgi-8 <
// vector-3 < scalar-4, matching the paper's awkward finding that
// vectorization barely beat the scalar-parallel code.
func EngineBench() (*Table, error) {
	w, err := compute.BenchmarkWorkload()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Sec 5.3 benchmark: 100 streamlines x 200 points",
		Note:  "modeled = calibrated 1992 cost model; wall = this host",
		Header: []string{"engine", "workers", "wall time", "modeled 1992 time",
			"max particles @10fps (modeled)"},
	}
	cases := []struct {
		e compute.Engine
		m compute.CostModel
	}{
		{compute.Parallel{NumWorkers: 4}, compute.ConvexScalar4},
		{compute.Vector{}, compute.ConvexVector3},
		{compute.Parallel{NumWorkers: 8}, compute.SGI380GT8},
		// The paper's proposed-but-unbuilt optimization: groups of
		// streamlines across processors, vectorized within each group.
		{compute.Hybrid{NumWorkers: 4}, compute.ConvexHybrid4},
	}
	frame := time.Second / 10
	for _, c := range cases {
		// Best of 3 to de-noise the wall clock.
		var best compute.Result
		for i := 0; i < 3; i++ {
			r := compute.RunBenchmark(c.e, w, c.m)
			if i == 0 || r.Wall < best.Wall {
				best = r
			}
		}
		if !best.Complete {
			return nil, fmt.Errorf("bench: engine %s terminated streamlines early", c.e.Name())
		}
		t.AddRow(
			c.m.Name,
			fmt.Sprintf("%d", c.e.Workers()),
			best.Wall.Round(10*time.Microsecond).String(),
			best.Modeled.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", compute.MaxParticlesAt(best.Modeled, compute.BenchTotalPoints, frame)),
		)
	}
	return t, nil
}
