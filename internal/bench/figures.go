package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/compute"
	"repro/internal/field"
	"repro/internal/flow"
	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/isosurf"
	"repro/internal/render"
	"repro/internal/vmath"
)

// DatasetSpec sizes the synthetic tapered-cylinder dataset used by the
// figures.
type DatasetSpec struct {
	NI, NJ, NK int
	NumSteps   int
	DT         float32
}

// DefaultDatasetSpec is laptop-sized: big enough for recognizable
// shedding structure, small enough to build in seconds.
func DefaultDatasetSpec() DatasetSpec {
	return DatasetSpec{NI: 32, NJ: 48, NK: 12, NumSteps: 24, DT: 0.6}
}

// BuildDataset synthesizes the tapered-cylinder dataset in grid
// coordinates: the O-grid of Jespersen-Levit geometry with the
// analytic shedding flow sampled onto it.
func BuildDataset(spec DatasetSpec) (*field.Unsteady, error) {
	g, err := grid.NewTaperedCylinder(grid.TaperedCylinderSpec{
		NI: spec.NI, NJ: spec.NJ, NK: spec.NK,
		R0: 1, R1: 0.5, Router: 12, Span: 16, Stretch: 2,
	})
	if err != nil {
		return nil, err
	}
	phys, err := flow.SampleUnsteady(flow.DefaultTaperedCylinder(), g, spec.NumSteps, 0, spec.DT)
	if err != nil {
		return nil, err
	}
	return phys.ToGridCoords()
}

// figureCamera looks at the cylinder wake from above and upstream.
func figureCamera() vmath.Mat4 {
	// Head matrix: positioned up and back, looking toward the wake
	// center. LookAt gives a view matrix; the head is its inverse.
	view := vmath.LookAt(vmath.V3(-6, 14, 24), vmath.V3(4, 0, 8), vmath.V3(0, 1, 0))
	head, _ := view.Inverted()
	return head
}

// FigureResult reports what a figure run produced.
type FigureResult struct {
	Path      string
	LitPixels int
	Lines     int
	Points    int
}

// wakeRake returns a rake crossing the near-wake region, seeds along
// the span, slightly off-axis so streamlines wrap the cylinder.
func wakeRake(numSeeds int) *integrate.Rake {
	r, _ := integrate.NewRake(1,
		vmath.V3(-3, 0.6, 1), vmath.V3(-3, 0.6, 14), numSeeds, integrate.ToolStreakline)
	return r
}

// renderLines draws polylines (physical coordinates) into a stereo
// anaglyph PPM at outPath.
func renderLines(lines [][]vmath.Vec3, smoke bool, outPath string) (FigureResult, error) {
	fb, err := render.NewFramebuffer(640, 512)
	if err != nil {
		return FigureResult{}, err
	}
	rig := render.StereoRig{IPD: 0.5, Proj: vmath.Perspective(1.0, 640.0/512.0, 0.1, 200)}
	scene := render.LineScene(lines)
	if smoke {
		scene = render.SmokeScene(lines, 70)
	}
	if err := rig.RenderAnaglyph(fb, figureCamera(), scene); err != nil {
		return FigureResult{}, err
	}
	if err := os.MkdirAll(filepath.Dir(outPath), 0o755); err != nil {
		return FigureResult{}, err
	}
	f, err := os.Create(outPath)
	if err != nil {
		return FigureResult{}, err
	}
	if err := fb.WritePPM(f); err != nil {
		f.Close()
		return FigureResult{}, err
	}
	if err := f.Close(); err != nil {
		return FigureResult{}, err
	}
	var points int
	for _, l := range lines {
		points += len(l)
	}
	return FigureResult{
		Path:      outPath,
		LitPixels: fb.CountLit(5),
		Lines:     len(lines),
		Points:    points,
	}, nil
}

// Figure1 regenerates figure 1: streaklines of the flow around the
// tapered cylinder rendered as smoke. Smoke is advected over many
// frames of playback before the snapshot.
func Figure1(u *field.Unsteady, outPath string) (FigureResult, error) {
	rake := wakeRake(10)
	seeds := rake.SeedsGrid(u.Grid)
	if len(seeds) == 0 {
		return FigureResult{}, fmt.Errorf("bench: figure 1 rake has no in-grid seeds")
	}
	streak := integrate.NewStreak(40000)
	frames := 3 * u.NumSteps()
	for f := 0; f < frames; f++ {
		step := f % u.NumSteps()
		sampler := compute.SteadyBatch{F: u.Steps[step], G: u.Grid}
		streak.Advance(sampler, seeds, float32(step), 0.5, integrate.RK2)
	}
	lines := streak.PolylineBySeed(len(seeds))
	physLines := make([][]vmath.Vec3, len(lines))
	for i, l := range lines {
		physLines[i] = integrate.ToPhysical(u.Grid, l)
	}
	return renderLines(physLines, true, outPath)
}

// streamlineLines computes the figure 2/3 streamline set at a given
// timestep.
func streamlineLines(u *field.Unsteady, step int) [][]vmath.Vec3 {
	rake := wakeRake(12)
	seeds := rake.SeedsGrid(u.Grid)
	o := integrate.Options{Method: integrate.RK2, StepSize: 0.4, MaxSteps: 300, MinSpeed: 1e-7}
	paths, _ := compute.Vector{}.Streamlines(
		compute.SteadyBatch{F: u.Step(step), G: u.Grid}, seeds, float32(step), o)
	out := make([][]vmath.Vec3, 0, len(paths))
	for _, p := range paths {
		if len(p) >= 2 {
			out = append(out, integrate.ToPhysical(u.Grid, p))
		}
	}
	return out
}

// Figure2 regenerates figure 2: streamlines at an early timestep.
func Figure2(u *field.Unsteady, outPath string) (FigureResult, error) {
	return renderLines(streamlineLines(u, 0), false, outPath)
}

// Figure3 regenerates figure 3: streamlines "from the same seedpoints
// as in figure 2, but at a later time". It also returns the mean
// pointwise divergence between the two path sets — the unsteadiness
// the figure pair demonstrates.
func Figure3(u *field.Unsteady, outPath string) (FigureResult, float64, error) {
	early := streamlineLines(u, 0)
	lateStep := u.NumSteps() / 2
	late := streamlineLines(u, lateStep)
	res, err := renderLines(late, false, outPath)
	if err != nil {
		return FigureResult{}, 0, err
	}
	return res, meanPathDivergence(early, late), nil
}

// meanPathDivergence averages the distance between corresponding
// points of corresponding paths.
func meanPathDivergence(a, b [][]vmath.Vec3) float64 {
	var sum float64
	var n int
	lines := len(a)
	if len(b) < lines {
		lines = len(b)
	}
	for i := 0; i < lines; i++ {
		pts := len(a[i])
		if len(b[i]) < pts {
			pts = len(b[i])
		}
		for p := 0; p < pts; p++ {
			sum += float64(a[i][p].Dist(b[i][p]))
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// FigureIsosurface is not a paper figure — it renders the offline
// isosurface tool's output (wireframe |u| surface over the tapered
// cylinder) as a bonus image, since the paper could only describe why
// such surfaces were excluded from the interactive toolset.
func FigureIsosurface(u *field.Unsteady, outPath string) (FigureResult, error) {
	speed := isosurf.SpeedField(u.Steps[0])
	// Pick an iso value bracketing the wake: 40% of max speed.
	var maxSpeed float32
	for _, s := range speed {
		if s > maxSpeed {
			maxSpeed = s
		}
	}
	tris, err := isosurf.Extract(u.Grid, speed, 0.4*maxSpeed)
	if err != nil {
		return FigureResult{}, err
	}
	lines := make([][]vmath.Vec3, 0, len(tris))
	for _, t := range tris {
		lines = append(lines, []vmath.Vec3{t[0], t[1], t[2], t[0]})
	}
	return renderLines(lines, false, outPath)
}
