package bench

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/field"
)

// smallSpec keeps test runs fast.
func smallSpec() DatasetSpec {
	return DatasetSpec{NI: 16, NJ: 24, NK: 8, NumSteps: 8, DT: 0.6}
}

func buildSmall(t testing.TB) *field.Unsteady {
	t.Helper()
	u, err := BuildDataset(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestTable1MatchesPaperExactly(t *testing.T) {
	tab := Table1()
	// Rows 1-2 match the paper to the digit. Row 3's bandwidth column
	// prints the self-consistent 11.444 MB/s; the paper's 9.537 does
	// not follow its own 12-bytes-per-point arithmetic (see
	// EXPERIMENTS.md).
	want := [][]string{
		{"10000", "120000", "1.144"},
		{"50000", "600000", "5.722"},
		{"100000", "1200000", "11.444"},
	}
	if len(tab.Rows) != len(want) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, row := range want {
		for j, cell := range row {
			if tab.Rows[i][j] != cell {
				t.Errorf("row %d col %d = %q, want %q", i, j, tab.Rows[i][j], cell)
			}
		}
	}
}

func TestTable2MatchesPaperExactly(t *testing.T) {
	tab := Table2()
	// Bytes column: row 2 prints 5,242,872 (436,906 x 12); the paper
	// rounds to 5,242,880 (= 5 x 2^20 exactly, since "436,906" is
	// itself 5 MB / 12 rounded). Row 5 prints 120,000,000; the paper's
	// 360,000,000 uses 36 bytes/point, inconsistent with its own
	// 12-bytes-per-point rule (see EXPERIMENTS.md).
	wantBytes := []string{"1572864", "5242872", "12000000", "36000000", "120000000"}
	wantSteps := []string{"682", "204", "89", "29", "8"}
	for i := range tab.Rows {
		if tab.Rows[i][1] != wantBytes[i] {
			t.Errorf("row %d bytes = %s, want %s", i, tab.Rows[i][1], wantBytes[i])
		}
		if tab.Rows[i][2] != wantSteps[i] {
			t.Errorf("row %d steps/GB = %s, want %s", i, tab.Rows[i][2], wantSteps[i])
		}
	}
	// Required bandwidth: first two rows match the paper (15, 50).
	if !strings.HasPrefix(tab.Rows[0][3], "15.0") {
		t.Errorf("tapered cylinder bandwidth = %s, want 15", tab.Rows[0][3])
	}
	if !strings.HasPrefix(tab.Rows[1][3], "50.0") {
		t.Errorf("current max bandwidth = %s, want 50", tab.Rows[1][3])
	}
}

func TestTable3MatchesPaperExactly(t *testing.T) {
	tab := Table3()
	want := [][2]string{
		{"8000", "40"},
		{"10526", "52"},
		{"15384", "76"},
		{"20000", "100"},
		{"40000", "200"},
	}
	for i, w := range want {
		if tab.Rows[i][1] != w[0] || tab.Rows[i][2] != w[1] {
			t.Errorf("row %d = %v, want %v", i, tab.Rows[i][1:], w)
		}
	}
}

func TestEngineBenchOrdering(t *testing.T) {
	tab, err := EngineBench()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Parse modeled times; ordering must be scalar4 > vector3 > sgi8.
	parse := func(s string) time.Duration {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return d
	}
	scalar4 := parse(tab.Rows[0][3])
	vector3 := parse(tab.Rows[1][3])
	sgi8 := parse(tab.Rows[2][3])
	if !(sgi8 < vector3 && vector3 < scalar4) {
		t.Errorf("modeled ordering broken: sgi8=%v vector3=%v scalar4=%v", sgi8, vector3, scalar4)
	}
	// Absolute modeled values ~ paper's 0.135/0.19/0.24 s.
	within := func(got time.Duration, want time.Duration) bool {
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff <= 5*time.Millisecond
	}
	if !within(scalar4, 240*time.Millisecond) || !within(vector3, 190*time.Millisecond) ||
		!within(sgi8, 135*time.Millisecond) {
		t.Errorf("modeled times %v %v %v, want ~240ms/190ms/135ms", scalar4, vector3, sgi8)
	}
	// The paper's proposed hybrid (groups across processors,
	// vectorized within) would beat both Convex configurations they
	// actually built, reclaiming the fourth processor.
	hybrid := parse(tab.Rows[3][3])
	if hybrid >= vector3 {
		t.Errorf("hybrid modeled %v not faster than vector3 %v", hybrid, vector3)
	}
}

func TestTable1MeasuredShape(t *testing.T) {
	if testing.Short() {
		t.Skip("network measurement")
	}
	tab, err := Table1Measured(3)
	if err != nil {
		t.Fatal(err)
	}
	// Shape: the 1 MB/s link cannot sustain 10 fps for 10k particles
	// (needs 1.144 MB/s); the 13 MB/s link can.
	byKey := map[string]string{}
	for _, row := range tab.Rows {
		byKey[row[0]+"/"+row[1]] = row[3]
	}
	if byKey["10000/ultranet-actual (1 MB/s)"] != "no" {
		t.Errorf("1 MB/s link sustained 10k particles at 10fps; paper says it cannot")
	}
	if byKey["10000/ultranet-vme (13 MB/s)"] != "yes" {
		t.Errorf("13 MB/s link failed 10k particles at 10fps")
	}
	if byKey["100000/ultranet-actual (1 MB/s)"] != "no" {
		t.Errorf("1 MB/s link sustained 100k particles")
	}
}

func TestFiguresProduceImages(t *testing.T) {
	u := buildSmall(t)
	dir := t.TempDir()

	f1, err := Figure1(u, filepath.Join(dir, "fig1.ppm"))
	if err != nil {
		t.Fatal(err)
	}
	if f1.LitPixels < 100 {
		t.Errorf("figure 1 nearly empty: %d lit pixels", f1.LitPixels)
	}
	f2, err := Figure2(u, filepath.Join(dir, "fig2.ppm"))
	if err != nil {
		t.Fatal(err)
	}
	if f2.LitPixels < 100 || f2.Lines < 5 {
		t.Errorf("figure 2 thin: %+v", f2)
	}
	f3, div, err := Figure3(u, filepath.Join(dir, "fig3.ppm"))
	if err != nil {
		t.Fatal(err)
	}
	if f3.LitPixels < 100 {
		t.Errorf("figure 3 thin: %+v", f3)
	}
	// The figure 2/3 pair demonstrates unsteadiness: same seeds,
	// visibly different geometry.
	if div < 0.05 {
		t.Errorf("fig2/fig3 paths nearly identical (divergence %v); flow not unsteady", div)
	}
}

func TestFig8PrefetchWins(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive pipeline measurement")
	}
	u := buildSmall(t)
	// Throttle so loads cost ~10ms each: timestep is
	// 16*24*8*12 = 36,864 bytes; 3 MB/s gives ~12 ms. The measurement
	// is wall-clock on a shared box, so allow up to three attempts —
	// prefetch must win at least once and must never lose by much.
	var lastSync, lastPre time.Duration
	for attempt := 0; attempt < 3; attempt++ {
		tab, err := Fig8Pipeline(u, 3<<20, 10)
		if err != nil {
			t.Fatal(err)
		}
		sync, err := time.ParseDuration(tab.Rows[0][1])
		if err != nil {
			t.Fatal(err)
		}
		pre, err := time.ParseDuration(tab.Rows[1][1])
		if err != nil {
			t.Fatal(err)
		}
		if pre < sync {
			return // overlap won
		}
		lastSync, lastPre = sync, pre
	}
	t.Errorf("prefetch (%v) never beat synchronous (%v) in 3 attempts", lastPre, lastSync)
}

func TestFig9RenderOutrunsNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive loop measurement")
	}
	u := buildSmall(t)
	tab, err := Fig9Client(u, 20*time.Millisecond, 5)
	if err != nil {
		t.Fatal(err)
	}
	ratioStr := strings.TrimSuffix(tab.Rows[2][1], "x")
	ratio, err := strconv.ParseFloat(ratioStr, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 2 {
		t.Errorf("render/network ratio %v < 2", ratio)
	}
}

func TestFig67RemoteIOWorks(t *testing.T) {
	u := buildSmall(t)
	tab, err := Fig67DlibIO(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestAblationIntegrators(t *testing.T) {
	tab, err := AblationIntegrators()
	if err != nil {
		t.Fatal(err)
	}
	drift := func(row int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[row][2], 64)
		if err != nil {
			t.Fatalf("parse drift %q: %v", tab.Rows[row][2], err)
		}
		if v < 0 {
			v = -v
		}
		return v
	}
	euler, rk2, rk4 := drift(0), drift(1), drift(2)
	if rk2 >= euler {
		t.Errorf("RK2 drift %v not better than Euler %v", rk2, euler)
	}
	if rk4 > rk2 {
		t.Errorf("RK4 drift %v worse than RK2 %v", rk4, rk2)
	}
}

func TestAblationGridCoordsFaster(t *testing.T) {
	u := buildSmall(t)
	tab, err := AblationGridCoords(u, 500)
	if err != nil {
		t.Fatal(err)
	}
	gridT, err := time.ParseDuration(tab.Rows[0][1])
	if err != nil {
		t.Fatal(err)
	}
	physT, err := time.ParseDuration(tab.Rows[1][1])
	if err != nil {
		t.Fatal(err)
	}
	if gridT*2 > physT {
		t.Errorf("grid-coord integration (%v) not clearly faster than point location (%v)",
			gridT, physT)
	}
}

func TestAblationEncoding(t *testing.T) {
	tab := AblationEncoding(10000)
	if tab.Rows[0][2] != "120000" {
		t.Errorf("3-D row bytes = %s", tab.Rows[0][2])
	}
	if tab.Rows[2][2] != "160000" {
		t.Errorf("stereo row bytes = %s", tab.Rows[2][2])
	}
}

func TestTableFormatting(t *testing.T) {
	tab := Table1()
	s := tab.String()
	if !strings.Contains(s, "Table 1") || !strings.Contains(s, "120000") {
		t.Errorf("formatted table missing content:\n%s", s)
	}
}

func TestAblationIsosurfaceReproducesExclusion(t *testing.T) {
	// The paper's Sec 1.2 rule: streamlines fit the 1/8 s budget on
	// the 1992 machine, isosurfaces do not.
	tab, err := AblationIsosurface()
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Rows[0][3]; got != "yes" {
		t.Errorf("streamlines fit = %q, want yes", got)
	}
	if got := tab.Rows[1][3]; got != "no" {
		t.Errorf("isosurface fit = %q, want no", got)
	}
}

func TestAblationVectorLength(t *testing.T) {
	tab, err := AblationVectorLength()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] != "20000" {
			t.Errorf("batch %s produced %s points, want 20000", row[0], row[2])
		}
	}
}

func TestMultiblockBench(t *testing.T) {
	tab, err := MultiblockBench()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}
