package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestRecorderAccumulates(t *testing.T) {
	var r Recorder
	r.Observe(FrameSample{
		Load: 2 * time.Millisecond, Integrate: 6 * time.Millisecond,
		Encode: 1 * time.Millisecond, RakesComputed: 2, RakesReused: 6,
		Points: 100, Bytes: 1200,
	})
	r.Observe(FrameSample{FrameReused: true, RakesReused: 8, Points: 100, Bytes: 1200})
	s := r.Snapshot()
	if s.Frames != 2 || s.FramesReused != 1 {
		t.Errorf("frames = %d reused = %d", s.Frames, s.FramesReused)
	}
	if s.AvgLoad() != time.Millisecond || s.AvgIntegrate() != 3*time.Millisecond {
		t.Errorf("averages: load=%v integrate=%v", s.AvgLoad(), s.AvgIntegrate())
	}
	if got, want := s.ReuseRatio(), 14.0/16.0; got != want {
		t.Errorf("reuse ratio = %v, want %v", got, want)
	}
	if s.Points != 200 || s.Bytes != 2400 {
		t.Errorf("points=%d bytes=%d", s.Points, s.Bytes)
	}
	if !strings.Contains(s.String(), "frames=2") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestZeroSnapshotAverages(t *testing.T) {
	var s Snapshot
	if s.AvgLoad() != 0 || s.AvgEncode() != 0 || s.ReuseRatio() != 0 {
		t.Error("zero snapshot divides by zero frames")
	}
}

func TestDebugServerServesVars(t *testing.T) {
	d, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get("http://" + d.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("status %d err %v", resp.StatusCode, err)
	}
	if !strings.Contains(string(body), "memstats") {
		t.Error("expvar payload missing memstats")
	}
	resp, err = http.Get("http://" + d.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof status %d", resp.StatusCode)
	}
}

// TestPublishExportsSnapshot covers the expvar surface vwserver's
// -debug mode relies on: Publish renders the recorder's live snapshot
// as JSON under the published name.
func TestPublishExportsSnapshot(t *testing.T) {
	var r Recorder
	Publish("obs_test.frames", &r)
	r.Observe(FrameSample{Points: 7, Bytes: 21})
	v := expvar.Get("obs_test.frames")
	if v == nil {
		t.Fatal("Publish did not register the var")
	}
	var got Snapshot
	if err := json.Unmarshal([]byte(v.String()), &got); err != nil {
		t.Fatalf("published value is not JSON: %v", err)
	}
	if got.Frames != 1 || got.Points != 7 || got.Bytes != 21 {
		t.Errorf("published snapshot = %+v", got)
	}
	// The var is live, not a copy made at Publish time.
	r.Observe(FrameSample{Points: 3})
	if err := json.Unmarshal([]byte(v.String()), &got); err != nil {
		t.Fatal(err)
	}
	if got.Frames != 2 || got.Points != 10 {
		t.Errorf("published snapshot did not track the recorder: %+v", got)
	}
}

// TestPublishFuncExportsArbitraryStats covers the subsystem-stats path
// (vwserver publishes the timestep cache's counters through it).
func TestPublishFuncExportsArbitraryStats(t *testing.T) {
	type cacheish struct{ Hits, Misses int64 }
	cur := cacheish{Hits: 1}
	PublishFunc("obs_test.cache", func() any { return cur })
	v := expvar.Get("obs_test.cache")
	if v == nil {
		t.Fatal("PublishFunc did not register the var")
	}
	var got cacheish
	if err := json.Unmarshal([]byte(v.String()), &got); err != nil {
		t.Fatalf("published value is not JSON: %v", err)
	}
	if got != cur {
		t.Errorf("published = %+v, want %+v", got, cur)
	}
	cur = cacheish{Hits: 5, Misses: 2}
	if err := json.Unmarshal([]byte(v.String()), &got); err != nil {
		t.Fatal(err)
	}
	if got != cur {
		t.Errorf("published var is not live: %+v, want %+v", got, cur)
	}
	// Published vars ride the same /debug/vars payload DebugServer
	// serves.
	d, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get("http://" + d.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"obs_test.cache"`) {
		t.Error("/debug/vars payload missing the published var")
	}
}
