package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestRecorderAccumulates(t *testing.T) {
	var r Recorder
	r.Observe(FrameSample{
		Load: 2 * time.Millisecond, Integrate: 6 * time.Millisecond,
		Encode: 1 * time.Millisecond, RakesComputed: 2, RakesReused: 6,
		Points: 100, Bytes: 1200,
	})
	r.Observe(FrameSample{FrameReused: true, RakesReused: 8, Points: 100, Bytes: 1200})
	s := r.Snapshot()
	if s.Frames != 2 || s.FramesReused != 1 {
		t.Errorf("frames = %d reused = %d", s.Frames, s.FramesReused)
	}
	if s.AvgLoad() != time.Millisecond || s.AvgIntegrate() != 3*time.Millisecond {
		t.Errorf("averages: load=%v integrate=%v", s.AvgLoad(), s.AvgIntegrate())
	}
	if got, want := s.ReuseRatio(), 14.0/16.0; got != want {
		t.Errorf("reuse ratio = %v, want %v", got, want)
	}
	if s.Points != 200 || s.Bytes != 2400 {
		t.Errorf("points=%d bytes=%d", s.Points, s.Bytes)
	}
	if !strings.Contains(s.String(), "frames=2") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestZeroSnapshotAverages(t *testing.T) {
	var s Snapshot
	if s.AvgLoad() != 0 || s.AvgEncode() != 0 || s.ReuseRatio() != 0 {
		t.Error("zero snapshot divides by zero frames")
	}
}

func TestDebugServerServesVars(t *testing.T) {
	d, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get("http://" + d.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("status %d err %v", resp.StatusCode, err)
	}
	if !strings.Contains(string(body), "memstats") {
		t.Error("expvar payload missing memstats")
	}
	resp, err = http.Get("http://" + d.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof status %d", resp.StatusCode)
	}
}
