// Package obs instruments the frame pipeline. The paper's whole
// premise is a ~1/8 s command-to-display loop (§1.2); Bethel et al.'s
// remote-visualization experience (PAPERS.md) is that such pipelines
// only get fast once every stage is measured separately. obs gives the
// windtunnel that: per-stage frame timings (load / integrate / encode)
// with memoization counters, a process-wide expvar export, and an
// opt-in debug HTTP endpoint carrying expvar and pprof.
package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// FrameSample is one frame round's measurement, recorded by the server
// after the round is encoded.
type FrameSample struct {
	// Load is time spent waiting for the timestep (disk regime).
	Load time.Duration
	// Integrate is the visualization computation across all rakes.
	Integrate time.Duration
	// Encode is the wire-encoding of the reply.
	Encode time.Duration
	// RakesComputed counts rakes whose geometry was recomputed this
	// round; RakesReused counts rakes served from the dirty-rake memo.
	RakesComputed int
	RakesReused   int
	// ToolsComputed / ToolsReused are the same split for the shared
	// tools (isosurface, cutting plane, vortex cores); ToolPoints is
	// the tool-section geometry shipped this round.
	ToolsComputed int
	ToolsReused   int
	ToolPoints    int64
	// FrameReused marks a round served whole from the previous encode
	// (environment version unchanged).
	FrameReused bool
	// Points is the geometry point count shipped in the reply;
	// Bytes is the encoded reply size.
	Points int64
	Bytes  int64
	// Predicted is the frame-budget governor's pre-frame cost
	// prediction (zero until its EWMA calibrates); Budget is the
	// configured frame budget (zero when the governor is disabled);
	// Shed is the fraction of resident integration work shed this
	// round (0 = full fidelity).
	Predicted time.Duration
	Budget    time.Duration
	Shed      float64
}

// Snapshot is the cumulative view of a Recorder. Durations are sums;
// divide by Frames for per-frame means.
type Snapshot struct {
	Frames        int64
	FramesReused  int64
	LoadTime      time.Duration
	IntegrateTime time.Duration
	EncodeTime    time.Duration
	RakesComputed int64
	RakesReused   int64
	ToolsComputed int64
	ToolsReused   int64
	ToolPoints    int64
	Points        int64
	Bytes         int64
	// FramesShipped counts per-session reply sends and BytesShipped
	// their summed sizes. With the encode-once fan-out, K workstations
	// sharing a round ship K frames off one encode, so
	// FramesShipped/Frames is the fan-out factor.
	FramesShipped int64
	BytesShipped  int64
	// Governor gauges: Budget is the configured frame budget (last
	// non-zero observed), PredictedTime the summed cost predictions,
	// FramesShed the rounds shipped degraded, and ShedSum the summed
	// per-round shed fractions (divide by Frames for the mean).
	Budget        time.Duration
	PredictedTime time.Duration
	FramesShed    int64
	ShedSum       float64
}

// per returns d averaged over the snapshot's frames.
func (s Snapshot) per(d time.Duration) time.Duration {
	if s.Frames == 0 {
		return 0
	}
	return d / time.Duration(s.Frames)
}

// AvgLoad returns mean load wait per frame.
func (s Snapshot) AvgLoad() time.Duration { return s.per(s.LoadTime) }

// AvgIntegrate returns mean integration time per frame.
func (s Snapshot) AvgIntegrate() time.Duration { return s.per(s.IntegrateTime) }

// AvgEncode returns mean encode time per frame.
func (s Snapshot) AvgEncode() time.Duration { return s.per(s.EncodeTime) }

// AvgPredicted returns the mean governor cost prediction per frame.
func (s Snapshot) AvgPredicted() time.Duration { return s.per(s.PredictedTime) }

// AvgShed returns the mean fraction of integration work shed per
// frame (0 when the governor never clamped).
func (s Snapshot) AvgShed() float64 {
	if s.Frames == 0 {
		return 0
	}
	return s.ShedSum / float64(s.Frames)
}

// ReuseRatio returns the fraction of rake geometries served from the
// memo rather than recomputed.
func (s Snapshot) ReuseRatio() float64 {
	total := s.RakesComputed + s.RakesReused
	if total == 0 {
		return 0
	}
	return float64(s.RakesReused) / float64(total)
}

// String summarizes the snapshot for logs and benchmark tables. The
// governor column only appears once a budget has been observed, so
// ungoverned pipelines log exactly as before.
func (s Snapshot) String() string {
	out := fmt.Sprintf(
		"frames=%d (reused %d, shipped %d) load=%v integrate=%v encode=%v rakes computed=%d reused=%d (%.0f%%) points=%d bytes=%d shipped=%d",
		s.Frames, s.FramesReused, s.FramesShipped,
		s.AvgLoad().Round(time.Microsecond),
		s.AvgIntegrate().Round(time.Microsecond),
		s.AvgEncode().Round(time.Microsecond),
		s.RakesComputed, s.RakesReused, 100*s.ReuseRatio(),
		s.Points, s.Bytes, s.BytesShipped)
	if s.ToolsComputed > 0 || s.ToolsReused > 0 {
		// Only once a shared tool has run, so toolless pipelines log
		// exactly as before.
		out += fmt.Sprintf(" tools computed=%d reused=%d points=%d",
			s.ToolsComputed, s.ToolsReused, s.ToolPoints)
	}
	if s.Budget > 0 {
		out += fmt.Sprintf(" budget=%v predicted=%v shed frames=%d avg=%.1f%%",
			s.Budget,
			s.AvgPredicted().Round(time.Microsecond),
			s.FramesShed, 100*s.AvgShed())
	}
	return out
}

// Recorder accumulates FrameSamples. The zero value is ready to use;
// all methods are safe for concurrent callers.
type Recorder struct {
	mu sync.Mutex
	s  Snapshot
}

// Observe folds one frame's sample into the cumulative counters.
func (r *Recorder) Observe(f FrameSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.s.Frames++
	if f.FrameReused {
		r.s.FramesReused++
	}
	r.s.LoadTime += f.Load
	r.s.IntegrateTime += f.Integrate
	r.s.EncodeTime += f.Encode
	r.s.RakesComputed += int64(f.RakesComputed)
	r.s.RakesReused += int64(f.RakesReused)
	r.s.ToolsComputed += int64(f.ToolsComputed)
	r.s.ToolsReused += int64(f.ToolsReused)
	r.s.ToolPoints += f.ToolPoints
	r.s.Points += f.Points
	r.s.Bytes += f.Bytes
	if f.Budget > 0 {
		r.s.Budget = f.Budget
	}
	r.s.PredictedTime += f.Predicted
	if f.Shed > 0 {
		r.s.FramesShed++
		r.s.ShedSum += f.Shed
	}
}

// ObserveShip records one per-session reply send of the given encoded
// size. Ships are counted separately from Observe because one encoded
// round fans out to many sessions.
func (r *Recorder) ObserveShip(bytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.s.FramesShipped++
	r.s.BytesShipped += bytes
}

// Snapshot returns the cumulative counters.
func (r *Recorder) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.s
}

// Publish exports the recorder's snapshot as an expvar under name.
// Like expvar.Publish, it must be called at most once per name per
// process (typically from the server main).
func Publish(name string, r *Recorder) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// PublishFunc exports an arbitrary snapshot function as an expvar under
// name — used for subsystems with their own stats types (e.g. the
// shared timestep cache). Same once-per-name rule as Publish.
func PublishFunc(name string, fn func() any) {
	expvar.Publish(name, expvar.Func(fn))
}

// DebugServer is an opt-in HTTP endpoint exposing expvar (/debug/vars)
// and pprof (/debug/pprof/) on its own mux, so enabling observability
// never exposes the windtunnel's dlib port to HTTP.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts a DebugServer on addr (e.g. "localhost:6060").
func ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go d.srv.Serve(ln)
	return d, nil
}

// Addr returns the endpoint's bound address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the endpoint down.
func (d *DebugServer) Close() error { return d.srv.Close() }
