package render

// Depth cueing: the VGX attenuated line intensity with distance so
// nearer geometry reads brighter — essential for judging 3-D structure
// in a monochrome-per-eye display. When enabled, a pixel's color is
// scaled by a factor that falls linearly from 1 at the near plane
// (NDC z = -1) to CueFloor at the far plane (NDC z = +1).

// EnableDepthCue turns depth cueing on with the given floor intensity
// fraction in [0, 1).
func (r *Renderer) EnableDepthCue(floor float32) {
	if floor < 0 {
		floor = 0
	}
	if floor >= 1 {
		floor = 0.99
	}
	r.cueOn = true
	r.cueFloor = floor
}

// DisableDepthCue turns depth cueing off.
func (r *Renderer) DisableDepthCue() { r.cueOn = false }

// cue attenuates c by NDC depth z in [-1, 1].
func (r *Renderer) cue(c Color, z float32) Color {
	if !r.cueOn {
		return c
	}
	// t = 0 at near, 1 at far.
	t := (z + 1) / 2
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	f := 1 - t*(1-r.cueFloor)
	return Color{
		R: uint8(float32(c.R) * f),
		G: uint8(float32(c.G) * f),
		B: uint8(float32(c.B) * f),
	}
}
