// Package render is the software rendering substrate standing in for
// the SGI VGX pipeline: a z-buffered line/point rasterizer over a
// framebuffer, with the exact red/blue writemask anaglyph scheme §3
// describes — left eye in shades of pure red, right eye in shades of
// pure blue drawn under a writemask that protects the red bit planes,
// with the z-buffer (but not the color planes) cleared between eyes.
package render

import (
	"bufio"
	"fmt"
	"io"
	"math"
)

// Framebuffer is an RGB color buffer with a z-buffer. Depth follows
// OpenGL convention: smaller z is nearer after projection, the buffer
// clears to +Inf.
type Framebuffer struct {
	W, H int
	// Pix is packed RGB, 3 bytes per pixel, row-major from the top.
	Pix []uint8
	// Z is the depth buffer.
	Z []float32
}

// NewFramebuffer allocates a cleared framebuffer.
func NewFramebuffer(w, h int) (*Framebuffer, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("render: bad framebuffer size %dx%d", w, h)
	}
	f := &Framebuffer{W: w, H: h, Pix: make([]uint8, w*h*3), Z: make([]float32, w*h)}
	f.ClearZ()
	return f, nil
}

// Clear fills the color planes and resets depth.
func (f *Framebuffer) Clear(r, g, b uint8) {
	for i := 0; i < len(f.Pix); i += 3 {
		f.Pix[i], f.Pix[i+1], f.Pix[i+2] = r, g, b
	}
	f.ClearZ()
}

// ClearZ resets only the z-buffer — "the Z-buffer bit planes are
// cleared between the drawing of the left- and right-eye images, but
// the color (red) bit planes are not" (§3).
func (f *Framebuffer) ClearZ() {
	inf := float32(math.Inf(1))
	for i := range f.Z {
		f.Z[i] = inf
	}
}

// ChannelMask selects which color planes a draw may write — the VGX
// "writemask".
type ChannelMask uint8

// Mask bits.
const (
	MaskR ChannelMask = 1 << iota
	MaskG
	MaskB
	MaskAll = MaskR | MaskG | MaskB
)

// Color is an RGB intensity.
type Color struct {
	R, G, B uint8
}

// setPixel writes a depth-tested pixel under the mask. Additive draws
// saturate-add into the surviving channels instead of replacing them,
// which is how smoke accumulates.
func (f *Framebuffer) setPixel(x, y int, z float32, c Color, mask ChannelMask, additive bool) {
	if x < 0 || x >= f.W || y < 0 || y >= f.H {
		return
	}
	zi := y*f.W + x
	if z > f.Z[zi] {
		return
	}
	f.Z[zi] = z
	pi := zi * 3
	if mask&MaskR != 0 {
		f.Pix[pi] = blend(f.Pix[pi], c.R, additive)
	}
	if mask&MaskG != 0 {
		f.Pix[pi+1] = blend(f.Pix[pi+1], c.G, additive)
	}
	if mask&MaskB != 0 {
		f.Pix[pi+2] = blend(f.Pix[pi+2], c.B, additive)
	}
}

func blend(dst, src uint8, additive bool) uint8 {
	if !additive {
		return src
	}
	sum := int(dst) + int(src)
	if sum > 255 {
		return 255
	}
	return uint8(sum)
}

// At returns the pixel color at (x, y).
func (f *Framebuffer) At(x, y int) Color {
	pi := (y*f.W + x) * 3
	return Color{f.Pix[pi], f.Pix[pi+1], f.Pix[pi+2]}
}

// CountLit returns how many pixels have any channel above the
// threshold — used by figure tests to assert something was drawn.
func (f *Framebuffer) CountLit(threshold uint8) int {
	var n int
	for i := 0; i < len(f.Pix); i += 3 {
		if f.Pix[i] > threshold || f.Pix[i+1] > threshold || f.Pix[i+2] > threshold {
			n++
		}
	}
	return n
}

// WritePPM writes the color planes as a binary PPM (P6) image.
func (f *Framebuffer) WritePPM(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", f.W, f.H); err != nil {
		return fmt.Errorf("render: write ppm header: %w", err)
	}
	if _, err := bw.Write(f.Pix); err != nil {
		return fmt.Errorf("render: write ppm pixels: %w", err)
	}
	return bw.Flush()
}
