package render

import (
	"repro/internal/vmath"
)

// StereoRig renders a scene twice for the BOOM's two monochrome CRTs,
// using §3's scheme exactly: "rendering the left eye image using only
// shades of pure red ... and the right eye image using only shades of
// pure blue. When the blue (second, right-eye) image is drawn, it is
// drawn using a 'writemask' that protects the bits of the red image.
// The Z-buffer bit planes are cleared between the drawing of the left-
// and right-eye images, but the color (red) bit planes are not."
type StereoRig struct {
	// IPD is the interpupillary distance in world units.
	IPD float32
	// Proj is the shared projection (the BOOM's wide-field LEEP
	// optics).
	Proj vmath.Mat4
}

// Scene is a draw callback: it receives a renderer already configured
// with the eye's camera and mask, and issues Line/Point calls. The
// intensity channel of the colors it draws is taken from the red
// channel; stereo remaps it per eye.
type Scene func(r *Renderer)

// RenderAnaglyph draws the scene from both eyes of the head pose into
// fb. The left eye lands in the red planes, the right eye in the blue
// planes; where the images overlap, both survive — "the end result is
// separately Z-buffered left- and right-eye images, in red and blue
// respectively, on the screen at the same time".
func (s StereoRig) RenderAnaglyph(fb *Framebuffer, head vmath.Mat4, scene Scene) error {
	fb.Clear(0, 0, 0)
	r := NewRenderer(fb)

	leftView, rightView, err := EyeViews(head, s.IPD)
	if err != nil {
		return err
	}

	// Left eye: pure red, full depth test.
	r.SetCamera(leftView, s.Proj)
	r.SetMask(MaskR)
	scene(r)

	// Right eye: clear only Z, protect the red planes, draw blue.
	fb.ClearZ()
	r.SetCamera(rightView, s.Proj)
	r.SetMask(MaskB)
	scene(r)
	return nil
}

// EyeViews derives per-eye view matrices from a head matrix: each eye
// sits half the IPD along the head's local X axis.
func EyeViews(head vmath.Mat4, ipd float32) (left, right vmath.Mat4, err error) {
	half := ipd / 2
	leftHead := head.Mul(vmath.Translate(-half, 0, 0))
	rightHead := head.Mul(vmath.Translate(half, 0, 0))
	l, ok := leftHead.Inverted()
	if !ok {
		return vmath.Mat4{}, vmath.Mat4{}, errSingularHead
	}
	r, ok := rightHead.Inverted()
	if !ok {
		return vmath.Mat4{}, vmath.Mat4{}, errSingularHead
	}
	return l, r, nil
}

var errSingularHead = errorString("render: singular head matrix")

// errorString is a tiny allocation-free error type.
type errorString string

func (e errorString) Error() string { return string(e) }

// SmokeScene builds a Scene that draws streakline filaments as smoke:
// additive faint lines so overlapping filaments brighten, the visual
// the paper's figure 1 shows.
func SmokeScene(lines [][]vmath.Vec3, intensity uint8) Scene {
	return func(r *Renderer) {
		prevAdd := r.Additive
		r.Additive = true
		c := Color{R: intensity, G: intensity, B: intensity}
		for _, line := range lines {
			r.Polyline(line, c)
		}
		r.Additive = prevAdd
	}
}

// LineScene builds a Scene drawing each polyline at full intensity —
// streamlines and particle paths (figures 2 and 3).
func LineScene(lines [][]vmath.Vec3) Scene {
	return func(r *Renderer) {
		c := Color{R: 255, G: 255, B: 255}
		for _, line := range lines {
			r.Polyline(line, c)
		}
	}
}
