package render

import (
	"repro/internal/vmath"
)

// Renderer rasterizes 3-D lines and points into a framebuffer through
// a model-view-projection transform.
type Renderer struct {
	FB   *Framebuffer
	mask ChannelMask
	mvp  vmath.Mat4
	// Additive selects saturating-add blending (smoke) instead of
	// replace.
	Additive bool

	// depth cueing state (see depthcue.go).
	cueOn    bool
	cueFloor float32
}

// NewRenderer wraps a framebuffer with an identity transform and full
// write mask.
func NewRenderer(fb *Framebuffer) *Renderer {
	return &Renderer{FB: fb, mask: MaskAll, mvp: vmath.Identity()}
}

// SetCamera sets the transform as projection * view.
func (r *Renderer) SetCamera(view, proj vmath.Mat4) {
	r.mvp = proj.Mul(view)
}

// SetMVP sets the full transform directly.
func (r *Renderer) SetMVP(m vmath.Mat4) { r.mvp = m }

// SetMask sets the channel writemask for subsequent draws.
func (r *Renderer) SetMask(m ChannelMask) { r.mask = m }

// clipVert is a transformed vertex in homogeneous clip space.
type clipVert struct {
	p vmath.Vec3
	w float32
}

const nearEps = 1e-5

// Point draws a single 3-D point.
func (r *Renderer) Point(p vmath.Vec3, c Color) {
	v, w := r.mvp.TransformPointW(p)
	if w < nearEps {
		return
	}
	inv := 1 / w
	x, y, z := v.X*inv, v.Y*inv, v.Z*inv
	if x < -1 || x > 1 || y < -1 || y > 1 || z < -1 || z > 1 {
		return
	}
	sx, sy := r.toScreen(x, y)
	r.FB.setPixel(sx, sy, z, r.cue(c, z), r.mask, r.Additive)
}

// Points draws many points.
func (r *Renderer) Points(pts []vmath.Vec3, c Color) {
	for _, p := range pts {
		r.Point(p, c)
	}
}

// Polyline draws connected line segments through pts.
func (r *Renderer) Polyline(pts []vmath.Vec3, c Color) {
	for i := 1; i < len(pts); i++ {
		r.Line(pts[i-1], pts[i], c)
	}
}

// Line draws one 3-D line segment with near-plane clipping and
// z-buffered DDA rasterization.
func (r *Renderer) Line(a, b vmath.Vec3, c Color) {
	pa, wa := r.mvp.TransformPointW(a)
	pb, wb := r.mvp.TransformPointW(b)
	va := clipVert{pa, wa}
	vb := clipVert{pb, wb}

	// Clip against the near plane w > nearEps.
	if va.w < nearEps && vb.w < nearEps {
		return
	}
	if va.w < nearEps {
		va = clipToNear(vb, va)
	} else if vb.w < nearEps {
		vb = clipToNear(va, vb)
	}

	// Perspective divide.
	ax, ay, az := va.p.X/va.w, va.p.Y/va.w, va.p.Z/va.w
	bx, by, bz := vb.p.X/vb.w, vb.p.Y/vb.w, vb.p.Z/vb.w

	// Trivial reject when both ends share an outside half-space.
	if (ax < -1 && bx < -1) || (ax > 1 && bx > 1) ||
		(ay < -1 && by < -1) || (ay > 1 && by > 1) ||
		(az < -1 && bz < -1) || (az > 1 && bz > 1) {
		return
	}

	x0, y0 := r.toScreenF(ax, ay)
	x1, y1 := r.toScreenF(bx, by)
	dx, dy := x1-x0, y1-y0
	steps := int(maxf(absf(dx), absf(dy))) + 1
	for s := 0; s <= steps; s++ {
		t := float32(s) / float32(steps)
		x := x0 + t*dx
		y := y0 + t*dy
		z := az + t*(bz-az)
		if z < -1 || z > 1 {
			continue
		}
		r.FB.setPixel(int(x), int(y), z, r.cue(c, z), r.mask, r.Additive)
	}
}

// clipToNear returns the intersection of segment inside->outside with
// the near plane, keeping the inside vertex fixed.
func clipToNear(inside, outside clipVert) clipVert {
	t := (inside.w - nearEps) / (inside.w - outside.w)
	return clipVert{
		p: inside.p.Lerp(outside.p, t),
		w: nearEps,
	}
}

func (r *Renderer) toScreen(x, y float32) (int, int) {
	fx, fy := r.toScreenF(x, y)
	return int(fx), int(fy)
}

func (r *Renderer) toScreenF(x, y float32) (float32, float32) {
	return (x + 1) / 2 * float32(r.FB.W-1), (1 - y) / 2 * float32(r.FB.H-1)
}

func absf(f float32) float32 {
	if f < 0 {
		return -f
	}
	return f
}

func maxf(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}
