package render

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/vmath"
)

func camera() (view, proj vmath.Mat4) {
	view = vmath.LookAt(vmath.V3(0, 0, 5), vmath.V3(0, 0, 0), vmath.V3(0, 1, 0))
	proj = vmath.Perspective(math.Pi/3, 1, 0.1, 100)
	return
}

func TestNewFramebufferValidation(t *testing.T) {
	if _, err := NewFramebuffer(0, 10); err == nil {
		t.Error("zero width accepted")
	}
	fb, err := NewFramebuffer(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fb.Pix) != 4*3*3 || len(fb.Z) != 12 {
		t.Error("buffer sizes wrong")
	}
}

func TestClearAndAt(t *testing.T) {
	fb, _ := NewFramebuffer(8, 8)
	fb.Clear(10, 20, 30)
	if got := fb.At(3, 4); got != (Color{10, 20, 30}) {
		t.Errorf("At = %+v", got)
	}
}

func TestPointProjectsToCenter(t *testing.T) {
	fb, _ := NewFramebuffer(64, 64)
	r := NewRenderer(fb)
	r.SetCamera(camera())
	r.Point(vmath.V3(0, 0, 0), Color{255, 255, 255})
	c := fb.At(31, 31)
	// toScreen rounds; accept the 2x2 neighborhood of the center.
	lit := false
	for y := 30; y <= 32; y++ {
		for x := 30; x <= 32; x++ {
			if fb.At(x, y).R == 255 {
				lit = true
			}
		}
	}
	if !lit {
		t.Errorf("origin did not land near screen center; center=%+v", c)
	}
}

func TestPointBehindCameraCulled(t *testing.T) {
	fb, _ := NewFramebuffer(32, 32)
	r := NewRenderer(fb)
	r.SetCamera(camera())
	r.Point(vmath.V3(0, 0, 50), Color{255, 255, 255}) // behind eye at z=5
	if fb.CountLit(0) != 0 {
		t.Error("point behind camera rasterized")
	}
}

func TestLineDrawsContinuousRun(t *testing.T) {
	fb, _ := NewFramebuffer(64, 64)
	r := NewRenderer(fb)
	r.SetCamera(camera())
	r.Line(vmath.V3(-1, 0, 0), vmath.V3(1, 0, 0), Color{255, 0, 0})
	// A horizontal line through the middle: count lit pixels on the
	// middle rows.
	var lit int
	for y := 29; y <= 33; y++ {
		for x := 0; x < 64; x++ {
			if fb.At(x, y).R > 0 {
				lit++
			}
		}
	}
	if lit < 15 {
		t.Errorf("horizontal line lit only %d pixels", lit)
	}
}

func TestLineClippedAtNearPlane(t *testing.T) {
	fb, _ := NewFramebuffer(64, 64)
	r := NewRenderer(fb)
	r.SetCamera(camera())
	// One endpoint far behind the camera: must not panic and must
	// still draw the visible part.
	r.Line(vmath.V3(0, 0, 0), vmath.V3(0, 0, 100), Color{255, 255, 255})
	if fb.CountLit(0) == 0 {
		t.Error("fully clipped a partially visible line")
	}
	// Both endpoints behind: nothing.
	fb.Clear(0, 0, 0)
	r.Line(vmath.V3(0, 0, 50), vmath.V3(0, 0, 100), Color{255, 255, 255})
	if fb.CountLit(0) != 0 {
		t.Error("line behind camera rasterized")
	}
}

func TestZBufferOcclusion(t *testing.T) {
	fb, _ := NewFramebuffer(32, 32)
	r := NewRenderer(fb)
	r.SetCamera(camera())
	// Near point drawn first, far point after: far must lose.
	r.Point(vmath.V3(0, 0, 1), Color{255, 0, 0})
	r.Point(vmath.V3(0, 0, -1), Color{0, 255, 0})
	var reds, greens int
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			c := fb.At(x, y)
			if c.R == 255 {
				reds++
			}
			if c.G == 255 {
				greens++
			}
		}
	}
	if reds == 0 {
		t.Error("near point missing")
	}
	if greens != 0 {
		t.Error("far point overwrote near point")
	}
}

func TestWritemaskProtectsChannels(t *testing.T) {
	fb, _ := NewFramebuffer(16, 16)
	r := NewRenderer(fb)
	// Identity transform: NDC coordinates map directly.
	r.SetMask(MaskR)
	r.Point(vmath.V3(0, 0, 0), Color{200, 200, 200})
	r.SetMask(MaskB)
	fb.ClearZ()
	r.Point(vmath.V3(0, 0, 0), Color{150, 150, 150})
	c := fb.At(7, 7)
	// toScreenF maps (0,0) to ((0+1)/2*15, (1-0)/2*15) = (7.5, 7.5) -> 7.
	if c.R != 200 || c.B != 150 || c.G != 0 {
		t.Errorf("masked draws produced %+v, want R=200 G=0 B=150", c)
	}
}

func TestAdditiveBlendSaturates(t *testing.T) {
	fb, _ := NewFramebuffer(8, 8)
	r := NewRenderer(fb)
	r.Additive = true
	for i := 0; i < 5; i++ {
		fb.ClearZ()
		r.Point(vmath.V3(0, 0, 0), Color{100, 0, 0})
	}
	c := fb.At(3, 3)
	if c.R != 255 {
		t.Errorf("additive saturation: R = %d, want 255", c.R)
	}
}

func TestStereoAnaglyphChannels(t *testing.T) {
	fb, _ := NewFramebuffer(64, 64)
	rig := StereoRig{IPD: 0.5, Proj: vmath.Perspective(math.Pi/3, 1, 0.1, 100)}
	head := vmath.Translate(0, 0, 5) // looking down -Z at the origin
	line := []vmath.Vec3{vmath.V3(-1, 0, 0), vmath.V3(1, 0, 0)}
	if err := rig.RenderAnaglyph(fb, head, LineScene([][]vmath.Vec3{line})); err != nil {
		t.Fatal(err)
	}
	var redOnly, blueOnly, both int
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			c := fb.At(x, y)
			switch {
			case c.R > 0 && c.B > 0:
				both++
			case c.R > 0:
				redOnly++
			case c.B > 0:
				blueOnly++
			}
			if c.G > 0 {
				t.Fatal("green channel lit in anaglyph")
			}
		}
	}
	// Parallax: with a large IPD the two images are offset, so some
	// pixels are red-only and some blue-only; the overlap keeps both.
	if redOnly == 0 || blueOnly == 0 {
		t.Errorf("no parallax: redOnly=%d blueOnly=%d both=%d", redOnly, blueOnly, both)
	}
	if both == 0 {
		t.Errorf("no overlap: blue pass erased red planes (writemask broken)")
	}
}

func TestSmokeSceneAccumulates(t *testing.T) {
	fb, _ := NewFramebuffer(32, 32)
	r := NewRenderer(fb)
	r.SetCamera(camera())
	// Two identical faint filaments: additive blending doubles the
	// intensity where they overlap.
	line := []vmath.Vec3{vmath.V3(-1, 0, 0), vmath.V3(1, 0, 0)}
	scene := SmokeScene([][]vmath.Vec3{line, line}, 60)
	// Z-test would reject the second identical line; smoke draws with
	// z cleared between filaments in practice — here just clear once
	// and rely on equal depth passing (z <= test).
	scene(r)
	var maxR uint8
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if c := fb.At(x, y); c.R > maxR {
				maxR = c.R
			}
		}
	}
	if maxR < 120 {
		t.Errorf("smoke did not accumulate: max R = %d, want >= 120", maxR)
	}
}

func TestWritePPM(t *testing.T) {
	fb, _ := NewFramebuffer(4, 2)
	fb.Clear(1, 2, 3)
	var buf bytes.Buffer
	if err := fb.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "P6\n4 2\n255\n") {
		t.Errorf("ppm header: %q", s[:20])
	}
	if buf.Len() != len("P6\n4 2\n255\n")+4*2*3 {
		t.Errorf("ppm size = %d", buf.Len())
	}
}

func BenchmarkPolyline200(b *testing.B) {
	fb, _ := NewFramebuffer(1280, 1024) // the VGX's 1024x1280 video
	r := NewRenderer(fb)
	r.SetCamera(camera())
	pts := make([]vmath.Vec3, 200)
	for i := range pts {
		f := float32(i) / 199
		pts[i] = vmath.V3(-1+2*f, 0.5*float32(math.Sin(float64(f)*6)), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Polyline(pts, Color{255, 0, 0})
	}
}

func TestDepthCueAttenuatesFarGeometry(t *testing.T) {
	fb, _ := NewFramebuffer(32, 32)
	r := NewRenderer(fb)
	// Identity transform: coordinates are already NDC, so z maps
	// linearly onto the cue ramp.
	r.EnableDepthCue(0.1)
	r.Point(vmath.V3(-0.5, 0, -0.9), Color{200, 200, 200}) // near
	r.Point(vmath.V3(0.5, 0, 0.9), Color{200, 200, 200})   // far
	var nearR, farR uint8
	for y := 0; y < 32; y++ {
		for x := 0; x < 16; x++ {
			if c := fb.At(x, y); c.R > nearR {
				nearR = c.R
			}
		}
		for x := 16; x < 32; x++ {
			if c := fb.At(x, y); c.R > farR {
				farR = c.R
			}
		}
	}
	if nearR == 0 || farR == 0 {
		t.Fatalf("points missing: near=%d far=%d", nearR, farR)
	}
	if farR >= nearR {
		t.Errorf("far point (%d) not dimmer than near (%d)", farR, nearR)
	}
	// Disabling restores full intensity.
	r.DisableDepthCue()
	fb.Clear(0, 0, 0)
	r.Point(vmath.V3(0.5, 0, 0.9), Color{200, 200, 200})
	var uncued uint8
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if c := fb.At(x, y); c.R > uncued {
				uncued = c.R
			}
		}
	}
	if uncued != 200 {
		t.Errorf("uncued intensity = %d, want 200", uncued)
	}
}

func TestEnableDepthCueClampsFloor(t *testing.T) {
	fb, _ := NewFramebuffer(4, 4)
	r := NewRenderer(fb)
	r.EnableDepthCue(-1)
	r.EnableDepthCue(2) // must not panic or produce >1 floors
	c := r.cue(Color{100, 100, 100}, 1)
	if c.R > 100 {
		t.Errorf("cue brightened: %d", c.R)
	}
}
