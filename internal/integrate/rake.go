package integrate

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/vmath"
)

// ToolKind selects which visualization a rake emits (§2.1).
type ToolKind uint8

const (
	// ToolStreamline shows integral curves of the instantaneous field.
	ToolStreamline ToolKind = iota
	// ToolParticlePath shows the path of single particles through time.
	ToolParticlePath
	// ToolStreakline shows smoke injected continuously at the seeds.
	ToolStreakline
)

func (k ToolKind) String() string {
	switch k {
	case ToolStreamline:
		return "streamline"
	case ToolParticlePath:
		return "particle-path"
	case ToolStreakline:
		return "streakline"
	default:
		return fmt.Sprintf("ToolKind(%d)", uint8(k))
	}
}

// GrabPoint identifies where a user grabbed a rake: "grabbed at one of
// three points: center for rigid translation of the rake, or at either
// end for movement of that end" (§2.1).
type GrabPoint uint8

const (
	// GrabNone means the rake is free.
	GrabNone GrabPoint = iota
	// GrabCenter translates the whole rake rigidly.
	GrabCenter
	// GrabEnd0 moves endpoint P0, pivoting about P1.
	GrabEnd0
	// GrabEnd1 moves endpoint P1, pivoting about P0.
	GrabEnd1
)

func (p GrabPoint) String() string {
	switch p {
	case GrabNone:
		return "none"
	case GrabCenter:
		return "center"
	case GrabEnd0:
		return "end0"
	case GrabEnd1:
		return "end1"
	default:
		return fmt.Sprintf("GrabPoint(%d)", uint8(p))
	}
}

// Rake is a line of seed points between two physical-space endpoints.
// Several rakes of different tool types may be active simultaneously;
// the environment tracks who (which user) holds each one.
type Rake struct {
	ID       int32
	P0, P1   vmath.Vec3 // physical-space endpoints
	NumSeeds int
	Tool     ToolKind
}

// NewRake builds a rake with validation.
func NewRake(id int32, p0, p1 vmath.Vec3, numSeeds int, tool ToolKind) (*Rake, error) {
	if numSeeds < 1 {
		return nil, fmt.Errorf("integrate: rake needs at least one seed, got %d", numSeeds)
	}
	return &Rake{ID: id, P0: p0, P1: p1, NumSeeds: numSeeds, Tool: tool}, nil
}

// Seeds returns the physical-space seed points, evenly spaced from P0
// to P1 inclusive. A single-seed rake seeds at the midpoint.
func (r *Rake) Seeds() []vmath.Vec3 {
	out := make([]vmath.Vec3, r.NumSeeds)
	if r.NumSeeds == 1 {
		out[0] = r.P0.Lerp(r.P1, 0.5)
		return out
	}
	for i := range out {
		out[i] = r.P0.Lerp(r.P1, float32(i)/float32(r.NumSeeds-1))
	}
	return out
}

// Center returns the rake midpoint.
func (r *Rake) Center() vmath.Vec3 { return r.P0.Lerp(r.P1, 0.5) }

// NearestGrab returns which grab point is closest to hand position p
// and its distance, for gesture-driven grabbing. Ends win ties so the
// rake can always be reoriented.
func (r *Rake) NearestGrab(p vmath.Vec3) (GrabPoint, float32) {
	d0 := p.Dist(r.P0)
	d1 := p.Dist(r.P1)
	dc := p.Dist(r.Center())
	switch {
	case d0 <= d1 && d0 <= dc:
		return GrabEnd0, d0
	case d1 <= d0 && d1 <= dc:
		return GrabEnd1, d1
	default:
		return GrabCenter, dc
	}
}

// MoveGrab moves the rake according to where it is held: center moves
// both ends rigidly, an end moves only that end.
func (r *Rake) MoveGrab(gp GrabPoint, to vmath.Vec3) error {
	switch gp {
	case GrabCenter:
		delta := to.Sub(r.Center())
		r.P0 = r.P0.Add(delta)
		r.P1 = r.P1.Add(delta)
	case GrabEnd0:
		r.P0 = to
	case GrabEnd1:
		r.P1 = to
	case GrabNone:
		return fmt.Errorf("integrate: MoveGrab with GrabNone")
	default:
		return fmt.Errorf("integrate: unknown grab point %v", gp)
	}
	return nil
}

// SeedsGrid converts the rake's physical seeds to grid coordinates,
// dropping seeds that fall outside the grid. Conversion walks from the
// previous seed's location so coherent rakes locate quickly.
func (r *Rake) SeedsGrid(g *grid.Grid) []vmath.Vec3 {
	phys := r.Seeds()
	out := make([]vmath.Vec3, 0, len(phys))
	guess := vmath.V3(float32(g.NI-1)/2, float32(g.NJ-1)/2, float32(g.NK-1)/2)
	for _, p := range phys {
		gc, err := g.PhysToGrid(p, guess)
		if err != nil {
			continue
		}
		out = append(out, gc)
		guess = gc
	}
	return out
}
