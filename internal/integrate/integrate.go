// Package integrate implements the windtunnel's visualization tools:
// streamlines, particle paths, and streaklines (§2.1 of the paper),
// plus the seed-point rakes that control them.
//
// All integration happens in grid coordinates (the paper's key
// optimization): a Sampler returns velocity in units of grid cells per
// flow-time unit, so each step is pure array arithmetic. Results are
// converted back to physical coordinates by direct trilinear lookup of
// node positions.
package integrate

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/vmath"
)

// Sampler supplies grid-coordinate velocity at a grid coordinate and a
// continuous time index (in timesteps).
type Sampler interface {
	SampleVelocity(gc vmath.Vec3, t float32) vmath.Vec3
	// Grid returns the grid defining the computational domain.
	Grid() *grid.Grid
}

// SteadySampler samples a single timestep; time is ignored. Streamline
// computation uses it: "integrate the particle position without
// incrementing the current timestep".
type SteadySampler struct {
	F *field.Field
	G *grid.Grid
}

// SampleVelocity implements Sampler.
func (s SteadySampler) SampleVelocity(gc vmath.Vec3, _ float32) vmath.Vec3 {
	return s.F.Sample(s.G, gc)
}

// Grid implements Sampler.
func (s SteadySampler) Grid() *grid.Grid { return s.G }

// UnsteadySampler samples an unsteady dataset with linear time
// interpolation. Particle paths use it: "incrementing the timestep
// with each integration".
type UnsteadySampler struct {
	U *field.Unsteady
}

// SampleVelocity implements Sampler.
func (s UnsteadySampler) SampleVelocity(gc vmath.Vec3, t float32) vmath.Vec3 {
	return s.U.SampleAtTime(gc, t)
}

// Grid implements Sampler.
func (s UnsteadySampler) Grid() *grid.Grid { return s.U.Grid }

// Method selects the integration scheme.
type Method uint8

const (
	// Euler is first-order forward Euler: one field access per step.
	Euler Method = iota
	// RK2 is the paper's scheme (§5.3): second-order Runge-Kutta
	// (midpoint), two field accesses per step.
	RK2
	// RK4 is classical fourth-order Runge-Kutta: four field accesses.
	RK4
)

func (m Method) String() string {
	switch m {
	case Euler:
		return "euler"
	case RK2:
		return "rk2"
	case RK4:
		return "rk4"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// Step advances one particle at grid coordinate gc by time step h
// (flow-time units expressed in timestep counts) using the method. The
// returned position is NOT bounds checked; callers decide termination.
func Step(m Method, s Sampler, gc vmath.Vec3, t, h float32) vmath.Vec3 {
	switch m {
	case Euler:
		return gc.Add(s.SampleVelocity(gc, t).Scale(h))
	case RK2:
		k1 := s.SampleVelocity(gc, t)
		mid := gc.Add(k1.Scale(h / 2))
		k2 := s.SampleVelocity(mid, t+h/2)
		return gc.Add(k2.Scale(h))
	case RK4:
		k1 := s.SampleVelocity(gc, t)
		k2 := s.SampleVelocity(gc.Add(k1.Scale(h/2)), t+h/2)
		k3 := s.SampleVelocity(gc.Add(k2.Scale(h/2)), t+h/2)
		k4 := s.SampleVelocity(gc.Add(k3.Scale(h)), t+h)
		sum := k1.Add(k2.Scale(2)).Add(k3.Scale(2)).Add(k4)
		return gc.Add(sum.Scale(h / 6))
	default:
		panic(fmt.Sprintf("integrate: unknown method %d", m))
	}
}

// Options configures path computation.
type Options struct {
	Method   Method
	StepSize float32 // integration step in timestep units; sign = direction
	MaxSteps int     // maximum points after the seed
	// MinSpeed terminates integration when grid-coordinate speed drops
	// below it (stagnation); zero uses a small default.
	MinSpeed float32
}

// DefaultOptions matches the paper's configuration: RK2, 200-point
// paths.
func DefaultOptions() Options {
	return Options{Method: RK2, StepSize: 0.25, MaxSteps: 200, MinSpeed: 1e-6}
}

// EffectiveMinSpeed returns MinSpeed or its small default.
func (o Options) EffectiveMinSpeed() float32 {
	if o.MinSpeed > 0 {
		return o.MinSpeed
	}
	return 1e-6
}

// Validate reports configuration errors.
func (o Options) Validate() error {
	if o.StepSize == 0 {
		return fmt.Errorf("integrate: zero step size")
	}
	if o.MaxSteps < 1 {
		return fmt.Errorf("integrate: MaxSteps %d < 1", o.MaxSteps)
	}
	return nil
}

// Streamline integrates the instantaneous field at fixed time t from
// the seed (grid coordinates), returning the path in grid coordinates.
// The path includes the seed and stops at the domain boundary, at
// stagnation, or after MaxSteps points.
func Streamline(s Sampler, seed vmath.Vec3, t float32, o Options) []vmath.Vec3 {
	g := s.Grid()
	path := make([]vmath.Vec3, 0, o.MaxSteps+1)
	gc := seed
	if !g.InBounds(gc) {
		return path
	}
	path = append(path, gc)
	for n := 0; n < o.MaxSteps; n++ {
		if s.SampleVelocity(gc, t).Len() < o.EffectiveMinSpeed() {
			break
		}
		next := Step(o.Method, s, gc, t, o.StepSize)
		if !g.InBounds(next) || !next.IsFinite() {
			break
		}
		path = append(path, next)
		gc = next
	}
	return path
}

// ParticlePath integrates through time from the seed starting at time
// t0, incrementing time by StepSize each step — a "time exposure
// photograph" of one particle. The path stops at the domain boundary,
// at the dataset's time bounds, or after MaxSteps points.
func ParticlePath(s Sampler, seed vmath.Vec3, t0 float32, maxTime float32, o Options) []vmath.Vec3 {
	g := s.Grid()
	path := make([]vmath.Vec3, 0, o.MaxSteps+1)
	gc := seed
	if !g.InBounds(gc) {
		return path
	}
	path = append(path, gc)
	t := t0
	for n := 0; n < o.MaxSteps; n++ {
		tNext := t + o.StepSize
		if o.StepSize > 0 && tNext > maxTime {
			break
		}
		if o.StepSize < 0 && tNext < 0 {
			break
		}
		next := Step(o.Method, s, gc, t, o.StepSize)
		if !g.InBounds(next) || !next.IsFinite() {
			break
		}
		path = append(path, next)
		gc = next
		t = tNext
	}
	return path
}

// ToPhysical converts a grid-coordinate path to physical coordinates
// using direct trilinear lookup — the cheap reverse conversion the
// paper relies on.
func ToPhysical(g *grid.Grid, path []vmath.Vec3) []vmath.Vec3 {
	return ToPhysicalInto(g, nil, path)
}

// ToPhysicalInto is ToPhysical appending into dst's capacity, so
// per-frame callers can recycle the previous frame's path buffers
// instead of reallocating TotalPoints vectors every round.
func ToPhysicalInto(g *grid.Grid, dst []vmath.Vec3, path []vmath.Vec3) []vmath.Vec3 {
	if cap(dst) >= len(path) {
		dst = dst[:len(path)]
	} else {
		dst = make([]vmath.Vec3, len(path))
	}
	for i, gc := range path {
		dst[i] = g.PhysAt(gc)
	}
	return dst
}
