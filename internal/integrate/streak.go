package integrate

import (
	"repro/internal/vmath"
)

// Streak is a streakline tracer: "the locus of infinitesimal fluid
// elements that have previously passed through a given fixed point in
// space". Each frame, every live particle is moved one step with the
// current timestep's data and fresh particles are injected at the seed
// points — smoke injection.
//
// Streak is stateful and not safe for concurrent use; the server owns
// one per streakline rake and advances it once per frame.
type Streak struct {
	// Particles holds live particle positions in grid coordinates,
	// oldest first within each seed's sub-slice ordering.
	Particles []StreakParticle
	// MaxParticles bounds memory; oldest particles are dropped first.
	MaxParticles int
}

// StreakParticle is one smoke particle.
type StreakParticle struct {
	Pos  vmath.Vec3 // grid coordinates
	Seed int32      // index of the seed that injected it (for "smoke" polylines)
	Age  int32      // frames since injection
}

// NewStreak returns an empty tracer bounded to maxParticles.
func NewStreak(maxParticles int) *Streak {
	if maxParticles < 1 {
		maxParticles = 1
	}
	return &Streak{MaxParticles: maxParticles}
}

// Advance moves all particles one step of size h at time t using the
// sampler, drops those that exit the domain, then injects one new
// particle at each seed (grid coordinates). This is the order the
// paper describes: "All of the particles are 'moved' by integrating
// each one once using the data in the current time step", including
// "those recently added at the seed points".
func (s *Streak) Advance(sampler Sampler, seeds []vmath.Vec3, t, h float32, m Method) {
	g := sampler.Grid()
	// Inject first so new particles also take this frame's step.
	for i, seed := range seeds {
		if g.InBounds(seed) {
			s.Particles = append(s.Particles, StreakParticle{Pos: seed, Seed: int32(i)})
		}
	}
	live := s.Particles[:0]
	for _, p := range s.Particles {
		next := Step(m, sampler, p.Pos, t, h)
		if !g.InBounds(next) || !next.IsFinite() {
			continue
		}
		p.Pos = next
		p.Age++
		live = append(live, p)
	}
	s.Particles = live
	if len(s.Particles) > s.MaxParticles {
		// Drop the oldest particles (largest Age). Particles are
		// appended in injection order, so the oldest sit at the front.
		s.Particles = s.Particles[len(s.Particles)-s.MaxParticles:]
	}
}

// Positions returns the current particle positions in grid
// coordinates, in storage order.
func (s *Streak) Positions() []vmath.Vec3 {
	out := make([]vmath.Vec3, len(s.Particles))
	for i, p := range s.Particles {
		out[i] = p.Pos
	}
	return out
}

// PolylineBySeed groups particle positions by originating seed,
// ordered oldest to newest, for rendering as connected "smoke"
// filaments rather than individual points.
func (s *Streak) PolylineBySeed(numSeeds int) [][]vmath.Vec3 {
	lines := make([][]vmath.Vec3, numSeeds)
	// Storage order is injection order, so walking backward yields
	// newest-to-oldest; build oldest-first by prepending via reverse
	// fill.
	for _, p := range s.Particles {
		if int(p.Seed) < 0 || int(p.Seed) >= numSeeds {
			continue
		}
		lines[p.Seed] = append(lines[p.Seed], p.Pos)
	}
	return lines
}

// Reset drops all particles, used when the user moves a rake so stale
// smoke does not linger.
func (s *Streak) Reset() { s.Particles = s.Particles[:0] }
