package integrate

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/flow"
	"repro/internal/grid"
	"repro/internal/vmath"
)

// identityGrid returns a Cartesian grid whose physical coordinates
// equal its grid coordinates, so analytic flows can be checked
// directly in grid space.
func identityGrid(t testing.TB, n int) *grid.Grid {
	t.Helper()
	g, err := grid.NewCartesian(n, n, n, vmath.AABB{
		Min: vmath.V3(0, 0, 0),
		Max: vmath.V3(float32(n-1), float32(n-1), float32(n-1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// constSampler returns a fixed velocity everywhere.
type constSampler struct {
	g *grid.Grid
	v vmath.Vec3
}

func (c constSampler) SampleVelocity(vmath.Vec3, float32) vmath.Vec3 { return c.v }
func (c constSampler) Grid() *grid.Grid                              { return c.g }

// circularSampler rotates around the center of the grid in the XY
// plane with unit angular velocity: v = omega x (p - center).
type circularSampler struct {
	g      *grid.Grid
	center vmath.Vec3
}

func (c circularSampler) SampleVelocity(gc vmath.Vec3, _ float32) vmath.Vec3 {
	d := gc.Sub(c.center)
	return vmath.V3(-d.Y, d.X, 0)
}
func (c circularSampler) Grid() *grid.Grid { return c.g }

func TestStepEulerConstField(t *testing.T) {
	g := identityGrid(t, 8)
	s := constSampler{g, vmath.V3(1, 2, 0)}
	got := Step(Euler, s, vmath.V3(1, 1, 1), 0, 0.5)
	if !got.ApproxEqual(vmath.V3(1.5, 2, 1), 1e-6) {
		t.Errorf("Euler step = %v", got)
	}
}

func TestStepOrdersAgreeOnConstField(t *testing.T) {
	// On a constant field every scheme is exact and identical.
	g := identityGrid(t, 8)
	s := constSampler{g, vmath.V3(0.3, -0.2, 0.1)}
	start := vmath.V3(3, 3, 3)
	e := Step(Euler, s, start, 0, 1)
	r2 := Step(RK2, s, start, 0, 1)
	r4 := Step(RK4, s, start, 0, 1)
	if !e.ApproxEqual(r2, 1e-6) || !e.ApproxEqual(r4, 1e-6) {
		t.Errorf("schemes disagree on constant field: %v %v %v", e, r2, r4)
	}
}

func TestRK2MoreAccurateThanEulerOnRotation(t *testing.T) {
	g := identityGrid(t, 33)
	center := vmath.V3(16, 16, 16)
	s := circularSampler{g, center}
	start := vmath.V3(20, 16, 16) // radius 4
	h := float32(0.1)
	steps := int(2 * math.Pi / float64(h)) // one revolution

	radiusErr := func(m Method) float32 {
		gc := start
		for i := 0; i < steps; i++ {
			gc = Step(m, s, gc, 0, h)
		}
		return absf(gc.Sub(center).Len() - 4)
	}
	eErr, r2Err, r4Err := radiusErr(Euler), radiusErr(RK2), radiusErr(RK4)
	if r2Err >= eErr {
		t.Errorf("RK2 error %v not better than Euler %v", r2Err, eErr)
	}
	if r4Err >= r2Err {
		t.Errorf("RK4 error %v not better than RK2 %v", r4Err, r2Err)
	}
}

func TestStreamlineConstFieldStraightLine(t *testing.T) {
	g := identityGrid(t, 16)
	s := constSampler{g, vmath.V3(1, 0, 0)}
	o := Options{Method: RK2, StepSize: 1, MaxSteps: 100}
	path := Streamline(s, vmath.V3(2, 8, 8), 0, o)
	// Starts at x=2, exits the domain at x=15: points at x=2..15.
	if len(path) != 14 {
		t.Fatalf("path length = %d, want 14", len(path))
	}
	for i, p := range path {
		want := vmath.V3(2+float32(i), 8, 8)
		if !p.ApproxEqual(want, 1e-5) {
			t.Fatalf("point %d = %v, want %v", i, p, want)
		}
	}
}

func TestStreamlineMaxStepsRespected(t *testing.T) {
	g := identityGrid(t, 64)
	s := circularSampler{g, vmath.V3(32, 32, 32)}
	o := Options{Method: RK2, StepSize: 0.05, MaxSteps: 200}
	path := Streamline(s, vmath.V3(40, 32, 32), 0, o)
	if len(path) != 201 { // seed + MaxSteps
		t.Errorf("path length = %d, want 201", len(path))
	}
}

func TestStreamlineStagnationStops(t *testing.T) {
	g := identityGrid(t, 8)
	s := constSampler{g, vmath.Vec3{}}
	o := DefaultOptions()
	path := Streamline(s, vmath.V3(4, 4, 4), 0, o)
	if len(path) != 1 {
		t.Errorf("stagnant path length = %d, want 1 (seed only)", len(path))
	}
}

func TestStreamlineSeedOutOfBounds(t *testing.T) {
	g := identityGrid(t, 8)
	s := constSampler{g, vmath.V3(1, 0, 0)}
	path := Streamline(s, vmath.V3(-5, 0, 0), 0, DefaultOptions())
	if len(path) != 0 {
		t.Errorf("out-of-bounds seed produced %d points", len(path))
	}
}

func TestStreamlineBackward(t *testing.T) {
	g := identityGrid(t, 16)
	s := constSampler{g, vmath.V3(1, 0, 0)}
	o := Options{Method: RK2, StepSize: -1, MaxSteps: 100}
	path := Streamline(s, vmath.V3(10, 8, 8), 0, o)
	if len(path) < 2 {
		t.Fatalf("backward path too short: %d", len(path))
	}
	if path[len(path)-1].X >= path[0].X {
		t.Errorf("backward integration moved forward: %v -> %v", path[0], path[len(path)-1])
	}
}

// timeRampSampler has velocity (t, 0, 0): particle paths accelerate,
// streamlines at fixed t are straight with speed t.
type timeRampSampler struct{ g *grid.Grid }

func (r timeRampSampler) SampleVelocity(_ vmath.Vec3, t float32) vmath.Vec3 {
	return vmath.V3(t, 0, 0)
}
func (r timeRampSampler) Grid() *grid.Grid { return r.g }

func TestParticlePathUsesTime(t *testing.T) {
	g := identityGrid(t, 64)
	s := timeRampSampler{g}
	o := Options{Method: RK2, StepSize: 1, MaxSteps: 5}
	path := ParticlePath(s, vmath.V3(1, 32, 32), 0, 100, o)
	// x(t) = 1 + t^2/2 exactly; RK2 midpoint is exact for linear-in-t.
	want := []float32{1, 1.5, 3, 5.5, 9, 13.5}
	if len(path) != len(want) {
		t.Fatalf("path length = %d, want %d", len(path), len(want))
	}
	for i, p := range path {
		if absf(p.X-want[i]) > 1e-4 {
			t.Errorf("point %d x = %v, want %v", i, p.X, want[i])
		}
	}
}

func TestParticlePathStopsAtMaxTime(t *testing.T) {
	g := identityGrid(t, 16)
	s := constSampler{g, vmath.V3(0.1, 0, 0)}
	o := Options{Method: Euler, StepSize: 1, MaxSteps: 1000}
	path := ParticlePath(s, vmath.V3(2, 8, 8), 0, 5, o)
	if len(path) != 6 { // t = 0..5
		t.Errorf("path length = %d, want 6", len(path))
	}
}

func TestParticlePathDiffersFromStreamlineInUnsteadyFlow(t *testing.T) {
	// Core physics: in an unsteady flow, particle paths and
	// streamlines from the same seed diverge.
	g := identityGrid(t, 32)
	s := timeRampSampler{g}
	seed := vmath.V3(2, 16, 16)
	o := Options{Method: RK2, StepSize: 1, MaxSteps: 4}
	stream := Streamline(s, seed, 1, o)  // speed frozen at t=1
	pp := ParticlePath(s, seed, 1, 9, o) // accelerating
	if len(stream) < 3 || len(pp) < 3 {
		t.Fatal("paths too short to compare")
	}
	if stream[2].ApproxEqual(pp[2], 1e-3) {
		t.Error("streamline and particle path agree in unsteady flow; should differ")
	}
}

func TestToPhysicalIdentityGrid(t *testing.T) {
	g := identityGrid(t, 8)
	path := []vmath.Vec3{vmath.V3(1, 2, 3), vmath.V3(4.5, 5.5, 6.5)}
	phys := ToPhysical(g, path)
	for i := range path {
		if !phys[i].ApproxEqual(path[i], 1e-5) {
			t.Errorf("point %d: %v -> %v", i, path[i], phys[i])
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
	if err := (Options{StepSize: 0, MaxSteps: 10}).Validate(); err == nil {
		t.Error("zero step accepted")
	}
	if err := (Options{StepSize: 1, MaxSteps: 0}).Validate(); err == nil {
		t.Error("zero max steps accepted")
	}
}

func TestStreakInjectionAndAdvection(t *testing.T) {
	g := identityGrid(t, 32)
	s := constSampler{g, vmath.V3(1, 0, 0)}
	st := NewStreak(1000)
	seeds := []vmath.Vec3{vmath.V3(2, 16, 16), vmath.V3(2, 20, 16)}
	for frame := 0; frame < 5; frame++ {
		st.Advance(s, seeds, float32(frame), 1, RK2)
	}
	if len(st.Particles) != 10 {
		t.Fatalf("particles = %d, want 10", len(st.Particles))
	}
	// The oldest particles have advected 5 cells, the newest 1.
	var minX, maxX float32 = 1e9, -1e9
	for _, p := range st.Particles {
		if p.Pos.X < minX {
			minX = p.Pos.X
		}
		if p.Pos.X > maxX {
			maxX = p.Pos.X
		}
	}
	if absf(minX-3) > 1e-4 || absf(maxX-7) > 1e-4 {
		t.Errorf("streak x range [%v, %v], want [3, 7]", minX, maxX)
	}
}

func TestStreakDropsExitingParticles(t *testing.T) {
	g := identityGrid(t, 8)
	s := constSampler{g, vmath.V3(3, 0, 0)}
	st := NewStreak(1000)
	seeds := []vmath.Vec3{vmath.V3(1, 4, 4)}
	for frame := 0; frame < 20; frame++ {
		st.Advance(s, seeds, float32(frame), 1, Euler)
	}
	// Domain is 7 cells wide; at 3 cells/frame a particle survives
	// only 2 frames, so at most 2 live particles.
	if len(st.Particles) > 2 {
		t.Errorf("%d particles alive, want <= 2", len(st.Particles))
	}
}

func TestStreakMaxParticlesBound(t *testing.T) {
	g := identityGrid(t, 64)
	s := constSampler{g, vmath.V3(0.1, 0, 0)}
	st := NewStreak(7)
	seeds := []vmath.Vec3{vmath.V3(2, 32, 32)}
	for frame := 0; frame < 50; frame++ {
		st.Advance(s, seeds, float32(frame), 1, Euler)
	}
	if len(st.Particles) != 7 {
		t.Errorf("particles = %d, want capped at 7", len(st.Particles))
	}
	// Survivors must be the newest (smallest ages).
	for _, p := range st.Particles {
		if p.Age > 7 {
			t.Errorf("old particle survived cap: age %d", p.Age)
		}
	}
}

func TestStreakPolylineBySeed(t *testing.T) {
	g := identityGrid(t, 32)
	s := constSampler{g, vmath.V3(1, 0, 0)}
	st := NewStreak(1000)
	seeds := []vmath.Vec3{vmath.V3(2, 10, 16), vmath.V3(2, 20, 16)}
	for frame := 0; frame < 4; frame++ {
		st.Advance(s, seeds, float32(frame), 1, RK2)
	}
	lines := st.PolylineBySeed(2)
	if len(lines[0]) != 4 || len(lines[1]) != 4 {
		t.Fatalf("line lengths %d/%d, want 4/4", len(lines[0]), len(lines[1]))
	}
	for _, p := range lines[0] {
		if absf(p.Y-10) > 1e-5 {
			t.Errorf("seed-0 particle at y=%v", p.Y)
		}
	}
}

func TestStreakReset(t *testing.T) {
	g := identityGrid(t, 8)
	st := NewStreak(100)
	st.Advance(constSampler{g, vmath.V3(0.1, 0, 0)}, []vmath.Vec3{vmath.V3(4, 4, 4)}, 0, 1, Euler)
	if len(st.Particles) == 0 {
		t.Fatal("no particles after advance")
	}
	st.Reset()
	if len(st.Particles) != 0 {
		t.Error("particles remain after Reset")
	}
}

func TestRakeSeeds(t *testing.T) {
	r, err := NewRake(1, vmath.V3(0, 0, 0), vmath.V3(9, 0, 0), 10, ToolStreamline)
	if err != nil {
		t.Fatal(err)
	}
	seeds := r.Seeds()
	if len(seeds) != 10 {
		t.Fatalf("seeds = %d", len(seeds))
	}
	if seeds[0] != r.P0 || seeds[9] != r.P1 {
		t.Error("seed endpoints wrong")
	}
	if !seeds[3].ApproxEqual(vmath.V3(3, 0, 0), 1e-5) {
		t.Errorf("seed 3 = %v", seeds[3])
	}
}

func TestRakeSingleSeed(t *testing.T) {
	r, _ := NewRake(1, vmath.V3(0, 0, 0), vmath.V3(2, 0, 0), 1, ToolStreakline)
	seeds := r.Seeds()
	if len(seeds) != 1 || !seeds[0].ApproxEqual(vmath.V3(1, 0, 0), 1e-5) {
		t.Errorf("single seed = %v", seeds)
	}
}

func TestRakeRejectsZeroSeeds(t *testing.T) {
	if _, err := NewRake(1, vmath.Vec3{}, vmath.Vec3{}, 0, ToolStreamline); err == nil {
		t.Error("zero-seed rake accepted")
	}
}

func TestRakeMoveGrab(t *testing.T) {
	r, _ := NewRake(1, vmath.V3(0, 0, 0), vmath.V3(2, 0, 0), 5, ToolStreamline)
	// Grab center, move to (10, 10, 10): both ends translate.
	if err := r.MoveGrab(GrabCenter, vmath.V3(10, 10, 10)); err != nil {
		t.Fatal(err)
	}
	if !r.P0.ApproxEqual(vmath.V3(9, 10, 10), 1e-5) || !r.P1.ApproxEqual(vmath.V3(11, 10, 10), 1e-5) {
		t.Errorf("after center move: %v %v", r.P0, r.P1)
	}
	// Grab end 0: only P0 moves.
	if err := r.MoveGrab(GrabEnd0, vmath.V3(0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if r.P0 != vmath.V3(0, 0, 0) || !r.P1.ApproxEqual(vmath.V3(11, 10, 10), 1e-5) {
		t.Errorf("after end0 move: %v %v", r.P0, r.P1)
	}
	if err := r.MoveGrab(GrabNone, vmath.Vec3{}); err == nil {
		t.Error("MoveGrab(GrabNone) accepted")
	}
}

func TestRakeNearestGrab(t *testing.T) {
	r, _ := NewRake(1, vmath.V3(0, 0, 0), vmath.V3(10, 0, 0), 5, ToolStreamline)
	if gp, _ := r.NearestGrab(vmath.V3(0.5, 1, 0)); gp != GrabEnd0 {
		t.Errorf("near P0 grab = %v", gp)
	}
	if gp, _ := r.NearestGrab(vmath.V3(9.5, 1, 0)); gp != GrabEnd1 {
		t.Errorf("near P1 grab = %v", gp)
	}
	if gp, _ := r.NearestGrab(vmath.V3(5, 2, 0)); gp != GrabCenter {
		t.Errorf("near center grab = %v", gp)
	}
}

func TestRakeSeedsGridDropsOutside(t *testing.T) {
	g := identityGrid(t, 8)
	// Rake extends past the grid: seeds beyond x=7 are dropped.
	r, _ := NewRake(1, vmath.V3(3, 3, 3), vmath.V3(20, 3, 3), 6, ToolStreamline)
	seeds := r.SeedsGrid(g)
	if len(seeds) == 0 || len(seeds) >= 6 {
		t.Errorf("grid seeds = %d, want some dropped", len(seeds))
	}
	for _, s := range seeds {
		if !g.InBounds(s) {
			t.Errorf("seed %v out of bounds", s)
		}
	}
}

func TestStreamlineOnRealFlow(t *testing.T) {
	// End-to-end: tapered cylinder flow sampled onto its grid,
	// converted to grid coords, streamlines stay finite and inside.
	spec := grid.TaperedCylinderSpec{
		NI: 16, NJ: 24, NK: 8, R0: 1, R1: 0.5, Router: 12, Span: 16, Stretch: 2,
	}
	g, err := grid.NewTaperedCylinder(spec)
	if err != nil {
		t.Fatal(err)
	}
	phys := flow.Sample(flow.DefaultTaperedCylinder(), g, 0)
	fld, err := field.ToGridCoords(phys, g)
	if err != nil {
		t.Fatal(err)
	}
	s := SteadySampler{F: fld, G: g}
	o := Options{Method: RK2, StepSize: 0.1, MaxSteps: 150}
	var total int
	for j := 0; j < 24; j += 4 {
		path := Streamline(s, vmath.V3(8, float32(j), 4), 0, o)
		total += len(path)
		for _, p := range path {
			if !g.InBounds(p) || !p.IsFinite() {
				t.Fatalf("bad path point %v", p)
			}
		}
	}
	if total < 30 {
		t.Errorf("streamlines suspiciously short: %d total points", total)
	}
}

func absf(f float32) float32 {
	if f < 0 {
		return -f
	}
	return f
}

func BenchmarkStreamline200Points(b *testing.B) {
	g, _ := grid.NewCartesian(64, 64, 32, vmath.AABB{
		Min: vmath.V3(0, 0, 0), Max: vmath.V3(63, 63, 31),
	})
	fld := field.NewField(64, 64, 32, field.GridCoords)
	for i := range fld.U {
		fld.U[i] = 0.05
		fld.V[i] = 0.02
	}
	s := SteadySampler{F: fld, G: g}
	o := Options{Method: RK2, StepSize: 1, MaxSteps: 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Streamline(s, vmath.V3(1, 30, 15), 0, o)
	}
}

func TestStreakParticleCountBoundProperty(t *testing.T) {
	// Property: after F frames with S in-bounds seeds and cap C, the
	// particle count is min(C, F*S) when no particle exits the domain.
	g := identityGrid(t, 64)
	sampler := constSampler{g, vmath.V3(0.01, 0, 0)} // slow: nothing exits
	f := func(nSeeds, frames, cap8 uint8) bool {
		s := int(nSeeds%5) + 1
		fr := int(frames%20) + 1
		c := int(cap8%30) + 1
		seeds := make([]vmath.Vec3, s)
		for i := range seeds {
			seeds[i] = vmath.V3(2, float32(4+i), 32)
		}
		st := NewStreak(c)
		for n := 0; n < fr; n++ {
			st.Advance(sampler, seeds, 0, 1, Euler)
		}
		want := fr * s
		if want > c {
			want = c
		}
		return len(st.Particles) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
