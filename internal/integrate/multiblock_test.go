package integrate

import (
	"testing"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/vmath"
)

// twoBlocks builds two abutting/overlapping Cartesian blocks along X:
// block 0 spans x in [0, 10], block 1 spans x in [9.5, 20] (a half-cell
// overlap, as real multiblock meshes have). Both carry uniform +X
// velocity in grid coordinates.
func twoBlocks(t testing.TB) (*grid.Multiblock, *MultiField) {
	t.Helper()
	b0, err := grid.NewCartesian(11, 9, 9, vmath.AABB{
		Min: vmath.V3(0, 0, 0), Max: vmath.V3(10, 8, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := grid.NewCartesian(11, 9, 9, vmath.AABB{
		Min: vmath.V3(9.5, 0, 0), Max: vmath.V3(20, 8, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := grid.NewMultiblock(b0, b1)
	if err != nil {
		t.Fatal(err)
	}
	mkField := func(cellsPerUnit float32) *field.Field {
		f := field.NewField(11, 9, 9, field.GridCoords)
		for i := range f.U {
			f.U[i] = cellsPerUnit // +X drift in grid cells/step
		}
		return f
	}
	// Block 0 has spacing 1/index; block 1 spacing 1.05/index — the
	// same physical velocity needs slightly different grid velocity,
	// but for this test uniform per-block values are fine.
	mf, err := NewMultiField(m, []*field.Field{mkField(0.5), mkField(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	return m, mf
}

func TestNewMultiblockValidation(t *testing.T) {
	if _, err := grid.NewMultiblock(); err == nil {
		t.Error("empty multiblock accepted")
	}
}

func TestNewMultiFieldValidation(t *testing.T) {
	m, _ := twoBlocks(t)
	if _, err := NewMultiField(m, nil); err == nil {
		t.Error("wrong field count accepted")
	}
	bad := []*field.Field{
		field.NewField(11, 9, 9, field.GridCoords),
		field.NewField(4, 4, 4, field.GridCoords),
	}
	if _, err := NewMultiField(m, bad); err == nil {
		t.Error("mismatched field dims accepted")
	}
	phys := []*field.Field{
		field.NewField(11, 9, 9, field.Physical),
		field.NewField(11, 9, 9, field.Physical),
	}
	if _, err := NewMultiField(m, phys); err == nil {
		t.Error("physical-coordinate fields accepted")
	}
}

func TestMultiblockLocate(t *testing.T) {
	m, _ := twoBlocks(t)
	// Point clearly in block 0.
	bc, err := m.Locate(vmath.V3(3, 4, 4), grid.BlockCoord{Block: 0, GC: vmath.V3(5, 4, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if bc.Block != 0 {
		t.Errorf("located in block %d, want 0", bc.Block)
	}
	if got := m.PhysAt(bc); !got.ApproxEqual(vmath.V3(3, 4, 4), 1e-3) {
		t.Errorf("PhysAt(located) = %v", got)
	}
	// Point clearly in block 1, guess from block 0: must hop.
	bc, err = m.Locate(vmath.V3(15, 4, 4), grid.BlockCoord{Block: 0, GC: vmath.V3(5, 4, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if bc.Block != 1 {
		t.Errorf("located in block %d, want 1", bc.Block)
	}
	// Point outside everything.
	if _, err := m.Locate(vmath.V3(100, 100, 100), grid.BlockCoord{}); err == nil {
		t.Error("outside point located")
	}
}

func TestMultiblockBounds(t *testing.T) {
	m, _ := twoBlocks(t)
	b := m.Bounds()
	if !b.Min.ApproxEqual(vmath.V3(0, 0, 0), 1e-5) || !b.Max.ApproxEqual(vmath.V3(20, 8, 8), 1e-5) {
		t.Errorf("bounds %v..%v", b.Min, b.Max)
	}
}

func TestMultiStreamlineHopsBlocks(t *testing.T) {
	_, mf := twoBlocks(t)
	o := Options{Method: RK2, StepSize: 1, MaxSteps: 60, MinSpeed: 1e-9}
	path, err := MultiStreamline(mf, vmath.V3(1, 4, 4), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(path.Blocks) != 2 || path.Blocks[0] != 0 || path.Blocks[1] != 1 {
		t.Fatalf("blocks visited = %v, want [0 1]", path.Blocks)
	}
	// The path must progress monotonically in physical +X across the
	// block seam and reach deep into block 1.
	last := path.Points[len(path.Points)-1]
	if last.X < 15 {
		t.Errorf("path stopped at x=%v, want well into block 1", last.X)
	}
	for i := 1; i < len(path.Points); i++ {
		if path.Points[i].X < path.Points[i-1].X-1e-4 {
			t.Fatalf("path went backward at %d: %v -> %v", i, path.Points[i-1], path.Points[i])
		}
	}
	// Y/Z must be preserved through the hop (uniform X flow).
	for i, p := range path.Points {
		if absf(p.Y-4) > 0.05 || absf(p.Z-4) > 0.05 {
			t.Fatalf("point %d drifted off axis: %v", i, p)
		}
	}
}

func TestMultiStreamlineStopsAtDomainEnd(t *testing.T) {
	_, mf := twoBlocks(t)
	o := Options{Method: RK2, StepSize: 1, MaxSteps: 500, MinSpeed: 1e-9}
	path, err := MultiStreamline(mf, vmath.V3(1, 4, 4), o)
	if err != nil {
		t.Fatal(err)
	}
	last := path.Points[len(path.Points)-1]
	if last.X > 20.01 {
		t.Errorf("path escaped the composite domain: %v", last)
	}
	if len(path.Points) >= 500 {
		t.Error("path did not terminate at the domain boundary")
	}
}

func TestMultiStreamlineSeedOutside(t *testing.T) {
	_, mf := twoBlocks(t)
	if _, err := MultiStreamline(mf, vmath.V3(-50, 0, 0), DefaultOptions()); err == nil {
		t.Error("outside seed accepted")
	}
}

func TestMultiStreamlineSingleBlockMatchesStreamline(t *testing.T) {
	// With one block, MultiStreamline must agree with the plain
	// streamline in physical space.
	g, err := grid.NewCartesian(11, 9, 9, vmath.AABB{
		Min: vmath.V3(0, 0, 0), Max: vmath.V3(10, 8, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := field.NewField(11, 9, 9, field.GridCoords)
	for i := range f.U {
		f.U[i] = 0.5
		f.V[i] = 0.2
	}
	m, err := grid.NewMultiblock(g)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := NewMultiField(m, []*field.Field{f})
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Method: RK2, StepSize: 0.5, MaxSteps: 30, MinSpeed: 1e-9}
	multi, err := MultiStreamline(mf, vmath.V3(1, 1, 4), o)
	if err != nil {
		t.Fatal(err)
	}
	single := Streamline(SteadySampler{F: f, G: g}, vmath.V3(1, 1, 4), 0, o)
	singlePhys := ToPhysical(g, single)
	if len(multi.Points) != len(singlePhys) {
		t.Fatalf("lengths %d vs %d", len(multi.Points), len(singlePhys))
	}
	for i := range singlePhys {
		if !multi.Points[i].ApproxEqual(singlePhys[i], 1e-3) {
			t.Fatalf("point %d: %v vs %v", i, multi.Points[i], singlePhys[i])
		}
	}
}
