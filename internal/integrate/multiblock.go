package integrate

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/vmath"
)

// MultiField is one timestep of velocity data on a multiblock grid:
// one grid-coordinate field per block. It supports the paper's §7
// future work — "extension of the computational algorithms to handle
// multiple grid data sets".
type MultiField struct {
	M      *grid.Multiblock
	Fields []*field.Field
}

// NewMultiField validates block/field pairing.
func NewMultiField(m *grid.Multiblock, fields []*field.Field) (*MultiField, error) {
	if len(fields) != m.NumBlocks() {
		return nil, fmt.Errorf("integrate: %d fields for %d blocks", len(fields), m.NumBlocks())
	}
	for i, f := range fields {
		if !f.MatchesGrid(m.Blocks[i]) {
			return nil, fmt.Errorf("integrate: field %d dims %dx%dx%d do not match block %dx%dx%d",
				i, f.NI, f.NJ, f.NK, m.Blocks[i].NI, m.Blocks[i].NJ, m.Blocks[i].NK)
		}
		if f.Coords != field.GridCoords {
			return nil, fmt.Errorf("integrate: field %d not in grid coordinates", i)
		}
	}
	return &MultiField{M: m, Fields: fields}, nil
}

// Velocity samples the grid-coordinate velocity at a block coordinate.
func (mf *MultiField) Velocity(bc grid.BlockCoord) vmath.Vec3 {
	return mf.Fields[bc.Block].Sample(mf.M.Blocks[bc.Block], bc.GC)
}

// MultiPath is the result of a multiblock integration: the path in
// physical coordinates (grid coordinates are block-local and
// meaningless across a hop) plus the sequence of blocks visited.
type MultiPath struct {
	Points []vmath.Vec3
	Blocks []int // blocks visited, in order, deduplicated
}

// MultiStreamline integrates a streamline from a physical seed point
// through a multiblock field, hopping blocks when the path leaves one:
// each step runs in the current block's grid coordinates (keeping the
// paper's §2.1 fast path), and on exit the last position transfers to
// whichever other block contains it.
func MultiStreamline(mf *MultiField, seedPhys vmath.Vec3, o Options) (MultiPath, error) {
	if err := o.Validate(); err != nil {
		return MultiPath{}, err
	}
	bc, err := mf.M.Locate(seedPhys, grid.BlockCoord{Block: 0})
	if err != nil {
		return MultiPath{}, fmt.Errorf("integrate: seed %v outside all blocks: %w", seedPhys, err)
	}
	path := MultiPath{
		Points: make([]vmath.Vec3, 0, o.MaxSteps+1),
		Blocks: []int{bc.Block},
	}
	path.Points = append(path.Points, mf.M.PhysAt(bc))

	for n := 0; n < o.MaxSteps; n++ {
		g := mf.M.Blocks[bc.Block]
		f := mf.Fields[bc.Block]
		sampler := SteadySampler{F: f, G: g}
		if sampler.SampleVelocity(bc.GC, 0).Len() < o.EffectiveMinSpeed() {
			break
		}
		next := Step(o.Method, sampler, bc.GC, 0, o.StepSize)
		if !next.IsFinite() {
			break
		}
		if g.InBounds(next) {
			bc.GC = next
			path.Points = append(path.Points, g.PhysAt(next))
			continue
		}
		// Exited the block: extrapolate the physical position of the
		// attempted step (clamped positions sit on the block face,
		// which overlapping neighbors also contain) and hop.
		exitPhys := g.PhysAt(g.ClampToBounds(next))
		hopped, err := mf.M.Transfer(exitPhys, bc.Block)
		if err != nil {
			break // left the whole composite domain
		}
		bc = hopped
		if path.Blocks[len(path.Blocks)-1] != bc.Block {
			path.Blocks = append(path.Blocks, bc.Block)
		}
		path.Points = append(path.Points, mf.M.PhysAt(bc))
	}
	return path, nil
}
