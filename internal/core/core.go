// Package core is the top-level virtual windtunnel API — the paper's
// primary contribution assembled from the substrates: it launches
// stand-alone sessions (everything in one process, the configuration
// of the earlier Bryson-Levit system), serves datasets to remote
// workstations, and connects workstations to remote servers, while
// tracking the paper's central performance contract: the full
// command-to-display loop must fit in 1/8 of a second (§1.2).
package core

import (
	"fmt"
	"net"
	"time"

	"repro/internal/client"
	"repro/internal/compute"
	"repro/internal/datasets"
	"repro/internal/dlib"
	"repro/internal/env"
	"repro/internal/field"
	"repro/internal/integrate"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/vmath"
	"repro/internal/vr"
	"repro/internal/wire"
)

// FrameBudget is the paper's interaction deadline: "the system must
// repeatedly react to the user's commands and display the virtual
// scene in stereo to the user in less than 1/8th of a second."
const FrameBudget = time.Second / 8

// TargetFrameRate is the desired update rate: "Ten frames/second will
// be taken as the desired frame rate."
const TargetFrameRate = 10

// Options configures a windtunnel.
type Options struct {
	// Engine selects the visualization computation engine; nil uses
	// the parallel engine.
	Engine compute.Engine
	// Integration sets path computation parameters; the zero value
	// uses RK2 with 200-point paths.
	Integration integrate.Options
	// Prefetch enables timestep prefetching for I/O-backed stores.
	Prefetch bool
	// MaxSeedsPerRake caps client-requested seed counts server-side;
	// zero uses the server default.
	MaxSeedsPerRake int
	// RakeWorkers bounds concurrent per-rake recomputation server-side;
	// zero uses GOMAXPROCS.
	RakeWorkers int
	// CacheSteps / CacheBytes budget the shared timestep cache between
	// the server and an I/O-backed store; both zero disables it.
	CacheSteps int
	CacheBytes int64
	// Budget is the server's per-frame integration budget: when the
	// governor predicts a frame will exceed it, load is shed to hold
	// TargetFrameRate instead of blowing the §1.2 deadline. Zero
	// disables the governor.
	Budget time.Duration
	// FrameW, FrameH size the workstation display; zero uses 640x512.
	FrameW, FrameH int
	// MaxCodec caps the frame codec the server negotiates at hello;
	// zero serves up to wire.MaxCodec, wire.CodecV1 pins the classic
	// encoding for every session.
	MaxCodec int
	// Codec is the frame codec the workstation requests; zero or
	// wire.CodecV1 runs the legacy v1 exchange, wire.CodecV2 asks for
	// delta/quantized frames (falling back to v1 against old servers).
	Codec uint8
	// Iso, Plane, Vortex seed the shared visualization tools
	// server-side (isosurface level, cutting plane, Q-criterion vortex
	// cores). All three zero leaves the tool subsystem untouched and
	// frames byte-identical to pre-tool builds.
	Iso    env.IsoParams
	Plane  env.PlaneParams
	Vortex env.VortexParams
}

// Session is a connected windtunnel: a workstation (always) and, for
// local sessions, the in-process server.
type Session struct {
	// WS is the workstation: rendering, state, and the network loop.
	WS *client.Workstation
	// User provides scripted head/hand input.
	User *vr.ScriptedUser

	conn *dlib.Client
	srv  *server.Server // non-nil for local sessions
}

// LaunchLocal runs the stand-alone windtunnel: server and workstation
// in one process over an in-memory pipe. The same code paths run as in
// the distributed case — the paper kept the two builds from one source
// tree for exactly this reason (§5.1).
func LaunchLocal(dataset *field.Unsteady, opts Options) (*Session, error) {
	srv, err := server.New(server.Config{
		Store:           store.NewMemory(dataset),
		Engine:          opts.Engine,
		Options:         opts.Integration,
		Prefetch:        opts.Prefetch,
		MaxSeedsPerRake: opts.MaxSeedsPerRake,
		RakeWorkers:     opts.RakeWorkers,
		Budget:          opts.Budget,
		MaxCodec:        opts.MaxCodec,
		Iso:             opts.Iso,
		Plane:           opts.Plane,
		Vortex:          opts.Vortex,
	})
	if err != nil {
		return nil, err
	}
	serverSide, clientSide := net.Pipe()
	go srv.Dlib().ServeConn(serverSide)
	return newSession(dlib.NewClient(clientSide), srv, opts)
}

// Serve starts a distributed windtunnel server on the listener and
// returns immediately; close the returned server's Dlib() to stop.
func Serve(ln net.Listener, st store.Store, opts Options) (*server.Server, error) {
	srv, err := server.New(server.Config{
		Store:           st,
		Engine:          opts.Engine,
		Options:         opts.Integration,
		Prefetch:        opts.Prefetch,
		MaxSeedsPerRake: opts.MaxSeedsPerRake,
		RakeWorkers:     opts.RakeWorkers,
		CacheSteps:      opts.CacheSteps,
		CacheBytes:      opts.CacheBytes,
		Budget:          opts.Budget,
		MaxCodec:        opts.MaxCodec,
		Iso:             opts.Iso,
		Plane:           opts.Plane,
		Vortex:          opts.Vortex,
	})
	if err != nil {
		return nil, err
	}
	go srv.Dlib().Serve(ln)
	return srv, nil
}

// LiveSteerSource adapts an environment's steering state into the
// producer-side SteerSource the live solver polls between timesteps:
// the environment arbitrates (FCFS lock, version counter), the
// producer applies.
func LiveSteerSource(e *env.Environment) datasets.SteerSource {
	return func() (datasets.Steering, uint64) {
		st := e.Steer()
		return datasets.Steering{
			InflowU:  st.Params.InflowU,
			Reynolds: st.Params.Reynolds,
			Taper:    st.Params.Taper,
		}, st.Version
	}
}

// ServeLive starts an in-situ windtunnel server: frames are computed
// from the live solver's timestep ring instead of stored data, and the
// steering commands workstations send are wired back into the
// producer. Close the returned server's Dlib() to stop.
func ServeLive(ln net.Listener, lv *datasets.Live, opts Options) (*server.Server, error) {
	def := datasets.DefaultSteer()
	srv, err := server.New(server.Config{
		Store:           lv.Ring(),
		Engine:          opts.Engine,
		Options:         opts.Integration,
		MaxSeedsPerRake: opts.MaxSeedsPerRake,
		RakeWorkers:     opts.RakeWorkers,
		Budget:          opts.Budget,
		MaxCodec:        opts.MaxCodec,
		Iso:             opts.Iso,
		Plane:           opts.Plane,
		Vortex:          opts.Vortex,
		Steer: env.SteerParams{
			InflowU:  def.InflowU,
			Reynolds: def.Reynolds,
			Taper:    def.Taper,
		},
	})
	if err != nil {
		return nil, err
	}
	lv.SetSteerSource(LiveSteerSource(srv.Env()))
	go srv.Dlib().Serve(ln)
	return srv, nil
}

// Connect attaches a workstation to a remote windtunnel server, either
// by address or through a pre-established connection (e.g. a netsim
// link); pass exactly one.
func Connect(addr string, conn net.Conn, opts Options) (*Session, error) {
	var c *dlib.Client
	switch {
	case conn != nil:
		c = dlib.NewClient(conn)
	case addr != "":
		var err error
		c, err = dlib.Dial(addr)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: Connect needs an address or a connection")
	}
	return newSession(c, nil, opts)
}

func newSession(c *dlib.Client, srv *server.Server, opts Options) (*Session, error) {
	ws, err := client.New(c, client.Config{FrameW: opts.FrameW, FrameH: opts.FrameH, Codec: opts.Codec})
	if err != nil {
		c.Close()
		return nil, err
	}
	user, err := vr.NewScriptedUser(1)
	if err != nil {
		c.Close()
		return nil, err
	}
	return &Session{WS: ws, User: user, conn: c, srv: srv}, nil
}

// Close tears the session down (and the server, for local sessions).
func (s *Session) Close() error {
	err := s.conn.Close()
	if s.srv != nil {
		if e := s.srv.Dlib().Close(); err == nil {
			err = e
		}
	}
	return err
}

// Server returns the in-process server for local sessions, or nil.
func (s *Session) Server() *server.Server { return s.srv }

// AddRake queues a rake creation for the next frame.
func (s *Session) AddRake(p0, p1 vmath.Vec3, numSeeds int, tool integrate.ToolKind) {
	s.WS.Queue(wire.Command{
		Kind: wire.CmdAddRake,
		P0:   p0, P1: p1,
		NumSeeds: uint32(numSeeds),
		Tool:     uint8(tool),
	})
}

// Play starts dataset playback at the given speed (timesteps/frame;
// negative runs time backward — §2's time control).
func (s *Session) Play(speed float32) {
	s.WS.Queue(wire.Command{Kind: wire.CmdSetSpeed, Value: speed})
	s.WS.Queue(wire.Command{Kind: wire.CmdSetPlaying, Flag: 1})
}

// Stop pauses playback "for detailed examination".
func (s *Session) Stop() {
	s.WS.Queue(wire.Command{Kind: wire.CmdSetPlaying, Flag: 0})
}

// FrameResult reports one full interaction frame against the budget.
type FrameResult struct {
	// Total is the command-to-display round trip.
	Total time.Duration
	// WithinBudget reports Total <= FrameBudget.
	WithinBudget bool
	// Points is the geometry size received this frame.
	Points int
}

// Frame runs one complete interaction frame with scripted input —
// sample devices, exchange with the server, render stereo — and
// checks it against the 1/8-second budget.
func (s *Session) Frame() (FrameResult, error) {
	start := time.Now()
	pose := s.User.Step()
	if err := s.WS.NetStep(pose); err != nil {
		return FrameResult{}, err
	}
	if err := s.WS.RenderFrame(pose.Head); err != nil {
		return FrameResult{}, err
	}
	total := time.Since(start)
	state, _ := s.WS.Latest()
	return FrameResult{
		Total:        total,
		WithinBudget: total <= FrameBudget,
		Points:       state.TotalPoints(),
	}, nil
}

// RunFrames runs n frames and returns the per-frame results.
func (s *Session) RunFrames(n int) ([]FrameResult, error) {
	out := make([]FrameResult, 0, n)
	for i := 0; i < n; i++ {
		r, err := s.Frame()
		if err != nil {
			return out, fmt.Errorf("core: frame %d: %w", i, err)
		}
		out = append(out, r)
	}
	return out, nil
}
