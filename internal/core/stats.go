package core

import (
	"fmt"
	"sort"
	"time"
)

// Summary aggregates frame results against the §1.2 budget.
type Summary struct {
	Frames       int
	Mean         time.Duration
	P50          time.Duration
	P95          time.Duration
	Worst        time.Duration
	WithinBudget int
	MeanPoints   int
}

// Summarize computes budget statistics over a frame sequence.
func Summarize(results []FrameResult) Summary {
	if len(results) == 0 {
		return Summary{}
	}
	times := make([]time.Duration, len(results))
	var sum time.Duration
	var within, points int
	for i, r := range results {
		times[i] = r.Total
		sum += r.Total
		if r.WithinBudget {
			within++
		}
		points += r.Points
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(times)-1))
		return times[idx]
	}
	return Summary{
		Frames:       len(results),
		Mean:         sum / time.Duration(len(results)),
		P50:          pct(0.50),
		P95:          pct(0.95),
		Worst:        times[len(times)-1],
		WithinBudget: within,
		MeanPoints:   points / len(results),
	}
}

// String renders a one-line report.
func (s Summary) String() string {
	if s.Frames == 0 {
		return "no frames"
	}
	return fmt.Sprintf("%d frames: mean %v p50 %v p95 %v worst %v; %d/%d within %v; ~%d points/frame",
		s.Frames,
		s.Mean.Round(10*time.Microsecond),
		s.P50.Round(10*time.Microsecond),
		s.P95.Round(10*time.Microsecond),
		s.Worst.Round(10*time.Microsecond),
		s.WithinBudget, s.Frames, FrameBudget, s.MeanPoints)
}
