package core

import (
	"net"
	"testing"
	"time"

	"repro/internal/field"
	"repro/internal/flow"
	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/store"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// smallDataset synthesizes a laptop-scale tapered cylinder dataset in
// grid coordinates.
func smallDataset(t testing.TB, numSteps int) *field.Unsteady {
	t.Helper()
	g, err := grid.NewTaperedCylinder(grid.TaperedCylinderSpec{
		NI: 12, NJ: 16, NK: 6, R0: 1, R1: 0.5, Router: 10, Span: 12, Stretch: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	phys, err := flow.SampleUnsteady(flow.DefaultTaperedCylinder(), g, numSteps, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	u, err := phys.ToGridCoords()
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestLocalSessionFullLoop(t *testing.T) {
	sess, err := LaunchLocal(smallDataset(t, 4), Options{FrameW: 64, FrameH: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	sess.AddRake(vmath.V3(-4, -3, 2), vmath.V3(-4, 3, 2), 5, integrate.ToolStreamline)
	sess.Play(1)
	results, err := sess.RunFrames(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("frames = %d", len(results))
	}
	var gotPoints bool
	for _, r := range results {
		if r.Points > 0 {
			gotPoints = true
		}
	}
	if !gotPoints {
		t.Error("no geometry over 5 frames")
	}
	if sess.Server() == nil {
		t.Error("local session has no server")
	}
	if st := sess.Server().Stats(); st.Frames == 0 {
		t.Error("server computed no frames")
	}
}

func TestLocalFrameWithinBudget(t *testing.T) {
	// A modest workload on the local pipe must meet the 1/8s budget —
	// this is the paper's core interactivity requirement.
	sess, err := LaunchLocal(smallDataset(t, 3), Options{FrameW: 64, FrameH: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sess.AddRake(vmath.V3(-4, -3, 2), vmath.V3(-4, 3, 2), 10, integrate.ToolStreamline)
	// Warm up, then measure.
	if _, err := sess.RunFrames(2); err != nil {
		t.Fatal(err)
	}
	r, err := sess.Frame()
	if err != nil {
		t.Fatal(err)
	}
	if !r.WithinBudget {
		t.Errorf("frame took %v, budget %v", r.Total, FrameBudget)
	}
}

func TestDistributedSession(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(ln, store.NewMemory(smallDataset(t, 3)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Dlib().Close()

	sess, err := Connect(ln.Addr().String(), nil, Options{FrameW: 32, FrameH: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sess.AddRake(vmath.V3(-4, 0, 2), vmath.V3(4, 0, 2), 4, integrate.ToolStreakline)
	sess.Play(0.5)
	if _, err := sess.RunFrames(3); err != nil {
		t.Fatal(err)
	}
	state, ok := sess.WS.Latest()
	if !ok || len(state.Rakes) != 1 {
		t.Fatalf("state not shared: ok=%v rakes=%d", ok, len(state.Rakes))
	}
}

func TestTwoUsersShareOneServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(ln, store.NewMemory(smallDataset(t, 3)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Dlib().Close()

	s1, err := Connect(ln.Addr().String(), nil, Options{FrameW: 32, FrameH: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := Connect(ln.Addr().String(), nil, Options{FrameW: 32, FrameH: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	s1.AddRake(vmath.V3(-4, 0, 2), vmath.V3(4, 0, 2), 4, integrate.ToolStreamline)
	if _, err := s1.Frame(); err != nil {
		t.Fatal(err)
	}
	// User 2 sees user 1's rake and user 1's presence.
	if _, err := s2.Frame(); err != nil {
		t.Fatal(err)
	}
	state, _ := s2.WS.Latest()
	if len(state.Rakes) != 1 {
		t.Errorf("user 2 sees %d rakes", len(state.Rakes))
	}
	if len(state.Users) < 1 {
		t.Error("user 2 sees no other users")
	}
}

func TestConnectValidation(t *testing.T) {
	if _, err := Connect("", nil, Options{}); err == nil {
		t.Error("Connect with neither address nor conn accepted")
	}
}

func TestSummarize(t *testing.T) {
	ms := func(n int) FrameResult {
		d := time.Duration(n) * time.Millisecond
		return FrameResult{Total: d, WithinBudget: d <= FrameBudget, Points: n * 10}
	}
	results := []FrameResult{ms(10), ms(20), ms(30), ms(40), ms(200)}
	s := Summarize(results)
	if s.Frames != 5 {
		t.Fatalf("frames = %d", s.Frames)
	}
	if s.Mean != 60*time.Millisecond {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.P50 != 30*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.Worst != 200*time.Millisecond {
		t.Errorf("worst = %v", s.Worst)
	}
	if s.WithinBudget != 4 {
		t.Errorf("within = %d", s.WithinBudget)
	}
	if s.MeanPoints != 600 {
		t.Errorf("meanPoints = %d", s.MeanPoints)
	}
	if Summarize(nil).Frames != 0 {
		t.Error("empty summarize")
	}
	if s.String() == "" || Summarize(nil).String() != "no frames" {
		t.Error("String formatting")
	}
}

func TestLateJoinSeesExistingEnvironment(t *testing.T) {
	// Sec 5.1: "at any time during the use of the distributed virtual
	// windtunnel another workstation ... should be able to 'sign up'
	// and interact with the already existing virtual environment."
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(ln, store.NewMemory(smallDataset(t, 4)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Dlib().Close()

	first, err := Connect(ln.Addr().String(), nil, Options{FrameW: 32, FrameH: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	first.AddRake(vmath.V3(-4, 0, 2), vmath.V3(4, 0, 2), 4, integrate.ToolStreamline)
	first.Play(1)
	if _, err := first.RunFrames(5); err != nil {
		t.Fatal(err)
	}
	stateBefore, _ := first.WS.Latest()

	// Sign up mid-session.
	late, err := Connect(ln.Addr().String(), nil, Options{FrameW: 32, FrameH: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	if _, err := late.Frame(); err != nil {
		t.Fatal(err)
	}
	state, _ := late.WS.Latest()
	if len(state.Rakes) != 1 {
		t.Fatalf("late joiner sees %d rakes", len(state.Rakes))
	}
	if !state.Time.Playing {
		t.Error("late joiner does not see playback state")
	}
	if state.Time.Current < stateBefore.Time.Current {
		t.Error("late joiner sees stale time")
	}
	// And can interact immediately: grab the existing rake.
	late.WS.Queue(wire.Command{Kind: wire.CmdGrab, Rake: state.Rakes[0].ID,
		Grab: uint8(integrate.GrabCenter)})
	if _, err := late.Frame(); err != nil {
		t.Fatal(err)
	}
	state, _ = late.WS.Latest()
	if state.Rakes[0].Holder == 0 {
		t.Error("late joiner could not grab")
	}
}
