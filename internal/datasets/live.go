package datasets

import (
	"fmt"
	"sync"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/solver"
	"repro/internal/store"
	"repro/internal/vmath"
)

// Steering is the set of flow parameters a workstation can change
// while the solver runs: the CAVE-steering idea applied to the
// windtunnel. Taper is the tip/base radius ratio of the immersed
// cylinder (the seed geometry is r1/r0 = 0.5).
type Steering struct {
	InflowU  float32 // inlet velocity along +X
	Reynolds float32 // Re = InflowU * D / nu with D the base diameter
	Taper    float32 // tip radius as a fraction of the base radius
}

// SteerSource reports the parameters the producer should run with and
// a version that increments on every accepted change. The producer
// applies a change only when the version moves, so a frozen source
// (version stuck at 0) leaves the solver on its construction-time
// parameters — the differential battery's byte-identity hinge.
type SteerSource func() (Steering, uint64)

// LiveOptions tunes the in-situ producer.
type LiveOptions struct {
	// Solver configures the embedded Navier-Stokes run exactly like the
	// offline generator.
	Solver SolverOptions
	// Window bounds the ring's history (steps kept behind the head for
	// particle paths/streaklines). 0 keeps every step up to the horizon.
	Window int
}

// cylBaseR0 and cylBaseDiam fix the steering geometry to the seed
// dataset's cylinder: base radius 1, so Re = U*2/nu.
const (
	cylBaseR0   = float32(1)
	cylBaseDiam = float32(2)
)

// DefaultSteer returns the parameters the solver is constructed with:
// InflowU 1, nu 0.005 → Re = 1*2/0.005 = 400, taper 0.5. Applying
// these through the steering path is a bit-exact no-op.
func DefaultSteer() Steering {
	return Steering{InflowU: 1, Reynolds: 400, Taper: 0.5}
}

// Live couples the Navier-Stokes solver to a timestep ring: the
// in-situ producer. Construction mirrors SolverPhysical exactly —
// same solver, cylinder, spinup, CFL sub-stepping, snapshot sampling,
// grid-coordinate conversion — so a live run with frozen steering is
// bit-identical to a dataset generated offline from the same Spec.
type Live struct {
	spec Spec
	g    *grid.Grid
	ring *store.Ring

	mu      sync.Mutex
	sim     *solver.Solver
	shifted *grid.Grid
	offset  vmath.Vec3
	snap    *field.Field // reusable grid-coordinate scratch

	steer        SteerSource
	steerVersion uint64
	applied      []Steering // bounded log of applied changes, for audits
}

// NewLive builds the in-situ producer: it spins up the solver exactly
// like SolverPhysical, then exposes a ring that produces steps on
// demand as the server asks for them.
func NewLive(s Spec, opts LiveOptions) (*Live, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g, err := cylinderGrid(s)
	if err != nil {
		return nil, err
	}
	res := opts.Solver.Resolution
	if res == 0 {
		res = 48
	}
	spinup := opts.Solver.SpinupSteps
	if spinup == 0 {
		spinup = 60
	}
	sim, err := solver.New(res, res*2/3, res/4, 38.4/float32(res), 0.005, solver.WindTunnelBounds)
	if err != nil {
		return nil, err
	}
	if opts.Solver.Workers > 0 {
		sim.SetWorkers(opts.Solver.Workers)
	}
	sim.InflowU = 1
	offset := vmath.Vec3{
		X: sim.DomainSize().X * 0.3,
		Y: sim.DomainSize().Y * 0.5,
	}
	sim.AddTaperedCylinder(offset.X, offset.Y, 1, 0.5)
	sim.SetVelocity(func(vmath.Vec3) vmath.Vec3 { return vmath.V3(1, 0, 0) })
	for i := 0; i < spinup; i++ {
		sim.Step(sim.CFLStep(0.7))
	}

	shifted, err := grid.New(g.NI, g.NJ, g.NK)
	if err != nil {
		return nil, err
	}
	for i := range g.X {
		shifted.X[i] = g.X[i] + offset.X
		shifted.Y[i] = g.Y[i] + offset.Y
		shifted.Z[i] = g.Z[i] + offset.Z
	}

	window := opts.Window
	if window <= 0 {
		window = s.NumSteps
	}
	ring, err := store.NewRing(g, s.DT, window, s.NumSteps)
	if err != nil {
		return nil, err
	}
	l := &Live{
		spec: s, g: g, ring: ring,
		sim: sim, shifted: shifted, offset: offset,
	}
	ring.SetProducer(l.produceTo)
	return l, nil
}

// Ring returns the live store to hand to the server.
func (l *Live) Ring() *store.Ring { return l.ring }

// Grid returns the dataset grid.
func (l *Live) Grid() *grid.Grid { return l.g }

// SetSteerSource attaches the steering parameter source the producer
// polls before each timestep.
func (l *Live) SetSteerSource(src SteerSource) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.steer = src
}

// AppliedSteer returns the parameter sets the producer has applied so
// far, in application order. The chaos battery uses it to check a
// change is never torn: every entry must be a complete triple some
// client sent, never a mix of two.
func (l *Live) AppliedSteer() []Steering {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Steering, len(l.applied))
	copy(out, l.applied)
	return out
}

// applySteerLocked folds a pending steering change into the solver.
// All three parameters land atomically between timesteps — a change
// can be delayed by in-flight compute but never half-applied.
func (l *Live) applySteerLocked() {
	if l.steer == nil {
		return
	}
	p, version := l.steer()
	if version == l.steerVersion {
		return
	}
	l.steerVersion = version
	l.sim.InflowU = p.InflowU
	l.sim.Nu = p.InflowU * cylBaseDiam / p.Reynolds
	l.sim.SetVelocity(func(vmath.Vec3) vmath.Vec3 { return vmath.V3(p.InflowU, 0, 0) })
	l.sim.SetTaperedCylinder(l.offset.X, l.offset.Y, cylBaseR0, cylBaseR0*p.Taper)
	if len(l.applied) < 4096 {
		l.applied = append(l.applied, p)
	}
}

// produceTo advances the solver until the ring's head reaches the
// requested step, sealing one grid-coordinate snapshot per DT. It is
// the ring's producer callback; l.mu serializes concurrent callers so
// steps seal strictly in order.
func (l *Live) produceTo(upto int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.ring.Head() < upto {
		l.applySteerLocked()
		var advanced float32
		for advanced < l.spec.DT {
			h := l.sim.CFLStep(0.7)
			if advanced+h > l.spec.DT {
				h = l.spec.DT - advanced
			}
			l.sim.Step(h)
			advanced += h
		}
		snap := l.sim.FieldOn(l.shifted)
		if err := snap.Validate(); err != nil {
			return fmt.Errorf("datasets: live snapshot %d: %w", l.ring.Head()+1, err)
		}
		gc, err := field.ToGridCoords(snap, l.g)
		if err != nil {
			return fmt.Errorf("datasets: live snapshot %d: %w", l.ring.Head()+1, err)
		}
		if _, err := l.ring.Publish(gc); err != nil {
			return err
		}
	}
	return nil
}
