package datasets

import (
	"testing"

	"repro/internal/field"
	"repro/internal/vmath"
)

func TestSpecValidate(t *testing.T) {
	good := Spec{NI: 8, NJ: 8, NK: 4, NumSteps: 2, DT: 0.5}
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
	bad := []Spec{
		{NI: 1, NJ: 8, NK: 4, NumSteps: 2, DT: 0.5},
		{NI: 8, NJ: 8, NK: 4, NumSteps: 0, DT: 0.5},
		{NI: 8, NJ: 8, NK: 4, NumSteps: 2, DT: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestAnalyticDataset(t *testing.T) {
	u, err := Analytic(Spec{NI: 12, NJ: 16, NK: 6, NumSteps: 4, DT: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if u.NumSteps() != 4 {
		t.Fatalf("steps = %d", u.NumSteps())
	}
	if u.Steps[0].Coords != field.GridCoords {
		t.Error("dataset not in grid coordinates")
	}
	for i, s := range u.Steps {
		if err := s.Validate(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	// Unsteady: step 0 and step 3 differ somewhere in the wake.
	diff := false
	for i := range u.Steps[0].U {
		if u.Steps[0].U[i] != u.Steps[3].U[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("analytic dataset is steady")
	}
}

func TestSolverDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("solver run")
	}
	var progressCalls int
	u, err := Solver(
		Spec{NI: 10, NJ: 12, NK: 5, NumSteps: 3, DT: 0.4},
		SolverOptions{Resolution: 24, SpinupSteps: 10, Progress: func(step, total int) {
			progressCalls++
			if total != 3 {
				t.Errorf("progress total = %d", total)
			}
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumSteps() != 3 || progressCalls != 3 {
		t.Fatalf("steps=%d progress=%d", u.NumSteps(), progressCalls)
	}
	for i, s := range u.Steps {
		if err := s.Validate(); err != nil {
			t.Fatalf("step %d invalid: %v", i, err)
		}
	}
	// The sampled flow must be moving (inflow-driven): some node has
	// nontrivial velocity.
	var maxLen float32
	for i := range u.Steps[0].U {
		v := vmath.Vec3{X: u.Steps[0].U[i], Y: u.Steps[0].V[i], Z: u.Steps[0].W[i]}
		if v.Len() > maxLen {
			maxLen = v.Len()
		}
	}
	if maxLen < 0.01 {
		t.Errorf("solver dataset nearly static: max grid-velocity %v", maxLen)
	}
}

func TestSolverRejectsBadSpec(t *testing.T) {
	if _, err := Solver(Spec{}, SolverOptions{}); err == nil {
		t.Error("zero spec accepted")
	}
}
