// Package datasets generates complete windtunnel datasets — the role
// of the CFD pipeline that fed the paper's system. Two generators are
// provided: the analytic shedding model (fast, any resolution) and the
// Navier-Stokes solver (a genuine simulation around an immersed
// tapered cylinder). Both produce grid-coordinate unsteady fields
// ready for the server.
//
//vw:deterministic
package datasets

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/flow"
	"repro/internal/grid"
	"repro/internal/solver"
	"repro/internal/vmath"
)

// Spec sizes a tapered-cylinder dataset.
type Spec struct {
	NI, NJ, NK int
	NumSteps   int
	DT         float32
}

// Validate reports sizing errors.
func (s Spec) Validate() error {
	if s.NI < 2 || s.NJ < 2 || s.NK < 2 {
		return fmt.Errorf("datasets: grid %dx%dx%d too small", s.NI, s.NJ, s.NK)
	}
	if s.NumSteps < 1 {
		return fmt.Errorf("datasets: need at least one timestep")
	}
	if s.DT <= 0 {
		return fmt.Errorf("datasets: non-positive dt %g", s.DT)
	}
	return nil
}

// cylinderGrid builds the standard O-grid for a spec.
func cylinderGrid(s Spec) (*grid.Grid, error) {
	return grid.NewTaperedCylinder(grid.TaperedCylinderSpec{
		NI: s.NI, NJ: s.NJ, NK: s.NK,
		R0: 1, R1: 0.5, Router: 12, Span: 16, Stretch: 2,
	})
}

// AnalyticPhysical builds the dataset from the analytic vortex-street
// model, leaving velocities in physical coordinates (the form solvers
// emit and PLOT3D files store).
func AnalyticPhysical(s Spec) (*field.Unsteady, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g, err := cylinderGrid(s)
	if err != nil {
		return nil, err
	}
	return flow.SampleUnsteady(flow.DefaultTaperedCylinder(), g, s.NumSteps, 0, s.DT)
}

// Analytic builds the analytic dataset pre-converted to grid
// coordinates, ready for the server.
func Analytic(s Spec) (*field.Unsteady, error) {
	phys, err := AnalyticPhysical(s)
	if err != nil {
		return nil, err
	}
	return phys.ToGridCoords()
}

// SolverOptions tunes the Navier-Stokes generator.
type SolverOptions struct {
	// Resolution is the solver's cell count along X; Y and Z scale
	// proportionally. 0 uses 48.
	Resolution int
	// SpinupSteps develops the wake before the first snapshot; 0 uses
	// 60.
	SpinupSteps int
	// Workers parallelizes the solver sweeps; 0 runs serially.
	Workers int
	// Progress, if set, receives per-snapshot notifications.
	Progress func(step, total int)
}

// Solver builds the dataset by integrating the Navier-Stokes equations
// around an immersed tapered cylinder and sampling snapshots onto the
// curvilinear grid, pre-converted to grid coordinates.
func Solver(s Spec, opts SolverOptions) (*field.Unsteady, error) {
	phys, err := SolverPhysical(s, opts)
	if err != nil {
		return nil, err
	}
	return phys.ToGridCoords()
}

// SolverPhysical is Solver without the grid-coordinate conversion.
func SolverPhysical(s Spec, opts SolverOptions) (*field.Unsteady, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g, err := cylinderGrid(s)
	if err != nil {
		return nil, err
	}
	res := opts.Resolution
	if res == 0 {
		res = 48
	}
	spinup := opts.SpinupSteps
	if spinup == 0 {
		spinup = 60
	}
	sim, err := solver.New(res, res*2/3, res/4, 38.4/float32(res), 0.005, solver.WindTunnelBounds)
	if err != nil {
		return nil, err
	}
	if opts.Workers > 0 {
		sim.SetWorkers(opts.Workers)
	}
	sim.InflowU = 1
	// The grid's cylinder axis is at the origin; the solver's domain
	// starts at (0,0,0), so sampling happens through this offset.
	offset := vmath.Vec3{
		X: sim.DomainSize().X * 0.3,
		Y: sim.DomainSize().Y * 0.5,
	}
	sim.AddTaperedCylinder(offset.X, offset.Y, 1, 0.5)
	sim.SetVelocity(func(vmath.Vec3) vmath.Vec3 { return vmath.V3(1, 0, 0) })

	for i := 0; i < spinup; i++ {
		sim.Step(sim.CFLStep(0.7))
	}

	shifted, err := grid.New(g.NI, g.NJ, g.NK)
	if err != nil {
		return nil, err
	}
	for i := range g.X {
		shifted.X[i] = g.X[i] + offset.X
		shifted.Y[i] = g.Y[i] + offset.Y
		shifted.Z[i] = g.Z[i] + offset.Z
	}

	steps := make([]*field.Field, 0, s.NumSteps)
	for n := 0; n < s.NumSteps; n++ {
		var advanced float32
		for advanced < s.DT {
			h := sim.CFLStep(0.7)
			if advanced+h > s.DT {
				h = s.DT - advanced
			}
			sim.Step(h)
			advanced += h
		}
		snap := sim.FieldOn(shifted)
		if err := snap.Validate(); err != nil {
			return nil, fmt.Errorf("datasets: solver snapshot %d: %w", n, err)
		}
		steps = append(steps, snap)
		if opts.Progress != nil {
			opts.Progress(n+1, s.NumSteps)
		}
	}
	return field.NewUnsteady(g, steps, s.DT)
}
