package datasets

import (
	"sync/atomic"
	"testing"
)

func liveTestSpec() (Spec, LiveOptions) {
	return Spec{NI: 10, NJ: 10, NK: 4, NumSteps: 8, DT: 0.2},
		LiveOptions{Solver: SolverOptions{Resolution: 16, SpinupSteps: 4, Workers: 2}, Window: 4}
}

// TestLiveVersionGateFreezesSteering: the producer applies a steering
// change only when the source's version moves. A source whose version
// sits at the initial value never touches the solver — the frozen-run
// half of the differential battery's byte-identity contract — and a
// version bump applies the triple exactly once, atomically.
func TestLiveVersionGateFreezesSteering(t *testing.T) {
	spec, opts := liveTestSpec()
	lv, err := NewLive(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	var version atomic.Uint64
	want := Steering{InflowU: 2, Reynolds: 300, Taper: 0.8}
	lv.SetSteerSource(func() (Steering, uint64) {
		return want, version.Load()
	})

	// Frozen: the source keeps returning hostile parameters, but with
	// the version pinned at zero nothing reaches the solver.
	if _, err := lv.Ring().LoadStep(2); err != nil {
		t.Fatal(err)
	}
	if ap := lv.AppliedSteer(); len(ap) != 0 {
		t.Fatalf("frozen source applied %d changes: %v", len(ap), ap)
	}

	// One version bump, several produced steps: the change lands once,
	// as the complete triple.
	version.Store(1)
	if _, err := lv.Ring().LoadStep(5); err != nil {
		t.Fatal(err)
	}
	ap := lv.AppliedSteer()
	if len(ap) != 1 {
		t.Fatalf("one version bump applied %d changes: %v", len(ap), ap)
	}
	if ap[0] != want {
		t.Fatalf("applied %+v, sent %+v", ap[0], want)
	}
}

// TestLiveFrozenMatchesSolverDataset: the in-situ producer with no
// steering source is bit-identical to the offline generator on the
// same Spec — the property the server-level differential battery
// builds on, pinned here at the field level.
func TestLiveFrozenMatchesSolverDataset(t *testing.T) {
	spec, opts := liveTestSpec()
	offline, err := Solver(spec, opts.Solver)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := NewLive(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < spec.NumSteps; n++ {
		got, err := lv.Ring().LoadStep(n)
		if err != nil {
			t.Fatalf("live step %d: %v", n, err)
		}
		want := offline.Steps[n]
		for i := range want.U {
			if got.U[i] != want.U[i] || got.V[i] != want.V[i] || got.W[i] != want.W[i] {
				t.Fatalf("step %d diverges from the offline solve at sample %d", n, i)
			}
		}
	}
}
