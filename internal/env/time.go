package env

import "fmt"

// TimeState is the dataset playback state: "The time evolution of the
// flow can be sped up, slowed down, run backwards, or stopped
// completely for detailed examination" (§2).
type TimeState struct {
	// Current is the continuous time index in timesteps, in
	// [0, NumSteps-1].
	Current float32
	// Speed is timesteps advanced per frame; negative runs backward.
	Speed float32
	// Playing gates advancement.
	Playing bool
	// Loop wraps time at the dataset ends instead of clamping.
	Loop bool
	// NumSteps is the dataset length.
	NumSteps int
}

// Step returns the integer timestep nearest the current time.
func (t TimeState) Step() int {
	s := int(t.Current + 0.5)
	if s < 0 {
		s = 0
	}
	if s >= t.NumSteps {
		s = t.NumSteps - 1
	}
	return s
}

// Time returns the current playback state.
func (e *Environment) Time() TimeState {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.time
}

// SetSpeed sets playback speed in timesteps per frame (negative for
// reverse).
func (e *Environment) SetSpeed(speed float32) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.time.Speed != speed {
		e.time.Speed = speed
		e.version++
	}
}

// SetPlaying starts or stops playback.
func (e *Environment) SetPlaying(playing bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.time.Playing != playing {
		e.time.Playing = playing
		e.version++
	}
}

// SetLoop selects wrapping vs clamping at dataset ends.
func (e *Environment) SetLoop(loop bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.time.Loop != loop {
		e.time.Loop = loop
		e.version++
	}
}

// SeekTime jumps to a specific time index, clamped into range.
func (e *Environment) SeekTime(t float32) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.time.NumSteps < 1 {
		return fmt.Errorf("env: no timesteps")
	}
	last := float32(e.time.NumSteps - 1)
	if t < 0 {
		t = 0
	}
	if t > last {
		t = last
	}
	if e.time.Current != t {
		e.time.Current = t
		e.version++
	}
	return nil
}

// AdvanceTime moves playback one frame and returns the new state. With
// a single timestep or paused playback it is a no-op.
func (e *Environment) AdvanceTime() TimeState {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := &e.time
	if !t.Playing || t.NumSteps < 2 {
		return *t
	}
	before := *t
	defer func() {
		if *t != before {
			e.version++
		}
	}()
	last := float32(t.NumSteps - 1)
	t.Current += t.Speed
	if t.Loop {
		// Wrap into [0, last).
		for t.Current >= last {
			t.Current -= last
		}
		for t.Current < 0 {
			t.Current += last
		}
	} else {
		if t.Current > last {
			t.Current = last
			t.Playing = false
		}
		if t.Current < 0 {
			t.Current = 0
			t.Playing = false
		}
	}
	return *t
}
