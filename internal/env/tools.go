package env

import "fmt"

// Shared field-diagnostic tools: one isosurface, one axis-aligned
// cutting plane, and one vortex-core extractor, promoted to the same
// governed, multi-user path rakes enjoy (VFIVE treats field lines,
// isosurfaces, and slicers as peer tools in one shared space). Unlike
// rakes there is exactly one instance of each tool in the shared
// environment, so the lock model matches steering: a single FCFS
// holder per tool. Unlike steering, however, tool state is
// frame-observable — the holder and parameters ship in every frame's
// tool section — so holder changes bump the whole-environment version
// too, or the server's whole-frame memo would serve stale holder
// bytes.

// ToolID names one shared tool; the values match the wire protocol's
// tool kinds.
type ToolID uint8

const (
	ToolIso    ToolID = 1
	ToolPlane  ToolID = 2
	ToolVortex ToolID = 3
)

// String implements fmt.Stringer for error text.
func (t ToolID) String() string {
	switch t {
	case ToolIso:
		return "iso"
	case ToolPlane:
		return "plane"
	case ToolVortex:
		return "vortex"
	}
	return fmt.Sprintf("tool(%d)", uint8(t))
}

// IsoParams are the isosurface tool's inputs: whether it renders and
// the speed level it extracts.
type IsoParams struct {
	Enabled bool
	Level   float32
}

// PlaneParams are the cutting-plane tool's inputs: whether it renders,
// the computational axis it cuts across (0=i, 1=j, 2=k), and the
// fractional position along that axis in [0,1].
type PlaneParams struct {
	Enabled bool
	Axis    uint8
	Frac    float32
}

// VortexParams are the vortex-core tool's inputs: whether it renders
// and the Q-criterion threshold the core surface is extracted at.
type VortexParams struct {
	Enabled   bool
	Threshold float32
}

// ErrToolLocked is returned when a user tries to act on a tool another
// user holds.
type ErrToolLocked struct {
	Tool   ToolID
	Holder int64
}

// Error implements error.
func (e *ErrToolLocked) Error() string {
	return fmt.Sprintf("env: %v tool held by user %d", e.Tool, e.Holder)
}

// toolLock is the per-tool FCFS holder and mutation counter. The
// version counts parameter changes only (the geometry memo key); the
// holder is versioned by the whole-environment counter instead.
type toolLock struct {
	holder  int64
	version uint64
}

// IsoState is an immutable snapshot of the isosurface tool.
type IsoState struct {
	Params  IsoParams
	Holder  int64
	Version uint64
}

// PlaneState is an immutable snapshot of the cutting-plane tool.
type PlaneState struct {
	Params  PlaneParams
	Holder  int64
	Version uint64
}

// VortexState is an immutable snapshot of the vortex-core tool.
type VortexState struct {
	Params  VortexParams
	Holder  int64
	Version uint64
}

// ToolsState snapshots all three shared tools at once.
type ToolsState struct {
	Iso    IsoState
	Plane  PlaneState
	Vortex VortexState
}

// Active reports whether any tool would appear in a frame: enabled,
// held, or ever touched. A freshly seeded-off environment is inactive,
// which keeps legacy frame bytes identical.
func (s ToolsState) Active() bool {
	return s.Iso.Params.Enabled || s.Plane.Params.Enabled || s.Vortex.Params.Enabled ||
		s.Iso.Holder != 0 || s.Plane.Holder != 0 || s.Vortex.Holder != 0 ||
		s.Iso.Version != 0 || s.Plane.Version != 0 || s.Vortex.Version != 0
}

// InitTools seeds the tool parameters without counting a change, like
// InitSteer: versions stay 0 so a seeded server's first frame is a
// pure function of the seed.
func (e *Environment) InitTools(iso IsoParams, plane PlaneParams, vortex VortexParams) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.iso = iso
	e.plane = plane
	e.vortex = vortex
}

// Tools returns a snapshot of all three shared tools.
func (e *Environment) Tools() ToolsState {
	e.mu.Lock()
	defer e.mu.Unlock()
	return ToolsState{
		Iso:    IsoState{Params: e.iso, Holder: e.isoLock.holder, Version: e.isoLock.version},
		Plane:  PlaneState{Params: e.plane, Holder: e.planeLock.holder, Version: e.planeLock.version},
		Vortex: VortexState{Params: e.vortex, Holder: e.vortexLock.holder, Version: e.vortexLock.version},
	}
}

// grabToolLocked locks a tool to a user, first come first served.
// Re-grabbing your own lock is a no-op; taking a free lock is
// frame-observable (the holder ships in the tool section) so it bumps
// the environment version.
func (e *Environment) grabToolLocked(id ToolID, l *toolLock, user int64) error {
	if l.holder != 0 && l.holder != user {
		return &ErrToolLocked{Tool: id, Holder: l.holder}
	}
	if l.holder != user {
		l.holder = user
		e.version++
	}
	return nil
}

// releaseToolLocked frees a tool lock the user holds.
func (e *Environment) releaseToolLocked(id ToolID, l *toolLock, user int64) error {
	if l.holder != user {
		return fmt.Errorf("env: user %d does not hold %v tool", user, id)
	}
	l.holder = 0
	e.version++
	return nil
}

// GrabIso locks the isosurface tool to a user.
func (e *Environment) GrabIso(user int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.grabToolLocked(ToolIso, &e.isoLock, user)
}

// ReleaseIso frees the isosurface lock the user holds.
func (e *Environment) ReleaseIso(user int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.releaseToolLocked(ToolIso, &e.isoLock, user)
}

// SetIso changes the isosurface parameters atomically; a free lock is
// implicitly grabbed-for-the-call (matching free-rake edits and
// SetSteer). A real change bumps the tool version (the geometry memo
// key) and the environment version.
func (e *Environment) SetIso(user int64, p IsoParams) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.isoLock.holder != 0 && e.isoLock.holder != user {
		return &ErrToolLocked{Tool: ToolIso, Holder: e.isoLock.holder}
	}
	if e.iso != p {
		e.iso = p
		e.isoLock.version++
		e.version++
	}
	return nil
}

// GrabPlane locks the cutting-plane tool to a user.
func (e *Environment) GrabPlane(user int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.grabToolLocked(ToolPlane, &e.planeLock, user)
}

// ReleasePlane frees the cutting-plane lock the user holds.
func (e *Environment) ReleasePlane(user int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.releaseToolLocked(ToolPlane, &e.planeLock, user)
}

// SetPlane moves the cutting plane (axis, fraction, visibility)
// atomically with implicit grab-for-call on a free lock.
func (e *Environment) SetPlane(user int64, p PlaneParams) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.planeLock.holder != 0 && e.planeLock.holder != user {
		return &ErrToolLocked{Tool: ToolPlane, Holder: e.planeLock.holder}
	}
	if e.plane != p {
		e.plane = p
		e.planeLock.version++
		e.version++
	}
	return nil
}

// SetVortex toggles the vortex-core extractor with implicit
// grab-for-call on a free lock. The vortex tool has no explicit grab
// command on the wire — toggles are one-shot — but the lock still
// exists so the FCFS contract is uniform across tools.
func (e *Environment) SetVortex(user int64, p VortexParams) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.vortexLock.holder != 0 && e.vortexLock.holder != user {
		return &ErrToolLocked{Tool: ToolVortex, Holder: e.vortexLock.holder}
	}
	if e.vortex != p {
		e.vortex = p
		e.vortexLock.version++
		e.version++
	}
	return nil
}
