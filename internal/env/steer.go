package env

import "fmt"

// SteerParams are the live flow parameters a workstation can steer:
// inlet velocity, Reynolds number, and the cylinder's tip/base taper
// ratio. Like rake geometry, they live on the remote host and all
// mutation goes through the environment.
type SteerParams struct {
	InflowU  float32
	Reynolds float32
	Taper    float32
}

// ErrSteerLocked is returned when a user tries to steer while another
// user holds the steering lock.
type ErrSteerLocked struct {
	Holder int64
}

// Error implements error.
func (e *ErrSteerLocked) Error() string {
	return fmt.Sprintf("env: steering held by user %d", e.Holder)
}

// SteerState is an immutable snapshot of the steering parameters, the
// lock holder (0 = free), and the change counter the live producer
// applies against.
type SteerState struct {
	Params  SteerParams
	Holder  int64
	Version uint64
}

// InitSteer seeds the steering parameters without counting a change:
// the producer's version stays 0 so a run nobody steers is bit-exact
// against the offline dataset.
func (e *Environment) InitSteer(p SteerParams) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.steer = p
}

// Steer returns a snapshot of the steering state.
func (e *Environment) Steer() SteerState {
	e.mu.Lock()
	defer e.mu.Unlock()
	return SteerState{Params: e.steer, Holder: e.steerHolder, Version: e.steerVersion}
}

// GrabSteer locks steering to a user, first come first served — the
// same arbitration as rake grabs. Re-grabbing your own lock is a
// no-op. Neither grab nor release is frame-observable state, so the
// whole-environment version does not move.
func (e *Environment) GrabSteer(user int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.steerHolder != 0 && e.steerHolder != user {
		return &ErrSteerLocked{Holder: e.steerHolder}
	}
	e.steerHolder = user
	return nil
}

// ReleaseSteer frees the steering lock the user holds.
func (e *Environment) ReleaseSteer(user int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.steerHolder != user {
		return fmt.Errorf("env: user %d does not hold steering", user)
	}
	e.steerHolder = 0
	return nil
}

// SetSteer changes all three steering parameters atomically; a free
// lock is implicitly grabbed-for-the-call (matching free-rake edits).
// A real change bumps both the steering version (the producer's apply
// trigger) and the whole-environment version, so Wire 2.0 delta
// shadows see a new frame version and stay byte-deterministic per
// (client, round) across the parameter flip.
func (e *Environment) SetSteer(user int64, p SteerParams) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.steerHolder != 0 && e.steerHolder != user {
		return &ErrSteerLocked{Holder: e.steerHolder}
	}
	if e.steer != p {
		e.steer = p
		e.steerVersion++
		e.version++
	}
	return nil
}
