package env

import (
	"errors"
	"testing"
)

func TestSteerFCFSLock(t *testing.T) {
	e := New(4)
	e.InitSteer(SteerParams{InflowU: 1, Reynolds: 400, Taper: 0.5})
	if v := e.Version(); v != 0 {
		t.Fatalf("InitSteer bumped the env version to %d", v)
	}
	if st := e.Steer(); st.Version != 0 || st.Holder != 0 {
		t.Fatalf("initial steer state = %+v", st)
	}

	if err := e.GrabSteer(1); err != nil {
		t.Fatal(err)
	}
	// FCFS: the second user bounces with the holder identified.
	err := e.GrabSteer(2)
	var locked *ErrSteerLocked
	if !errors.As(err, &locked) || locked.Holder != 1 {
		t.Fatalf("second grab: %v, want ErrSteerLocked{Holder:1}", err)
	}
	// Re-grabbing your own lock is fine.
	if err := e.GrabSteer(1); err != nil {
		t.Fatal(err)
	}
	// Only the holder steers.
	if err := e.SetSteer(2, SteerParams{InflowU: 2, Reynolds: 300, Taper: 1}); err == nil {
		t.Fatal("non-holder steered through the lock")
	}
	if err := e.SetSteer(1, SteerParams{InflowU: 2, Reynolds: 300, Taper: 1}); err != nil {
		t.Fatal(err)
	}
	st := e.Steer()
	if st.Version != 1 || st.Params.InflowU != 2 {
		t.Fatalf("after set: %+v", st)
	}
	if v := e.Version(); v != 1 {
		t.Fatalf("steer change must bump the env version, got %d", v)
	}
	// Setting identical params is not a change.
	if err := e.SetSteer(1, st.Params); err != nil {
		t.Fatal(err)
	}
	if got := e.Steer().Version; got != 1 {
		t.Fatalf("no-op set bumped version to %d", got)
	}

	if err := e.ReleaseSteer(2); err == nil {
		t.Fatal("non-holder released the lock")
	}
	if err := e.ReleaseSteer(1); err != nil {
		t.Fatal(err)
	}
	// Free lock: SetSteer implicitly grabs for the call.
	if err := e.SetSteer(2, SteerParams{InflowU: 3, Reynolds: 500, Taper: 0.7}); err != nil {
		t.Fatal(err)
	}
	if got := e.Steer().Version; got != 2 {
		t.Fatalf("version after free-lock set = %d, want 2", got)
	}
}

func TestSteerReleaseAllFreesLock(t *testing.T) {
	e := New(4)
	if err := e.GrabSteer(7); err != nil {
		t.Fatal(err)
	}
	before := e.Version()
	e.ReleaseAll(7) // the disconnect path
	if h := e.Steer().Holder; h != 0 {
		t.Fatalf("steering still held by %d after ReleaseAll", h)
	}
	if err := e.GrabSteer(8); err != nil {
		t.Fatalf("grab after disconnect release: %v", err)
	}
	// Lock churn is not frame-observable state.
	if v := e.Version(); v != before {
		t.Fatalf("lock-only churn moved env version %d -> %d", before, v)
	}
}
