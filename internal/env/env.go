// Package env holds the shared virtual-environment state the remote
// host owns in the distributed windtunnel: the set of rakes, who holds
// each one, dataset time control, and the head/hand poses of every
// participating user (§5.1).
//
// Because "control over all objects in the virtual environment take[s]
// place on the remote system", all mutation goes through methods here,
// invoked from dlib handlers; conflicts resolve first-come-first-
// served — "if two users grab the same rake, the user who grabbed it
// first gets control ... until the first user lets the rake go."
//
//vw:deterministic
package env

import (
	"cmp"
	"fmt"
	"slices"
	"sync"

	"repro/internal/integrate"
	"repro/internal/vmath"
)

// UserPose is one user's tracked state, rebroadcast to every
// workstation so users can see each other in the environment.
type UserPose struct {
	Head vmath.Mat4 // head position/orientation from the BOOM
	Hand vmath.Vec3 // glove position
	// Gesture is the user's recognized hand gesture (see internal/vr);
	// stored as a small int to keep env decoupled from vr.
	Gesture uint8
}

// ErrLocked is returned when a user tries to act on a rake another
// user holds.
type ErrLocked struct {
	RakeID int32
	Holder int64
}

// Error implements error.
func (e *ErrLocked) Error() string {
	return fmt.Sprintf("env: rake %d held by user %d", e.RakeID, e.Holder)
}

// rakeState pairs a rake with its lock.
type rakeState struct {
	rake   *integrate.Rake
	holder int64 // session id, 0 = free
	grab   integrate.GrabPoint
	// version counts mutations of the geometry-relevant inputs (P0,
	// P1, NumSeeds, Tool) so the server can memoize per-rake geometry.
	version uint64
}

// Environment is the authoritative shared state.
type Environment struct {
	mu sync.Mutex

	rakes    map[int32]*rakeState
	nextRake int32
	users    map[int64]UserPose
	time     TimeState
	// Live-steering state (see steer.go): the flow parameters, their
	// FCFS lock, and a change counter the in-situ producer applies
	// against. steerVersion starts at 0 = "never steered".
	steer        SteerParams
	steerHolder  int64
	steerVersion uint64
	// Shared tool state (see tools.go): the isosurface, cutting-plane,
	// and vortex-core parameters with their FCFS locks and per-tool
	// version counters. Tool versions start at 0 = "never touched".
	iso        IsoParams
	isoLock    toolLock
	plane      PlaneParams
	planeLock  toolLock
	vortex     VortexParams
	vortexLock toolLock
	// version counts every observable state change (rakes, locks,
	// poses, time). A frame computed at version V can be replayed
	// verbatim while the version holds — the server's whole-frame
	// memoization key.
	version uint64
}

// Version returns the environment's state-change counter. It increases
// on every mutation that a FrameReply could observe; equal versions
// mean the shared scene is unchanged.
func (e *Environment) Version() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.version
}

// New returns an empty environment configured for a dataset with
// numSteps timesteps.
func New(numSteps int) *Environment {
	return &Environment{
		rakes: make(map[int32]*rakeState),
		users: make(map[int64]UserPose),
		time: TimeState{
			NumSteps: numSteps,
			Speed:    1,
			Playing:  false,
			Loop:     true,
		},
	}
}

// AddRake creates a rake and returns its id.
func (e *Environment) AddRake(p0, p1 vmath.Vec3, numSeeds int, tool integrate.ToolKind) (int32, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextRake++
	r, err := integrate.NewRake(e.nextRake, p0, p1, numSeeds, tool)
	if err != nil {
		e.nextRake--
		return 0, err
	}
	e.rakes[r.ID] = &rakeState{rake: r, version: 1}
	e.version++
	return r.ID, nil
}

// RemoveRake deletes a rake; only the holder (or anyone, if free) may
// remove it.
func (e *Environment) RemoveRake(user int64, id int32) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	rs, ok := e.rakes[id]
	if !ok {
		return fmt.Errorf("env: no rake %d", id)
	}
	if rs.holder != 0 && rs.holder != user {
		return &ErrLocked{RakeID: id, Holder: rs.holder}
	}
	delete(e.rakes, id)
	e.version++
	return nil
}

// GrabRake locks a rake to a user at the given grab point. Grabbing a
// rake you already hold re-points the grab. Grabbing a held rake
// fails: first come, first served.
func (e *Environment) GrabRake(user int64, id int32, gp integrate.GrabPoint) error {
	if gp == integrate.GrabNone {
		return fmt.Errorf("env: grab with GrabNone")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	rs, ok := e.rakes[id]
	if !ok {
		return fmt.Errorf("env: no rake %d", id)
	}
	if rs.holder != 0 && rs.holder != user {
		return &ErrLocked{RakeID: id, Holder: rs.holder}
	}
	if rs.holder != user || rs.grab != gp {
		e.version++
	}
	rs.holder = user
	rs.grab = gp
	return nil
}

// ReleaseRake frees a rake the user holds.
func (e *Environment) ReleaseRake(user int64, id int32) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	rs, ok := e.rakes[id]
	if !ok {
		return fmt.Errorf("env: no rake %d", id)
	}
	if rs.holder != user {
		return fmt.Errorf("env: user %d does not hold rake %d", user, id)
	}
	rs.holder = 0
	rs.grab = integrate.GrabNone
	e.version++
	return nil
}

// ReleaseAll frees every rake — and the steering and tool locks — the
// user holds and forgets the user's pose; called when a workstation
// disconnects so its locks cannot wedge the shared session.
func (e *Environment) ReleaseAll(user int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	changed := false
	for _, rs := range e.rakes {
		if rs.holder == user {
			rs.holder = 0
			rs.grab = integrate.GrabNone
			changed = true
		}
	}
	if e.steerHolder == user {
		e.steerHolder = 0
	}
	// Tool holders ship in frames, so freeing one is a visible change.
	for _, l := range []*toolLock{&e.isoLock, &e.planeLock, &e.vortexLock} {
		if l.holder == user {
			l.holder = 0
			changed = true
		}
	}
	if _, ok := e.users[user]; ok {
		changed = true
	}
	delete(e.users, user)
	if changed {
		e.version++
	}
}

// MoveRake moves the grabbed point of a rake the user holds.
func (e *Environment) MoveRake(user int64, id int32, to vmath.Vec3) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	rs, ok := e.rakes[id]
	if !ok {
		return fmt.Errorf("env: no rake %d", id)
	}
	if rs.holder != user {
		if rs.holder == 0 {
			return fmt.Errorf("env: rake %d not grabbed", id)
		}
		return &ErrLocked{RakeID: id, Holder: rs.holder}
	}
	if err := rs.rake.MoveGrab(rs.grab, to); err != nil {
		return err
	}
	rs.version++
	e.version++
	return nil
}

// SetRakeSeeds changes the seed count of a rake the user holds (or a
// free rake).
func (e *Environment) SetRakeSeeds(user int64, id int32, numSeeds int) error {
	if numSeeds < 1 {
		return fmt.Errorf("env: seeds %d < 1", numSeeds)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	rs, ok := e.rakes[id]
	if !ok {
		return fmt.Errorf("env: no rake %d", id)
	}
	if rs.holder != 0 && rs.holder != user {
		return &ErrLocked{RakeID: id, Holder: rs.holder}
	}
	if rs.rake.NumSeeds != numSeeds {
		rs.rake.NumSeeds = numSeeds
		rs.version++
		e.version++
	}
	return nil
}

// SetRakeTool changes the visualization tool of a rake the user holds
// (or a free rake) — "The type and number of seedpoints in a
// particular rake is determined by the user" (Sec 2.1).
func (e *Environment) SetRakeTool(user int64, id int32, tool integrate.ToolKind) error {
	if tool != integrate.ToolStreamline && tool != integrate.ToolParticlePath &&
		tool != integrate.ToolStreakline {
		return fmt.Errorf("env: unknown tool %d", tool)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	rs, ok := e.rakes[id]
	if !ok {
		return fmt.Errorf("env: no rake %d", id)
	}
	if rs.holder != 0 && rs.holder != user {
		return &ErrLocked{RakeID: id, Holder: rs.holder}
	}
	if rs.rake.Tool != tool {
		rs.rake.Tool = tool
		rs.version++
		e.version++
	}
	return nil
}

// RakeSnapshot is an immutable copy of one rake's state for transfer
// to workstations.
type RakeSnapshot struct {
	Rake   integrate.Rake
	Holder int64
	Grab   integrate.GrabPoint
	// Version is the rake's mutation counter: unchanged version means
	// the geometry inputs (endpoints, seed count, tool) are unchanged.
	Version uint64
}

// Rakes returns snapshots of all rakes, ordered by id.
func (e *Environment) Rakes() []RakeSnapshot {
	return e.AppendRakes(nil)
}

// AppendRakes appends snapshots of all rakes to dst, ordered by id,
// and returns the extended slice. Passing a recycled dst[:0] lets
// per-frame callers avoid the allocation.
func (e *Environment) AppendRakes(dst []RakeSnapshot) []RakeSnapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	base := len(dst)
	for _, rs := range e.rakes {
		dst = append(dst, RakeSnapshot{
			Rake: *rs.rake, Holder: rs.holder, Grab: rs.grab, Version: rs.version,
		})
	}
	out := dst[base:]
	slices.SortFunc(out, func(a, b RakeSnapshot) int { return cmp.Compare(a.Rake.ID, b.Rake.ID) })
	return dst
}

// Rake returns a snapshot of one rake.
func (e *Environment) Rake(id int32) (RakeSnapshot, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rs, ok := e.rakes[id]
	if !ok {
		return RakeSnapshot{}, false
	}
	return RakeSnapshot{Rake: *rs.rake, Holder: rs.holder, Grab: rs.grab, Version: rs.version}, true
}

// SetUserPose records a user's tracked head and hand. Re-recording an
// identical pose is not a state change (the environment version holds,
// so the server can keep serving the memoized frame).
func (e *Environment) SetUserPose(user int64, pose UserPose) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if old, ok := e.users[user]; !ok || old != pose {
		e.version++
	}
	e.users[user] = pose
}

// UserSnapshot is one user's pose paired with their session id.
type UserSnapshot struct {
	ID   int64
	Pose UserPose
}

// Users returns the poses of all users, ordered by session id —
// sorted, like Rakes, so that two snapshots of the same state are
// identical and frames built from them encode byte-identically.
func (e *Environment) Users() []UserSnapshot {
	return e.AppendUsers(nil)
}

// AppendUsers appends a snapshot of every user to dst, ordered by
// session id, and returns the extended slice.
func (e *Environment) AppendUsers(dst []UserSnapshot) []UserSnapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	base := len(dst)
	for id, p := range e.users {
		dst = append(dst, UserSnapshot{ID: id, Pose: p})
	}
	out := dst[base:]
	slices.SortFunc(out, func(a, b UserSnapshot) int { return cmp.Compare(a.ID, b.ID) })
	return dst
}
