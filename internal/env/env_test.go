package env

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/integrate"
	"repro/internal/vmath"
)

func addRake(t *testing.T, e *Environment) int32 {
	t.Helper()
	id, err := e.AddRake(vmath.V3(0, 0, 0), vmath.V3(1, 0, 0), 5, integrate.ToolStreamline)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestAddRemoveRake(t *testing.T) {
	e := New(10)
	id := addRake(t, e)
	if len(e.Rakes()) != 1 {
		t.Fatalf("rakes = %d", len(e.Rakes()))
	}
	if err := e.RemoveRake(1, id); err != nil {
		t.Fatal(err)
	}
	if len(e.Rakes()) != 0 {
		t.Error("rake not removed")
	}
	if err := e.RemoveRake(1, id); err == nil {
		t.Error("double remove accepted")
	}
}

func TestAddRakeValidation(t *testing.T) {
	e := New(10)
	if _, err := e.AddRake(vmath.Vec3{}, vmath.Vec3{}, 0, integrate.ToolStreamline); err == nil {
		t.Error("zero-seed rake accepted")
	}
	// A failed add must not burn an id: the next rake is still id 1.
	id := addRake(t, e)
	if id != 1 {
		t.Errorf("first rake id = %d, want 1", id)
	}
}

func TestFirstComeFirstServedLocking(t *testing.T) {
	// The paper's conflict rule: grabber one wins; grabber two is
	// locked out until release; other rakes are unaffected.
	e := New(10)
	r1 := addRake(t, e)
	r2 := addRake(t, e)

	if err := e.GrabRake(1, r1, integrate.GrabCenter); err != nil {
		t.Fatal(err)
	}
	err := e.GrabRake(2, r1, integrate.GrabCenter)
	var locked *ErrLocked
	if !errors.As(err, &locked) || locked.Holder != 1 {
		t.Fatalf("second grab: %v", err)
	}
	// User 2 can still use the other rake.
	if err := e.GrabRake(2, r2, integrate.GrabEnd0); err != nil {
		t.Fatalf("other rake blocked: %v", err)
	}
	// After release, user 2 gets r1.
	if err := e.ReleaseRake(1, r1); err != nil {
		t.Fatal(err)
	}
	if err := e.GrabRake(2, r1, integrate.GrabEnd1); err != nil {
		t.Fatalf("grab after release: %v", err)
	}
}

func TestMoveRequiresHolding(t *testing.T) {
	e := New(10)
	id := addRake(t, e)
	if err := e.MoveRake(1, id, vmath.V3(5, 5, 5)); err == nil {
		t.Error("move of ungrabbed rake accepted")
	}
	if err := e.GrabRake(1, id, integrate.GrabCenter); err != nil {
		t.Fatal(err)
	}
	if err := e.MoveRake(2, id, vmath.V3(5, 5, 5)); err == nil {
		t.Error("move by non-holder accepted")
	}
	if err := e.MoveRake(1, id, vmath.V3(5, 5, 5)); err != nil {
		t.Fatal(err)
	}
	snap, ok := e.Rake(id)
	if !ok {
		t.Fatal("rake vanished")
	}
	if !snap.Rake.Center().ApproxEqual(vmath.V3(5, 5, 5), 1e-5) {
		t.Errorf("center after move = %v", snap.Rake.Center())
	}
}

func TestGrabMovesGrabPoint(t *testing.T) {
	e := New(10)
	id := addRake(t, e)
	if err := e.GrabRake(1, id, integrate.GrabEnd0); err != nil {
		t.Fatal(err)
	}
	// Same user re-grabs at a different point — allowed.
	if err := e.GrabRake(1, id, integrate.GrabEnd1); err != nil {
		t.Fatal(err)
	}
	if err := e.MoveRake(1, id, vmath.V3(9, 9, 9)); err != nil {
		t.Fatal(err)
	}
	snap, _ := e.Rake(id)
	if snap.Rake.P1 != vmath.V3(9, 9, 9) {
		t.Errorf("P1 = %v, want moved end", snap.Rake.P1)
	}
	if snap.Rake.P0 != vmath.V3(0, 0, 0) {
		t.Errorf("P0 = %v, want unmoved", snap.Rake.P0)
	}
}

func TestRemoveHeldRake(t *testing.T) {
	e := New(10)
	id := addRake(t, e)
	if err := e.GrabRake(1, id, integrate.GrabCenter); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveRake(2, id); err == nil {
		t.Error("non-holder removed held rake")
	}
	if err := e.RemoveRake(1, id); err != nil {
		t.Errorf("holder cannot remove: %v", err)
	}
}

func TestReleaseAllOnDisconnect(t *testing.T) {
	e := New(10)
	r1 := addRake(t, e)
	r2 := addRake(t, e)
	if err := e.GrabRake(1, r1, integrate.GrabCenter); err != nil {
		t.Fatal(err)
	}
	if err := e.GrabRake(1, r2, integrate.GrabCenter); err != nil {
		t.Fatal(err)
	}
	e.SetUserPose(1, UserPose{Hand: vmath.V3(1, 2, 3)})
	e.ReleaseAll(1)
	if err := e.GrabRake(2, r1, integrate.GrabCenter); err != nil {
		t.Errorf("rake still locked after ReleaseAll: %v", err)
	}
	if err := e.GrabRake(2, r2, integrate.GrabCenter); err != nil {
		t.Errorf("rake still locked after ReleaseAll: %v", err)
	}
	for _, u := range e.Users() {
		if u.ID == 1 {
			t.Error("pose survives ReleaseAll")
		}
	}
}

func TestSetRakeSeeds(t *testing.T) {
	e := New(10)
	id := addRake(t, e)
	if err := e.SetRakeSeeds(1, id, 20); err != nil {
		t.Fatal(err)
	}
	snap, _ := e.Rake(id)
	if snap.Rake.NumSeeds != 20 {
		t.Errorf("seeds = %d", snap.Rake.NumSeeds)
	}
	if err := e.SetRakeSeeds(1, id, 0); err == nil {
		t.Error("zero seeds accepted")
	}
	if err := e.GrabRake(2, id, integrate.GrabCenter); err != nil {
		t.Fatal(err)
	}
	if err := e.SetRakeSeeds(1, id, 5); err == nil {
		t.Error("non-holder changed seeds of held rake")
	}
}

func TestUserPoses(t *testing.T) {
	e := New(10)
	e.SetUserPose(1, UserPose{Hand: vmath.V3(1, 0, 0)})
	e.SetUserPose(2, UserPose{Hand: vmath.V3(2, 0, 0)})
	users := e.Users()
	if len(users) != 2 {
		t.Fatalf("users = %d", len(users))
	}
	if users[0].ID != 1 || users[1].ID != 2 {
		t.Errorf("users not sorted by id: %+v", users)
	}
	if users[1].Pose.Hand.X != 2 {
		t.Errorf("user 2 hand = %v", users[1].Pose.Hand)
	}
}

func TestRakesSortedByID(t *testing.T) {
	e := New(10)
	for i := 0; i < 5; i++ {
		addRake(t, e)
	}
	rakes := e.Rakes()
	for i := 1; i < len(rakes); i++ {
		if rakes[i].Rake.ID <= rakes[i-1].Rake.ID {
			t.Fatal("rakes not sorted")
		}
	}
}

func TestTimePlayback(t *testing.T) {
	e := New(5)
	ts := e.Time()
	if ts.Playing || ts.Speed != 1 || ts.NumSteps != 5 {
		t.Fatalf("initial time state %+v", ts)
	}
	// Paused: no movement.
	if got := e.AdvanceTime(); got.Current != 0 {
		t.Errorf("advanced while paused: %v", got.Current)
	}
	e.SetPlaying(true)
	if got := e.AdvanceTime(); got.Current != 1 {
		t.Errorf("Current = %v, want 1", got.Current)
	}
	e.SetSpeed(0.5)
	if got := e.AdvanceTime(); got.Current != 1.5 {
		t.Errorf("Current = %v, want 1.5", got.Current)
	}
	// Reverse.
	e.SetSpeed(-1)
	if got := e.AdvanceTime(); got.Current != 0.5 {
		t.Errorf("Current = %v, want 0.5", got.Current)
	}
}

func TestTimeLoopWraps(t *testing.T) {
	e := New(5) // valid times [0, 4]
	e.SetPlaying(true)
	e.SetSpeed(3)
	if err := e.SeekTime(3); err != nil {
		t.Fatal(err)
	}
	got := e.AdvanceTime()
	if got.Current != 2 { // 3 + 3 = 6 -> wrap at 4 -> 2
		t.Errorf("wrapped Current = %v, want 2", got.Current)
	}
	if !got.Playing {
		t.Error("loop mode stopped playback")
	}
	// Backward wrap.
	e.SetSpeed(-3)
	if err := e.SeekTime(1); err != nil {
		t.Fatal(err)
	}
	if got := e.AdvanceTime(); got.Current != 2 { // 1 - 3 = -2 -> +4 = 2
		t.Errorf("backward wrap = %v, want 2", got.Current)
	}
}

func TestTimeClampStops(t *testing.T) {
	e := New(5)
	e.SetLoop(false)
	e.SetPlaying(true)
	e.SetSpeed(10)
	got := e.AdvanceTime()
	if got.Current != 4 || got.Playing {
		t.Errorf("clamp: Current=%v Playing=%v, want 4/false", got.Current, got.Playing)
	}
}

func TestSeekTimeClamps(t *testing.T) {
	e := New(5)
	if err := e.SeekTime(100); err != nil {
		t.Fatal(err)
	}
	if got := e.Time().Current; got != 4 {
		t.Errorf("seek clamp high = %v", got)
	}
	if err := e.SeekTime(-3); err != nil {
		t.Fatal(err)
	}
	if got := e.Time().Current; got != 0 {
		t.Errorf("seek clamp low = %v", got)
	}
}

func TestTimeStateStep(t *testing.T) {
	ts := TimeState{Current: 2.6, NumSteps: 5}
	if ts.Step() != 3 {
		t.Errorf("Step() = %d, want 3", ts.Step())
	}
	ts.Current = -1
	if ts.Step() != 0 {
		t.Errorf("negative Step() = %d", ts.Step())
	}
	ts.Current = 99
	if ts.Step() != 4 {
		t.Errorf("overflow Step() = %d", ts.Step())
	}
}

func TestConcurrentEnvironmentAccess(t *testing.T) {
	e := New(100)
	ids := make([]int32, 8)
	for i := range ids {
		ids[i] = addRake(t, e)
	}
	var wg sync.WaitGroup
	for u := int64(1); u <= 8; u++ {
		wg.Add(1)
		go func(u int64) {
			defer wg.Done()
			for n := 0; n < 100; n++ {
				id := ids[n%len(ids)]
				if err := e.GrabRake(u, id, integrate.GrabCenter); err == nil {
					e.MoveRake(u, id, vmath.V3(float32(u), 0, 0))
					e.ReleaseRake(u, id)
				}
				e.SetUserPose(u, UserPose{Hand: vmath.V3(float32(n), 0, 0)})
				e.AdvanceTime()
				e.Rakes()
			}
		}(u)
	}
	wg.Wait()
	// All rakes must be free at the end.
	for _, snap := range e.Rakes() {
		if snap.Holder != 0 {
			t.Errorf("rake %d still held by %d", snap.Rake.ID, snap.Holder)
		}
	}
}

func TestSetRakeTool(t *testing.T) {
	e := New(10)
	id := addRake(t, e)
	if err := e.SetRakeTool(1, id, integrate.ToolStreakline); err != nil {
		t.Fatal(err)
	}
	snap, _ := e.Rake(id)
	if snap.Rake.Tool != integrate.ToolStreakline {
		t.Errorf("tool = %v", snap.Rake.Tool)
	}
	if err := e.SetRakeTool(1, id, integrate.ToolKind(99)); err == nil {
		t.Error("bogus tool accepted")
	}
	if err := e.GrabRake(2, id, integrate.GrabCenter); err != nil {
		t.Fatal(err)
	}
	if err := e.SetRakeTool(1, id, integrate.ToolStreamline); err == nil {
		t.Error("non-holder changed tool of held rake")
	}
}
