package env

import (
	"math/rand"
	"testing"

	"repro/internal/integrate"
	"repro/internal/vmath"
)

// TestRandomOpsInvariants drives the environment through thousands of
// random operations from several users and checks the structural
// invariants after every step:
//
//  1. at most one holder per rake, and a holder is always a user that
//     successfully grabbed and has not released;
//  2. playback time stays within [0, NumSteps-1];
//  3. rake ids are unique and rakes never lose their seeds.
func TestRandomOpsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	e := New(20)
	e.SetPlaying(true)

	// Model: which user we believe holds each rake.
	holder := map[int32]int64{}
	var ids []int32
	users := []int64{1, 2, 3, 4}

	for step := 0; step < 5000; step++ {
		user := users[rng.Intn(len(users))]
		switch op := rng.Intn(10); op {
		case 0: // add
			id, err := e.AddRake(randVec(rng), randVec(rng), 1+rng.Intn(10), integrate.ToolStreamline)
			if err != nil {
				t.Fatalf("add: %v", err)
			}
			ids = append(ids, id)
		case 1: // remove (maybe held)
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			err := e.RemoveRake(user, id)
			if h, held := holder[id]; held && h != user {
				if err == nil {
					t.Fatalf("step %d: user %d removed rake %d held by %d", step, user, id, h)
				}
			} else if err == nil {
				delete(holder, id)
				ids = removeID(ids, id)
			}
		case 2, 3: // grab
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			err := e.GrabRake(user, id, integrate.GrabCenter)
			if h, held := holder[id]; held && h != user {
				if err == nil {
					t.Fatalf("step %d: user %d stole rake %d from %d", step, user, id, h)
				}
			} else if err != nil {
				t.Fatalf("step %d: free grab failed: %v", step, err)
			} else {
				holder[id] = user
			}
		case 4, 5: // move
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			err := e.MoveRake(user, id, randVec(rng))
			shouldWork := holder[id] == user
			if shouldWork && err != nil {
				t.Fatalf("step %d: holder move failed: %v", step, err)
			}
			if !shouldWork && err == nil {
				t.Fatalf("step %d: non-holder move succeeded", step)
			}
		case 6: // release
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			err := e.ReleaseRake(user, id)
			if holder[id] == user {
				if err != nil {
					t.Fatalf("step %d: holder release failed: %v", step, err)
				}
				delete(holder, id)
			} else if err == nil {
				t.Fatalf("step %d: non-holder release succeeded", step)
			}
		case 7: // disconnect: all of user's locks release
			e.ReleaseAll(user)
			for id, h := range holder {
				if h == user {
					delete(holder, id)
				}
			}
		case 8: // time control
			e.SetSpeed(rng.Float32()*6 - 3)
			e.AdvanceTime()
		case 9: // seek
			e.SeekTime(rng.Float32()*40 - 10)
		}

		// Invariants.
		ts := e.Time()
		if ts.Current < 0 || ts.Current > float32(ts.NumSteps-1) {
			t.Fatalf("step %d: time %v out of [0, %d]", step, ts.Current, ts.NumSteps-1)
		}
		seen := map[int32]bool{}
		for _, snap := range e.Rakes() {
			if seen[snap.Rake.ID] {
				t.Fatalf("step %d: duplicate rake id %d", step, snap.Rake.ID)
			}
			seen[snap.Rake.ID] = true
			if snap.Rake.NumSeeds < 1 {
				t.Fatalf("step %d: rake %d lost its seeds", step, snap.Rake.ID)
			}
			if want := holder[snap.Rake.ID]; snap.Holder != want {
				t.Fatalf("step %d: rake %d holder %d, model says %d",
					step, snap.Rake.ID, snap.Holder, want)
			}
		}
	}
}

func randVec(rng *rand.Rand) vmath.Vec3 {
	return vmath.V3(rng.Float32()*20-10, rng.Float32()*20-10, rng.Float32()*20-10)
}

func removeID(ids []int32, id int32) []int32 {
	out := ids[:0]
	for _, v := range ids {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}
