package env

import (
	"errors"
	"testing"
)

func TestToolGrabFCFS(t *testing.T) {
	e := New(10)
	if err := e.GrabIso(1); err != nil {
		t.Fatal(err)
	}
	// Re-grabbing your own lock is a no-op, not an error.
	if err := e.GrabIso(1); err != nil {
		t.Fatalf("self re-grab: %v", err)
	}
	// A rival bounces with a typed error naming the holder.
	err := e.GrabIso(2)
	var locked *ErrToolLocked
	if !errors.As(err, &locked) || locked.Holder != 1 || locked.Tool != ToolIso {
		t.Fatalf("rival grab: %v", err)
	}
	// Rival parameter changes bounce too.
	if err := e.SetIso(2, IsoParams{Enabled: true, Level: 1}); err == nil {
		t.Fatal("rival SetIso accepted while held")
	}
	// The holder edits freely; release frees it for the rival.
	if err := e.SetIso(1, IsoParams{Enabled: true, Level: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := e.ReleaseIso(1); err != nil {
		t.Fatal(err)
	}
	if err := e.GrabIso(2); err != nil {
		t.Fatalf("grab after release: %v", err)
	}
	// Releasing a lock you don't hold is an error.
	if err := e.ReleaseIso(1); err == nil {
		t.Fatal("release by non-holder accepted")
	}
}

func TestToolVersionsCountParameterChanges(t *testing.T) {
	e := New(10)
	v0 := e.Tools()
	if v0.Iso.Version != 0 || v0.Plane.Version != 0 || v0.Vortex.Version != 0 {
		t.Fatalf("fresh env has nonzero tool versions: %+v", v0)
	}
	// A real change bumps exactly the touched tool's version.
	if err := e.SetIso(1, IsoParams{Enabled: true, Level: 0.5}); err != nil {
		t.Fatal(err)
	}
	v1 := e.Tools()
	if v1.Iso.Version != 1 || v1.Plane.Version != 0 {
		t.Fatalf("iso change: %+v", v1)
	}
	// Setting identical parameters is a no-op: no version bump, so the
	// server's geometry memo stays warm.
	if err := e.SetIso(1, IsoParams{Enabled: true, Level: 0.5}); err != nil {
		t.Fatal(err)
	}
	if v := e.Tools(); v.Iso.Version != 1 {
		t.Fatalf("no-op set bumped the version: %+v", v)
	}
	// Grab/release are holder changes, not parameter changes: the tool
	// version (the memo key) must not move.
	if err := e.GrabPlane(2); err != nil {
		t.Fatal(err)
	}
	if err := e.ReleasePlane(2); err != nil {
		t.Fatal(err)
	}
	if v := e.Tools(); v.Plane.Version != 0 {
		t.Fatalf("grab/release bumped the plane version: %+v", v)
	}
	// But holder changes are frame-observable: the whole-environment
	// version must move so the frame memo re-encodes.
	envBefore := e.Version()
	if err := e.GrabVortexForTest(3); err != nil {
		t.Fatal(err)
	}
	if e.Version() == envBefore {
		t.Fatal("grab did not bump the environment version")
	}
}

// GrabVortexForTest exercises the vortex lock path, which has no
// dedicated wire command (toggles are one-shot) but keeps the FCFS
// contract uniform.
func (e *Environment) GrabVortexForTest(user int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.grabToolLocked(ToolVortex, &e.vortexLock, user)
}

func TestReleaseAllFreesToolLocks(t *testing.T) {
	e := New(10)
	if err := e.GrabIso(7); err != nil {
		t.Fatal(err)
	}
	if err := e.GrabPlane(7); err != nil {
		t.Fatal(err)
	}
	if err := e.SetVortex(7, VortexParams{Enabled: true, Threshold: 0.01}); err != nil {
		t.Fatal(err)
	}
	// Another user's locks are untouched by user 7's departure.
	if err := e.GrabVortexForTest(8); err != nil {
		t.Fatal(err)
	}
	e.ReleaseAll(7)
	ts := e.Tools()
	if ts.Iso.Holder != 0 || ts.Plane.Holder != 0 {
		t.Fatalf("departure left tools held: iso=%d plane=%d", ts.Iso.Holder, ts.Plane.Holder)
	}
	if ts.Vortex.Holder != 8 {
		t.Fatalf("departure released another user's vortex lock: %d", ts.Vortex.Holder)
	}
	// Parameters survive the departure — the tool stays enabled for the
	// room, only the lock comes free.
	if !ts.Vortex.Params.Enabled || ts.Vortex.Params.Threshold != 0.01 {
		t.Fatalf("departure reset tool params: %+v", ts.Vortex.Params)
	}
}

func TestToolsActiveSticky(t *testing.T) {
	e := New(10)
	if e.Tools().Active() {
		t.Fatal("fresh environment reports active tools")
	}
	if err := e.SetIso(1, IsoParams{Enabled: true, Level: 0.5}); err != nil {
		t.Fatal(err)
	}
	if !e.Tools().Active() {
		t.Fatal("enabled tool not active")
	}
	// Disabling leaves the section active (version > 0): clients that
	// saw the tool must keep seeing its state to observe the disable.
	if err := e.SetIso(1, IsoParams{}); err != nil {
		t.Fatal(err)
	}
	if !e.Tools().Active() {
		t.Fatal("Active must be sticky once a tool was ever touched")
	}
}

func TestInitToolsSeedsWithoutVersionBump(t *testing.T) {
	e := New(10)
	e.InitTools(
		IsoParams{Enabled: true, Level: 0.8},
		PlaneParams{Enabled: true, Axis: 1, Frac: 0.5},
		VortexParams{Enabled: true, Threshold: 0.01},
	)
	ts := e.Tools()
	if !ts.Iso.Params.Enabled || ts.Iso.Params.Level != 0.8 {
		t.Fatalf("iso seed: %+v", ts.Iso)
	}
	if ts.Iso.Version != 0 || ts.Plane.Version != 0 || ts.Vortex.Version != 0 {
		t.Fatalf("seeding counted as a change: %+v", ts)
	}
	// A seeded environment is active (enabled params), so frames carry
	// the section from round one.
	if !ts.Active() {
		t.Fatal("seeded tools not active")
	}
}
