// Chaos suite: scripted, seeded fault schedules driven through
// netsim's deterministic FaultPlan, asserting the resilience the paper
// demands of the workstation/remote-host loop — a call with a deadline
// never blocks past it, a reset is survived by redial, and a dead
// connection never wedges the serial dispatch.
package dlib

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netsim"
)

// chaosSlack is the CI allowance on top of a call deadline: generous
// against scheduler noise, tiny against the "blocks forever" failure
// the suite guards against.
const chaosSlack = 2 * time.Second

// startChaosServer runs an echo server over an in-memory pipe whose
// CLIENT end executes clientPlan and whose SERVER end executes
// serverPlan (either may be empty).
func startChaosServer(t *testing.T, clientPlan, serverPlan *netsim.FaultPlan) (*Server, *Client, *netsim.FaultConn, *netsim.FaultConn) {
	t.Helper()
	a, b := net.Pipe()
	ca := clientPlan.Wrap(a)
	cb := serverPlan.Wrap(b)
	s := NewServer()
	s.Register("echo", func(_ *Ctx, p []byte) ([]byte, error) { return p, nil })
	go s.ServeConn(cb)
	c := NewClient(ca)
	t.Cleanup(func() {
		c.Close()
		cb.Close()
		s.Close()
	})
	return s, c, ca, cb
}

// TestChaosCallDeadlineBounded is the acceptance matrix: under every
// injected fault kind, Call with a deadline returns by the deadline
// (plus scheduler slack), never blocking indefinitely.
func TestChaosCallDeadlineBounded(t *testing.T) {
	const deadline = 60 * time.Millisecond
	cases := []struct {
		name       string
		clientPlan *netsim.FaultPlan
		serverPlan *netsim.FaultPlan
		// wantTimeout: the fault silences the link, so the deadline is
		// what ends the call. Otherwise any prompt transport error is
		// acceptable.
		wantTimeout bool
	}{
		{
			// The reply header is cut mid-read and never resumes: the
			// paper's stalled UltraNet transfer.
			name: "stall-mid-reply",
			clientPlan: &netsim.FaultPlan{Faults: []netsim.Fault{
				{Kind: netsim.FaultStallRead, AtOp: 2}, // 0 = stall until close
			}},
			wantTimeout: true,
		},
		{
			name: "stall-first-read",
			clientPlan: &netsim.FaultPlan{Faults: []netsim.Fault{
				{Kind: netsim.FaultStallRead, AtOp: 1},
			}},
			wantTimeout: true,
		},
		{
			// One-way partition: our frames reach the server, its
			// replies vanish.
			name: "partition-inbound",
			clientPlan: &netsim.FaultPlan{Faults: []netsim.Fault{
				{Kind: netsim.FaultDropRead, AtOp: 1},
			}},
			wantTimeout: true,
		},
		{
			// Server writes stop reaching us mid-stream.
			name: "partition-outbound-of-server",
			serverPlan: &netsim.FaultPlan{Faults: []netsim.Fault{
				{Kind: netsim.FaultDropWrite, AtOp: 1},
			}},
			wantTimeout: true,
		},
		{
			// Hard reset while the server writes the reply (server ops:
			// two reads for the call frame, then the reply write).
			name: "reset-during-reply",
			serverPlan: &netsim.FaultPlan{Faults: []netsim.Fault{
				{Kind: netsim.FaultReset, AtOp: 3},
			}},
		},
		{
			// Reply frame truncated on the wire, then the link dies.
			name: "truncate-reply",
			serverPlan: &netsim.FaultPlan{Faults: []netsim.Fault{
				{Kind: netsim.FaultTruncateWrite, AtOp: 1, KeepBytes: 5},
			}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, c, _, _ := startChaosServer(t, tc.clientPlan, tc.serverPlan)
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			start := time.Now()
			_, err := c.CallContext(ctx, "echo", []byte("probe"))
			elapsed := time.Since(start)
			if err == nil {
				t.Fatal("call succeeded through a fatal fault")
			}
			if elapsed > deadline+chaosSlack {
				t.Fatalf("call blocked %v past its %v deadline", elapsed, deadline)
			}
			if tc.wantTimeout && !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("err = %v, want DeadlineExceeded", err)
			}
		})
	}
}

// TestChaosScriptedScheduleDeterministic replays an identical op
// script against an identical plan twice and demands identical fault
// firings and identical call outcomes — the property that makes every
// other chaos scenario reproducible from its schedule.
func TestChaosScriptedScheduleDeterministic(t *testing.T) {
	type outcome struct {
		fired []netsim.FiredFault
		errs  [3]bool
	}
	run := func() outcome {
		serverPlan := &netsim.FaultPlan{Faults: []netsim.Fault{
			{Kind: netsim.FaultStallWrite, AtOp: 2, Duration: time.Millisecond},
			{Kind: netsim.FaultReset, AtOp: 7},
		}}
		_, c, _, cb := startChaosServer(t, &netsim.FaultPlan{}, serverPlan)
		c.Timeout = 500 * time.Millisecond
		var o outcome
		for i := 0; i < 3; i++ {
			_, err := c.Call("echo", []byte("x"))
			o.errs[i] = err != nil
		}
		o.fired = cb.Fired()
		return o
	}
	a, b := run(), run()
	// Each echo is 2 server reads + 2 server writes; total op 7 is the
	// second call's reply header write.
	if len(a.fired) != 2 || a.fired[1].Kind != netsim.FaultReset || a.fired[1].Op != 7 {
		t.Errorf("run A fired %+v", a.fired)
	}
	if a.errs != [3]bool{false, true, true} {
		t.Errorf("run A outcomes = %v, want call 2 and 3 failing", a.errs)
	}
	if len(a.fired) != len(b.fired) || a.errs != b.errs {
		t.Errorf("runs diverged: %+v vs %+v", a, b)
	}
	for i := range a.fired {
		if a.fired[i] != b.fired[i] {
			t.Errorf("fired[%d]: %+v vs %+v", i, a.fired[i], b.fired[i])
		}
	}
}

// TestChaosRedialSurvivesReset: a reset mid-session must cost one
// reconnect, not the session — the workstation's network process keeps
// going while the render loop draws stale geometry.
func TestChaosRedialSurvivesReset(t *testing.T) {
	s := NewServer()
	s.Register("echo", func(_ *Ctx, p []byte) ([]byte, error) { return p, nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Close()

	var dials atomic.Int64
	r := NewRedialClient(func() (net.Conn, error) {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return nil, err
		}
		if dials.Add(1) == 1 {
			// First connection dies on its third total operation.
			plan := &netsim.FaultPlan{Faults: []netsim.Fault{
				{Kind: netsim.FaultReset, AtOp: 3},
			}}
			return plan.Wrap(conn), nil
		}
		return conn, nil
	}, RedialOptions{
		BaseBackoff: time.Millisecond,
		CallTimeout: 500 * time.Millisecond,
		Idempotent:  func(string) bool { return true },
	})
	defer r.Close()

	deadline := time.Now().Add(10 * time.Second)
	var ok int
	for i := 0; i < 10 && time.Now().Before(deadline); i++ {
		out, err := r.CallIdempotent(context.Background(), "echo", []byte("n"))
		if err == nil && string(out) == "n" {
			ok++
		}
	}
	if ok != 10 {
		t.Errorf("%d/10 idempotent calls recovered; redials=%d", ok, r.Redials())
	}
	if r.Redials() < 1 {
		t.Errorf("no redial recorded despite injected reset")
	}
}

// TestChaosSeededSweep runs a seeded random fault plan against the
// redial client: whatever Chaos(seed) schedules, every call must end
// within its deadline + slack and the session must heal by the time
// the plan is exhausted.
func TestChaosSeededSweep(t *testing.T) {
	const seed = 1992 // the paper's year; any seed must work
	s := NewServer()
	s.Register("echo", func(_ *Ctx, p []byte) ([]byte, error) { return p, nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Close()

	var dials atomic.Int64
	r := NewRedialClient(func() (net.Conn, error) {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return nil, err
		}
		// Each connection draws its own deterministic schedule; later
		// connections get progressively fewer faults so the sweep
		// always converges to a healthy link.
		n := 4 - int(dials.Add(1))
		if n <= 0 {
			return conn, nil
		}
		return netsim.Chaos(seed+dials.Load(), n, 12,
			netsim.FaultReset, netsim.FaultStallRead, netsim.FaultDropRead).Wrap(conn), nil
	}, RedialOptions{
		BaseBackoff: time.Millisecond,
		MaxAttempts: 16,
		CallTimeout: 100 * time.Millisecond,
		Idempotent:  func(string) bool { return true },
	})
	defer r.Close()

	const calls = 12
	for i := 0; i < calls; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		start := time.Now()
		out, err := r.CallIdempotent(ctx, "echo", []byte{byte(i)})
		cancel()
		if elapsed := time.Since(start); elapsed > 5*time.Second+chaosSlack {
			t.Fatalf("call %d ran %v, unbounded under chaos", i, elapsed)
		}
		if err != nil {
			t.Fatalf("call %d never recovered: %v (redials=%d)", i, err, r.Redials())
		}
		if len(out) != 1 || out[0] != byte(i) {
			t.Fatalf("call %d corrupted: %v", i, out)
		}
	}
}

// TestChaosStalledClientDoesNotWedgeOthers: one client stops draining
// its socket mid-session; with write timeouts armed, a second client's
// calls keep completing — the serialized dispatch loop stays live.
func TestChaosStalledClientDoesNotWedgeOthers(t *testing.T) {
	s := NewServer()
	s.WriteTimeout = 50 * time.Millisecond
	s.IdleTimeout = time.Second
	s.Register("bulk", func(*Ctx, []byte) ([]byte, error) {
		return make([]byte, 1<<20), nil // big enough to fill kernel buffers
	})
	s.Register("echo", func(_ *Ctx, p []byte) ([]byte, error) { return p, nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Close()

	// The stalled client: raw socket that sends bulk requests and never
	// reads a byte back.
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	for i := 0; i < 4; i++ {
		writeFrame(raw, frame{kind: frameCall, id: uint64(i + 1), proc: "bulk"})
	}

	healthy, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	healthy.Timeout = 2 * time.Second
	for i := 0; i < 5; i++ {
		start := time.Now()
		out, err := healthy.Call("echo", []byte("alive"))
		if err != nil || string(out) != "alive" {
			t.Fatalf("healthy call %d failed behind stalled peer: %v", i, err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("healthy call %d took %v", i, elapsed)
		}
	}
}
