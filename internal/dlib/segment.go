package dlib

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Remote memory segments: "dlib is able to coordinate allocation and
// use of remote memory segments" (§4). Segments are server-global so
// one client can populate a dataset that every participant's calls
// then reference by handle. The windtunnel uses them to stage large
// arrays (e.g. seed tables) without resending them each call.

type segmentTable struct {
	mu   sync.Mutex
	next uint64
	segs map[uint64][]byte
}

// Built-in procedure names.
const (
	ProcAlloc       = "dlib.alloc"
	ProcFree        = "dlib.free"
	ProcWrite       = "dlib.write"
	ProcRead        = "dlib.read"
	ProcSegmentStat = "dlib.stat"
)

// maxSegment bounds one allocation (matches the frame bound).
const maxSegment = maxFrame

func (s *Server) registerMemoryProcs() {
	s.Register(ProcAlloc, procAlloc)
	s.Register(ProcFree, procFree)
	s.Register(ProcWrite, procWrite)
	s.Register(ProcRead, procRead)
	s.Register(ProcSegmentStat, procStat)
}

// SegmentBytes returns the segment's backing store for server-side
// handlers (zero-copy access to staged data). Returns nil if the
// handle is unknown.
func (s *Server) SegmentBytes(handle uint64) []byte {
	s.segments.mu.Lock()
	defer s.segments.mu.Unlock()
	return s.segments.segs[handle]
}

// alloc payload: uint64 size -> reply: uint64 handle
func procAlloc(ctx *Ctx, payload []byte) ([]byte, error) {
	if len(payload) != 8 {
		return nil, fmt.Errorf("alloc: want 8-byte size, got %d", len(payload))
	}
	size := binary.LittleEndian.Uint64(payload)
	if size == 0 || size > maxSegment {
		return nil, fmt.Errorf("alloc: bad size %d", size)
	}
	t := &ctx.Server.segments
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.segs == nil {
		t.segs = make(map[uint64][]byte)
	}
	t.next++
	h := t.next
	t.segs[h] = make([]byte, size)
	return binary.LittleEndian.AppendUint64(nil, h), nil
}

// free payload: uint64 handle
func procFree(ctx *Ctx, payload []byte) ([]byte, error) {
	if len(payload) != 8 {
		return nil, fmt.Errorf("free: want 8-byte handle, got %d", len(payload))
	}
	h := binary.LittleEndian.Uint64(payload)
	t := &ctx.Server.segments
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.segs[h]; !ok {
		return nil, fmt.Errorf("free: unknown handle %d", h)
	}
	delete(t.segs, h)
	return nil, nil
}

// write payload: uint64 handle, uint64 offset, data
func procWrite(ctx *Ctx, payload []byte) ([]byte, error) {
	if len(payload) < 16 {
		return nil, fmt.Errorf("write: short payload %d", len(payload))
	}
	h := binary.LittleEndian.Uint64(payload)
	off := binary.LittleEndian.Uint64(payload[8:])
	data := payload[16:]
	t := &ctx.Server.segments
	t.mu.Lock()
	defer t.mu.Unlock()
	seg, ok := t.segs[h]
	if !ok {
		return nil, fmt.Errorf("write: unknown handle %d", h)
	}
	if off+uint64(len(data)) > uint64(len(seg)) {
		return nil, fmt.Errorf("write: [%d, %d) exceeds segment of %d bytes",
			off, off+uint64(len(data)), len(seg))
	}
	copy(seg[off:], data)
	return nil, nil
}

// read payload: uint64 handle, uint64 offset, uint64 length -> data
func procRead(ctx *Ctx, payload []byte) ([]byte, error) {
	if len(payload) != 24 {
		return nil, fmt.Errorf("read: want 24-byte request, got %d", len(payload))
	}
	h := binary.LittleEndian.Uint64(payload)
	off := binary.LittleEndian.Uint64(payload[8:])
	n := binary.LittleEndian.Uint64(payload[16:])
	t := &ctx.Server.segments
	t.mu.Lock()
	defer t.mu.Unlock()
	seg, ok := t.segs[h]
	if !ok {
		return nil, fmt.Errorf("read: unknown handle %d", h)
	}
	if off+n > uint64(len(seg)) {
		return nil, fmt.Errorf("read: [%d, %d) exceeds segment of %d bytes", off, off+n, len(seg))
	}
	out := make([]byte, n)
	copy(out, seg[off:off+n])
	return out, nil
}

// stat payload: uint64 handle -> uint64 size
func procStat(ctx *Ctx, payload []byte) ([]byte, error) {
	if len(payload) != 8 {
		return nil, fmt.Errorf("stat: want 8-byte handle, got %d", len(payload))
	}
	h := binary.LittleEndian.Uint64(payload)
	t := &ctx.Server.segments
	t.mu.Lock()
	defer t.mu.Unlock()
	seg, ok := t.segs[h]
	if !ok {
		return nil, fmt.Errorf("stat: unknown handle %d", h)
	}
	return binary.LittleEndian.AppendUint64(nil, uint64(len(seg))), nil
}
