package dlib

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestReplyDoneHookFiresAfterWrite pins the zero-copy reply contract:
// a handler that registers ReplyDone gets exactly one callback per
// call, after the reply has shipped, and the bytes the client receives
// are the handler's (no CopyReplies interference even when the flag is
// set).
func TestReplyDoneHookFiresAfterWrite(t *testing.T) {
	srv := NewServer()
	srv.CopyReplies = true
	buf := []byte("shared-round-buffer")
	var released atomic.Int64
	srv.Register("frame", func(ctx *Ctx, _ []byte) ([]byte, error) {
		ctx.ReplyDone(func() { released.Add(1) })
		return buf, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 1; i <= 3; i++ {
		out, err := c.Call("frame", nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != string(buf) {
			t.Fatalf("reply = %q", out)
		}
		// The hook fires on the connection goroutine right after the
		// write; the client has the bytes, so it has already run (or is
		// about to) — poll briefly.
		deadline := time.Now().Add(time.Second)
		for released.Load() != int64(i) && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if got := released.Load(); got != int64(i) {
			t.Fatalf("after call %d: %d releases", i, got)
		}
	}
}

// TestReplyDoneHookSettledOnError pins that a hook registered before a
// handler error is still settled exactly once — the buffer must not
// leak a reference just because the call failed.
func TestReplyDoneHookSettledOnError(t *testing.T) {
	srv := NewServer()
	var released atomic.Int64
	srv.Register("fail", func(ctx *Ctx, _ []byte) ([]byte, error) {
		ctx.ReplyDone(func() { released.Add(1) })
		return nil, errors.New("boom")
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("fail", nil); err == nil {
		t.Fatal("error swallowed")
	}
	if got := released.Load(); got != 1 {
		t.Fatalf("releases = %d, want 1", got)
	}
}

// TestReplyDoneHookSettledOnTimeout pins the straggler path: a handler
// that outlives HandlerTimeout has its hook settled when it finally
// returns, and the hook does not bleed into the next call.
func TestReplyDoneHookSettledOnTimeout(t *testing.T) {
	srv := NewServer()
	srv.HandlerTimeout = 20 * time.Millisecond
	var released atomic.Int64
	block := make(chan struct{})
	srv.Register("slow", func(ctx *Ctx, _ []byte) ([]byte, error) {
		ctx.ReplyDone(func() { released.Add(1) })
		<-block
		return []byte("late"), nil
	})
	srv.Register("fast", func(ctx *Ctx, _ []byte) ([]byte, error) {
		return []byte("ok"), nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("slow", nil); err == nil {
		t.Fatal("timeout not reported")
	}
	if got := released.Load(); got != 0 {
		t.Fatalf("hook fired before straggler finished: %d", got)
	}
	close(block)
	// The straggler settles the hook and frees dispatch; the next call
	// proves dispatch is healthy and carries no stale hook.
	if out, err := c.Call("fast", nil); err != nil || string(out) != "ok" {
		t.Fatalf("post-straggler call: %q, %v", out, err)
	}
	deadline := time.Now().Add(time.Second)
	for released.Load() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := released.Load(); got != 1 {
		t.Fatalf("straggler releases = %d, want 1", got)
	}
}
