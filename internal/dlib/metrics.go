package dlib

import (
	"sort"
	"sync"
	"time"
)

// ProcStat is one procedure's cumulative service statistics, useful
// for the "careful study ... to determine the optimal balance of
// tasks" the paper calls for (§5.1): where the serialized server
// spends its time.
type ProcStat struct {
	Calls      int64
	Errors     int64
	Total      time.Duration
	BytesIn    int64
	BytesOut   int64
	MaxService time.Duration
}

// Mean returns the mean service time.
func (p ProcStat) Mean() time.Duration {
	if p.Calls == 0 {
		return 0
	}
	return p.Total / time.Duration(p.Calls)
}

type procMetrics struct {
	mu    sync.Mutex
	stats map[string]*ProcStat
}

func (m *procMetrics) record(proc string, dur time.Duration, in, out int, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stats == nil {
		m.stats = make(map[string]*ProcStat)
	}
	st := m.stats[proc]
	if st == nil {
		st = &ProcStat{}
		m.stats[proc] = st
	}
	st.Calls++
	if failed {
		st.Errors++
	}
	st.Total += dur
	st.BytesIn += int64(in)
	st.BytesOut += int64(out)
	if dur > st.MaxService {
		st.MaxService = dur
	}
}

// ProcStats returns a snapshot of per-procedure statistics.
func (s *Server) ProcStats() map[string]ProcStat {
	s.metrics.mu.Lock()
	defer s.metrics.mu.Unlock()
	out := make(map[string]ProcStat, len(s.metrics.stats))
	for name, st := range s.metrics.stats {
		out[name] = *st
	}
	return out
}

// ProcNames returns the known procedure names sorted by total service
// time, busiest first.
func (s *Server) ProcNames() []string {
	stats := s.ProcStats()
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		// Tie-break by name: sort.Slice is unstable and the names come
		// off a map, so equal totals (common at startup, all zero)
		// would otherwise order differently on every call.
		if ti, tj := stats[names[i]].Total, stats[names[j]].Total; ti != tj {
			return ti > tj
		}
		return names[i] < names[j]
	})
	return names
}
