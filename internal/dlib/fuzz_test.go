package dlib

import (
	"bytes"
	"testing"
)

// FuzzReadFrame hardens the wire framing against malformed peers: a
// corrupt frame must produce an error, never a panic or an absurd
// allocation.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	writeFrame(&good, frame{kind: frameCall, id: 7, proc: "vw.frame", payload: []byte("data")})
	f.Add(good.Bytes())
	var reply bytes.Buffer
	writeFrame(&reply, frame{kind: frameReply, id: 9, payload: []byte("ok")})
	f.Add(reply.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A frame that parsed must round-trip.
		var buf bytes.Buffer
		if err := writeFrame(&buf, fr); err != nil {
			t.Fatalf("reencode failed: %v", err)
		}
		back, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if back.kind != fr.kind || back.id != fr.id || back.proc != fr.proc ||
			!bytes.Equal(back.payload, fr.payload) {
			t.Fatal("frame round trip mismatch")
		}
	})
}
