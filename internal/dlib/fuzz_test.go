package dlib

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// FuzzReadFrame hardens the wire framing against malformed peers: a
// corrupt frame must produce an error, never a panic or an absurd
// allocation.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	writeFrame(&good, frame{kind: frameCall, id: 7, proc: "vw.frame", payload: []byte("data")})
	f.Add(good.Bytes())
	var reply bytes.Buffer
	writeFrame(&reply, frame{kind: frameReply, id: 9, payload: []byte("ok")})
	f.Add(reply.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A frame that parsed must round-trip.
		var buf bytes.Buffer
		if err := writeFrame(&buf, fr); err != nil {
			t.Fatalf("reencode failed: %v", err)
		}
		back, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if back.kind != fr.kind || back.id != fr.id || back.proc != fr.proc ||
			!bytes.Equal(back.payload, fr.payload) {
			t.Fatal("frame round trip mismatch")
		}
	})
}

// FuzzClientRead drives arbitrary bytes — truncated frames, oversized
// length prefixes, garbage — into a live client's deadline-aware read
// path. Whatever the "server" sends, a Call with a timeout must return
// promptly: no hang, no panic, no unbounded allocation.
func FuzzClientRead(f *testing.F) {
	var good bytes.Buffer
	writeFrame(&good, frame{kind: frameReply, id: 1, payload: []byte("ok")})
	f.Add(good.Bytes())
	f.Add(good.Bytes()[:5])                                                   // truncated mid-header
	f.Add(good.Bytes()[:len(good.Bytes())-1])                                 // truncated mid-payload
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 2, 0, 0})                            // oversized length prefix
	f.Add([]byte{13, 0, 0, 0, 3, 1, 0, 0, 0, 0, 0, 0, 0, 'b', 'o', 'o', 'm'}) // error frame
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b := net.Pipe()
		c := NewClient(a)
		c.Timeout = 200 * time.Millisecond
		defer c.Close()
		go func() {
			// Swallow the outgoing call, then impersonate the server
			// with the fuzzed bytes and hang up.
			readFrame(b)
			b.SetWriteDeadline(time.Now().Add(time.Second))
			b.Write(data)
			b.Close()
		}()
		done := make(chan struct{})
		go func() {
			defer close(done)
			// Any outcome is fine — a valid reply for id 1 succeeds,
			// everything else errors — as long as it returns.
			c.Call("probe", []byte("x"))
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("client call hung on fuzzed reply bytes")
		}
	})
}
