package dlib

import (
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
)

// RemoteError is an error returned by a remote handler, as opposed to
// a transport failure.
type RemoteError struct {
	Proc string
	Msg  string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("dlib: remote %s: %s", e.Proc, e.Msg)
}

// Handler executes one procedure. ctx carries the calling session and
// the server's persistent state. The returned bytes travel back to the
// caller.
type Handler func(ctx *Ctx, payload []byte) ([]byte, error)

// Ctx is passed to every handler invocation.
type Ctx struct {
	// Session is per-connection persistent state, surviving from call
	// to call for the life of the connection.
	Session *Session
	// Server is the owning server, giving handlers access to shared
	// state and memory segments.
	Server *Server

	// replyDone, when set by the current handler via ReplyDone, runs
	// exactly once after the server is finished with the returned
	// reply buffer. Accessed only under the serial dispatch lock or by
	// the one goroutine that took ownership of the pending hook.
	replyDone func()

	// hangup, when set by the current handler via Hangup, closes the
	// connection after this call's reply (or error) is written. Same
	// access discipline as replyDone.
	hangup bool
}

// Hangup asks the server to close this connection once the current
// call's reply (or error) has been written. The peer sees a transport
// failure on its next operation and — with a redial-capable client —
// reconnects and replays its handshake. Proxies use this to propagate
// an upstream connection loss downstream: the session state on both
// hops dies together, so the re-handshake rebuilds it coherently
// (fresh identity, fresh codec shadows, keyframe resync).
func (c *Ctx) Hangup() { c.hangup = true }

// takeHangup consumes a pending hangup request.
func (c *Ctx) takeHangup() bool {
	h := c.hangup
	c.hangup = false
	return h
}

// ReplyDone registers fn to run exactly once when the server no longer
// needs the bytes the current handler is about to return — after the
// reply write completes (or fails), or immediately if the call errors.
// A handler that registers a hook promises its buffer stays valid
// until the hook fires; in exchange the server skips the CopyReplies
// memcpy for this reply, so one encoded buffer can fan out to many
// sessions with zero per-session copies (ref-counted by the caller).
// The registration is consumed by the current call; it does not
// persist to later calls on the session.
func (c *Ctx) ReplyDone(fn func()) { c.replyDone = fn }

// FinishReply invokes and clears a registered reply hook. The server
// calls this internally; tests and benchmarks that invoke a Handler
// directly must call it after consuming the returned payload, or
// buffers the handler ref-counted for the reply will never be
// released.
func (c *Ctx) FinishReply() {
	if fn := c.replyDone; fn != nil {
		c.replyDone = nil
		fn()
	}
}

// takeReplyDone removes and returns the pending hook (nil if none).
func (c *Ctx) takeReplyDone() func() {
	fn := c.replyDone
	c.replyDone = nil
	return fn
}

// Session is the per-connection environment.
type Session struct {
	// ID identifies the connection (dense, starting at 1).
	ID int64
	// Values is arbitrary per-session handler state. Handlers run
	// serially so no locking is needed.
	Values map[string]any
}

// Server is a dlib server: a registry of procedures, a single serial
// dispatch queue, per-session state, shared state, and remote memory
// segments.
//
// Dispatch is deliberately serial across ALL clients, matching the
// paper: "The dlib calls are executed by the server in a single
// process environment as though there were only one client." That
// serialization is what makes first-come-first-served conflict
// resolution trivial for the windtunnel.
type Server struct {
	mu       sync.Mutex
	handlers map[string]Handler
	sessions map[int64]*Session
	nextSess int64
	closed   bool
	listener net.Listener
	wg       sync.WaitGroup

	// dispatchMu serializes handler execution.
	dispatchMu sync.Mutex

	// IdleTimeout, when non-zero, reaps sessions that send no call for
	// the duration: the connection is closed and OnDisconnect runs, so
	// a partitioned workstation cannot hold rake locks forever (§5.1's
	// first-come-first-served environment must not wedge on a ghost).
	IdleTimeout time.Duration
	// WriteTimeout, when non-zero, bounds each reply write; a client
	// that stops draining its socket is disconnected instead of
	// pinning the connection goroutine.
	WriteTimeout time.Duration
	// HandlerTimeout, when non-zero, bounds each handler execution:
	// the caller gets an error reply once it elapses. The runaway
	// handler keeps the serial dispatch lock until it actually returns
	// (Go cannot preempt it), but the network side stays responsive.
	HandlerTimeout time.Duration

	// Clock supplies per-call timing and the HandlerTimeout wait; nil
	// uses the wall clock. Tests inject a netsim.ManualClock so
	// timeout behavior is driven deterministically. Set before Serve.
	Clock netsim.Clock

	// CopyReplies copies each handler's reply into a per-connection
	// scratch buffer before the serial dispatch lock is released.
	// Reply writes happen outside that lock (a slow client must not
	// stall dispatch), so without the copy a handler may not reuse a
	// returned buffer — the previous reply could still be in flight on
	// another connection. With it, handlers are free to encode every
	// reply into one recycled buffer. Costs one memcpy per reply.
	//
	// A handler that registers a Ctx.ReplyDone hook opts out of the
	// copy for that reply: it keeps the buffer valid until the hook
	// fires, typically by ref-counting, and the reply ships zero-copy.
	CopyReplies bool

	reaped atomic.Int64

	// Shared is server-global state available to handlers (the shared
	// virtual environment lives here). Access it only from handlers;
	// serial dispatch makes that safe.
	Shared map[string]any

	segments segmentTable
	metrics  procMetrics

	calls atomic.Int64

	// Logf, if set, receives diagnostic messages. Defaults to silent.
	Logf func(format string, args ...any)

	// OnDisconnect, if set, runs after a session's connection closes,
	// so applications can release per-session resources (the
	// windtunnel frees the user's rake locks here). It runs on the
	// connection's goroutine, after the last call has finished.
	OnDisconnect func(sessionID int64)
}

// NewServer returns an empty server with the built-in memory-segment
// procedures registered.
func NewServer() *Server {
	s := &Server{
		handlers: make(map[string]Handler),
		sessions: make(map[int64]*Session),
		Shared:   make(map[string]any),
	}
	s.registerMemoryProcs()
	return s
}

// Register installs a handler for proc. Registering after Serve has
// started is allowed; re-registering replaces.
func (s *Server) Register(proc string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[proc] = h
}

// CallCount returns the number of calls dispatched so far.
func (s *Server) CallCount() int64 { return s.calls.Load() }

// NumSessions returns the number of live client connections.
func (s *Server) NumSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Serve accepts connections on l until Close. Each connection gets a
// session; calls from all connections funnel through one dispatch
// lock in arrival order.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("dlib: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("dlib: accept: %w", err)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// ServeConn serves a single pre-established connection (used with
// net.Pipe in tests and by in-process clients). It blocks until the
// connection closes.
func (s *Server) ServeConn(conn net.Conn) {
	s.serveConn(conn)
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	s.mu.Lock()
	s.nextSess++
	sess := &Session{ID: s.nextSess, Values: make(map[string]any)}
	s.sessions[sess.ID] = sess
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.sessions, sess.ID)
		hook := s.OnDisconnect
		s.mu.Unlock()
		if hook != nil {
			hook(sess.ID)
		}
	}()

	var writeMu sync.Mutex
	var replyScratch []byte // CopyReplies destination, reused per call
	ctx := &Ctx{Session: sess, Server: s}
	for {
		if s.IdleTimeout > 0 {
			// net.Conn deadlines are absolute wall-clock times by
			// contract; a virtual clock cannot arm them.
			conn.SetReadDeadline(time.Now().Add(s.IdleTimeout)) //vw:allow wallclock -- net.Conn deadline
		}
		f, err := readFrame(conn)
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				s.reaped.Add(1)
				if s.Logf != nil {
					s.Logf("dlib: session %d reaped after %v idle", sess.ID, s.IdleTimeout)
				}
			} else if s.Logf != nil && !errors.Is(err, net.ErrClosed) {
				s.Logf("dlib: session %d read: %v", sess.ID, err)
			}
			return
		}
		if f.kind != frameCall {
			if s.Logf != nil {
				s.Logf("dlib: session %d sent non-call frame %d", sess.ID, f.kind)
			}
			return
		}
		reply, done, hangup := s.dispatch(ctx, f, &replyScratch)
		if s.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout)) //vw:allow wallclock -- net.Conn deadline
		}
		writeMu.Lock()
		err = writeFrame(conn, reply)
		writeMu.Unlock()
		if done != nil {
			// The reply bytes are out of our hands (written or write
			// failed); release the handler's buffer either way.
			done()
		}
		if err != nil {
			if s.Logf != nil {
				s.Logf("dlib: session %d write: %v", sess.ID, err)
			}
			return
		}
		if hangup {
			if s.Logf != nil {
				s.Logf("dlib: session %d hung up by handler", sess.ID)
			}
			return
		}
	}
}

// ReapedSessions returns how many sessions the idle timeout has
// disconnected.
func (s *Server) ReapedSessions() int64 { return s.reaped.Load() }

// dispatch runs one call under the global serial lock. scratch is the
// connection-owned reply buffer used when CopyReplies is set; the copy
// into it must happen before the dispatch lock is released (see
// CopyReplies). Per-connection reuse of scratch is safe because the
// connection loop fully writes each reply before reading the next
// call.
//
// The second return value is the handler's pending ReplyDone hook when
// the reply ships zero-copy: the caller must invoke it once the reply
// bytes are no longer needed. In every other outcome (error, copy,
// timeout) dispatch settles the hook itself and returns nil. The third
// return value reports a handler Hangup request: the caller closes the
// connection after writing this reply.
func (s *Server) dispatch(ctx *Ctx, f frame, scratch *[]byte) (frame, func(), bool) {
	s.mu.Lock()
	h, ok := s.handlers[f.proc]
	s.mu.Unlock()
	if !ok {
		return frame{kind: frameError, id: f.id, payload: []byte("unknown procedure " + f.proc)}, nil, false
	}
	clk := s.clock()
	s.dispatchMu.Lock()
	s.calls.Add(1)
	start := clk.Now()

	if s.HandlerTimeout <= 0 {
		out, err := safeCall(h, ctx, f.payload)
		s.metrics.record(f.proc, clk.Now().Sub(start), len(f.payload), len(out), err != nil)
		cb := ctx.takeReplyDone()
		hang := ctx.takeHangup()
		if err != nil {
			// The reply buffer is never used; settle the hook now.
			if cb != nil {
				cb()
			}
			s.dispatchMu.Unlock()
			return frame{kind: frameError, id: f.id, payload: []byte(err.Error())}, nil, hang
		}
		if cb == nil && s.CopyReplies {
			*scratch = append((*scratch)[:0], out...)
			out = *scratch
		}
		s.dispatchMu.Unlock()
		return frame{kind: frameReply, id: f.id, payload: out}, cb, hang
	}

	// Bounded execution: run the handler aside and wait at most
	// HandlerTimeout. On expiry the caller gets an error reply now; the
	// goroutine releases the dispatch lock whenever the handler truly
	// finishes, preserving the serial-execution invariant.
	type result struct {
		out []byte
		err error
	}
	done := make(chan result, 1)
	go func() {
		out, err := safeCall(h, ctx, f.payload)
		done <- result{out, err}
	}()
	select {
	case res := <-done:
		s.metrics.record(f.proc, clk.Now().Sub(start), len(f.payload), len(res.out), res.err != nil)
		cb := ctx.takeReplyDone()
		hang := ctx.takeHangup()
		if res.err != nil {
			if cb != nil {
				cb()
			}
			s.dispatchMu.Unlock()
			return frame{kind: frameError, id: f.id, payload: []byte(res.err.Error())}, nil, hang
		}
		if cb == nil && s.CopyReplies {
			*scratch = append((*scratch)[:0], res.out...)
			res.out = *scratch
		}
		s.dispatchMu.Unlock()
		return frame{kind: frameReply, id: f.id, payload: res.out}, cb, hang
	case <-clk.After(s.HandlerTimeout):
		s.metrics.record(f.proc, clk.Now().Sub(start), len(f.payload), 0, true)
		if s.Logf != nil {
			s.Logf("dlib: %s exceeded handler timeout %v", f.proc, s.HandlerTimeout)
		}
		go func() {
			<-done // wait out the straggler, then free serial dispatch
			// The caller already got an error frame; the straggler's
			// reply buffer is discarded, so settle its hook (and any
			// hangup request) here while still holding the dispatch
			// lock.
			if cb := ctx.takeReplyDone(); cb != nil {
				cb()
			}
			ctx.takeHangup()
			s.dispatchMu.Unlock()
		}()
		return frame{kind: frameError, id: f.id,
			payload: []byte(fmt.Sprintf("%s timed out after %v", f.proc, s.HandlerTimeout))}, nil, false
	}
}

// clock returns the injected Clock, defaulting to the wall clock.
func (s *Server) clock() netsim.Clock {
	if s.Clock != nil {
		return s.Clock
	}
	return netsim.RealClock
}

// safeCall shields the server from handler panics.
func safeCall(h Handler, ctx *Ctx, payload []byte) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("handler panic: %v", r)
			log.Printf("dlib: %v", err)
		}
	}()
	return h(ctx, payload)
}

// Close stops accepting and waits for connection goroutines to drain.
// Live connections are closed by their peers failing; callers wanting
// an immediate stop should close their own client connections too.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	return err
}
