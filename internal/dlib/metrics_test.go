package dlib

import (
	"slices"
	"testing"
	"time"
)

// TestProcNamesDeterministicOrder pins the tie-break: equal totals —
// the startup norm, where every counter is zero — must order by name
// on every call, even though the names come off a map and sort.Slice
// is unstable. A monitoring page polling ProcNames must not see rows
// shuffle between refreshes.
func TestProcNamesDeterministicOrder(t *testing.T) {
	s := NewServer()
	for _, name := range []string{"vw.frame", "vw.hello", "vw.steer", "vw.whoami", "vw.hello2"} {
		s.metrics.record(name, 0, 1, 1, false)
	}
	s.metrics.record("vw.busy", time.Second, 1, 1, false)

	want := []string{"vw.busy", "vw.frame", "vw.hello", "vw.hello2", "vw.steer", "vw.whoami"}
	for i := 0; i < 50; i++ {
		if got := s.ProcNames(); !slices.Equal(got, want) {
			t.Fatalf("call %d: ProcNames = %v, want %v", i, got, want)
		}
	}
}
