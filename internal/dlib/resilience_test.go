package dlib

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestWaitReturnsStoredErrorOnClosedChannel is the regression test for
// the closed-channel path: when fail() closes the waiting channel, the
// caller must see the recorded transport error, not a zero-frame
// decode or a generic abort.
func TestWaitReturnsStoredErrorOnClosedChannel(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	c := NewClient(clientEnd)
	defer c.Close()

	callErr := make(chan error, 1)
	go func() {
		_, err := c.Call("never.answered", nil)
		callErr <- err
	}()
	// Swallow the outgoing call frame, then kill the connection: the
	// read loop fails and closes the waiting channel.
	if _, err := readFrame(serverEnd); err != nil {
		t.Fatal(err)
	}
	serverEnd.Close()

	select {
	case err := <-callErr:
		if err == nil {
			t.Fatal("call returned nil after connection death")
		}
		if !strings.Contains(err.Error(), "connection lost") {
			t.Errorf("call error = %v, want the stored connection error", err)
		}
		if stored := c.Err(); stored == nil || err.Error() != stored.Error() {
			t.Errorf("call error %q != stored client error %q", err, stored)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call never returned after connection death")
	}
}

func TestCallContextDeadline(t *testing.T) {
	s, c := startServer(t)
	release := make(chan struct{})
	s.Register("stuck", func(*Ctx, []byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	defer close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.CallContext(ctx, "stuck", nil)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("deadline call took %v", elapsed)
	}
}

func TestDefaultTimeoutField(t *testing.T) {
	s, c := startServer(t)
	release := make(chan struct{})
	s.Register("stuck", func(*Ctx, []byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	defer close(release)
	c.Timeout = 40 * time.Millisecond
	if _, err := c.Call("stuck", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded via default Timeout", err)
	}
}

func TestLateReplyAfterTimeoutIsDropped(t *testing.T) {
	// A reply landing after its call timed out must not leak into the
	// next call's result.
	s, c := startServer(t)
	var slow atomic.Bool
	slow.Store(true)
	s.Register("echo", func(_ *Ctx, p []byte) ([]byte, error) {
		if slow.Swap(false) {
			time.Sleep(80 * time.Millisecond)
		}
		return p, nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.CallContext(ctx, "echo", []byte("first")); err == nil {
		t.Fatal("slow call did not time out")
	}
	out, err := c.Call("echo", []byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "second" {
		t.Errorf("crosstalk: got %q", out)
	}
}

func TestGoContextDeadline(t *testing.T) {
	s, c := startServer(t)
	release := make(chan struct{})
	s.Register("stuck", func(*Ctx, []byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	defer close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	wait := c.GoContext(ctx, "stuck", nil)
	if _, err := wait(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestRedialReconnects(t *testing.T) {
	s, _, addr := startServerAddr(t)
	s.Register("echo", func(_ *Ctx, p []byte) ([]byte, error) { return p, nil })

	var connects atomic.Int64
	r := NewRedialClient(func() (net.Conn, error) {
		return net.Dial("tcp", addr)
	}, RedialOptions{
		BaseBackoff: time.Millisecond,
		CallTimeout: time.Second,
		Idempotent:  func(string) bool { return true }, // echo is read-only here
		OnConnect: func(*Client) error {
			connects.Add(1)
			return nil
		},
	})
	defer r.Close()

	out, err := r.Call("echo", []byte("one"))
	if err != nil || string(out) != "one" {
		t.Fatalf("first call: %q, %v", out, err)
	}
	// Kill the live connection out from under the redialer.
	r.mu.Lock()
	r.cur.conn.Close()
	r.mu.Unlock()

	// A plain Call may lose the race with the dying read loop once;
	// the idempotent path retries across the reconnect.
	out, err = r.CallIdempotent(context.Background(), "echo", []byte("two"))
	if err != nil || string(out) != "two" {
		t.Fatalf("post-kill call: %q, %v", out, err)
	}
	if got := connects.Load(); got != 2 {
		t.Errorf("OnConnect ran %d times, want 2", got)
	}
	if r.Redials() != 1 {
		t.Errorf("Redials = %d, want 1", r.Redials())
	}
}

func TestRedialGivesUpAfterMaxAttempts(t *testing.T) {
	var attempts atomic.Int64
	r := NewRedialClient(func() (net.Conn, error) {
		attempts.Add(1)
		return nil, errors.New("network unplugged")
	}, RedialOptions{BaseBackoff: time.Microsecond, MaxAttempts: 3})
	defer r.Close()
	_, err := r.Call("any", nil)
	if err == nil || !strings.Contains(err.Error(), "gave up after 3 attempts") {
		t.Fatalf("err = %v, want give-up after 3 attempts", err)
	}
	if attempts.Load() != 3 {
		t.Errorf("dial attempts = %d, want 3", attempts.Load())
	}
}

func TestRedialDoesNotRetryNonIdempotent(t *testing.T) {
	// A transport failure on a proc with side effects must surface, not
	// silently re-execute.
	var dials atomic.Int64
	r := NewRedialClient(func() (net.Conn, error) {
		dials.Add(1)
		a, b := net.Pipe()
		// Server that answers one frame then dies.
		go func() {
			f, err := readFrame(b)
			if err == nil && dials.Load() > 1 {
				writeFrame(b, frame{kind: frameReply, id: f.id, payload: []byte("ok")})
			}
			b.Close()
		}()
		return a, nil
	}, RedialOptions{BaseBackoff: time.Microsecond, CallTimeout: time.Second})
	defer r.Close()
	_, err := r.CallIdempotent(context.Background(), "mutate.state", nil)
	if err == nil {
		t.Fatal("non-idempotent call silently retried to success")
	}
}

func TestRedialOnConnectFailureRetries(t *testing.T) {
	s, _, addr := startServerAddr(t)
	s.Register("echo", func(_ *Ctx, p []byte) ([]byte, error) { return p, nil })
	var tries atomic.Int64
	r := NewRedialClient(func() (net.Conn, error) {
		return net.Dial("tcp", addr)
	}, RedialOptions{
		BaseBackoff: time.Microsecond,
		OnConnect: func(c *Client) error {
			if tries.Add(1) < 3 {
				return errors.New("handshake flake")
			}
			return nil
		},
	})
	defer r.Close()
	if _, err := r.Call("echo", []byte("x")); err != nil {
		t.Fatalf("call after flaky handshakes: %v", err)
	}
	if tries.Load() != 3 {
		t.Errorf("OnConnect tries = %d, want 3", tries.Load())
	}
}

func TestServerIdleTimeoutReapsSession(t *testing.T) {
	s := NewServer()
	s.IdleTimeout = 30 * time.Millisecond
	disconnected := make(chan int64, 1)
	s.OnDisconnect = func(id int64) { disconnected <- id }

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Close()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Send nothing: the server must reap us.
	select {
	case id := <-disconnected:
		if id != 1 {
			t.Errorf("reaped session %d, want 1", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle session never reaped")
	}
	if s.ReapedSessions() != 1 {
		t.Errorf("ReapedSessions = %d, want 1", s.ReapedSessions())
	}
}

func TestServerIdleTimeoutSparesActiveSession(t *testing.T) {
	s := NewServer()
	s.IdleTimeout = 60 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Close()
	s.Register("echo", func(_ *Ctx, p []byte) ([]byte, error) { return p, nil })
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Keep calling more often than the idle timeout for several
	// periods: the deadline must keep sliding.
	for i := 0; i < 10; i++ {
		if _, err := c.Call("echo", nil); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if s.ReapedSessions() != 0 {
		t.Errorf("active session was reaped")
	}
}

func TestServerHandlerTimeout(t *testing.T) {
	s, c := startServer(t)
	s.HandlerTimeout = 30 * time.Millisecond
	release := make(chan struct{})
	s.Register("slow", func(*Ctx, []byte) ([]byte, error) {
		<-release
		return []byte("late"), nil
	})
	s.Register("fast", func(*Ctx, []byte) ([]byte, error) { return []byte("ok"), nil })

	_, err := c.Call("slow", nil)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "timed out") {
		t.Fatalf("err = %v, want remote timeout", err)
	}
	// Let the straggler finish; dispatch must recover and serve again.
	close(release)
	out, err := c.Call("fast", nil)
	if err != nil || string(out) != "ok" {
		t.Fatalf("server wedged after handler timeout: %q, %v", out, err)
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	_, c := startServer(t)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, err := c.Call("x", nil); !errors.Is(err, ErrClientClosed) {
		t.Errorf("call after close: %v", err)
	}
}
