package dlib

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/netsim"
)

// Caller is the call surface shared by Client and RedialClient, so
// application layers (internal/client's workstation) can run over
// either a fixed connection or a self-healing one.
type Caller interface {
	Call(proc string, payload []byte) ([]byte, error)
	CallContext(ctx context.Context, proc string, payload []byte) ([]byte, error)
	Close() error
}

var (
	_ Caller = (*Client)(nil)
	_ Caller = (*RedialClient)(nil)
)

// DialFunc produces a fresh transport connection. Redial wraps it with
// backoff; tests hand out netsim fault pipes, production hands out TCP.
type DialFunc func() (net.Conn, error)

// RedialOptions tunes a RedialClient.
type RedialOptions struct {
	// BaseBackoff is the delay before the second dial attempt; each
	// failure doubles it up to MaxBackoff. Defaults 10ms / 2s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxAttempts bounds consecutive dial failures per reconnect; 0
	// means 8. When exhausted the triggering call fails, but a later
	// call starts a fresh reconnect cycle.
	MaxAttempts int
	// CallTimeout is applied to every call without its own deadline,
	// and bounds each attempt of CallIdempotent.
	CallTimeout time.Duration
	// OnConnect runs after every successful (re)dial, re-establishing
	// session state — dlib sessions are per-connection, so handshakes
	// (hello, whoami) must be replayed. A non-nil error discards the
	// connection and retries.
	OnConnect func(*Client) error
	// Idempotent reports whether a proc is safe to retry on a transport
	// failure (the call may have executed on the server). Nil allows
	// dlib's read-only segment procs only.
	Idempotent func(proc string) bool
	// Clock paces the reconnect backoff; nil uses the wall clock.
	// Chaos tests inject a netsim.ManualClock so backoff schedules are
	// replayable.
	Clock netsim.Clock
}

// withDefaults fills the zero values.
func (o RedialOptions) withDefaults() RedialOptions {
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 10 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 8
	}
	if o.Idempotent == nil {
		o.Idempotent = readOnlyProc
	}
	if o.Clock == nil {
		o.Clock = netsim.RealClock
	}
	return o
}

// readOnlyProc marks dlib's built-in side-effect-free procedures:
// segment reads and stats can retry after a reconnect without
// corrupting server state.
func readOnlyProc(proc string) bool {
	return proc == ProcRead || proc == ProcSegmentStat
}

// RedialClient is a dlib client that survives connection loss: when
// the underlying Client dies it redials with capped exponential
// backoff and replays OnConnect to rebuild session state. Safe for
// concurrent use.
type RedialClient struct {
	dial DialFunc
	opts RedialOptions

	// connectMu serializes reconnect cycles so concurrent failed calls
	// produce one dial storm, not many.
	connectMu sync.Mutex

	mu       sync.Mutex
	cur      *Client
	gen      int // increments per successful connect
	redials  int64
	attempts int64
	closed   bool
}

// NewRedialClient wraps dial. No connection is made until the first
// call (or an explicit Connect).
func NewRedialClient(dial DialFunc, opts RedialOptions) *RedialClient {
	return &RedialClient{dial: dial, opts: opts.withDefaults()}
}

// Redials returns how many successful reconnects have happened (the
// initial connect not included).
func (r *RedialClient) Redials() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.redials
}

// Connect ensures a live connection, dialing if needed.
func (r *RedialClient) Connect(ctx context.Context) error {
	_, _, err := r.client(ctx)
	return err
}

// client returns a healthy Client and its generation, reconnecting if
// the current one is dead.
func (r *RedialClient) client(ctx context.Context) (*Client, int, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, 0, ErrClientClosed
	}
	if r.cur != nil && r.cur.Err() == nil {
		c, gen := r.cur, r.gen
		r.mu.Unlock()
		return c, gen, nil
	}
	r.mu.Unlock()
	return r.reconnect(ctx)
}

// reconnect dials with capped exponential backoff until a connection
// survives OnConnect, attempts run out, or ctx expires.
func (r *RedialClient) reconnect(ctx context.Context) (*Client, int, error) {
	r.connectMu.Lock()
	defer r.connectMu.Unlock()
	// Another caller may have reconnected while we waited.
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, 0, ErrClientClosed
	}
	if r.cur != nil && r.cur.Err() == nil {
		c, gen := r.cur, r.gen
		r.mu.Unlock()
		return c, gen, nil
	}
	hadConn := r.gen > 0
	r.mu.Unlock()

	backoff := r.opts.BaseBackoff
	var lastErr error
	for attempt := 0; attempt < r.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-r.opts.Clock.After(backoff):
			case <-ctx.Done():
				return nil, 0, fmt.Errorf("dlib: redial: %w", ctx.Err())
			}
			backoff *= 2
			if backoff > r.opts.MaxBackoff {
				backoff = r.opts.MaxBackoff
			}
		}
		r.mu.Lock()
		r.attempts++
		r.mu.Unlock()
		conn, err := r.dial()
		if err != nil {
			lastErr = err
			continue
		}
		c := NewClient(conn)
		c.Timeout = r.opts.CallTimeout
		if r.opts.OnConnect != nil {
			if err := r.opts.OnConnect(c); err != nil {
				c.Close()
				lastErr = fmt.Errorf("dlib: on-connect: %w", err)
				continue
			}
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			c.Close()
			return nil, 0, ErrClientClosed
		}
		r.cur = c
		r.gen++
		if hadConn {
			r.redials++
		}
		gen := r.gen
		r.mu.Unlock()
		return c, gen, nil
	}
	if lastErr == nil {
		lastErr = errors.New("dlib: redial: no attempts")
	}
	return nil, 0, fmt.Errorf("dlib: redial gave up after %d attempts: %w",
		r.opts.MaxAttempts, lastErr)
}

// drop discards the client of generation gen so the next call
// reconnects; a newer generation is left alone.
func (r *RedialClient) drop(gen int) {
	r.mu.Lock()
	var dead *Client
	if r.gen == gen && r.cur != nil {
		dead = r.cur
		r.cur = nil
	}
	r.mu.Unlock()
	if dead != nil {
		dead.Close()
	}
}

// Call invokes proc on the current connection, dialing first if
// needed. It does NOT retry a call that failed in flight — the server
// may have executed it; use CallIdempotent for read-only procs.
func (r *RedialClient) Call(proc string, payload []byte) ([]byte, error) {
	return r.CallContext(context.Background(), proc, payload)
}

// CallContext is Call bounded by ctx.
func (r *RedialClient) CallContext(ctx context.Context, proc string, payload []byte) ([]byte, error) {
	c, gen, err := r.client(ctx)
	if err != nil {
		return nil, err
	}
	out, err := c.CallContext(ctx, proc, payload)
	if err != nil && !isRemote(err) {
		// Transport-level failure: this connection is suspect even if
		// only the deadline fired (a stalled link looks like that).
		// Drop it so the next call redials.
		r.drop(gen)
	}
	return out, err
}

// CallIdempotent invokes proc and, when proc is registered idempotent,
// retries across reconnects on transport failures until ctx expires or
// the redialer gives up. Remote errors never retry: they prove the
// server executed the call.
func (r *RedialClient) CallIdempotent(ctx context.Context, proc string, payload []byte) ([]byte, error) {
	if !r.opts.Idempotent(proc) {
		return r.CallContext(ctx, proc, payload)
	}
	var lastErr error
	for attempt := 0; attempt < r.opts.MaxAttempts; attempt++ {
		out, err := r.CallContext(ctx, proc, payload)
		if err == nil || isRemote(err) {
			return out, err
		}
		lastErr = err
		if ctx.Err() != nil || errors.Is(err, ErrClientClosed) {
			return nil, lastErr
		}
		// Loop: CallContext already dropped the dead connection, so the
		// next iteration reconnects with backoff.
	}
	return nil, fmt.Errorf("dlib: %s retries exhausted: %w", proc, lastErr)
}

// isRemote reports whether err came from the remote handler (the call
// reached the server and ran).
func isRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

// Close shuts down the current connection and stops future redials.
func (r *RedialClient) Close() error {
	r.mu.Lock()
	r.closed = true
	c := r.cur
	r.cur = nil
	r.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}
