package dlib

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Client is a dlib client connection. It is safe for concurrent use;
// calls are matched to replies by request id, so multiple goroutines
// (e.g. the workstation's render and network processes) can share one
// connection.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	waiting map[uint64]chan frame
	err     error // terminal transport error
	closed  bool
}

// Dial connects to a dlib server at addr over TCP.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dlib: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (possibly a netsim link).
func NewClient(conn net.Conn) *Client {
	c := &Client{conn: conn, waiting: make(map[uint64]chan frame)}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	for {
		f, err := readFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("dlib: connection lost: %w", err))
			return
		}
		c.mu.Lock()
		ch, ok := c.waiting[f.id]
		if ok {
			delete(c.waiting, f.id)
		}
		c.mu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// fail terminates all outstanding and future calls with err.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	waiters := c.waiting
	c.waiting = make(map[uint64]chan frame)
	c.mu.Unlock()
	for _, ch := range waiters {
		close(ch)
	}
}

// Call invokes proc with payload and blocks for the reply.
func (c *Client) Call(proc string, payload []byte) ([]byte, error) {
	ch, err := c.start(proc, payload)
	if err != nil {
		return nil, err
	}
	return c.wait(proc, ch)
}

// Go starts a call and returns a function that blocks for its result,
// letting callers overlap computation with network time (the paper's
// figure 8/9 pipelines).
func (c *Client) Go(proc string, payload []byte) func() ([]byte, error) {
	ch, err := c.start(proc, payload)
	if err != nil {
		return func() ([]byte, error) { return nil, err }
	}
	var once sync.Once
	var out []byte
	var resErr error
	return func() ([]byte, error) {
		once.Do(func() { out, resErr = c.wait(proc, ch) })
		return out, resErr
	}
}

func (c *Client) start(proc string, payload []byte) (chan frame, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("dlib: client closed")
	}
	c.nextID++
	id := c.nextID
	ch := make(chan frame, 1)
	c.waiting[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := writeFrame(c.conn, frame{kind: frameCall, id: id, proc: proc, payload: payload})
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.waiting, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("dlib: send %s: %w", proc, err)
	}
	return ch, nil
}

func (c *Client) wait(proc string, ch chan frame) ([]byte, error) {
	f, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = errors.New("dlib: call aborted")
		}
		return nil, err
	}
	switch f.kind {
	case frameReply:
		return f.payload, nil
	case frameError:
		return nil, &RemoteError{Proc: proc, Msg: string(f.payload)}
	default:
		return nil, fmt.Errorf("dlib: unexpected reply frame type %d", f.kind)
	}
}

// Close shuts the connection down; outstanding calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

// Remote memory segment convenience wrappers.

// Alloc allocates a remote segment of size bytes and returns its
// handle.
func (c *Client) Alloc(size uint64) (uint64, error) {
	out, err := c.Call(ProcAlloc, binary.LittleEndian.AppendUint64(nil, size))
	if err != nil {
		return 0, err
	}
	if len(out) != 8 {
		return 0, fmt.Errorf("dlib: alloc reply of %d bytes", len(out))
	}
	return binary.LittleEndian.Uint64(out), nil
}

// Free releases a remote segment.
func (c *Client) Free(handle uint64) error {
	_, err := c.Call(ProcFree, binary.LittleEndian.AppendUint64(nil, handle))
	return err
}

// WriteSegment writes data at offset into the remote segment.
func (c *Client) WriteSegment(handle, offset uint64, data []byte) error {
	req := make([]byte, 0, 16+len(data))
	req = binary.LittleEndian.AppendUint64(req, handle)
	req = binary.LittleEndian.AppendUint64(req, offset)
	req = append(req, data...)
	_, err := c.Call(ProcWrite, req)
	return err
}

// ReadSegment reads n bytes at offset from the remote segment.
func (c *Client) ReadSegment(handle, offset, n uint64) ([]byte, error) {
	req := make([]byte, 0, 24)
	req = binary.LittleEndian.AppendUint64(req, handle)
	req = binary.LittleEndian.AppendUint64(req, offset)
	req = binary.LittleEndian.AppendUint64(req, n)
	return c.Call(ProcRead, req)
}

// SegmentSize returns the size of the remote segment.
func (c *Client) SegmentSize(handle uint64) (uint64, error) {
	out, err := c.Call(ProcSegmentStat, binary.LittleEndian.AppendUint64(nil, handle))
	if err != nil {
		return 0, err
	}
	if len(out) != 8 {
		return 0, fmt.Errorf("dlib: stat reply of %d bytes", len(out))
	}
	return binary.LittleEndian.Uint64(out), nil
}
