package dlib

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrClientClosed is returned by calls started after Close.
var ErrClientClosed = errors.New("dlib: client closed")

// errAborted is the fallback when a call dies without a recorded
// transport error (should not happen in practice).
var errAborted = errors.New("dlib: call aborted")

// Client is a dlib client connection. It is safe for concurrent use;
// calls are matched to replies by request id, so multiple goroutines
// (e.g. the workstation's render and network processes) can share one
// connection.
type Client struct {
	conn net.Conn

	// Timeout, when non-zero, bounds every Call/Go that is not already
	// carrying a context deadline. §1.2 demands the full command loop
	// complete in 1/8 s; a client that can block forever on a stalled
	// link (the UltraNet of §5.1) can never meet that.
	Timeout time.Duration

	writeMu sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	waiting map[uint64]chan frame
	err     error // terminal transport error
	closed  bool
}

// Dial connects to a dlib server at addr over TCP.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dlib: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (possibly a netsim link).
func NewClient(conn net.Conn) *Client {
	c := &Client{conn: conn, waiting: make(map[uint64]chan frame)}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	for {
		f, err := readFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("dlib: connection lost: %w", err))
			return
		}
		c.mu.Lock()
		ch, ok := c.waiting[f.id]
		if ok {
			delete(c.waiting, f.id)
		}
		c.mu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// fail terminates all outstanding and future calls with err.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	waiters := c.waiting
	c.waiting = make(map[uint64]chan frame)
	c.mu.Unlock()
	for _, ch := range waiters {
		close(ch)
	}
}

// Err returns the terminal transport error, or nil while the
// connection is healthy. A non-nil result means every future call will
// fail; redial-capable callers use this to decide to reconnect.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if c.closed {
		return ErrClientClosed
	}
	return nil
}

// callCtx applies the default Timeout when ctx carries no deadline.
func (c *Client) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, has := ctx.Deadline(); !has && c.Timeout > 0 {
		return context.WithTimeout(ctx, c.Timeout)
	}
	return ctx, func() {}
}

// Call invokes proc with payload and blocks for the reply, bounded by
// the client's default Timeout (if set).
func (c *Client) Call(proc string, payload []byte) ([]byte, error) {
	return c.CallContext(context.Background(), proc, payload)
}

// CallContext invokes proc with payload and blocks for the reply or
// the context. On expiry it returns ctx's error and abandons the call;
// a late reply is discarded by the read loop. The deadline bounds the
// caller even when the transport is wedged by a stall or partition —
// the blocked read stays behind on its goroutine and dies with the
// connection.
func (c *Client) CallContext(ctx context.Context, proc string, payload []byte) ([]byte, error) {
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	id, ch, err := c.start(proc, payload)
	if err != nil {
		return nil, err
	}
	return c.wait(ctx, proc, id, ch)
}

// Go starts a call and returns a function that blocks for its result,
// letting callers overlap computation with network time (the paper's
// figure 8/9 pipelines).
func (c *Client) Go(proc string, payload []byte) func() ([]byte, error) {
	return c.GoContext(context.Background(), proc, payload)
}

// GoContext is Go with a context bounding the eventual wait.
func (c *Client) GoContext(ctx context.Context, proc string, payload []byte) func() ([]byte, error) {
	id, ch, err := c.start(proc, payload)
	if err != nil {
		return func() ([]byte, error) { return nil, err }
	}
	var once sync.Once
	var out []byte
	var resErr error
	return func() ([]byte, error) {
		once.Do(func() {
			wctx, cancel := c.callCtx(ctx)
			defer cancel()
			out, resErr = c.wait(wctx, proc, id, ch)
		})
		return out, resErr
	}
}

func (c *Client) start(proc string, payload []byte) (uint64, chan frame, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, nil, err
	}
	if c.closed {
		c.mu.Unlock()
		return 0, nil, ErrClientClosed
	}
	c.nextID++
	id := c.nextID
	ch := make(chan frame, 1)
	c.waiting[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := writeFrame(c.conn, frame{kind: frameCall, id: id, proc: proc, payload: payload})
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.waiting, id)
		c.mu.Unlock()
		return 0, nil, fmt.Errorf("dlib: send %s: %w", proc, err)
	}
	return id, ch, nil
}

// wait blocks for the reply frame, the context, or connection failure.
// When fail() closes the waiting channel, the stored transport error —
// not a zero frame — is what the caller sees.
func (c *Client) wait(ctx context.Context, proc string, id uint64, ch chan frame) ([]byte, error) {
	var f frame
	var ok bool
	select {
	case f, ok = <-ch:
	case <-ctx.Done():
		// Abandon the call: deregister so a late reply is dropped. The
		// reply may already be in flight on the buffered channel; prefer
		// it, since the work was done.
		c.mu.Lock()
		delete(c.waiting, id)
		c.mu.Unlock()
		select {
		case f, ok = <-ch:
			if !ok {
				return nil, c.abortErr()
			}
		default:
			return nil, fmt.Errorf("dlib: call %s: %w", proc, ctx.Err())
		}
	}
	if !ok {
		return nil, c.abortErr()
	}
	switch f.kind {
	case frameReply:
		return f.payload, nil
	case frameError:
		return nil, &RemoteError{Proc: proc, Msg: string(f.payload)}
	default:
		return nil, fmt.Errorf("dlib: unexpected reply frame type %d", f.kind)
	}
}

// abortErr is the error for a call whose waiting channel was closed by
// fail().
func (c *Client) abortErr() error {
	c.mu.Lock()
	err := c.err
	c.mu.Unlock()
	if err == nil {
		err = errAborted
	}
	return err
}

// Close shuts the connection down; outstanding calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

// Remote memory segment convenience wrappers.

// Alloc allocates a remote segment of size bytes and returns its
// handle.
func (c *Client) Alloc(size uint64) (uint64, error) {
	out, err := c.Call(ProcAlloc, binary.LittleEndian.AppendUint64(nil, size))
	if err != nil {
		return 0, err
	}
	if len(out) != 8 {
		return 0, fmt.Errorf("dlib: alloc reply of %d bytes", len(out))
	}
	return binary.LittleEndian.Uint64(out), nil
}

// Free releases a remote segment.
func (c *Client) Free(handle uint64) error {
	_, err := c.Call(ProcFree, binary.LittleEndian.AppendUint64(nil, handle))
	return err
}

// WriteSegment writes data at offset into the remote segment.
func (c *Client) WriteSegment(handle, offset uint64, data []byte) error {
	req := make([]byte, 0, 16+len(data))
	req = binary.LittleEndian.AppendUint64(req, handle)
	req = binary.LittleEndian.AppendUint64(req, offset)
	req = append(req, data...)
	_, err := c.Call(ProcWrite, req)
	return err
}

// ReadSegment reads n bytes at offset from the remote segment.
func (c *Client) ReadSegment(handle, offset, n uint64) ([]byte, error) {
	req := make([]byte, 0, 24)
	req = binary.LittleEndian.AppendUint64(req, handle)
	req = binary.LittleEndian.AppendUint64(req, offset)
	req = binary.LittleEndian.AppendUint64(req, n)
	return c.Call(ProcRead, req)
}

// SegmentSize returns the size of the remote segment.
func (c *Client) SegmentSize(handle uint64) (uint64, error) {
	out, err := c.Call(ProcSegmentStat, binary.LittleEndian.AppendUint64(nil, handle))
	if err != nil {
		return 0, err
	}
	if len(out) != 8 {
		return 0, fmt.Errorf("dlib: stat reply of %d bytes", len(out))
	}
	return binary.LittleEndian.Uint64(out), nil
}
