package dlib

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// startServer launches a server on loopback TCP and returns it with a
// connected client. Cleanup tears both down.
func startServer(t *testing.T) (*Server, *Client) {
	s, c, _ := startServerAddr(t)
	return s, c
}

func startServerAddr(t *testing.T) (*Server, *Client, string) {
	t.Helper()
	s := NewServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	addr := ln.Addr().String()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		s.Close()
	})
	return s, c, addr
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := frame{kind: frameCall, id: 42, proc: "echo", payload: []byte("payload")}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.kind != in.kind || out.id != in.id || out.proc != in.proc || !bytes.Equal(out.payload, in.payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},
		{1, 2},
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}, // absurd length
		{3, 0, 0, 0, 1, 2, 3},                // length < minimum
	}
	for i, c := range cases {
		if _, err := readFrame(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBasicCall(t *testing.T) {
	s, c := startServer(t)
	s.Register("echo", func(_ *Ctx, p []byte) ([]byte, error) {
		return p, nil
	})
	out, err := c.Call("echo", []byte("windtunnel"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "windtunnel" {
		t.Errorf("echo = %q", out)
	}
	if s.CallCount() != 1 {
		t.Errorf("CallCount = %d", s.CallCount())
	}
}

func TestUnknownProc(t *testing.T) {
	_, c := startServer(t)
	_, err := c.Call("no.such.proc", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
}

func TestHandlerError(t *testing.T) {
	s, c := startServer(t)
	s.Register("fail", func(*Ctx, []byte) ([]byte, error) {
		return nil, fmt.Errorf("deliberate failure")
	})
	_, err := c.Call("fail", nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "deliberate failure" {
		t.Fatalf("err = %v", err)
	}
}

func TestHandlerPanicIsContained(t *testing.T) {
	s, c := startServer(t)
	s.Register("boom", func(*Ctx, []byte) ([]byte, error) {
		panic("kaboom")
	})
	if _, err := c.Call("boom", nil); err == nil {
		t.Fatal("panic handler returned success")
	}
	// The server must still be alive.
	s.Register("ok", func(*Ctx, []byte) ([]byte, error) { return []byte("y"), nil })
	out, err := c.Call("ok", nil)
	if err != nil || string(out) != "y" {
		t.Fatalf("server dead after panic: %v %q", err, out)
	}
}

func TestSessionStatePersistsAcrossCalls(t *testing.T) {
	// The defining dlib property: "a conversation of arbitrary length
	// within a single context" with state persisting call to call.
	s, c := startServer(t)
	s.Register("incr", func(ctx *Ctx, _ []byte) ([]byte, error) {
		n, _ := ctx.Session.Values["count"].(int)
		n++
		ctx.Session.Values["count"] = n
		return binary.LittleEndian.AppendUint64(nil, uint64(n)), nil
	})
	for want := 1; want <= 5; want++ {
		out, err := c.Call("incr", nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint64(out); got != uint64(want) {
			t.Fatalf("call %d returned %d", want, got)
		}
	}
}

func TestSessionsAreIsolated(t *testing.T) {
	s, c1, addr := startServerAddr(t)
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	s.Register("incr", func(ctx *Ctx, _ []byte) ([]byte, error) {
		n, _ := ctx.Session.Values["count"].(int)
		n++
		ctx.Session.Values["count"] = n
		return binary.LittleEndian.AppendUint64(nil, uint64(n)), nil
	})
	for i := 0; i < 3; i++ {
		if _, err := c1.Call("incr", nil); err != nil {
			t.Fatal(err)
		}
	}
	out, err := c2.Call("incr", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(out); got != 1 {
		t.Errorf("second session count = %d, want 1 (leaked state)", got)
	}
}

func TestSharedStateAcrossSessions(t *testing.T) {
	s, c1, addr := startServerAddr(t)
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	s.Register("shared.incr", func(ctx *Ctx, _ []byte) ([]byte, error) {
		n, _ := ctx.Server.Shared["count"].(int)
		n++
		ctx.Server.Shared["count"] = n
		return binary.LittleEndian.AppendUint64(nil, uint64(n)), nil
	})
	if _, err := c1.Call("shared.incr", nil); err != nil {
		t.Fatal(err)
	}
	out, err := c2.Call("shared.incr", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(out); got != 2 {
		t.Errorf("shared count from session 2 = %d, want 2", got)
	}
}

func TestSerialDispatchOrder(t *testing.T) {
	// Calls from multiple clients execute one at a time: a slow call
	// must fully finish before the next begins.
	s, c1, addr := startServerAddr(t)
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	var mu sync.Mutex
	var active, maxActive int
	handler := func(*Ctx, []byte) ([]byte, error) {
		mu.Lock()
		active++
		if active > maxActive {
			maxActive = active
		}
		mu.Unlock()
		time.Sleep(5 * time.Millisecond)
		mu.Lock()
		active--
		mu.Unlock()
		return nil, nil
	}
	s.Register("slow", handler)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		for _, c := range []*Client{c1, c2} {
			wg.Add(1)
			go func(c *Client) {
				defer wg.Done()
				if _, err := c.Call("slow", nil); err != nil {
					t.Error(err)
				}
			}(c)
		}
	}
	wg.Wait()
	if maxActive != 1 {
		t.Errorf("max concurrent handlers = %d, want 1 (serial dispatch)", maxActive)
	}
}

func TestConcurrentCallsOneClient(t *testing.T) {
	s, c := startServer(t)
	s.Register("double", func(_ *Ctx, p []byte) ([]byte, error) {
		v := binary.LittleEndian.Uint64(p)
		return binary.LittleEndian.AppendUint64(nil, v*2), nil
	})
	var wg sync.WaitGroup
	for i := 1; i <= 32; i++ {
		wg.Add(1)
		go func(i uint64) {
			defer wg.Done()
			out, err := c.Call("double", binary.LittleEndian.AppendUint64(nil, i))
			if err != nil {
				t.Error(err)
				return
			}
			if got := binary.LittleEndian.Uint64(out); got != 2*i {
				t.Errorf("double(%d) = %d", i, got)
			}
		}(uint64(i))
	}
	wg.Wait()
}

func TestGoOverlapsCalls(t *testing.T) {
	s, c := startServer(t)
	s.Register("sleepy", func(*Ctx, []byte) ([]byte, error) {
		time.Sleep(20 * time.Millisecond)
		return []byte("z"), nil
	})
	start := time.Now()
	wait := c.Go("sleepy", nil)
	// Do "local work" while the remote call is in flight.
	time.Sleep(15 * time.Millisecond)
	out, err := wait()
	if err != nil || string(out) != "z" {
		t.Fatalf("async result: %v %q", err, out)
	}
	// Total should be ~20ms (overlapped), not ~35ms.
	if elapsed := time.Since(start); elapsed > 33*time.Millisecond {
		t.Errorf("no overlap: elapsed %v", elapsed)
	}
}

func TestClientFailsAfterServerGone(t *testing.T) {
	s, c := startServer(t)
	s.Register("echo", func(_ *Ctx, p []byte) ([]byte, error) { return p, nil })
	if _, err := c.Call("echo", nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	c.conn.Close()
	if _, err := c.Call("echo", nil); err == nil {
		t.Error("call succeeded after connection closed")
	}
}

func TestMemorySegments(t *testing.T) {
	_, c := startServer(t)
	h, err := c.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if size, err := c.SegmentSize(h); err != nil || size != 64 {
		t.Fatalf("SegmentSize = %d, %v", size, err)
	}
	if err := c.WriteSegment(h, 8, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	out, err := c.ReadSegment(h, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "hello" {
		t.Errorf("segment read = %q", out)
	}
	// Bounds violations fail.
	if err := c.WriteSegment(h, 62, []byte("xyz")); err == nil {
		t.Error("overflow write accepted")
	}
	if _, err := c.ReadSegment(h, 60, 10); err == nil {
		t.Error("overflow read accepted")
	}
	if err := c.Free(h); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadSegment(h, 0, 1); err == nil {
		t.Error("read after free accepted")
	}
	if err := c.Free(h); err == nil {
		t.Error("double free accepted")
	}
}

func TestSegmentsSharedBetweenSessions(t *testing.T) {
	_, c1, addr := startServerAddr(t)
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	h, err := c1.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.WriteSegment(h, 0, []byte("shared data!")); err != nil {
		t.Fatal(err)
	}
	out, err := c2.ReadSegment(h, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "shared data!" {
		t.Errorf("cross-session read = %q", out)
	}
}

func TestAllocValidation(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.Alloc(0); err == nil {
		t.Error("zero alloc accepted")
	}
	if _, err := c.Alloc(uint64(maxSegment) + 1); err == nil {
		t.Error("oversized alloc accepted")
	}
}

func TestNumSessions(t *testing.T) {
	s, _, addr := startServerAddr(t)
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	// Sessions are registered on the server goroutine; poll briefly.
	deadline := time.Now().Add(time.Second)
	for s.NumSessions() != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.NumSessions(); got != 2 {
		t.Fatalf("NumSessions = %d, want 2", got)
	}
	c2.Close()
	for s.NumSessions() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.NumSessions(); got != 1 {
		t.Errorf("NumSessions after close = %d, want 1", got)
	}
}

func BenchmarkCallSmall(b *testing.B) {
	s := NewServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Close()
	s.Register("echo", func(_ *Ctx, p []byte) ([]byte, error) { return p, nil })
	c, err := Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := []byte("0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call("echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCall120KB(b *testing.B) {
	// Table 1's 10,000-particle row: 120,000 bytes per frame.
	s := NewServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Close()
	payload := make([]byte, 120000)
	s.Register("points", func(*Ctx, []byte) ([]byte, error) { return payload, nil })
	c, err := Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.SetBytes(120000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call("points", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestProcStats(t *testing.T) {
	s, c := startServer(t)
	s.Register("work", func(_ *Ctx, p []byte) ([]byte, error) {
		time.Sleep(2 * time.Millisecond)
		return append(p, p...), nil
	})
	s.Register("fail", func(*Ctx, []byte) ([]byte, error) {
		return nil, errors.New("nope")
	})
	for i := 0; i < 3; i++ {
		if _, err := c.Call("work", []byte("abcd")); err != nil {
			t.Fatal(err)
		}
	}
	c.Call("fail", nil)
	stats := s.ProcStats()
	w := stats["work"]
	if w.Calls != 3 || w.Errors != 0 {
		t.Errorf("work stats %+v", w)
	}
	if w.BytesIn != 12 || w.BytesOut != 24 {
		t.Errorf("work bytes in=%d out=%d", w.BytesIn, w.BytesOut)
	}
	if w.Mean() < time.Millisecond || w.MaxService < w.Mean() {
		t.Errorf("work timing mean=%v max=%v", w.Mean(), w.MaxService)
	}
	f := stats["fail"]
	if f.Calls != 1 || f.Errors != 1 {
		t.Errorf("fail stats %+v", f)
	}
	names := s.ProcNames()
	if len(names) < 2 || names[0] != "work" {
		t.Errorf("ProcNames = %v, want work first (busiest)", names)
	}
}
