// Package dlib reimplements the Distributed Library of §4
// (Gerald-Yamasaki, RNR-90-008): a remote-procedure-call system whose
// server process keeps persistent state across calls — "dlib more
// closely resembles the extension of the process environment to
// include the server process" — including remote memory segments, and
// which serves multiple clients by executing their calls serially "in
// a single process environment as though there were only one client."
//
//vw:deterministic
//vw:wire
package dlib

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire format (little-endian):
//
//	uint32  length of the rest of the frame
//	uint8   frame type
//	uint64  request id
//	call:   uint16 proc name length, proc name, payload
//	reply:  payload
//	error:  error string
const (
	frameCall  = 1
	frameReply = 2
	frameError = 3

	// maxFrame bounds a single call/reply. 100,000 points at 12 bytes
	// is 1.2 MB (Table 1's largest row); 64 MB leaves generous
	// headroom for full-timestep transfers.
	maxFrame = 64 << 20
)

type frame struct {
	kind    uint8
	id      uint64
	proc    string // calls only
	payload []byte // calls and replies; error text for errors
}

// writeFrame marshals and writes one frame. The caller serializes
// access to w.
func writeFrame(w io.Writer, f frame) error {
	procLen := 0
	if f.kind == frameCall {
		procLen = 2 + len(f.proc)
	}
	body := 1 + 8 + procLen + len(f.payload)
	if body > maxFrame {
		return fmt.Errorf("dlib: frame of %d bytes exceeds limit %d", body, maxFrame)
	}
	hdr := make([]byte, 0, 4+1+8+procLen)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(body))
	hdr = append(hdr, f.kind)
	hdr = binary.LittleEndian.AppendUint64(hdr, f.id)
	if f.kind == frameCall {
		hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(f.proc)))
		hdr = append(hdr, f.proc...)
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(f.payload) > 0 {
		if _, err := w.Write(f.payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame.
func readFrame(r io.Reader) (frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return frame{}, err
	}
	body := binary.LittleEndian.Uint32(lenBuf[:])
	if body < 9 || body > maxFrame {
		return frame{}, fmt.Errorf("dlib: bad frame length %d", body)
	}
	buf := make([]byte, body)
	if _, err := io.ReadFull(r, buf); err != nil {
		return frame{}, fmt.Errorf("dlib: short frame: %w", err)
	}
	f := frame{kind: buf[0], id: binary.LittleEndian.Uint64(buf[1:9])}
	rest := buf[9:]
	switch f.kind {
	case frameCall:
		if len(rest) < 2 {
			return frame{}, fmt.Errorf("dlib: call frame missing proc name")
		}
		nameLen := int(binary.LittleEndian.Uint16(rest))
		rest = rest[2:]
		if nameLen > len(rest) {
			return frame{}, fmt.Errorf("dlib: proc name length %d exceeds frame", nameLen)
		}
		f.proc = string(rest[:nameLen])
		f.payload = rest[nameLen:]
	case frameReply, frameError:
		f.payload = rest
	default:
		return frame{}, fmt.Errorf("dlib: unknown frame type %d", f.kind)
	}
	return f, nil
}
