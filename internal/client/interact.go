package client

import (
	"repro/internal/integrate"
	"repro/internal/vmath"
	"repro/internal/vr"
	"repro/internal/wire"
)

// Interactor turns glove state into rake commands: making a fist near
// a rake grabs it at the nearest grab point (center or either end),
// holding the fist drags the grabbed point with the hand, opening the
// hand releases. The server still arbitrates conflicts; this only
// decides what this user is trying to do.
type Interactor struct {
	// GrabRadius is how close the hand must be to a grab point.
	// Zero uses 1.0 world units.
	GrabRadius float32

	holding  bool
	heldRake int32
	wasFist  bool
}

func (in *Interactor) radius() float32 {
	if in.GrabRadius > 0 {
		return in.GrabRadius
	}
	return 1.0
}

// Commands returns the commands implied by this frame's pose given the
// latest known rake set.
func (in *Interactor) Commands(pose vr.Pose, rakes []wire.RakeState) []wire.Command {
	fist := pose.Gesture == vr.GestureFist
	defer func() { in.wasFist = fist }()

	switch {
	case fist && !in.wasFist && !in.holding:
		// Fist just closed: try to grab the nearest grab point.
		rakeID, grab, dist := nearestGrab(pose.Hand, rakes)
		if rakeID == 0 || dist > in.radius() {
			return nil
		}
		in.holding = true
		in.heldRake = rakeID
		return []wire.Command{
			{Kind: wire.CmdGrab, Rake: rakeID, Grab: uint8(grab)},
			{Kind: wire.CmdMove, Rake: rakeID, Pos: pose.Hand},
		}
	case fist && in.holding:
		// Drag.
		return []wire.Command{{Kind: wire.CmdMove, Rake: in.heldRake, Pos: pose.Hand}}
	case !fist && in.holding:
		// Open hand: release.
		id := in.heldRake
		in.holding = false
		in.heldRake = 0
		return []wire.Command{{Kind: wire.CmdRelease, Rake: id}}
	default:
		return nil
	}
}

// Holding reports whether the interactor believes it holds a rake.
func (in *Interactor) Holding() (int32, bool) { return in.heldRake, in.holding }

// nearestGrab finds the closest grab point across all rakes.
func nearestGrab(hand vmath.Vec3, rakes []wire.RakeState) (int32, integrate.GrabPoint, float32) {
	var bestID int32
	bestGrab := integrate.GrabNone
	bestDist := float32(1e30)
	for _, rk := range rakes {
		r := integrate.Rake{ID: rk.ID, P0: rk.P0, P1: rk.P1, NumSeeds: int(rk.NumSeeds)}
		gp, d := r.NearestGrab(hand)
		if d < bestDist {
			bestID, bestGrab, bestDist = rk.ID, gp, d
		}
	}
	return bestID, bestGrab, bestDist
}
