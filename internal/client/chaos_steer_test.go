// Chaos: live steering from the workstation side. A reconnect kills
// both sides of the v2 delta shadow AND the steering session — the
// redial must resync the stream with a keyframe and leave the server's
// steering state consistent: the lock freed FCFS, the parameters either
// fully applied or untouched, never torn.
package client

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/dlib"
	"repro/internal/env"
	"repro/internal/integrate"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/vr"
	"repro/internal/wire"
)

// buildLiveServer couples a small live solver to a server, the way
// core.ServeLive wires it, without a listener.
func buildLiveServer(t *testing.T) (*server.Server, *datasets.Live) {
	t.Helper()
	lv, err := datasets.NewLive(
		datasets.Spec{NI: 12, NJ: 12, NK: 6, NumSteps: 8, DT: 0.2},
		datasets.LiveOptions{
			Solver: datasets.SolverOptions{Resolution: 16, SpinupSteps: 6, Workers: 2},
		})
	if err != nil {
		t.Fatal(err)
	}
	def := datasets.DefaultSteer()
	srv, err := server.New(server.Config{
		Store: lv.Ring(),
		Steer: env.SteerParams{InflowU: def.InflowU, Reynolds: def.Reynolds, Taper: def.Taper},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := srv.Env()
	lv.SetSteerSource(func() (datasets.Steering, uint64) {
		s := e.Steer()
		return datasets.Steering{
			InflowU:  s.Params.InflowU,
			Reynolds: s.Params.Reynolds,
			Taper:    s.Params.Taper,
		}, s.Version
	})
	t.Cleanup(func() { srv.Dlib().Close() })
	return srv, lv
}

// liveDialer is faultyDialer against a live server.
func liveDialer(srv *server.Server, faultyConn int, plan *netsim.FaultPlan) (dlib.DialFunc, *atomic.Int64) {
	var dials atomic.Int64
	return func() (net.Conn, error) {
		a, b := net.Pipe()
		go srv.Dlib().ServeConn(b)
		if int(dials.Add(1)) == faultyConn {
			return plan.Wrap(a), nil
		}
		return a, nil
	}, &dials
}

// TestChaosV2SteerReconnectResync: a v2 workstation steering a live
// server is reset mid-stream. The redial must (a) resync the delta
// stream with a keyframe so post-reconnect frames decode, (b) leave
// the steering lock free for the new session (the old session died
// with it), and (c) leave the applied parameters a complete triple —
// after which the new session re-steers successfully.
func TestChaosV2SteerReconnectResync(t *testing.T) {
	srv, lv := buildLiveServer(t)
	// Reset a few ops into the stream, after the steer frame has had a
	// chance to land.
	plan := &netsim.FaultPlan{Faults: []netsim.Fault{
		{Kind: netsim.FaultReset, AtOp: 16},
	}}
	dial, _ := liveDialer(srv, 1, plan)
	w, err := NewResilient(dial, Config{FrameW: 64, FrameH: 64, Codec: wire.CodecV2}, dlib.RedialOptions{
		BaseBackoff: time.Millisecond,
		CallTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Codec() != wire.CodecV2 {
		t.Fatalf("negotiated codec %d", w.Codec())
	}
	user, err := vr.NewScriptedUser(11)
	if err != nil {
		t.Fatal(err)
	}

	// Frame 1: scene plus a steering change, playback on so the
	// producer runs.
	b := lv.Grid().Bounds()
	mid := b.Min.Lerp(b.Max, 0.5)
	w.Queue(wire.Command{Kind: wire.CmdAddRake,
		P0: b.Min.Lerp(b.Max, 0.4), P1: mid,
		NumSeeds: 4, Tool: uint8(integrate.ToolStreamline)})
	w.Queue(wire.Command{Kind: wire.CmdSetSpeed, Value: 1})
	w.Queue(wire.Command{Kind: wire.CmdSetPlaying, Flag: 1})
	w.GrabSteer()
	w.Steer(2, 300, 0.8)
	if err := w.NetStep(user.Step()); err != nil {
		t.Fatalf("frame 1: %v", err)
	}
	id1 := w.SelfID()
	if st := srv.Env().Steer(); st.Params.InflowU != 2 || st.Holder != id1 {
		t.Fatalf("steer did not take before the fault: %+v", st)
	}

	// Drive frames until the reset fires and the redial heals it.
	sawError := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && w.Reconnects() == 0 {
		if err := w.NetStep(user.Step()); err != nil {
			sawError = true
		}
	}
	if !sawError || w.Reconnects() == 0 {
		t.Fatalf("reset never fired: errors=%v reconnects=%d", sawError, w.Reconnects())
	}
	// Recover on the fresh connection.
	var recovered bool
	for time.Now().Before(deadline) {
		if err := w.NetStep(user.Step()); err == nil {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("never recovered: %v", w.LastNetError())
	}

	// (a) The resynced v2 stream decodes: post-reconnect frames carry
	// the scene's geometry through a fresh keyframe.
	if w.Codec() != wire.CodecV2 {
		t.Fatalf("codec after reconnect: %d", w.Codec())
	}
	latest, ok := w.Latest()
	if !ok || len(latest.Rakes) == 0 {
		t.Fatalf("post-resync state lost the scene: %+v", latest.Rakes)
	}

	// (b) The dead session's steering lock came free; the parameters it
	// applied survived un-torn.
	st := srv.Env().Steer()
	if st.Holder == id1 {
		t.Fatalf("dead session %d still holds steering", id1)
	}
	if st.Params != (env.SteerParams{InflowU: 2, Reynolds: 300, Taper: 0.8}) {
		t.Fatalf("steering params after reconnect: %+v", st.Params)
	}

	// (c) The new session re-steers FCFS and the change reaches the
	// solver as a complete triple.
	w.GrabSteer()
	w.Steer(1.5, 500, 0.6)
	if err := w.NetStep(user.Step()); err != nil {
		t.Fatalf("re-steer frame: %v", err)
	}
	for i := 0; i < 4; i++ {
		w.NetStep(user.Step())
	}
	if st := srv.Env().Steer(); st.Params.InflowU != 1.5 {
		t.Fatalf("re-steer did not land: %+v", st)
	}
	for _, ap := range lv.AppliedSteer() {
		if ap != (datasets.Steering{InflowU: 2, Reynolds: 300, Taper: 0.8}) &&
			ap != (datasets.Steering{InflowU: 1.5, Reynolds: 500, Taper: 0.6}) {
			t.Fatalf("solver applied a torn triple: %+v", ap)
		}
	}
	status, err := w.SteerStatus()
	if err != nil {
		t.Fatalf("steer status: %v", err)
	}
	if status.InflowU != 1.5 || status.Reynolds != 500 || status.Taper != 0.6 {
		t.Fatalf("wire steer status: %+v", status)
	}
}
