// Package client implements the workstation side of the distributed
// windtunnel (figure 9): a network process that runs the once-per-
// frame dlib exchange with the remote host, and a render process that
// redraws the head-tracked stereo display from the latest received
// state at its own, much higher rate — "the graphics performance is
// not tied to the network and remote computation performance".
//
//vw:wire
package client

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dlib"
	"repro/internal/netsim"
	"repro/internal/render"
	"repro/internal/vmath"
	"repro/internal/vr"
	"repro/internal/wire"
)

// Config sets up a workstation.
type Config struct {
	// FrameW, FrameH size the framebuffer; zero uses 640x512 (a
	// quarter of the VGX's 1280x1024, laptop-friendly).
	FrameW, FrameH int
	// IPD is the stereo eye separation in world units.
	IPD float32
	// FOV is the vertical field of view in radians; zero uses 1.5
	// (the LEEP optics' wide field).
	FOV float32
	// Clock times network frames and decoupled runs; nil uses the wall
	// clock. Tests inject a netsim.ManualClock for replayable pacing.
	Clock netsim.Clock
	// Codec is the highest frame codec to request at hello. Zero or
	// wire.CodecV1 keeps the legacy v1 exchange byte-for-byte;
	// wire.CodecV2 negotiates delta/quantized frames, falling back to
	// v1 against servers that predate the vw.hello2 procedure.
	Codec uint8
}

// Stats are the workstation's performance counters.
type Stats struct {
	NetFrames    int64
	RenderFrames int64
	// NetErrors counts failed network frames (stall, reset, partition);
	// in resilient mode these are survived, not fatal.
	NetErrors int64
	NetTime   time.Duration
	BytesDown int64
	// Rounds counts distinct server computation rounds observed and
	// LastRound is the most recent one. NetFrames - Rounds is how many
	// frames rode the server's encode-once fan-out or whole-frame memo
	// (an unchanged Round means the shared scene held still).
	Rounds    int64
	LastRound uint64
	// DegradedFrames counts replies carrying a non-zero degradation
	// byte — rounds the server's frame-budget governor shed load on —
	// and LastDegraded is the most recent reply's byte (0 = full
	// fidelity).
	DegradedFrames int64
	LastDegraded   uint8
	// ToolFrames counts replies carrying a shared-tool section, and
	// LastToolPoints is the tool geometry size (isosurface triangle
	// vertices plus hedgehog endpoints) of the most recent one.
	ToolFrames     int64
	LastToolPoints int64
}

// Workstation is one user's machine.
type Workstation struct {
	c      dlib.Caller
	redial *dlib.RedialClient // non-nil in resilient mode
	clock  netsim.Clock
	// wantCodec is the Config.Codec request; the negotiated result
	// lives under mu (it can change across reconnects).
	wantCodec uint8

	fb  *render.Framebuffer
	rig render.StereoRig

	netFrames    atomic.Int64
	renderFrames atomic.Int64
	netErrors    atomic.Int64
	netNanos     atomic.Int64
	bytesDown    atomic.Int64

	interact Interactor

	mu      sync.Mutex // guards everything below
	info    wire.DatasetInfo
	selfID  int64
	codec   uint8              // negotiated frame codec for this connection
	dec     *wire.FrameDecoder // codec-v2 delta state; fresh per connection
	latest  wire.FrameReply
	haveOne bool
	pending []wire.Command
	lastErr error
	rounds  int64 // distinct reply.Round values seen
	// degradedFrames counts replies received with a non-zero
	// degradation byte; toolFrames counts replies carrying a
	// shared-tool section.
	degradedFrames int64
	toolFrames     int64
}

// newWorkstation builds the renderer side; the caller wires the
// network side.
func newWorkstation(cfg Config) (*Workstation, error) {
	if cfg.FrameW == 0 {
		cfg.FrameW, cfg.FrameH = 640, 512
	}
	if cfg.IPD == 0 {
		cfg.IPD = 0.064
	}
	if cfg.FOV == 0 {
		cfg.FOV = 1.5
	}
	fb, err := render.NewFramebuffer(cfg.FrameW, cfg.FrameH)
	if err != nil {
		return nil, err
	}
	aspect := float32(cfg.FrameW) / float32(cfg.FrameH)
	clk := cfg.Clock
	if clk == nil {
		clk = netsim.RealClock
	}
	return &Workstation{
		clock: clk,
		fb:    fb,
		rig: render.StereoRig{
			IPD:  cfg.IPD,
			Proj: vmath.Perspective(cfg.FOV, aspect, 0.05, 500),
		},
	}, nil
}

// handshake runs the connect-time exchange: dataset info (with codec
// negotiation when a v2 codec is wanted), then our session identity.
// It reruns on every reconnect, because dlib session state — including
// the server side of the delta shadow — dies with the connection.
func handshake(c dlib.Caller, want uint8) (wire.DatasetInfo, uint8, int64, error) {
	var info wire.DatasetInfo
	codec := uint8(wire.CodecV1)
	if want >= wire.CodecV2 {
		out, err := c.Call(wire.ProcHello2, wire.EncodeHelloRequest(want))
		var re *dlib.RemoteError
		switch {
		case err == nil:
			codec, info, err = wire.DecodeHelloReply(out)
			if err != nil {
				return wire.DatasetInfo{}, 0, 0, err
			}
		case errors.As(err, &re):
			// A pre-v2 server has no vw.hello2: fall back to the
			// legacy exchange and speak v1 for this connection.
			want = wire.CodecV1
		default:
			return wire.DatasetInfo{}, 0, 0, fmt.Errorf("client: hello2: %w", err)
		}
	}
	if want < wire.CodecV2 {
		out, err := c.Call(wire.ProcHello, nil)
		if err != nil {
			return wire.DatasetInfo{}, 0, 0, fmt.Errorf("client: hello: %w", err)
		}
		info, err = wire.DecodeDatasetInfo(out)
		if err != nil {
			return wire.DatasetInfo{}, 0, 0, err
		}
	}
	idBytes, err := c.Call(wire.ProcWhoAmI, nil)
	if err != nil {
		return wire.DatasetInfo{}, 0, 0, fmt.Errorf("client: whoami: %w", err)
	}
	if len(idBytes) != 8 {
		return wire.DatasetInfo{}, 0, 0, fmt.Errorf("client: whoami reply of %d bytes", len(idBytes))
	}
	return info, codec, int64(binary.LittleEndian.Uint64(idBytes)), nil
}

// adoptConnection installs the post-handshake connection state: the
// negotiated codec and, for v2, a fresh frame decoder whose empty
// shadow matches the server's fresh per-session encoder — the first
// frame after any (re)connect is a full keyframe by construction.
func (w *Workstation) adoptConnection(info wire.DatasetInfo, codec uint8, selfID int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.info = info
	w.selfID = selfID
	w.codec = codec
	if codec >= wire.CodecV2 {
		w.dec = wire.NewFrameDecoder(info.Quantizer())
	} else {
		w.dec = nil
	}
}

// New connects the application layer over an established dlib client:
// it fetches the dataset info and prepares the renderer.
func New(c *dlib.Client, cfg Config) (*Workstation, error) {
	w, err := newWorkstation(cfg)
	if err != nil {
		return nil, err
	}
	w.wantCodec = cfg.Codec
	info, codec, selfID, err := handshake(c, w.wantCodec)
	if err != nil {
		return nil, err
	}
	w.c = c
	w.adoptConnection(info, codec, selfID)
	return w, nil
}

// NewResilient connects the workstation over a redial-capable client:
// on connection loss the network layer reconnects with capped
// exponential backoff and replays the handshake, resyncing the session
// identity, while the render loop keeps drawing the last good geometry
// (figure 9's decoupling, extended to failures). ropts.OnConnect is
// overridden; ropts.CallTimeout defaults to 2s so a stalled link can
// never freeze the network goroutine.
func NewResilient(dial dlib.DialFunc, cfg Config, ropts dlib.RedialOptions) (*Workstation, error) {
	w, err := newWorkstation(cfg)
	if err != nil {
		return nil, err
	}
	w.wantCodec = cfg.Codec
	if ropts.CallTimeout <= 0 {
		ropts.CallTimeout = 2 * time.Second
	}
	ropts.OnConnect = func(c *dlib.Client) error {
		info, codec, selfID, err := handshake(c, w.wantCodec)
		if err != nil {
			return err
		}
		w.adoptConnection(info, codec, selfID)
		return nil
	}
	r := dlib.NewRedialClient(dial, ropts)
	if err := r.Connect(context.Background()); err != nil {
		return nil, err
	}
	w.c = r
	w.redial = r
	return w, nil
}

// Info returns the dataset description received at connect time.
func (w *Workstation) Info() wire.DatasetInfo {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.info
}

// SelfID returns our session id on the server; it changes after a
// reconnect (sessions are per-connection).
func (w *Workstation) SelfID() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.selfID
}

// Codec returns the frame codec negotiated for the current connection
// (wire.CodecV1 or wire.CodecV2).
func (w *Workstation) Codec() uint8 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.codec
}

// Reconnects returns how many times the network layer has redialed
// (always 0 for a non-resilient workstation).
func (w *Workstation) Reconnects() int64 {
	if w.redial == nil {
		return 0
	}
	return w.redial.Redials()
}

// LastNetError returns the most recent NetStep failure, or nil.
func (w *Workstation) LastNetError() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastErr
}

// Framebuffer exposes the display for PPM dumps and tests.
func (w *Workstation) Framebuffer() *render.Framebuffer { return w.fb }

// Queue adds a command to the next network frame.
func (w *Workstation) Queue(cmd wire.Command) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pending = append(w.pending, cmd)
}

// GrabSteer queues a grab of the live-steering lock (FCFS-arbitrated
// on the server, like rake grabs).
func (w *Workstation) GrabSteer() {
	w.Queue(wire.Command{Kind: wire.CmdSteerGrab})
}

// ReleaseSteer queues a release of the live-steering lock.
func (w *Workstation) ReleaseSteer() {
	w.Queue(wire.Command{Kind: wire.CmdSteerRelease})
}

// Steer queues an atomic change of all three live flow parameters:
// inlet velocity, Reynolds number, and cylinder taper ratio. The
// triple rides one command, so a connection dying mid-steer can lose
// the change but never half-apply it.
func (w *Workstation) Steer(inflowU, reynolds, taper float32) {
	w.Queue(wire.Command{Kind: wire.CmdSteer, P0: vmath.V3(inflowU, reynolds, taper)})
}

// GrabIso queues a grab of the shared isosurface tool's FCFS lock.
func (w *Workstation) GrabIso() {
	w.Queue(wire.Command{Kind: wire.CmdIsoGrab})
}

// ReleaseIso queues a release of the isosurface lock.
func (w *Workstation) ReleaseIso() {
	w.Queue(wire.Command{Kind: wire.CmdIsoRelease})
}

// SetIso queues an isosurface parameter change: enable/disable plus
// the speed iso-level, as one atomic command. Requires holding the iso
// lock (or it being free — the server grabs FCFS on first touch).
func (w *Workstation) SetIso(enabled bool, level float32) {
	var f uint8
	if enabled {
		f = 1
	}
	w.Queue(wire.Command{Kind: wire.CmdIsoSet, Flag: f, Value: level})
}

// GrabPlane queues a grab of the shared cutting plane's FCFS lock.
func (w *Workstation) GrabPlane() {
	w.Queue(wire.Command{Kind: wire.CmdPlaneGrab})
}

// ReleasePlane queues a release of the cutting-plane lock.
func (w *Workstation) ReleasePlane() {
	w.Queue(wire.Command{Kind: wire.CmdPlaneRelease})
}

// MovePlane queues a cutting-plane move: the slicing axis (0/1/2) and
// the fractional position along it, plus the enable bit, atomically.
func (w *Workstation) MovePlane(enabled bool, axis uint8, frac float32) {
	var f uint8
	if enabled {
		f = 1
	}
	w.Queue(wire.Command{Kind: wire.CmdPlaneMove, Flag: f, Grab: axis, Value: frac})
}

// ToggleVortex queues a vortex-core extractor change: enable/disable
// plus the Q-criterion threshold.
func (w *Workstation) ToggleVortex(enabled bool, threshold float32) {
	var f uint8
	if enabled {
		f = 1
	}
	w.Queue(wire.Command{Kind: wire.CmdVortexToggle, Flag: f, Value: threshold})
}

// SteerStatus fetches the server's current steering state: parameters,
// lock holder, and change counter.
func (w *Workstation) SteerStatus() (wire.SteerStatus, error) {
	out, err := w.c.Call(wire.ProcSteer, nil)
	if err != nil {
		return wire.SteerStatus{}, fmt.Errorf("client: steer call: %w", err)
	}
	return wire.DecodeSteerStatus(out)
}

// Latest returns the most recent environment state (zero value before
// the first exchange).
func (w *Workstation) Latest() (wire.FrameReply, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.latest, w.haveOne
}

// NetStep performs one network frame: send the user's pose, gestures,
// and queued commands; receive and store the new shared state. This is
// the loop that must complete "in less than 1/8th of a second" (§1.2).
func (w *Workstation) NetStep(pose vr.Pose) error {
	w.mu.Lock()
	cmds := w.pending
	w.pending = nil
	w.mu.Unlock()

	// Gesture-driven interaction synthesizes grab/move/release
	// commands from the hand state and the last known rake set.
	if latest, ok := w.Latest(); ok {
		cmds = append(cmds, w.interact.Commands(pose, latest.Rakes)...)
	}

	payload := wire.EncodeClientUpdate(wire.ClientUpdate{
		Head:     pose.Head,
		Hand:     pose.Hand,
		Gesture:  uint8(pose.Gesture),
		Commands: cmds,
	})
	start := w.clock.Now()
	out, err := w.c.Call(wire.ProcFrame, payload)
	if err != nil {
		// Degrade, don't desync: the commands this frame carried were
		// never acknowledged, so put them back at the head of the queue
		// to replay after the network layer reconnects. The latest good
		// state is untouched — the render loop keeps drawing it.
		w.netErrors.Add(1)
		w.mu.Lock()
		w.pending = append(append([]wire.Command{}, cmds...), w.pending...)
		w.lastErr = err
		w.mu.Unlock()
		return fmt.Errorf("client: frame call: %w", err)
	}
	// A reconnect during the Call above reran the handshake, so the
	// codec and decoder read here are the ones the replying connection
	// negotiated.
	w.mu.Lock()
	dec := w.dec
	w.mu.Unlock()
	var reply wire.FrameReply
	if dec != nil {
		reply, err = dec.Decode(out)
	} else {
		reply, err = wire.DecodeFrameReply(out)
	}
	if err != nil {
		// A failed v2 decode leaves the decoder's shadow partially
		// applied — every later delta would build on state the server
		// never sent. Re-run the codec handshake: the server resets its
		// per-session encoder, we install a fresh decoder, and the next
		// frame is a full keyframe by construction.
		w.netErrors.Add(1)
		var resyncErr error
		if dec != nil {
			resyncErr = w.resyncCodec()
		}
		w.mu.Lock()
		w.lastErr = err
		w.mu.Unlock()
		if resyncErr != nil {
			return fmt.Errorf("client: frame decode: %v (codec resync also failed: %w)", err, resyncErr)
		}
		return fmt.Errorf("client: frame decode: %w", err)
	}
	w.netNanos.Add(int64(w.clock.Now().Sub(start)))
	w.netFrames.Add(1)
	w.bytesDown.Add(int64(len(out)))

	w.mu.Lock()
	if !w.haveOne || reply.Round != w.latest.Round {
		w.rounds++
	}
	if reply.Degraded > 0 {
		w.degradedFrames++
	}
	if reply.Tools != nil {
		w.toolFrames++
	}
	w.latest = reply
	w.haveOne = true
	w.lastErr = nil
	w.mu.Unlock()
	return nil
}

// resyncCodec re-runs the frame-codec handshake on the live
// connection after a corrupted codec-v2 stream: vw.hello2 makes the
// server drop its per-session delta shadow and start the stream over
// from a keyframe, and the fresh decoder installed here matches it.
func (w *Workstation) resyncCodec() error {
	out, err := w.c.Call(wire.ProcHello2, wire.EncodeHelloRequest(w.wantCodec))
	if err != nil {
		return err
	}
	codec, info, err := wire.DecodeHelloReply(out)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.info = info
	w.codec = codec
	if codec >= wire.CodecV2 {
		w.dec = wire.NewFrameDecoder(info.Quantizer())
	} else {
		w.dec = nil
	}
	return nil
}

// RenderFrame redraws the stereo display from the latest state at the
// given head pose. It runs decoupled from NetStep: "the head-tracked
// display of the virtual environment can run at very high rates" even
// while the command loop is slower.
func (w *Workstation) RenderFrame(head vmath.Mat4) error {
	state, ok := w.Latest()
	if !ok {
		w.fb.Clear(0, 0, 0)
		w.renderFrames.Add(1)
		return nil
	}
	err := w.rig.RenderAnaglyph(w.fb, head, func(r *render.Renderer) {
		drawScene(r, state, w.SelfID())
	})
	if err != nil {
		return err
	}
	w.renderFrames.Add(1)
	return nil
}

// drawScene draws geometry, rakes, and other users (self excluded —
// you do not see your own head from inside it).
func drawScene(r *render.Renderer, state wire.FrameReply, selfID int64) {
	// Degraded frames tint path geometry amber: the governor shed
	// integration work to hold the frame budget, so what you see is a
	// reduced-fidelity view of the flow, not the full rake output.
	pathColor := render.Color{R: 230, G: 230, B: 230}
	if state.Degraded > 0 {
		pathColor = render.Color{R: 230, G: 180, B: 90}
	}
	for _, g := range state.Geometry {
		switch g.Tool {
		case 2: // streakline: smoke
			r.Additive = true
			for _, line := range g.Lines {
				r.Polyline(line, render.Color{R: 70, G: 70, B: 70})
			}
			r.Additive = false
		default:
			for _, line := range g.Lines {
				r.Polyline(line, pathColor)
			}
		}
	}
	for _, rk := range state.Rakes {
		c := render.Color{R: 160, G: 160, B: 160}
		if rk.Holder != 0 {
			c = render.Color{R: 255, G: 255, B: 255}
		}
		r.Line(rk.P0, rk.P1, c)
	}
	if state.Tools != nil {
		drawTools(r, state.Tools)
	}
	// Other users render as a hand tripod plus a head glyph, so
	// participants see "where everyone is" (§5.1: "the position of the
	// users' heads would also be sent so that they may be displayed as
	// part of the virtual environment").
	for _, u := range state.Users {
		if u.ID == selfID {
			continue
		}
		h := u.Hand
		const s = 0.2
		c := render.Color{R: 200, G: 200, B: 200}
		r.Line(h.Sub(vmath.V3(s, 0, 0)), h.Add(vmath.V3(s, 0, 0)), c)
		r.Line(h.Sub(vmath.V3(0, s, 0)), h.Add(vmath.V3(0, s, 0)), c)
		r.Line(h.Sub(vmath.V3(0, 0, s)), h.Add(vmath.V3(0, 0, s)), c)
		drawHead(r, u.Head, c)
	}
}

// drawTools draws the shared-tool geometry: isosurfaces and vortex
// cores as wireframe triangle soups (each geometry record is a flat
// vertex list, three per triangle), the cutting plane as its hedgehog
// of velocity vectors (two points per glyph). Held tools brighten,
// matching the rake grab highlight.
func drawTools(r *render.Renderer, t *wire.ToolsReply) {
	for _, g := range t.Geoms {
		var c render.Color
		var held bool
		pairs := false
		switch g.Tool {
		case wire.ToolKindIso:
			c = render.Color{R: 80, G: 170, B: 200}
			held = t.Iso.Holder != 0
		case wire.ToolKindPlane:
			c = render.Color{R: 90, G: 200, B: 110}
			held = t.Plane.Holder != 0
			pairs = true
		case wire.ToolKindVortex:
			c = render.Color{R: 210, G: 110, B: 200}
			held = t.Vortex.Holder != 0
		default:
			continue
		}
		if held {
			c = render.Color{R: 255, G: 255, B: 255}
		}
		p := g.Points
		if pairs {
			for i := 0; i+1 < len(p); i += 2 {
				r.Line(p[i], p[i+1], c)
			}
			continue
		}
		for i := 0; i+2 < len(p); i += 3 {
			r.Line(p[i], p[i+1], c)
			r.Line(p[i+1], p[i+2], c)
			r.Line(p[i+2], p[i], c)
		}
	}
}

// drawHead draws a wireframe head glyph (a square face plate with a
// nose line showing gaze direction) at the user's head matrix.
func drawHead(r *render.Renderer, head vmath.Mat4, c render.Color) {
	const s = 0.15
	corners := [4]vmath.Vec3{
		head.TransformPoint(vmath.V3(-s, -s, 0)),
		head.TransformPoint(vmath.V3(s, -s, 0)),
		head.TransformPoint(vmath.V3(s, s, 0)),
		head.TransformPoint(vmath.V3(-s, s, 0)),
	}
	for i := range corners {
		r.Line(corners[i], corners[(i+1)%4], c)
	}
	// Gaze: the head looks down its local -Z.
	center := head.TransformPoint(vmath.Vec3{})
	nose := head.TransformPoint(vmath.V3(0, 0, -2*s))
	r.Line(center, nose, c)
}

// Stats returns a snapshot of the counters.
func (w *Workstation) Stats() Stats {
	w.mu.Lock()
	rounds := w.rounds
	lastRound := w.latest.Round
	degraded := w.degradedFrames
	lastDegraded := w.latest.Degraded
	toolFrames := w.toolFrames
	var lastToolPoints int64
	if w.latest.Tools != nil {
		lastToolPoints = int64(w.latest.Tools.TotalPoints())
	}
	w.mu.Unlock()
	return Stats{
		NetFrames:      w.netFrames.Load(),
		RenderFrames:   w.renderFrames.Load(),
		NetErrors:      w.netErrors.Load(),
		NetTime:        time.Duration(w.netNanos.Load()),
		BytesDown:      w.bytesDown.Load(),
		Rounds:         rounds,
		LastRound:      lastRound,
		DegradedFrames: degraded,
		LastDegraded:   lastDegraded,
		ToolFrames:     toolFrames,
		LastToolPoints: lastToolPoints,
	}
}

// RunDecoupled drives the two processes concurrently for netFrames
// network rounds with a scripted user: the render loop spins freely
// until the network loop finishes. Returns achieved rates in frames
// per second of wall time.
func (w *Workstation) RunDecoupled(user *vr.ScriptedUser, netFrames int) (netHz, renderHz float64, err error) {
	start := w.clock.Now()
	done := make(chan struct{})
	var netErr error
	// The devices belong to the network goroutine (it samples them at
	// the command rate); the render loop reads the latest head pose
	// from a shared snapshot, exactly how figure 9's shared memory
	// carries tracking data between the two processes.
	var poseMu sync.Mutex
	head := vmath.Identity()
	go func() {
		defer close(done)
		for i := 0; i < netFrames; i++ {
			pose := user.Step()
			poseMu.Lock()
			head = pose.Head
			poseMu.Unlock()
			if e := w.NetStep(pose); e != nil {
				// A resilient workstation degrades instead of dying:
				// the redial layer heals the link on a later round
				// while the render loop below keeps drawing the last
				// good geometry.
				if w.redial == nil {
					netErr = e
					return
				}
			}
		}
	}()
	var renders int64
	for {
		select {
		case <-done:
			elapsed := w.clock.Now().Sub(start).Seconds()
			if netErr != nil {
				return 0, 0, netErr
			}
			return float64(netFrames) / elapsed, float64(renders) / elapsed, nil
		default:
			poseMu.Lock()
			h := head
			poseMu.Unlock()
			if e := w.RenderFrame(h); e != nil {
				return 0, 0, e
			}
			renders++
		}
	}
}
