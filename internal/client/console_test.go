package client

import (
	"strings"
	"testing"

	"repro/internal/integrate"
	"repro/internal/vmath"
	"repro/internal/vr"
	"repro/internal/wire"
)

func TestParseRakeAdd(t *testing.T) {
	cmd, err := ParseCommand("rake add -3,0.6,1 -3,0.6,14 10 streamline")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Kind != wire.CmdAddRake {
		t.Fatalf("kind = %v", cmd.Kind)
	}
	if !cmd.P0.ApproxEqual(vmath.V3(-3, 0.6, 1), 1e-5) ||
		!cmd.P1.ApproxEqual(vmath.V3(-3, 0.6, 14), 1e-5) {
		t.Errorf("endpoints %v %v", cmd.P0, cmd.P1)
	}
	if cmd.NumSeeds != 10 || cmd.Tool != uint8(integrate.ToolStreamline) {
		t.Errorf("seeds=%d tool=%d", cmd.NumSeeds, cmd.Tool)
	}
}

func TestParseToolAliases(t *testing.T) {
	for _, tc := range []struct {
		name string
		want integrate.ToolKind
	}{
		{"streamline", integrate.ToolStreamline},
		{"path", integrate.ToolParticlePath},
		{"particle-path", integrate.ToolParticlePath},
		{"streak", integrate.ToolStreakline},
		{"smoke", integrate.ToolStreakline},
	} {
		cmd, err := ParseCommand("rake add 0,0,0 1,0,0 5 " + tc.name)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if cmd.Tool != uint8(tc.want) {
			t.Errorf("%s -> tool %d, want %d", tc.name, cmd.Tool, tc.want)
		}
	}
}

func TestParseGrabReleaseMove(t *testing.T) {
	cmd, err := ParseCommand("grab 3 end1")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Kind != wire.CmdGrab || cmd.Rake != 3 || cmd.Grab != uint8(integrate.GrabEnd1) {
		t.Errorf("grab = %+v", cmd)
	}
	cmd, err = ParseCommand("release 3")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Kind != wire.CmdRelease || cmd.Rake != 3 {
		t.Errorf("release = %+v", cmd)
	}
	cmd, err = ParseCommand("move 3 1,2,3")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Kind != wire.CmdMove || cmd.Pos != vmath.V3(1, 2, 3) {
		t.Errorf("move = %+v", cmd)
	}
}

func TestParseTimeControl(t *testing.T) {
	cmd, err := ParseCommand("play -2.5")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Kind != wire.CmdSetSpeed || cmd.Value != -2.5 {
		t.Errorf("play = %+v", cmd)
	}
	cmd, err = ParseCommand("stop")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Kind != wire.CmdSetPlaying || cmd.Flag != 0 {
		t.Errorf("stop = %+v", cmd)
	}
	cmd, err = ParseCommand("seek 42")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Kind != wire.CmdSeek || cmd.Value != 42 {
		t.Errorf("seek = %+v", cmd)
	}
	cmd, err = ParseCommand("loop off")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Kind != wire.CmdSetLoop || cmd.Flag != 0 {
		t.Errorf("loop = %+v", cmd)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"explode",
		"rake",
		"rake add 1,2 3,4,5 5 streamline", // bad vector
		"rake add 1,2,3 4,5,6 0 streamline",
		"rake add 1,2,3 4,5,6 5 warp",
		"grab x center",
		"grab 1 middle",
		"move 1 a,b,c",
		"play fast",
		"seek soon",
		"loop maybe",
		"release",
		"rake rm",
		"rake seeds 1 zero",
	}
	for _, line := range bad {
		if _, err := ParseCommand(line); err == nil {
			t.Errorf("%q accepted", line)
		}
	}
}

// TestParseCommandErrorTable pins the diagnostic each error class
// produces, so a typo at the console tells the user what to fix:
// unknown verbs name the verb, arity errors show the usage line, and
// malformed numbers quote the offending token.
func TestParseCommandErrorTable(t *testing.T) {
	cases := []struct {
		name    string
		line    string
		wantMsg string
	}{
		// Unknown verbs.
		{"unknown verb", "explode now", `unknown command "explode"`},
		{"unknown rake subcommand", "rake launch 1", `unknown rake subcommand "launch"`},
		{"unknown tool", "rake add 0,0,0 1,1,1 5 warp", `unknown tool "warp"`},
		{"unknown grab point", "grab 1 middle", `bad grab point "middle"`},
		// Bad arity.
		{"rake add missing tool", "rake add 0,0,0 1,1,1 5", "rake add P0 P1 N TOOL"},
		{"rake add extra arg", "rake add 0,0,0 1,1,1 5 streamline extra", "rake add P0 P1 N TOOL"},
		{"rake bare", "rake", "rake add|rm|seeds"},
		{"grab missing point", "grab 1", "grab ID center|end0|end1"},
		{"release extra", "release 1 2", "release ID"},
		{"move missing pos", "move 1", "move ID X,Y,Z"},
		{"play two speeds", "play 1 2", "play [SPEED]"},
		{"seek bare", "seek", "seek T"},
		{"loop bare", "loop", "loop on|off"},
		{"empty line", "", "empty command"},
		// Malformed numbers.
		{"vector arity", "rake add 1,2 3,4,5 5 streamline", `bad vector "1,2"`},
		{"vector component", "move 1 1,two,3", `bad vector component "two"`},
		{"seed count word", "rake add 0,0,0 1,1,1 many streamline", `bad seed count "many"`},
		{"seed count zero", "rake seeds 1 0", `bad seed count "0"`},
		{"rake id word", "grab x center", `bad rake id "x"`},
		{"rake id negative", "release -1", `bad rake id "-1"`},
		{"speed word", "play fast", `bad speed "fast"`},
		{"seek word", "seek soon", `bad time "soon"`},
		{"loop maybe", "loop maybe", "loop on|off"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseCommand(tc.line)
			if err == nil {
				t.Fatalf("%q accepted", tc.line)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}

// TestParseScriptErrorTable: script-level failures carry the line
// number of the bad command past comments and blank lines.
func TestParseScriptErrorTable(t *testing.T) {
	cases := []struct {
		name    string
		script  string
		wantMsg string
	}{
		{"bad verb on line 2", "stop\nbroken line here\n", `line 2: client: unknown command "broken"`},
		{"bad number after comments", "# intro\n\nseek soon\n", `line 3: client: bad time "soon"`},
		{"arity after good lines", "stop\nloop on\ngrab 1\n", "line 3: client: grab ID center|end0|end1"},
		{"comment does not hide error", "play 1 # then\nrake add 1,2 3,4,5 5 streamline\n", `line 2: client: bad vector "1,2"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScript(strings.NewReader(tc.script))
			if err == nil {
				t.Fatal("script accepted")
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("error %q does not contain %q", err, tc.wantMsg)
			}
		})
	}
}

func TestParseScript(t *testing.T) {
	script := `
# set the scene
rake add -3,0.6,1 -3,0.6,14 10 streamline
rake add -2,-0.8,2 -2,-0.8,12 6 smoke   # wake smoke
play 2

grab 1 center
move 1 0,1,7
release 1
stop
`
	cmds, err := ParseScript(strings.NewReader(script))
	if err != nil {
		t.Fatal(err)
	}
	// play expands to speed + playing, so: 2 rakes + 2 + grab + move +
	// release + stop = 8.
	if len(cmds) != 8 {
		t.Fatalf("commands = %d, want 8", len(cmds))
	}
	if cmds[2].Kind != wire.CmdSetSpeed || cmds[3].Kind != wire.CmdSetPlaying || cmds[3].Flag != 1 {
		t.Errorf("play did not expand: %+v %+v", cmds[2], cmds[3])
	}
}

func TestParseScriptErrorsWithLineNumber(t *testing.T) {
	_, err := ParseScript(strings.NewReader("stop\nbroken line here\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line 2 mention", err)
	}
}

func TestScriptDrivesServer(t *testing.T) {
	// End-to-end: a console script manipulates the shared environment.
	w := connect(t, startSystem(t, 4))
	cmds, err := ParseScript(strings.NewReader(`
rake add -3,0,0 3,0,0 5 streamline
play 1
`))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cmds {
		w.Queue(c)
	}
	if err := w.NetStep(vr.Pose{}); err != nil {
		t.Fatal(err)
	}
	state, _ := w.Latest()
	if len(state.Rakes) != 1 || !state.Time.Playing {
		t.Errorf("script did not take: rakes=%d playing=%v", len(state.Rakes), state.Time.Playing)
	}
}

func TestParseRakeTool(t *testing.T) {
	cmd, err := ParseCommand("rake tool 2 smoke")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Kind != wire.CmdSetTool || cmd.Rake != 2 || cmd.Tool != uint8(integrate.ToolStreakline) {
		t.Errorf("cmd = %+v", cmd)
	}
	if _, err := ParseCommand("rake tool 2 warp"); err == nil {
		t.Error("bad tool accepted")
	}
}
