// Chaos suite for the workstation: network faults mid-session must
// degrade the experience, not end it. The render loop keeps drawing
// the last good geometry (figure 9's decoupling) while the network
// layer redials, replays the handshake, and resyncs.
package client

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dlib"
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/vmath"
	"repro/internal/vr"
	"repro/internal/wire"
)

// buildServer returns a windtunnel server without a listener; chaos
// tests attach connections by hand (pipes, fault wraps).
func buildServer(t *testing.T, numSteps int) *server.Server {
	t.Helper()
	g, err := grid.NewCartesian(16, 16, 8, vmath.AABB{
		Min: vmath.V3(-4, -4, -2), Max: vmath.V3(4, 4, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := make([]*field.Field, numSteps)
	for s := range steps {
		f := field.NewField(16, 16, 8, field.GridCoords)
		for i := range f.U {
			f.U[i] = 0.3
		}
		steps[s] = f
	}
	u, err := field.NewUnsteady(g, steps, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Store: store.NewMemory(u)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Dlib().Close() })
	return srv
}

// faultyDialer returns a DialFunc whose nth connection (1-based) gets
// the given plan; every other connection is clean.
func faultyDialer(srv *server.Server, faultyConn int, plan *netsim.FaultPlan) (dlib.DialFunc, *atomic.Int64) {
	var dials atomic.Int64
	return func() (net.Conn, error) {
		a, b := net.Pipe()
		go srv.Dlib().ServeConn(b)
		if int(dials.Add(1)) == faultyConn {
			return plan.Wrap(a), nil
		}
		return a, nil
	}, &dials
}

// TestChaosPartitionDuringTimestepStream: replies stop arriving mid-
// stream (one-way partition). The workstation must keep its last good
// state for rendering, then redial, re-handshake under a NEW session
// id, and resume — the resync the paper's shared environment needs.
func TestChaosPartitionDuringTimestepStream(t *testing.T) {
	srv := buildServer(t, 4)
	// Client-side read ops per reply over a pipe: 3 (length prefix,
	// header rest, payload). Handshake = hello + whoami = 6 ops, first
	// frame = 3 more; the partition opens during the second frame.
	plan := &netsim.FaultPlan{Faults: []netsim.Fault{
		{Kind: netsim.FaultDropRead, AtOp: 10},
	}}
	dial, dials := faultyDialer(srv, 1, plan)
	w, err := NewResilient(dial, Config{FrameW: 64, FrameH: 64}, dlib.RedialOptions{
		BaseBackoff: time.Millisecond,
		CallTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	id1 := w.SelfID()
	user, err := vr.NewScriptedUser(42)
	if err != nil {
		t.Fatal(err)
	}

	// Frame 1 flows; it also queues a rake so there is geometry to keep.
	w.Queue(wire.Command{Kind: wire.CmdAddRake,
		P0: vmath.V3(-3, 0, 0), P1: vmath.V3(3, 0, 0),
		NumSeeds: 5, Tool: uint8(integrate.ToolStreamline)})
	if err := w.NetStep(user.Step()); err != nil {
		t.Fatalf("frame 1: %v", err)
	}
	before, ok := w.Latest()
	if !ok || len(before.Geometry) == 0 {
		t.Fatalf("no geometry before the partition: %+v", before)
	}

	// Frame 2 hits the partition: bounded failure, state retained.
	start := time.Now()
	if err := w.NetStep(user.Step()); err == nil {
		t.Fatal("frame 2 succeeded through a partition")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("partitioned frame blocked %v", elapsed)
	}
	during, ok := w.Latest()
	if !ok || len(during.Geometry) != len(before.Geometry) {
		t.Fatalf("last good geometry lost during outage")
	}
	// The render loop still draws it.
	if err := w.RenderFrame(vmath.Identity()); err != nil {
		t.Fatalf("render during outage: %v", err)
	}

	// Frame 3 redials and resyncs under a fresh session.
	deadline := time.Now().Add(10 * time.Second)
	var recovered bool
	for time.Now().Before(deadline) {
		if err := w.NetStep(user.Step()); err == nil {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("never recovered from partition: %v", w.LastNetError())
	}
	if w.Reconnects() != 1 {
		t.Errorf("Reconnects = %d, want 1", w.Reconnects())
	}
	if got := dials.Load(); got != 2 {
		t.Errorf("dials = %d, want 2", got)
	}
	if w.SelfID() == id1 {
		t.Errorf("session id did not resync after reconnect")
	}
	if st := w.Stats(); st.NetErrors == 0 {
		t.Errorf("outage not recorded in stats: %+v", st)
	}
}

// TestChaosCommandsReplayAfterOutage: commands carried by a failed
// frame are requeued and reach the server after the reconnect — the
// user's interaction survives the fault. Delivery is at-least-once:
// when only the reply was lost, the replay can apply a command twice,
// so the assertion is "not lost", not "exactly once".
func TestChaosCommandsReplayAfterOutage(t *testing.T) {
	srv := buildServer(t, 4)
	// Partition before any reply: the very first frame call fails.
	plan := &netsim.FaultPlan{Faults: []netsim.Fault{
		{Kind: netsim.FaultDropRead, AtOp: 7}, // right after the 6-op handshake
	}}
	dial, _ := faultyDialer(srv, 1, plan)
	w, err := NewResilient(dial, Config{FrameW: 64, FrameH: 64}, dlib.RedialOptions{
		BaseBackoff: time.Millisecond,
		CallTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	user, err := vr.NewScriptedUser(7)
	if err != nil {
		t.Fatal(err)
	}
	w.Queue(wire.Command{Kind: wire.CmdAddRake,
		P0: vmath.V3(-3, 0, 0), P1: vmath.V3(3, 0, 0),
		NumSeeds: 4, Tool: uint8(integrate.ToolStreamline)})

	if err := w.NetStep(user.Step()); err == nil {
		t.Fatal("first frame survived the partition")
	}
	// The rake command must not be lost with the failed frame.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := w.NetStep(user.Step()); err == nil {
			break
		}
	}
	latest, ok := w.Latest()
	if !ok || len(latest.Rakes) == 0 {
		t.Fatalf("queued rake lost across the outage: %+v", latest.Rakes)
	}
}

// TestChaosRunDecoupledSurvivesReset: the paper's decoupled loop runs
// through a connection reset — the render process never stops, the
// network process heals itself, and the run completes every round.
func TestChaosRunDecoupledSurvivesReset(t *testing.T) {
	srv := buildServer(t, 4)
	plan := &netsim.FaultPlan{Faults: []netsim.Fault{
		{Kind: netsim.FaultReset, AtOp: 16}, // a few ops into the stream
	}}
	dial, _ := faultyDialer(srv, 1, plan)
	w, err := NewResilient(dial, Config{FrameW: 64, FrameH: 64}, dlib.RedialOptions{
		BaseBackoff: time.Millisecond,
		CallTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	user, err := vr.NewScriptedUser(3)
	if err != nil {
		t.Fatal(err)
	}
	netHz, renderHz, err := w.RunDecoupled(user, 8)
	if err != nil {
		t.Fatalf("decoupled run died on reset: %v", err)
	}
	if netHz <= 0 || renderHz <= 0 {
		t.Errorf("rates: net %.1f render %.1f", netHz, renderHz)
	}
	st := w.Stats()
	if st.NetErrors == 0 {
		t.Error("reset never observed — fault did not fire?")
	}
	if st.RenderFrames == 0 {
		t.Error("render loop stalled during outage")
	}
	if w.Reconnects() == 0 {
		t.Error("no reconnect recorded")
	}
}
