package client

import (
	"net"
	"testing"
	"time"

	"repro/internal/dlib"
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/vmath"
	"repro/internal/vr"
	"repro/internal/wire"
)

// startSystem spins up a full server and returns its address.
func startSystem(t *testing.T, numSteps int) string {
	t.Helper()
	g, err := grid.NewCartesian(16, 16, 8, vmath.AABB{
		Min: vmath.V3(-4, -4, -2), Max: vmath.V3(4, 4, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := make([]*field.Field, numSteps)
	for s := range steps {
		f := field.NewField(16, 16, 8, field.GridCoords)
		for i := range f.U {
			f.U[i] = 0.3
		}
		steps[s] = f
	}
	u, err := field.NewUnsteady(g, steps, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Store: store.NewMemory(u)})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Dlib().Serve(ln)
	t.Cleanup(func() { srv.Dlib().Close() })
	return ln.Addr().String()
}

func connect(t *testing.T, addr string) *Workstation {
	t.Helper()
	c, err := dlib.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	w, err := New(c, Config{FrameW: 64, FrameH: 64})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestConnectAndHello(t *testing.T) {
	w := connect(t, startSystem(t, 4))
	if w.Info().NI != 16 || w.Info().NumSteps != 4 {
		t.Errorf("info = %+v", w.Info())
	}
}

func TestNetStepUpdatesState(t *testing.T) {
	w := connect(t, startSystem(t, 4))
	w.Queue(wire.Command{
		Kind: wire.CmdAddRake,
		P0:   vmath.V3(-3, 0, 0), P1: vmath.V3(-3, 3, 0),
		NumSeeds: 4, Tool: uint8(integrate.ToolStreamline),
	})
	if err := w.NetStep(vr.Pose{Head: vmath.Identity()}); err != nil {
		t.Fatal(err)
	}
	state, ok := w.Latest()
	if !ok {
		t.Fatal("no state after NetStep")
	}
	if len(state.Rakes) != 1 || state.TotalPoints() == 0 {
		t.Errorf("rakes=%d points=%d", len(state.Rakes), state.TotalPoints())
	}
	if w.Stats().NetFrames != 1 || w.Stats().BytesDown == 0 {
		t.Errorf("stats = %+v", w.Stats())
	}
}

func TestRenderFrameDrawsGeometry(t *testing.T) {
	w := connect(t, startSystem(t, 4))
	w.Queue(wire.Command{
		Kind: wire.CmdAddRake,
		P0:   vmath.V3(-3, -2, 0), P1: vmath.V3(-3, 2, 0),
		NumSeeds: 6, Tool: uint8(integrate.ToolStreamline),
	})
	if err := w.NetStep(vr.Pose{Head: vmath.Identity()}); err != nil {
		t.Fatal(err)
	}
	head := vmath.Translate(0, 0, 12) // looking down -Z at the grid
	if err := w.RenderFrame(head); err != nil {
		t.Fatal(err)
	}
	if lit := w.Framebuffer().CountLit(10); lit < 20 {
		t.Errorf("rendered frame has %d lit pixels", lit)
	}
}

func TestRenderBeforeFirstNetFrame(t *testing.T) {
	w := connect(t, startSystem(t, 4))
	if err := w.RenderFrame(vmath.Translate(0, 0, 5)); err != nil {
		t.Fatal(err)
	}
	if w.Stats().RenderFrames != 1 {
		t.Error("render frame not counted")
	}
}

func TestDecoupledRatesWithSlowNetwork(t *testing.T) {
	// Figure 9's architecture claim: with a slow network, the render
	// loop still runs much faster than the net loop.
	addr := startSystem(t, 4)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	slow := netsim.Link{Latency: 20 * time.Millisecond}.Wrap(raw)
	c := dlib.NewClient(slow)
	t.Cleanup(func() { c.Close() })
	w, err := New(c, Config{FrameW: 32, FrameH: 32})
	if err != nil {
		t.Fatal(err)
	}
	user, err := vr.NewScriptedUser(1)
	if err != nil {
		t.Fatal(err)
	}
	netHz, renderHz, err := w.RunDecoupled(user, 5)
	if err != nil {
		t.Fatal(err)
	}
	if renderHz < netHz*2 {
		t.Errorf("render loop not decoupled: net %.1f Hz render %.1f Hz", netHz, renderHz)
	}
}

func TestInteractorGrabDragRelease(t *testing.T) {
	var in Interactor
	rakes := []wire.RakeState{{ID: 7, P0: vmath.V3(0, 0, 0), P1: vmath.V3(2, 0, 0)}}

	// Approach with open hand: nothing.
	cmds := in.Commands(vr.Pose{Hand: vmath.V3(0.1, 0.1, 0), Gesture: vr.GestureOpen}, rakes)
	if len(cmds) != 0 {
		t.Fatalf("open hand produced %v", cmds)
	}
	// Fist near P0: grab at end0 + initial move.
	cmds = in.Commands(vr.Pose{Hand: vmath.V3(0.1, 0.1, 0), Gesture: vr.GestureFist}, rakes)
	if len(cmds) != 2 || cmds[0].Kind != wire.CmdGrab || cmds[0].Rake != 7 {
		t.Fatalf("grab cmds = %+v", cmds)
	}
	if cmds[0].Grab != uint8(integrate.GrabEnd0) {
		t.Errorf("grabbed %d, want end0", cmds[0].Grab)
	}
	// Held fist: drag.
	cmds = in.Commands(vr.Pose{Hand: vmath.V3(1, 1, 0), Gesture: vr.GestureFist}, rakes)
	if len(cmds) != 1 || cmds[0].Kind != wire.CmdMove || cmds[0].Pos != vmath.V3(1, 1, 0) {
		t.Fatalf("drag cmds = %+v", cmds)
	}
	// Open: release.
	cmds = in.Commands(vr.Pose{Hand: vmath.V3(1, 1, 0), Gesture: vr.GestureOpen}, rakes)
	if len(cmds) != 1 || cmds[0].Kind != wire.CmdRelease {
		t.Fatalf("release cmds = %+v", cmds)
	}
	if _, holding := in.Holding(); holding {
		t.Error("still holding after release")
	}
}

func TestInteractorIgnoresFarGrabs(t *testing.T) {
	var in Interactor
	rakes := []wire.RakeState{{ID: 1, P0: vmath.V3(0, 0, 0), P1: vmath.V3(1, 0, 0)}}
	cmds := in.Commands(vr.Pose{Hand: vmath.V3(50, 50, 50), Gesture: vr.GestureFist}, rakes)
	if len(cmds) != 0 {
		t.Errorf("distant fist grabbed: %v", cmds)
	}
}

func TestInteractorNoRakes(t *testing.T) {
	var in Interactor
	cmds := in.Commands(vr.Pose{Gesture: vr.GestureFist}, nil)
	if len(cmds) != 0 {
		t.Errorf("grab with no rakes: %v", cmds)
	}
}

func TestEndToEndGestureDrivesServerLock(t *testing.T) {
	// Full loop: workstation gestures grab a rake on the server.
	addr := startSystem(t, 4)
	w := connect(t, addr)
	w.Queue(wire.Command{
		Kind: wire.CmdAddRake,
		P0:   vmath.V3(0, 0, 0), P1: vmath.V3(2, 0, 0),
		NumSeeds: 3, Tool: uint8(integrate.ToolStreamline),
	})
	if err := w.NetStep(vr.Pose{}); err != nil {
		t.Fatal(err)
	}
	// Fist at the rake center.
	if err := w.NetStep(vr.Pose{Hand: vmath.V3(1, 0.1, 0), Gesture: vr.GestureFist}); err != nil {
		t.Fatal(err)
	}
	state, _ := w.Latest()
	if state.Rakes[0].Holder == 0 {
		t.Error("gesture grab did not lock the rake on the server")
	}
	// Drag: rake follows the hand.
	if err := w.NetStep(vr.Pose{Hand: vmath.V3(2, 1, 0), Gesture: vr.GestureFist}); err != nil {
		t.Fatal(err)
	}
	state, _ = w.Latest()
	moved := state.Rakes[0].P0.Dist(vmath.V3(0, 0, 0)) > 0.1 ||
		state.Rakes[0].P1.Dist(vmath.V3(2, 0, 0)) > 0.1
	if !moved {
		t.Error("drag did not move the rake")
	}
	// Release.
	if err := w.NetStep(vr.Pose{Hand: vmath.V3(2, 1, 0), Gesture: vr.GestureOpen}); err != nil {
		t.Fatal(err)
	}
	state, _ = w.Latest()
	if state.Rakes[0].Holder != 0 {
		t.Error("release did not free the rake")
	}
}

func TestOtherUsersHeadsRendered(t *testing.T) {
	// Two workstations: B renders and must see A's head/hand glyphs.
	addr := startSystem(t, 4)
	a := connect(t, addr)
	b := connect(t, addr)
	// A reports a pose near the origin.
	if err := a.NetStep(vr.Pose{Head: vmath.Translate(0, 0, 0), Hand: vmath.V3(1, 0, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := b.NetStep(vr.Pose{}); err != nil {
		t.Fatal(err)
	}
	state, _ := b.Latest()
	if len(state.Users) < 1 {
		t.Fatal("B sees no other users")
	}
	if err := b.RenderFrame(vmath.Translate(0, 0, 10)); err != nil {
		t.Fatal(err)
	}
	if lit := b.Framebuffer().CountLit(10); lit < 10 {
		t.Errorf("user glyphs not visible: %d lit pixels", lit)
	}
}

// TestClientRoundTracking pins the workstation's view of the server's
// round accounting: Rounds counts distinct computation rounds observed,
// so a workstation holding still (whose repeats are memo-served with an
// unchanged Round id) sees Rounds fall behind NetFrames, while a
// head-tracked workstation advancing the scene sees them move together.
func TestClientRoundTracking(t *testing.T) {
	addr := startSystem(t, 2)
	w1 := connect(t, addr)
	w2 := connect(t, addr)

	// w2 holds perfectly still: after its first frame every repeat is a
	// whole-frame memo round carrying the same Round id.
	still := vr.Pose{Head: vmath.Identity()}
	for i := 0; i < 3; i++ {
		if err := w2.NetStep(still); err != nil {
			t.Fatal(err)
		}
	}
	s2 := w2.Stats()
	if s2.NetFrames != 3 {
		t.Fatalf("w2 net frames = %d", s2.NetFrames)
	}
	if s2.Rounds != 1 {
		t.Errorf("still workstation saw %d rounds over %d frames, want 1", s2.Rounds, s2.NetFrames)
	}

	// w1 moves its hand each frame, forcing fresh rounds once it has
	// consumed the current one; its round count tracks its frames.
	for i := 0; i < 3; i++ {
		pose := vr.Pose{Head: vmath.Identity(), Hand: vmath.V3(float32(i), 0.5, 0)}
		if err := w1.NetStep(pose); err != nil {
			t.Fatal(err)
		}
	}
	s1 := w1.Stats()
	if s1.NetFrames != 3 {
		t.Fatalf("w1 net frames = %d", s1.NetFrames)
	}
	// First frame joins w2's standing round; each subsequent one is new.
	if s1.Rounds != 3 {
		t.Errorf("moving workstation saw %d rounds over %d frames, want 3", s1.Rounds, s1.NetFrames)
	}
	if s1.LastRound <= s2.LastRound {
		t.Errorf("moving workstation's last round %d not past still one's %d",
			s1.LastRound, s2.LastRound)
	}

	// w2 steps once more: it joins the latest round, skipping the ones
	// it missed — LastRound jumps to w1's, Rounds advances by one.
	if err := w2.NetStep(still); err != nil {
		t.Fatal(err)
	}
	s2 = w2.Stats()
	if s2.Rounds != 2 {
		t.Errorf("rejoining workstation rounds = %d, want 2", s2.Rounds)
	}
	if s2.LastRound != s1.LastRound {
		t.Errorf("rejoin landed on round %d, want latest %d", s2.LastRound, s1.LastRound)
	}
}
