// Codec v2 on the workstation: hello negotiation with fallback, delta
// decode, and the reconnect resync — a redial kills both sides of the
// delta shadow, so the first frame on the new connection must be a
// full keyframe.
package client

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"repro/internal/dlib"
	"repro/internal/integrate"
	"repro/internal/netsim"
	"repro/internal/vmath"
	"repro/internal/vr"
	"repro/internal/wire"
)

// TestCodecV2Negotiated: a v2-wanting workstation against a v2 server
// speaks v2, and its decoded frames carry real geometry.
func TestCodecV2Negotiated(t *testing.T) {
	srv := buildServer(t, 4)
	a, b := net.Pipe()
	go srv.Dlib().ServeConn(b)
	c := dlib.NewClient(a)
	w, err := New(c, Config{FrameW: 64, FrameH: 64, Codec: wire.CodecV2})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Codec(); got != wire.CodecV2 {
		t.Fatalf("negotiated codec %d, want %d", got, wire.CodecV2)
	}
	user, err := vr.NewScriptedUser(7)
	if err != nil {
		t.Fatal(err)
	}
	w.Queue(wire.Command{Kind: wire.CmdAddRake,
		P0: vmath.V3(-3, 0, 0), P1: vmath.V3(3, 0, 0),
		NumSeeds: 5, Tool: uint8(integrate.ToolStreamline)})
	if err := w.NetStep(user.Step()); err != nil {
		t.Fatal(err)
	}
	latest, ok := w.Latest()
	if !ok || latest.TotalPoints() == 0 {
		t.Fatalf("v2 frame decoded no geometry: %+v", latest)
	}
	// Every decoded point must sit inside the dataset bounds — the
	// quantization box — or the dequantizer is broken.
	info := w.Info()
	for _, g := range latest.Geometry {
		for _, line := range g.Lines {
			for _, p := range line {
				if p.X < info.BoundsMin.X || p.X > info.BoundsMax.X ||
					p.Y < info.BoundsMin.Y || p.Y > info.BoundsMax.Y ||
					p.Z < info.BoundsMin.Z || p.Z > info.BoundsMax.Z {
					t.Fatalf("decoded point %v outside dataset bounds", p)
				}
			}
		}
	}
	// A steady follow-up frame rides the delta path: far smaller than
	// the keyframe.
	key := w.Stats().BytesDown
	if err := w.NetStep(user.Step()); err != nil {
		t.Fatal(err)
	}
	steady := w.Stats().BytesDown - key
	if steady*4 > key {
		t.Fatalf("steady v2 frame %dB, not <1/4 of keyframe %dB", steady, key)
	}
}

// TestCodecV2FallsBackToV1 points a v2-wanting workstation at a server
// that predates vw.hello2 (a bare dlib server speaking only the v1
// procedures). The RemoteError from the unknown procedure must drop
// the session to v1, not kill it.
func TestCodecV2FallsBackToV1(t *testing.T) {
	old := dlib.NewServer()
	info := wire.DatasetInfo{NI: 4, NJ: 4, NK: 4, NumSteps: 2, DT: 0.1,
		BoundsMin: vmath.V3(0, 0, 0), BoundsMax: vmath.V3(1, 1, 1)}
	reply := wire.EncodeFrameReply(wire.FrameReply{
		Time:  wire.TimeStatus{NumSteps: 2},
		Rakes: []wire.RakeState{{ID: 1, NumSeeds: 2}},
		Geometry: []wire.Geometry{{Rake: 1,
			Lines: [][]vmath.Vec3{{vmath.V3(0, 0, 0), vmath.V3(1, 1, 1)}}}},
	})
	old.Register(wire.ProcHello, func(_ *dlib.Ctx, _ []byte) ([]byte, error) {
		return wire.EncodeDatasetInfo(info), nil
	})
	old.Register(wire.ProcWhoAmI, func(ctx *dlib.Ctx, _ []byte) ([]byte, error) {
		return binary.LittleEndian.AppendUint64(nil, uint64(ctx.Session.ID)), nil
	})
	old.Register(wire.ProcFrame, func(_ *dlib.Ctx, _ []byte) ([]byte, error) {
		return reply, nil
	})
	a, b := net.Pipe()
	go old.ServeConn(b)
	c := dlib.NewClient(a)
	w, err := New(c, Config{FrameW: 64, FrameH: 64, Codec: wire.CodecV2})
	if err != nil {
		t.Fatalf("fallback handshake failed: %v", err)
	}
	if got := w.Codec(); got != wire.CodecV1 {
		t.Fatalf("negotiated codec %d, want fallback to %d", got, wire.CodecV1)
	}
	if w.Info() != info {
		t.Fatalf("info %+v, want %+v", w.Info(), info)
	}
	user, err := vr.NewScriptedUser(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.NetStep(user.Step()); err != nil {
		t.Fatalf("v1 frame after fallback: %v", err)
	}
	latest, ok := w.Latest()
	if !ok || latest.TotalPoints() != 2 {
		t.Fatalf("v1 decode after fallback: %+v", latest)
	}
}

// corruptingCaller truncates the Nth successful ProcFrame reply before
// the workstation decodes it, simulating a payload mangled in transit:
// the call itself succeeds, the decode fails partway through.
type corruptingCaller struct {
	dlib.Caller
	frames    int
	corruptAt int
}

func (c *corruptingCaller) Call(proc string, payload []byte) ([]byte, error) {
	out, err := c.Caller.Call(proc, payload)
	if err == nil && proc == wire.ProcFrame {
		c.frames++
		if c.frames == c.corruptAt && len(out) > 8 {
			out = append([]byte(nil), out...)[:len(out)/2]
		}
	}
	return out, err
}

// TestCodecV2DecodeErrorResync is the regression for the corrupted
// delta shadow: a v2 frame that fails to decode partway used to leave
// the decoder's half-applied state in place, silently desyncing every
// later delta against the server's encoder. NetStep must now count the
// error, re-run the codec handshake on the SAME connection (no redial),
// and decode the next frame as a fresh keyframe.
func TestCodecV2DecodeErrorResync(t *testing.T) {
	srv := buildServer(t, 4)
	a, b := net.Pipe()
	go srv.Dlib().ServeConn(b)
	c := dlib.NewClient(a)
	w, err := New(c, Config{FrameW: 64, FrameH: 64, Codec: wire.CodecV2})
	if err != nil {
		t.Fatal(err)
	}
	w.c = &corruptingCaller{Caller: c, corruptAt: 2}
	id := w.SelfID()
	user, err := vr.NewScriptedUser(11)
	if err != nil {
		t.Fatal(err)
	}

	// Frame 1: keyframe with real geometry.
	w.Queue(wire.Command{Kind: wire.CmdAddRake,
		P0: vmath.V3(-3, 0, 0), P1: vmath.V3(3, 0, 0),
		NumSeeds: 5, Tool: uint8(integrate.ToolStreamline)})
	if err := w.NetStep(user.Step()); err != nil {
		t.Fatalf("frame 1: %v", err)
	}
	before, ok := w.Latest()
	if !ok || before.TotalPoints() == 0 {
		t.Fatal("no geometry on the keyframe")
	}
	keyBytes := w.Stats().BytesDown

	// Frame 2 arrives truncated: the decode must fail and be counted,
	// and the last good state must survive for the render loop.
	if err := w.NetStep(user.Step()); err == nil {
		t.Fatal("truncated v2 frame decoded cleanly")
	}
	if got := w.Stats().NetErrors; got != 1 {
		t.Fatalf("NetErrors = %d after decode failure, want 1", got)
	}
	if latest, ok := w.Latest(); !ok || latest.TotalPoints() != before.TotalPoints() {
		t.Fatal("decode failure clobbered the last good state")
	}

	// Frame 3 rides the resynced stream: same connection, same session,
	// and the reply is a full keyframe (the server's encoder restarted),
	// not a delta built on the shadow the client lost.
	preResync := w.Stats().BytesDown
	if err := w.NetStep(user.Step()); err != nil {
		t.Fatalf("frame 3 (post-resync): %v", err)
	}
	resyncBytes := w.Stats().BytesDown - preResync
	after, ok := w.Latest()
	if !ok || after.TotalPoints() != before.TotalPoints() {
		t.Fatalf("post-resync geometry: %d points, want %d",
			after.TotalPoints(), before.TotalPoints())
	}
	if w.SelfID() != id {
		t.Fatal("resync redialed: session id changed on a live connection")
	}
	if w.Codec() != wire.CodecV2 {
		t.Fatalf("codec after resync: %d", w.Codec())
	}
	// Keyframe-sized, not a few-byte reference delta. keyBytes also
	// covers the handshake-free frame-only exchange, so compare halves.
	if resyncBytes*4 < keyBytes {
		t.Fatalf("post-resync frame %dB looks like a delta (keyframe=%dB)", resyncBytes, keyBytes)
	}
	// And the stream is healthy again: one more steady frame decodes.
	if err := w.NetStep(user.Step()); err != nil {
		t.Fatalf("frame 4: %v", err)
	}
}

// TestCodecV2RedialBetweenKeyframeAndDelta kills the connection in the
// narrowest window — after the keyframe flowed but before the first
// delta — so the client holds a populated shadow while the server's
// dies with the session. The redialed stream must restart from a
// keyframe rather than assume the shadow carried over.
func TestCodecV2RedialBetweenKeyframeAndDelta(t *testing.T) {
	srv := buildServer(t, 4)
	// v2 handshake = hello2 + whoami = 6 client-side read ops; the
	// keyframe is ops 7-9; the kill opens on the first delta's read.
	plan := &netsim.FaultPlan{Faults: []netsim.Fault{
		{Kind: netsim.FaultDropRead, AtOp: 10},
	}}
	dial, dials := faultyDialer(srv, 1, plan)
	w, err := NewResilient(dial, Config{FrameW: 64, FrameH: 64, Codec: wire.CodecV2},
		dlib.RedialOptions{
			BaseBackoff: time.Millisecond,
			CallTimeout: 100 * time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	user, err := vr.NewScriptedUser(42)
	if err != nil {
		t.Fatal(err)
	}
	w.Queue(wire.Command{Kind: wire.CmdAddRake,
		P0: vmath.V3(-3, 0, 0), P1: vmath.V3(3, 0, 0),
		NumSeeds: 5, Tool: uint8(integrate.ToolStreamline)})
	if err := w.NetStep(user.Step()); err != nil {
		t.Fatalf("keyframe: %v", err)
	}
	before, ok := w.Latest()
	if !ok || before.TotalPoints() == 0 {
		t.Fatal("no geometry on the keyframe")
	}

	// The first delta never arrives.
	if err := w.NetStep(user.Step()); err == nil {
		t.Fatal("delta frame survived the kill")
	}

	// The next frame rides the new connection and must decode — a
	// fresh keyframe against a fresh decoder — with geometry intact.
	if err := w.NetStep(user.Step()); err != nil {
		t.Fatalf("post-redial frame: %v", err)
	}
	after, ok := w.Latest()
	if !ok || after.TotalPoints() != before.TotalPoints() {
		t.Fatalf("post-redial geometry: %d points, want %d",
			after.TotalPoints(), before.TotalPoints())
	}
	if w.Reconnects() == 0 || dials.Load() < 2 {
		t.Fatalf("no redial happened (reconnects=%d dials=%d)", w.Reconnects(), dials.Load())
	}
	if w.Codec() != wire.CodecV2 {
		t.Fatalf("codec lost across redial: %d", w.Codec())
	}
}

// TestCodecV2ReconnectKeyframeResync: mid-session the link partitions;
// the redial layer reconnects under a new session id, and because both
// delta shadows died with the connection, the first frame back must be
// a full keyframe — geometry intact, byte count keyframe-sized.
func TestCodecV2ReconnectKeyframeResync(t *testing.T) {
	srv := buildServer(t, 4)
	// v2 handshake = hello2 + whoami = 6 client-side read ops; frames
	// are 3 each. Frame 1 (ops 7-9) and frame 2 (ops 10-12) flow; the
	// partition opens on frame 3's first read (op 13).
	plan := &netsim.FaultPlan{Faults: []netsim.Fault{
		{Kind: netsim.FaultDropRead, AtOp: 13},
	}}
	dial, dials := faultyDialer(srv, 1, plan)
	w, err := NewResilient(dial, Config{FrameW: 64, FrameH: 64, Codec: wire.CodecV2},
		dlib.RedialOptions{
			BaseBackoff: time.Millisecond,
			CallTimeout: 100 * time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Codec(); got != wire.CodecV2 {
		t.Fatalf("negotiated codec %d, want %d", got, wire.CodecV2)
	}
	id1 := w.SelfID()
	user, err := vr.NewScriptedUser(42)
	if err != nil {
		t.Fatal(err)
	}

	// Frame 1: add a rake (keyframe). Frame 2: steady delta frame.
	w.Queue(wire.Command{Kind: wire.CmdAddRake,
		P0: vmath.V3(-3, 0, 0), P1: vmath.V3(3, 0, 0),
		NumSeeds: 5, Tool: uint8(integrate.ToolStreamline)})
	if err := w.NetStep(user.Step()); err != nil {
		t.Fatalf("frame 1: %v", err)
	}
	keyBytes := w.Stats().BytesDown
	if err := w.NetStep(user.Step()); err != nil {
		t.Fatalf("frame 2: %v", err)
	}
	steadyBytes := w.Stats().BytesDown - keyBytes
	before, ok := w.Latest()
	if !ok || before.TotalPoints() == 0 {
		t.Fatal("no geometry before the partition")
	}

	// Frame 3 hits the partition; the state and decoder survive.
	if err := w.NetStep(user.Step()); err == nil {
		t.Fatal("frame 3 succeeded through a partition")
	}

	// Frame 4 rides the redialed connection: new session, fresh delta
	// shadows on both ends, so the reply must decode as a keyframe.
	preResync := w.Stats().BytesDown
	if err := w.NetStep(user.Step()); err != nil {
		t.Fatalf("frame 4 (post-redial): %v", err)
	}
	resyncBytes := w.Stats().BytesDown - preResync
	after, ok := w.Latest()
	if !ok || after.TotalPoints() != before.TotalPoints() {
		t.Fatalf("post-resync geometry: %d points, want %d",
			after.TotalPoints(), before.TotalPoints())
	}
	if w.Reconnects() == 0 || dials.Load() < 2 {
		t.Fatalf("no redial happened (reconnects=%d dials=%d)", w.Reconnects(), dials.Load())
	}
	if w.SelfID() == id1 {
		t.Fatal("session id survived the reconnect; server state should have died")
	}
	if w.Codec() != wire.CodecV2 {
		t.Fatalf("codec lost across reconnect: %d", w.Codec())
	}
	// The resync frame re-sent the rake inline: keyframe-sized, not a
	// few-byte reference frame.
	if resyncBytes <= steadyBytes*2 {
		t.Fatalf("post-reconnect frame %dB looks like a delta (steady=%dB); want a keyframe",
			resyncBytes, steadyBytes)
	}
}
