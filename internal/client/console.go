package client

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/integrate"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// Console parsing: the paper's §3 notes "The keyboard and mouse are
// also used as input devices to the virtual environment. The user can
// easily swing the boom away and interact with the computer in the
// usual way." This is that path: text commands become wire commands.
//
// Grammar (one command per line, '#' comments):
//
//	rake add P0 P1 N TOOL     e.g. rake add -3,0.6,1 -3,0.6,14 10 streamline
//	rake rm ID
//	rake seeds ID N
//	rake tool ID TOOL
//	grab ID center|end0|end1
//	release ID
//	move ID X,Y,Z
//	play [SPEED]              default 1; negative reverses
//	stop
//	seek T
//	loop on|off

// ParseCommand parses one console line into a wire command.
func ParseCommand(line string) (wire.Command, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return wire.Command{}, fmt.Errorf("client: empty command")
	}
	switch fields[0] {
	case "rake":
		return parseRake(fields[1:])
	case "grab":
		if len(fields) != 3 {
			return wire.Command{}, fmt.Errorf("client: grab ID center|end0|end1")
		}
		id, err := parseID(fields[1])
		if err != nil {
			return wire.Command{}, err
		}
		gp, err := parseGrab(fields[2])
		if err != nil {
			return wire.Command{}, err
		}
		return wire.Command{Kind: wire.CmdGrab, Rake: id, Grab: uint8(gp)}, nil
	case "release":
		if len(fields) != 2 {
			return wire.Command{}, fmt.Errorf("client: release ID")
		}
		id, err := parseID(fields[1])
		if err != nil {
			return wire.Command{}, err
		}
		return wire.Command{Kind: wire.CmdRelease, Rake: id}, nil
	case "move":
		if len(fields) != 3 {
			return wire.Command{}, fmt.Errorf("client: move ID X,Y,Z")
		}
		id, err := parseID(fields[1])
		if err != nil {
			return wire.Command{}, err
		}
		p, err := parseVec(fields[2])
		if err != nil {
			return wire.Command{}, err
		}
		return wire.Command{Kind: wire.CmdMove, Rake: id, Pos: p}, nil
	case "play":
		speed := float64(1)
		if len(fields) > 2 {
			return wire.Command{}, fmt.Errorf("client: play [SPEED]")
		}
		if len(fields) == 2 {
			var err error
			speed, err = strconv.ParseFloat(fields[1], 32)
			if err != nil {
				return wire.Command{}, fmt.Errorf("client: bad speed %q", fields[1])
			}
		}
		// Play encodes as a speed change; the caller follows with
		// SetPlaying(true) — see ParseScript, which expands it.
		return wire.Command{Kind: wire.CmdSetSpeed, Value: float32(speed)}, nil
	case "stop":
		return wire.Command{Kind: wire.CmdSetPlaying, Flag: 0}, nil
	case "seek":
		if len(fields) != 2 {
			return wire.Command{}, fmt.Errorf("client: seek T")
		}
		t, err := strconv.ParseFloat(fields[1], 32)
		if err != nil {
			return wire.Command{}, fmt.Errorf("client: bad time %q", fields[1])
		}
		return wire.Command{Kind: wire.CmdSeek, Value: float32(t)}, nil
	case "loop":
		if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
			return wire.Command{}, fmt.Errorf("client: loop on|off")
		}
		flag := uint8(0)
		if fields[1] == "on" {
			flag = 1
		}
		return wire.Command{Kind: wire.CmdSetLoop, Flag: flag}, nil
	default:
		return wire.Command{}, fmt.Errorf("client: unknown command %q", fields[0])
	}
}

func parseRake(fields []string) (wire.Command, error) {
	if len(fields) == 0 {
		return wire.Command{}, fmt.Errorf("client: rake add|rm|seeds ...")
	}
	switch fields[0] {
	case "add":
		if len(fields) != 5 {
			return wire.Command{}, fmt.Errorf("client: rake add P0 P1 N TOOL")
		}
		p0, err := parseVec(fields[1])
		if err != nil {
			return wire.Command{}, err
		}
		p1, err := parseVec(fields[2])
		if err != nil {
			return wire.Command{}, err
		}
		n, err := strconv.Atoi(fields[3])
		if err != nil || n < 1 {
			return wire.Command{}, fmt.Errorf("client: bad seed count %q", fields[3])
		}
		tool, err := parseTool(fields[4])
		if err != nil {
			return wire.Command{}, err
		}
		return wire.Command{
			Kind: wire.CmdAddRake, P0: p0, P1: p1,
			NumSeeds: uint32(n), Tool: uint8(tool),
		}, nil
	case "rm":
		if len(fields) != 2 {
			return wire.Command{}, fmt.Errorf("client: rake rm ID")
		}
		id, err := parseID(fields[1])
		if err != nil {
			return wire.Command{}, err
		}
		return wire.Command{Kind: wire.CmdRemoveRake, Rake: id}, nil
	case "tool":
		if len(fields) != 3 {
			return wire.Command{}, fmt.Errorf("client: rake tool ID TOOL")
		}
		id, err := parseID(fields[1])
		if err != nil {
			return wire.Command{}, err
		}
		tool, err := parseTool(fields[2])
		if err != nil {
			return wire.Command{}, err
		}
		return wire.Command{Kind: wire.CmdSetTool, Rake: id, Tool: uint8(tool)}, nil
	case "seeds":
		if len(fields) != 3 {
			return wire.Command{}, fmt.Errorf("client: rake seeds ID N")
		}
		id, err := parseID(fields[1])
		if err != nil {
			return wire.Command{}, err
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 1 {
			return wire.Command{}, fmt.Errorf("client: bad seed count %q", fields[2])
		}
		return wire.Command{Kind: wire.CmdSetSeeds, Rake: id, NumSeeds: uint32(n)}, nil
	default:
		return wire.Command{}, fmt.Errorf("client: unknown rake subcommand %q", fields[0])
	}
}

func parseVec(s string) (vmath.Vec3, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return vmath.Vec3{}, fmt.Errorf("client: bad vector %q (want X,Y,Z)", s)
	}
	var out [3]float32
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 32)
		if err != nil {
			return vmath.Vec3{}, fmt.Errorf("client: bad vector component %q", p)
		}
		out[i] = float32(v)
	}
	return vmath.Vec3{X: out[0], Y: out[1], Z: out[2]}, nil
}

func parseID(s string) (int32, error) {
	id, err := strconv.Atoi(s)
	if err != nil || id < 1 {
		return 0, fmt.Errorf("client: bad rake id %q", s)
	}
	return int32(id), nil
}

func parseGrab(s string) (integrate.GrabPoint, error) {
	switch s {
	case "center":
		return integrate.GrabCenter, nil
	case "end0":
		return integrate.GrabEnd0, nil
	case "end1":
		return integrate.GrabEnd1, nil
	default:
		return integrate.GrabNone, fmt.Errorf("client: bad grab point %q", s)
	}
}

func parseTool(s string) (integrate.ToolKind, error) {
	switch s {
	case "streamline":
		return integrate.ToolStreamline, nil
	case "path", "particle-path":
		return integrate.ToolParticlePath, nil
	case "streak", "streakline", "smoke":
		return integrate.ToolStreakline, nil
	default:
		return 0, fmt.Errorf("client: unknown tool %q", s)
	}
}

// ParseScript reads a whole command script (one command per line,
// blank lines and '#' comments ignored). "play" lines expand to the
// speed command plus a SetPlaying, matching Session.Play.
func ParseScript(r io.Reader) ([]wire.Command, error) {
	var out []wire.Command
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		cmd, err := ParseCommand(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, cmd)
		if strings.HasPrefix(line, "play") {
			out = append(out, wire.Command{Kind: wire.CmdSetPlaying, Flag: 1})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("client: read script: %w", err)
	}
	return out, nil
}
