package vmath

import (
	"fmt"
	"math"
)

// Mat4 is a 4x4 homogeneous transform matrix stored row-major:
// element (row r, column c) is at index 4*r+c. Points transform as
// column vectors, p' = M p, matching the paper's description of the
// BOOM position/orientation matrix concatenated onto the graphics
// transformation stack.
type Mat4 [16]float32

// Identity returns the identity matrix.
func Identity() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// Translate returns a translation by (x, y, z).
func Translate(x, y, z float32) Mat4 {
	return Mat4{
		1, 0, 0, x,
		0, 1, 0, y,
		0, 0, 1, z,
		0, 0, 0, 1,
	}
}

// Scale returns a non-uniform scale by (x, y, z).
func Scale(x, y, z float32) Mat4 {
	return Mat4{
		x, 0, 0, 0,
		0, y, 0, 0,
		0, 0, z, 0,
		0, 0, 0, 1,
	}
}

// RotateX returns a rotation about the X axis by angle radians.
func RotateX(angle float32) Mat4 {
	s, c := sincos(angle)
	return Mat4{
		1, 0, 0, 0,
		0, c, -s, 0,
		0, s, c, 0,
		0, 0, 0, 1,
	}
}

// RotateY returns a rotation about the Y axis by angle radians.
func RotateY(angle float32) Mat4 {
	s, c := sincos(angle)
	return Mat4{
		c, 0, s, 0,
		0, 1, 0, 0,
		-s, 0, c, 0,
		0, 0, 0, 1,
	}
}

// RotateZ returns a rotation about the Z axis by angle radians.
func RotateZ(angle float32) Mat4 {
	s, c := sincos(angle)
	return Mat4{
		c, -s, 0, 0,
		s, c, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

func sincos(angle float32) (s, c float32) {
	s64, c64 := math.Sincos(float64(angle))
	return float32(s64), float32(c64)
}

// Mul returns the matrix product m*n (apply n first, then m).
func (m Mat4) Mul(n Mat4) Mat4 {
	var r Mat4
	for row := 0; row < 4; row++ {
		for col := 0; col < 4; col++ {
			var sum float32
			for k := 0; k < 4; k++ {
				sum += m[4*row+k] * n[4*k+col]
			}
			r[4*row+col] = sum
		}
	}
	return r
}

// TransformPoint applies m to the point p (w = 1) and returns the
// result after perspective division.
func (m Mat4) TransformPoint(p Vec3) Vec3 {
	x := m[0]*p.X + m[1]*p.Y + m[2]*p.Z + m[3]
	y := m[4]*p.X + m[5]*p.Y + m[6]*p.Z + m[7]
	z := m[8]*p.X + m[9]*p.Y + m[10]*p.Z + m[11]
	w := m[12]*p.X + m[13]*p.Y + m[14]*p.Z + m[15]
	if w != 0 && w != 1 {
		inv := 1 / w
		return Vec3{x * inv, y * inv, z * inv}
	}
	return Vec3{x, y, z}
}

// TransformPointW applies m to the point p (w = 1) and returns the raw
// homogeneous result before division. Renderers need the undivided w
// to clip against the near plane.
func (m Mat4) TransformPointW(p Vec3) (Vec3, float32) {
	x := m[0]*p.X + m[1]*p.Y + m[2]*p.Z + m[3]
	y := m[4]*p.X + m[5]*p.Y + m[6]*p.Z + m[7]
	z := m[8]*p.X + m[9]*p.Y + m[10]*p.Z + m[11]
	w := m[12]*p.X + m[13]*p.Y + m[14]*p.Z + m[15]
	return Vec3{x, y, z}, w
}

// TransformDir applies only the rotational/scale part of m to the
// direction d (w = 0).
func (m Mat4) TransformDir(d Vec3) Vec3 {
	return Vec3{
		m[0]*d.X + m[1]*d.Y + m[2]*d.Z,
		m[4]*d.X + m[5]*d.Y + m[6]*d.Z,
		m[8]*d.X + m[9]*d.Y + m[10]*d.Z,
	}
}

// Transposed returns the transpose of m.
func (m Mat4) Transposed() Mat4 {
	var r Mat4
	for row := 0; row < 4; row++ {
		for col := 0; col < 4; col++ {
			r[4*row+col] = m[4*col+row]
		}
	}
	return r
}

// Inverted returns the inverse of m and whether m was invertible.
// A general cofactor inverse; rigid transforms could use a cheaper
// path but inversion happens once per frame, not per point.
func (m Mat4) Inverted() (Mat4, bool) {
	a := [16]float64{}
	for i, v := range m {
		a[i] = float64(v)
	}
	inv := [16]float64{}

	inv[0] = a[5]*a[10]*a[15] - a[5]*a[11]*a[14] - a[9]*a[6]*a[15] +
		a[9]*a[7]*a[14] + a[13]*a[6]*a[11] - a[13]*a[7]*a[10]
	inv[4] = -a[4]*a[10]*a[15] + a[4]*a[11]*a[14] + a[8]*a[6]*a[15] -
		a[8]*a[7]*a[14] - a[12]*a[6]*a[11] + a[12]*a[7]*a[10]
	inv[8] = a[4]*a[9]*a[15] - a[4]*a[11]*a[13] - a[8]*a[5]*a[15] +
		a[8]*a[7]*a[13] + a[12]*a[5]*a[11] - a[12]*a[7]*a[9]
	inv[12] = -a[4]*a[9]*a[14] + a[4]*a[10]*a[13] + a[8]*a[5]*a[14] -
		a[8]*a[6]*a[13] - a[12]*a[5]*a[10] + a[12]*a[6]*a[9]
	inv[1] = -a[1]*a[10]*a[15] + a[1]*a[11]*a[14] + a[9]*a[2]*a[15] -
		a[9]*a[3]*a[14] - a[13]*a[2]*a[11] + a[13]*a[3]*a[10]
	inv[5] = a[0]*a[10]*a[15] - a[0]*a[11]*a[14] - a[8]*a[2]*a[15] +
		a[8]*a[3]*a[14] + a[12]*a[2]*a[11] - a[12]*a[3]*a[10]
	inv[9] = -a[0]*a[9]*a[15] + a[0]*a[11]*a[13] + a[8]*a[1]*a[15] -
		a[8]*a[3]*a[13] - a[12]*a[1]*a[11] + a[12]*a[3]*a[9]
	inv[13] = a[0]*a[9]*a[14] - a[0]*a[10]*a[13] - a[8]*a[1]*a[14] +
		a[8]*a[2]*a[13] + a[12]*a[1]*a[10] - a[12]*a[2]*a[9]
	inv[2] = a[1]*a[6]*a[15] - a[1]*a[7]*a[14] - a[5]*a[2]*a[15] +
		a[5]*a[3]*a[14] + a[13]*a[2]*a[7] - a[13]*a[3]*a[6]
	inv[6] = -a[0]*a[6]*a[15] + a[0]*a[7]*a[14] + a[4]*a[2]*a[15] -
		a[4]*a[3]*a[14] - a[12]*a[2]*a[7] + a[12]*a[3]*a[6]
	inv[10] = a[0]*a[5]*a[15] - a[0]*a[7]*a[13] - a[4]*a[1]*a[15] +
		a[4]*a[3]*a[13] + a[12]*a[1]*a[7] - a[12]*a[3]*a[5]
	inv[14] = -a[0]*a[5]*a[14] + a[0]*a[6]*a[13] + a[4]*a[1]*a[14] -
		a[4]*a[2]*a[13] - a[12]*a[1]*a[6] + a[12]*a[2]*a[5]
	inv[3] = -a[1]*a[6]*a[11] + a[1]*a[7]*a[10] + a[5]*a[2]*a[11] -
		a[5]*a[3]*a[10] - a[9]*a[2]*a[7] + a[9]*a[3]*a[6]
	inv[7] = a[0]*a[6]*a[11] - a[0]*a[7]*a[10] - a[4]*a[2]*a[11] +
		a[4]*a[3]*a[10] + a[8]*a[2]*a[7] - a[8]*a[3]*a[6]
	inv[11] = -a[0]*a[5]*a[11] + a[0]*a[7]*a[9] + a[4]*a[1]*a[11] -
		a[4]*a[3]*a[9] - a[8]*a[1]*a[7] + a[8]*a[3]*a[5]
	inv[15] = a[0]*a[5]*a[10] - a[0]*a[6]*a[9] - a[4]*a[1]*a[10] +
		a[4]*a[2]*a[9] + a[8]*a[1]*a[6] - a[8]*a[2]*a[5]

	det := a[0]*inv[0] + a[1]*inv[4] + a[2]*inv[8] + a[3]*inv[12]
	if det == 0 {
		return Mat4{}, false
	}
	det = 1 / det
	var r Mat4
	for i := range inv {
		r[i] = float32(inv[i] * det)
	}
	return r, true
}

// LookAt returns a view matrix for an eye at eye, looking at target,
// with the given up vector.
func LookAt(eye, target, up Vec3) Mat4 {
	f := target.Sub(eye).Normalized()
	s := f.Cross(up.Normalized()).Normalized()
	u := s.Cross(f)
	view := Mat4{
		s.X, s.Y, s.Z, 0,
		u.X, u.Y, u.Z, 0,
		-f.X, -f.Y, -f.Z, 0,
		0, 0, 0, 1,
	}
	return view.Mul(Translate(-eye.X, -eye.Y, -eye.Z))
}

// Perspective returns a perspective projection matrix with vertical
// field of view fovy (radians), aspect ratio, and near/far planes.
// Clip-space z maps to [-1, 1].
func Perspective(fovy, aspect, near, far float32) Mat4 {
	f := float32(1 / math.Tan(float64(fovy)/2))
	return Mat4{
		f / aspect, 0, 0, 0,
		0, f, 0, 0,
		0, 0, (far + near) / (near - far), 2 * far * near / (near - far),
		0, 0, -1, 0,
	}
}

// ApproxEqual reports whether m and n differ by at most eps in every
// element.
func (m Mat4) ApproxEqual(n Mat4, eps float32) bool {
	for i := range m {
		if absf(m[i]-n[i]) > eps {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (m Mat4) String() string {
	return fmt.Sprintf("[%v %v %v %v; %v %v %v %v; %v %v %v %v; %v %v %v %v]",
		m[0], m[1], m[2], m[3], m[4], m[5], m[6], m[7],
		m[8], m[9], m[10], m[11], m[12], m[13], m[14], m[15])
}
