// Package vmath provides the small fixed-size linear algebra used
// throughout the virtual windtunnel: 3-vectors, 4x4 homogeneous
// matrices, and quaternions. All types are values; operations return
// new values and never mutate their receivers unless the method name
// says so.
package vmath

import (
	"fmt"
	"math"
)

// Vec3 is a 3-component vector of float32. Float32 matches the paper's
// wire format: visualization points travel as arrays of three 32-bit
// IEEE floats (12 bytes/point).
type Vec3 struct {
	X, Y, Z float32
}

// V3 is shorthand for constructing a Vec3.
func V3(x, y, z float32) Vec3 { return Vec3{x, y, z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float32) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Mul returns the component-wise product v*w.
func (v Vec3) Mul(w Vec3) Vec3 { return Vec3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float32 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len returns the Euclidean norm of v.
func (v Vec3) Len() float32 {
	return float32(math.Sqrt(float64(v.Dot(v))))
}

// LenSq returns the squared Euclidean norm of v.
func (v Vec3) LenSq() float32 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float32 { return v.Sub(w).Len() }

// Normalized returns v/|v|, or the zero vector if |v| is zero.
func (v Vec3) Normalized() Vec3 {
	l := v.Len()
	if l == 0 {
		return Vec3{}
	}
	return v.Scale(1 / l)
}

// Lerp returns (1-t)*v + t*w.
func (v Vec3) Lerp(w Vec3, t float32) Vec3 {
	return Vec3{
		v.X + t*(w.X-v.X),
		v.Y + t*(w.Y-v.Y),
		v.Z + t*(w.Z-v.Z),
	}
}

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Min returns the component-wise minimum of v and w.
func (v Vec3) Min(w Vec3) Vec3 {
	return Vec3{min(v.X, w.X), min(v.Y, w.Y), min(v.Z, w.Z)}
}

// Max returns the component-wise maximum of v and w.
func (v Vec3) Max(w Vec3) Vec3 {
	return Vec3{max(v.X, w.X), max(v.Y, w.Y), max(v.Z, w.Z)}
}

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	return isFinite(v.X) && isFinite(v.Y) && isFinite(v.Z)
}

func isFinite(f float32) bool {
	f64 := float64(f)
	return !math.IsNaN(f64) && !math.IsInf(f64, 0)
}

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%g, %g, %g)", v.X, v.Y, v.Z)
}

// ApproxEqual reports whether v and w differ by at most eps in every
// component.
func (v Vec3) ApproxEqual(w Vec3, eps float32) bool {
	return absf(v.X-w.X) <= eps && absf(v.Y-w.Y) <= eps && absf(v.Z-w.Z) <= eps
}

func absf(f float32) float32 {
	if f < 0 {
		return -f
	}
	return f
}

// AABB is an axis-aligned bounding box.
type AABB struct {
	Min, Max Vec3
}

// NewAABB returns the smallest box containing all the given points.
// An empty point list yields an inverted (empty) box.
func NewAABB(pts ...Vec3) AABB {
	const big = math.MaxFloat32
	b := AABB{Min: V3(big, big, big), Max: V3(-big, -big, -big)}
	for _, p := range pts {
		b = b.Extend(p)
	}
	return b
}

// Extend returns the box grown to contain p.
func (b AABB) Extend(p Vec3) AABB {
	return AABB{Min: b.Min.Min(p), Max: b.Max.Max(p)}
}

// Contains reports whether p is inside the box (inclusive).
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Center returns the box center.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Size returns the box extents along each axis.
func (b AABB) Size() Vec3 { return b.Max.Sub(b.Min) }

// Clamp returns p clamped to lie within the box.
func (b AABB) Clamp(p Vec3) Vec3 { return p.Max(b.Min).Min(b.Max) }
