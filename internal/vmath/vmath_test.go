package vmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVec3Basic(t *testing.T) {
	a := V3(1, 2, 3)
	b := V3(4, 5, 6)
	if got := a.Add(b); got != V3(5, 7, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != V3(3, 3, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V3(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Mul(b); got != V3(4, 10, 18) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Neg(); got != V3(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
}

func TestVec3Cross(t *testing.T) {
	x, y, z := V3(1, 0, 0), V3(0, 1, 0), V3(0, 0, 1)
	if got := x.Cross(y); got != z {
		t.Errorf("x cross y = %v, want z", got)
	}
	if got := y.Cross(z); got != x {
		t.Errorf("y cross z = %v, want x", got)
	}
	if got := z.Cross(x); got != y {
		t.Errorf("z cross x = %v, want y", got)
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	// Property: v x w is orthogonal to both v and w.
	f := func(ax, ay, az, bx, by, bz float32) bool {
		v := V3(clampf(ax), clampf(ay), clampf(az))
		w := V3(clampf(bx), clampf(by), clampf(bz))
		c := v.Cross(w)
		scale := v.Len() * w.Len()
		tol := 1e-3 * (scale + 1)
		return absf(c.Dot(v)) <= tol && absf(c.Dot(w)) <= tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampf keeps quick-generated floats in a sane range so float32
// rounding does not swamp the property tolerances.
func clampf(f float32) float32 {
	if f != f || f > 1e3 || f < -1e3 { // NaN or huge
		return 1
	}
	return f
}

func TestVec3Normalized(t *testing.T) {
	v := V3(3, 4, 0).Normalized()
	if !v.ApproxEqual(V3(0.6, 0.8, 0), 1e-6) {
		t.Errorf("Normalized = %v", v)
	}
	if got := (Vec3{}).Normalized(); got != (Vec3{}) {
		t.Errorf("Normalized zero = %v, want zero", got)
	}
}

func TestVec3Lerp(t *testing.T) {
	a, b := V3(0, 0, 0), V3(10, 20, 30)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp 1 = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != V3(5, 10, 15) {
		t.Errorf("Lerp 0.5 = %v", got)
	}
}

func TestVec3IsFinite(t *testing.T) {
	if !V3(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	inf := float32(math.Inf(1))
	nan := float32(math.NaN())
	if V3(inf, 0, 0).IsFinite() || V3(0, nan, 0).IsFinite() {
		t.Error("non-finite vector reported finite")
	}
}

func TestAABB(t *testing.T) {
	b := NewAABB(V3(0, 0, 0), V3(2, 3, 4), V3(-1, 1, 1))
	if b.Min != V3(-1, 0, 0) || b.Max != V3(2, 3, 4) {
		t.Fatalf("bounds = %v..%v", b.Min, b.Max)
	}
	if !b.Contains(V3(0, 1, 2)) {
		t.Error("Contains interior point = false")
	}
	if b.Contains(V3(5, 0, 0)) {
		t.Error("Contains exterior point = true")
	}
	if got := b.Clamp(V3(10, -10, 2)); got != V3(2, 0, 2) {
		t.Errorf("Clamp = %v", got)
	}
	if got := b.Center(); !got.ApproxEqual(V3(0.5, 1.5, 2), 1e-6) {
		t.Errorf("Center = %v", got)
	}
}

func TestMat4Identity(t *testing.T) {
	p := V3(1, 2, 3)
	if got := Identity().TransformPoint(p); got != p {
		t.Errorf("identity transform = %v", got)
	}
}

func TestMat4TranslateRotate(t *testing.T) {
	m := Translate(1, 2, 3)
	if got := m.TransformPoint(V3(0, 0, 0)); got != V3(1, 2, 3) {
		t.Errorf("translate = %v", got)
	}
	// Rotating (1,0,0) by 90 deg about Z gives (0,1,0).
	r := RotateZ(math.Pi / 2)
	got := r.TransformPoint(V3(1, 0, 0))
	if !got.ApproxEqual(V3(0, 1, 0), 1e-6) {
		t.Errorf("rotateZ = %v", got)
	}
	// Direction transform ignores translation.
	tr := Translate(5, 5, 5)
	if got := tr.TransformDir(V3(1, 0, 0)); got != V3(1, 0, 0) {
		t.Errorf("TransformDir with translation = %v", got)
	}
}

func TestMat4MulOrder(t *testing.T) {
	// M = T * R means rotate first, then translate.
	m := Translate(10, 0, 0).Mul(RotateZ(math.Pi / 2))
	got := m.TransformPoint(V3(1, 0, 0))
	if !got.ApproxEqual(V3(10, 1, 0), 1e-5) {
		t.Errorf("T*R transform = %v, want (10,1,0)", got)
	}
}

func TestMat4Inverted(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		m := Translate(rng.Float32()*10-5, rng.Float32()*10-5, rng.Float32()*10-5).
			Mul(RotateX(rng.Float32() * 6)).
			Mul(RotateY(rng.Float32() * 6)).
			Mul(RotateZ(rng.Float32() * 6)).
			Mul(Scale(1+rng.Float32(), 1+rng.Float32(), 1+rng.Float32()))
		inv, ok := m.Inverted()
		if !ok {
			t.Fatalf("iter %d: matrix not invertible", i)
		}
		if got := m.Mul(inv); !got.ApproxEqual(Identity(), 1e-4) {
			t.Fatalf("iter %d: m*inv = %v", i, got)
		}
	}
}

func TestMat4SingularInverted(t *testing.T) {
	if _, ok := Scale(0, 1, 1).Inverted(); ok {
		t.Error("singular matrix reported invertible")
	}
}

func TestMat4Transposed(t *testing.T) {
	m := Translate(1, 2, 3)
	tt := m.Transposed().Transposed()
	if !tt.ApproxEqual(m, 0) {
		t.Errorf("double transpose != original")
	}
}

func TestLookAt(t *testing.T) {
	// Eye at +Z looking at origin: origin maps to (0,0,-dist).
	view := LookAt(V3(0, 0, 5), V3(0, 0, 0), V3(0, 1, 0))
	got := view.TransformPoint(V3(0, 0, 0))
	if !got.ApproxEqual(V3(0, 0, -5), 1e-5) {
		t.Errorf("LookAt origin = %v", got)
	}
	// A point right of the target maps to +X in view space.
	got = view.TransformPoint(V3(1, 0, 0))
	if !got.ApproxEqual(V3(1, 0, -5), 1e-5) {
		t.Errorf("LookAt right = %v", got)
	}
}

func TestPerspective(t *testing.T) {
	p := Perspective(math.Pi/2, 1, 1, 100)
	// A point on the near plane maps to z = -1.
	v, w := p.TransformPointW(V3(0, 0, -1))
	if absf(v.Z/w+1) > 1e-5 {
		t.Errorf("near plane z/w = %v", v.Z/w)
	}
	// A point on the far plane maps to z = +1.
	v, w = p.TransformPointW(V3(0, 0, -100))
	if absf(v.Z/w-1) > 1e-4 {
		t.Errorf("far plane z/w = %v", v.Z/w)
	}
}

func TestQuatRotateMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		axis := V3(rng.Float32()*2-1, rng.Float32()*2-1, rng.Float32()*2-1)
		if axis.Len() < 1e-3 {
			continue
		}
		angle := rng.Float32() * 6
		q := AxisAngle(axis, angle)
		v := V3(rng.Float32()*4-2, rng.Float32()*4-2, rng.Float32()*4-2)
		qv := q.Rotate(v)
		mv := q.Mat4().TransformPoint(v)
		if !qv.ApproxEqual(mv, 1e-4) {
			t.Fatalf("iter %d: quat %v vs mat %v", i, qv, mv)
		}
	}
}

func TestQuatRotatePreservesLength(t *testing.T) {
	f := func(ax, ay, az, angle, vx, vy, vz float32) bool {
		axis := V3(clampf(ax), clampf(ay), clampf(az))
		if axis.Len() < 1e-3 {
			axis = V3(0, 0, 1)
		}
		v := V3(clampf(vx), clampf(vy), clampf(vz))
		got := AxisAngle(axis, clampf(angle)).Rotate(v)
		return absf(got.Len()-v.Len()) <= 1e-2*(v.Len()+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuatMulCompose(t *testing.T) {
	// 90 deg about Z then 90 deg about X equals the composed quaternion.
	qz := AxisAngle(V3(0, 0, 1), math.Pi/2)
	qx := AxisAngle(V3(1, 0, 0), math.Pi/2)
	composed := qx.Mul(qz)
	v := V3(1, 0, 0)
	step := qx.Rotate(qz.Rotate(v))
	if got := composed.Rotate(v); !got.ApproxEqual(step, 1e-5) {
		t.Errorf("composed %v vs stepwise %v", got, step)
	}
}

func TestQuatConjInverse(t *testing.T) {
	q := AxisAngle(V3(1, 2, 3), 1.1)
	v := V3(4, -5, 6)
	back := q.Conj().Rotate(q.Rotate(v))
	if !back.ApproxEqual(v, 1e-4) {
		t.Errorf("conj did not invert: %v", back)
	}
}

func TestQuatSlerpEndpoints(t *testing.T) {
	a := AxisAngle(V3(0, 0, 1), 0.3)
	b := AxisAngle(V3(0, 1, 0), 1.7)
	v := V3(1, 2, 3)
	if got := a.Slerp(b, 0).Rotate(v); !got.ApproxEqual(a.Rotate(v), 1e-4) {
		t.Errorf("slerp(0) = %v", got)
	}
	if got := a.Slerp(b, 1).Rotate(v); !got.ApproxEqual(b.Rotate(v), 1e-4) {
		t.Errorf("slerp(1) = %v", got)
	}
}

func BenchmarkMat4Mul(b *testing.B) {
	m := RotateX(0.3)
	n := Translate(1, 2, 3)
	for i := 0; i < b.N; i++ {
		m = m.Mul(n)
	}
	_ = m
}

func BenchmarkMat4TransformPoint(b *testing.B) {
	m := Perspective(1, 1.3, 0.1, 100).Mul(LookAt(V3(0, 0, 5), Vec3{}, V3(0, 1, 0)))
	p := V3(1, 2, 3)
	for i := 0; i < b.N; i++ {
		p = m.TransformPoint(p)
		p = V3(1, 2, 3)
	}
	_ = p
}
