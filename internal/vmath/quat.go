package vmath

import "math"

// Quat is a unit quaternion (W + Xi + Yj + Zk) representing a 3-D
// rotation. The Polhemus tracker model reports hand orientation as a
// quaternion; the glove converts it to a Mat4 before use.
type Quat struct {
	W, X, Y, Z float32
}

// QuatIdentity returns the identity rotation.
func QuatIdentity() Quat { return Quat{W: 1} }

// AxisAngle returns the quaternion rotating by angle radians around
// the given (not necessarily normalized) axis.
func AxisAngle(axis Vec3, angle float32) Quat {
	a := axis.Normalized()
	s, c := sincos(angle / 2)
	return Quat{W: c, X: a.X * s, Y: a.Y * s, Z: a.Z * s}
}

// Mul returns the quaternion product q*r (apply r first, then q).
func (q Quat) Mul(r Quat) Quat {
	return Quat{
		W: q.W*r.W - q.X*r.X - q.Y*r.Y - q.Z*r.Z,
		X: q.W*r.X + q.X*r.W + q.Y*r.Z - q.Z*r.Y,
		Y: q.W*r.Y - q.X*r.Z + q.Y*r.W + q.Z*r.X,
		Z: q.W*r.Z + q.X*r.Y - q.Y*r.X + q.Z*r.W,
	}
}

// Conj returns the conjugate (inverse for unit quaternions).
func (q Quat) Conj() Quat { return Quat{W: q.W, X: -q.X, Y: -q.Y, Z: -q.Z} }

// Normalized returns q scaled to unit length, or the identity if q is
// zero.
func (q Quat) Normalized() Quat {
	n := float32(math.Sqrt(float64(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)))
	if n == 0 {
		return QuatIdentity()
	}
	inv := 1 / n
	return Quat{q.W * inv, q.X * inv, q.Y * inv, q.Z * inv}
}

// Rotate applies the rotation to v.
func (q Quat) Rotate(v Vec3) Vec3 {
	// v' = q * (0, v) * q^-1, expanded.
	u := Vec3{q.X, q.Y, q.Z}
	s := q.W
	return u.Scale(2 * u.Dot(v)).
		Add(v.Scale(s*s - u.Dot(u))).
		Add(u.Cross(v).Scale(2 * s))
}

// Mat4 returns the rotation as a homogeneous matrix.
func (q Quat) Mat4() Mat4 {
	x, y, z, w := q.X, q.Y, q.Z, q.W
	return Mat4{
		1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y), 0,
		2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x), 0,
		2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y), 0,
		0, 0, 0, 1,
	}
}

// Slerp spherically interpolates from q to r by t in [0, 1].
func (q Quat) Slerp(r Quat, t float32) Quat {
	cosTheta := float64(q.W*r.W + q.X*r.X + q.Y*r.Y + q.Z*r.Z)
	if cosTheta < 0 {
		r = Quat{-r.W, -r.X, -r.Y, -r.Z}
		cosTheta = -cosTheta
	}
	if cosTheta > 0.9995 {
		// Nearly parallel: fall back to normalized lerp.
		return Quat{
			q.W + t*(r.W-q.W),
			q.X + t*(r.X-q.X),
			q.Y + t*(r.Y-q.Y),
			q.Z + t*(r.Z-q.Z),
		}.Normalized()
	}
	theta := math.Acos(cosTheta)
	sinTheta := math.Sin(theta)
	wq := float32(math.Sin((1-float64(t))*theta) / sinTheta)
	wr := float32(math.Sin(float64(t)*theta) / sinTheta)
	return Quat{
		wq*q.W + wr*r.W,
		wq*q.X + wr*r.X,
		wq*q.Y + wr*r.Y,
		wq*q.Z + wr*r.Z,
	}
}
