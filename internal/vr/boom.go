// Package vr simulates the paper's virtual-environment hardware: the
// BOOM counterweighted stereo display (§3), the VPL DataGlove II with
// its Polhemus magnetic tracker, and gesture recognition. The real
// devices are long gone; these models produce the same signals the
// windtunnel consumed — six yoke joint angles folded into a 4x4 head
// matrix, hand position/orientation with tracker noise, and finger
// bends interpreted as gestures.
//
//vw:deterministic
package vr

import (
	"fmt"
	"math"

	"repro/internal/vmath"
)

// BoomJoint names the six yoke joints. "Optical encoders on the joints
// of the yoke assembly are continuously read by the host computer
// providing six angles."
type BoomJoint int

const (
	// BaseYaw rotates the whole yoke about the vertical post.
	BaseYaw BoomJoint = iota
	// BasePitch tilts the first arm.
	BasePitch
	// ElbowPitch bends the second arm relative to the first.
	ElbowPitch
	// WristYaw, WristPitch, WristRoll orient the display head.
	WristYaw
	WristPitch
	WristRoll

	// NumBoomJoints is the joint count.
	NumBoomJoints = 6
)

// Boom models the counterweighted six-joint yoke. The head matrix is
// built "by six successive translations and rotations" (§3).
type Boom struct {
	// Arm1 and Arm2 are the two link lengths (meters).
	Arm1, Arm2 float32
	// BaseHeight is the height of the first joint above the floor.
	BaseHeight float32
	// Limits bounds each joint angle (radians); the yoke permits head
	// motion "with six degrees of freedom within a limited range".
	Limits [NumBoomJoints][2]float32

	angles [NumBoomJoints]float32
}

// NewBoom returns a boom with the default geometry and joint limits.
func NewBoom() *Boom {
	b := &Boom{Arm1: 0.9, Arm2: 0.9, BaseHeight: 1.2}
	b.Limits = [NumBoomJoints][2]float32{
		{-math.Pi, math.Pi},         // base yaw: full circle
		{-1.2, 1.2},                 // base pitch
		{-2.4, 2.4},                 // elbow
		{-math.Pi, math.Pi},         // wrist yaw
		{-1.4, 1.4},                 // wrist pitch
		{-math.Pi / 2, math.Pi / 2}, // wrist roll
	}
	return b
}

// SetAngles sets all six joint angles, returning an error naming the
// first joint outside its limits (the encoders cannot report angles
// the mechanism cannot reach).
func (b *Boom) SetAngles(a [NumBoomJoints]float32) error {
	for j, v := range a {
		if v < b.Limits[j][0] || v > b.Limits[j][1] {
			return fmt.Errorf("vr: joint %d angle %g outside [%g, %g]",
				j, v, b.Limits[j][0], b.Limits[j][1])
		}
	}
	b.angles = a
	return nil
}

// Angles returns the current joint angles.
func (b *Boom) Angles() [NumBoomJoints]float32 { return b.angles }

// HeadMatrix returns the display head's position/orientation as a 4x4
// matrix via forward kinematics: base post up, yaw, pitch, out along
// arm 1, elbow pitch, out along arm 2, then the three wrist rotations.
func (b *Boom) HeadMatrix() vmath.Mat4 {
	a := b.angles
	m := vmath.Translate(0, b.BaseHeight, 0)
	m = m.Mul(vmath.RotateY(a[BaseYaw]))
	m = m.Mul(vmath.RotateX(a[BasePitch]))
	m = m.Mul(vmath.Translate(0, 0, -b.Arm1))
	m = m.Mul(vmath.RotateX(a[ElbowPitch]))
	m = m.Mul(vmath.Translate(0, 0, -b.Arm2))
	m = m.Mul(vmath.RotateY(a[WristYaw]))
	m = m.Mul(vmath.RotateX(a[WristPitch]))
	m = m.Mul(vmath.RotateZ(a[WristRoll]))
	return m
}

// ViewMatrix returns the inverse head matrix — the transform
// concatenated onto the graphics stack so the scene renders from the
// user's point of view (§3).
func (b *Boom) ViewMatrix() (vmath.Mat4, error) {
	inv, ok := b.HeadMatrix().Inverted()
	if !ok {
		return vmath.Mat4{}, fmt.Errorf("vr: singular head matrix")
	}
	return inv, nil
}

// HeadPosition returns the display head position in world space.
func (b *Boom) HeadPosition() vmath.Vec3 {
	return b.HeadMatrix().TransformPoint(vmath.Vec3{})
}

// EyeOffsets returns the left and right eye positions for a given
// interpupillary distance, for stereo rendering.
func (b *Boom) EyeOffsets(ipd float32) (left, right vmath.Vec3) {
	m := b.HeadMatrix()
	half := ipd / 2
	return m.TransformPoint(vmath.V3(-half, 0, 0)), m.TransformPoint(vmath.V3(half, 0, 0))
}
