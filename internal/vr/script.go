package vr

import (
	"math"

	"repro/internal/vmath"
)

// ScriptedUser drives a boom and glove through a deterministic motion
// so examples, tests, and benchmarks can exercise the full input path
// without a human: the head sweeps slowly around the scene while the
// hand reaches out, grabs (fist), drags, and releases (open) in a
// cycle.
type ScriptedUser struct {
	Boom  *Boom
	Glove *Glove
	// GrabTarget is where the hand hovers during the grab phase.
	GrabTarget vmath.Vec3
	// CyclePeriod is the grab/drag/release cycle length in frames.
	CyclePeriod int

	frame int
}

// NewScriptedUser assembles a user with default devices.
func NewScriptedUser(seed int64) (*ScriptedUser, error) {
	tracker := NewPolhemus(vmath.V3(0, 1, 0), 2.5, 0.002, seed)
	glove, err := NewGlove(DefaultCalibration(), tracker)
	if err != nil {
		return nil, err
	}
	// Fiber jitter small enough never to flip a gesture threshold, on a
	// stream decorrelated from the tracker's.
	glove.SetFiberNoise(0.01, seed+1)
	return &ScriptedUser{
		Boom:        NewBoom(),
		Glove:       glove,
		GrabTarget:  vmath.V3(0.3, 1.0, -0.5),
		CyclePeriod: 120,
	}, nil
}

// Pose is one frame of user input.
type Pose struct {
	Head    vmath.Mat4
	Hand    vmath.Vec3
	Gesture Gesture
}

// Step advances one frame and returns the sensed input. The head orbit
// respects the boom joint limits; the hand follows the grab cycle
// through the noisy tracker.
func (u *ScriptedUser) Step() Pose {
	u.frame++
	t := float32(u.frame)

	// Head: slow yaw sweep with gentle nod.
	angles := [NumBoomJoints]float32{
		0.8 * float32(math.Sin(float64(t)*0.01)),  // base yaw
		0.3 * float32(math.Sin(float64(t)*0.007)), // base pitch
		0.5, // elbow
		0.2 * float32(math.Sin(float64(t)*0.013)), // wrist yaw
		0, 0,
	}
	// The scripted angles stay inside the default limits by
	// construction; ignore the error to keep Step infallible.
	_ = u.Boom.SetAngles(angles)

	// Hand: reach toward the target, circle while "dragging".
	phase := u.frame % u.CyclePeriod
	var truePos vmath.Vec3
	var gesture Gesture
	switch {
	case phase < u.CyclePeriod/4: // reach, open hand
		f := float32(phase) / float32(u.CyclePeriod/4)
		truePos = vmath.V3(0, 1, 0).Lerp(u.GrabTarget, f)
		u.Glove.PoseOpen()
	case phase < 3*u.CyclePeriod/4: // fist, drag in a circle
		drag := float32(phase-u.CyclePeriod/4) * 0.05
		truePos = u.GrabTarget.Add(vmath.V3(
			0.1*float32(math.Cos(float64(drag))),
			0.1*float32(math.Sin(float64(drag))),
			0))
		u.Glove.PoseFist()
	default: // release and retreat
		f := float32(phase-3*u.CyclePeriod/4) / float32(u.CyclePeriod/4)
		truePos = u.GrabTarget.Lerp(vmath.V3(0, 1, 0), f)
		u.Glove.PoseOpen()
	}
	gesture = u.Glove.Recognize()

	sensed, _, err := u.Glove.Tracker.Sense(truePos, vmath.QuatIdentity())
	if err != nil {
		// Out of tracker range: the glove reports the last legal pose
		// as real Polhemus setups effectively did; use the source.
		sensed = u.Glove.Tracker.Source
	}
	return Pose{Head: u.Boom.HeadMatrix(), Hand: sensed, Gesture: gesture}
}

// Frame returns how many frames the script has run.
func (u *ScriptedUser) Frame() int { return u.frame }
