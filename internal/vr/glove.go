package vr

import (
	"fmt"
	"math/rand"

	"repro/internal/vmath"
)

// Gesture is a recognized hand shape. The windtunnel grabs rakes with
// a fist and releases by opening the hand.
type Gesture uint8

const (
	// GestureUnknown is anything the recognizer cannot classify.
	GestureUnknown Gesture = iota
	// GestureOpen is a flat hand: release.
	GestureOpen
	// GestureFist is a closed hand: grab.
	GestureFist
	// GesturePoint is index extended, others curled: select/menu.
	GesturePoint
)

func (g Gesture) String() string {
	switch g {
	case GestureOpen:
		return "open"
	case GestureFist:
		return "fist"
	case GesturePoint:
		return "point"
	default:
		return "unknown"
	}
}

// Fingers indexes the five digits.
const (
	Thumb = iota
	Index
	Middle
	Ring
	Little
	NumFingers
)

// FingerBends holds the knuckle and middle joint bend of each finger,
// as the DataGlove's "specially treated optical fibers" measure them
// (radians, 0 = straight).
type FingerBends [NumFingers][2]float32

// Calibration maps raw fiber readings to normalized bends. "The glove
// requires recalibration for each user" (§3): flat and fist reference
// poses are recorded per user.
type Calibration struct {
	Flat FingerBends
	Fist FingerBends
}

// DefaultCalibration assumes ideal fibers: flat = 0, fist = 1.6 rad at
// every joint.
func DefaultCalibration() Calibration {
	var c Calibration
	for f := 0; f < NumFingers; f++ {
		c.Fist[f][0] = 1.6
		c.Fist[f][1] = 1.6
	}
	return c
}

// Validate rejects calibrations whose fist pose does not clearly
// differ from flat.
func (c Calibration) Validate() error {
	for f := 0; f < NumFingers; f++ {
		for j := 0; j < 2; j++ {
			if c.Fist[f][j]-c.Flat[f][j] < 0.2 {
				return fmt.Errorf("vr: calibration finger %d joint %d has range %g < 0.2",
					f, j, c.Fist[f][j]-c.Flat[f][j])
			}
		}
	}
	return nil
}

// normalize maps a raw reading to [0, 1] (0 = flat, 1 = fist).
func (c Calibration) normalize(f, j int, raw float32) float32 {
	lo, hi := c.Flat[f][j], c.Fist[f][j]
	v := (raw - lo) / (hi - lo)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Glove is the instrumented glove: finger bends plus the Polhemus
// tracker giving hand position and orientation.
type Glove struct {
	Calib   Calibration
	Tracker *Polhemus

	bends FingerBends

	// noise perturbs raw fiber readings, modeling the optical fibers'
	// measurement jitter; nil reads are noiseless. Always a privately
	// seeded generator — never the global math/rand — so glove input
	// replays identically for a given seed.
	noise    *rand.Rand
	noiseStd float32
}

// NewGlove returns a glove with the given calibration and tracker.
func NewGlove(c Calibration, tracker *Polhemus) (*Glove, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &Glove{Calib: c, Tracker: tracker}, nil
}

// SetFiberNoise gives the fibers measurement jitter: every subsequent
// raw reading is perturbed by N(0, std) radians. Two gloves configured
// with the same seed and driven through the same pose sequence report
// identical readings, so noisy glove input stays replayable.
func (g *Glove) SetFiberNoise(std float32, seed int64) {
	g.noiseStd = std
	g.noise = rand.New(rand.NewSource(seed))
}

// noisy applies the configured fiber jitter to one raw reading set.
func (g *Glove) noisy(b FingerBends) FingerBends {
	if g.noise == nil || g.noiseStd == 0 {
		return b
	}
	for f := 0; f < NumFingers; f++ {
		for j := 0; j < 2; j++ {
			b[f][j] += float32(g.noise.NormFloat64()) * g.noiseStd
		}
	}
	return b
}

// SetBends records raw fiber readings.
func (g *Glove) SetBends(b FingerBends) { g.bends = g.noisy(b) }

// Bends returns the recorded (post-noise) raw readings.
func (g *Glove) Bends() FingerBends { return g.bends }

// fingerCurl returns the mean normalized bend of one finger.
func (g *Glove) fingerCurl(f int) float32 {
	return (g.Calib.normalize(f, 0, g.bends[f][0]) + g.Calib.normalize(f, 1, g.bends[f][1])) / 2
}

// Recognize classifies the current bends. "These finger joint angles
// are combined and interpreted as gestures" (§3). Thumb is ignored —
// DataGlove thumb readings were notoriously unreliable.
func (g *Glove) Recognize() Gesture {
	const curled, straight = 0.6, 0.35
	idx := g.fingerCurl(Index)
	others := [3]float32{g.fingerCurl(Middle), g.fingerCurl(Ring), g.fingerCurl(Little)}
	allCurled := idx > curled
	allStraight := idx < straight
	othersCurled := true
	for _, c := range others {
		if c <= curled {
			othersCurled = false
		}
		if c >= straight {
			allStraight = false
		}
		if c <= curled {
			allCurled = false
		}
	}
	switch {
	case allCurled:
		return GestureFist
	case allStraight:
		return GestureOpen
	case idx < straight && othersCurled:
		return GesturePoint
	default:
		return GestureUnknown
	}
}

// PoseFist sets raw bends for a grab using the calibration's fist
// reference — test and script helper.
func (g *Glove) PoseFist() { g.SetBends(g.Calib.Fist) }

// PoseOpen sets raw bends for an open hand.
func (g *Glove) PoseOpen() { g.SetBends(g.Calib.Flat) }

// PosePoint sets raw bends for a point (index flat, others fisted).
func (g *Glove) PosePoint() {
	b := g.Calib.Fist
	b[Index] = g.Calib.Flat[Index]
	g.SetBends(b)
}

// Polhemus models the 3Space magnetic tracker: absolute position and
// orientation relative to a source, with noise that grows with
// distance and a hard range limit — "the polhemus tracker has limited
// accuracy and is sensitive to the ambient electromagnetic
// environment" (§3).
type Polhemus struct {
	// Source is the transmitter location.
	Source vmath.Vec3
	// Range is the maximum usable distance from the source.
	Range float32
	// NoiseStd is the positional noise sigma at 1 unit distance; noise
	// scales linearly with distance.
	NoiseStd float32
	// rng drives the noise; deterministic given a seed.
	rng *rand.Rand
}

// NewPolhemus returns a tracker with a deterministic noise stream.
func NewPolhemus(source vmath.Vec3, rangeLimit, noiseStd float32, seed int64) *Polhemus {
	return &Polhemus{
		Source: source, Range: rangeLimit, NoiseStd: noiseStd,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// ErrOutOfRange reports a hand outside the tracker's usable volume.
var ErrOutOfRange = fmt.Errorf("vr: hand outside tracker range")

// Sense returns the sensed position and orientation for the true hand
// pose, with distance-scaled noise, or ErrOutOfRange.
func (p *Polhemus) Sense(truePos vmath.Vec3, trueOrient vmath.Quat) (vmath.Vec3, vmath.Quat, error) {
	d := truePos.Dist(p.Source)
	if d > p.Range {
		return vmath.Vec3{}, vmath.QuatIdentity(), ErrOutOfRange
	}
	sigma := p.NoiseStd * (1 + d)
	sensed := truePos.Add(vmath.V3(
		p.gauss(sigma), p.gauss(sigma), p.gauss(sigma)))
	// Orientation noise: a small random-axis rotation.
	axis := vmath.V3(p.gauss(1), p.gauss(1), p.gauss(1))
	if axis.Len() < 1e-6 {
		axis = vmath.V3(0, 1, 0)
	}
	jitter := vmath.AxisAngle(axis, p.gauss(sigma*0.1))
	return sensed, jitter.Mul(trueOrient).Normalized(), nil
}

func (p *Polhemus) gauss(sigma float32) float32 {
	return float32(p.rng.NormFloat64()) * sigma
}
