package vr

import (
	"math"
	"testing"

	"repro/internal/vmath"
)

func TestBoomJointLimits(t *testing.T) {
	b := NewBoom()
	var a [NumBoomJoints]float32
	if err := b.SetAngles(a); err != nil {
		t.Fatalf("zero pose rejected: %v", err)
	}
	a[BasePitch] = 5 // far beyond the 1.2 limit
	if err := b.SetAngles(a); err == nil {
		t.Error("out-of-limit angle accepted")
	}
	// A rejected set must not corrupt state.
	if b.Angles()[BasePitch] != 0 {
		t.Error("failed SetAngles mutated state")
	}
}

func TestBoomNeutralPose(t *testing.T) {
	b := NewBoom()
	// All angles zero: head sits BaseHeight up and Arm1+Arm2 along -Z.
	p := b.HeadPosition()
	want := vmath.V3(0, b.BaseHeight, -(b.Arm1 + b.Arm2))
	if !p.ApproxEqual(want, 1e-5) {
		t.Errorf("neutral head at %v, want %v", p, want)
	}
}

func TestBoomYawSweep(t *testing.T) {
	b := NewBoom()
	var a [NumBoomJoints]float32
	a[BaseYaw] = math.Pi / 2
	if err := b.SetAngles(a); err != nil {
		t.Fatal(err)
	}
	// Yaw 90 degrees: the arm that pointed -Z now points -X.
	p := b.HeadPosition()
	want := vmath.V3(-(b.Arm1 + b.Arm2), b.BaseHeight, 0)
	if !p.ApproxEqual(want, 1e-4) {
		t.Errorf("yawed head at %v, want %v", p, want)
	}
}

func TestBoomHeadMatrixInvertsToView(t *testing.T) {
	b := NewBoom()
	var a [NumBoomJoints]float32
	a[BaseYaw], a[BasePitch], a[ElbowPitch] = 0.4, 0.2, 0.7
	a[WristYaw], a[WristPitch], a[WristRoll] = -0.3, 0.5, 0.2
	if err := b.SetAngles(a); err != nil {
		t.Fatal(err)
	}
	view, err := b.ViewMatrix()
	if err != nil {
		t.Fatal(err)
	}
	// View must map the head position to the origin.
	got := view.TransformPoint(b.HeadPosition())
	if got.Len() > 1e-4 {
		t.Errorf("view(headPos) = %v, want origin", got)
	}
}

func TestBoomEyeOffsets(t *testing.T) {
	b := NewBoom()
	l, r := b.EyeOffsets(0.064)
	if d := l.Dist(r); absf(d-0.064) > 1e-5 {
		t.Errorf("eye separation = %v", d)
	}
}

func TestGestureRecognition(t *testing.T) {
	g, err := NewGlove(DefaultCalibration(), nil)
	if err != nil {
		t.Fatal(err)
	}
	g.PoseFist()
	if got := g.Recognize(); got != GestureFist {
		t.Errorf("fist pose = %v", got)
	}
	g.PoseOpen()
	if got := g.Recognize(); got != GestureOpen {
		t.Errorf("open pose = %v", got)
	}
	g.PosePoint()
	if got := g.Recognize(); got != GesturePoint {
		t.Errorf("point pose = %v", got)
	}
	// Half-curled everything: unknown.
	var half FingerBends
	for f := 0; f < NumFingers; f++ {
		half[f][0], half[f][1] = 0.8, 0.8
	}
	g.SetBends(half)
	if got := g.Recognize(); got != GestureUnknown {
		t.Errorf("ambiguous pose = %v", got)
	}
}

func TestCalibrationPerUser(t *testing.T) {
	// A user whose "flat" has residual curl: raw bends that would read
	// as half-curled with default calibration still read open.
	var c Calibration
	for f := 0; f < NumFingers; f++ {
		c.Flat[f][0], c.Flat[f][1] = 0.5, 0.5
		c.Fist[f][0], c.Fist[f][1] = 1.4, 1.4
	}
	g, err := NewGlove(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	g.SetBends(c.Flat)
	if got := g.Recognize(); got != GestureOpen {
		t.Errorf("calibrated flat = %v", got)
	}
	g.SetBends(c.Fist)
	if got := g.Recognize(); got != GestureFist {
		t.Errorf("calibrated fist = %v", got)
	}
}

func TestCalibrationValidate(t *testing.T) {
	var c Calibration // fist == flat == 0
	if err := c.Validate(); err == nil {
		t.Error("degenerate calibration accepted")
	}
	if _, err := NewGlove(c, nil); err == nil {
		t.Error("NewGlove accepted degenerate calibration")
	}
}

func TestPolhemusRangeLimit(t *testing.T) {
	p := NewPolhemus(vmath.V3(0, 0, 0), 2, 0.001, 1)
	if _, _, err := p.Sense(vmath.V3(5, 0, 0), vmath.QuatIdentity()); err != ErrOutOfRange {
		t.Errorf("far hand err = %v, want ErrOutOfRange", err)
	}
	if _, _, err := p.Sense(vmath.V3(1, 0, 0), vmath.QuatIdentity()); err != nil {
		t.Errorf("near hand err = %v", err)
	}
}

func TestPolhemusNoiseGrowsWithDistance(t *testing.T) {
	near := NewPolhemus(vmath.V3(0, 0, 0), 100, 0.01, 7)
	far := NewPolhemus(vmath.V3(0, 0, 0), 100, 0.01, 7)
	var nearErr, farErr float64
	const n = 500
	for i := 0; i < n; i++ {
		pn, _, _ := near.Sense(vmath.V3(0.5, 0, 0), vmath.QuatIdentity())
		pf, _, _ := far.Sense(vmath.V3(50, 0, 0), vmath.QuatIdentity())
		nearErr += float64(pn.Dist(vmath.V3(0.5, 0, 0)))
		farErr += float64(pf.Dist(vmath.V3(50, 0, 0)))
	}
	if farErr/n <= nearErr/n {
		t.Errorf("noise did not grow with distance: near %v far %v", nearErr/n, farErr/n)
	}
}

func TestPolhemusDeterministic(t *testing.T) {
	a := NewPolhemus(vmath.V3(0, 0, 0), 10, 0.01, 42)
	b := NewPolhemus(vmath.V3(0, 0, 0), 10, 0.01, 42)
	pa, _, _ := a.Sense(vmath.V3(1, 1, 1), vmath.QuatIdentity())
	pb, _, _ := b.Sense(vmath.V3(1, 1, 1), vmath.QuatIdentity())
	if pa != pb {
		t.Error("same seed produced different noise")
	}
}

func TestScriptedUserCycle(t *testing.T) {
	u, err := NewScriptedUser(3)
	if err != nil {
		t.Fatal(err)
	}
	var sawFist, sawOpen bool
	var lastHead vmath.Mat4
	headMoved := false
	for i := 0; i < u.CyclePeriod*2; i++ {
		p := u.Step()
		switch p.Gesture {
		case GestureFist:
			sawFist = true
		case GestureOpen:
			sawOpen = true
		}
		if i > 0 && !p.Head.ApproxEqual(lastHead, 1e-7) {
			headMoved = true
		}
		lastHead = p.Head
		if !p.Hand.IsFinite() {
			t.Fatalf("frame %d: non-finite hand %v", i, p.Hand)
		}
	}
	if !sawFist || !sawOpen {
		t.Errorf("gesture cycle incomplete: fist=%v open=%v", sawFist, sawOpen)
	}
	if !headMoved {
		t.Error("head never moved")
	}
	if u.Frame() != u.CyclePeriod*2 {
		t.Errorf("frame count = %d", u.Frame())
	}
}

func absf(f float32) float32 {
	if f < 0 {
		return -f
	}
	return f
}

func BenchmarkBoomHeadMatrix(b *testing.B) {
	boom := NewBoom()
	var a [NumBoomJoints]float32
	a[BaseYaw] = 0.5
	boom.SetAngles(a)
	for i := 0; i < b.N; i++ {
		_ = boom.HeadMatrix()
	}
}

// TestGloveFiberNoiseDeterministic pins the glove-side determinism
// invariant vwlint's wallclock analyzer enforces structurally: fiber
// jitter comes from an injected seeded stream, so same-seed gloves
// driven through the same pose sequence report byte-identical readings,
// and a different seed reports a different stream.
func TestGloveFiberNoiseDeterministic(t *testing.T) {
	run := func(seed int64) []FingerBends {
		g, err := NewGlove(DefaultCalibration(), NewPolhemus(vmath.V3(0, 1, 0), 2.5, 0.002, seed))
		if err != nil {
			t.Fatal(err)
		}
		g.SetFiberNoise(0.01, seed)
		var out []FingerBends
		for i := 0; i < 50; i++ {
			switch i % 3 {
			case 0:
				g.PoseOpen()
			case 1:
				g.PoseFist()
			default:
				g.PosePoint()
			}
			out = append(out, g.Bends())
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d: same-seed gloves diverged: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical noise streams")
	}
	// Noise must never flip a scripted gesture: the fist pose still
	// recognizes as a fist through the jitter.
	g, err := NewGlove(DefaultCalibration(), NewPolhemus(vmath.V3(0, 1, 0), 2.5, 0.002, 1))
	if err != nil {
		t.Fatal(err)
	}
	g.SetFiberNoise(0.01, 1)
	for i := 0; i < 200; i++ {
		g.PoseFist()
		if got := g.Recognize(); got != GestureFist {
			t.Fatalf("iteration %d: noisy fist recognized as %v", i, got)
		}
	}
}
