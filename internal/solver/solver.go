// Package solver is the CFD substrate: a 3-D incompressible
// Navier-Stokes solver that generates unsteady flowfield datasets for
// the windtunnel, standing in for the pre-computed Jespersen-Levit
// tapered cylinder solution the paper visualizes.
//
// It is a collocated uniform-grid solver using Chorin's projection
// method: semi-Lagrangian advection (unconditionally stable), explicit
// diffusion, and a Jacobi-iterated pressure Poisson solve, with an
// immersed-boundary solid mask for bodies such as the tapered
// cylinder. It trades accuracy for robustness — the windtunnel needs
// plausible unsteady vortical flow at interactive dataset-generation
// cost, not publication CFD.
package solver

import (
	"fmt"
	"math"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/vmath"
)

// Boundary selects the domain boundary treatment.
type Boundary uint8

const (
	// WindTunnelBounds: inflow at x-min, outflow at x-max, free slip
	// on the other four faces.
	WindTunnelBounds Boundary = iota
	// PeriodicBounds wraps all axes, for validation against exact
	// periodic solutions (Taylor-Green).
	PeriodicBounds
)

// Solver holds the simulation state on an NX x NY x NZ cell grid with
// uniform spacing H. Velocity components are collocated at cell
// centers.
type Solver struct {
	NX, NY, NZ int
	H          float32 // cell size
	Nu         float32 // kinematic viscosity
	InflowU    float32 // inflow speed along +X (WindTunnelBounds)
	Bounds     Boundary

	U, V, W []float32 // velocity
	P       []float32 // pressure (up to a constant)
	Solid   []bool    // immersed solid mask

	// PressureIters is the Jacobi iteration count per projection.
	PressureIters int

	// workers is the slab-parallelism degree (see SetWorkers).
	workers int

	// scratch buffers reused across steps
	u2, v2, w2, div, p2 []float32
}

// New constructs a solver with zero initial velocity.
func New(nx, ny, nz int, h, nu float32, bounds Boundary) (*Solver, error) {
	if nx < 4 || ny < 4 || nz < 4 {
		return nil, fmt.Errorf("solver: grid %dx%dx%d too small (need >= 4 each)", nx, ny, nz)
	}
	if h <= 0 {
		return nil, fmt.Errorf("solver: non-positive cell size %g", h)
	}
	if nu < 0 {
		return nil, fmt.Errorf("solver: negative viscosity %g", nu)
	}
	n := nx * ny * nz
	return &Solver{
		NX: nx, NY: ny, NZ: nz, H: h, Nu: nu, Bounds: bounds,
		U: make([]float32, n), V: make([]float32, n), W: make([]float32, n),
		P: make([]float32, n), Solid: make([]bool, n),
		PressureIters: 40,
		u2:            make([]float32, n), v2: make([]float32, n), w2: make([]float32, n),
		div: make([]float32, n), p2: make([]float32, n),
	}, nil
}

func (s *Solver) idx(i, j, k int) int { return (k*s.NY+j)*s.NX + i }

// wrap maps index i into [0, n) with periodic wrapping.
func wrap(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

func clampi(i, lo, hi int) int {
	if i < lo {
		return lo
	}
	if i > hi {
		return hi
	}
	return i
}

// at returns component a at cell (i, j, k) honoring the boundary mode.
func (s *Solver) at(a []float32, i, j, k int) float32 {
	if s.Bounds == PeriodicBounds {
		return a[s.idx(wrap(i, s.NX), wrap(j, s.NY), wrap(k, s.NZ))]
	}
	return a[s.idx(clampi(i, 0, s.NX-1), clampi(j, 0, s.NY-1), clampi(k, 0, s.NZ-1))]
}

// SetVelocity initializes the velocity from an analytic function of
// cell-center physical position.
func (s *Solver) SetVelocity(f func(p vmath.Vec3) vmath.Vec3) {
	for k := 0; k < s.NZ; k++ {
		for j := 0; j < s.NY; j++ {
			for i := 0; i < s.NX; i++ {
				v := f(s.CellCenter(i, j, k))
				n := s.idx(i, j, k)
				s.U[n], s.V[n], s.W[n] = v.X, v.Y, v.Z
			}
		}
	}
}

// CellCenter returns the physical position of cell (i, j, k).
func (s *Solver) CellCenter(i, j, k int) vmath.Vec3 {
	return vmath.Vec3{
		X: (float32(i) + 0.5) * s.H,
		Y: (float32(j) + 0.5) * s.H,
		Z: (float32(k) + 0.5) * s.H,
	}
}

// DomainSize returns the physical extents.
func (s *Solver) DomainSize() vmath.Vec3 {
	return vmath.Vec3{
		X: float32(s.NX) * s.H,
		Y: float32(s.NY) * s.H,
		Z: float32(s.NZ) * s.H,
	}
}

// AddSolid marks as solid every cell whose center satisfies inside.
func (s *Solver) AddSolid(inside func(p vmath.Vec3) bool) {
	for k := 0; k < s.NZ; k++ {
		for j := 0; j < s.NY; j++ {
			for i := 0; i < s.NX; i++ {
				if inside(s.CellCenter(i, j, k)) {
					s.Solid[s.idx(i, j, k)] = true
				}
			}
		}
	}
}

// AddTaperedCylinder marks the tapered cylinder solid: axis along Z at
// (cx, cy), radius tapering from r0 at z=0 to r1 at z=zmax.
func (s *Solver) AddTaperedCylinder(cx, cy, r0, r1 float32) {
	zmax := float32(s.NZ) * s.H
	s.AddSolid(func(p vmath.Vec3) bool {
		fz := p.Z / zmax
		r := r0 + (r1-r0)*fz
		dx, dy := p.X-cx, p.Y-cy
		return dx*dx+dy*dy < r*r
	})
}

// SetTaperedCylinder replaces the solid mask with a fresh tapered
// cylinder — the live-steering path for reshaping the model between
// timesteps. Cells leaving the solid keep their (zero) velocity and are
// re-entrained by the flow; cells entering it are zeroed by
// enforceBoundaries on the next Step.
func (s *Solver) SetTaperedCylinder(cx, cy, r0, r1 float32) {
	for n := range s.Solid {
		s.Solid[n] = false
	}
	s.AddTaperedCylinder(cx, cy, r0, r1)
}

// MaxSpeed returns the largest velocity magnitude, for CFL step
// selection.
func (s *Solver) MaxSpeed() float32 {
	var m float32
	for i := range s.U {
		sq := s.U[i]*s.U[i] + s.V[i]*s.V[i] + s.W[i]*s.W[i]
		if sq > m {
			m = sq
		}
	}
	return float32(math.Sqrt(float64(m)))
}

// Step advances the simulation by dt.
func (s *Solver) Step(dt float32) {
	s.advect(dt)
	if s.Nu > 0 {
		s.diffuse(dt)
	}
	s.enforceBoundaries()
	s.project(dt)
	s.enforceBoundaries()
}

// sampleVel trilinearly samples velocity at physical point p.
func (s *Solver) sampleVel(p vmath.Vec3) vmath.Vec3 {
	// Convert to cell-center index space.
	x := p.X/s.H - 0.5
	y := p.Y/s.H - 0.5
	z := p.Z/s.H - 0.5
	i0 := int(math.Floor(float64(x)))
	j0 := int(math.Floor(float64(y)))
	k0 := int(math.Floor(float64(z)))
	fx := x - float32(i0)
	fy := y - float32(j0)
	fz := z - float32(k0)
	sample := func(comp []float32) float32 {
		c00 := lerp(s.at(comp, i0, j0, k0), s.at(comp, i0+1, j0, k0), fx)
		c10 := lerp(s.at(comp, i0, j0+1, k0), s.at(comp, i0+1, j0+1, k0), fx)
		c01 := lerp(s.at(comp, i0, j0, k0+1), s.at(comp, i0+1, j0, k0+1), fx)
		c11 := lerp(s.at(comp, i0, j0+1, k0+1), s.at(comp, i0+1, j0+1, k0+1), fx)
		return lerp(lerp(c00, c10, fy), lerp(c01, c11, fy), fz)
	}
	return vmath.Vec3{X: sample(s.U), Y: sample(s.V), Z: sample(s.W)}
}

func lerp(a, b, t float32) float32 { return a + t*(b-a) }

// advect moves velocity with itself using semi-Lagrangian RK2
// backtracing.
func (s *Solver) advect(dt float32) {
	s.forEachSlab(func(kLo, kHi int) {
		s.advectSlab(dt, kLo, kHi)
	})
	s.U, s.u2 = s.u2, s.U
	s.V, s.v2 = s.v2, s.V
	s.W, s.w2 = s.w2, s.W
}

func (s *Solver) advectSlab(dt float32, kLo, kHi int) {
	for k := kLo; k < kHi; k++ {
		for j := 0; j < s.NY; j++ {
			for i := 0; i < s.NX; i++ {
				n := s.idx(i, j, k)
				if s.Solid[n] {
					s.u2[n], s.v2[n], s.w2[n] = 0, 0, 0
					continue
				}
				p := s.CellCenter(i, j, k)
				v1 := vmath.Vec3{X: s.U[n], Y: s.V[n], Z: s.W[n]}
				mid := p.Sub(v1.Scale(dt / 2))
				v2 := s.sampleVel(mid)
				src := p.Sub(v2.Scale(dt))
				v := s.sampleVel(src)
				s.u2[n], s.v2[n], s.w2[n] = v.X, v.Y, v.Z
			}
		}
	}
}

// diffuse applies explicit viscous diffusion. Stability requires
// nu*dt/h^2 < 1/6; Step callers pick dt accordingly (CFLStep helps).
func (s *Solver) diffuse(dt float32) {
	alpha := s.Nu * dt / (s.H * s.H)
	for c := 0; c < 3; c++ {
		var src, dst []float32
		switch c {
		case 0:
			src, dst = s.U, s.u2
		case 1:
			src, dst = s.V, s.v2
		case 2:
			src, dst = s.W, s.w2
		}
		s.forEachSlab(func(kLo, kHi int) {
			for k := kLo; k < kHi; k++ {
				for j := 0; j < s.NY; j++ {
					for i := 0; i < s.NX; i++ {
						n := s.idx(i, j, k)
						if s.Solid[n] {
							dst[n] = 0
							continue
						}
						lap := s.at(src, i+1, j, k) + s.at(src, i-1, j, k) +
							s.at(src, i, j+1, k) + s.at(src, i, j-1, k) +
							s.at(src, i, j, k+1) + s.at(src, i, j, k-1) -
							6*src[n]
						dst[n] = src[n] + alpha*lap
					}
				}
			}
		})
	}
	s.U, s.u2 = s.u2, s.U
	s.V, s.v2 = s.v2, s.V
	s.W, s.w2 = s.w2, s.W
}

// enforceBoundaries applies domain and solid boundary conditions.
func (s *Solver) enforceBoundaries() {
	for n := range s.Solid {
		if s.Solid[n] {
			s.U[n], s.V[n], s.W[n] = 0, 0, 0
		}
	}
	if s.Bounds != WindTunnelBounds {
		return
	}
	for k := 0; k < s.NZ; k++ {
		for j := 0; j < s.NY; j++ {
			// Inflow: fixed velocity.
			in := s.idx(0, j, k)
			s.U[in], s.V[in], s.W[in] = s.InflowU, 0, 0
			// Outflow: zero-gradient.
			out := s.idx(s.NX-1, j, k)
			prev := s.idx(s.NX-2, j, k)
			s.U[out], s.V[out], s.W[out] = s.U[prev], s.V[prev], s.W[prev]
		}
	}
	// Free slip on y and z faces: kill the normal component.
	for k := 0; k < s.NZ; k++ {
		for i := 0; i < s.NX; i++ {
			s.V[s.idx(i, 0, k)] = 0
			s.V[s.idx(i, s.NY-1, k)] = 0
		}
	}
	for j := 0; j < s.NY; j++ {
		for i := 0; i < s.NX; i++ {
			s.W[s.idx(i, j, 0)] = 0
			s.W[s.idx(i, j, s.NZ-1)] = 0
		}
	}
}

// Divergence fills div with the central-difference divergence and
// returns its max absolute value.
func (s *Solver) Divergence() float32 {
	var maxDiv float32
	inv2h := 1 / (2 * s.H)
	for k := 0; k < s.NZ; k++ {
		for j := 0; j < s.NY; j++ {
			for i := 0; i < s.NX; i++ {
				n := s.idx(i, j, k)
				if s.Solid[n] {
					s.div[n] = 0
					continue
				}
				d := (s.at(s.U, i+1, j, k)-s.at(s.U, i-1, j, k))*inv2h +
					(s.at(s.V, i, j+1, k)-s.at(s.V, i, j-1, k))*inv2h +
					(s.at(s.W, i, j, k+1)-s.at(s.W, i, j, k-1))*inv2h
				s.div[n] = d
				if d < 0 {
					d = -d
				}
				if d > maxDiv {
					maxDiv = d
				}
			}
		}
	}
	return maxDiv
}

// project makes the velocity field approximately divergence-free by
// solving lap(p) = div(u)/dt with Jacobi iteration and subtracting
// dt*grad(p).
func (s *Solver) project(dt float32) {
	s.Divergence()
	h2 := s.H * s.H
	for i := range s.P {
		s.P[i] = 0
	}
	for it := 0; it < s.PressureIters; it++ {
		s.forEachSlab(func(kLo, kHi int) {
			for k := kLo; k < kHi; k++ {
				for j := 0; j < s.NY; j++ {
					for i := 0; i < s.NX; i++ {
						n := s.idx(i, j, k)
						if s.Solid[n] {
							s.p2[n] = 0
							continue
						}
						sum := s.at(s.P, i+1, j, k) + s.at(s.P, i-1, j, k) +
							s.at(s.P, i, j+1, k) + s.at(s.P, i, j-1, k) +
							s.at(s.P, i, j, k+1) + s.at(s.P, i, j, k-1)
						s.p2[n] = (sum - h2*s.div[n]/dt) / 6
					}
				}
			}
		})
		s.P, s.p2 = s.p2, s.P
	}
	inv2h := 1 / (2 * s.H)
	s.forEachSlab(func(kLo, kHi int) {
		for k := kLo; k < kHi; k++ {
			for j := 0; j < s.NY; j++ {
				for i := 0; i < s.NX; i++ {
					n := s.idx(i, j, k)
					if s.Solid[n] {
						continue
					}
					s.U[n] -= dt * (s.at(s.P, i+1, j, k) - s.at(s.P, i-1, j, k)) * inv2h
					s.V[n] -= dt * (s.at(s.P, i, j+1, k) - s.at(s.P, i, j-1, k)) * inv2h
					s.W[n] -= dt * (s.at(s.P, i, j, k+1) - s.at(s.P, i, j, k-1)) * inv2h
				}
			}
		}
	})
}

// CFLStep returns a stable timestep for the current state: the
// minimum of the advective CFL limit and the explicit diffusion limit.
func (s *Solver) CFLStep(cfl float32) float32 {
	dt := float32(0.1)
	if vmax := s.MaxSpeed(); vmax > 0 {
		dt = cfl * s.H / vmax
	}
	if s.Nu > 0 {
		dMax := s.H * s.H / (6 * s.Nu) * 0.9
		if dMax < dt {
			dt = dMax
		}
	}
	return dt
}

// KineticEnergy returns the total kinetic energy (0.5 sum |u|^2 h^3),
// used by Taylor-Green validation.
func (s *Solver) KineticEnergy() float64 {
	var sum float64
	for i := range s.U {
		sum += float64(s.U[i]*s.U[i] + s.V[i]*s.V[i] + s.W[i]*s.W[i])
	}
	h3 := float64(s.H) * float64(s.H) * float64(s.H)
	return 0.5 * sum * h3
}

// FieldOn samples the solver's velocity onto the nodes of a
// curvilinear grid (physical coordinates), producing a windtunnel
// timestep.
func (s *Solver) FieldOn(g *grid.Grid) *field.Field {
	f := field.NewField(g.NI, g.NJ, g.NK, field.Physical)
	for k := 0; k < g.NK; k++ {
		for j := 0; j < g.NJ; j++ {
			for i := 0; i < g.NI; i++ {
				f.SetAt(i, j, k, s.sampleVel(g.At(i, j, k)))
			}
		}
	}
	return f
}
