package solver

import (
	"runtime"
	"sync"
)

// Workers controls slab parallelism for the solver's sweeps. The
// default (0) runs serially; set it to GOMAXPROCS for multi-core
// dataset generation. Every sweep writes each cell exactly once from
// its own slab, so parallel results are bit-identical to serial ones.

// SetWorkers configures the worker count (clamped to [1, NZ]).
func (s *Solver) SetWorkers(n int) {
	if n <= 0 {
		n = 1
	}
	if n > s.NZ {
		n = s.NZ
	}
	s.workers = n
}

// AutoWorkers sets the worker count to the machine's parallelism.
func (s *Solver) AutoWorkers() {
	s.SetWorkers(runtime.GOMAXPROCS(0))
}

// forEachSlab runs fn over [0, NZ) split into contiguous k-slabs, in
// parallel when workers > 1.
func (s *Solver) forEachSlab(fn func(k0, k1 int)) {
	w := s.workers
	if w <= 1 {
		fn(0, s.NZ)
		return
	}
	var wg sync.WaitGroup
	per := (s.NZ + w - 1) / w
	for k0 := 0; k0 < s.NZ; k0 += per {
		k1 := k0 + per
		if k1 > s.NZ {
			k1 = s.NZ
		}
		wg.Add(1)
		go func(k0, k1 int) {
			defer wg.Done()
			fn(k0, k1)
		}(k0, k1)
	}
	wg.Wait()
}
