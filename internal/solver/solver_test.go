package solver

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/vmath"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(2, 8, 8, 0.1, 0.01, WindTunnelBounds); err == nil {
		t.Error("tiny grid accepted")
	}
	if _, err := New(8, 8, 8, 0, 0.01, WindTunnelBounds); err == nil {
		t.Error("zero cell size accepted")
	}
	if _, err := New(8, 8, 8, 0.1, -1, WindTunnelBounds); err == nil {
		t.Error("negative viscosity accepted")
	}
}

func TestProjectionReducesDivergence(t *testing.T) {
	s, err := New(16, 16, 16, 1.0/16, 0, PeriodicBounds)
	if err != nil {
		t.Fatal(err)
	}
	// Seed a divergent field with zero mean divergence (the periodic
	// Poisson compatibility condition). The collocated central-
	// difference projection has a per-mode removal floor of
	// (1 - cos kh)/2, so use a low-frequency mode (2 wavelengths
	// across the box, floor ~15%) and enough Jacobi iterations to
	// actually solve the Poisson equation for it.
	s.PressureIters = 200
	L := s.DomainSize().X
	s.SetVelocity(func(p vmath.Vec3) vmath.Vec3 {
		return vmath.V3(float32(math.Sin(4*math.Pi*float64(p.X/L))), 0, 0)
	})
	before := s.Divergence()
	s.project(0.1)
	after := s.Divergence()
	if after > before/4 {
		t.Errorf("projection weak: divergence %v -> %v", before, after)
	}
}

func TestTaylorGreenEnergyDecay(t *testing.T) {
	// The 2-D Taylor-Green vortex on a periodic box decays with
	// KE(t) = KE(0) exp(-4 nu t). Run a short simulation and compare
	// against the exact decay rate within tolerance.
	const n = 24
	nu := float32(0.05)
	h := float32(2 * math.Pi / n)
	s, err := New(n, n, n, h, nu, PeriodicBounds)
	if err != nil {
		t.Fatal(err)
	}
	s.SetVelocity(func(p vmath.Vec3) vmath.Vec3 {
		return vmath.Vec3{
			X: float32(math.Cos(float64(p.X)) * math.Sin(float64(p.Y))),
			Y: float32(-math.Sin(float64(p.X)) * math.Cos(float64(p.Y))),
		}
	})
	ke0 := s.KineticEnergy()
	var elapsed float32
	prev := ke0
	for step := 0; step < 20; step++ {
		dt := s.CFLStep(0.8)
		s.Step(dt)
		elapsed += dt
		ke := s.KineticEnergy()
		if ke > prev*1.001 {
			t.Fatalf("kinetic energy grew at step %d: %v -> %v", step, prev, ke)
		}
		prev = ke
	}
	ke := s.KineticEnergy()
	want := ke0 * math.Exp(-4*float64(nu)*float64(elapsed))
	ratio := ke / want
	// Semi-Lagrangian advection adds numerical dissipation on top of
	// the viscous rate, so measured energy sits below the exact decay;
	// it must never sit above it, and must stay the dominant fraction.
	if ratio > 1.05 || ratio < 0.35 {
		t.Errorf("KE after t=%v: %v, exact %v (ratio %v)", elapsed, ke, want, ratio)
	}
}

func TestSolidCellsStayZero(t *testing.T) {
	s, err := New(16, 12, 8, 0.25, 0.001, WindTunnelBounds)
	if err != nil {
		t.Fatal(err)
	}
	s.InflowU = 1
	s.AddTaperedCylinder(2, 1.5, 0.6, 0.3)
	var solidCount int
	for _, sol := range s.Solid {
		if sol {
			solidCount++
		}
	}
	if solidCount == 0 {
		t.Fatal("no solid cells marked")
	}
	s.SetVelocity(func(vmath.Vec3) vmath.Vec3 { return vmath.V3(1, 0, 0) })
	for i := 0; i < 5; i++ {
		s.Step(s.CFLStep(0.5))
	}
	for n, sol := range s.Solid {
		if sol && (s.U[n] != 0 || s.V[n] != 0 || s.W[n] != 0) {
			t.Fatalf("solid cell %d has velocity (%v,%v,%v)", n, s.U[n], s.V[n], s.W[n])
		}
	}
}

func TestUniformInflowStaysBounded(t *testing.T) {
	s, err := New(24, 12, 8, 0.25, 0.002, WindTunnelBounds)
	if err != nil {
		t.Fatal(err)
	}
	s.InflowU = 1
	s.SetVelocity(func(vmath.Vec3) vmath.Vec3 { return vmath.V3(1, 0, 0) })
	for i := 0; i < 20; i++ {
		s.Step(s.CFLStep(0.5))
	}
	if m := s.MaxSpeed(); m > 2 || math.IsNaN(float64(m)) {
		t.Errorf("flow unstable: max speed %v", m)
	}
	// Interior speed should stay near the inflow speed without body.
	mid := s.idx(12, 6, 4)
	if absf(s.U[mid]-1) > 0.3 {
		t.Errorf("interior u = %v, want ~1", s.U[mid])
	}
}

func TestCylinderDeflectsFlow(t *testing.T) {
	s, err := New(32, 16, 8, 0.25, 0.002, WindTunnelBounds)
	if err != nil {
		t.Fatal(err)
	}
	s.InflowU = 1
	s.AddTaperedCylinder(2.5, 2, 0.7, 0.5)
	s.SetVelocity(func(vmath.Vec3) vmath.Vec3 { return vmath.V3(1, 0, 0) })
	for i := 0; i < 30; i++ {
		s.Step(s.CFLStep(0.5))
	}
	// The flow above the cylinder accelerates past the inflow speed
	// (continuity) and transverse velocity appears.
	above := s.idx(10, 13, 4)
	if s.U[above] <= 1.0 {
		t.Errorf("no acceleration over body: u = %v", s.U[above])
	}
	var maxV float32
	for _, v := range s.V {
		if absf(v) > maxV {
			maxV = absf(v)
		}
	}
	if maxV < 0.05 {
		t.Errorf("no transverse deflection: max |v| = %v", maxV)
	}
}

func TestCFLStepLimits(t *testing.T) {
	s, _ := New(8, 8, 8, 0.1, 0.01, PeriodicBounds)
	s.SetVelocity(func(vmath.Vec3) vmath.Vec3 { return vmath.V3(10, 0, 0) })
	dt := s.CFLStep(0.5)
	if dt > 0.5*0.1/10+1e-6 {
		t.Errorf("CFL step %v exceeds advective limit", dt)
	}
	if dLim := 0.1 * 0.1 / (6 * 0.01); dt > float32(dLim) {
		t.Errorf("CFL step %v exceeds diffusive limit %v", dt, dLim)
	}
}

func TestFieldOnGrid(t *testing.T) {
	s, err := New(16, 16, 8, 0.5, 0, WindTunnelBounds)
	if err != nil {
		t.Fatal(err)
	}
	s.SetVelocity(func(p vmath.Vec3) vmath.Vec3 { return vmath.V3(2, 0, 0) })
	g, err := grid.NewCartesian(8, 8, 4, vmath.AABB{
		Min: vmath.V3(1, 1, 1), Max: vmath.V3(6, 6, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := s.FieldOn(g)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := f.At(4, 4, 2); !got.ApproxEqual(vmath.V3(2, 0, 0), 1e-4) {
		t.Errorf("sampled interior velocity = %v", got)
	}
}

func absf(f float32) float32 {
	if f < 0 {
		return -f
	}
	return f
}

func BenchmarkSolverStep(b *testing.B) {
	s, _ := New(24, 16, 8, 0.25, 0.002, WindTunnelBounds)
	s.InflowU = 1
	s.AddTaperedCylinder(2, 2, 0.6, 0.3)
	s.SetVelocity(func(vmath.Vec3) vmath.Vec3 { return vmath.V3(1, 0, 0) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(0.05)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// Slab parallelism must be bit-identical to serial execution:
	// every sweep writes each cell exactly once from its own slab.
	mk := func() *Solver {
		s, err := New(20, 16, 12, 0.25, 0.003, WindTunnelBounds)
		if err != nil {
			t.Fatal(err)
		}
		s.InflowU = 1
		s.AddTaperedCylinder(2, 2, 0.6, 0.3)
		s.SetVelocity(func(p vmath.Vec3) vmath.Vec3 {
			return vmath.V3(1, 0.1*p.Y, 0)
		})
		return s
	}
	serial := mk()
	parallel := mk()
	parallel.SetWorkers(4)
	for step := 0; step < 5; step++ {
		dt := serial.CFLStep(0.5)
		serial.Step(dt)
		parallel.Step(dt)
	}
	for n := range serial.U {
		if serial.U[n] != parallel.U[n] || serial.V[n] != parallel.V[n] || serial.W[n] != parallel.W[n] {
			t.Fatalf("cell %d differs: serial (%v,%v,%v) parallel (%v,%v,%v)",
				n, serial.U[n], serial.V[n], serial.W[n],
				parallel.U[n], parallel.V[n], parallel.W[n])
		}
	}
}

func TestSetWorkersClamps(t *testing.T) {
	s, _ := New(8, 8, 8, 0.1, 0, PeriodicBounds)
	s.SetWorkers(-3)
	s.SetWorkers(1000) // > NZ: clamped, must not panic
	s.AutoWorkers()
	s.Step(0.01)
}
