package flow

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/vmath"
)

func TestUniform(t *testing.T) {
	u := Uniform{Velocity: vmath.V3(1, 2, 3)}
	if got := u.VelocityAt(vmath.V3(9, 9, 9), 42); got != vmath.V3(1, 2, 3) {
		t.Errorf("uniform velocity = %v", got)
	}
}

func TestTaperedCylinderNoFlowInsideBody(t *testing.T) {
	tc := DefaultTaperedCylinder()
	for _, z := range []float32{0, 8, 16} {
		r := tc.radiusAt(z)
		p := vmath.V3(0.3*r, 0.3*r, z)
		got := tc.potential(p, r)
		if got != (vmath.Vec3{}) {
			t.Errorf("flow inside body at z=%v: %v", z, got)
		}
	}
}

func TestTaperedCylinderFreeStreamFarField(t *testing.T) {
	tc := DefaultTaperedCylinder()
	// Far upstream and far to the side, velocity approaches U0 x-hat.
	for _, p := range []vmath.Vec3{
		vmath.V3(-500, 0, 8), vmath.V3(0, 500, 8), vmath.V3(-300, 300, 2),
	} {
		v := tc.VelocityAt(p, 1.0)
		if v.Sub(vmath.V3(tc.U0, 0, 0)).Len() > 0.02*tc.U0 {
			t.Errorf("far field at %v = %v, want ~(%v,0,0)", p, v, tc.U0)
		}
	}
}

func TestTaperedCylinderStagnation(t *testing.T) {
	tc := DefaultTaperedCylinder()
	// The front stagnation point (-R0, 0, 0) has ~zero potential
	// velocity (street vortices live downstream only).
	v := tc.VelocityAt(vmath.V3(-tc.R0, 0, 0), 0)
	if v.Len() > 0.05*tc.U0 {
		t.Errorf("stagnation point velocity = %v", v)
	}
}

func TestTaperedCylinderUnsteadyWake(t *testing.T) {
	tc := DefaultTaperedCylinder()
	// The wake velocity at a fixed probe changes over a shedding
	// period — the flow must be genuinely unsteady.
	probe := vmath.V3(4*tc.R0, 0.5*tc.R0, 0)
	period := 2 * tc.R0 / (tc.Strouhal * tc.U0)
	v0 := tc.VelocityAt(probe, 0)
	varied := false
	for i := 1; i <= 8; i++ {
		v := tc.VelocityAt(probe, float32(i)*period/8)
		if v.Sub(v0).Len() > 0.05*tc.U0 {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("wake probe velocity constant over a shedding period")
	}
}

func TestTaperedCylinderSpanwisePhaseVariation(t *testing.T) {
	tc := DefaultTaperedCylinder()
	// Because the radius tapers, shedding frequency differs along the
	// span, so two spanwise stations decorrelate over time.
	pA := vmath.V3(4, 0.5, 1)
	pB := vmath.V3(4, 0.5, 15)
	same := true
	for _, tt := range []float32{3, 6, 9, 12} {
		va := tc.VelocityAt(pA, tt)
		vb := tc.VelocityAt(pB, tt)
		if va.Sub(vb).Len() > 0.05 {
			same = false
			break
		}
	}
	if same {
		t.Error("no spanwise variation in the shed wake")
	}
}

func TestABCIncompressibleDivergence(t *testing.T) {
	// ABC flow is divergence-free; check numerically at random points.
	f := ABC{A: 1, B: 0.7, C: 0.43, Omega: 0}
	rng := rand.New(rand.NewSource(5))
	const h = 1e-3
	for n := 0; n < 50; n++ {
		p := vmath.V3(rng.Float32()*6, rng.Float32()*6, rng.Float32()*6)
		div := (f.VelocityAt(p.Add(vmath.V3(h, 0, 0)), 0).X-f.VelocityAt(p.Sub(vmath.V3(h, 0, 0)), 0).X)/(2*h) +
			(f.VelocityAt(p.Add(vmath.V3(0, h, 0)), 0).Y-f.VelocityAt(p.Sub(vmath.V3(0, h, 0)), 0).Y)/(2*h) +
			(f.VelocityAt(p.Add(vmath.V3(0, 0, h)), 0).Z-f.VelocityAt(p.Sub(vmath.V3(0, 0, h)), 0).Z)/(2*h)
		if absf(div) > 2e-2 {
			t.Fatalf("divergence at %v = %v", p, div)
		}
	}
}

func TestTaylorGreenDecay(t *testing.T) {
	f := TaylorGreen{Nu: 0.1}
	p := vmath.V3(0.7, 1.1, 0)
	v0 := f.VelocityAt(p, 0).Len()
	v1 := f.VelocityAt(p, 5).Len()
	wantRatio := float32(math.Exp(-2 * 0.1 * 5))
	if absf(v1/v0-wantRatio) > 1e-4 {
		t.Errorf("decay ratio = %v, want %v", v1/v0, wantRatio)
	}
}

func TestRankineVortexTangential(t *testing.T) {
	f := Rankine{Gamma: 2 * math.Pi, Core: 0.5}
	// Outside the core, |v| = Gamma/(2 pi r) = 1/r; velocity is
	// perpendicular to the radius.
	p := vmath.V3(2, 0, 0)
	v := f.VelocityAt(p, 0)
	if absf(v.Len()-0.5) > 1e-5 {
		t.Errorf("|v| at r=2 is %v, want 0.5", v.Len())
	}
	if absf(v.Dot(p)) > 1e-5 {
		t.Errorf("velocity not tangential: v.r = %v", v.Dot(p))
	}
	// Inside the core, solid-body rotation: |v| proportional to r.
	vin := f.VelocityAt(vmath.V3(0.25, 0, 0), 0)
	if absf(vin.Len()-1) > 1e-5 { // g*r/core^2 = 1*0.25/0.25 = 1
		t.Errorf("core |v| = %v, want 1", vin.Len())
	}
}

func TestSampleMatchesPointwise(t *testing.T) {
	g, err := grid.NewCartesian(5, 5, 5, vmath.AABB{
		Min: vmath.V3(0, 0, 0), Max: vmath.V3(6, 6, 6),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := ABC{A: 1, B: 1, C: 1}
	fld := Sample(f, g, 2.0)
	if fld.Coords != field.Physical {
		t.Error("sampled field not physical")
	}
	for _, node := range [][3]int{{0, 0, 0}, {2, 3, 4}, {4, 4, 4}} {
		want := f.VelocityAt(g.At(node[0], node[1], node[2]), 2.0)
		got := fld.At(node[0], node[1], node[2])
		if !got.ApproxEqual(want, 1e-6) {
			t.Errorf("node %v = %v, want %v", node, got, want)
		}
	}
}

func TestSampleUnsteady(t *testing.T) {
	g, _ := grid.NewCartesian(4, 4, 4, vmath.AABB{
		Min: vmath.V3(0, 0, 0), Max: vmath.V3(3, 3, 3),
	})
	u, err := SampleUnsteady(TaylorGreen{Nu: 0.2}, g, 5, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumSteps() != 5 {
		t.Fatalf("NumSteps = %d", u.NumSteps())
	}
	// Successive timesteps must decay.
	p0 := u.Steps[0].At(1, 2, 0).Len()
	p4 := u.Steps[4].At(1, 2, 0).Len()
	if p4 >= p0 {
		t.Errorf("no decay across timesteps: %v -> %v", p0, p4)
	}
	if _, err := SampleUnsteady(TaylorGreen{}, g, 0, 0, 0.5); err == nil {
		t.Error("zero timesteps accepted")
	}
}

func TestSampledFieldsAreFinite(t *testing.T) {
	g, err := grid.NewTaperedCylinder(grid.TaperedCylinderSpec{
		NI: 16, NJ: 16, NK: 8, R0: 1, R1: 0.5, Router: 12, Span: 16, Stretch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	fld := Sample(DefaultTaperedCylinder(), g, 7.3)
	if err := fld.Validate(); err != nil {
		t.Fatal(err)
	}
}

func absf(f float32) float32 {
	if f < 0 {
		return -f
	}
	return f
}

func BenchmarkTaperedCylinderVelocityAt(b *testing.B) {
	tc := DefaultTaperedCylinder()
	p := vmath.V3(3, 1, 5)
	var sink vmath.Vec3
	for i := 0; i < b.N; i++ {
		sink = tc.VelocityAt(p, float32(i)*0.01)
	}
	_ = sink
}

func BenchmarkSampleTimestep(b *testing.B) {
	g, _ := grid.NewTaperedCylinder(grid.TaperedCylinderSpec{
		NI: 32, NJ: 32, NK: 16, R0: 1, R1: 0.5, Router: 12, Span: 16, Stretch: 2,
	})
	tc := DefaultTaperedCylinder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sample(tc, g, float32(i))
	}
}
