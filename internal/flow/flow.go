// Package flow provides analytic unsteady velocity fields used to
// synthesize datasets. The paper visualizes a pre-computed
// Navier-Stokes solution of flow past a tapered cylinder (Jespersen &
// Levit); that solution is not available, so the windtunnel is fed
// either output from internal/solver or the analytic models here,
// which reproduce the qualitative phenomena the paper calls out:
// periodic vortex shedding, recirculation, and spanwise variation from
// the taper.
package flow

import (
	"fmt"
	"math"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/vmath"
)

// Flow is an analytic time-dependent velocity field in physical
// coordinates.
type Flow interface {
	// VelocityAt returns the physical velocity at point p and time t.
	VelocityAt(p vmath.Vec3, t float32) vmath.Vec3
	// Name identifies the flow in dataset metadata and logs.
	Name() string
}

// Sample evaluates the flow at every node of g at time t, returning a
// physical-coordinate field.
func Sample(f Flow, g *grid.Grid, t float32) *field.Field {
	out := field.NewField(g.NI, g.NJ, g.NK, field.Physical)
	for k := 0; k < g.NK; k++ {
		for j := 0; j < g.NJ; j++ {
			for i := 0; i < g.NI; i++ {
				out.SetAt(i, j, k, f.VelocityAt(g.At(i, j, k), t))
			}
		}
	}
	return out
}

// SampleUnsteady samples numSteps timesteps separated by dt flow-time
// units, starting at t0.
func SampleUnsteady(f Flow, g *grid.Grid, numSteps int, t0, dt float32) (*field.Unsteady, error) {
	if numSteps < 1 {
		return nil, fmt.Errorf("flow: need at least one timestep, got %d", numSteps)
	}
	steps := make([]*field.Field, numSteps)
	for s := range steps {
		steps[s] = Sample(f, g, t0+float32(s)*dt)
	}
	return field.NewUnsteady(g, steps, dt)
}

// Uniform is a constant free-stream flow.
type Uniform struct {
	Velocity vmath.Vec3
}

// VelocityAt implements Flow.
func (u Uniform) VelocityAt(vmath.Vec3, float32) vmath.Vec3 { return u.Velocity }

// Name implements Flow.
func (u Uniform) Name() string { return "uniform" }

// TaperedCylinder models unsteady flow past a tapered cylinder whose
// axis runs along Z: potential flow around the local cylinder section
// plus a von Karman street of shed vortices advecting downstream. The
// taper makes the shedding frequency vary along the span (Strouhal
// scaling St*U/d), which is what produces the paper's "interesting
// vortical and recirculation phenomena" — vortex dislocations between
// spanwise cells.
type TaperedCylinder struct {
	U0       float32 // free-stream speed along +X
	R0, R1   float32 // cylinder radius at z = 0 and z = Span
	Span     float32 // spanwise extent
	Strouhal float32 // shedding Strouhal number (0.2 is classic)
	Gamma    float32 // strength of shed vortices
	Wake     float32 // downstream spacing of street vortices, in diameters
}

// DefaultTaperedCylinder matches grid.DefaultTaperedCylinder geometry.
func DefaultTaperedCylinder() TaperedCylinder {
	return TaperedCylinder{
		U0: 1, R0: 1, R1: 0.5, Span: 16,
		Strouhal: 0.2, Gamma: 2.5, Wake: 4,
	}
}

// Name implements Flow.
func (tc TaperedCylinder) Name() string { return "tapered-cylinder" }

// radiusAt returns the local cylinder radius at spanwise position z,
// clamped to the span.
func (tc TaperedCylinder) radiusAt(z float32) float32 {
	fz := z / tc.Span
	if fz < 0 {
		fz = 0
	}
	if fz > 1 {
		fz = 1
	}
	return tc.R0 + (tc.R1-tc.R0)*fz
}

// VelocityAt implements Flow.
func (tc TaperedCylinder) VelocityAt(p vmath.Vec3, t float32) vmath.Vec3 {
	r := tc.radiusAt(p.Z)
	v := tc.potential(p, r)
	v = v.Add(tc.street(p, r, t))
	return v
}

// potential is 2-D potential flow around a cylinder of radius a in the
// local section plane, free stream U0 along +X.
func (tc TaperedCylinder) potential(p vmath.Vec3, a float32) vmath.Vec3 {
	x, y := float64(p.X), float64(p.Y)
	r2 := x*x + y*y
	a2 := float64(a * a)
	if r2 < a2 {
		// Inside the body: no flow.
		return vmath.Vec3{}
	}
	u0 := float64(tc.U0)
	// u =  U0 (1 - a^2 (x^2-y^2)/r^4),  v = -U0 a^2 2xy / r^4
	r4 := r2 * r2
	u := u0 * (1 - a2*(x*x-y*y)/r4)
	vv := -u0 * a2 * 2 * x * y / r4
	return vmath.Vec3{X: float32(u), Y: float32(vv)}
}

// street adds the shed vortex street: a staggered row of counter-
// rotating Lamb-Oseen vortices advecting downstream at ~0.85 U0. The
// local shedding frequency f = St*U0/(2a) depends on z through the
// taper, so vortex phase varies along the span.
func (tc TaperedCylinder) street(p vmath.Vec3, a float32, t float32) vmath.Vec3 {
	if p.X < 0 {
		// Street only exists downstream of the body.
		return vmath.Vec3{}
	}
	d := 2 * a
	freq := tc.Strouhal * tc.U0 / d
	adv := 0.85 * tc.U0
	spacing := tc.Wake * a
	// Phase of the street at this instant: vortices are born at the
	// cylinder at x ~ a with alternating sign every half period and
	// advect downstream.
	phase := float64(freq * t)
	var vel vmath.Vec3
	// Superpose the most recently shed vortices on each row. The
	// street is staggered: upper-row vortices shed at integer periods,
	// lower-row at half periods. Vortex m was shed at time m/freq and
	// has advected to x = a + adv*(t - m/freq).
	for n := -1; n <= 6; n++ {
		for row := 0; row < 2; row++ {
			idx := float64(n) + 0.5*float64(row)
			m := math.Floor(phase) - idx
			xc := a + adv*float32(float64(t)-m/float64(freq))
			if xc < a || xc > a+8*spacing {
				continue
			}
			sign := float32(1)
			yc := 0.6 * a
			if row == 1 {
				sign = -1
				yc = -0.6 * a
			}
			vel = vel.Add(lambOseen(p.X-xc, p.Y-yc, sign*tc.Gamma, 0.5*a))
		}
	}
	return vel
}

// lambOseen returns the in-plane velocity of a Lamb-Oseen vortex of
// circulation gamma and core radius rc at offset (dx, dy) from its
// center.
func lambOseen(dx, dy, gamma, rc float32) vmath.Vec3 {
	r2 := float64(dx*dx + dy*dy)
	if r2 < 1e-10 {
		return vmath.Vec3{}
	}
	g := float64(gamma) / (2 * math.Pi)
	core := 1 - math.Exp(-r2/float64(rc*rc))
	vt := g * core / r2 // tangential speed / r
	return vmath.Vec3{
		X: float32(-float64(dy) * vt),
		Y: float32(float64(dx) * vt),
	}
}

// ABC is the steady Arnold-Beltrami-Childress flow, a classic chaotic
// streamline test case on a periodic cube; time t phase-shifts it so
// unsteady code paths are exercised too.
type ABC struct {
	A, B, C float32
	Omega   float32 // temporal phase rate; 0 gives the steady ABC flow
}

// Name implements Flow.
func (f ABC) Name() string { return "abc" }

// VelocityAt implements Flow.
func (f ABC) VelocityAt(p vmath.Vec3, t float32) vmath.Vec3 {
	ph := float64(f.Omega * t)
	x, y, z := float64(p.X), float64(p.Y), float64(p.Z)
	return vmath.Vec3{
		X: float32(float64(f.A)*math.Sin(z+ph) + float64(f.C)*math.Cos(y+ph)),
		Y: float32(float64(f.B)*math.Sin(x+ph) + float64(f.A)*math.Cos(z+ph)),
		Z: float32(float64(f.C)*math.Sin(y+ph) + float64(f.B)*math.Cos(x+ph)),
	}
}

// TaylorGreen is the decaying Taylor-Green vortex, an exact
// Navier-Stokes solution used to validate the solver substrate.
type TaylorGreen struct {
	Nu float32 // kinematic viscosity
}

// Name implements Flow.
func (f TaylorGreen) Name() string { return "taylor-green" }

// VelocityAt implements Flow. The 2-D (x, y) Taylor-Green field
// extended uniformly in z, with viscous decay exp(-2 nu t).
func (f TaylorGreen) VelocityAt(p vmath.Vec3, t float32) vmath.Vec3 {
	decay := math.Exp(-2 * float64(f.Nu) * float64(t))
	x, y := float64(p.X), float64(p.Y)
	return vmath.Vec3{
		X: float32(math.Cos(x) * math.Sin(y) * decay),
		Y: float32(-math.Sin(x) * math.Cos(y) * decay),
	}
}

// Rankine is a single steady Rankine vortex around the Z axis, handy
// for closed-orbit streamline tests.
type Rankine struct {
	Gamma float32 // circulation
	Core  float32 // core radius
}

// Name implements Flow.
func (f Rankine) Name() string { return "rankine" }

// VelocityAt implements Flow.
func (f Rankine) VelocityAt(p vmath.Vec3, _ float32) vmath.Vec3 {
	r2 := float64(p.X*p.X + p.Y*p.Y)
	r := math.Sqrt(r2)
	if r < 1e-9 {
		return vmath.Vec3{}
	}
	var vt float64 // tangential speed
	g := float64(f.Gamma) / (2 * math.Pi)
	if r < float64(f.Core) {
		vt = g * r / float64(f.Core*f.Core)
	} else {
		vt = g / r
	}
	return vmath.Vec3{
		X: float32(-float64(p.Y) / r * vt),
		Y: float32(float64(p.X) / r * vt),
	}
}
