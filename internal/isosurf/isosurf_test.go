package isosurf

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/vmath"
)

// sphereScalar fills a node-indexed array with distance from the
// center of the box.
func sphereScalar(g *grid.Grid, center vmath.Vec3) []float32 {
	s := make([]float32, g.NumNodes())
	for k := 0; k < g.NK; k++ {
		for j := 0; j < g.NJ; j++ {
			for i := 0; i < g.NI; i++ {
				s[g.Index(i, j, k)] = g.At(i, j, k).Dist(center)
			}
		}
	}
	return s
}

func TestExtractValidation(t *testing.T) {
	g, _ := grid.NewCartesian(4, 4, 4, vmath.AABB{Min: vmath.V3(0, 0, 0), Max: vmath.V3(1, 1, 1)})
	if _, err := Extract(g, make([]float32, 5), 0.5); err == nil {
		t.Error("short scalar accepted")
	}
}

func TestExtractSphere(t *testing.T) {
	// Distance-from-center scalar: the iso=R surface is a sphere of
	// radius R. Check the triangle set is nonempty, every vertex lies
	// near radius R, and the total area approximates 4 pi R^2.
	g, err := grid.NewCartesian(33, 33, 33, vmath.AABB{
		Min: vmath.V3(-2, -2, -2), Max: vmath.V3(2, 2, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	center := vmath.V3(0, 0, 0)
	s := sphereScalar(g, center)
	const r = 1.3
	tris, err := Extract(g, s, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) < 100 {
		t.Fatalf("only %d triangles", len(tris))
	}
	for _, tri := range tris {
		for _, v := range tri {
			d := v.Dist(center)
			if absf(d-r) > 0.05 {
				t.Fatalf("vertex %v at radius %v, want %v", v, d, r)
			}
		}
	}
	want := 4 * math.Pi * r * r
	got := Area(tris)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("sphere area %v, want %v (5%%)", got, want)
	}
}

func TestExtractEmptyWhenOutsideRange(t *testing.T) {
	g, _ := grid.NewCartesian(8, 8, 8, vmath.AABB{Min: vmath.V3(0, 0, 0), Max: vmath.V3(1, 1, 1)})
	s := make([]float32, g.NumNodes()) // all zero
	tris, err := Extract(g, s, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 0 {
		t.Errorf("%d triangles from constant field", len(tris))
	}
}

func TestExtractPlane(t *testing.T) {
	// Scalar = x: iso=0.5 is the plane x=0.5 with area 1 in a unit box.
	g, _ := grid.NewCartesian(9, 9, 9, vmath.AABB{Min: vmath.V3(0, 0, 0), Max: vmath.V3(1, 1, 1)})
	s := make([]float32, g.NumNodes())
	for k := 0; k < 9; k++ {
		for j := 0; j < 9; j++ {
			for i := 0; i < 9; i++ {
				s[g.Index(i, j, k)] = g.At(i, j, k).X
			}
		}
	}
	tris, err := Extract(g, s, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, tri := range tris {
		for _, v := range tri {
			if absf(v.X-0.5) > 1e-5 {
				t.Fatalf("vertex off plane: %v", v)
			}
		}
	}
	if got := Area(tris); math.Abs(got-1) > 0.02 {
		t.Errorf("plane area %v, want 1", got)
	}
}

func TestExtractOnCurvilinearGrid(t *testing.T) {
	g, err := grid.NewTaperedCylinder(grid.TaperedCylinderSpec{
		NI: 16, NJ: 24, NK: 8, R0: 1, R1: 0.5, Router: 10, Span: 12, Stretch: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Radius-from-axis scalar: iso-surface is a cylinder around Z.
	s := make([]float32, g.NumNodes())
	for i := range s {
		s[i] = float32(math.Hypot(float64(g.X[i]), float64(g.Y[i])))
	}
	tris, err := Extract(g, s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) < 50 {
		t.Fatalf("only %d triangles on curvilinear grid", len(tris))
	}
	for _, tri := range tris {
		for _, v := range tri {
			r := math.Hypot(float64(v.X), float64(v.Y))
			if math.Abs(r-4) > 0.25 {
				t.Fatalf("vertex radius %v, want ~4", r)
			}
		}
	}
}

func TestSpeedField(t *testing.T) {
	f := field.NewField(2, 2, 2, field.GridCoords)
	f.SetAt(1, 1, 1, vmath.V3(3, 4, 0))
	s := SpeedField(f)
	if absf(s[f.Index(1, 1, 1)]-5) > 1e-5 {
		t.Errorf("speed = %v, want 5", s[f.Index(1, 1, 1)])
	}
	if s[0] != 0 {
		t.Errorf("zero node speed = %v", s[0])
	}
}

func absf(f float32) float32 {
	if f < 0 {
		return -f
	}
	return f
}

func BenchmarkExtractSphere(b *testing.B) {
	g, _ := grid.NewCartesian(33, 33, 33, vmath.AABB{
		Min: vmath.V3(-2, -2, -2), Max: vmath.V3(2, 2, 2),
	})
	s := sphereScalar(g, vmath.V3(0, 0, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tris, err := Extract(g, s, 1.3)
		if err != nil {
			b.Fatal(err)
		}
		if len(tris) == 0 {
			b.Fatal("no triangles")
		}
	}
}

// TestExtractParallelMatchesSerial pins the shared-tool determinism
// contract: ExtractParallel must produce the exact serial triangle
// sequence — same triangles, same order — for every worker count, or
// the server's memoized tool geometry would differ between otherwise
// identical servers and break frame byte-identity.
func TestExtractParallelMatchesSerial(t *testing.T) {
	g, err := grid.NewCartesian(21, 19, 17, vmath.AABB{
		Min: vmath.V3(-2, -2, -2), Max: vmath.V3(2, 2, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := sphereScalar(g, vmath.V3(0.3, -0.2, 0.1))
	for _, stride := range []int{1, 2, 4} {
		want, err := ExtractStride(g, s, 1.1, stride)
		if err != nil {
			t.Fatal(err)
		}
		for workers := 1; workers <= 9; workers++ {
			got, err := ExtractParallel(g, s, 1.1, stride, workers)
			if err != nil {
				t.Fatalf("stride %d workers %d: %v", stride, workers, err)
			}
			if len(got) != len(want) {
				t.Fatalf("stride %d workers %d: %d triangles, serial %d",
					stride, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("stride %d workers %d: triangle %d = %v, serial %v",
						stride, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestExtractStrideCoarsens: larger strides march fewer, larger cells
// — the governor's tool shed ladder. The coarse surface must stay
// non-empty and on the iso surface, with fewer triangles than stride 1.
func TestExtractStrideCoarsens(t *testing.T) {
	g, err := grid.NewCartesian(33, 33, 33, vmath.AABB{
		Min: vmath.V3(-2, -2, -2), Max: vmath.V3(2, 2, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	center := vmath.V3(0, 0, 0)
	s := sphereScalar(g, center)
	fine, err := ExtractStride(g, s, 1.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := len(fine)
	for _, stride := range []int{2, 4} {
		coarse, err := ExtractStride(g, s, 1.3, stride)
		if err != nil {
			t.Fatal(err)
		}
		if len(coarse) == 0 || len(coarse) >= prev {
			t.Fatalf("stride %d: %d triangles, finer had %d", stride, len(coarse), prev)
		}
		for _, tri := range coarse {
			for _, v := range tri {
				if d := v.Dist(center); absf(d-1.3) > 0.3 {
					t.Fatalf("stride %d vertex %v at radius %v", stride, v, d)
				}
			}
		}
		prev = len(coarse)
	}
	// An invalid stride is rejected, not clamped silently.
	if _, err := ExtractStride(g, s, 1.3, 0); err == nil {
		t.Error("stride 0 accepted")
	}
}
